package chrysalis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFacadeTracing runs a small traced search plus a verification
// replay through the public API and checks the exported JSON is a
// well-formed trace containing both search spans and simulator slices.
func TestFacadeTracing(t *testing.T) {
	spec := harSpec()
	spec.Search = SearchConfig{Budget: 60, Seed: 1}
	tr := NewTrace(0)
	spec.Search.Trace = tr

	res, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}

	ad := NewSimTraceAdapter(tr)
	if _, err := VerifyTraced(spec, res, ad.Trace); err != nil {
		t.Fatal(err)
	}
	ad.Close()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	var gotGen, gotPower bool
	for _, ev := range tf.TraceEvents {
		if strings.HasPrefix(ev.Name, "generation ") {
			gotGen = true
		}
		if ev.Name == "powered" {
			gotPower = true
		}
	}
	if !gotGen {
		t.Error("trace has no search generation spans")
	}
	if !gotPower {
		t.Error("trace has no simulator powered slices")
	}
}

// TestNilTraceAdapterNoop checks the nil-trace path is safe: a nil
// adapter accepts events and WriteJSON on a fresh trace emits a valid
// empty envelope.
func TestNilTraceAdapterNoop(t *testing.T) {
	ad := NewSimTraceAdapter(nil)
	spec := harSpec()
	spec.Search = SearchConfig{Budget: 40, Seed: 1}
	res, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyTraced(spec, res, ad.Trace); err != nil {
		t.Fatal(err)
	}
	ad.Close()

	var buf bytes.Buffer
	if err := NewTrace(4).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("empty trace envelope malformed: %s", buf.String())
	}
}
