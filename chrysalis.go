// Package chrysalis is the public API of the CHRYSALIS EA/IA co-design
// framework for Autonomous Things (AuT), a reproduction of "A Tale of
// Two Domains: Exploring Efficient Architecture Design for Truly
// Autonomous Things" (ISCA 2024).
//
// An AuT couples an energy-harvesting subsystem (solar panel, storage
// capacitor, power-management IC) with an inference subsystem (an
// MSP430-class MCU or a reconfigurable DNN accelerator) and executes
// DNN inference intermittently, checkpointing between tiles. CHRYSALIS
// models both subsystems, evaluates candidate designs with a step-based
// co-simulator, and searches the joint design space with a bi-level
// genetic optimizer to produce the ideal AuT configuration for a given
// workload, environment and SWaP objective.
//
// The three-line version:
//
//	spec := chrysalis.Spec{WorkloadName: "har", Platform: chrysalis.MSP430,
//	        Objective: chrysalis.MinimizeLatTimesSP}
//	res, err := chrysalis.Design(spec)
//	// res.PanelArea, res.Cap, res.Dataflow, res.AvgLatency, ...
//
// Deeper control — custom workloads, custom harvesters, direct
// simulation — is available through the exported wrappers below; the
// experiment harness that regenerates every table and figure of the
// paper lives in cmd/experiments.
package chrysalis

import (
	"chrysalis/internal/core"
	"chrysalis/internal/dnn"
	"chrysalis/internal/explore"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// Quantity aliases so callers do not need the internal units package.
type (
	// Energy is joules.
	Energy = units.Energy
	// Power is watts.
	Power = units.Power
	// Seconds is a duration in seconds.
	Seconds = units.Seconds
	// Capacitance is farads.
	Capacitance = units.Capacitance
	// AreaCM2 is square centimeters.
	AreaCM2 = units.AreaCM2
	// Bytes is a data size.
	Bytes = units.Bytes
)

// Platform selects the inference-hardware family.
type Platform = explore.PlatformKind

// Platform values.
const (
	// MSP430 is the existing-AuT platform: MSP430FR5994 + LEA (Table IV).
	MSP430 = explore.MSP
	// Accelerator is the future-AuT reconfigurable array (Table V).
	Accelerator = explore.Accel
)

// Objective selects the design target.
type Objective = explore.Objective

// Objective values.
const (
	// MinimizeLatency minimizes average inference latency subject to a
	// solar-panel area bound.
	MinimizeLatency = explore.Lat
	// MinimizeSP minimizes solar-panel area subject to a latency bound.
	MinimizeSP = explore.SP
	// MinimizeLatTimesSP minimizes the latency × panel-area product,
	// the paper's overall space-time efficiency metric.
	MinimizeLatTimesSP = explore.LatSP
)

// Spec is the design problem: workload, platform, objective and
// constraints (the paper's Table II inputs).
type Spec = core.Spec

// SearchConfig sizes the HW-level optimizer. Its Progress field, when
// set, receives a callback after every outer-GA generation (generation
// index, cumulative evaluations, best objective value so far), its
// OnQuality field receives the full GenQuality telemetry record per
// generation, and its Stop field is polled between generations to end a
// search early — the hooks behind chrysalisd's live SSE telemetry and
// job cancellation. Its Workers field sets the candidate-evaluation
// concurrency (0 = all cores, negative = serial); the returned design
// is bit-identical for any worker count. Patience enables the plateau
// early-stop policy (stop after N generations whose relative
// improvement stays below PlateauTol); unlike Workers it changes the
// result, so serving layers include it in cache keys.
type SearchConfig = core.SearchConfig

// Result is the ideal AuT solution (the paper's Table II outputs).
type Result = core.Result

// WarmCache is a process-lifetime warm-start tier for plan ladders:
// attach one to SearchConfig.Warm and consecutive searches reuse the
// budget-independent mapping ladders earlier searches built for the
// same hardware fingerprints, instead of rebuilding them per search.
// It is byte-bounded, safe for concurrent searches, and never affects
// results — warm and cold runs return bit-identical designs.
type WarmCache = explore.WarmCache

// WarmStats is a point-in-time snapshot of a WarmCache's counters.
type WarmStats = explore.WarmStats

// NewWarmCache builds a warm-start tier bounded to roughly maxBytes of
// estimated ladder memory. A non-positive bound returns nil (the
// disabled tier), so callers can thread a size knob through
// unconditionally.
func NewWarmCache(maxBytes int64) *WarmCache { return explore.NewWarmCache(maxBytes) }

// Workload is a DNN task description.
type Workload = dnn.Workload

// Environment supplies the ambient light coefficient k_eh over time.
type Environment = solar.Environment

// SimResult is a step-based simulation outcome.
type SimResult = sim.Result

// SimMode selects the simulator core used by every co-simulation of a
// spec: Simulate*, Verify*, flight replays and chrysalisd jobs. Set it
// on Spec.SimMode; the zero value is SimModeEvent.
type SimMode = sim.Mode

// Simulator modes.
const (
	// SimModeEvent is the event-driven analytic simulator (default):
	// quiet windows are solved in closed form, events are stepped
	// bit-honestly.
	SimModeEvent = sim.ModeEvent
	// SimModeStep is the fixed-step bit-honest oracle.
	SimModeStep = sim.ModeStep
	// SimModeDifferential runs both simulators and fails on divergence.
	SimModeDifferential = sim.ModeDifferential
)

// ParseSimMode parses "event", "step" or "differential" (the -sim-mode
// CLI values).
func ParseSimMode(s string) (SimMode, error) { return sim.ParseMode(s) }

// Design runs the full CHRYSALIS pipeline: describe, evaluate, explore,
// and return the ideal AuT configuration for the spec.
func Design(spec Spec) (Result, error) { return core.Run(spec) }

// DesignWithBaseline runs the pipeline under one of the paper's
// Table VI ablated search spaces ("wo/Cap", "wo/SP", "wo/EA", "wo/PE",
// "wo/Cache", "wo/IA") for comparison studies. The name "chrysalis"
// selects the full space.
func DesignWithBaseline(spec Spec, baseline string) (Result, error) {
	for _, b := range explore.Baselines() {
		if b.String() == baseline {
			return core.RunBaseline(spec, b)
		}
	}
	return Result{}, errUnknownBaseline(baseline)
}

// Report renders a designed configuration as a pre-RTL design
// reference document: hardware tables, per-layer mapping, predicted
// metrics and Fig. 4 style loop nests.
func Report(spec Spec, res Result) (string, error) { return core.Report(spec, res) }

// ReportWithVerification is Report plus a step-simulator replay.
func ReportWithVerification(spec Spec, res Result) (string, error) {
	return core.ReportWithVerification(spec, res)
}

// Verify replays a designed configuration on the step-based simulator
// (the higher-fidelity evaluator) and reports the simulated run,
// letting users cross-check the analytic search estimate the way the
// paper validates its model against the physical platform (Fig. 7).
func Verify(spec Spec, res Result) (SimResult, error) { return core.Verify(spec, res) }

// VerifyTraced is Verify with an event callback receiving the replay's
// transitions (power cycles, tile starts/completions, checkpoints,
// resumes, retries) in time order — the hook chrysalisd uses to stream
// live telemetry over SSE. A nil callback behaves like Verify.
func VerifyTraced(spec Spec, res Result, onEvent func(SimEvent)) (SimResult, error) {
	var tr sim.Tracer
	if onEvent != nil {
		tr = sim.Tracer(onEvent)
	}
	return core.VerifyWithTrace(spec, res, tr)
}

// Workloads lists the names of all built-in benchmark networks
// (Tables IV and V plus the Figure 2 workloads).
func Workloads() []string { return dnn.Names() }

// WorkloadByName retrieves a built-in workload.
func WorkloadByName(name string) (Workload, error) { return dnn.ByName(name) }

// ParseWorkload builds a custom workload from its JSON description
// (see internal/dnn's schema: an input shape plus a chained layer
// list). The result can be passed via Spec.Workload.
func ParseWorkload(data []byte) (Workload, error) { return dnn.ParseJSON(data) }

// Baselines lists the comparison-method names accepted by
// DesignWithBaseline.
func Baselines() []string {
	var names []string
	for _, b := range explore.Baselines() {
		names = append(names, b.String())
	}
	return names
}

// BrightEnvironment returns the paper's brighter search environment
// (k_eh = 1 mW/cm²).
func BrightEnvironment() Environment { return solar.Bright() }

// DarkEnvironment returns the paper's darker search environment
// (k_eh = 0.25 mW/cm²).
func DarkEnvironment() Environment { return solar.Dark() }

// DiurnalEnvironment returns a clear-sky day profile peaking at
// peak W/cm² between sunrise and sunset (seconds from scenario start).
func DiurnalEnvironment(peak Power, sunrise, sunset Seconds) (Environment, error) {
	return solar.NewDiurnal(peak, sunrise, sunset)
}

// errUnknownBaseline keeps the error type local without exporting
// internal packages.
type errUnknownBaseline string

func (e errUnknownBaseline) Error() string {
	return "chrysalis: unknown baseline " + string(e) + " (see Baselines())"
}

// PresetInfo describes one built-in deployment scenario.
type PresetInfo struct {
	Name        string
	Domain      string
	Description string
}

// Presets lists the built-in deployment scenarios (the paper's
// land/sea/air/space SWaP taxonomy).
func Presets() []PresetInfo {
	var out []PresetInfo
	for _, p := range core.Presets() {
		out = append(out, PresetInfo{Name: p.Name, Domain: p.Domain, Description: p.Description})
	}
	return out
}

// DesignPreset designs an AuT for a named deployment scenario.
func DesignPreset(preset, workload string, search SearchConfig) (Result, error) {
	return core.RunPreset(preset, workload, search)
}

// SensitivityRow reports the latency response to one perturbed
// parameter around a designed configuration.
type SensitivityRow = core.SensitivityRow

// Sensitivity perturbs the designed configuration one parameter at a
// time (panel ±25%, capacitor ×/÷2, ambient light ±50%) and reports
// the latency response — which tolerance matters before committing to
// hardware.
func Sensitivity(spec Spec, res Result) ([]SensitivityRow, error) {
	return core.Sensitivity(spec, res)
}
