package chrysalis

// Benchmarks that regenerate each table and figure of the paper's
// evaluation (via the same internal/experiments generators the
// cmd/experiments binary uses), plus micro-benchmarks of the pipeline
// stages: the dataflow cost model, the intermittent planner, the
// analytic evaluator, the step simulator, and the bi-level search.
//
// Run everything:   go test -bench=. -benchmem
// One figure only:  go test -bench=BenchmarkFig9

import (
	"errors"
	"io"
	"testing"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/experiments"
	"chrysalis/internal/explore"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
)

// benchOpts keeps per-iteration work bounded so -bench runs finish in
// minutes; cmd/experiments runs the full-budget versions.
func benchOpts() experiments.Options {
	return experiments.Options{Budget: 60, ParetoSamples: 80, Fast: true, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	g, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	o := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Run(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table/figure of the evaluation section ---

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig2a(b *testing.B)    { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)    { benchExperiment(b, "fig2b") }
func BenchmarkTable3(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// --- Pipeline micro-benchmarks ---

// BenchmarkCostModel measures one dataflow cost evaluation (the inner
// loop of every search).
func BenchmarkCostModel(b *testing.B) {
	l := dnn.CIFAR10().Layers[3]
	hw := msp430.Config{}.HW()
	m := dataflow.Mapping{Dataflow: dataflow.OS, Partition: dataflow.BySpatial, NTile: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataflow.Evaluate(l, 2, m, hw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanWorkload measures the intermittent planner across a
// whole network (Eq. 8 feasibility scan per layer).
func BenchmarkPlanWorkload(b *testing.B) {
	hw := msp430.Config{}.HW()
	w := dnn.CIFAR10()
	budget := intermittent.FixedBudget(3e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := intermittent.PlanWorkload(w, dataflow.OS, hw, 0.05, budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticEvaluate measures one full candidate evaluation
// (inner mapping search + Eq. 5/7 under two environments) — the unit
// of work the outer GA spends its budget on.
func BenchmarkAnalyticEvaluate(b *testing.B) {
	sc := explore.Scenario{Workload: dnn.HAR(), Platform: explore.MSP, Objective: explore.LatSP}
	cand := explore.Candidate{PanelArea: 8, Cap: 100e-6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explore.EvaluateCandidate(sc, cand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepSimulator measures the step-based co-simulation of one
// HAR inference (hundreds of 1 ms steps with checkpointing).
func BenchmarkStepSimulator(b *testing.B) {
	hw := msp430.Config{}.HW()
	es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Bright())
	if err != nil {
		b.Fatal(err)
	}
	budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05,
		intermittent.FixedBudget(budget*0.8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{Energy: es, HW: hw, Plans: plans})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("benchmark run did not complete")
		}
	}
}

// BenchmarkEventSimulator measures the event-driven analytic
// co-simulation of the same HAR inference BenchmarkStepSimulator grinds
// step by step: quiet windows are solved in closed form, so the run
// collapses to a few dozen literal steps plus analytic jumps.
func BenchmarkEventSimulator(b *testing.B) {
	hw := msp430.Config{}.HW()
	es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Bright())
	if err != nil {
		b.Fatal(err)
	}
	budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05,
		intermittent.FixedBudget(budget*0.8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunEvent(sim.Config{Energy: es, HW: hw, Plans: plans})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("benchmark run did not complete")
		}
	}
}

// BenchmarkGASearch measures a complete (small) bi-level search on the
// existing-AuT platform.
func BenchmarkGASearch(b *testing.B) {
	sc := explore.Scenario{Workload: dnn.SimpleConv(), Platform: explore.MSP, Objective: explore.LatSP}
	cfg := search.DefaultGA(1)
	cfg.Population = 10
	cfg.Generations = 6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := explore.Explore(sc, explore.Full, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccelSearch measures the accelerator-platform search on the
// heaviest Table V workload (VGG16). With this small a GA budget some
// seeds legitimately end with no feasible design; the search still runs
// full-length, so those iterations are kept.
func BenchmarkAccelSearch(b *testing.B) {
	sc := explore.Scenario{Workload: dnn.VGG16(), Platform: explore.Accel, Objective: explore.LatSP}
	cfg := search.DefaultGA(1)
	cfg.Population = 10
	cfg.Generations = 6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := explore.Explore(sc, explore.Full, cfg); err != nil && !errors.Is(err, explore.ErrNoFeasibleDesign) {
			b.Fatal(err)
		}
	}
}

// --- Warm-start benchmarks (the PR10 cross-job reuse tier) ---

// benchWarmSearch is the shared warm-start harness: prime a
// process-lifetime tier with one untimed search, then time searches
// over a perturbed energy-gene space (a slightly tighter panel bound —
// a genuinely different job whose panel/cap decode differs) against
// the same tier. Plan ladders are energy-independent by construction,
// so the warm tier serves them unchanged; this is the chrysalisd
// serving shape, where a fleet of near-duplicate jobs shares one tier
// and the steady state is almost entirely warm. The seed stays fixed
// (unlike the cold benchmarks' per-iteration seeds) because the
// near-duplicate stream, not seed averaging, is the thing measured.
func benchWarmSearch(b *testing.B, sc explore.Scenario) {
	b.Helper()
	warm := explore.NewWarmCache(256 << 20)
	sc.Warm = warm
	cfg := search.DefaultGA(1)
	cfg.Population = 10
	cfg.Generations = 6
	if _, err := explore.Explore(sc, explore.Full, cfg); err != nil && !errors.Is(err, explore.ErrNoFeasibleDesign) {
		b.Fatal(err)
	}
	perturbed := sc
	perturbed.MaxPanel = 29.97 // 0.1% under the 30 cm² default bound
	var warmHits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := explore.Explore(perturbed, explore.Full, cfg)
		if err != nil && !errors.Is(err, explore.ErrNoFeasibleDesign) {
			b.Fatal(err)
		}
		warmHits += out.WarmHits
	}
	b.StopTimer()
	if warmHits == 0 {
		b.Fatal("warm tier never engaged: 0 warm hits across all iterations")
	}
}

// BenchmarkGASearchWarm re-runs BenchmarkGASearch's search warm. The
// MSP scenario has a single hardware fingerprint, so the tier saves
// exactly the one ladder build each job would otherwise pay.
func BenchmarkGASearchWarm(b *testing.B) {
	benchWarmSearch(b, explore.Scenario{Workload: dnn.SimpleConv(), Platform: explore.MSP, Objective: explore.LatSP})
}

// BenchmarkAccelSearchWarm re-runs BenchmarkAccelSearch's search warm:
// the accelerator space fingerprints on (NPE, cache), so each search
// builds hundreds of ladder sets cold and the tier absorbs nearly all
// of them. The ≥3× target over cold AccelSearch lives in
// BENCH_PR10.json and is enforced by scripts/benchguard.
func BenchmarkAccelSearchWarm(b *testing.B) {
	benchWarmSearch(b, explore.Scenario{Workload: dnn.VGG16(), Platform: explore.Accel, Objective: explore.LatSP})
}

// --- Ablation benchmarks for DESIGN.md's called-out design choices ---

// BenchmarkAblationStepSize compares simulator cost across step sizes
// (the paper's "adjustable based on requirements" knob).
func BenchmarkAblationStepSize(b *testing.B) {
	hw := msp430.Config{}.HW()
	for _, step := range []float64{0.5e-3, 1e-3, 2e-3, 5e-3} {
		b.Run(Seconds(step).String(), func(b *testing.B) {
			es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Bright())
			if err != nil {
				b.Fatal(err)
			}
			budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
			plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05,
				intermittent.FixedBudget(budget*0.8))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{Energy: es, HW: hw, Plans: plans, Step: Seconds(step)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSampler compares GA against random sampling at equal
// evaluation budgets (the Optuna-GA design choice).
func BenchmarkAblationSampler(b *testing.B) {
	for _, alg := range []string{"ga", "random"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := Spec{
					WorkloadName: "simpleconv",
					Platform:     MSP430,
					Objective:    MinimizeLatTimesSP,
					Search:       SearchConfig{Algorithm: alg, Budget: 60, Seed: int64(i)},
				}
				if _, err := Design(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNSGAFront measures the multi-objective Pareto search used by
// the Figure 6 front refinement.
func BenchmarkNSGAFront(b *testing.B) {
	sc := explore.Scenario{Workload: dnn.SimpleConv(), Platform: explore.MSP, Objective: explore.LatSP}
	cfg := search.DefaultGA(1)
	cfg.Population = 16
	cfg.Generations = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := explore.ParetoSearch(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivity measures the tornado analysis around a design.
func BenchmarkSensitivity(b *testing.B) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 60, Seed: 1},
	}
	res, err := Design(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sensitivity(spec, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCheckpointPolicy compares simulator cost under the
// three checkpoint policies.
func BenchmarkAblationCheckpointPolicy(b *testing.B) {
	for _, pol := range []sim.Policy{sim.PolicyEveryTile, sim.PolicyAdaptive} {
		b.Run(pol.String(), func(b *testing.B) {
			hw := msp430.Config{}.HW()
			es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Bright())
			if err != nil {
				b.Fatal(err)
			}
			budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
			plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05,
				intermittent.FixedBudget(budget*0.8))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Config{Energy: es, HW: hw, Plans: plans, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
