package chrysalis

// Extensions beyond the paper's core evaluation: temperature coupling,
// multi-inference series simulation, and event tracing. These follow
// Sec. III-D's interface-oriented extension model — each plugs into the
// unchanged evaluator.

import (
	"fmt"

	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/thermal"
)

// --- Thermal coupling ---

// ThermalProfile supplies ambient temperature over scenario time.
type ThermalProfile = thermal.Profile

// ConstantTemp returns a fixed-temperature profile.
func ConstantTemp(celsius float64) ThermalProfile { return thermal.Constant{C: celsius} }

// DayNightTemp returns a sinusoidal day/night temperature swing with
// the given mean, amplitude and time of daily peak.
func DayNightTemp(meanC, swingC float64, peakAt Seconds) ThermalProfile {
	return thermal.DayNight{MeanC: meanC, SwingC: swingC, PeakAt: peakAt}
}

// ThermalDerate wraps an environment with photovoltaic temperature
// derating (−0.4%/°C above 25 °C).
func ThermalDerate(env Environment, p ThermalProfile) (Environment, error) {
	return thermal.NewDeratedEnvironment(env, p)
}

// ThermalKcap returns the effective capacitor leakage coefficient at a
// temperature: electrolytic leakage doubles per +10 °C. Pass base 0 for
// the default coefficient. Use with Spec.Rexc-style low-level runs via
// SimulateSeries options or custom subsystems.
func ThermalKcap(base, celsius float64) float64 { return thermal.AdjustedKcap(base, celsius) }

// --- Multi-inference series ---

// SeriesResult summarizes a back-to-back sequence of inferences.
type SeriesResult = sim.SeriesResult

// SimulateSeries runs n inferences back-to-back on one design point
// with an idle (sensing/sleep) gap between them, carrying capacitor
// state and the clock across inferences so diurnal or cloudy
// environments shape each one. A nil env selects the bright
// environment.
func SimulateSeries(spec Spec, dp DesignPoint, env Environment, n int, idle Seconds) (SeriesResult, error) {
	cfg, err := simConfig(spec, dp, env)
	if err != nil {
		return SeriesResult{}, err
	}
	return sim.RunSeries(cfg, n, idle)
}

// --- Checkpoint policies ---

// CheckpointPolicy selects the inference controller's save strategy.
type CheckpointPolicy = sim.Policy

// Checkpoint policies.
const (
	// CheckpointEveryTile saves after every tile (the paper's Eq. 5
	// accounting; HAWAII-style footprints).
	CheckpointEveryTile = sim.PolicyEveryTile
	// CheckpointAdaptive saves only when capacitor headroom runs low.
	CheckpointAdaptive = sim.PolicyAdaptive
	// CheckpointNone never saves; interruptions restart the inference.
	CheckpointNone = sim.PolicyNone
)

// SimulateWithPolicy is Simulate with an explicit checkpoint policy.
func SimulateWithPolicy(spec Spec, dp DesignPoint, env Environment, policy CheckpointPolicy) (SimResult, error) {
	cfg, err := simConfig(spec, dp, env)
	if err != nil {
		return SimResult{}, err
	}
	cfg.Policy = policy
	return sim.RunMode(cfg, spec.SimMode)
}

// --- Event tracing ---

// SimEvent is one observable simulator transition (power cycles, tile
// starts/completions, checkpoints, resumes, retries).
type SimEvent = sim.Event

// SimulateTraced is Simulate with an event callback receiving the
// run's transitions in time order.
func SimulateTraced(spec Spec, dp DesignPoint, env Environment, onEvent func(SimEvent)) (SimResult, error) {
	cfg, err := simConfig(spec, dp, env)
	if err != nil {
		return SimResult{}, err
	}
	if onEvent != nil {
		cfg.Trace = sim.Tracer(onEvent)
	}
	return sim.RunMode(cfg, spec.SimMode)
}

// simConfig builds a step-simulator configuration for a design point.
func simConfig(spec Spec, dp DesignPoint, env Environment) (sim.Config, error) {
	if env == nil {
		env = solar.Bright()
	}
	sc, err := scenarioOf(spec)
	if err != nil {
		return sim.Config{}, err
	}
	sc.Envs = []solar.Environment{env}
	cand := explore.Candidate{PanelArea: dp.PanelArea, Cap: dp.Cap, Accel: dp.Accel}
	ev, err := explore.EvaluateCandidate(sc, cand)
	if err != nil {
		return sim.Config{}, err
	}
	es, err := energy.NewSolar(energy.Spec{PanelArea: dp.PanelArea, Cap: dp.Cap}, env)
	if err != nil {
		return sim.Config{}, err
	}
	hw := msp430.Config{}.HW()
	if dp.Accel != nil {
		hw, err = dp.Accel.HW(dp.Accel.NativeDataflow())
		if err != nil {
			return sim.Config{}, err
		}
	}
	plans := make([]intermittent.Plan, len(ev.Mappings))
	for i, m := range ev.Mappings {
		plans[i] = m.Plan
	}
	if len(plans) == 0 {
		return sim.Config{}, fmt.Errorf("chrysalis: no feasible mapping for %s", dp.description())
	}
	return sim.Config{Energy: es, HW: hw, Plans: plans}, nil
}

func (dp DesignPoint) description() string {
	if dp.Accel != nil {
		return fmt.Sprintf("%v/%v/%s", dp.PanelArea, dp.Cap, dp.Accel.Arch)
	}
	return fmt.Sprintf("%v/%v/msp430", dp.PanelArea, dp.Cap)
}
