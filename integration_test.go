package chrysalis

// Integration tests crossing the whole pipeline: the analytic evaluator
// against the step-based simulator over a grid of configurations, and
// end-to-end determinism of the public API.

import (
	"math"
	"testing"
)

// TestAnalyticVsStepSimGrid cross-validates the two evaluators over a
// grid of workloads × panels × capacitors: wherever both complete, the
// latencies must agree within a factor of 2 (the step simulator
// resolves cycle quantization and cold-start effects the closed form
// approximates).
func TestAnalyticVsStepSimGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid cross-validation is slow")
	}
	workloads := []string{"simpleconv", "har", "kws"}
	panels := []AreaCM2{4, 8, 20}
	caps := []Capacitance{47e-6, 470e-6, 4.7e-3}

	checked := 0
	for _, wl := range workloads {
		for _, panel := range panels {
			for _, capC := range caps {
				spec := Spec{WorkloadName: wl, Platform: MSP430, Objective: MinimizeLatency}
				dp := DesignPoint{PanelArea: panel, Cap: capC}
				ev, err := Evaluate(spec, dp)
				if err != nil || !ev.Feasible {
					continue // infeasible points are covered elsewhere
				}
				var analytic Seconds
				for _, e := range ev.PerEnv {
					if e.Env == "bright" {
						analytic = e.Latency
					}
				}
				run, err := Simulate(spec, dp, nil)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", wl, panel, capC, err)
				}
				if !run.Completed {
					t.Errorf("%s/%v/%v: analytic feasible but sim never completes", wl, panel, capC)
					continue
				}
				ratio := float64(run.E2ELatency) / float64(analytic)
				if ratio < 0.5 || ratio > 2.0 {
					t.Errorf("%s/%v/%v: step %v vs analytic %v (ratio %.2f)",
						wl, panel, capC, run.E2ELatency, analytic, ratio)
				}
				checked++
			}
		}
	}
	if checked < 15 {
		t.Fatalf("only %d grid points were comparable", checked)
	}
}

// TestDesignDeterministic verifies the whole pipeline is reproducible
// for a fixed seed — a requirement for the recorded experiments.
func TestDesignDeterministic(t *testing.T) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 120, Seed: 99},
	}
	a, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.PanelArea != b.PanelArea || a.Cap != b.Cap || a.AvgLatency != b.AvgLatency {
		t.Fatalf("same seed produced different designs: %+v vs %+v", a, b)
	}
}

// TestObjectivesAreConsistent checks the three objectives order
// designs sensibly on the same scenario: the lat-optimal design is at
// least as fast as the lat*sp-optimal one, which in turn uses no more
// panel-time product than the lat-optimal one.
func TestObjectivesAreConsistent(t *testing.T) {
	base := Spec{
		WorkloadName: "har",
		Platform:     MSP430,
		Search:       SearchConfig{Budget: 200, Seed: 5},
	}
	latSpec := base
	latSpec.Objective = MinimizeLatency
	latRes, err := Design(latSpec)
	if err != nil {
		t.Fatal(err)
	}
	prodSpec := base
	prodSpec.Objective = MinimizeLatTimesSP
	prodRes, err := Design(prodSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Modest slack for search stochasticity at this budget.
	if float64(latRes.AvgLatency) > float64(prodRes.AvgLatency)*1.1 {
		t.Errorf("lat-optimal (%v) slower than lat*sp-optimal (%v)",
			latRes.AvgLatency, prodRes.AvgLatency)
	}
	if latRes.LatSP < prodRes.LatSP*0.9 {
		t.Errorf("lat*sp-optimal (%.3g) beaten on its own objective by lat-optimal (%.3g)",
			prodRes.LatSP, latRes.LatSP)
	}
}

// TestInfeasibleScenarioSurfaced ensures hopeless scenarios fail with a
// clear error instead of a bogus design: VGG16 on the MSP430's 8 KB
// SRAM with a 1 cm² panel cannot run within any cycle.
func TestInfeasibleScenarioSurfaced(t *testing.T) {
	_, err := Evaluate(Spec{
		WorkloadName: "vgg16",
		Platform:     MSP430,
		Objective:    MinimizeLatency,
	}, DesignPoint{PanelArea: 1, Cap: 1e-6})
	if err == nil {
		t.Fatal("VGG16 on a 1uF/1cm² MSP430 should be infeasible")
	}
}

// TestSeriesThroughputScaling sanity-checks deployment arithmetic: on
// stable light, doubling the number of inferences roughly doubles the
// total time (no hidden state leaks between runs).
func TestSeriesThroughputScaling(t *testing.T) {
	spec := Spec{WorkloadName: "kws", Platform: MSP430, Objective: MinimizeLatency}
	dp := DesignPoint{PanelArea: 8, Cap: 100e-6}
	three, err := SimulateSeries(spec, dp, nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	six, err := SimulateSeries(spec, dp, nil, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if three.Completed != 3 || six.Completed != 6 {
		t.Fatalf("completions: %d/3, %d/6", three.Completed, six.Completed)
	}
	ratio := float64(six.TotalTime) / float64(three.TotalTime)
	if math.Abs(ratio-2) > 0.5 {
		t.Fatalf("6 inferences took %.2fx the time of 3, want ~2x", ratio)
	}
}
