package chrysalis

import (
	"fmt"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/sim"
)

// AccelConfig describes one reconfigurable-accelerator design point
// (Table V): architecture family, PE count (1–168) and per-PE cache
// (128 B – 2 KB).
type AccelConfig = accel.Config

// Accelerator architecture families.
const (
	// TPU is the systolic weight-stationary family.
	TPU = accel.TPU
	// Eyeriss is the row-stationary family.
	Eyeriss = accel.Eyeriss
)

// DesignPoint is one concrete AuT hardware configuration to evaluate
// directly, bypassing the search.
type DesignPoint struct {
	// PanelArea is the solar panel size (1–30 cm²).
	PanelArea AreaCM2
	// Cap is the storage capacitor (1 µF – 10 mF).
	Cap Capacitance
	// Accel selects the accelerator configuration; nil means the
	// MSP430 platform.
	Accel *AccelConfig
}

// Evaluation is the assessment of one design point: per-environment
// latency/energy/efficiency, the chosen per-layer mappings, and the
// aggregate metrics the objectives optimize.
type Evaluation = explore.Evaluation

// Evaluate assesses a single design point for a spec using the analytic
// evaluator (the paper's Eq. 5 + Eq. 7 fast path): the inner mapping
// search still runs, so the design point is evaluated at its best
// achievable dataflow and tiling.
func Evaluate(spec Spec, dp DesignPoint) (Evaluation, error) {
	sc, err := scenarioOf(spec)
	if err != nil {
		return Evaluation{}, err
	}
	return explore.EvaluateCandidate(sc, explore.Candidate{
		PanelArea: dp.PanelArea, Cap: dp.Cap, Accel: dp.Accel,
	})
}

// Harvester abstracts the energy transducer so non-solar sources
// (thermal, RF, vibration) can be plugged into the simulator — the
// paper's interface-oriented extensibility (Sec. III-D).
type Harvester = energy.Harvester

// Simulate runs a design point through the step-based co-simulator
// under one environment and returns the detailed run (power cycles,
// checkpoints, retries, energy breakdown). A nil env selects the
// bright environment.
func Simulate(spec Spec, dp DesignPoint, env Environment) (SimResult, error) {
	return simulate(spec, dp, env, nil)
}

// SimulateWithHarvester is Simulate with a custom Harvester replacing
// the solar panel entirely.
func SimulateWithHarvester(spec Spec, dp DesignPoint, h Harvester) (SimResult, error) {
	if h == nil {
		return SimResult{}, fmt.Errorf("chrysalis: harvester must not be nil")
	}
	return simulate(spec, dp, nil, h)
}

func simulate(spec Spec, dp DesignPoint, env Environment, h Harvester) (SimResult, error) {
	cfg, err := simConfig(spec, dp, env)
	if err != nil {
		return SimResult{}, err
	}
	if h != nil {
		// Replace the solar subsystem with the custom harvester; the
		// mapping was planned against the named environment, which acts
		// as the sizing assumption.
		es, err := energy.New(energy.Spec{PanelArea: dp.PanelArea, Cap: dp.Cap}, h)
		if err != nil {
			return SimResult{}, err
		}
		cfg.Energy = es
	}
	return sim.RunMode(cfg, spec.SimMode)
}

// scenarioOf converts a public spec to an explorer scenario.
func scenarioOf(spec Spec) (explore.Scenario, error) {
	w, err := workloadOf(spec)
	if err != nil {
		return explore.Scenario{}, err
	}
	return explore.Scenario{
		Workload:   w,
		Platform:   spec.Platform,
		Envs:       spec.Envs,
		Objective:  spec.Objective,
		MaxPanel:   spec.MaxPanel,
		MaxLatency: spec.MaxLatency,
		Rexc:       spec.Rexc,
	}, nil
}

func workloadOf(spec Spec) (dnn.Workload, error) {
	if spec.Workload != nil {
		return *spec.Workload, spec.Workload.Validate()
	}
	if spec.WorkloadName == "" {
		return dnn.Workload{}, fmt.Errorf("chrysalis: spec needs a Workload or WorkloadName")
	}
	return dnn.ByName(spec.WorkloadName)
}
