package chrysalis_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	chrysalis "chrysalis"
)

// TestEmbeddedServer exercises the root-package serving facade end to
// end: build a durable server, submit a design over HTTP, poll it to
// completion, then restart on the same WAL directory and check the
// finished job survived as servable history.
func TestEmbeddedServer(t *testing.T) {
	dir := t.TempDir()
	newServer := func() (*chrysalis.Server, *httptest.Server) {
		srv, err := chrysalis.NewServer(chrysalis.ServerOptions{Workers: 2, WALDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv.Handler())
	}
	shutdown := func(srv *chrysalis.Server, ts *httptest.Server) {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}

	srv, ts := newServer()
	body, err := json.Marshal(map[string]any{"workload": "har", "budget": 60, "seed": 11})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/designs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string             `json:"id"`
		State chrysalis.JobState `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	poll := func(base, id string) chrysalis.JobState {
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			r, err := http.Get(base + "/v1/designs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var js struct {
				State chrysalis.JobState `json:"state"`
				Error string             `json:"error"`
			}
			if err := json.NewDecoder(r.Body).Decode(&js); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			switch js.State {
			case "done", "failed", "cancelled":
				if js.Error != "" {
					t.Logf("job error: %s", js.Error)
				}
				return js.State
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("job %s did not finish", id)
		return ""
	}
	if got := poll(ts.URL, st.ID); got != "done" {
		t.Fatalf("job state = %s, want done", got)
	}
	shutdown(srv, ts)

	// Restart on the same WAL directory: the finished job is history.
	srv2, ts2 := newServer()
	defer shutdown(srv2, ts2)
	if got := poll(ts2.URL, st.ID); got != "done" {
		t.Fatalf("recovered job state = %s, want done", got)
	}
}
