// Command tracecheck validates a Chrome trace-event / Perfetto JSON
// file, as produced by `chrysalis -trace-out` or chrysalisd's
// /v1/designs/{id}/trace endpoint. It is the assertion half of `make
// trace-smoke`: exit 0 when the file is structurally sound, exit 1
// with a diagnostic otherwise.
//
// Checks: the envelope parses, traceEvents is non-empty, every event
// has a known phase (X, i, C or M), timestamps are non-negative and
// sorted, and complete (X) events carry non-negative durations.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -min-events 10 trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func check(path string, minEvents int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	if len(tf.TraceEvents) < minEvents {
		return fmt.Errorf("%s: %d trace events, want at least %d", path, len(tf.TraceEvents), minEvents)
	}
	lastTS := -1.0
	counts := map[string]int{}
	for i, ev := range tf.TraceEvents {
		counts[ev.Ph]++
		switch ev.Ph {
		case "M":
			continue // metadata events carry no timestamp
		case "X", "i", "C":
		default:
			return fmt.Errorf("%s: event %d (%s) has unknown phase %q", path, i, ev.Name, ev.Ph)
		}
		if ev.TS == nil || *ev.TS < 0 {
			return fmt.Errorf("%s: event %d (%s) has missing or negative ts", path, i, ev.Name)
		}
		if *ev.TS < lastTS {
			return fmt.Errorf("%s: event %d (%s) out of order: ts %g after %g", path, i, ev.Name, *ev.TS, lastTS)
		}
		lastTS = *ev.TS
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			return fmt.Errorf("%s: X event %d (%s) has missing or negative dur", path, i, ev.Name)
		}
	}
	fmt.Printf("%s: ok (%d events: %d slices, %d instants, %d counters, %d metadata)\n",
		path, len(tf.TraceEvents), counts["X"], counts["i"], counts["C"], counts["M"])
	return nil
}

func main() {
	minEvents := flag.Int("min-events", 1, "minimum number of trace events required")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: usage: tracecheck [-min-events N] FILE...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		if err := check(path, *minEvents); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
	}
}
