package main

import (
	"strings"
	"testing"
)

func TestBuildSpecRejectsNegativeValues(t *testing.T) {
	cases := []struct {
		name                 string
		maxPanel, maxLatency float64
		budget               int
		wantSub              string
	}{
		{"negative max-panel", -1, 0, 400, "-max-panel"},
		{"negative max-latency", 0, -2, 400, "-max-latency"},
		{"negative budget", 0, 0, -100, "-budget"},
	}
	for _, tc := range cases {
		_, err := buildSpec("har", "msp430", "lat*sp", tc.maxPanel, tc.maxLatency, tc.budget, 1, "ga")
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not name the flag %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestBuildSpecValid(t *testing.T) {
	spec, err := buildSpec("har", "accel", "lat", 20, 0, 400, 1, "ga")
	if err != nil {
		t.Fatal(err)
	}
	if spec.MaxPanel != 20 || spec.WorkloadName != "har" {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestBuildSpecRejectsUnknownEnums(t *testing.T) {
	if _, err := buildSpec("har", "riscv", "lat", 0, 0, 400, 1, "ga"); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := buildSpec("har", "msp430", "throughput", 0, 0, 400, 1, "ga"); err == nil {
		t.Error("unknown objective accepted")
	}
}
