// Command chrysalis runs one CHRYSALIS design search from the command
// line: given a workload, platform, objective and constraints, it
// prints the ideal AuT configuration (energy harvester, inference
// hardware, per-layer dataflow) and its predicted metrics.
//
// Examples:
//
//	chrysalis -workload har -platform msp430 -objective 'lat*sp'
//	chrysalis -workload resnet18 -platform accel -objective lat -max-panel 20
//	chrysalis -workload kws -baseline wo/EA -budget 800 -json
//	chrysalis -workload har -algorithm nsga -patience 8  # Pareto front, plateau early stop
//	chrysalis -workload har -verify -trace-out trace.json   # open in ui.perfetto.dev
//	chrysalis -workload har -audit -waveform-out wave.csv   # physics flight recording
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"chrysalis"
)

func main() {
	var (
		workload     = flag.String("workload", "har", "workload name; one of: "+strings.Join(chrysalis.Workloads(), ", "))
		workloadFile = flag.String("workload-file", "", "path to a custom workload JSON (overrides -workload)")
		platform     = flag.String("platform", "msp430", "inference platform: msp430 or accel")
		objective    = flag.String("objective", "lat*sp", "objective: lat, sp or lat*sp")
		baseline     = flag.String("baseline", "chrysalis", "search space: "+strings.Join(chrysalis.Baselines(), ", "))
		maxPanel     = flag.Float64("max-panel", 0, "solar-panel bound in cm² for the lat objective (0 = 30)")
		maxLatency   = flag.Float64("max-latency", 0, "latency bound in seconds for the sp objective (0 = 30)")
		budget       = flag.Int("budget", 400, "approximate search-evaluation budget")
		seed         = flag.Int64("seed", 1, "search seed")
		searchWkrs   = flag.Int("search-workers", 0, "candidate-evaluation concurrency (0 = all cores, negative = serial); never changes results, only wall-clock time")
		warmMB       = flag.Int("warm-cache-mb", 0, "process-lifetime warm-start tier bound in MiB (0 = off); reuses plan ladders across the searches of one invocation (e.g. -sensitivity); never changes results")
		algorithm    = flag.String("algorithm", "ga", "search algorithm: ga, random or nsga (multi-objective Pareto front)")
		patience     = flag.Int("patience", 0, "stop after N generations with relative improvement below ~0.1% (0 = run the full budget); deterministic for any -search-workers")
		verify       = flag.Bool("verify", false, "replay the winning design on the co-simulator")
		simMode      = flag.String("sim-mode", "event", "co-simulator core for -verify/-audit replays: event (analytic fast path), step (bit-honest oracle) or differential (run both, fail on divergence)")
		explain      = flag.Bool("explain", false, "print the Figure-4 style loop nest of each layer's mapping")
		report       = flag.Bool("report", false, "emit the full pre-RTL design reference document")
		preset       = flag.String("preset", "", "deployment scenario preset (see -list-presets); overrides platform/objective/constraints")
		listPresets  = flag.Bool("list-presets", false, "list deployment scenario presets and exit")
		sensitivity  = flag.Bool("sensitivity", false, "print a one-at-a-time sensitivity analysis of the winning design")
		dumpWorkload = flag.String("dump-workload", "", "print a catalog workload as JSON and exit")
		asJSON       = flag.Bool("json", false, "emit the result as JSON")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event / Perfetto JSON of the run to FILE")
		waveformOut  = flag.String("waveform-out", "", "write the verify replay's energy waveform to FILE (.csv selects CSV, else JSON); implies -verify")
		auditFlag    = flag.Bool("audit", false, "run the energy-conservation audit on the verify replay (non-zero exit on findings); implies -verify")
		showVersion  = flag.Bool("version", false, "print version and exit")
		logLevel     = flag.String("log-level", "warn", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	if *showVersion {
		fmt.Printf("chrysalis %s (%s, %s/%s)\n", chrysalis.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	if err := setupLogging(*logLevel); err != nil {
		fatal(err)
	}

	if *listPresets {
		for _, p := range chrysalis.Presets() {
			fmt.Printf("  %-10s [%s] %s\n", p.Name, p.Domain, p.Description)
		}
		return
	}

	if *dumpWorkload != "" {
		w, err := chrysalis.WorkloadByName(*dumpWorkload)
		if err != nil {
			fatal(err)
		}
		data, err := w.ToJSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	spec, err := buildSpec(*workload, *platform, *objective, *maxPanel, *maxLatency, *budget, *seed, *algorithm)
	if err != nil {
		fatal(err)
	}
	spec.Search.Workers = *searchWkrs
	spec.Search.Patience = *patience
	if *warmMB < 0 {
		fatal(fmt.Errorf("-warm-cache-mb must be >= 0, got %d", *warmMB))
	}
	spec.Search.Warm = chrysalis.NewWarmCache(int64(*warmMB) << 20)
	spec.SimMode, err = chrysalis.ParseSimMode(*simMode)
	if err != nil {
		fatal(err)
	}
	if *workloadFile != "" {
		data, err := os.ReadFile(*workloadFile)
		if err != nil {
			fatal(err)
		}
		w, err := chrysalis.ParseWorkload(data)
		if err != nil {
			fatal(err)
		}
		spec.WorkloadName = ""
		spec.Workload = &w
	}
	var tr *chrysalis.Trace
	if *traceOut != "" {
		tr = chrysalis.NewTrace(0)
		spec.Search.Trace = tr
	}

	start := time.Now()
	var res chrysalis.Result
	if *preset != "" {
		res, err = chrysalis.DesignPreset(*preset, *workload, spec.Search)
	} else {
		res, err = chrysalis.DesignWithBaseline(spec, *baseline)
	}
	if err != nil {
		fatal(err)
	}
	slog.Info("design search finished", "evals", res.Evals, "elapsed", time.Since(start))

	if *report {
		doc, err := chrysalis.ReportWithVerification(spec, res)
		if err != nil {
			fatal(err)
		}
		fmt.Print(doc)
		return
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		printResult(res)
	}

	if *explain {
		fmt.Println()
		fmt.Println("mapping loop nests (Fig. 4 style):")
		for _, d := range res.Dataflow {
			for _, line := range d.LoopNest {
				fmt.Println("  " + line)
			}
		}
	}

	if *sensitivity {
		rows, err := chrysalis.Sensitivity(spec, res)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println("sensitivity (average latency at perturbed values):")
		for _, r := range rows {
			fmt.Printf("  %-20s low=%-12v high=%-12v swing=%.0f%%\n",
				r.Parameter, r.LatLow, r.LatHigh, r.Swing*100)
		}
	}

	if *verify || *auditFlag || *waveformOut != "" {
		// When tracing, route the replay's events through the sim trace
		// adapter so power cycles, tiles and checkpoints land in the
		// export alongside the search spans. A flight recorder rides
		// along when the waveform or the audit was requested.
		var rec *chrysalis.FlightRecorder
		if *auditFlag || *waveformOut != "" {
			rec = chrysalis.NewFlightRecorder(0)
		}
		adapter := chrysalis.NewSimTraceAdapter(tr)
		run, auditRep, err := chrysalis.VerifyFlight(spec, res, adapter.Trace, rec)
		adapter.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s-simulator verification (first environment):\n", spec.SimMode)
		fmt.Printf("  completed:     %v\n", run.Completed)
		fmt.Printf("  e2e latency:   %v\n", run.E2ELatency)
		fmt.Printf("  power cycles:  %d\n", run.PowerCycles)
		fmt.Printf("  checkpoints:   %d (+%d resumes, %d retries)\n", run.Checkpoints, run.Resumes, run.TileRetries)
		fmt.Printf("  system eff.:   %.1f%%\n", run.SystemEfficiency*100)

		if *waveformOut != "" {
			if err := writeWaveform(*waveformOut, rec); err != nil {
				fatal(err)
			}
			slog.Info("waveform written", "path", *waveformOut)
		}
		if *auditFlag {
			fmt.Printf("\n%s\n", auditRep)
			if !auditRep.OK() {
				for _, f := range auditRep.Findings {
					fmt.Printf("  [%s] cycle %d t=%.6gs: %s\n", f.Check, f.Cycle, f.TimeS, f.Detail)
				}
				if *traceOut != "" {
					_ = writeTrace(*traceOut, tr)
				}
				os.Exit(1)
			}
		}
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, tr); err != nil {
			fatal(err)
		}
		slog.Info("trace written", "path", *traceOut)
	}
}

// writeWaveform exports the flight recording as CSV (.csv paths) or
// JSON (anything else).
func writeWaveform(path string, rec *chrysalis.FlightRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	wf := rec.Waveform()
	if strings.HasSuffix(path, ".csv") {
		err = wf.WriteCSV(f)
	} else {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(wf)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// setupLogging installs a stderr slog handler at the requested level.
func setupLogging(level string) error {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})))
	return nil
}

// writeTrace exports the recorded spans as Perfetto-loadable JSON.
func writeTrace(path string, tr *chrysalis.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildSpec(workload, platform, objective string, maxPanel, maxLatency float64, budget int, seed int64, algorithm string) (chrysalis.Spec, error) {
	spec := chrysalis.Spec{}
	switch {
	case maxPanel < 0:
		return spec, fmt.Errorf("-max-panel must be non-negative, got %g", maxPanel)
	case maxLatency < 0:
		return spec, fmt.Errorf("-max-latency must be non-negative, got %g", maxLatency)
	case budget < 0:
		return spec, fmt.Errorf("-budget must be non-negative, got %d", budget)
	}
	spec = chrysalis.Spec{
		WorkloadName: workload,
		MaxPanel:     chrysalis.AreaCM2(maxPanel),
		MaxLatency:   chrysalis.Seconds(maxLatency),
		Search:       chrysalis.SearchConfig{Algorithm: algorithm, Budget: budget, Seed: seed},
	}
	switch platform {
	case "msp430":
		spec.Platform = chrysalis.MSP430
	case "accel":
		spec.Platform = chrysalis.Accelerator
	default:
		return spec, fmt.Errorf("unknown platform %q (want msp430 or accel)", platform)
	}
	switch objective {
	case "lat":
		spec.Objective = chrysalis.MinimizeLatency
	case "sp":
		spec.Objective = chrysalis.MinimizeSP
	case "lat*sp", "latsp":
		spec.Objective = chrysalis.MinimizeLatTimesSP
	default:
		return spec, fmt.Errorf("unknown objective %q (want lat, sp or lat*sp)", objective)
	}
	return spec, nil
}

func printResult(res chrysalis.Result) {
	fmt.Printf("ideal AuT design (%s, objective %s):\n", res.Baseline, res.Objective)
	fmt.Printf("  energy subsystem:    %v solar panel, %v capacitor\n", res.PanelArea, res.Cap)
	if res.InferHW == "msp430" {
		fmt.Printf("  inference subsystem: MSP430FR5994 + LEA\n")
	} else {
		fmt.Printf("  inference subsystem: %s array, %d PEs, %v PE cache\n", res.InferHW, res.NPE, res.CacheBytes)
	}
	fmt.Printf("  avg latency:         %v   (lat*sp = %.3g cm²·s)\n", res.AvgLatency, res.LatSP)
	for _, e := range res.PerEnv {
		fmt.Printf("    %-7s latency %v, energy %v, efficiency %.1f%%\n",
			e.Env+":", e.Latency, e.Energy, e.Efficiency*100)
	}
	fmt.Printf("  search evaluations:  %d\n", res.Evals)
	if res.StoppedEarly {
		fmt.Printf("  early stop:          plateau after %d generations (-patience)\n", len(res.History))
	}
	if len(res.Front) > 0 {
		fmt.Println("  pareto front (latency vs panel area):")
		for _, m := range res.Front {
			fmt.Printf("    %-8v %v cap, latency %v  (lat*sp = %.3g cm²·s)\n",
				m.PanelArea, m.Cap, m.Latency, m.LatSP)
		}
	}
	fmt.Println("  per-layer dataflow:")
	for _, d := range res.Dataflow {
		fmt.Printf("    %-12s %s/%s  N_tile=%-4d ckpt=%v\n",
			d.Layer, d.Dataflow, d.Partition, d.NTile, d.CkptBytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chrysalis:", err)
	os.Exit(1)
}
