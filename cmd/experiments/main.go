// Command experiments regenerates the tables and figures of the
// paper's evaluation section. Each experiment prints the rows/series
// behind the corresponding figure; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// Examples:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run all -budget 800 -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"chrysalis/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		budget  = flag.Int("budget", 400, "search budget per scenario")
		pareto  = flag.Int("pareto", 600, "random samples for the Figure 6 Pareto scan")
		seed    = flag.Int64("seed", 1, "experiment seed")
		fast    = flag.Bool("fast", false, "trim workload sets for a quick pass")
		outPath = flag.String("out", "", "also write output to this file")
	)
	flag.Parse()

	if *list {
		for _, g := range experiments.Generators() {
			fmt.Printf("  %-9s %s\n", g.ID, g.Desc)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := experiments.Options{
		Budget:        *budget,
		ParetoSamples: *pareto,
		Seed:          *seed,
		Fast:          *fast,
	}

	if *run == "all" {
		if err := experiments.All(w, opts); err != nil {
			fatal(err)
		}
		return
	}
	g, err := experiments.ByID(*run)
	if err != nil {
		fatal(err)
	}
	if err := g.Run(w, opts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
