// Command benchguard compares a fresh benchmark record (the JSON
// emitted by cmd/benchjson, see `make bench-json`) against a committed
// baseline record and exits non-zero when a guarded benchmark regressed
// beyond the allowed ratio. It is the CI tripwire that keeps
// observability work honest: tracing hooks, metrics registration and
// timeline bookkeeping all ride the hot search path, and this tool
// fails the build if they start costing real throughput.
//
// Usage:
//
//	benchguard -baseline BENCH_PR7.json -candidate /tmp/bench.json \
//	    -bench GASearch,AccelSearch -max-regress 0.25
//
// Entries are matched by (name, procs) so a -cpu 1,4 sweep guards the
// serial and parallel widths independently. -bench restricts which
// benchmarks can fail the run (others are still reported); empty
// guards every matched benchmark. A guarded benchmark missing from
// either record is itself a failure — silently dropping a benchmark
// must not green the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// Benchmark mirrors cmd/benchjson's entry; only the fields benchguard
// compares are declared, unknown fields are ignored.
type Benchmark struct {
	Name    string  `json:"name"`
	Procs   int     `json:"procs,omitempty"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Record mirrors cmd/benchjson's envelope.
type Record struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchKey identifies one benchmark variant across records.
type benchKey struct {
	name  string
	procs int
}

func (k benchKey) String() string {
	if k.procs > 0 {
		return fmt.Sprintf("%s-%d", k.name, k.procs)
	}
	return k.name
}

// delta is one matched benchmark's comparison.
type delta struct {
	key      benchKey
	baseNs   float64
	candNs   float64
	ratio    float64 // candNs / baseNs - 1; positive = slower
	guarded  bool
	breached bool
}

// compare matches candidate benchmarks to the baseline by (name,
// procs) and flags guarded entries whose slowdown exceeds maxRegress.
// guard is the set of guarded names (nil/empty = guard everything).
// The returned missing list holds guarded names absent from either
// record's match set.
func compare(base, cand Record, guard map[string]bool, maxRegress float64) (deltas []delta, missing []string) {
	ref := make(map[benchKey]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		ref[benchKey{b.Name, b.Procs}] = b.NsPerOp
	}
	matched := make(map[string]bool)
	for _, b := range cand.Benchmarks {
		k := benchKey{b.Name, b.Procs}
		baseNs, ok := ref[k]
		if !ok || baseNs <= 0 || b.NsPerOp <= 0 {
			continue
		}
		d := delta{
			key:     k,
			baseNs:  baseNs,
			candNs:  b.NsPerOp,
			ratio:   b.NsPerOp/baseNs - 1,
			guarded: len(guard) == 0 || guard[b.Name],
		}
		d.breached = d.guarded && d.ratio > maxRegress
		deltas = append(deltas, d)
		matched[b.Name] = true
	}
	for name := range guard {
		if !matched[name] {
			missing = append(missing, name)
		}
	}
	return deltas, missing
}

func readRecord(path string) (Record, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return Record{}, err
		}
		defer f.Close()
		r = f
	}
	var rec Record
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return Record{}, fmt.Errorf("%s: no benchmarks in record", path)
	}
	return rec, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline record (benchjson output)")
	candidate := flag.String("candidate", "-", "fresh record to check, or - for stdin")
	benches := flag.String("bench", "GASearch,AccelSearch",
		"comma-separated benchmark names that gate the run (empty = all matched)")
	maxRegress := flag.Float64("max-regress", 0.25,
		"maximum tolerated slowdown as a fraction (0.25 = fail beyond +25% ns/op)")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}

	base, err := readRecord(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := readRecord(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: candidate: %v\n", err)
		os.Exit(2)
	}

	guard := map[string]bool{}
	for _, n := range strings.Split(*benches, ",") {
		if n = strings.TrimSpace(n); n != "" {
			guard[n] = true
		}
	}

	deltas, missing := compare(base, cand, guard, *maxRegress)
	failed := len(missing) > 0
	for _, d := range deltas {
		mark := " "
		switch {
		case d.breached:
			mark, failed = "F", true
		case d.guarded:
			mark = "*"
		}
		fmt.Printf("%s %-22s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			mark, d.key, d.baseNs, d.candNs, d.ratio*100)
	}
	for _, name := range missing {
		fmt.Printf("F %-22s missing from baseline or candidate record\n", name)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — regression beyond +%.0f%% (or guarded benchmark missing)\n",
			*maxRegress*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: OK — %d benchmarks within +%.0f%% of %s\n",
		len(deltas), *maxRegress*100, *baseline)
}
