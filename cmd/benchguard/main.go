// Command benchguard compares a fresh benchmark record (the JSON
// emitted by cmd/benchjson, see `make bench-json`) against a committed
// baseline record and exits non-zero when a guarded benchmark regressed
// beyond the allowed ratio. It is the CI tripwire that keeps
// observability work honest: tracing hooks, metrics registration and
// timeline bookkeeping all ride the hot search path, and this tool
// fails the build if they start costing real throughput.
//
// Usage:
//
//	benchguard -baseline BENCH_PR7.json -candidate /tmp/bench.json \
//	    -bench GASearch,AccelSearch -max-regress 0.25
//
// -baseline auto discovers the newest committed record by itself: it
// picks the BENCH_*.json in the current directory with the highest
// trailing number (BENCH_PR9.json beats BENCH_PR7.json), so the
// Makefile never hardcodes a PR-numbered baseline again.
//
// Entries are matched by (name, procs) so a -cpu 1,4 sweep guards the
// serial and parallel widths independently; repeated entries from a
// -count=N run collapse to their fastest, the estimate least
// contaminated by machine noise. -bench restricts which
// benchmarks can fail the run (others are still reported); empty
// guards every matched benchmark. A guarded benchmark missing from
// either record is itself a failure — silently dropping a benchmark
// must not green the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark mirrors cmd/benchjson's entry; only the fields benchguard
// compares are declared, unknown fields are ignored.
type Benchmark struct {
	Name    string  `json:"name"`
	Procs   int     `json:"procs,omitempty"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Record mirrors cmd/benchjson's envelope.
type Record struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchKey identifies one benchmark variant across records.
type benchKey struct {
	name  string
	procs int
}

func (k benchKey) String() string {
	if k.procs > 0 {
		return fmt.Sprintf("%s-%d", k.name, k.procs)
	}
	return k.name
}

// delta is one matched benchmark's comparison.
type delta struct {
	key      benchKey
	baseNs   float64
	candNs   float64
	ratio    float64 // candNs / baseNs - 1; positive = slower
	guarded  bool
	breached bool
}

// minByKey collapses a record to the minimum positive ns/op per
// (name, procs). Records carry one entry per `go test` output line, so
// a -count=N run yields N entries per key; the fastest one is the
// least machine-noise-contaminated estimate and is what the guard
// should judge.
func minByKey(rec Record) map[benchKey]float64 {
	out := make(map[benchKey]float64, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if b.NsPerOp <= 0 {
			continue
		}
		k := benchKey{b.Name, b.Procs}
		if prev, ok := out[k]; !ok || b.NsPerOp < prev {
			out[k] = b.NsPerOp
		}
	}
	return out
}

// compare matches candidate benchmarks to the baseline by (name,
// procs) — collapsing repeated entries (-count=N runs) to their
// fastest — and flags guarded entries whose slowdown exceeds
// maxRegress. guard is the set of guarded names (nil/empty = guard
// everything). The returned missing list holds guarded names absent
// from either record's match set.
func compare(base, cand Record, guard map[string]bool, maxRegress float64) (deltas []delta, missing []string) {
	ref := minByKey(base)
	matched := make(map[string]bool)
	for k, candNs := range minByKey(cand) {
		baseNs, ok := ref[k]
		if !ok || baseNs <= 0 {
			continue
		}
		d := delta{
			key:     k,
			baseNs:  baseNs,
			candNs:  candNs,
			ratio:   candNs/baseNs - 1,
			guarded: len(guard) == 0 || guard[k.name],
		}
		d.breached = d.guarded && d.ratio > maxRegress
		deltas = append(deltas, d)
		matched[k.name] = true
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].key.name != deltas[j].key.name {
			return deltas[i].key.name < deltas[j].key.name
		}
		return deltas[i].key.procs < deltas[j].key.procs
	})
	for name := range guard {
		if !matched[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return deltas, missing
}

// baselinePattern matches committed bench records; the captured digits
// order them (BENCH_PR10.json > BENCH_PR9.json, numerically not
// lexically).
var baselinePattern = regexp.MustCompile(`^BENCH_[A-Za-z]*(\d+)\.json$`)

// autoBaseline returns the BENCH_*.json in dir with the highest
// trailing number. Ties cannot happen (the number is the whole key).
func autoBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best := -1
	var path string
	for _, e := range entries {
		m := baselinePattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= best {
			continue
		}
		best, path = n, filepath.Join(dir, e.Name())
	}
	if best < 0 {
		return "", fmt.Errorf("no BENCH_*.json records in %s", dir)
	}
	return path, nil
}

func readRecord(path string) (Record, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return Record{}, err
		}
		defer f.Close()
		r = f
	}
	var rec Record
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return Record{}, fmt.Errorf("%s: no benchmarks in record", path)
	}
	return rec, nil
}

func main() {
	baseline := flag.String("baseline", "auto",
		"committed baseline record (benchjson output), or auto = newest BENCH_*.json in -dir")
	dir := flag.String("dir", ".", "directory searched by -baseline auto")
	candidate := flag.String("candidate", "-", "fresh record to check, or - for stdin")
	benches := flag.String("bench", "GASearch,AccelSearch",
		"comma-separated benchmark names that gate the run (empty = all matched)")
	maxRegress := flag.Float64("max-regress", 0.25,
		"maximum tolerated slowdown as a fraction (0.25 = fail beyond +25% ns/op)")
	flag.Parse()
	if *baseline == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	if *baseline == "auto" {
		picked, err := autoBaseline(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: baseline auto-discovery: %v\n", err)
			os.Exit(2)
		}
		*baseline = picked
	}

	base, err := readRecord(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := readRecord(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: candidate: %v\n", err)
		os.Exit(2)
	}

	guard := map[string]bool{}
	for _, n := range strings.Split(*benches, ",") {
		if n = strings.TrimSpace(n); n != "" {
			guard[n] = true
		}
	}

	deltas, missing := compare(base, cand, guard, *maxRegress)
	failed := len(missing) > 0
	for _, d := range deltas {
		mark := " "
		switch {
		case d.breached:
			mark, failed = "F", true
		case d.guarded:
			mark = "*"
		}
		fmt.Printf("%s %-22s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			mark, d.key, d.baseNs, d.candNs, d.ratio*100)
	}
	for _, name := range missing {
		fmt.Printf("F %-22s missing from baseline or candidate record\n", name)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — regression beyond +%.0f%% (or guarded benchmark missing)\n",
			*maxRegress*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: OK — %d benchmarks within +%.0f%% of %s\n",
		len(deltas), *maxRegress*100, *baseline)
}
