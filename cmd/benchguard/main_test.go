package main

import (
	"os"
	"path/filepath"
	"testing"
)

func rec(bs ...Benchmark) Record { return Record{Benchmarks: bs} }

func TestCompareGuardedRegressionBreaches(t *testing.T) {
	base := rec(
		Benchmark{Name: "GASearch", NsPerOp: 1000},
		Benchmark{Name: "GASearch", Procs: 4, NsPerOp: 400},
		Benchmark{Name: "CostModel", NsPerOp: 40},
	)
	cand := rec(
		Benchmark{Name: "GASearch", NsPerOp: 1100},          // +10%: fine
		Benchmark{Name: "GASearch", Procs: 4, NsPerOp: 600}, // +50%: breach
		Benchmark{Name: "CostModel", NsPerOp: 100},          // +150% but unguarded
	)
	guard := map[string]bool{"GASearch": true}
	deltas, missing := compare(base, cand, guard, 0.25)
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	byKey := map[string]delta{}
	for _, d := range deltas {
		byKey[d.key.String()] = d
	}
	if byKey["GASearch"].breached {
		t.Error("GASearch +10% flagged as breach at 25% threshold")
	}
	if !byKey["GASearch-4"].breached {
		t.Error("GASearch-4 +50% not flagged as breach")
	}
	if byKey["CostModel"].breached || byKey["CostModel"].guarded {
		t.Error("unguarded CostModel must never breach")
	}
}

func TestCompareMissingGuardedBench(t *testing.T) {
	base := rec(Benchmark{Name: "GASearch", NsPerOp: 1000})
	cand := rec(Benchmark{Name: "GASearch", NsPerOp: 1000})
	_, missing := compare(base, cand, map[string]bool{"GASearch": true, "AccelSearch": true}, 0.25)
	if len(missing) != 1 || missing[0] != "AccelSearch" {
		t.Fatalf("missing = %v, want [AccelSearch]", missing)
	}
}

func TestCompareProcsMatchIsExact(t *testing.T) {
	// A -cpu 4 candidate line must not match a single-proc baseline.
	base := rec(Benchmark{Name: "AccelSearch", NsPerOp: 1000})
	cand := rec(Benchmark{Name: "AccelSearch", Procs: 4, NsPerOp: 5000})
	deltas, missing := compare(base, cand, map[string]bool{"AccelSearch": true}, 0.25)
	if len(deltas) != 0 {
		t.Fatalf("deltas = %v, want no cross-procs match", deltas)
	}
	if len(missing) != 1 {
		t.Fatalf("missing = %v, want AccelSearch reported missing", missing)
	}
}

func TestCompareEmptyGuardGuardsEverything(t *testing.T) {
	base := rec(Benchmark{Name: "CostModel", NsPerOp: 40})
	cand := rec(Benchmark{Name: "CostModel", NsPerOp: 100})
	deltas, _ := compare(base, cand, nil, 0.25)
	if len(deltas) != 1 || !deltas[0].breached {
		t.Fatalf("deltas = %+v, want the single entry breached", deltas)
	}
}

func TestCompareCollapsesRepeatedRunsToFastest(t *testing.T) {
	// A -count=3 candidate contributes three lines per key; the guard
	// must judge the fastest one (a single noisy-slow rep, here +60%,
	// must not breach when another rep is clean).
	base := rec(
		Benchmark{Name: "GASearch", NsPerOp: 1000},
		Benchmark{Name: "GASearch", NsPerOp: 900}, // baseline collapses too
	)
	cand := rec(
		Benchmark{Name: "GASearch", NsPerOp: 1600},
		Benchmark{Name: "GASearch", NsPerOp: 950},
		Benchmark{Name: "GASearch", NsPerOp: 1200},
	)
	deltas, missing := compare(base, cand, map[string]bool{"GASearch": true}, 0.25)
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	if len(deltas) != 1 {
		t.Fatalf("deltas = %d, want the three reps collapsed to one", len(deltas))
	}
	d := deltas[0]
	if d.baseNs != 900 || d.candNs != 950 {
		t.Errorf("collapsed to %v -> %v ns/op, want 900 -> 950 (min of each)", d.baseNs, d.candNs)
	}
	if d.breached {
		t.Error("fastest rep +5.6% flagged as breach at 25% threshold")
	}
}

func TestAutoBaselinePicksHighestNumber(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR7.json", "BENCH_PR9.json", "BENCH_PR10.json",
		"BENCH_notes.txt", "bench_pr99.json", "BENCH_PR3.json.bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := autoBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric ordering: PR10 beats PR9 and PR7 even though "BENCH_PR10"
	// sorts before "BENCH_PR7" lexically.
	if want := filepath.Join(dir, "BENCH_PR10.json"); got != want {
		t.Errorf("autoBaseline = %q, want %q", got, want)
	}

	empty := t.TempDir()
	if _, err := autoBaseline(empty); err == nil {
		t.Error("autoBaseline on an empty directory should fail")
	}
}
