package main

import "testing"

func rec(bs ...Benchmark) Record { return Record{Benchmarks: bs} }

func TestCompareGuardedRegressionBreaches(t *testing.T) {
	base := rec(
		Benchmark{Name: "GASearch", NsPerOp: 1000},
		Benchmark{Name: "GASearch", Procs: 4, NsPerOp: 400},
		Benchmark{Name: "CostModel", NsPerOp: 40},
	)
	cand := rec(
		Benchmark{Name: "GASearch", NsPerOp: 1100},           // +10%: fine
		Benchmark{Name: "GASearch", Procs: 4, NsPerOp: 600},  // +50%: breach
		Benchmark{Name: "CostModel", NsPerOp: 100},           // +150% but unguarded
	)
	guard := map[string]bool{"GASearch": true}
	deltas, missing := compare(base, cand, guard, 0.25)
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	byKey := map[string]delta{}
	for _, d := range deltas {
		byKey[d.key.String()] = d
	}
	if byKey["GASearch"].breached {
		t.Error("GASearch +10% flagged as breach at 25% threshold")
	}
	if !byKey["GASearch-4"].breached {
		t.Error("GASearch-4 +50% not flagged as breach")
	}
	if byKey["CostModel"].breached || byKey["CostModel"].guarded {
		t.Error("unguarded CostModel must never breach")
	}
}

func TestCompareMissingGuardedBench(t *testing.T) {
	base := rec(Benchmark{Name: "GASearch", NsPerOp: 1000})
	cand := rec(Benchmark{Name: "GASearch", NsPerOp: 1000})
	_, missing := compare(base, cand, map[string]bool{"GASearch": true, "AccelSearch": true}, 0.25)
	if len(missing) != 1 || missing[0] != "AccelSearch" {
		t.Fatalf("missing = %v, want [AccelSearch]", missing)
	}
}

func TestCompareProcsMatchIsExact(t *testing.T) {
	// A -cpu 4 candidate line must not match a single-proc baseline.
	base := rec(Benchmark{Name: "AccelSearch", NsPerOp: 1000})
	cand := rec(Benchmark{Name: "AccelSearch", Procs: 4, NsPerOp: 5000})
	deltas, missing := compare(base, cand, map[string]bool{"AccelSearch": true}, 0.25)
	if len(deltas) != 0 {
		t.Fatalf("deltas = %v, want no cross-procs match", deltas)
	}
	if len(missing) != 1 {
		t.Fatalf("missing = %v, want AccelSearch reported missing", missing)
	}
}

func TestCompareEmptyGuardGuardsEverything(t *testing.T) {
	base := rec(Benchmark{Name: "CostModel", NsPerOp: 40})
	cand := rec(Benchmark{Name: "CostModel", NsPerOp: 100})
	deltas, _ := compare(base, cand, nil, 0.25)
	if len(deltas) != 1 || !deltas[0].breached {
		t.Fatalf("deltas = %+v, want the single entry breached", deltas)
	}
}
