// Command autsim runs a single AuT configuration through the
// step-based co-simulator and prints the run summary with an energy
// breakdown — useful for inspecting one design point in detail (the
// CHRYSALIS Evaluator exposed directly).
//
// Examples:
//
//	autsim -workload har -panel 8 -cap 100e-6
//	autsim -workload resnet18 -arch eyeriss -pe 128 -cache 1024 -panel 20 -cap 1e-3 -env dark
package main

import (
	"flag"
	"fmt"
	"os"

	"chrysalis/internal/accel"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/trace"
	"chrysalis/internal/units"
)

func main() {
	var (
		workload = flag.String("workload", "har", "workload name")
		arch     = flag.String("arch", "", "accelerator architecture (tpu or eyeriss); empty = MSP430")
		pe       = flag.Int("pe", 64, "PE count (accelerator only)")
		cache    = flag.Int("cache", 512, "PE cache bytes (accelerator only)")
		panel    = flag.Float64("panel", 8, "solar panel area in cm²")
		capF     = flag.Float64("cap", 100e-6, "capacitor size in farads")
		envName  = flag.String("env", "bright", "environment: bright or dark")
		step     = flag.Float64("step", 1e-3, "simulation step in seconds")
		jitter   = flag.Float64("jitter", 0, "per-tile energy jitter fraction (platform noise)")
		seed     = flag.Uint64("seed", 1, "jitter seed")
		policy   = flag.String("policy", "every-tile", "checkpoint policy: every-tile, adaptive or none")
		traceN   = flag.Int("trace", 0, "print up to N simulator events")
		waveform = flag.Bool("waveform", false, "plot the capacitor voltage waveform")
		analyze  = flag.Bool("analyze", false, "print the per-layer cost profile and exit")
	)
	flag.Parse()

	wl, err := dnn.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	var env solar.Environment
	switch *envName {
	case "bright":
		env = solar.Bright()
	case "dark":
		env = solar.Dark()
	default:
		fatal(fmt.Errorf("unknown environment %q", *envName))
	}

	sc := explore.Scenario{
		Workload:  wl,
		Platform:  explore.MSP,
		Objective: explore.Lat,
		Envs:      []solar.Environment{env},
	}
	cand := explore.Candidate{
		PanelArea: units.AreaCM2(*panel),
		Cap:       units.Capacitance(*capF),
	}
	hw := msp430.Config{}.HW()
	if *arch != "" {
		a, err := accel.ParseArch(*arch)
		if err != nil {
			fatal(err)
		}
		cfg := accel.Config{Arch: a, NPE: *pe, CacheBytes: units.Bytes(*cache)}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		sc.Platform = explore.Accel
		cand.Accel = &cfg
		hw, err = cfg.HW(cfg.NativeDataflow())
		if err != nil {
			fatal(err)
		}
	}

	if *analyze {
		df := dataflow.OS
		if cand.Accel != nil {
			df = cand.Accel.NativeDataflow()
		}
		rows, err := dataflow.Analyze(wl, df, hw)
		if err != nil {
			fatal(err)
		}
		t := trace.NewTable(fmt.Sprintf("per-layer profile: %s (%s dataflow)", wl.Name, df),
			"Layer", "Kind", "MACs", "AI (MACs/B)", "Mapping", "Energy", "Time", "E share", "T share")
		for _, r := range rows {
			t.AddRow(r.Layer, r.Kind,
				fmt.Sprintf("%d", r.MACs),
				fmt.Sprintf("%.1f", r.ArithmeticIntensity),
				fmt.Sprintf("%s/%d", r.Mapping.Partition, r.Mapping.NTile),
				r.Energy.String(), r.Time.String(),
				fmt.Sprintf("%.0f%%", r.EnergyShare*100),
				fmt.Sprintf("%.0f%%", r.TimeShare*100))
		}
		if err := t.Render(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	ev, err := explore.EvaluateCandidate(sc, cand)
	if err != nil {
		fatal(err)
	}
	es, err := energy.NewSolar(energy.Spec{PanelArea: cand.PanelArea, Cap: cand.Cap}, env)
	if err != nil {
		fatal(err)
	}
	var pol sim.Policy
	switch *policy {
	case "every-tile":
		pol = sim.PolicyEveryTile
	case "adaptive":
		pol = sim.PolicyAdaptive
	case "none":
		pol = sim.PolicyNone
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	var rec sim.EventRecorder
	rec.Max = *traceN
	simCfg := sim.Config{
		Energy: es, HW: hw, Plans: evPlans(ev),
		Step: units.Seconds(*step), Jitter: *jitter, Seed: *seed,
		Policy: pol,
	}
	if *traceN > 0 {
		simCfg.Trace = rec.Trace
	}
	if *waveform {
		simCfg.SampleEvery = units.Seconds(*step) * 5
	}
	run, err := sim.Run(simCfg)
	if err != nil {
		fatal(err)
	}
	if *traceN > 0 {
		fmt.Printf("event trace (first %d of %d+):\n", len(rec.Events), len(rec.Events)+rec.Dropped)
		for _, e := range rec.Events {
			fmt.Printf("  %-10v %-11s tile=%-3d layer=%-3d V=%v\n", e.Time, e.Kind, e.Tile, e.Layer, e.Voltage)
		}
		fmt.Println()
	}

	fmt.Printf("autsim: %s on %s — panel %v, cap %v, env %s\n\n",
		wl.Name, cand, cand.PanelArea, cand.Cap, env.Name())
	fmt.Printf("completed:      %v\n", run.Completed)
	fmt.Printf("e2e latency:    %v (analytic estimate %v)\n", run.E2ELatency, ev.PerEnv[0].Latency)
	fmt.Printf("active time:    %v\n", run.ActiveTime)
	fmt.Printf("power cycles:   %d\n", run.PowerCycles)
	fmt.Printf("checkpoints:    %d saves, %d resumes, %d tile retries\n",
		run.Checkpoints, run.Resumes, run.TileRetries)
	fmt.Printf("system eff.:    %.1f%%\n\n", run.SystemEfficiency*100)

	if *waveform && len(run.VoltageTrace) > 1 {
		times := make([]float64, len(run.VoltageTrace))
		volts := make([]float64, len(run.VoltageTrace))
		for i, smp := range run.VoltageTrace {
			times[i] = float64(smp.Time)
			volts[i] = float64(smp.Voltage)
		}
		fmt.Println("capacitor voltage waveform:")
		fmt.Println(trace.Waveform(times, volts, 70, 10))
		fmt.Println()
	}

	b := run.Breakdown
	total := float64(b.Delivered())
	if total > 0 {
		fmt.Println("load-side energy breakdown:")
		fmt.Println(trace.Bar("infer", float64(b.Infer)/total, 40))
		fmt.Println(trace.Bar("nvm i/o", float64(b.NVMIO)/total, 40))
		fmt.Println(trace.Bar("static", float64(b.Static)/total, 40))
		fmt.Println(trace.Bar("checkpoint", float64(b.Ckpt)/total, 40))
		fmt.Println(trace.Bar("wasted", float64(b.Wasted)/total, 40))
	}
	if h := float64(b.Harvested); h > 0 {
		fmt.Println("\nharvest-side energy:")
		fmt.Println(trace.Bar("to load", total/h, 40))
		fmt.Println(trace.Bar("conversion", float64(b.ConversionLoss)/h, 40))
		fmt.Println(trace.Bar("cap leakage", float64(b.CapLeakage)/h, 40))
		fmt.Println(trace.Bar("spilled", float64(b.SpilledHarvest)/h, 40))
	}
}

// evPlans extracts the plan slice from an evaluation.
func evPlans(ev explore.Evaluation) []intermittent.Plan {
	plans := make([]intermittent.Plan, len(ev.Mappings))
	for i, m := range ev.Mappings {
		plans[i] = m.Plan
	}
	return plans
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autsim:", err)
	os.Exit(1)
}
