// Command chrysalisd serves the CHRYSALIS design pipeline over
// HTTP/JSON: asynchronous design-search jobs with live SSE telemetry,
// synchronous step-simulation, a content-addressed result cache,
// Prometheus-style metrics, per-job Perfetto traces and pprof
// profiling endpoints.
//
// Quickstart:
//
//	chrysalisd -addr :8080 &
//	curl -s -X POST localhost:8080/v1/designs \
//	     -d '{"workload":"har","budget":200}'          # => {"id":"j-000001",...}
//	curl -N localhost:8080/v1/designs/j-000001/events  # live GA progress
//	curl -s localhost:8080/v1/designs/j-000001         # status / result
//	curl -s localhost:8080/v1/designs/j-000001/trace \
//	     -o trace.json                                 # open in ui.perfetto.dev
//	curl -s localhost:8080/v1/designs/j-000001/timeline # end-to-end phase timeline
//	curl -s localhost:8080/v1/designs/j-000001/convergence # per-generation search quality
//	curl -s localhost:8080/v1/fleet                    # aggregated cluster view
//	curl -s 'localhost:8080/v1/designs/j-000001/waveform?format=csv' \
//	     -o wave.csv                                   # flight recording (verify jobs)
//	open http://localhost:8080/debug/dashboard         # live flight deck
//	curl -s localhost:8080/metrics | grep chrysalisd_
//	go tool pprof localhost:8080/debug/pprof/profile
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// jobs (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"chrysalis/internal/obs"
	"chrysalis/internal/serve"
)

// parseLogLevel maps the -log-level flag onto a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "design-job worker pool size (0 = GOMAXPROCS)")
		searchWkrs   = flag.Int("search-workers", 0, "default per-job search-evaluation concurrency (0 = auto); grants are capped by a process-global semaphore sized to GOMAXPROCS minus the -workers pool width, so jobs x search workers never oversubscribes the machine; never changes results")
		cacheSize    = flag.Int("cache", 128, "result-cache capacity in designs")
		warmMB       = flag.Int("warm-cache-mb", 0, "process-lifetime warm-start tier bound in MiB (0 = off); near-duplicate jobs reuse plan ladders instead of rebuilding them; never changes results")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job search deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
		traceEvents  = flag.Int("trace-events", 0, "per-job span ring-buffer capacity (0 = default)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		showVersion  = flag.Bool("version", false, "print version and exit")

		walDir       = flag.String("wal-dir", "", "write-ahead-log directory for a durable job store (empty = in-memory only); queued and running jobs survive a crash and re-run on restart")
		self         = flag.String("self", "", "this node's base URL as listed in -peers (cluster mode)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every cluster node including this one (empty = single node); all nodes must pass the same list")
		clusterTO    = flag.Duration("cluster-timeout", 0, "per-peer-call timeout in cluster mode (0 = 2s)")
		quota        = flag.Float64("quota", 0, "per-client sustained submissions/sec, keyed on the X-API-Key header (0 = unlimited); over-quota submissions get 429 + Retry-After")
		quotaBurst   = flag.Int("quota-burst", 0, "per-client burst allowance in submissions (0 = 2x -quota, minimum 1)")
		sloLatency   = flag.Duration("slo-latency", 0, "job-latency SLO target; jobs finishing within it count as good (0 = 30s)")
		sloObjective = flag.Float64("slo-objective", 0, "target good-fraction of jobs for the SLO burn-rate gauges (0 = 0.99)")
	)
	queueDepth := flag.Int("max-queue", 64, "maximum queued jobs before submissions are shed with 429 + Retry-After")
	flag.IntVar(queueDepth, "queue", 64, "alias for -max-queue (kept for compatibility)")
	flag.Parse()
	if *showVersion {
		fmt.Printf("chrysalisd %s (%s, %s/%s)\n", obs.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	if *workers < 0 || *searchWkrs < 0 || *queueDepth < 0 || *cacheSize < 0 || *warmMB < 0 || *quota < 0 || *quotaBurst < 0 {
		fmt.Fprintln(os.Stderr, "chrysalisd: -workers, -search-workers, -max-queue, -cache, -warm-cache-mb, -quota and -quota-burst must be non-negative")
		os.Exit(1)
	}
	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		if *self == "" {
			fmt.Fprintln(os.Stderr, "chrysalisd: -peers requires -self (this node's own URL from the list)")
			os.Exit(1)
		}
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chrysalisd: %v\n", err)
		os.Exit(1)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv, err := serve.New(serve.Options{
		Workers:        *workers,
		SearchWorkers:  *searchWkrs,
		QueueDepth:     *queueDepth,
		CacheSize:      *cacheSize,
		WarmCacheMB:    *warmMB,
		JobTimeout:     *jobTimeout,
		TraceEvents:    *traceEvents,
		Logger:         logger,
		WALDir:         *walDir,
		Self:           *self,
		Peers:          peerList,
		ClusterTimeout: *clusterTO,
		QuotaRPS:       *quota,
		QuotaBurst:     *quotaBurst,
		SLOLatency:     *sloLatency,
		SLOObjective:   *sloObjective,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chrysalisd: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", effWorkers,
		"cache", *cacheSize, "queue", *queueDepth)

	select {
	case err := <-errCh:
		logger.Error("listen failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down: draining jobs", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("job drain", "error", err)
	}
	logger.Info("bye")
}
