// Command chrysalisd serves the CHRYSALIS design pipeline over
// HTTP/JSON: asynchronous design-search jobs with live SSE telemetry,
// synchronous step-simulation, a content-addressed result cache and
// Prometheus-style metrics.
//
// Quickstart:
//
//	chrysalisd -addr :8080 &
//	curl -s -X POST localhost:8080/v1/designs \
//	     -d '{"workload":"har","budget":200}'          # => {"id":"j-000001",...}
//	curl -N localhost:8080/v1/designs/j-000001/events  # live GA progress
//	curl -s localhost:8080/v1/designs/j-000001         # status / result
//	curl -s localhost:8080/metrics | grep chrysalisd_
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// jobs (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chrysalis/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "design-job worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "maximum queued jobs before submissions get 503")
		cacheSize    = flag.Int("cache", 128, "result-cache capacity in designs")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job search deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
	)
	flag.Parse()
	if *workers < 0 || *queueDepth < 0 || *cacheSize < 0 {
		fmt.Fprintln(os.Stderr, "chrysalisd: -workers, -queue and -cache must be non-negative")
		os.Exit(1)
	}

	logger := log.New(os.Stderr, "chrysalisd: ", log.LstdFlags)
	srv := serve.New(serve.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		CacheSize:  *cacheSize,
		JobTimeout: *jobTimeout,
		Logf:       logger.Printf,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d cache=%d queue=%d)",
		*addr, *workers, *cacheSize, *queueDepth)

	select {
	case err := <-errCh:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down: draining jobs (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Printf("job drain: %v", err)
	}
	logger.Printf("bye")
}
