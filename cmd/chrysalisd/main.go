// Command chrysalisd serves the CHRYSALIS design pipeline over
// HTTP/JSON: asynchronous design-search jobs with live SSE telemetry,
// synchronous step-simulation, a content-addressed result cache,
// Prometheus-style metrics, per-job Perfetto traces and pprof
// profiling endpoints.
//
// Quickstart:
//
//	chrysalisd -addr :8080 &
//	curl -s -X POST localhost:8080/v1/designs \
//	     -d '{"workload":"har","budget":200}'          # => {"id":"j-000001",...}
//	curl -N localhost:8080/v1/designs/j-000001/events  # live GA progress
//	curl -s localhost:8080/v1/designs/j-000001         # status / result
//	curl -s localhost:8080/v1/designs/j-000001/trace \
//	     -o trace.json                                 # open in ui.perfetto.dev
//	curl -s 'localhost:8080/v1/designs/j-000001/waveform?format=csv' \
//	     -o wave.csv                                   # flight recording (verify jobs)
//	open http://localhost:8080/debug/dashboard         # live flight deck
//	curl -s localhost:8080/metrics | grep chrysalisd_
//	go tool pprof localhost:8080/debug/pprof/profile
//
// SIGINT/SIGTERM triggers a graceful shutdown that drains in-flight
// jobs (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"chrysalis/internal/obs"
	"chrysalis/internal/serve"
)

// parseLogLevel maps the -log-level flag onto a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "design-job worker pool size (0 = GOMAXPROCS)")
		searchWkrs   = flag.Int("search-workers", 0, "default per-job search-evaluation concurrency (0 = auto); grants are capped by a process-global semaphore sized to GOMAXPROCS minus the -workers pool width, so jobs x search workers never oversubscribes the machine; never changes results")
		queueDepth   = flag.Int("queue", 64, "maximum queued jobs before submissions get 503")
		cacheSize    = flag.Int("cache", 128, "result-cache capacity in designs")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job search deadline (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain bound")
		traceEvents  = flag.Int("trace-events", 0, "per-job span ring-buffer capacity (0 = default)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("chrysalisd %s (%s, %s/%s)\n", obs.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}
	if *workers < 0 || *searchWkrs < 0 || *queueDepth < 0 || *cacheSize < 0 {
		fmt.Fprintln(os.Stderr, "chrysalisd: -workers, -search-workers, -queue and -cache must be non-negative")
		os.Exit(1)
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chrysalisd: %v\n", err)
		os.Exit(1)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv := serve.New(serve.Options{
		Workers:       *workers,
		SearchWorkers: *searchWkrs,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		JobTimeout:    *jobTimeout,
		TraceEvents:   *traceEvents,
		Logger:        logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers,
		"cache", *cacheSize, "queue", *queueDepth)

	select {
	case err := <-errCh:
		logger.Error("listen failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down: draining jobs", "drain_timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("job drain", "error", err)
	}
	logger.Info("bye")
}
