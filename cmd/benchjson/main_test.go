package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: chrysalis
cpu: AMD EPYC 7B13
BenchmarkCostModel-4      	16525977	        70.69 ns/op	       0 B/op	       0 allocs/op
BenchmarkGASearch-4       	    9482	    121340 ns/op	   48712 B/op	     619 allocs/op
BenchmarkNoBenchmem-4     	     100	      1234 ns/op
PASS
ok  	chrysalis	12.3s
`
	rec, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || rec.Pkg != "chrysalis" {
		t.Errorf("header fields wrong: %+v", rec)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rec.Benchmarks))
	}
	cm := rec.Benchmarks[0]
	if cm.Name != "CostModel" || cm.Iterations != 16525977 || cm.NsPerOp != 70.69 {
		t.Errorf("CostModel parsed wrong: %+v", cm)
	}
	ga := rec.Benchmarks[1]
	if ga.BytesPerOp != 48712 || ga.AllocsPerOp != 619 {
		t.Errorf("GASearch mem stats wrong: %+v", ga)
	}
	if nb := rec.Benchmarks[2]; nb.BytesPerOp != 0 || nb.AllocsPerOp != 0 || nb.NsPerOp != 1234 {
		t.Errorf("no-benchmem line parsed wrong: %+v", nb)
	}
}

func TestParseEmpty(t *testing.T) {
	rec, err := parse(strings.NewReader("PASS\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 0 {
		t.Errorf("expected no benchmarks, got %d", len(rec.Benchmarks))
	}
}
