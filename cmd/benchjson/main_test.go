package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: chrysalis
cpu: AMD EPYC 7B13
BenchmarkCostModel-4      	16525977	        70.69 ns/op	       0 B/op	       0 allocs/op
BenchmarkGASearch-4       	    9482	    121340 ns/op	   48712 B/op	     619 allocs/op
BenchmarkNoBenchmem-4     	     100	      1234 ns/op
PASS
ok  	chrysalis	12.3s
`
	rec, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || rec.Pkg != "chrysalis" {
		t.Errorf("header fields wrong: %+v", rec)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rec.Benchmarks))
	}
	cm := rec.Benchmarks[0]
	if cm.Name != "CostModel" || cm.Iterations != 16525977 || cm.NsPerOp != 70.69 {
		t.Errorf("CostModel parsed wrong: %+v", cm)
	}
	if cm.Procs != 4 {
		t.Errorf("CostModel procs = %d, want 4", cm.Procs)
	}
	ga := rec.Benchmarks[1]
	if ga.BytesPerOp != 48712 || ga.AllocsPerOp != 619 {
		t.Errorf("GASearch mem stats wrong: %+v", ga)
	}
	if nb := rec.Benchmarks[2]; nb.BytesPerOp != 0 || nb.AllocsPerOp != 0 || nb.NsPerOp != 1234 {
		t.Errorf("no-benchmem line parsed wrong: %+v", nb)
	}
}

func TestParseNoProcsSuffix(t *testing.T) {
	// GOMAXPROCS=1 runs (and `-cpu 1`) emit no -N suffix at all.
	input := "BenchmarkAccelSearch   \t      36\t  32000000 ns/op\t41796949 B/op\t   39250 allocs/op\n"
	rec, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(rec.Benchmarks))
	}
	b := rec.Benchmarks[0]
	if b.Name != "AccelSearch" || b.Procs != 0 || b.NsPerOp != 32000000 {
		t.Errorf("suffix-less line parsed wrong: %+v", b)
	}
}

func TestApplyBaseline(t *testing.T) {
	rec := Record{Benchmarks: []Benchmark{
		{Name: "AccelSearch", Procs: 0, NsPerOp: 16e6},
		{Name: "AccelSearch", Procs: 4, NsPerOp: 8e6},
		{Name: "Unmatched", NsPerOp: 100},
	}}
	base := Record{Benchmarks: []Benchmark{
		{Name: "AccelSearch", NsPerOp: 32e6},
	}}
	applyBaseline(&rec, base)
	if got := rec.Benchmarks[0].SpeedupVsBaseline; got != 2 {
		t.Errorf("single-proc speedup = %g, want 2", got)
	}
	if got := rec.Benchmarks[1].SpeedupVsBaseline; got != 4 {
		t.Errorf("4-proc speedup = %g, want 4", got)
	}
	if got := rec.Benchmarks[2].SpeedupVsBaseline; got != 0 {
		t.Errorf("unmatched benchmark got speedup %g, want 0 (absent)", got)
	}
}

func TestParseEmpty(t *testing.T) {
	rec, err := parse(strings.NewReader("PASS\nok\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 0 {
		t.Errorf("expected no benchmarks, got %d", len(rec.Benchmarks))
	}
}
