// Command benchjson converts `go test -bench` text output into a
// compact JSON record. It exists so benchmark trajectories can be
// committed alongside the code they measure (see `make bench-json`)
// and diffed across PRs without parsing free-form bench logs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | benchjson -out BENCH.json
//
// Input is read from stdin (or -in); unparseable lines are ignored so
// the tool can consume raw `go test` output verbatim. Lines produced
// under `-cpu N` keep their GOMAXPROCS in the `procs` field (absent
// for single-proc runs), so one record can hold the same benchmark at
// several widths. With -baseline, each benchmark also gets a
// `speedup_vs_baseline` ratio (baseline ns/op ÷ this ns/op, matched by
// name against the baseline record's single-proc entry).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is the serialized benchmark snapshot.
type Record struct {
	Note       string      `json:"note,omitempty"`
	Baseline   string      `json:"baseline,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line.
type Benchmark struct {
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the line ran under (the -N name suffix);
	// 0/absent means the default single-proc form with no suffix.
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// SpeedupVsBaseline is baseline ns/op ÷ this ns/op (>1 = faster than
	// the -baseline record), matched by name.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// benchLine matches standard `go test -bench -benchmem` result lines:
//
//	BenchmarkCostModel-4   16525977   70.69 ns/op   0 B/op   0 allocs/op
//
// The -N suffix is GOMAXPROCS; `go test -cpu 1` (or GOMAXPROCS=1) omits
// it entirely.
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Record, error) {
	var rec Record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		if m[5] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	return rec, sc.Err()
}

// applyBaseline fills SpeedupVsBaseline on every benchmark with a name
// match in base. Baseline entries are matched single-proc first (the
// committed records predate -cpu variants), falling back to any entry
// with the name.
func applyBaseline(rec *Record, base Record) {
	ref := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		if _, ok := ref[b.Name]; !ok || b.Procs <= 1 {
			ref[b.Name] = b.NsPerOp
		}
	}
	for i := range rec.Benchmarks {
		b := &rec.Benchmarks[i]
		if refNs, ok := ref[b.Name]; ok && b.NsPerOp > 0 {
			// Three decimals keeps the committed JSON diff-stable.
			b.SpeedupVsBaseline = math.Round(refNs/b.NsPerOp*1000) / 1000
		}
	}
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	note := flag.String("note", "", "free-form annotation stored in the record")
	baseline := flag.String("baseline", "", "prior benchjson record to compute speedup_vs_baseline ratios against")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	rec.Note = *note

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var base Record
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		rec.Baseline = *baseline
		applyBaseline(&rec, base)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
