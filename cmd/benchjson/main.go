// Command benchjson converts `go test -bench` text output into a
// compact JSON record. It exists so benchmark trajectories can be
// committed alongside the code they measure (see `make bench-json`)
// and diffed across PRs without parsing free-form bench logs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem . | benchjson -out BENCH.json
//
// Input is read from stdin (or -in); unparseable lines are ignored so
// the tool can consume raw `go test` output verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is the serialized benchmark snapshot.
type Record struct {
	Note       string      `json:"note,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchLine matches standard `go test -bench -benchmem` result lines:
//
//	BenchmarkCostModel-4   16525977   70.69 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Record, error) {
	var rec Record
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	return rec, sc.Err()
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	note := flag.String("note", "", "free-form annotation stored in the record")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	rec.Note = *note

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
