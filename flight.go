package chrysalis

import (
	"chrysalis/internal/audit"
	"chrysalis/internal/core"
	"chrysalis/internal/sim"
)

// --- Flight recorder: full energy-state waveforms ---

// FlightRecorder captures the simulator's full energy-state vector each
// step — capacitor voltage, stored energy, harvest/load/leakage power,
// cumulative compute/NVM-IO/checkpoint energy and the power-cycle index
// — into bounded min/max-preserving bins, plus an exact per-power-cycle
// energy ledger. Memory stays within the configured point budget no
// matter how long the simulated horizon: when bins overflow, adjacent
// pairs merge and the bin width doubles, preserving every bin's true
// min/max (peaks survive, unlike plain decimation).
//
// A recorder is safe to snapshot concurrently while a simulation runs —
// the pattern behind chrysalisd's live dashboard:
//
//	rec := chrysalis.NewFlightRecorder(0)
//	run, report, _ := chrysalis.VerifyFlight(spec, res, nil, rec)
//	wf := rec.Waveform()          // JSON-marshalable, or wf.WriteCSV(w)
//	fmt.Println(report.OK())      // energy conservation verdict
type FlightRecorder = sim.Recorder

// NewFlightRecorder returns a recorder with the given per-channel point
// budget (<= 0 selects the default of 4096 bins).
func NewFlightRecorder(maxPoints int) *FlightRecorder { return sim.NewRecorder(maxPoints) }

// Waveform is a point-in-time snapshot of a flight recorder: the
// downsampled channels plus the per-cycle energy ledgers.
type Waveform = sim.Waveform

// WaveChannel is one waveform channel (e.g. "v_cap" in volts).
type WaveChannel = sim.WaveChannel

// WavePoint is one downsampled bin of one channel: min/max/mean/last of
// the raw samples that fell into it.
type WavePoint = sim.WavePoint

// CycleLedger is the exact energy bookkeeping of one power cycle; see
// the audit checks in AuditReport for the invariants it must satisfy.
type CycleLedger = sim.CycleLedger

// --- Energy-conservation audit ---

// AuditReport is the outcome of an energy-conservation audit: per-cycle
// capacitor balance, harvest identity, Eq. 2 leakage reconstruction,
// voltage bounds and event-ordering checks. OK() reports a clean run.
type AuditReport = audit.Report

// AuditFinding is one failed audit check, localized to a power cycle.
type AuditFinding = audit.Finding

// AuditOptions tunes audit tolerances; the zero value selects defaults.
type AuditOptions = audit.Options

// Audit folds a flight recorder's ledgers into conservation and
// invariant checks. A nil recorder yields an empty passing report.
func Audit(rec *FlightRecorder, opts AuditOptions) *AuditReport { return audit.Run(rec, opts) }

// VerifyFlight replays a designed solution through the step simulator
// with an optional event callback and an optional flight recorder, then
// audits the recorded physics. The report is nil when rec is nil.
func VerifyFlight(spec Spec, res Result, onEvent func(SimEvent), rec *FlightRecorder) (SimResult, *AuditReport, error) {
	var tr sim.Tracer
	if onEvent != nil {
		tr = sim.Tracer(onEvent)
	}
	return core.VerifyFlight(spec, res, tr, rec)
}

// SimulateSeriesFlight is SimulateSeries with a flight recorder
// attached: the recorder spans every inference and idle gap, so the
// waveform and ledgers cover the whole deployment horizon (a day-long
// series still fits the recorder's point budget).
func SimulateSeriesFlight(spec Spec, dp DesignPoint, env Environment, n int, idle Seconds, rec *FlightRecorder) (SeriesResult, *AuditReport, error) {
	cfg, err := simConfig(spec, dp, env)
	if err != nil {
		return SeriesResult{}, nil, err
	}
	cfg.Record = rec
	sr, err := sim.RunSeries(cfg, n, idle)
	if err != nil {
		return SeriesResult{}, nil, err
	}
	var rep *AuditReport
	if rec != nil {
		rep = audit.Run(rec, audit.Options{})
	}
	return sr, rep, nil
}
