# CHRYSALIS — common developer targets.

GO ?= go

.PHONY: all ci build vet test race bench experiments examples fuzz cover clean serve-smoke

all: build vet test

# Everything the CI workflow runs.
ci: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure at full budget.
experiments:
	$(GO) run ./cmd/experiments -run all -budget 400 -pareto 600 -seed 1 -out experiments_full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/solarsizing
	$(GO) run ./examples/acceldesign
	$(GO) run ./examples/customharvester
	$(GO) run ./examples/jsonworkload

fuzz:
	$(GO) test ./internal/dnn/ -fuzz FuzzParseJSON -fuzztime 30s

# End-to-end chrysalisd check: boot on a random port, run a design job
# to completion, assert the resubmission is a cache hit.
serve-smoke:
	$(GO) test ./internal/serve/ -run TestServeSmoke -v

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
