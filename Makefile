# CHRYSALIS — common developer targets.

GO ?= go

.PHONY: all ci build vet test race race-cache race-explore bench bench-json bench-smoke bench-guard experiments examples fuzz cover clean serve-smoke cluster-smoke trace-smoke trace-cluster-smoke audit-smoke sim-diff converge-smoke warm-smoke

all: build vet test

# Everything the CI workflow runs.
ci: build vet test race race-explore bench-smoke bench-guard serve-smoke cluster-smoke trace-smoke trace-cluster-smoke audit-smoke sim-diff converge-smoke warm-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Race-check the concurrent evaluator-cache paths (fingerprint cache,
# subsystem cache, GA worker pool).
race-cache:
	$(GO) test -race -run 'Cache|Concurrent' ./internal/explore/ ./internal/serve/

# Race-check the parallel search path end-to-end: the worker dispatcher,
# the Workers=1-vs-N determinism stress tests and the shard-cache hammer.
race-explore:
	$(GO) test -race -run 'Parallel|Workers|Hammer|Shard|Dispatch|Concurrent' \
		./internal/search/ ./internal/explore/ ./internal/serve/

# One-iteration pass over every benchmark: catches bit-rotted bench
# code without paying for steady-state timing.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Benchmark trajectory record: run the evaluation-engine
# micro-benchmarks at a fixed iteration count and serialize the
# results to a committed JSON file for cross-PR comparison. The search
# benchmarks additionally run at -cpu 1,4 so the record captures both
# the serial regression check and the parallel speedup; -baseline
# computes speedup_vs_baseline ratios against the previous PR's record.
BENCH_JSON ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR9.json
BENCH_MICRO = CostModel|PlanWorkload|AnalyticEvaluate|StepSimulator|EventSimulator|NSGAFront
BENCH_MULTI = GASearch|AccelSearch|GASearchWarm|AccelSearchWarm

bench-json:
	{ $(GO) test -run='^$$' -bench='^Benchmark($(BENCH_MICRO))$$' -benchtime=2000x -benchmem . ; \
	  $(GO) test -run='^$$' -bench='^Benchmark($(BENCH_MULTI))$$' -benchtime=300x -benchmem -cpu 1,4 . ; } \
		| $(GO) run ./cmd/benchjson -note "micro fixed -benchtime=2000x (100x undersampled the sub-5us benches), search 300x; Warm variants run the same search against a primed process-lifetime tier; speedup_vs_baseline = baseline ns/op / new ns/op" \
			-baseline $(BENCH_BASELINE) -out $(BENCH_JSON)

# Benchmark regression gate: re-run the end-to-end search benchmarks
# (the paths the tracing/metrics hooks ride) and fail if either
# regressed more than BENCH_GUARD_MAX vs the newest committed record
# (benchguard auto-discovers the highest-numbered BENCH_*.json, so this
# target needs no edit when a new PR lands its record). The candidate
# runs -count=3 and benchguard judges the fastest of the three — shared
# CI machines swing tens of percent minute to minute, and best-of-N is
# the estimate least contaminated by that noise. Micro benches are too
# noisy even for that, so only the guarded names can fail the run.
BENCH_GUARD_MAX ?= 0.25
BENCH_GUARD_TMP ?= /tmp/chrysalis-bench-guard.json
bench-guard:
	$(GO) test -run='^$$' -bench='^Benchmark($(BENCH_MULTI))$$' -benchtime=300x -count=3 -benchmem -cpu 1,4 . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_GUARD_TMP)
	$(GO) run ./cmd/benchguard -baseline auto -candidate $(BENCH_GUARD_TMP) \
		-bench 'GASearch,AccelSearch,GASearchWarm,AccelSearchWarm' -max-regress $(BENCH_GUARD_MAX)

# Regenerate every paper table/figure at full budget.
experiments:
	$(GO) run ./cmd/experiments -run all -budget 400 -pareto 600 -seed 1 -out experiments_full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/solarsizing
	$(GO) run ./examples/acceldesign
	$(GO) run ./examples/customharvester
	$(GO) run ./examples/jsonworkload

fuzz:
	$(GO) test ./internal/dnn/ -fuzz FuzzParseJSON -fuzztime 30s

# End-to-end chrysalisd check: boot on a random port, run a design job
# to completion, assert the resubmission is a cache hit.
serve-smoke:
	$(GO) test ./internal/serve/ -run TestServeSmoke -v

# End-to-end warm-start check: on a warm-enabled daemon a cold job fills
# the tier and a near-duplicate job reports warm hits, with a design
# bit-identical to a tier-less daemon's; plus the explore-level
# warm-vs-cold determinism contract under -race.
warm-smoke:
	$(GO) test ./internal/serve/ -run TestWarmSmoke -v
	$(GO) test -race ./internal/explore/ -run 'TestWarmColdWorkersBitIdentical|TestWarmTierConcurrentSearches'

# End-to-end durable-cluster check: three daemons on loopback resolve a
# design submitted to all of them exactly once (consistent-hash ring +
# cluster single-flight), a dead peer degrades to local evaluation
# without failing a request, and a crashed daemon recovers its queued
# and finished jobs from the WAL on restart.
cluster-smoke:
	$(GO) test ./internal/serve/ -run 'TestClusterSingleFlight|TestClusterPeerDownDegradesLocally|TestWALCrashRecovery' -v

# End-to-end observability check: run a traced design search with a
# simulator verification replay, then validate the exported Chrome
# trace-event JSON (phases, ordering, durations).
trace-smoke:
	$(GO) run ./cmd/chrysalis -workload har -budget 100 -verify -trace-out /tmp/chrysalis-trace.json >/dev/null
	$(GO) run ./cmd/tracecheck -min-events 10 /tmp/chrysalis-trace.json

# Event-vs-step simulator agreement: the differential matrix (every
# scenario preset under every checkpoint policy, counters exact and
# continuous outputs within 1e-6 relative), plus an end-to-end CLI
# replay through -sim-mode differential, which fails on any divergence.
sim-diff:
	$(GO) test ./internal/sim/ -run 'TestDifferential|TestEvent' -count=1
	$(GO) run ./cmd/chrysalis -workload har -budget 100 -verify -sim-mode differential >/dev/null

# End-to-end distributed-tracing check: a delegated job across an
# in-process 3-node cluster exports ONE stitched trace (the client's
# trace ID, spans from both nodes), the job timeline endpoint reports
# the golden phase sequence, and /v1/fleet aggregates every peer.
trace-cluster-smoke:
	$(GO) test -race ./internal/serve/ \
		-run 'TestClusterStitchedTrace|TestClusterBreakerOpenInstant|TestTimelineEndpoint|TestFleetEndpoint|TestWALMetricsExported' -v

# End-to-end flight-recorder check: a design search with an audited
# verification replay through the CLI (non-zero exit on any energy-
# conservation finding), plus the daemon-side waveform/dashboard test.
audit-smoke:
	$(GO) run ./cmd/chrysalis -workload har -budget 100 -audit -waveform-out /tmp/chrysalis-wave.csv >/dev/null
	$(GO) test ./internal/serve/ -run TestAuditSmoke -v

# End-to-end search-observatory check: a short GA job with the plateau
# early stop enabled must serve a monotone-best convergence series,
# stream one "quality" SSE event per generation, and replay the series
# from the result cache — plus the Pareto-job front-quality indicators.
converge-smoke:
	$(GO) test ./internal/serve/ -run 'TestConvergeSmoke|TestConvergenceParetoJob' -v

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
