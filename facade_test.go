package chrysalis

import (
	"strings"
	"testing"
)

func harSpec() Spec {
	return Spec{WorkloadName: "har", Platform: MSP430, Objective: MinimizeLatTimesSP}
}

func TestEvaluateDesignPoint(t *testing.T) {
	ev, err := Evaluate(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("8cm²/100uF HAR should be feasible")
	}
	if len(ev.PerEnv) != 2 {
		t.Fatalf("envs = %d", len(ev.PerEnv))
	}
}

func TestEvaluateAccelDesignPoint(t *testing.T) {
	spec := Spec{WorkloadName: "resnet18", Platform: Accelerator, Objective: MinimizeLatency}
	cfg := AccelConfig{Arch: Eyeriss, NPE: 128, CacheBytes: 1024}
	ev, err := Evaluate(spec, DesignPoint{PanelArea: 20, Cap: 1e-3, Accel: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("resnet18 on 128-PE Eyeriss should be feasible")
	}
}

func TestSimulateDesignPoint(t *testing.T) {
	run, err := Simulate(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("simulation should complete")
	}
	dark, err := Simulate(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, DarkEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	if dark.E2ELatency <= run.E2ELatency {
		t.Fatal("dark should be slower")
	}
}

// constantHarvester is a test double: a thermoelectric-style flat source.
type constantHarvester struct{ p Power }

func (c constantHarvester) Power(Seconds) Power { return c.p }
func (c constantHarvester) Describe() string    { return "teg" }

func TestSimulateWithHarvester(t *testing.T) {
	run, err := SimulateWithHarvester(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6},
		constantHarvester{p: 10e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("10mW TEG should complete HAR")
	}
	if _, err := SimulateWithHarvester(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil); err == nil {
		t.Fatal("nil harvester should fail")
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct {
		name, json, wantSub string
	}{
		{"malformed JSON", `{"name": "broken",`, "invalid workload JSON"},
		{"not JSON at all", `🦋`, "invalid workload JSON"},
		{"wrong field type", `{"name": 7, "input": [1,1,16], "layers": [{"type":"dense","out":4}]}`, "invalid workload JSON"},
		{"unknown layer kind", `{"name":"n","input":[1,1,16],"layers":[{"type":"transformer"}]}`, `unknown type "transformer"`},
		{"empty layer list", `{"name":"n","input":[1,1,16],"layers":[]}`, "has no layers"},
		{"missing layer list", `{"name":"n","input":[1,1,16]}`, "has no layers"},
		{"missing name", `{"input":[1,1,16],"layers":[{"type":"dense","out":4}]}`, "needs a name"},
		{"bad input shape", `{"name":"n","input":[0,1,16],"layers":[{"type":"dense","out":4}]}`, "must be positive"},
		{"dense without out", `{"name":"n","input":[1,1,16],"layers":[{"type":"dense"}]}`, "dense needs out"},
		{"conv2d without channels", `{"name":"n","input":[3,8,8],"layers":[{"type":"conv2d","kernel":3}]}`, "needs out_channels"},
	}
	for _, tc := range cases {
		_, err := ParseWorkload([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}

	// A valid description still parses, and round-trips through the
	// canonical serialization.
	valid := `{"name":"ok","input":[1,1,16],"layers":[{"type":"dense","out":4}]}`
	w, err := ParseWorkload([]byte(valid))
	if err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if w.Name != "ok" || len(w.Layers) != 1 {
		t.Fatalf("parsed %q with %d layers", w.Name, len(w.Layers))
	}
	canon, err := w.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ParseWorkload(canon)
	if err != nil {
		t.Fatalf("canonical form rejected: %v", err)
	}
	if w2.Name != w.Name || len(w2.Layers) != len(w.Layers) {
		t.Fatal("round trip changed the workload")
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(Spec{}, DesignPoint{PanelArea: 8, Cap: 100e-6}); err == nil {
		t.Fatal("missing workload should fail")
	}
	if _, err := Evaluate(harSpec(), DesignPoint{PanelArea: 99, Cap: 100e-6}); err == nil {
		t.Fatal("out-of-space panel should fail")
	}
}
