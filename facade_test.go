package chrysalis

import (
	"testing"
)

func harSpec() Spec {
	return Spec{WorkloadName: "har", Platform: MSP430, Objective: MinimizeLatTimesSP}
}

func TestEvaluateDesignPoint(t *testing.T) {
	ev, err := Evaluate(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("8cm²/100uF HAR should be feasible")
	}
	if len(ev.PerEnv) != 2 {
		t.Fatalf("envs = %d", len(ev.PerEnv))
	}
}

func TestEvaluateAccelDesignPoint(t *testing.T) {
	spec := Spec{WorkloadName: "resnet18", Platform: Accelerator, Objective: MinimizeLatency}
	cfg := AccelConfig{Arch: Eyeriss, NPE: 128, CacheBytes: 1024}
	ev, err := Evaluate(spec, DesignPoint{PanelArea: 20, Cap: 1e-3, Accel: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("resnet18 on 128-PE Eyeriss should be feasible")
	}
}

func TestSimulateDesignPoint(t *testing.T) {
	run, err := Simulate(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("simulation should complete")
	}
	dark, err := Simulate(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, DarkEnvironment())
	if err != nil {
		t.Fatal(err)
	}
	if dark.E2ELatency <= run.E2ELatency {
		t.Fatal("dark should be slower")
	}
}

// constantHarvester is a test double: a thermoelectric-style flat source.
type constantHarvester struct{ p Power }

func (c constantHarvester) Power(Seconds) Power { return c.p }
func (c constantHarvester) Describe() string    { return "teg" }

func TestSimulateWithHarvester(t *testing.T) {
	run, err := SimulateWithHarvester(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6},
		constantHarvester{p: 10e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("10mW TEG should complete HAR")
	}
	if _, err := SimulateWithHarvester(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil); err == nil {
		t.Fatal("nil harvester should fail")
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(Spec{}, DesignPoint{PanelArea: 8, Cap: 100e-6}); err == nil {
		t.Fatal("missing workload should fail")
	}
	if _, err := Evaluate(harSpec(), DesignPoint{PanelArea: 99, Cap: 100e-6}); err == nil {
		t.Fatal("out-of-space panel should fail")
	}
}
