package chrysalis

import "chrysalis/internal/serve"

// ServerOptions configures an embedded chrysalisd service: worker-pool
// and queue sizing, result-cache capacity, per-job timeouts, WAL
// durability (WALDir), cluster membership (Self/Peers) and per-client
// admission quotas (QuotaRPS/QuotaBurst). The zero value selects the
// same defaults cmd/chrysalisd ships with.
type ServerOptions = serve.Options

// Server is the embeddable form of the chrysalisd daemon: the full
// design-as-a-service HTTP surface (async design jobs with SSE
// telemetry, the content-addressed result cache, metrics, the live
// dashboard) behind a single http.Handler. Programs that want the
// service inside their own process — custom listeners, extra routes,
// shared shutdown — mount Handler() and call Shutdown to drain:
//
//	srv, err := chrysalis.NewServer(chrysalis.ServerOptions{
//		WALDir: "/var/lib/chrysalisd",
//	})
//	if err != nil { ... }
//	http.ListenAndServe(":8080", srv.Handler())
type Server = serve.Server

// JobState is a design job's lifecycle position:
// queued → running → done | failed | cancelled.
type JobState = serve.JobState

// NewServer builds a Server, recovers any WAL state from
// ServerOptions.WALDir, and starts the worker pool. It fails when the
// WAL directory is unusable or the cluster configuration is
// inconsistent (e.g. Self missing from Peers).
func NewServer(opts ServerOptions) (*Server, error) { return serve.New(opts) }
