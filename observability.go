package chrysalis

import (
	"chrysalis/internal/obs"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
)

// Version is the CHRYSALIS release string — also the version label on
// the chrysalis_build_info metric and the -version output of the CLIs.
const Version = obs.Version

// Trace records pipeline spans — outer-GA generations, explorer
// score/evaluate calls, plan-ladder builds and step-simulator power
// cycles — into a bounded ring buffer and exports them as Chrome
// trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Attach one via Spec.Search.Trace before calling Design; tracing is
// observational only (it never changes results, cache identity or the
// search trajectory) and a nil trace disables it at zero cost:
//
//	tr := chrysalis.NewTrace(0)
//	spec.Search.Trace = tr
//	res, _ := chrysalis.Design(spec)
//	f, _ := os.Create("trace.json")
//	tr.WriteJSON(f)
type Trace = obs.Trace

// NewTrace returns a tracer holding up to capacity events (<= 0 selects
// the default of 16384). Once full, new events overwrite the oldest.
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// SimTraceAdapter maps step-simulator events onto trace slices: powered
// intervals, per-tile execution and checkpoint/resume/retry markers on
// the simulated clock. Use its Trace method as the VerifyTraced
// callback and call Close afterwards to terminate slices left open by
// interrupted runs.
type SimTraceAdapter = sim.TraceAdapter

// NewSimTraceAdapter returns an adapter recording the simulator's event
// stream onto tr (which may be nil, making the adapter a no-op):
//
//	ad := chrysalis.NewSimTraceAdapter(tr)
//	run, _ := chrysalis.VerifyTraced(spec, res, ad.Trace)
//	ad.Close()
func NewSimTraceAdapter(tr *Trace) *SimTraceAdapter { return sim.TraceTo(tr) }

// GenQuality is one generation's search-quality record: population
// statistics (best/mean/median objective, spread, genome diversity),
// the plateau detector's stagnation count and — for Pareto runs — the
// front-quality indicators (dominated hypervolume, front size, Schott
// spacing). Result.Quality carries one per generation, parallel to
// Result.History, and Spec.Search.OnQuality streams them live:
//
//	spec.Search.Patience = 10 // stop after 10 stagnant generations
//	spec.Search.OnQuality = func(q chrysalis.GenQuality) {
//		fmt.Printf("gen %d best %g stagnation %d\n", q.Gen, q.Best, q.Stagnation)
//	}
//	res, _ := chrysalis.Design(spec)
//	if res.StoppedEarly { /* the plateau policy cut the run short */ }
type GenQuality = search.GenQuality

// QualityHistory is a run's per-generation quality series.
type QualityHistory = search.QualityHistory

// Hypervolume2 computes the 2-D dominated hypervolume of a minimization
// front against a reference point — the front-quality scalar the NSGA
// convergence series reports per generation.
func Hypervolume2(front []FrontPoint, refX, refY float64) float64 {
	return search.Hypervolume2(front, refX, refY)
}

// FrontPoint is one member of a bi-objective front.
type FrontPoint = search.FrontPoint
