package chrysalis

import (
	"math"
	"testing"
)

func TestSimulateSeries(t *testing.T) {
	sr, err := SimulateSeries(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 3 {
		t.Fatalf("completed %d/3", sr.Completed)
	}
	if sr.ThroughputPerHour <= 0 {
		t.Fatal("no throughput")
	}
	if _, err := SimulateSeries(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil, 0, 0); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestSimulateSeriesDiurnal(t *testing.T) {
	// A short artificial day: inferences complete while light lasts,
	// then the series stalls at night.
	day, err := DiurnalEnvironment(1e-3, 0, 90)
	if err != nil {
		t.Fatal(err)
	}
	spec := harSpec()
	sr, err := SimulateSeries(spec, DesignPoint{PanelArea: 20, Cap: 470e-6}, day, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed == 0 {
		t.Fatal("daylight should complete some inferences")
	}
	if sr.Completed >= 500 {
		t.Fatal("night should stop the series")
	}
}

func TestSimulateTraced(t *testing.T) {
	var events []SimEvent
	run, err := SimulateTraced(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil,
		func(e SimEvent) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("run should complete")
	}
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	// nil callback must be accepted.
	if _, err := SimulateTraced(harSpec(), DesignPoint{PanelArea: 8, Cap: 100e-6}, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThermalFacade(t *testing.T) {
	hot, err := ThermalDerate(BrightEnvironment(), ConstantTemp(60))
	if err != nil {
		t.Fatal(err)
	}
	if hot.Keh(0) >= BrightEnvironment().Keh(0) {
		t.Fatal("hot cells must harvest less")
	}
	if _, err := ThermalDerate(nil, ConstantTemp(60)); err == nil {
		t.Fatal("nil env should fail")
	}
	if k := ThermalKcap(0, 35); math.Abs(k-0.02) > 1e-9 {
		t.Fatalf("kcap at 35°C = %v, want 0.02", k)
	}
	dn := DayNightTemp(20, 10, 14*3600)
	if dn.TempC(14*3600) <= dn.TempC(2*3600) {
		t.Fatal("day/night profile should peak in the afternoon")
	}

	// A hot run should be slower than a cool run for the same design.
	cool, err := Simulate(harSpec(), DesignPoint{PanelArea: 8, Cap: 1e-3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hotRun, err := Simulate(harSpec(), DesignPoint{PanelArea: 8, Cap: 1e-3}, hot)
	if err != nil {
		t.Fatal(err)
	}
	if hotRun.Completed && cool.Completed && hotRun.E2ELatency <= cool.E2ELatency {
		t.Fatalf("hot (%v) should be slower than cool (%v)", hotRun.E2ELatency, cool.E2ELatency)
	}
}

func TestSimulateWithPolicy(t *testing.T) {
	dp := DesignPoint{PanelArea: 8, Cap: 470e-6}
	eager, err := SimulateWithPolicy(harSpec(), dp, nil, CheckpointEveryTile)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := SimulateWithPolicy(harSpec(), dp, nil, CheckpointAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	if !eager.Completed || !lazy.Completed {
		t.Fatal("both policies should complete under bright light")
	}
	if lazy.Checkpoints >= eager.Checkpoints {
		t.Fatalf("adaptive (%d) should checkpoint less than every-tile (%d)",
			lazy.Checkpoints, eager.Checkpoints)
	}
	none, err := SimulateWithPolicy(harSpec(), dp, nil, CheckpointNone)
	if err != nil {
		t.Fatal(err)
	}
	if none.Checkpoints != 0 {
		t.Fatalf("policy none saved %d checkpoints", none.Checkpoints)
	}
}
