module chrysalis

go 1.22
