package chrysalis

import (
	"strings"
	"testing"
)

func TestDesignQuickstart(t *testing.T) {
	res, err := Design(Spec{
		WorkloadName: "simpleconv",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 80, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PanelArea < 1 || res.PanelArea > 30 {
		t.Fatalf("panel %v outside design space", res.PanelArea)
	}
	if res.AvgLatency <= 0 {
		t.Fatalf("latency %v", res.AvgLatency)
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	names := Workloads()
	if len(names) != 13 {
		t.Fatalf("catalog = %v", names)
	}
	w, err := WorkloadByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalParams() < 10e6 {
		t.Fatalf("resnet18 params = %d", w.TotalParams())
	}
	if _, err := WorkloadByName("alexnet-v9"); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestBaselinesRoundTrip(t *testing.T) {
	bs := Baselines()
	if len(bs) != 7 {
		t.Fatalf("baselines = %v", bs)
	}
	res, err := DesignWithBaseline(Spec{
		WorkloadName: "simpleconv",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 60, Seed: 2},
	}, "wo/EA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != "wo/EA" {
		t.Fatalf("baseline label = %q", res.Baseline)
	}
	if _, err := DesignWithBaseline(Spec{WorkloadName: "har"}, "wo/Everything"); err == nil ||
		!strings.Contains(err.Error(), "unknown baseline") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 60, Seed: 3},
	}
	res, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Verify(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("verification run should complete")
	}
}

func TestEnvironments(t *testing.T) {
	if BrightEnvironment().Keh(0) <= DarkEnvironment().Keh(0) {
		t.Fatal("bright must harvest more than dark")
	}
	d, err := DiurnalEnvironment(1e-3, 6*3600, 18*3600)
	if err != nil {
		t.Fatal(err)
	}
	if d.Keh(12*3600) <= 0 {
		t.Fatal("noon should harvest")
	}
	if _, err := DiurnalEnvironment(0, 0, 1); err == nil {
		t.Fatal("invalid diurnal should fail")
	}
}

func TestReportFacade(t *testing.T) {
	spec := Spec{
		WorkloadName: "simpleconv",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 60, Seed: 12},
	}
	res, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Report(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, "pre-RTL design reference") {
		t.Fatal("report header missing")
	}
	full, err := ReportWithVerification(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(doc) {
		t.Fatal("verified report should extend the base report")
	}
}

func TestPresetsFacade(t *testing.T) {
	ps := Presets()
	if len(ps) != 5 {
		t.Fatalf("presets = %d", len(ps))
	}
	res, err := DesignPreset("volcano", "kws", SearchConfig{Budget: 60, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= 0 {
		t.Fatal("no design")
	}
	if _, err := DesignPreset("moonbase", "kws", SearchConfig{}); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestSensitivityFacade(t *testing.T) {
	spec := Spec{
		WorkloadName: "simpleconv",
		Platform:     MSP430,
		Objective:    MinimizeLatTimesSP,
		Search:       SearchConfig{Budget: 60, Seed: 14},
	}
	res, err := Design(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Sensitivity(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}
