// Jsonworkload: define a custom DNN in JSON (no Go code), design an AuT
// for it, and inspect the chosen intermittent mapping — the workflow a
// domain engineer would follow with a model exported from a training
// pipeline.
package main

import (
	"fmt"
	"log"

	"chrysalis"
)

// A vibration-anomaly detector for a bridge-monitoring AuT: 1-D convs
// over a 256-sample accelerometer window.
const modelJSON = `{
  "name": "bridge-vibration",
  "input": [3, 1, 256],
  "elem_bytes": 2,
  "layers": [
    {"type": "conv1d", "out_channels": 8,  "kernel": 7, "stride": 2},
    {"type": "conv1d", "out_channels": 16, "kernel": 5, "stride": 2},
    {"type": "pool",   "kernel": 2},
    {"type": "conv1d", "out_channels": 16, "kernel": 3},
    {"type": "dense",  "out": 3}
  ]
}`

func main() {
	w, err := chrysalis.ParseWorkload([]byte(modelJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %q: %d layers, %d params, %.1f kMACs\n\n",
		w.Name, len(w.Layers), w.TotalParams(), float64(w.TotalMACs())/1e3)

	spec := chrysalis.Spec{
		Workload:   &w,
		Platform:   chrysalis.MSP430,
		Objective:  chrysalis.MinimizeSP, // smallest panel that meets the deadline
		MaxLatency: 2,                    // one detection every 2 seconds
		Search:     chrysalis.SearchConfig{Budget: 400, Seed: 11},
	}
	res, err := chrysalis.Design(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smallest panel meeting the 2s deadline: %v (capacitor %v)\n",
		res.PanelArea, res.Cap)
	fmt.Printf("predicted latency: %v avg across bright/dark\n\n", res.AvgLatency)

	fmt.Println("chosen intermittent mapping:")
	for _, d := range res.Dataflow {
		fmt.Printf("  %-10s %s/%s, %d tile(s), checkpoint %v\n",
			d.Layer, d.Dataflow, d.Partition, d.NTile, d.CkptBytes)
	}

	// Round-trip: export the model back out for version control.
	out, err := w.ToJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized model is %d bytes of JSON (stable for review diffs)\n", len(out))
}
