// Solarsizing: reproduce the paper's rationality analysis (Figures 8
// and 9) interactively — sweep the solar panel with a fixed capacitor,
// then the capacitor with a fixed panel, and watch checkpoint overhead
// trade against leakage and wasted harvest.
package main

import (
	"fmt"
	"log"

	"chrysalis"
)

func main() {
	spec := chrysalis.Spec{
		WorkloadName: "har",
		Platform:     chrysalis.MSP430,
		Objective:    chrysalis.MinimizeLatency,
	}

	fmt.Println("panel sweep (capacitor fixed at 100uF, bright):")
	fmt.Printf("  %-8s %-12s %-12s %-12s %s\n", "panel", "latency", "ckpt E", "leak E", "sys eff")
	for _, area := range []chrysalis.AreaCM2{2, 4, 8, 16, 24, 30} {
		dp := chrysalis.DesignPoint{PanelArea: area, Cap: 100e-6}
		run, err := chrysalis.Simulate(spec, dp, nil)
		if err != nil {
			log.Fatal(err)
		}
		if !run.Completed {
			fmt.Printf("  %-8v unavailable\n", area)
			continue
		}
		fmt.Printf("  %-8v %-12v %-12v %-12v %.1f%%\n",
			area, run.E2ELatency, run.Breakdown.Ckpt, run.Breakdown.CapLeakage,
			run.SystemEfficiency*100)
	}
	fmt.Println("  -> bigger panels charge faster, but past the knee the extra harvest is wasted")

	fmt.Println("\ncapacitor sweep (panel fixed at 8cm², bright):")
	fmt.Printf("  %-8s %-12s %-12s %-12s %s\n", "cap", "latency", "ckpt E", "leak E", "cycles")
	for _, c := range []chrysalis.Capacitance{10e-6, 47e-6, 100e-6, 470e-6, 1e-3, 4.7e-3, 10e-3} {
		dp := chrysalis.DesignPoint{PanelArea: 8, Cap: c}
		run, err := chrysalis.Simulate(spec, dp, nil)
		if err != nil {
			log.Fatal(err)
		}
		if !run.Completed {
			fmt.Printf("  %-8v unavailable (leakage exceeds harvest)\n", c)
			continue
		}
		fmt.Printf("  %-8v %-12v %-12v %-12v %d\n",
			c, run.E2ELatency, run.Breakdown.Ckpt, run.Breakdown.CapLeakage, run.PowerCycles)
	}
	fmt.Println("  -> small caps checkpoint constantly; big caps leak: the optimum sits between")
}
