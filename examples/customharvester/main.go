// Customharvester: extend CHRYSALIS with a user-defined energy source
// through the public Harvester interface — the paper's
// interface-oriented extensibility (Sec. III-D): "by utilizing newer or
// more sophisticated simulators ... through an interface, users can
// explore a broader range of possibilities."
//
// Here we model a thermoelectric generator (TEG) on machinery that runs
// a duty cycle: strong harvest while the machine is hot, a trickle
// otherwise — then compare it against solar under the same AuT design.
package main

import (
	"fmt"
	"log"
	"math"

	"chrysalis"
)

// dutyCycleTEG is a thermoelectric harvester on equipment with an
// on/off duty cycle. It implements chrysalis.Harvester.
type dutyCycleTEG struct {
	hot    chrysalis.Power   // output while the machine is hot
	cold   chrysalis.Power   // trickle output while idle
	period chrysalis.Seconds // full duty-cycle period
	duty   float64           // fraction of the period spent hot
}

// Power implements chrysalis.Harvester: a smooth transition between the
// hot and cold output as the machine cycles.
func (g dutyCycleTEG) Power(t chrysalis.Seconds) chrysalis.Power {
	phase := math.Mod(float64(t), float64(g.period)) / float64(g.period)
	if phase < g.duty {
		// Hot phase with a soft ramp at the start.
		ramp := math.Min(1, phase/(g.duty*0.1+1e-9))
		return g.cold + chrysalis.Power(ramp*float64(g.hot-g.cold))
	}
	return g.cold
}

// Describe implements chrysalis.Harvester.
func (g dutyCycleTEG) Describe() string {
	return fmt.Sprintf("TEG %v hot / %v cold, %.0f%% duty", g.hot, g.cold, g.duty*100)
}

func main() {
	spec := chrysalis.Spec{
		WorkloadName: "kws", // keyword spotting on the factory floor
		Platform:     chrysalis.MSP430,
		Objective:    chrysalis.MinimizeLatency,
	}
	dp := chrysalis.DesignPoint{PanelArea: 8, Cap: 470e-6}

	teg := dutyCycleTEG{hot: 9e-3, cold: 0.4e-3, period: 20, duty: 0.5}
	tegRun, err := chrysalis.SimulateWithHarvester(spec, dp, teg)
	if err != nil {
		log.Fatal(err)
	}
	solarRun, err := chrysalis.Simulate(spec, dp, chrysalis.BrightEnvironment())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: keyword spotting, design point: %v panel-equivalent, %v capacitor\n\n",
		dp.PanelArea, dp.Cap)
	fmt.Printf("%-22s %-12s %-8s %-12s %s\n", "source", "latency", "cycles", "ckpt energy", "efficiency")
	fmt.Printf("%-22s %-12v %-8d %-12v %.1f%%\n", teg.Describe(),
		tegRun.E2ELatency, tegRun.PowerCycles, tegRun.Breakdown.Ckpt, tegRun.SystemEfficiency*100)
	fmt.Printf("%-22s %-12v %-8d %-12v %.1f%%\n", "solar 8cm² bright",
		solarRun.E2ELatency, solarRun.PowerCycles, solarRun.Breakdown.Ckpt, solarRun.SystemEfficiency*100)

	fmt.Println("\nthe same CHRYSALIS evaluator, capacitor model and checkpoint machinery run")
	fmt.Println("unchanged under the custom source — only the Harvester implementation differs.")
}
