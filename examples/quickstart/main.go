// Quickstart: design an ideal AuT for a human-activity-recognition
// workload in three calls — define the spec, run the search, verify the
// winner on the step-based simulator.
package main

import (
	"fmt"
	"log"

	"chrysalis"
)

func main() {
	// 1. The design problem: HAR on an MSP430-class platform,
	//    minimizing the latency × panel-area product.
	spec := chrysalis.Spec{
		WorkloadName: "har",
		Platform:     chrysalis.MSP430,
		Objective:    chrysalis.MinimizeLatTimesSP,
		Search:       chrysalis.SearchConfig{Budget: 400, Seed: 42},
	}

	// 2. Search the joint energy/inference design space.
	res, err := chrysalis.Design(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ideal AuT configuration:")
	fmt.Printf("  solar panel: %v\n", res.PanelArea)
	fmt.Printf("  capacitor:   %v\n", res.Cap)
	fmt.Printf("  avg latency: %v (lat*sp %.2f cm²·s)\n", res.AvgLatency, res.LatSP)
	for _, d := range res.Dataflow {
		fmt.Printf("  layer %-8s -> %s/%s, %d tile(s), %v checkpoint\n",
			d.Layer, d.Dataflow, d.Partition, d.NTile, d.CkptBytes)
	}

	// 3. Cross-check the analytic estimate with the co-simulator
	// (Spec.SimMode selects the core; the default event-driven core
	// agrees with the step oracle on every counter).
	run, err := chrysalis.Verify(spec, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated (bright): completed=%v latency=%v over %d power cycles\n",
		run.Completed, run.E2ELatency, run.PowerCycles)
	fmt.Printf("energy: %v inference, %v checkpointing, %.1f%% system efficiency\n",
		run.Breakdown.Infer, run.Breakdown.Ckpt, run.SystemEfficiency*100)
}
