// Acceldesign: design a future AuT with a reconfigurable accelerator
// (the paper's Table V setup). Runs the three objective functions on
// ResNet18 and compares full EA/IA co-design against the wo/EA and
// wo/IA ablations — the Figure 10 story in miniature.
package main

import (
	"fmt"
	"log"

	"chrysalis"
)

func main() {
	base := chrysalis.Spec{
		WorkloadName: "resnet18",
		Platform:     chrysalis.Accelerator,
		MaxPanel:     20,
		MaxLatency:   15,
		Search:       chrysalis.SearchConfig{Budget: 400, Seed: 7},
	}

	objectives := []struct {
		name string
		obj  chrysalis.Objective
		unit string
	}{
		{"minimize latency (panel ≤ 20cm²)", chrysalis.MinimizeLatency, "s"},
		{"minimize panel (latency ≤ 15s)", chrysalis.MinimizeSP, "cm²"},
		{"minimize lat*sp", chrysalis.MinimizeLatTimesSP, "cm²·s"},
	}

	for _, o := range objectives {
		spec := base
		spec.Objective = o.obj
		fmt.Printf("objective: %s\n", o.name)
		for _, method := range []string{"chrysalis", "wo/EA", "wo/IA"} {
			res, err := chrysalis.DesignWithBaseline(spec, method)
			if err != nil {
				log.Fatal(err)
			}
			value := objectiveValue(o.obj, res)
			fmt.Printf("  %-10s %8.3g %-6s  (%s, %d PEs, %v cache, %v panel, %v cap)\n",
				method, value, o.unit, res.InferHW, res.NPE, res.CacheBytes, res.PanelArea, res.Cap)
		}
		fmt.Println()
	}
	fmt.Println("full co-design matches or beats each single-domain method on its own objective;")
	fmt.Println("the ablations only stay close on the dimension they are allowed to search.")
}

func objectiveValue(obj chrysalis.Objective, res chrysalis.Result) float64 {
	switch obj {
	case chrysalis.MinimizeLatency:
		return float64(res.AvgLatency)
	case chrysalis.MinimizeSP:
		return float64(res.PanelArea)
	default:
		return res.LatSP
	}
}
