package accel

import (
	"strings"
	"testing"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

func TestArchString(t *testing.T) {
	if TPU.String() != "tpu" || Eyeriss.String() != "eyeriss" {
		t.Error("arch strings")
	}
	if !strings.Contains(Arch(9).String(), "9") {
		t.Error("unknown arch string")
	}
}

func TestParseArch(t *testing.T) {
	for _, a := range Arches() {
		got, err := ParseArch(a.String())
		if err != nil || got != a {
			t.Errorf("ParseArch(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArch("npu"); err == nil {
		t.Error("unknown arch should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Arch: TPU, NPE: 64, CacheBytes: 512}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Arch: Arch(5), NPE: 64, CacheBytes: 512},
		{Arch: TPU, NPE: 0, CacheBytes: 512},
		{Arch: TPU, NPE: 169, CacheBytes: 512},
		{Arch: TPU, NPE: 64, CacheBytes: 64},
		{Arch: TPU, NPE: 64, CacheBytes: 4 * units.KB},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected error", i, c)
		}
	}
}

func TestHWConstruction(t *testing.T) {
	c := EyerissV1()
	hw, err := c.HW(dataflow.OS)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Validate(); err != nil {
		t.Fatalf("generated HW invalid: %v", err)
	}
	if hw.NPE != 168 {
		t.Fatalf("NPE = %d", hw.NPE)
	}
	// VM = shared 16KB + 168×(512B cache + 768B per-PE buffer).
	want := 16*units.KB + 168*(512+768)
	if hw.VMBytes != want {
		t.Fatalf("VM = %v, want %v", hw.VMBytes, want)
	}
	if hw.StreamReuse < 10 || hw.StreamReuse > 14 {
		t.Fatalf("Eyeriss V1 stream reuse = %v, want ~12", hw.StreamReuse)
	}
	if _, err := (Config{Arch: TPU, NPE: 0, CacheBytes: 512}).HW(dataflow.WS); err == nil {
		t.Error("invalid config must not produce HW")
	}
}

func TestNonNativeDataflowPenalty(t *testing.T) {
	c := Config{Arch: TPU, NPE: 64, CacheBytes: 512}
	if c.NativeDataflow() != dataflow.WS {
		t.Fatal("TPU should be weight-stationary")
	}
	native, _ := c.HW(dataflow.WS)
	foreign, _ := c.HW(dataflow.OS)
	if foreign.TMAC <= native.TMAC || foreign.EMAC <= native.EMAC {
		t.Fatal("non-native dataflow must be slower and less efficient")
	}
	e := Config{Arch: Eyeriss, NPE: 64, CacheBytes: 512}
	if e.NativeDataflow() != dataflow.OS {
		t.Fatal("Eyeriss should be output-stationary")
	}
}

func TestEyerissAlexNetNearPublished(t *testing.T) {
	// Run AlexNet through the cost model on the Eyeriss V1 design point
	// with no intermittence (NTile=1 per layer where feasible) and check
	// the totals land within ~2x of the published Figure 2(a) row.
	cfg := EyerissV1()
	hw, err := cfg.HW(dataflow.OS)
	if err != nil {
		t.Fatal(err)
	}
	// The published row covers AlexNet's convolutional layers (its 2663
	// MOPs matches the conv MAC count), so compare conv layers only.
	w := dnn.AlexNet()
	var totalT units.Seconds
	var totalE units.Energy
	for _, l := range w.Layers {
		if l.Kind != dnn.Conv2D {
			continue
		}
		_, c, err := dataflow.MinTileMapping(l, w.ElemBytes, dataflow.OS, hw)
		if err != nil {
			t.Fatalf("layer %s has no feasible mapping: %v", l.Name, err)
		}
		totalT += c.TDf
		totalE += c.EDf
	}
	pub := PublishedEyerissAlexNet()
	ratioT := float64(totalT) / float64(pub.TimePerInput)
	ratioE := float64(totalE) / float64(pub.Energy)
	if ratioT < 0.4 || ratioT > 2.5 {
		t.Errorf("model time %v vs published %v (ratio %.2f)", totalT, pub.TimePerInput, ratioT)
	}
	if ratioE < 0.4 || ratioE > 2.5 {
		t.Errorf("model energy %v vs published %v (ratio %.2f)", totalE, pub.Energy, ratioE)
	}
}

func TestActivePower(t *testing.T) {
	// Eyeriss V1 full chip should draw on the order of the published
	// 278 mW while active.
	p, err := EyerissV1().ActivePower(dataflow.OS)
	if err != nil {
		t.Fatal(err)
	}
	if p < 20e-3 || p > 1 {
		t.Fatalf("active power %v implausible vs published 278mW", p)
	}
	// A 4-PE array must draw far less than the 168-PE chip.
	small, err := (Config{Arch: Eyeriss, NPE: 4, CacheBytes: 512}).ActivePower(dataflow.OS)
	if err != nil {
		t.Fatal(err)
	}
	if small >= p/4 {
		t.Fatalf("4-PE power %v should be far below full chip %v", small, p)
	}
	if _, err := (Config{Arch: TPU, NPE: 999, CacheBytes: 512}).ActivePower(dataflow.WS); err == nil {
		t.Error("invalid config must not report power")
	}
}

func TestArchesDiffer(t *testing.T) {
	// The two archs must be genuinely different design points.
	tpu, _ := Config{Arch: TPU, NPE: 64, CacheBytes: 512}.HW(dataflow.WS)
	eye, _ := Config{Arch: Eyeriss, NPE: 64, CacheBytes: 512}.HW(dataflow.WS)
	if tpu.TMAC == eye.TMAC && tpu.EMAC == eye.EMAC {
		t.Fatal("TPU and Eyeriss should have distinct technology constants")
	}
}
