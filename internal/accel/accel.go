// Package accel describes the reconfigurable DNN accelerators of the
// paper's "future AuT" setup (Table V): a TPU-style systolic array and
// an Eyeriss-style row-stationary array, each parameterized by PE count
// (1–168) and per-PE cache size (128 B – 2 KB). The describer produces
// the dataflow.HW constant set consumed by the cost model, with
// per-architecture technology constants calibrated against the Eyeriss
// V1 figures the paper quotes in Figure 2(a) (AlexNet: 115.3 ms, 278 mW,
// 32.05 mJ).
package accel

import (
	"fmt"
	"math"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/units"
)

// Arch selects the accelerator family.
type Arch int

const (
	// TPU is a systolic weight-stationary array (Edge-TPU class).
	TPU Arch = iota
	// Eyeriss is a row-stationary array (Eyeriss V1 class).
	Eyeriss
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case TPU:
		return "tpu"
	case Eyeriss:
		return "eyeriss"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// Arches lists the Table V architecture choices.
func Arches() []Arch { return []Arch{TPU, Eyeriss} }

// ParseArch converts a name to an Arch.
func ParseArch(s string) (Arch, error) {
	switch s {
	case "tpu":
		return TPU, nil
	case "eyeriss":
		return Eyeriss, nil
	default:
		return 0, fmt.Errorf("accel: unknown architecture %q (want tpu or eyeriss)", s)
	}
}

// Design-space bounds from Table V.
const (
	MinPE = 1
	MaxPE = 168

	MinCacheBytes units.Bytes = 128
	MaxCacheBytes units.Bytes = 2 * units.KB
)

// tech holds per-architecture technology constants.
type tech struct {
	emac      units.Energy  // energy per MAC
	evm       units.Energy  // VM (global buffer) access energy per byte
	envmR     units.Energy  // NVM read energy per byte
	envmW     units.Energy  // NVM write energy per byte
	tmac      units.Seconds // effective time per MAC per PE
	sharedVM  units.Bytes   // global buffer independent of array size
	perPEVM   units.Bytes   // buffer contributed per PE beyond its cache
	pmem      units.Power   // static power per VM byte
	pidle     units.Power   // controller idle power
	perPEIdle units.Power   // idle/leakage power per PE
	nvmBW     float64       // NVM bytes/second
	native    dataflow.Dataflow
	// penalty multiplies TMAC and EMAC when running a non-native
	// dataflow on this array.
	penalty float64
}

// Technology constants. Eyeriss values back out of the published V1
// numbers (Fig. 2a): 115.3 ms on AlexNet with 168 PEs gives an
// effective 17 ns per MAC per PE; 32 mJ total implies ~28 pJ/MAC
// all-in, split here between compute, buffer and NVM traffic. The TPU
// column is a higher-clock, weight-stationary systolic design point.
var techTable = map[Arch]tech{
	TPU: {
		emac:      8e-12,
		evm:       22e-12,
		envmR:     80e-12,
		envmW:     160e-12,
		tmac:      12e-9,
		sharedVM:  16 * units.KB,
		perPEVM:   768,
		pmem:      100e-12,
		pidle:     50e-6,
		perPEIdle: 3e-6,
		nvmBW:     500e6,
		native:    dataflow.WS,
		penalty:   1.35,
	},
	Eyeriss: {
		emac:      16e-12,
		evm:       25e-12,
		envmR:     100e-12,
		envmW:     200e-12,
		tmac:      17e-9,
		sharedVM:  16 * units.KB,
		perPEVM:   768,
		pmem:      100e-12,
		pidle:     50e-6,
		perPEIdle: 3e-6,
		nvmBW:     300e6,
		native:    dataflow.OS,
		penalty:   1.25,
	},
}

// Config is one accelerator design point in the Table V space.
type Config struct {
	Arch       Arch
	NPE        int
	CacheBytes units.Bytes
}

// Validate checks the Table V bounds.
func (c Config) Validate() error {
	if _, ok := techTable[c.Arch]; !ok {
		return fmt.Errorf("accel: unknown architecture %v", c.Arch)
	}
	if c.NPE < MinPE || c.NPE > MaxPE {
		return fmt.Errorf("accel: PE count %d outside design space [%d, %d]", c.NPE, MinPE, MaxPE)
	}
	if c.CacheBytes < MinCacheBytes || c.CacheBytes > MaxCacheBytes {
		return fmt.Errorf("accel: PE cache %v outside design space [%v, %v]",
			c.CacheBytes, MinCacheBytes, MaxCacheBytes)
	}
	return nil
}

// NativeDataflow returns the dataflow the array was designed around.
func (c Config) NativeDataflow() dataflow.Dataflow { return techTable[c.Arch].native }

// HW materializes the dataflow cost-model constants for this design
// point when running dataflow df. Running a non-native dataflow incurs
// the architecture's efficiency penalty on both time and energy,
// reflecting mismatch between the NoC/PE design and the schedule.
func (c Config) HW(df dataflow.Dataflow) (dataflow.HW, error) {
	if err := c.Validate(); err != nil {
		return dataflow.HW{}, err
	}
	t := techTable[c.Arch]
	mult := 1.0
	if df != t.native {
		mult = t.penalty
	}
	vm := t.sharedVM + units.Bytes(float64(c.CacheBytes+t.perPEVM)*float64(c.NPE))
	return dataflow.HW{
		NPE:              c.NPE,
		CacheBytes:       c.CacheBytes,
		VMBytes:          vm,
		EMAC:             units.Energy(float64(t.emac) * mult),
		EVMPerByte:       t.evm,
		ENVMReadPerByte:  t.envmR,
		ENVMWritePerByte: t.envmW,
		TMAC:             units.Seconds(float64(t.tmac) * mult),
		NVMBytesPerSec:   t.nvmBW,
		PMemPerByte:      t.pmem,
		PIdle:            t.pidle + units.Power(float64(t.perPEIdle)*float64(c.NPE)),
		StreamReuse:      c.StreamReuse(),
	}, nil
}

// StreamReuse returns the array-level spatial-reuse factor of this
// design point: larger arrays multicast operands to more PEs, and
// larger PE caches keep operands resident for more MACs. Calibrated so
// the Eyeriss V1 point (168 PEs, 512 B) reuses each streamed byte ~12x.
func (c Config) StreamReuse() float64 {
	r := math.Sqrt(float64(c.NPE)*float64(c.CacheBytes)) / 24
	if r < 1 {
		return 1
	}
	return r
}

// ActivePower estimates the array's power draw while computing: the
// all-in energy rate at full PE utilization. The simulator uses it as
// the load the energy subsystem must sustain.
func (c Config) ActivePower(df dataflow.Dataflow) (units.Power, error) {
	hw, err := c.HW(df)
	if err != nil {
		return 0, err
	}
	// One MAC per PE per TMAC, plus roughly 2 bytes of buffer traffic
	// per MAC after spatial reuse, plus static power.
	macRate := float64(hw.NPE) / float64(hw.TMAC)
	stream := 2.0 / c.StreamReuse()
	dynamic := macRate * (float64(hw.EMAC) + stream*float64(hw.EVMPerByte))
	static := float64(hw.PMemPerByte)*float64(hw.VMBytes) + float64(hw.PIdle)
	return units.Power(dynamic + static), nil
}

// EyerissV1 returns the published full-chip Eyeriss V1 reference design
// point used in Figure 2(a): 168 PEs with 512-B PE scratchpads.
func EyerissV1() Config {
	return Config{Arch: Eyeriss, NPE: 168, CacheBytes: 512}
}

// Fig2aEyeriss holds the published Eyeriss V1 row of Figure 2(a),
// used by the experiment harness to compare against the model output.
type Fig2aRow struct {
	TimePerInput units.Seconds
	Power        units.Power
	Energy       units.Energy
	MOPs         float64
}

// PublishedEyerissAlexNet is Figure 2(a)'s Eyeriss V1 column.
func PublishedEyerissAlexNet() Fig2aRow {
	return Fig2aRow{
		TimePerInput: 115.3e-3,
		Power:        278e-3,
		Energy:       32.05e-3,
		MOPs:         2663,
	}
}
