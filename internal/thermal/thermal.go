// Package thermal models ambient-temperature effects on an AuT — one of
// the component extensions the paper names explicitly (Sec. III-D:
// "considerations such as temperature ... can be incorporated to
// explore specific scenarios"). Two physical couplings matter for
// energy-autonomous devices:
//
//   - Electrolytic capacitor leakage roughly doubles for every 10 °C of
//     temperature rise (the Arrhenius rule of thumb for aluminum
//     electrolytics), inflating the paper's k_cap.
//   - Photovoltaic output derates with cell temperature, typically
//     −0.4%/°C above the 25 °C rating point.
//
// The package provides temperature profiles and adapters that fold
// these effects into the existing solar and storage models, so thermal
// scenarios run through the unchanged evaluator and explorer.
package thermal

import (
	"fmt"
	"math"

	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/units"
)

// ReferenceC is the rating temperature for both couplings.
const ReferenceC = 25.0

// Profile supplies the ambient temperature over scenario time.
type Profile interface {
	// TempC returns the temperature in degrees Celsius at time t.
	TempC(t units.Seconds) float64
	// Name identifies the profile in traces.
	Name() string
}

// Constant is a fixed-temperature profile.
type Constant struct {
	C     float64
	Label string
}

// TempC implements Profile.
func (c Constant) TempC(units.Seconds) float64 { return c.C }

// Name implements Profile.
func (c Constant) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("%g°C", c.C)
}

// DayNight is a sinusoidal day/night temperature swing.
type DayNight struct {
	// MeanC is the daily mean temperature.
	MeanC float64
	// SwingC is the peak-to-mean amplitude.
	SwingC float64
	// PeakAt is the time of day (seconds) of maximum temperature.
	PeakAt units.Seconds
	// Period is the cycle length (0 selects 24 h).
	Period units.Seconds
}

// TempC implements Profile.
func (d DayNight) TempC(t units.Seconds) float64 {
	period := d.Period
	if period == 0 {
		period = 24 * 3600
	}
	phase := 2 * math.Pi * float64(t-d.PeakAt) / float64(period)
	return d.MeanC + d.SwingC*math.Cos(phase)
}

// Name implements Profile.
func (d DayNight) Name() string {
	return fmt.Sprintf("day/night %g±%g°C", d.MeanC, d.SwingC)
}

// LeakageFactor returns the multiplier on the capacitor leakage
// coefficient k_cap at temperature tempC: 2^((T−25)/10).
func LeakageFactor(tempC float64) float64 {
	return math.Pow(2, (tempC-ReferenceC)/10)
}

// AdjustedKcap returns the effective k_cap for a base coefficient at a
// given temperature. A base of 0 selects storage.DefaultKcap.
func AdjustedKcap(base, tempC float64) float64 {
	if base == 0 {
		base = storage.DefaultKcap
	}
	return base * LeakageFactor(tempC)
}

// pvDeratePerC is the photovoltaic power temperature coefficient.
const pvDeratePerC = 0.004

// PVFactor returns the multiplier on photovoltaic output at cell
// temperature tempC: 1 − 0.4%/°C above 25 °C (clamped at 10% floor so
// pathological profiles stay physical).
func PVFactor(tempC float64) float64 {
	f := 1 - pvDeratePerC*(tempC-ReferenceC)
	if f < 0.1 {
		return 0.1
	}
	if f > 1.2 {
		return 1.2 // cold cells are slightly better than rated
	}
	return f
}

// DeratedEnvironment wraps a solar environment with temperature
// derating: the effective k_eh at time t is scaled by PVFactor of the
// profile's temperature at t.
type DeratedEnvironment struct {
	Base    solar.Environment
	Thermal Profile
}

// NewDeratedEnvironment validates and builds the wrapper.
func NewDeratedEnvironment(base solar.Environment, p Profile) (DeratedEnvironment, error) {
	if base == nil {
		return DeratedEnvironment{}, fmt.Errorf("thermal: base environment must not be nil")
	}
	if p == nil {
		return DeratedEnvironment{}, fmt.Errorf("thermal: temperature profile must not be nil")
	}
	return DeratedEnvironment{Base: base, Thermal: p}, nil
}

// Keh implements solar.Environment.
func (d DeratedEnvironment) Keh(t units.Seconds) units.Power {
	return units.Power(float64(d.Base.Keh(t)) * PVFactor(d.Thermal.TempC(t)))
}

// Name implements solar.Environment.
func (d DeratedEnvironment) Name() string {
	return d.Base.Name() + "@" + d.Thermal.Name()
}

// SteadyKeh implements solar.SteadyEnvironment: the derated coefficient
// is time-invariant when both the base irradiance and the temperature
// profile are constant (Keh is then the same product at every t).
func (d DeratedEnvironment) SteadyKeh() bool {
	if se, ok := d.Base.(solar.SteadyEnvironment); !ok || !se.SteadyKeh() {
		return false
	}
	_, constant := d.Thermal.(Constant)
	return constant
}
