package thermal

import (
	"testing"
	"testing/quick"

	"chrysalis/internal/energy"
	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/units"
)

func TestLeakageFactor(t *testing.T) {
	if got := LeakageFactor(25); got != 1 {
		t.Fatalf("25°C factor = %v, want 1", got)
	}
	if got := LeakageFactor(35); !units.ApproxEqual(got, 2, 1e-9) {
		t.Fatalf("35°C factor = %v, want 2", got)
	}
	if got := LeakageFactor(15); !units.ApproxEqual(got, 0.5, 1e-9) {
		t.Fatalf("15°C factor = %v, want 0.5", got)
	}
	if got := LeakageFactor(45); !units.ApproxEqual(got, 4, 1e-9) {
		t.Fatalf("45°C factor = %v, want 4", got)
	}
}

func TestAdjustedKcap(t *testing.T) {
	if got := AdjustedKcap(0, 25); got != storage.DefaultKcap {
		t.Fatalf("zero base should default: %v", got)
	}
	if got := AdjustedKcap(0.02, 35); !units.ApproxEqual(got, 0.04, 1e-9) {
		t.Fatalf("doubling at +10°C: %v", got)
	}
}

func TestPVFactor(t *testing.T) {
	if got := PVFactor(25); got != 1 {
		t.Fatalf("rated point = %v", got)
	}
	if got := PVFactor(50); !units.ApproxEqual(got, 0.9, 1e-9) {
		t.Fatalf("50°C derate = %v, want 0.9", got)
	}
	if got := PVFactor(0); got <= 1 || got > 1.2 {
		t.Fatalf("cold bonus = %v", got)
	}
	if got := PVFactor(1000); got != 0.1 {
		t.Fatalf("floor = %v", got)
	}
	if got := PVFactor(-1000); got != 1.2 {
		t.Fatalf("ceiling = %v", got)
	}
}

func TestProfiles(t *testing.T) {
	c := Constant{C: 40}
	if c.TempC(0) != 40 || c.TempC(1e6) != 40 {
		t.Fatal("constant profile must be flat")
	}
	if c.Name() != "40°C" {
		t.Fatalf("name = %q", c.Name())
	}
	if (Constant{C: 40, Label: "oven"}).Name() != "oven" {
		t.Fatal("label should win")
	}

	d := DayNight{MeanC: 20, SwingC: 10, PeakAt: 14 * 3600}
	if got := d.TempC(14 * 3600); !units.ApproxEqual(got, 30, 1e-9) {
		t.Fatalf("peak temp = %v, want 30", got)
	}
	if got := d.TempC(2 * 3600); !units.ApproxEqual(got, 10, 1e-9) {
		t.Fatalf("trough temp = %v, want 10", got)
	}
	if d.Name() == "" {
		t.Fatal("day/night name")
	}
	// Mean over a full period equals MeanC.
	var sum float64
	const n = 1000
	for i := 0; i < n; i++ {
		sum += d.TempC(units.Seconds(i) * 24 * 3600 / n)
	}
	if !units.ApproxEqual(sum/n, 20, 1e-3) {
		t.Fatalf("mean = %v, want 20", sum/n)
	}
}

func TestDeratedEnvironment(t *testing.T) {
	if _, err := NewDeratedEnvironment(nil, Constant{C: 25}); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := NewDeratedEnvironment(solar.Bright(), nil); err == nil {
		t.Error("nil profile should fail")
	}
	hot, err := NewDeratedEnvironment(solar.Bright(), Constant{C: 65})
	if err != nil {
		t.Fatal(err)
	}
	base := solar.Bright().Keh(0)
	got := hot.Keh(0)
	want := float64(base) * 0.84 // 1 − 0.004·40
	if !units.ApproxEqual(float64(got), want, 1e-9) {
		t.Fatalf("derated keh = %v, want %v", got, want)
	}
	if hot.Name() != "bright@65°C" {
		t.Fatalf("name = %q", hot.Name())
	}
}

func TestHotScenarioChargesSlower(t *testing.T) {
	// End-to-end coupling: a hot scenario (derated PV + inflated
	// leakage) must lengthen the charge time of the same design.
	cool, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 1e-3}, solar.Bright())
	if err != nil {
		t.Fatal(err)
	}
	hotEnv, err := NewDeratedEnvironment(solar.Bright(), Constant{C: 60})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := energy.NewSolar(energy.Spec{
		PanelArea: 8, Cap: 1e-3,
		Kcap: AdjustedKcap(0, 60),
	}, hotEnv)
	if err != nil {
		t.Fatal(err)
	}
	if hot.ChargeLatency() <= cool.ChargeLatency() {
		t.Fatalf("hot charge %v should exceed cool %v", hot.ChargeLatency(), cool.ChargeLatency())
	}
}

func TestLeakageFactorMonotone(t *testing.T) {
	f := func(a, b int8) bool {
		ta, tb := float64(a), float64(b)
		fa, fb := LeakageFactor(ta), LeakageFactor(tb)
		if ta < tb {
			return fa < fb
		}
		if ta > tb {
			return fa > fb
		}
		return fa == fb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
