// Package wal is a minimal, dependency-free write-ahead log for the
// chrysalisd job store: an append-only file of length-prefixed,
// CRC32-checksummed records plus an atomically-replaced snapshot file,
// so a daemon killed mid-write recovers every durable record and drops
// only the torn tail — never silently corrupted state.
//
// On-disk layout inside the log directory:
//
//	wal.log   append-only records: [uint32 length][uint32 CRC32(payload)][payload]
//	snapshot  one checksummed record holding the caller's compacted state
//
// Recovery semantics (Open): the snapshot, when present and intact, is
// returned as the base state; the log is then scanned record by record.
// The scan stops at the first frame that cannot be proven intact — a
// header shorter than 8 bytes, a length that overruns the file or the
// sanity bound, or a payload whose checksum mismatches — and the file
// is truncated back to the last intact boundary so later appends never
// land after garbage. Torn-tail truncation is reported, not fatal: it
// is the expected shape of a crash mid-append.
//
// Writers call Append for every state change and WriteSnapshot
// periodically to compact: the snapshot is staged in a temp file,
// fsynced and renamed into place before the log is reset, so a crash at
// any instant leaves either the old (snapshot, log) pair or the new
// one, never a mix that loses acknowledged records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	logName      = "wal.log"
	snapName     = "snapshot"
	snapTempName = "snapshot.tmp"

	// headerSize frames every record: uint32 payload length + uint32
	// CRC32 (IEEE) of the payload, both little-endian.
	headerSize = 8

	// MaxRecord bounds a single record's payload. Anything larger in a
	// header is treated as corruption, not an allocation request.
	MaxRecord = 16 << 20
)

// ErrRecordTooLarge rejects appends beyond MaxRecord.
var ErrRecordTooLarge = errors.New("wal: record exceeds size bound")

// Recovery is everything Open salvaged from the directory.
type Recovery struct {
	// Snapshot is the last intact snapshot payload (nil when none).
	Snapshot []byte
	// Records are the intact log records appended after the snapshot,
	// in append order.
	Records [][]byte
	// TruncatedBytes is how many trailing bytes of the log were dropped
	// as a torn or corrupt tail (0 on a clean open).
	TruncatedBytes int64
	// SnapshotCorrupt reports that a snapshot file existed but failed
	// its checksum; it was ignored (the log records still replay).
	SnapshotCorrupt bool
}

// Log is an open write-ahead log. Append and WriteSnapshot are safe for
// concurrent use.
type Log struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	records int // appended (or replayed) since the last snapshot
	closed  bool
	stats   Stats
	syncObs func(seconds float64)
}

// Open creates the directory if needed, recovers the snapshot and every
// intact log record, repairs a torn tail in place, and returns the log
// positioned for appending.
func Open(dir string) (*Log, Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: create dir: %w", err)
	}
	var rec Recovery

	// Snapshot: a single framed record; an invalid one is ignored (with
	// the flag set) rather than fatal, so a crash during WriteSnapshot
	// can never brick recovery.
	if data, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		if payload, _, ok := decodeRecord(data); ok {
			rec.Snapshot = payload
		} else {
			rec.SnapshotCorrupt = true
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, Recovery{}, fmt.Errorf("wal: read snapshot: %w", err)
	}

	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: open log: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, Recovery{}, fmt.Errorf("wal: read log: %w", err)
	}
	off := 0
	for {
		payload, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		rec.Records = append(rec.Records, payload)
		off += n
	}
	if tail := int64(len(data) - off); tail > 0 {
		// Torn or corrupt tail: drop it and repair the file so the next
		// append starts at an intact boundary.
		rec.TruncatedBytes = tail
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, Recovery{}, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, Recovery{}, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{dir: dir, f: f, records: len(rec.Records)}, rec, nil
}

// decodeRecord parses one framed record from b, returning the payload,
// the frame's total length, and whether the frame is intact.
func decodeRecord(b []byte) (payload []byte, frame int, ok bool) {
	if len(b) < headerSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if n > MaxRecord || int(n) > len(b)-headerSize {
		return nil, 0, false
	}
	payload = b[headerSize : headerSize+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, headerSize + int(n), true
}

// encodeRecord frames a payload for the log.
func encodeRecord(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf
}

// Append writes one record. The frame is written with a single write
// call, so a crash leaves at worst one torn frame at the tail — exactly
// what recovery detects and drops.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return ErrRecordTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	frame := encodeRecord(payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.records++
	l.stats.Appends++
	l.stats.BytesAppended += int64(len(frame))
	return nil
}

// Records reports how many records the log holds since the last
// snapshot (including ones replayed at Open). Callers use it to decide
// when to compact.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Sync flushes the log file to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	start := time.Now()
	err := l.f.Sync()
	l.observeSyncLocked(time.Since(start))
	return err
}

// WriteSnapshot atomically replaces the snapshot with state and resets
// the log: the new snapshot is staged, fsynced and renamed before the
// log is truncated, so every acknowledged record is always recoverable
// from either the old log or the new snapshot.
func (l *Log) WriteSnapshot(state []byte) error {
	if len(state) > MaxRecord {
		return ErrRecordTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	compactStart := time.Now()
	tmp := filepath.Join(l.dir, snapTempName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: stage snapshot: %w", err)
	}
	if _, err := f.Write(encodeRecord(state)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName)); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	l.records = 0
	l.stats.Compactions++
	l.stats.CompactionNanos += int64(time.Since(compactStart))
	l.stats.SnapshotBytes = int64(len(state))
	return nil
}

// Close releases the log file. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
