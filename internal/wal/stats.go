package wal

// Operational statistics for the log, kept dependency-free: the wal
// package counts, the daemon layer owns the metrics registry and maps
// these onto /metrics families (plus a latency histogram fed through
// SetSyncObserver).

import "time"

// Stats is a point-in-time snapshot of a Log's lifetime counters
// (since Open; replayed records do not count as appends).
type Stats struct {
	// Appends and BytesAppended count Append calls and their framed
	// on-disk bytes (header included).
	Appends       int64
	BytesAppended int64
	// Syncs and SyncNanos count explicit Sync calls and their cumulative
	// wall time.
	Syncs     int64
	SyncNanos int64
	// Compactions and CompactionNanos count WriteSnapshot calls and
	// their cumulative wall time (staging + fsync + rename + log reset).
	Compactions     int64
	CompactionNanos int64
	// SnapshotBytes is the payload size of the most recent snapshot.
	SnapshotBytes int64
}

// Stats returns the log's current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// SetSyncObserver installs a callback invoked with each Sync's duration
// in seconds — the hook a latency histogram hangs off. Pass nil to
// remove. Not safe to call concurrently with Sync.
func (l *Log) SetSyncObserver(fn func(seconds float64)) {
	l.mu.Lock()
	l.syncObs = fn
	l.mu.Unlock()
}

// observeSyncLocked accounts one timed fsync. Callers hold l.mu.
func (l *Log) observeSyncLocked(d time.Duration) {
	l.stats.Syncs++
	l.stats.SyncNanos += int64(d)
	if l.syncObs != nil {
		l.syncObs(d.Seconds())
	}
}
