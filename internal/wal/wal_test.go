package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen closes l and opens the directory again.
func reopen(t *testing.T, l *Log) (*Log, Recovery) {
	t.Helper()
	dir := l.dir
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	nl, rec, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return nl, rec
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("append %q: %v", r, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, rec, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", rec)
	}
	want := []string{"one", "two", `{"op":"submit","id":"j-000003"}`, ""}
	appendAll(t, l, want...)

	l, rec = reopen(t, l)
	defer l.Close()
	if len(rec.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(want))
	}
	for i, w := range want {
		if string(rec.Records[i]) != w {
			t.Errorf("record %d = %q, want %q", i, rec.Records[i], w)
		}
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("clean log reported %d truncated bytes", rec.TruncatedBytes)
	}
	if got := l.Records(); got != len(want) {
		t.Errorf("Records() = %d, want %d", got, len(want))
	}
}

// TestTornTailDroppedOnly simulates a kill mid-append: the file ends
// with a partial frame. Recovery must drop exactly the torn record,
// keep every complete one, and repair the file so appends resume at an
// intact boundary.
func TestTornTailDroppedOnly(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop bytes out of the last frame (payload "gamma"
	// = 8-byte header + 5 payload bytes; removing 3 leaves a torn frame).
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(rec.Records) != 2 || string(rec.Records[0]) != "alpha" || string(rec.Records[1]) != "beta" {
		t.Fatalf("recovered %q, want [alpha beta]", rec.Records)
	}
	if rec.TruncatedBytes != int64(headerSize+5-3) {
		t.Errorf("truncated %d bytes, want %d", rec.TruncatedBytes, headerSize+5-3)
	}

	// The repaired log accepts appends and recovers them cleanly.
	appendAll(t, l, "delta")
	l, rec = reopen(t, l)
	defer l.Close()
	if len(rec.Records) != 3 || string(rec.Records[2]) != "delta" {
		t.Fatalf("post-repair recovery = %q, want [alpha beta delta]", rec.Records)
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("repaired log reported %d truncated bytes", rec.TruncatedBytes)
	}
}

// TestFlippedChecksumByte corrupts one payload byte of the final record
// in place (same length, wrong checksum): replay must drop only that
// record.
func TestFlippedChecksumByte(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "alpha", "beta", "gamma")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a byte inside "gamma"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(rec.Records) != 2 || string(rec.Records[0]) != "alpha" || string(rec.Records[1]) != "beta" {
		t.Fatalf("recovered %q, want [alpha beta]", rec.Records)
	}
	if rec.TruncatedBytes == 0 {
		t.Error("corrupt record not reported as truncated")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64((headerSize+5)+(headerSize+4)) {
		t.Errorf("log not truncated back to intact boundary: size %d", fi.Size())
	}
}

// TestEmptyAndHeaderOnlyFiles: an empty log (created but never written,
// or truncated to zero by a crash during snapshot compaction) and a log
// holding only a partial header both recover to zero records.
func TestEmptyAndHeaderOnlyFiles(t *testing.T) {
	for name, content := range map[string][]byte{
		"empty":          {},
		"partial-header": {0x01, 0x00, 0x00},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, logName), content, 0o644); err != nil {
				t.Fatal(err)
			}
			l, rec, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			if len(rec.Records) != 0 {
				t.Fatalf("recovered %d records from %s file", len(rec.Records), name)
			}
			if want := int64(len(content)); rec.TruncatedBytes != want {
				t.Errorf("truncated %d bytes, want %d", rec.TruncatedBytes, want)
			}
			appendAll(t, l, "first")
			l, rec = reopen(t, l)
			defer l.Close()
			if len(rec.Records) != 1 || string(rec.Records[0]) != "first" {
				t.Fatalf("post-recovery append lost: %q", rec.Records)
			}
		})
	}
}

func TestSnapshotCompactsAndSurvives(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	state := []byte(`{"next_id":7}`)
	if err := l.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 0 {
		t.Errorf("Records() after snapshot = %d, want 0", got)
	}
	appendAll(t, l, "c")

	l, rec := reopen(t, l)
	defer l.Close()
	if !bytes.Equal(rec.Snapshot, state) {
		t.Errorf("snapshot = %q, want %q", rec.Snapshot, state)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "c" {
		t.Fatalf("post-snapshot records = %q, want [c]", rec.Records)
	}
}

// TestCorruptSnapshotIgnored: a snapshot that fails its checksum is
// reported and skipped; the log still replays.
func TestCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "after")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !rec.SnapshotCorrupt {
		t.Error("corrupt snapshot not flagged")
	}
	if rec.Snapshot != nil {
		t.Errorf("corrupt snapshot returned: %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "after" {
		t.Fatalf("records = %q, want [after]", rec.Records)
	}
}

func TestRecordTooLarge(t *testing.T) {
	l, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecord+1)); err != ErrRecordTooLarge {
		t.Errorf("oversized append: %v, want ErrRecordTooLarge", err)
	}
}

// TestManyRecordsSurviveTearAtEveryBoundary exhaustively tears a small
// log at every byte offset and checks recovery keeps exactly the
// records whose frames fit before the tear.
func TestManyRecordsSurviveTearAtEveryBoundary(t *testing.T) {
	base := t.TempDir()
	l, _, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	var frames []int
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("record-%d", i)
		appendAll(t, l, p)
		frames = append(frames, headerSize+len(p))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(base, logName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		nl, rec, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		nl.Close()
		wantComplete := 0
		off := 0
		for _, f := range frames {
			if off+f <= cut {
				wantComplete++
				off += f
			} else {
				break
			}
		}
		if len(rec.Records) != wantComplete {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), wantComplete)
		}
	}
}
