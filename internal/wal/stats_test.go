package wal

import "testing"

func TestStatsCounting(t *testing.T) {
	l, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var observed int
	l.SetSyncObserver(func(seconds float64) {
		if seconds < 0 {
			t.Errorf("negative sync duration %v", seconds)
		}
		observed++
	})

	payload := []byte("hello wal")
	for i := 0; i < 3; i++ {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot([]byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	s := l.Stats()
	if s.Appends != 3 {
		t.Errorf("Appends = %d, want 3", s.Appends)
	}
	if want := int64(3 * (headerSize + len(payload))); s.BytesAppended != want {
		t.Errorf("BytesAppended = %d, want %d", s.BytesAppended, want)
	}
	if s.Syncs != 2 || observed != 2 {
		t.Errorf("Syncs = %d, observer calls = %d, want 2 each", s.Syncs, observed)
	}
	if s.SyncNanos < 0 {
		t.Errorf("SyncNanos = %d", s.SyncNanos)
	}
	if s.Compactions != 1 || s.CompactionNanos <= 0 {
		t.Errorf("Compactions = %d (%dns), want 1 with positive duration", s.Compactions, s.CompactionNanos)
	}
	if want := int64(len("snapshot-state")); s.SnapshotBytes != want {
		t.Errorf("SnapshotBytes = %d, want %d", s.SnapshotBytes, want)
	}
}
