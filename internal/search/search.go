// Package search provides the black-box optimizers behind the
// CHRYSALIS Explorer: a genetic algorithm (the paper implements its
// explorer "based on the open-source library Optuna and a genetic
// algorithm"), plus random and grid samplers used as ablation baselines,
// and Pareto-front utilities for the Figure 6 analyses.
//
// Optimizers work on genomes: vectors in [0,1]^dim that problem
// definitions decode into typed parameters with the Map* helpers.
// Objective values are minimized; +Inf marks infeasible points.
package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chrysalis/internal/obs"
)

// Problem is a black-box minimization problem over [0,1]^Dim.
type Problem struct {
	Dim  int
	Eval func(genome []float64) float64
	// EvalCtx, when non-nil, is used instead of Eval and additionally
	// receives the evaluation's context: its global ordinal and the
	// worker slot running it. Objectives that track per-worker state
	// (cache fast paths) or need deterministic tie-breaking across
	// parallel runs (lowest evaluation index wins) use it; everything
	// else can keep the plain Eval form.
	EvalCtx func(ec EvalContext, genome []float64) float64
}

// EvalContext identifies one objective evaluation inside a run.
type EvalContext struct {
	// Index is the global, generation-order ordinal of this evaluation
	// (0-based). It is identical for any worker count because candidate
	// generation stays sequential: evaluation i always sees the same
	// genome.
	Index int
	// Worker is the slot of the worker goroutine performing the
	// evaluation, in [0, workers). Serial runs always use slot 0. The
	// genome→worker assignment is NOT deterministic — only Index is.
	Worker int
}

// Validate checks the problem definition.
func (p Problem) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("search: dimension must be positive, got %d", p.Dim)
	}
	if p.Eval == nil && p.EvalCtx == nil {
		return fmt.Errorf("search: Eval must not be nil")
	}
	return nil
}

// evalFn returns the unified evaluation function, preferring EvalCtx.
func (p Problem) evalFn() func(ec EvalContext, genome []float64) float64 {
	if p.EvalCtx != nil {
		return p.EvalCtx
	}
	eval := p.Eval
	return func(_ EvalContext, genome []float64) float64 { return eval(genome) }
}

// Result is the outcome of an optimization run.
type Result struct {
	Best      []float64
	BestValue float64
	// Evals is the number of objective evaluations performed.
	Evals int
	// History records the best value after each generation (GA) or
	// sample batch (random), for convergence ablations.
	History []float64
	// Quality records per-generation population statistics, parallel to
	// History (filled by RunGA; samplers leave it nil).
	Quality QualityHistory
	// StoppedEarly reports that the plateau policy (GAConfig.Patience)
	// ended the run before the configured generation count; the stop
	// generation is len(History).
	StoppedEarly bool
	// Visited holds every evaluated (genome, value) pair when the
	// optimizer is asked to keep them (for Pareto analyses).
	Visited []Sample
}

// Sample is one evaluated point.
type Sample struct {
	Genome []float64
	Value  float64
}

// GAConfig parameterizes the genetic algorithm.
type GAConfig struct {
	Population  int
	Generations int
	// MutRate is the per-gene mutation probability.
	MutRate float64
	// MutSigma is the Gaussian mutation step.
	MutSigma float64
	// TournamentK is the tournament selection size.
	TournamentK int
	// Elite is how many best individuals survive unchanged.
	Elite int
	Seed  int64
	// KeepVisited retains all evaluated samples in Result.Visited.
	KeepVisited bool
	// Workers evaluates candidates concurrently when > 1. The search
	// trajectory is unchanged (candidate generation stays sequential and
	// seeded); only objective evaluations run in parallel, so Eval must
	// be safe for concurrent use.
	Workers int
	// SerialCostFloor makes parallel dispatch cost-aware: when > 0 and
	// the estimated serial cost of one evaluation falls below it, the
	// batch runs serially even if Workers > 1 — goroutine fan-out costs
	// more than it saves on microsecond-cheap objectives (the memoized
	// MSP430 fast path). The first estimate comes from a two-evaluation
	// serial probe at the head of the first batch (the cheaper of the
	// two, since the first evaluation often carries one-time cache
	// builds) and is refreshed from every batch thereafter.
	// <= 0 disables the floor. Never changes results, only wall-clock:
	// worker count is invisible to the search trajectory by design.
	SerialCostFloor time.Duration
	// Progress, when non-nil, is called by RunGA after every generation
	// with the 1-based generation index, the cumulative evaluation count
	// and the best objective value so far. It runs on the search
	// goroutine, so implementations must be fast and must not call back
	// into the optimizer.
	Progress func(gen, evals int, best float64)
	// Stop, when non-nil, is polled once per generation; returning true
	// ends the search early with the best individual found so far (used
	// for context cancellation and deadlines by serving layers).
	Stop func() bool
	// Patience, when > 0, enables the plateau early-stop policy: the run
	// ends after Patience consecutive generations whose relative
	// improvement of the best objective (dominated hypervolume for
	// NSGA-II) stayed below PlateauTol. The decision depends only on the
	// per-generation best series, which is bit-identical for any worker
	// count, so early stopping preserves the determinism contract:
	// Workers=1 and Workers=N stop at the identical generation. 0
	// disables early stopping.
	Patience int
	// PlateauTol is the relative-improvement threshold backing Patience;
	// <= 0 selects DefaultPlateauTol.
	PlateauTol float64
	// HVRef is the fixed (f1, f2) reference point for the per-generation
	// dominated-hypervolume indicator of NSGA-II runs. Zero (the
	// default) freezes the reference from the first generation with a
	// feasible member: 1.1× that generation's finite objective maxima —
	// deterministic, since the first population depends only on the
	// seed. Ignored by the scalar GA.
	HVRef [2]float64
	// OnQuality, when non-nil, receives each generation's GenQuality
	// record right after it is computed, on the search goroutine (same
	// rules as Progress: fast, no re-entry). Observational only.
	OnQuality func(q GenQuality)
	// Trace, when non-nil, records one span per generation (with the
	// cumulative evaluation count and best objective as attributes) plus
	// a run-level span. Nil disables tracing at zero cost.
	Trace *obs.Trace
	// Labels, when non-nil, is a context carrying runtime/pprof labels
	// (built with pprof.WithLabels); every evaluation worker goroutine
	// adopts them, so CPU profiles attribute objective work to the
	// owning job and phase instead of anonymous search workers. Like
	// Trace it is observational only — it never affects results.
	Labels context.Context
}

// DefaultGA returns a reasonable configuration for the AuT design
// spaces (a few thousand evaluations).
func DefaultGA(seed int64) GAConfig {
	return GAConfig{
		Population:  40,
		Generations: 30,
		MutRate:     0.25,
		MutSigma:    0.2,
		TournamentK: 3,
		Elite:       2,
		Seed:        seed,
	}
}

// Validate checks GA hyperparameters.
func (c GAConfig) Validate() error {
	if c.Population < 2 {
		return fmt.Errorf("search: population must be >= 2, got %d", c.Population)
	}
	if c.Generations < 1 {
		return fmt.Errorf("search: generations must be >= 1, got %d", c.Generations)
	}
	if c.MutRate < 0 || c.MutRate > 1 {
		return fmt.Errorf("search: mutation rate %g outside [0,1]", c.MutRate)
	}
	if c.MutSigma <= 0 {
		return fmt.Errorf("search: mutation sigma must be positive, got %g", c.MutSigma)
	}
	if c.TournamentK < 1 || c.TournamentK > c.Population {
		return fmt.Errorf("search: tournament size %d outside [1, population]", c.TournamentK)
	}
	if c.Elite < 0 || c.Elite >= c.Population {
		return fmt.Errorf("search: elite count %d outside [0, population)", c.Elite)
	}
	if c.Patience < 0 {
		return fmt.Errorf("search: patience must be >= 0, got %d", c.Patience)
	}
	return nil
}

type individual struct {
	genome []float64
	value  float64
}

// RunGA minimizes the problem with a (μ+λ)-style generational GA using
// tournament selection, uniform crossover and Gaussian mutation.
func RunGA(p Problem, cfg GAConfig) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var res Result
	record := func(batch []individual) {
		res.Evals += len(batch)
		if cfg.KeepVisited {
			for _, ind := range batch {
				cp := append([]float64(nil), ind.genome...)
				res.Visited = append(res.Visited, Sample{Genome: cp, Value: ind.value})
			}
		}
	}
	// costEst is the estimated serial cost of one evaluation, refreshed
	// from each batch. A batch measured at width w took roughly
	// elapsed·w worker-time for n evaluations; the estimate deliberately
	// leans high for parallel batches (idle-worker time counts), which
	// only makes the serial fallback trigger sooner — the cheap-objective
	// case is exactly where the estimate is inflated by dispatch
	// overhead.
	costEst := time.Duration(-1) // unknown until the first probe
	evalBatch := func(batch []individual) {
		base, rest := res.Evals, batch
		if cfg.SerialCostFloor > 0 && costEst < 0 && cfg.Workers > 1 && len(batch) > 2 {
			// No estimate yet: price the objective on a two-evaluation
			// serial probe before paying for any goroutine fan-out — on
			// microsecond-cheap objectives even one parallel batch costs
			// more than its serial run. Each probe evaluation is timed
			// alone and the cheaper one becomes the estimate: the first
			// evaluation often carries one-time cache builds that would
			// overstate the steady-state cost.
			for i := 0; i < 2; i++ {
				start := time.Now()
				evaluateBatch(p, base, rest[:1], 1, cfg.Labels)
				if d := time.Since(start); costEst < 0 || d < costEst {
					costEst = d
				}
				base, rest = base+1, rest[1:]
			}
		}
		workers := cfg.Workers
		if cfg.SerialCostFloor > 0 && costEst >= 0 && costEst < cfg.SerialCostFloor {
			workers = 1
		}
		start := time.Now()
		evaluateBatch(p, base, rest, workers, cfg.Labels)
		if n := len(rest); n > 0 && cfg.SerialCostFloor > 0 {
			per := time.Since(start) / time.Duration(n)
			if workers > 1 {
				per *= time.Duration(workers)
			}
			costEst = per
		}
		record(batch)
	}

	var runSpan *obs.Span
	if cfg.Trace != nil {
		runSpan = cfg.Trace.Start("search", "ga-run",
			obs.A("population", cfg.Population), obs.A("generations", cfg.Generations),
			obs.A("dim", p.Dim), obs.A("seed", cfg.Seed))
	}

	pop := make([]individual, cfg.Population)
	for i := range pop {
		pop[i] = individual{genome: randomGenome(rng, p.Dim)}
	}
	evalBatch(pop)
	sortPop(pop)

	// Quality telemetry is default-on: the per-generation statistics are
	// O(population·dim), noise next to the objective evaluations.
	values := make([]float64, cfg.Population)
	genomes := make([][]float64, cfg.Population)
	stopper := newPlateau(cfg.Patience, cfg.PlateauTol)

	for gen := 0; gen < cfg.Generations; gen++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		var genSpan *obs.Span
		if cfg.Trace != nil {
			genSpan = cfg.Trace.Start("search", fmt.Sprintf("generation %d", gen+1))
		}
		next := make([]individual, 0, cfg.Population)
		// Elitism (already evaluated).
		for i := 0; i < cfg.Elite; i++ {
			next = append(next, pop[i])
		}
		// Candidate generation stays sequential so the trajectory is
		// identical regardless of worker count.
		fresh := make([]individual, 0, cfg.Population-cfg.Elite)
		for len(next)+len(fresh) < cfg.Population {
			a := tournament(rng, pop, cfg.TournamentK)
			b := tournament(rng, pop, cfg.TournamentK)
			child := crossover(rng, a.genome, b.genome)
			mutate(rng, child, cfg.MutRate, cfg.MutSigma)
			fresh = append(fresh, individual{genome: child})
		}
		evalBatch(fresh)
		pop = append(next, fresh...)
		sortPop(pop)
		res.History = append(res.History, pop[0].value)
		for i, ind := range pop {
			values[i], genomes[i] = ind.value, ind.genome
		}
		q := scalarQuality(gen+1, res.Evals, values, genomes)
		var stop bool
		q.Stagnation, stop = stopper.observe(pop[0].value)
		res.Quality = append(res.Quality, q)
		if genSpan != nil {
			genSpan.End(obs.A("evals", res.Evals), obs.A("best", pop[0].value))
		}
		if cfg.Progress != nil {
			cfg.Progress(gen+1, res.Evals, pop[0].value)
		}
		if cfg.OnQuality != nil {
			cfg.OnQuality(q)
		}
		if stop {
			res.StoppedEarly = true
			break
		}
	}

	res.Best = append([]float64(nil), pop[0].genome...)
	res.BestValue = pop[0].value
	if runSpan != nil {
		runSpan.End(obs.A("evals", res.Evals), obs.A("best", res.BestValue))
	}
	return res, nil
}

// evaluateBatch fills in the values of a batch, optionally across
// workers. base is the global ordinal of batch[0] (the run's cumulative
// evaluation count before this batch), so batch[i] evaluates as
// EvalContext{Index: base+i} regardless of worker count.
func evaluateBatch(p Problem, base int, batch []individual, workers int, labels context.Context) {
	eval := p.evalFn()
	forEachIndex(len(batch), workers, labels, func(worker, i int) {
		batch[i].value = eval(EvalContext{Index: base + i, Worker: worker}, batch[i].genome)
	})
}

// dispatchChunk sizes the per-grab work chunk for forEachIndex: small
// enough that workers stay balanced on skewed objective costs, large
// enough that the shared counter isn't contended per index.
func dispatchChunk(n, workers int) int {
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// forEachIndex runs fn(worker, i) for every i in [0, n), distributed
// across the given number of worker goroutines via chunked claims on a
// shared atomic counter. The earlier implementation pushed every index
// through an unbuffered channel, which cost two scheduler handoffs per
// element and dominated cheap objectives; claiming chunks amortizes the
// synchronization to a few atomic adds per worker (see
// BenchmarkBatchDispatch). workers <= 1 (or n < 2) degenerates to a
// plain serial loop on the caller's goroutine with worker slot 0.
//
// labels, when non-nil, is a context carrying runtime/pprof labels;
// each spawned worker adopts them so profiles attribute the work. The
// serial path leaves the caller's goroutine labels untouched (the
// caller already carries its own).
func forEachIndex(n, workers int, labels context.Context, fn func(worker, i int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := dispatchChunk(n, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if labels != nil {
				pprof.SetGoroutineLabels(labels)
			}
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// RunRandom minimizes by uniform random sampling (the wo/search
// ablation baseline).
func RunRandom(p Problem, n int, seed int64, keepVisited bool) (Result, error) {
	return RunRandomWorkers(p, n, seed, keepVisited, 1)
}

// RunRandomWorkers is RunRandom with concurrent objective evaluation.
// Genome generation stays sequential and seeded and the best-so-far
// fold runs in sample order, so the result is bit-identical for any
// worker count; only the objective calls run in parallel (Eval/EvalCtx
// must be safe for concurrent use when workers > 1).
func RunRandomWorkers(p Problem, n int, seed int64, keepVisited bool, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("search: sample count must be >= 1, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	genomes := make([][]float64, n)
	for i := range genomes {
		genomes[i] = randomGenome(rng, p.Dim)
	}
	values := make([]float64, n)
	eval := p.evalFn()
	forEachIndex(n, workers, nil, func(worker, i int) {
		values[i] = eval(EvalContext{Index: i, Worker: worker}, genomes[i])
	})

	var res Result
	res.BestValue = math.Inf(1)
	for i := 0; i < n; i++ {
		g, v := genomes[i], values[i]
		res.Evals++
		if keepVisited {
			res.Visited = append(res.Visited, Sample{Genome: g, Value: v})
		}
		if v < res.BestValue {
			res.BestValue = v
			res.Best = append([]float64(nil), g...)
		}
		res.History = append(res.History, res.BestValue)
	}
	return res, nil
}

// RunGrid minimizes by exhaustive grid sampling with k points per
// dimension. Practical only for low-dimensional spaces; used for
// sampler-quality ablations.
func RunGrid(p Problem, k int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if k < 2 {
		return Result{}, fmt.Errorf("search: grid needs >= 2 points per dim, got %d", k)
	}
	total := 1
	for i := 0; i < p.Dim; i++ {
		total *= k
		if total > 1_000_000 {
			return Result{}, fmt.Errorf("search: grid of %d^%d points is too large", k, p.Dim)
		}
	}
	var res Result
	res.BestValue = math.Inf(1)
	eval := p.evalFn()
	g := make([]float64, p.Dim)
	idx := make([]int, p.Dim)
	for {
		for d, i := range idx {
			g[d] = float64(i) / float64(k-1)
		}
		v := eval(EvalContext{Index: res.Evals}, g)
		res.Evals++
		if v < res.BestValue {
			res.BestValue = v
			res.Best = append([]float64(nil), g...)
		}
		// Odometer increment.
		d := 0
		for ; d < p.Dim; d++ {
			idx[d]++
			if idx[d] < k {
				break
			}
			idx[d] = 0
		}
		if d == p.Dim {
			break
		}
	}
	res.History = []float64{res.BestValue}
	return res, nil
}

func randomGenome(rng *rand.Rand, dim int) []float64 {
	g := make([]float64, dim)
	for i := range g {
		g[i] = rng.Float64()
	}
	return g
}

func sortPop(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].value < pop[j].value })
}

func tournament(rng *rand.Rand, pop []individual, k int) individual {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if c.value < best.value {
			best = c
		}
	}
	return best
}

func crossover(rng *rand.Rand, a, b []float64) []float64 {
	child := make([]float64, len(a))
	for i := range child {
		if rng.Float64() < 0.5 {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	return child
}

func mutate(rng *rand.Rand, g []float64, rate, sigma float64) {
	for i := range g {
		if rng.Float64() < rate {
			g[i] += rng.NormFloat64() * sigma
			if g[i] < 0 {
				g[i] = 0
			}
			if g[i] > 1 {
				g[i] = 1
			}
		}
	}
}

// --- Genome decoding helpers ---

// MapFloat decodes u in [0,1] to [min,max], optionally log-scaled (for
// parameters spanning decades, like the 1 µF – 10 mF capacitor range).
func MapFloat(u, min, max float64, log bool) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	if log {
		return min * math.Pow(max/min, u)
	}
	return min + u*(max-min)
}

// MapInt decodes u to an integer in [min,max] inclusive.
func MapInt(u float64, min, max int) int {
	if max < min {
		min, max = max, min
	}
	v := min + int(math.Floor(MapFloat(u, 0, float64(max-min+1), false)))
	if v > max {
		v = max
	}
	return v
}

// MapChoice decodes u to an index in [0,n).
func MapChoice(u float64, n int) int {
	return MapInt(u, 0, n-1)
}

// --- Pareto utilities ---

// Point2 is a bi-objective sample (both minimized), carrying an opaque
// tag so callers can recover the configuration behind a front member.
type Point2 struct {
	X, Y float64
	Tag  int
}

// ParetoFront returns the non-dominated subset of pts (minimizing both
// coordinates), sorted by X ascending. A point dominates another when
// it is no worse in both coordinates and strictly better in at least
// one.
func ParetoFront(pts []Point2) []Point2 {
	if len(pts) == 0 {
		return nil
	}
	sorted := append([]Point2(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	var front []Point2
	bestY := math.Inf(1)
	for _, p := range sorted {
		if p.Y < bestY {
			front = append(front, p)
			bestY = p.Y
		}
	}
	return front
}

// Dominates reports whether a dominates b (minimization).
func Dominates(a, b Point2) bool {
	return a.X <= b.X && a.Y <= b.Y && (a.X < b.X || a.Y < b.Y)
}
