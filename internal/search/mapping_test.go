package search

import (
	"math"
	"testing"
)

// TestMapFloatLogEndpoints pins the log-scale decode at and beyond its
// endpoints: the capacitor axis (1 µF – 10 mF) must hit its bounds
// exactly so boundary designs are reachable, and out-of-range genes
// (post-mutation values before clamping) must saturate, not
// extrapolate.
func TestMapFloatLogEndpoints(t *testing.T) {
	const min, max = 1e-6, 10e-3
	if got := MapFloat(0, min, max, true); got != min {
		t.Errorf("MapFloat(0, log) = %g, want %g", got, min)
	}
	if got := MapFloat(1, min, max, true); got != max {
		t.Errorf("MapFloat(1, log) = %g, want %g", got, max)
	}
	if got := MapFloat(-0.3, min, max, true); got != min {
		t.Errorf("MapFloat(-0.3, log) = %g, want clamp to %g", got, min)
	}
	if got := MapFloat(1.7, min, max, true); got != max {
		t.Errorf("MapFloat(1.7, log) = %g, want clamp to %g", got, max)
	}
	// Log decode is monotone and stays within bounds everywhere.
	prev := math.Inf(-1)
	for u := 0.0; u <= 1.0; u += 1.0 / 64 {
		v := MapFloat(u, min, max, true)
		if v < min || v > max {
			t.Fatalf("MapFloat(%g, log) = %g outside [%g, %g]", u, v, min, max)
		}
		if v < prev {
			t.Fatalf("MapFloat log not monotone at u=%g", u)
		}
		prev = v
	}
	// Each decade of a 4-decade range spans a quarter of u.
	if got := MapFloat(0.25, min, max, true); math.Abs(got-1e-5) > 1e-12 {
		t.Errorf("quarter point = %g, want 1e-5", got)
	}
}

// TestMapIntBoundaryClamping pins integer decoding at the edges: u
// outside [0,1], the u=1 endpoint (which lands exactly on max and must
// not overflow to max+1), and a reversed [min,max] order.
func TestMapIntBoundaryClamping(t *testing.T) {
	if got := MapInt(-2, 3, 9); got != 3 {
		t.Errorf("MapInt(-2) = %d, want 3", got)
	}
	if got := MapInt(5, 3, 9); got != 9 {
		t.Errorf("MapInt(5) = %d, want 9", got)
	}
	// u=1 maps Floor((max-min+1)) which lands one past max before the
	// final clamp; the clamp must bring it back.
	if got := MapInt(1, 0, 7); got != 7 {
		t.Errorf("MapInt(1, 0, 7) = %d, want 7", got)
	}
	// Reversed bounds normalize.
	if got := MapInt(0, 9, 3); got != 3 {
		t.Errorf("MapInt(0, 9, 3) = %d, want 3", got)
	}
	if got := MapInt(1, 9, 3); got != 9 {
		t.Errorf("MapInt(1, 9, 3) = %d, want 9", got)
	}
	// Negative ranges (e.g. offsets) clamp symmetrically.
	if got := MapInt(-1, -5, -1); got != -5 {
		t.Errorf("MapInt(-1, -5, -1) = %d, want -5", got)
	}
	if got := MapInt(2, -5, -1); got != -1 {
		t.Errorf("MapInt(2, -5, -1) = %d, want -1", got)
	}
}

// TestMapChoiceBoundaryClamping pins the categorical decode: the u=1
// endpoint stays inside [0,n), out-of-range u clamps, and a
// single-choice space always decodes to 0.
func TestMapChoiceBoundaryClamping(t *testing.T) {
	if got := MapChoice(1, 3); got != 2 {
		t.Errorf("MapChoice(1, 3) = %d, want 2", got)
	}
	if got := MapChoice(-0.5, 3); got != 0 {
		t.Errorf("MapChoice(-0.5, 3) = %d, want 0", got)
	}
	if got := MapChoice(1.5, 3); got != 2 {
		t.Errorf("MapChoice(1.5, 3) = %d, want 2", got)
	}
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := MapChoice(u, 1); got != 0 {
			t.Fatalf("MapChoice(%g, 1) = %d, want 0", u, got)
		}
	}
}

// TestParetoFrontDuplicatesAndDegenerates pins the front on inputs the
// random Pareto scan actually produces: exact duplicates, ties along
// one axis, a single point, and a fully degenerate cloud.
func TestParetoFrontDuplicatesAndDegenerates(t *testing.T) {
	// Exact duplicates: only one copy survives (strict Y improvement).
	front := ParetoFront([]Point2{
		{X: 1, Y: 1, Tag: 0},
		{X: 1, Y: 1, Tag: 1},
		{X: 1, Y: 1, Tag: 2},
	})
	if len(front) != 1 {
		t.Fatalf("duplicate cloud front = %v, want a single member", front)
	}

	// Same X, different Y: only the lowest Y is non-dominated.
	front = ParetoFront([]Point2{
		{X: 2, Y: 9, Tag: 0},
		{X: 2, Y: 3, Tag: 1},
		{X: 2, Y: 5, Tag: 2},
	})
	if len(front) != 1 || front[0].Tag != 1 {
		t.Fatalf("same-X front = %v, want just tag 1", front)
	}

	// Same Y, different X: only the lowest X is non-dominated.
	front = ParetoFront([]Point2{
		{X: 4, Y: 2, Tag: 0},
		{X: 1, Y: 2, Tag: 1},
		{X: 3, Y: 2, Tag: 2},
	})
	if len(front) != 1 || front[0].Tag != 1 {
		t.Fatalf("same-Y front = %v, want just tag 1", front)
	}

	// A single point is its own front.
	front = ParetoFront([]Point2{{X: 7, Y: 7, Tag: 42}})
	if len(front) != 1 || front[0].Tag != 42 {
		t.Fatalf("singleton front = %v", front)
	}

	// Duplicates of front members must not inflate the front size, and
	// the result stays mutually non-dominated.
	pts := []Point2{
		{X: 1, Y: 10}, {X: 1, Y: 10},
		{X: 2, Y: 5}, {X: 2, Y: 5},
		{X: 4, Y: 1}, {X: 4, Y: 1},
		{X: 3, Y: 20}, // dominated
	}
	front = ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("duplicated staircase front = %v, want 3 members", front)
	}
	for i, a := range front {
		for j, b := range front {
			if i != j && Dominates(a, b) {
				t.Fatalf("front member %v dominates %v", a, b)
			}
		}
	}
	// Input order must not matter for the surviving coordinates.
	rev := make([]Point2, len(pts))
	for i, p := range pts {
		rev[len(pts)-1-i] = p
	}
	front2 := ParetoFront(rev)
	if len(front2) != len(front) {
		t.Fatalf("front size depends on input order: %d vs %d", len(front2), len(front))
	}
	for i := range front {
		if front[i].X != front2[i].X || front[i].Y != front2[i].Y {
			t.Fatalf("front coordinates depend on input order: %v vs %v", front, front2)
		}
	}
}
