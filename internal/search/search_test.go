package search

import (
	"math"
	"testing"
	"testing/quick"
)

// sphere is a convex test objective with minimum 0 at the center.
func sphere(g []float64) float64 {
	var s float64
	for _, x := range g {
		d := x - 0.5
		s += d * d
	}
	return s
}

func TestProblemValidate(t *testing.T) {
	if err := (Problem{Dim: 0, Eval: sphere}).Validate(); err == nil {
		t.Error("zero dim should fail")
	}
	if err := (Problem{Dim: 2}).Validate(); err == nil {
		t.Error("nil eval should fail")
	}
	if err := (Problem{Dim: 2, Eval: sphere}).Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestGAConfigValidate(t *testing.T) {
	good := DefaultGA(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*GAConfig){
		func(c *GAConfig) { c.Population = 1 },
		func(c *GAConfig) { c.Generations = 0 },
		func(c *GAConfig) { c.MutRate = -0.1 },
		func(c *GAConfig) { c.MutRate = 1.1 },
		func(c *GAConfig) { c.MutSigma = 0 },
		func(c *GAConfig) { c.TournamentK = 0 },
		func(c *GAConfig) { c.TournamentK = 1000 },
		func(c *GAConfig) { c.Elite = -1 },
		func(c *GAConfig) { c.Elite = 40 },
	}
	for i, mut := range cases {
		c := DefaultGA(1)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGAFindsSphereMinimum(t *testing.T) {
	p := Problem{Dim: 4, Eval: sphere}
	res, err := RunGA(p, DefaultGA(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 0.01 {
		t.Fatalf("GA best %v, want < 0.01", res.BestValue)
	}
	if res.Evals != 40+40*30-2*30 { // pop + gens*(pop-elite)
		t.Logf("evals = %d", res.Evals) // informational; exact count depends on elitism
	}
	if len(res.History) != 30 {
		t.Fatalf("history length %d, want 30", len(res.History))
	}
}

func TestGADeterministicPerSeed(t *testing.T) {
	p := Problem{Dim: 3, Eval: sphere}
	a, err := RunGA(p, DefaultGA(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGA(p, DefaultGA(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestValue != b.BestValue {
		t.Fatal("same seed must reproduce the same result")
	}
	c, err := RunGA(p, DefaultGA(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestValue == c.BestValue && equal(a.Best, c.Best) {
		t.Fatal("different seeds should explore differently")
	}
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGAHistoryMonotone(t *testing.T) {
	// With elitism the best-so-far never regresses.
	p := Problem{Dim: 5, Eval: sphere}
	res, err := RunGA(p, DefaultGA(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-15 {
			t.Fatalf("history regressed at %d: %v -> %v", i, res.History[i-1], res.History[i])
		}
	}
}

func TestGAHandlesInfeasible(t *testing.T) {
	// Objective that is infeasible on half the space.
	eval := func(g []float64) float64 {
		if g[0] < 0.5 {
			return math.Inf(1)
		}
		return sphere(g)
	}
	res, err := RunGA(Problem{Dim: 2, Eval: eval}, DefaultGA(11))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.BestValue, 1) {
		t.Fatal("GA should find the feasible half")
	}
	if res.Best[0] < 0.5 {
		t.Fatal("best genome should be feasible")
	}
}

func TestGAKeepVisited(t *testing.T) {
	cfg := DefaultGA(5)
	cfg.KeepVisited = true
	res, err := RunGA(Problem{Dim: 2, Eval: sphere}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Visited) != res.Evals {
		t.Fatalf("visited %d != evals %d", len(res.Visited), res.Evals)
	}
}

func TestGABeatsRandomOnBudget(t *testing.T) {
	// The paper's premise for using a GA: with an equal evaluation
	// budget it should find better optima than random sampling on a
	// structured landscape.
	rosen := func(g []float64) float64 {
		x, y := g[0]*4-2, g[1]*4-2
		return 100*(y-x*x)*(y-x*x) + (1-x)*(1-x)
	}
	p := Problem{Dim: 2, Eval: rosen}
	ga, err := RunGA(p, DefaultGA(21))
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RunRandom(p, ga.Evals, 21, false)
	if err != nil {
		t.Fatal(err)
	}
	if ga.BestValue > rnd.BestValue*2 {
		t.Fatalf("GA (%v) much worse than random (%v) at equal budget", ga.BestValue, rnd.BestValue)
	}
}

func TestGAProgressCallback(t *testing.T) {
	cfg := DefaultGA(1)
	cfg.Population = 10
	cfg.Generations = 5
	var gens, lastEvals []int
	var bests []float64
	cfg.Progress = func(gen, evals int, best float64) {
		gens = append(gens, gen)
		lastEvals = append(lastEvals, evals)
		bests = append(bests, best)
	}
	res, err := RunGA(Problem{Dim: 3, Eval: sphere}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != cfg.Generations {
		t.Fatalf("progress called %d times, want %d", len(gens), cfg.Generations)
	}
	for i, g := range gens {
		if g != i+1 {
			t.Fatalf("gens = %v, want 1..%d", gens, cfg.Generations)
		}
		if i > 0 && lastEvals[i] <= lastEvals[i-1] {
			t.Fatalf("evals not increasing: %v", lastEvals)
		}
		if i > 0 && bests[i] > bests[i-1] {
			t.Fatalf("best not monotone: %v", bests)
		}
	}
	if lastEvals[len(lastEvals)-1] != res.Evals {
		t.Fatalf("final progress evals %d != result evals %d", lastEvals[len(lastEvals)-1], res.Evals)
	}
	if bests[len(bests)-1] != res.BestValue {
		t.Fatalf("final progress best %g != result best %g", bests[len(bests)-1], res.BestValue)
	}
}

func TestGAStopEndsSearchEarly(t *testing.T) {
	cfg := DefaultGA(1)
	cfg.Population = 10
	cfg.Generations = 1000
	calls := 0
	cfg.Progress = func(int, int, float64) { calls++ }
	cfg.Stop = func() bool { return calls >= 3 }
	res, err := RunGA(Problem{Dim: 3, Eval: sphere}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("ran %d generations after stop, want 3", calls)
	}
	if len(res.Best) != 3 || math.IsInf(res.BestValue, 1) {
		t.Fatalf("stopped search must still return the best so far: %+v", res)
	}
	if res.Evals >= 10*1000 {
		t.Fatal("stop did not shorten the search")
	}
}

func TestRunRandom(t *testing.T) {
	res, err := RunRandom(Problem{Dim: 3, Eval: sphere}, 500, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 500 || len(res.Visited) != 500 {
		t.Fatalf("evals %d, visited %d", res.Evals, len(res.Visited))
	}
	if res.BestValue > 0.1 {
		t.Fatalf("random best %v too poor", res.BestValue)
	}
	if _, err := RunRandom(Problem{Dim: 3, Eval: sphere}, 0, 1, false); err == nil {
		t.Fatal("zero samples should fail")
	}
}

func TestRunGrid(t *testing.T) {
	res, err := RunGrid(Problem{Dim: 2, Eval: sphere}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 121 {
		t.Fatalf("evals = %d, want 121", res.Evals)
	}
	// Grid point (0.5, 0.5) exists for k=11, so the exact minimum is hit.
	if res.BestValue > 1e-12 {
		t.Fatalf("grid should hit exact center, got %v", res.BestValue)
	}
	if _, err := RunGrid(Problem{Dim: 2, Eval: sphere}, 1); err == nil {
		t.Fatal("k=1 should fail")
	}
	if _, err := RunGrid(Problem{Dim: 8, Eval: sphere}, 100); err == nil {
		t.Fatal("oversized grid should fail")
	}
}

func TestMapFloat(t *testing.T) {
	if got := MapFloat(0, 1, 30, false); got != 1 {
		t.Fatalf("MapFloat(0) = %v", got)
	}
	if got := MapFloat(1, 1, 30, false); got != 30 {
		t.Fatalf("MapFloat(1) = %v", got)
	}
	if got := MapFloat(0.5, 1, 30, false); got != 15.5 {
		t.Fatalf("MapFloat(0.5) = %v", got)
	}
	// Log scaling: midpoint of 1uF..10mF (4 decades) is 100uF.
	got := MapFloat(0.5, 1e-6, 10e-3, true)
	if math.Abs(got-1e-4) > 1e-9 {
		t.Fatalf("log midpoint = %v, want 1e-4", got)
	}
	// Clamping.
	if MapFloat(-1, 0, 10, false) != 0 || MapFloat(2, 0, 10, false) != 10 {
		t.Fatal("out-of-range u should clamp")
	}
}

func TestMapIntAndChoice(t *testing.T) {
	if MapInt(0, 1, 168) != 1 || MapInt(1, 1, 168) != 168 {
		t.Fatal("MapInt endpoints")
	}
	// Every value in range must be reachable and roughly uniform.
	counts := map[int]int{}
	for i := 0; i <= 1000; i++ {
		counts[MapInt(float64(i)/1000, 0, 4)]++
	}
	for v := 0; v <= 4; v++ {
		if counts[v] == 0 {
			t.Fatalf("value %d unreachable", v)
		}
	}
	if MapChoice(0.99, 3) != 2 || MapChoice(0, 3) != 0 {
		t.Fatal("MapChoice endpoints")
	}
	if MapInt(0.5, 5, 5) != 5 {
		t.Fatal("degenerate range")
	}
}

func TestParetoFront(t *testing.T) {
	pts := []Point2{
		{X: 1, Y: 10, Tag: 0},
		{X: 2, Y: 5, Tag: 1},
		{X: 3, Y: 6, Tag: 2}, // dominated by (2,5)
		{X: 4, Y: 1, Tag: 3},
		{X: 4, Y: 2, Tag: 4}, // dominated by (4,1)
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	wantTags := []int{0, 1, 3}
	for i, p := range front {
		if p.Tag != wantTags[i] {
			t.Fatalf("front tags = %v, want %v", front, wantTags)
		}
	}
	if ParetoFront(nil) != nil {
		t.Fatal("empty input should give nil front")
	}
}

func TestParetoFrontInvariant(t *testing.T) {
	// Property: no front member dominates another front member.
	f := func(raw []uint16) bool {
		var pts []Point2
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point2{X: float64(raw[i] % 100), Y: float64(raw[i+1] % 100), Tag: i})
		}
		front := ParetoFront(pts)
		for i := range front {
			for j := range front {
				if i != j && Dominates(front[i], front[j]) {
					return false
				}
			}
		}
		// Every original point is dominated-or-equal by some front member.
		for _, p := range pts {
			ok := false
			for _, f := range front {
				if f == p || Dominates(f, p) || (f.X == p.X && f.Y == p.Y) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDominates(t *testing.T) {
	a := Point2{X: 1, Y: 1}
	b := Point2{X: 2, Y: 2}
	if !Dominates(a, b) || Dominates(b, a) {
		t.Fatal("basic domination")
	}
	if Dominates(a, a) {
		t.Fatal("a point does not dominate itself")
	}
}
