package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BiProblem is a bi-objective minimization problem over [0,1]^Dim —
// the latency-vs-panel-size tradeoff of the paper's Figure 6.
type BiProblem struct {
	Dim int
	// Eval returns the two objective values (both minimized). Either
	// may be +Inf for infeasible points.
	Eval func(genome []float64) (f1, f2 float64)
	// EvalCtx, when non-nil, is used instead of Eval and receives the
	// evaluation's EvalContext (see Problem.EvalCtx): the global ordinal
	// and the worker slot, for objectives with per-worker state.
	EvalCtx func(ec EvalContext, genome []float64) (f1, f2 float64)
}

// Validate checks the problem definition.
func (p BiProblem) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("search: dimension must be positive, got %d", p.Dim)
	}
	if p.Eval == nil && p.EvalCtx == nil {
		return fmt.Errorf("search: Eval must not be nil")
	}
	return nil
}

// evalFn returns the unified evaluation function, preferring EvalCtx.
func (p BiProblem) evalFn() func(ec EvalContext, genome []float64) (float64, float64) {
	if p.EvalCtx != nil {
		return p.EvalCtx
	}
	eval := p.Eval
	return func(_ EvalContext, genome []float64) (float64, float64) { return eval(genome) }
}

// nsgaIndividual carries a genome, its objectives, and NSGA-II bookkeeping.
type nsgaIndividual struct {
	genome   []float64
	f1, f2   float64
	rank     int
	crowding float64
}

func (a nsgaIndividual) dominates(b nsgaIndividual) bool {
	return a.f1 <= b.f1 && a.f2 <= b.f2 && (a.f1 < b.f1 || a.f2 < b.f2)
}

// FrontPoint is a member of the final non-dominated front.
type FrontPoint struct {
	Genome []float64
	F1, F2 float64
}

// NSGAStats is the run-level telemetry of an NSGA-II run. History is
// the per-generation dominated-hypervolume series (the bi-objective
// analogue of Result.History), parallel to Quality.
type NSGAStats struct {
	Evals   int
	History []float64
	Quality QualityHistory
	// StoppedEarly reports that the plateau policy (GAConfig.Patience,
	// applied to relative hypervolume improvement) ended the run before
	// the configured generation count.
	StoppedEarly bool
}

// RunNSGA2 runs a compact NSGA-II: non-dominated sorting, crowding
// distance, binary tournament on (rank, crowding), uniform crossover
// and Gaussian mutation. It returns the final population's first
// (non-dominated) front sorted by F1, plus per-generation telemetry.
//
// The hypervolume indicator uses cfg.HVRef when set; otherwise the
// reference point freezes at 1.1× the finite objective maxima of the
// first generation with a feasible member (deterministic: the early
// population depends only on the seed). cfg.Stop is polled once per
// generation; cfg.Progress and cfg.OnQuality fire per generation with
// the scalarized (f1·f2) population best and the quality record.
func RunNSGA2(p BiProblem, cfg GAConfig) ([]FrontPoint, NSGAStats, error) {
	var stats NSGAStats
	if err := p.Validate(); err != nil {
		return nil, stats, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, stats, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eval := p.evalFn()
	// Genome generation stays sequential and seeded; only objective
	// evaluations fan out across cfg.Workers, per batch, so the search
	// trajectory is identical for any worker count (the same contract as
	// RunGA).
	evalBatch := func(batch []nsgaIndividual) {
		base := stats.Evals
		forEachIndex(len(batch), cfg.Workers, cfg.Labels, func(worker, i int) {
			batch[i].f1, batch[i].f2 = eval(EvalContext{Index: base + i, Worker: worker}, batch[i].genome)
		})
		stats.Evals += len(batch)
	}

	pop := make([]nsgaIndividual, cfg.Population)
	for i := range pop {
		pop[i] = nsgaIndividual{genome: randomGenome(rng, p.Dim)}
	}
	evalBatch(pop)
	rankAndCrowd(pop)

	ref := cfg.HVRef
	values := make([]float64, cfg.Population)
	genomes := make([][]float64, cfg.Population)
	stopper := newPlateau(cfg.Patience, cfg.PlateauTol)

	for gen := 0; gen < cfg.Generations; gen++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		// Offspring.
		children := make([]nsgaIndividual, 0, cfg.Population)
		for len(children) < cfg.Population {
			a := nsgaTournament(rng, pop)
			b := nsgaTournament(rng, pop)
			child := crossover(rng, a.genome, b.genome)
			mutate(rng, child, cfg.MutRate, cfg.MutSigma)
			children = append(children, nsgaIndividual{genome: child})
		}
		evalBatch(children)
		// Environmental selection over parents ∪ children.
		union := append(pop, children...)
		rankAndCrowd(union)
		sort.SliceStable(union, func(i, j int) bool {
			if union[i].rank != union[j].rank {
				return union[i].rank < union[j].rank
			}
			return union[i].crowding > union[j].crowding
		})
		pop = append([]nsgaIndividual(nil), union[:cfg.Population]...)

		// Per-generation telemetry: scalar statistics over the f1·f2
		// product, front-quality indicators over the selected rank-0
		// members, plateau bookkeeping on the hypervolume series.
		if ref == ([2]float64{}) {
			ref = freezeHVRef(pop)
		}
		for i, ind := range pop {
			values[i] = scalarObjective(ind.f1, ind.f2)
			genomes[i] = ind.genome
		}
		q := scalarQuality(gen+1, stats.Evals, values, genomes)
		front := selectedFront(pop)
		q.FrontSize = len(front)
		q.Spacing = Spacing(front)
		if ref != ([2]float64{}) {
			q.Hypervolume = Hypervolume2(front, ref[0], ref[1])
		}
		var stop bool
		q.Stagnation, stop = stopper.observe(-q.Hypervolume)
		stats.History = append(stats.History, q.Hypervolume)
		stats.Quality = append(stats.Quality, q)
		if cfg.Progress != nil {
			cfg.Progress(gen+1, stats.Evals, q.Best)
		}
		if cfg.OnQuality != nil {
			cfg.OnQuality(q)
		}
		if stop {
			stats.StoppedEarly = true
			break
		}
	}

	rankAndCrowd(pop)
	var front []FrontPoint
	for _, ind := range pop {
		if ind.rank == 0 && !math.IsInf(ind.f1, 1) && !math.IsInf(ind.f2, 1) {
			front = append(front, FrontPoint{
				Genome: append([]float64(nil), ind.genome...),
				F1:     ind.f1, F2: ind.f2,
			})
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].F1 < front[j].F1 })
	// Drop duplicates that crowd the same point.
	front = dedupeFront(front)
	return front, stats, nil
}

// scalarObjective collapses a bi-objective sample to the domain's
// space-time product (panel·latency); infeasible in either coordinate
// is infeasible overall.
func scalarObjective(f1, f2 float64) float64 {
	if math.IsInf(f1, 1) || math.IsInf(f2, 1) || math.IsNaN(f1) || math.IsNaN(f2) {
		return math.Inf(1)
	}
	return f1 * f2
}

// selectedFront extracts the finite rank-0 members of the current
// population as a deduplicated, F1-sorted front (ranks are valid from
// the preceding rankAndCrowd over the selection union).
func selectedFront(pop []nsgaIndividual) []FrontPoint {
	var front []FrontPoint
	for _, ind := range pop {
		if ind.rank == 0 && !math.IsInf(ind.f1, 1) && !math.IsInf(ind.f2, 1) {
			front = append(front, FrontPoint{F1: ind.f1, F2: ind.f2})
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].F1 != front[j].F1 {
			return front[i].F1 < front[j].F1
		}
		return front[i].F2 < front[j].F2
	})
	return dedupeFront(front)
}

// freezeHVRef derives the run's fixed hypervolume reference from the
// first population holding a feasible member: 1.1× the finite
// objective maxima (plus a tiny absolute pad so zero-valued objectives
// still dominate area). Returns the zero value while no member is
// feasible.
func freezeHVRef(pop []nsgaIndividual) [2]float64 {
	m1, m2 := math.Inf(-1), math.Inf(-1)
	any := false
	for _, ind := range pop {
		if math.IsInf(ind.f1, 1) || math.IsInf(ind.f2, 1) || math.IsNaN(ind.f1) || math.IsNaN(ind.f2) {
			continue
		}
		any = true
		if ind.f1 > m1 {
			m1 = ind.f1
		}
		if ind.f2 > m2 {
			m2 = ind.f2
		}
	}
	if !any {
		return [2]float64{}
	}
	pad := func(m float64) float64 { return m + 0.1*math.Abs(m) + 1e-9 }
	return [2]float64{pad(m1), pad(m2)}
}

// rankAndCrowd assigns Pareto ranks (0 = non-dominated) and crowding
// distances in place.
func rankAndCrowd(pop []nsgaIndividual) {
	n := len(pop)
	dominatedBy := make([]int, n)
	dominatesList := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if pop[i].dominates(pop[j]) {
				dominatesList[i] = append(dominatesList[i], j)
			} else if pop[j].dominates(pop[i]) {
				dominatedBy[i]++
			}
		}
	}
	// Peel fronts.
	var current []int
	for i := 0; i < n; i++ {
		pop[i].rank = -1
		if dominatedBy[i] == 0 {
			pop[i].rank = 0
			current = append(current, i)
		}
	}
	for rank := 0; len(current) > 0; rank++ {
		var next []int
		for _, i := range current {
			for _, j := range dominatesList[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		crowd(pop, current)
		current = next
	}
}

// crowd computes crowding distance within one front (given by indices).
func crowd(pop []nsgaIndividual, front []int) {
	if len(front) == 0 {
		return
	}
	for _, i := range front {
		pop[i].crowding = 0
	}
	for _, objective := range []func(nsgaIndividual) float64{
		func(x nsgaIndividual) float64 { return x.f1 },
		func(x nsgaIndividual) float64 { return x.f2 },
	} {
		idx := append([]int(nil), front...)
		sort.Slice(idx, func(a, b int) bool { return objective(pop[idx[a]]) < objective(pop[idx[b]]) })
		lo, hi := objective(pop[idx[0]]), objective(pop[idx[len(idx)-1]])
		pop[idx[0]].crowding = math.Inf(1)
		pop[idx[len(idx)-1]].crowding = math.Inf(1)
		if span := hi - lo; span > 0 && !math.IsInf(span, 1) {
			for k := 1; k < len(idx)-1; k++ {
				gap := objective(pop[idx[k+1]]) - objective(pop[idx[k-1]])
				pop[idx[k]].crowding += gap / span
			}
		}
	}
}

// nsgaTournament selects by (rank, crowding) between two random members.
func nsgaTournament(rng *rand.Rand, pop []nsgaIndividual) nsgaIndividual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if a.rank != b.rank {
		if a.rank < b.rank {
			return a
		}
		return b
	}
	if a.crowding >= b.crowding {
		return a
	}
	return b
}

// dedupeFront removes near-identical consecutive points.
func dedupeFront(front []FrontPoint) []FrontPoint {
	if len(front) < 2 {
		return front
	}
	out := front[:1]
	for _, p := range front[1:] {
		last := out[len(out)-1]
		if math.Abs(p.F1-last.F1) < 1e-12 && math.Abs(p.F2-last.F2) < 1e-12 {
			continue
		}
		out = append(out, p)
	}
	return out
}
