package search

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerGoroutineLabels asserts that evaluation workers adopt the
// pprof labels from GAConfig.Labels, so CPU and goroutine profiles
// attribute search work to the owning job. The objective blocks its
// workers while the test snapshots the goroutine profile (debug=1
// prints each goroutine's labels) and looks for the job label.
func TestWorkerGoroutineLabels(t *testing.T) {
	labels := pprof.WithLabels(context.Background(),
		pprof.Labels("job", "j-labels-test", "phase", "search"))

	var started atomic.Int64
	release := make(chan struct{})
	p := Problem{
		Dim: 2,
		EvalCtx: func(ec EvalContext, g []float64) float64 {
			if started.Add(1) <= 4 {
				<-release // hold the first batch so the profile sees the workers
			}
			return g[0] + g[1]
		},
	}

	cfg := DefaultGA(11)
	cfg.Population = 8
	cfg.Generations = 1
	cfg.Workers = 4
	cfg.Labels = labels

	done := make(chan error, 1)
	go func() {
		_, err := RunGA(p, cfg)
		done <- err
	}()

	// Wait until at least one worker is inside the objective.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if started.Load() < 2 {
		close(release)
		t.Fatal("workers never started evaluating")
	}

	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		close(release)
		t.Fatalf("goroutine profile: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("RunGA: %v", err)
	}

	prof := buf.String()
	if !strings.Contains(prof, `"job":"j-labels-test"`) || !strings.Contains(prof, `"phase":"search"`) {
		t.Fatalf("goroutine profile missing worker labels; profile:\n%s", prof)
	}
}
