package search

import (
	"math"
	"testing"
)

// schaffer is the classic bi-objective test problem: f1 = x², f2 =
// (x−2)² over x ∈ [−A, A]; the true Pareto set is x ∈ [0, 2] with
// front f2 = (√f1 − 2)².
func schaffer(g []float64) (float64, float64) {
	x := g[0]*8 - 4
	return x * x, (x - 2) * (x - 2)
}

func nsgaCfg(seed int64) GAConfig {
	cfg := DefaultGA(seed)
	cfg.Population = 40
	cfg.Generations = 40
	return cfg
}

func TestNSGA2Validation(t *testing.T) {
	if _, _, err := RunNSGA2(BiProblem{Dim: 0, Eval: schaffer}, nsgaCfg(1)); err == nil {
		t.Error("zero dim should fail")
	}
	if _, _, err := RunNSGA2(BiProblem{Dim: 1}, nsgaCfg(1)); err == nil {
		t.Error("nil eval should fail")
	}
	bad := nsgaCfg(1)
	bad.Population = 1
	if _, _, err := RunNSGA2(BiProblem{Dim: 1, Eval: schaffer}, bad); err == nil {
		t.Error("bad GA config should fail")
	}
}

func TestNSGA2FindsSchafferFront(t *testing.T) {
	front, stats, err := RunNSGA2(BiProblem{Dim: 1, Eval: schaffer}, nsgaCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 10 {
		t.Fatalf("front has only %d points", len(front))
	}
	if stats.Evals < 40*40 {
		t.Fatalf("evals = %d", stats.Evals)
	}
	if len(stats.Quality) != 40 || len(stats.History) != 40 {
		t.Fatalf("telemetry lengths = %d/%d, want 40", len(stats.Quality), len(stats.History))
	}
	for i, q := range stats.Quality {
		if q.Gen != i+1 || q.FrontSize < 1 || q.Hypervolume <= 0 {
			t.Fatalf("generation %d quality malformed: %+v", i+1, q)
		}
		if q.Hypervolume != stats.History[i] {
			t.Fatalf("history[%d] diverges from quality record", i)
		}
	}
	// Front must be sorted by F1 with F2 strictly decreasing
	// (non-dominated), and close to the analytic front.
	for i, p := range front {
		if i > 0 {
			if p.F1 < front[i-1].F1 {
				t.Fatal("front not sorted by F1")
			}
			if p.F2 >= front[i-1].F2 {
				t.Fatalf("front point %d dominated: %+v after %+v", i, p, front[i-1])
			}
		}
		want := (math.Sqrt(p.F1) - 2) * (math.Sqrt(p.F1) - 2)
		if math.Abs(p.F2-want) > 0.3 {
			t.Fatalf("point %d off the analytic front: f1=%.3f f2=%.3f want f2≈%.3f",
				i, p.F1, p.F2, want)
		}
	}
	// Endpoints should approach the extremes (0,4) and (4,0).
	if front[0].F1 > 0.3 || front[len(front)-1].F2 > 0.3 {
		t.Fatalf("front endpoints not reached: %+v .. %+v", front[0], front[len(front)-1])
	}
}

func TestNSGA2Deterministic(t *testing.T) {
	a, _, err := RunNSGA2(BiProblem{Dim: 1, Eval: schaffer}, nsgaCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunNSGA2(BiProblem{Dim: 1, Eval: schaffer}, nsgaCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("front sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].F1 != b[i].F1 || a[i].F2 != b[i].F2 {
			t.Fatal("same seed must reproduce the same front")
		}
	}
}

func TestNSGA2HandlesInfeasibleRegions(t *testing.T) {
	// Half the space is infeasible; the front must still emerge from
	// the feasible half.
	eval := func(g []float64) (float64, float64) {
		if g[0] < 0.5 {
			return math.Inf(1), math.Inf(1)
		}
		return schaffer([]float64{(g[0] - 0.5) * 2})
	}
	front, _, err := RunNSGA2(BiProblem{Dim: 1, Eval: eval}, nsgaCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("no feasible front found")
	}
	for _, p := range front {
		if math.IsInf(p.F1, 1) || math.IsInf(p.F2, 1) {
			t.Fatal("infeasible point leaked into the front")
		}
	}
}

func TestNSGA2BeatsRandomScanHypervolume(t *testing.T) {
	// At equal evaluation budgets the NSGA-II front should dominate at
	// least as much objective space as a random scan's front.
	front, stats, err := RunNSGA2(BiProblem{Dim: 1, Eval: schaffer}, nsgaCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	evals := stats.Evals
	// Random scan with the same budget.
	rngPts := make([]Point2, 0, evals)
	probe := Problem{Dim: 1, Eval: func(g []float64) float64 {
		f1, f2 := schaffer(g)
		rngPts = append(rngPts, Point2{X: f1, Y: f2})
		return f1 + f2
	}}
	if _, err := RunRandom(probe, evals, 9, false); err != nil {
		t.Fatal(err)
	}
	rndFront := ParetoFront(rngPts)

	ref := 20.0 // reference point beyond both fronts
	hvNSGA := Hypervolume2(front, ref, ref)
	var rnd []FrontPoint
	for _, p := range rndFront {
		rnd = append(rnd, FrontPoint{F1: p.X, F2: p.Y})
	}
	hvRnd := Hypervolume2(rnd, ref, ref)
	if hvNSGA < hvRnd*0.95 {
		t.Fatalf("NSGA-II hypervolume %.3f worse than random %.3f", hvNSGA, hvRnd)
	}
}
