package search

import (
	"math"
	"reflect"
	"testing"
)

func fp(pairs ...float64) []FrontPoint {
	front := make([]FrontPoint, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		front = append(front, FrontPoint{F1: pairs[i], F2: pairs[i+1]})
	}
	return front
}

// TestHypervolume2Goldens pins the promoted hypervolume on clean and
// degenerate fronts (the same shapes TestParetoFrontDuplicatesAndDegenerates
// exercises for ParetoFront: duplicates, collinear ties, singletons).
func TestHypervolume2Goldens(t *testing.T) {
	cases := []struct {
		name       string
		front      []FrontPoint
		refX, refY float64
		want       float64
	}{
		{"empty", nil, 10, 10, 0},
		{"single point", fp(7, 7), 10, 10, 9},
		{"staircase", fp(1, 10, 2, 5, 4, 1), 12, 12, 11*2 + 10*5 + 8*4},
		// Exact duplicates contribute once.
		{"duplicates", fp(1, 1, 1, 1, 1, 1), 10, 10, 81},
		{"duplicated staircase", fp(1, 10, 1, 10, 2, 5, 2, 5, 4, 1, 4, 1), 12, 12, 11*2 + 10*5 + 8*4},
		// Collinear ties along one axis: only the best member counts.
		{"same F1", fp(2, 9, 2, 3, 2, 5), 10, 10, 8 * 7},
		{"same F2", fp(4, 2, 1, 2, 3, 2), 10, 10, 9 * 8},
		// Dominated members contribute nothing regardless of order.
		{"dominated member", fp(3, 20, 1, 10, 2, 5, 4, 1), 12, 12, 11*2 + 10*5 + 8*4},
		// Points at or beyond the reference in either axis are skipped
		// entirely — dominated area outside the box is not counted.
		{"beyond reference", fp(11, 1, 1, 11, 5, 5), 10, 10, 25},
		{"on reference", fp(10, 1, 1, 10), 10, 10, 0},
	}
	for _, tc := range cases {
		if got := Hypervolume2(tc.front, tc.refX, tc.refY); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: Hypervolume2 = %g, want %g", tc.name, got, tc.want)
		}
	}
	// Input order must not matter.
	a := fp(1, 10, 2, 5, 4, 1, 3, 20)
	b := fp(3, 20, 4, 1, 2, 5, 1, 10)
	if Hypervolume2(a, 12, 12) != Hypervolume2(b, 12, 12) {
		t.Error("hypervolume depends on input order")
	}
}

func TestSpacing(t *testing.T) {
	if got := Spacing(fp(1, 1)); got != 0 {
		t.Errorf("singleton spacing = %g, want 0", got)
	}
	if got := Spacing(fp(1, 1, 2, 2)); got != 0 {
		t.Errorf("two-point spacing = %g, want 0", got)
	}
	// Perfectly even staircase: zero deviation.
	if got := Spacing(fp(0, 4, 1, 3, 2, 2, 3, 1)); math.Abs(got) > 1e-12 {
		t.Errorf("even front spacing = %g, want 0", got)
	}
	// Uneven gaps (1 and 3 along F1): sd of {1,3} = 1.
	if got := Spacing(fp(0, 0, 1, 0, 4, 0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("uneven front spacing = %g, want 1", got)
	}
}

func TestScalarQuality(t *testing.T) {
	inf := math.Inf(1)
	genomes := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	q := scalarQuality(3, 120, []float64{4, 1, inf, 3}, genomes)
	if q.Gen != 3 || q.Evals != 120 {
		t.Fatalf("bookkeeping fields wrong: %+v", q)
	}
	if q.Feasible != 3 || q.Best != 1 || q.Spread != 3 || q.Median != 3 {
		t.Fatalf("objective stats wrong: %+v", q)
	}
	if math.Abs(q.Mean-8.0/3) > 1e-12 {
		t.Fatalf("mean = %g", q.Mean)
	}
	// Unit square corners: every corner is √2/2 from the centroid.
	if math.Abs(q.Diversity-math.Sqrt2/2) > 1e-12 {
		t.Fatalf("diversity = %g, want %g", q.Diversity, math.Sqrt2/2)
	}

	// All-infeasible generation: summary pins to +Inf, Feasible 0.
	q = scalarQuality(1, 10, []float64{inf, inf}, genomes[:2])
	if q.Feasible != 0 || !math.IsInf(q.Best, 1) || !math.IsInf(q.Mean, 1) {
		t.Fatalf("infeasible generation stats wrong: %+v", q)
	}
	s := q.SanitizeJSON()
	if s.Best != 0 || s.Mean != 0 || s.Feasible != 0 {
		t.Fatalf("sanitizeJSON left non-finite fields: %+v", s)
	}
}

func TestPlateauObserve(t *testing.T) {
	// Patience 2, 1% tolerance: two sub-tolerance generations stop.
	p := newPlateau(2, 0.01)
	steps := []struct {
		score    float64
		stagnant int
		stop     bool
	}{
		{100, 0, false},  // first feasible score = progress
		{90, 0, false},   // 10% better
		{89.9, 1, false}, // 0.1% — stagnant
		{89.8, 2, true},  // cumulative drift still < 1% of 90 — stop
	}
	for i, s := range steps {
		stag, stop := p.observe(s.score)
		if stag != s.stagnant || stop != s.stop {
			t.Fatalf("step %d: got (%d, %v), want (%d, %v)", i, stag, stop, s.stagnant, s.stop)
		}
	}

	// Slow drift that accumulates past the tolerance resets the counter.
	p = newPlateau(3, 0.01)
	p.observe(100)
	p.observe(99.6) // 0.4% — stagnant (1)
	if stag, _ := p.observe(98.9); stag != 0 {
		t.Fatalf("cumulative 1.1%% improvement should reset, got stagnation %d", stag)
	}

	// Infinite scores are never progress; first feasible one is.
	p = newPlateau(2, 0)
	inf := math.Inf(1)
	if stag, stop := p.observe(inf); stag != 1 || stop {
		t.Fatalf("inf start: (%d, %v)", stag, stop)
	}
	if stag, stop := p.observe(inf); stag != 2 || !stop {
		t.Fatalf("inf plateau should stop: (%d, %v)", stag, stop)
	}
	p = newPlateau(0, 0)
	for i := 0; i < 5; i++ {
		if _, stop := p.observe(inf); stop {
			t.Fatal("patience 0 must never stop")
		}
	}
}

// TestRunGAQualityAndPatience checks the GA-side telemetry contract:
// Quality parallels History, and Patience stops a stalled run early at
// a deterministic generation.
func TestRunGAQualityAndPatience(t *testing.T) {
	sphere := Problem{Dim: 3, Eval: func(g []float64) float64 {
		s := 0.0
		for _, v := range g {
			s += (v - 0.4) * (v - 0.4)
		}
		return s
	}}
	cfg := DefaultGA(5)
	cfg.Population = 16
	cfg.Generations = 60
	full, err := RunGA(sphere, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Quality) != len(full.History) {
		t.Fatalf("quality length %d != history length %d", len(full.Quality), len(full.History))
	}
	for i, q := range full.Quality {
		if q.Gen != i+1 || q.Best != full.History[i] || q.Feasible != cfg.Population {
			t.Fatalf("generation %d quality malformed: %+v", i+1, q)
		}
		if q.Mean < q.Best || q.Spread < 0 || q.Diversity < 0 {
			t.Fatalf("generation %d stats inconsistent: %+v", i+1, q)
		}
	}
	if full.StoppedEarly {
		t.Fatal("patience disabled must not stop early")
	}

	cfg.Patience = 4
	var seen []GenQuality
	cfg.OnQuality = func(q GenQuality) { seen = append(seen, q) }
	early, err := RunGA(sphere, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !early.StoppedEarly || len(early.History) >= len(full.History) {
		t.Fatalf("patience should stop early: stopped=%v after %d generations",
			early.StoppedEarly, len(early.History))
	}
	if last := early.Quality[len(early.Quality)-1]; last.Stagnation < cfg.Patience {
		t.Fatalf("final stagnation %d < patience %d", last.Stagnation, cfg.Patience)
	}
	if !reflect.DeepEqual(seen, []GenQuality(early.Quality)) {
		t.Fatal("OnQuality stream diverges from Result.Quality")
	}
	// The truncated run is a prefix of the full run — early stop must
	// not perturb the trajectory it did run.
	if !reflect.DeepEqual(early.History, full.History[:len(early.History)]) {
		t.Fatal("early-stopped history is not a prefix of the full run")
	}
}

// TestNSGA2PatienceStopsOnHypervolumePlateau checks the bi-objective
// plateau policy and its determinism across worker counts.
func TestNSGA2PatienceStopsOnHypervolumePlateau(t *testing.T) {
	cfg := nsgaCfg(11)
	cfg.Generations = 60
	cfg.Patience = 3
	run := func(workers int) ([]FrontPoint, NSGAStats) {
		c := cfg
		c.Workers = workers
		front, stats, err := RunNSGA2(BiProblem{Dim: 1, Eval: schaffer}, c)
		if err != nil {
			t.Fatal(err)
		}
		return front, stats
	}
	front1, stats1 := run(1)
	front8, stats8 := run(8)
	if !stats1.StoppedEarly || len(stats1.History) >= 60 {
		t.Fatalf("schaffer run should plateau before 60 generations, ran %d", len(stats1.History))
	}
	if !reflect.DeepEqual(stats1, stats8) {
		t.Fatal("NSGA stats differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(front1, front8) {
		t.Fatal("NSGA fronts differ between 1 and 8 workers")
	}
}
