package search

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachIndexCoversAllIndices checks the chunked dispatcher visits
// every index exactly once for a grid of sizes and worker counts,
// including workers > n and the serial fast path.
func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 257} {
		for _, workers := range []int{1, 2, 4, 8, 300} {
			var visits sync.Map
			forEachIndex(n, workers, nil, func(worker, i int) {
				if c, loaded := visits.LoadOrStore(i, 1); loaded {
					visits.Store(i, c.(int)+1)
				}
			})
			count := 0
			visits.Range(func(k, v any) bool {
				i, c := k.(int), v.(int)
				if i < 0 || i >= n {
					t.Errorf("n=%d workers=%d: visited out-of-range index %d", n, workers, i)
				}
				if c != 1 {
					t.Errorf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
				count++
				return true
			})
			if count != n {
				t.Errorf("n=%d workers=%d: visited %d distinct indices", n, workers, count)
			}
		}
	}
}

// TestForEachIndexWorkerSlots checks worker slot numbers stay below the
// effective worker count, so per-worker state arrays can be sized to it.
func TestForEachIndexWorkerSlots(t *testing.T) {
	const n, workers = 100, 4
	var maxWorker atomic.Int64
	forEachIndex(n, workers, nil, func(worker, i int) {
		for {
			cur := maxWorker.Load()
			if int64(worker) <= cur || maxWorker.CompareAndSwap(cur, int64(worker)) {
				return
			}
		}
	})
	if mw := maxWorker.Load(); mw >= workers {
		t.Errorf("worker slot %d >= workers %d", mw, workers)
	}
}

// TestEvalContextIndexDeterministic checks the Index each evaluation
// receives is the same for any worker count: it is assigned at
// (sequential) generation time, not completion time.
func TestEvalContextIndexDeterministic(t *testing.T) {
	collect := func(workers int) map[string]int {
		got := make(map[string]int)
		var mu sync.Mutex
		p := Problem{
			Dim: 2,
			EvalCtx: func(ec EvalContext, g []float64) float64 {
				key := string(rune('a'+int(g[0]*26))) + string(rune('a'+int(g[1]*26)))
				mu.Lock()
				if _, dup := got[key]; !dup {
					got[key] = ec.Index
				}
				mu.Unlock()
				return g[0] + g[1]
			},
		}
		cfg := DefaultGA(7)
		cfg.Population = 12
		cfg.Generations = 4
		cfg.Workers = workers
		if _, err := RunGA(p, cfg); err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := collect(1)
	parallel := collect(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("evaluation indices differ between Workers=1 and Workers=8")
	}
}

// TestRunGAWorkersBitIdentical checks the whole GA Result — best, value,
// history, visited set — is identical for serial and parallel runs.
func TestRunGAWorkersBitIdentical(t *testing.T) {
	sphere := Problem{Dim: 3, Eval: func(g []float64) float64 {
		s := 0.0
		for _, v := range g {
			s += (v - 0.5) * (v - 0.5)
		}
		return s
	}}
	run := func(workers int) Result {
		cfg := DefaultGA(42)
		cfg.Population = 16
		cfg.Generations = 8
		cfg.Workers = workers
		res, err := RunGA(sphere, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(serial, got) {
			t.Errorf("Workers=%d Result differs from serial", w)
		}
	}
}

// TestRunRandomWorkersBitIdentical checks the parallel random sampler
// reproduces the serial trajectory (History order included).
func TestRunRandomWorkersBitIdentical(t *testing.T) {
	p := Problem{Dim: 2, Eval: func(g []float64) float64 { return math.Abs(g[0]-0.3) + math.Abs(g[1]-0.7) }}
	serial, err := RunRandomWorkers(p, 200, 5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunRandomWorkers(p, 200, 5, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("RunRandomWorkers results differ between 1 and 8 workers")
	}
}

// TestRunNSGA2WorkersBitIdentical checks the bi-objective front is
// identical for serial and parallel evaluation.
func TestRunNSGA2WorkersBitIdentical(t *testing.T) {
	p := BiProblem{Dim: 2, Eval: func(g []float64) (float64, float64) {
		return g[0], 1 - math.Sqrt(g[0])*g[1]
	}}
	run := func(workers int) []FrontPoint {
		cfg := DefaultGA(3)
		cfg.Population = 20
		cfg.Generations = 6
		cfg.Workers = workers
		front, _, err := RunNSGA2(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return front
	}
	if serial, parallel := run(1), run(8); !reflect.DeepEqual(serial, parallel) {
		t.Error("NSGA-II fronts differ between 1 and 8 workers")
	}
}

// channelDispatch is the dispatcher forEachIndex replaced: one
// unbuffered channel send per index. Kept here as the benchmark
// baseline so the win stays measured.
func channelDispatch(n, workers int, fn func(worker, i int)) {
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				fn(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// busyEval is a stand-in for a cheap candidate evaluation: enough work
// that the dispatch overhead is visible but not dominant.
func busyEval(i int) float64 {
	s := float64(i)
	for k := 0; k < 200; k++ {
		s += math.Sqrt(s + float64(k))
	}
	return s
}

// BenchmarkBatchDispatch compares the chunked atomic-counter dispatcher
// against the channel-per-index baseline it replaced, at the batch
// shape the GA actually runs (population-sized batches).
func BenchmarkBatchDispatch(b *testing.B) {
	const n, workers = 64, 4
	sink := make([]float64, n)
	b.Run("chunked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			forEachIndex(n, workers, nil, func(_, i int) { sink[i] = busyEval(i) })
		}
	})
	b.Run("channel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			channelDispatch(n, workers, func(_, i int) { sink[i] = busyEval(i) })
		}
	})
}
