package search

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4})
	if s.Runs != 4 || s.Feasible != 4 {
		t.Fatalf("runs/feasible = %d/%d", s.Runs, s.Feasible)
	}
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
	// Sample std of {1,2,3,4} = sqrt(5/3).
	if math.Abs(s.Std-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if !strings.Contains(s.String(), "mean 2.5") {
		t.Fatalf("string = %q", s.String())
	}
}

func TestSummarizeWithInfeasible(t *testing.T) {
	s := Summarize([]float64{2, math.Inf(1), 4, math.NaN()})
	if s.Runs != 4 || s.Feasible != 2 {
		t.Fatalf("runs/feasible = %d/%d", s.Runs, s.Feasible)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestSummarizeAllInfeasible(t *testing.T) {
	s := Summarize([]float64{math.Inf(1), math.Inf(1)})
	if s.Feasible != 0 || !math.IsInf(s.Mean, 1) {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "infeasible in all") {
		t.Fatalf("string = %q", s.String())
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.Median != 3 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestRunRepeatedGA(t *testing.T) {
	p := Problem{Dim: 3, Eval: sphere}
	cfg := DefaultGA(1)
	cfg.Population = 10
	cfg.Generations = 8
	stats, best, err := RunRepeatedGA(p, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 5 || stats.Feasible != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	if best.BestValue != stats.Min {
		t.Fatalf("best %v should equal stats min %v", best.BestValue, stats.Min)
	}
	if stats.Std < 0 {
		t.Fatal("negative std")
	}
	if _, _, err := RunRepeatedGA(p, cfg, 0); err == nil {
		t.Fatal("zero repetitions should fail")
	}
}

func TestParallelGADeterministic(t *testing.T) {
	p := Problem{Dim: 4, Eval: sphere}
	serial := DefaultGA(11)
	parallel := DefaultGA(11)
	parallel.Workers = 4
	a, err := RunGA(p, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGA(p, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if a.BestValue != b.BestValue {
		t.Fatalf("parallel evaluation changed the trajectory: %v vs %v", a.BestValue, b.BestValue)
	}
	if a.Evals != b.Evals {
		t.Fatalf("eval counts differ: %d vs %d", a.Evals, b.Evals)
	}
}
