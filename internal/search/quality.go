package search

import (
	"math"
	"sort"
)

// This file is the search observatory: per-generation population
// statistics, Pareto front-quality indicators, and the plateau detector
// behind GAConfig.Patience. Everything here is O(population·dim) per
// generation (and O(front·log front) for the front indicators), cheap
// enough to stay default-on next to objective evaluations that each run
// a full energy/latency model.

// GenQuality is one generation's population statistics. The scalar
// fields describe the objective values of the post-selection population
// (for NSGA-II runs, the f1·f2 product — the domain's lat·sp-style
// scalarization); the front fields are filled for Pareto runs only.
type GenQuality struct {
	// Gen is the 1-based generation index; Evals the cumulative
	// objective-evaluation count when the generation closed.
	Gen   int `json:"gen"`
	Evals int `json:"evals"`
	// Best/Mean/Median/Spread summarize the finite objective values of
	// the population (Spread is max−min). Feasible counts them; when it
	// is zero the summary fields are +Inf (JSON "+Inf"-unsafe values are
	// sanitized by sanitizeJSON before they reach a wire format).
	Best     float64 `json:"best"`
	Mean     float64 `json:"mean"`
	Median   float64 `json:"median"`
	Spread   float64 `json:"spread"`
	Feasible int     `json:"feasible"`
	// Diversity is the mean Euclidean distance of the population's
	// genomes to their centroid — a collapse indicator computed in
	// O(population·dim), not O(population²).
	Diversity float64 `json:"diversity"`
	// Stagnation counts the consecutive generations, up to and including
	// this one, whose relative improvement stayed below the plateau
	// tolerance. The run stops early once it reaches GAConfig.Patience.
	Stagnation int `json:"stagnation"`
	// Hypervolume, FrontSize and Spacing are the front-quality
	// indicators of bi-objective (NSGA-II) runs: the 2-D dominated
	// hypervolume of the rank-0 front against the run's fixed reference
	// point, the number of distinct finite front members, and Schott's
	// spacing metric (0 for fronts smaller than 3 points).
	Hypervolume float64 `json:"hypervolume,omitempty"`
	FrontSize   int     `json:"front_size,omitempty"`
	Spacing     float64 `json:"spacing,omitempty"`
}

// QualityHistory is the per-generation quality series of one run,
// parallel to Result.History.
type QualityHistory []GenQuality

// SanitizeJSON maps non-finite summary fields to zero so the record
// survives encoding/json (which rejects IEEE infinities). Feasible==0
// still tells the reader the generation had no finite member.
func (q GenQuality) SanitizeJSON() GenQuality {
	fin := func(v float64) float64 {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0
		}
		return v
	}
	q.Best, q.Mean, q.Median, q.Spread = fin(q.Best), fin(q.Mean), fin(q.Median), fin(q.Spread)
	q.Diversity, q.Hypervolume, q.Spacing = fin(q.Diversity), fin(q.Hypervolume), fin(q.Spacing)
	return q
}

// SanitizeJSON returns the history with non-finite fields zeroed, for
// callers that serialize it (see GenQuality.SanitizeJSON).
func (h QualityHistory) SanitizeJSON() QualityHistory {
	if h == nil {
		return nil
	}
	out := make(QualityHistory, len(h))
	for i, q := range h {
		out[i] = q.SanitizeJSON()
	}
	return out
}

// scalarQuality summarizes one generation: objective statistics over
// values and genome diversity over genomes (both slices are population-
// parallel). Infinite values mark infeasible members; they count toward
// diversity (their genomes are real points) but not the objective
// summary.
func scalarQuality(gen, evals int, values []float64, genomes [][]float64) GenQuality {
	q := GenQuality{Gen: gen, Evals: evals}
	fin := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsInf(v, 0) && !math.IsNaN(v) {
			fin = append(fin, v)
		}
	}
	q.Feasible = len(fin)
	if len(fin) == 0 {
		inf := math.Inf(1)
		q.Best, q.Mean, q.Median, q.Spread = inf, inf, inf, 0
	} else {
		sort.Float64s(fin)
		q.Best = fin[0]
		q.Spread = fin[len(fin)-1] - fin[0]
		sum := 0.0
		for _, v := range fin {
			sum += v
		}
		q.Mean = sum / float64(len(fin))
		if n := len(fin); n%2 == 1 {
			q.Median = fin[n/2]
		} else {
			q.Median = (fin[n/2-1] + fin[n/2]) / 2
		}
	}
	q.Diversity = genomeDiversity(genomes)
	return q
}

// genomeDiversity is the mean Euclidean distance to the genome
// centroid: one pass for the centroid, one for the distances.
func genomeDiversity(genomes [][]float64) float64 {
	if len(genomes) == 0 || len(genomes[0]) == 0 {
		return 0
	}
	dim := len(genomes[0])
	centroid := make([]float64, dim)
	for _, g := range genomes {
		for d := 0; d < dim && d < len(g); d++ {
			centroid[d] += g[d]
		}
	}
	for d := range centroid {
		centroid[d] /= float64(len(genomes))
	}
	total := 0.0
	for _, g := range genomes {
		ss := 0.0
		for d := 0; d < dim && d < len(g); d++ {
			diff := g[d] - centroid[d]
			ss += diff * diff
		}
		total += math.Sqrt(ss)
	}
	return total / float64(len(genomes))
}

// Hypervolume2 computes the 2-D dominated hypervolume of a
// minimization front against the reference point (refX, refY): the
// area dominated by at least one front member inside the rectangle
// bounded by the reference. The input need not be sorted or strictly
// non-dominated — duplicates, dominated members and points beyond the
// reference contribute nothing (rather than the negative slabs a naive
// staircase sum would produce on degenerate fronts).
func Hypervolume2(front []FrontPoint, refX, refY float64) float64 {
	if len(front) == 0 {
		return 0
	}
	pts := append([]FrontPoint(nil), front...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].F1 != pts[j].F1 {
			return pts[i].F1 < pts[j].F1
		}
		return pts[i].F2 < pts[j].F2
	})
	hv := 0.0
	prevF2 := refY
	for _, p := range pts {
		if p.F1 >= refX || p.F2 >= prevF2 || math.IsInf(p.F1, -1) || math.IsInf(p.F2, -1) {
			continue // outside the reference box, or dominated by the staircase so far
		}
		hv += (refX - p.F1) * (prevF2 - p.F2)
		prevF2 = p.F2
	}
	return hv
}

// Spacing is Schott's spacing metric over the front sorted by F1: the
// standard deviation of consecutive Euclidean gaps. Zero means a
// perfectly even front; fronts with fewer than 3 points return 0.
func Spacing(front []FrontPoint) float64 {
	if len(front) < 3 {
		return 0
	}
	pts := append([]FrontPoint(nil), front...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].F1 != pts[j].F1 {
			return pts[i].F1 < pts[j].F1
		}
		return pts[i].F2 < pts[j].F2
	})
	gaps := make([]float64, 0, len(pts)-1)
	mean := 0.0
	for i := 1; i < len(pts); i++ {
		d := math.Hypot(pts[i].F1-pts[i-1].F1, pts[i].F2-pts[i-1].F2)
		gaps = append(gaps, d)
		mean += d
	}
	mean /= float64(len(gaps))
	varsum := 0.0
	for _, d := range gaps {
		varsum += (d - mean) * (d - mean)
	}
	return math.Sqrt(varsum / float64(len(gaps)))
}

// DefaultPlateauTol is the relative-improvement threshold used when
// Patience is set and PlateauTol is not: a generation improving the
// best objective by less than 0.1% (relative) counts as stagnant.
const DefaultPlateauTol = 1e-3

// plateau tracks consecutive low-improvement generations. Scores
// improve downward (feed -hypervolume for maximized indicators); the
// decision depends only on the per-generation score series, which the
// determinism contract keeps bit-identical for any worker count. The
// reference score advances only on significant improvement, so slow
// cumulative drift still resets the counter once it adds up past the
// tolerance.
type plateau struct {
	patience int
	tol      float64
	ref      float64
	seen     bool
	count    int
}

func newPlateau(patience int, tol float64) plateau {
	if tol <= 0 {
		tol = DefaultPlateauTol
	}
	return plateau{patience: patience, tol: tol}
}

// observe feeds one generation's score and reports the updated
// stagnation count and whether the patience budget is exhausted. With
// patience <= 0 it still counts stagnation (for telemetry) but never
// asks to stop.
func (p *plateau) observe(score float64) (stagnation int, stop bool) {
	improved := false
	switch {
	case !p.seen:
		// The first observation has no predecessor; only a feasible
		// score counts as progress.
		improved = !math.IsInf(score, 1) && !math.IsNaN(score)
	case math.IsInf(p.ref, 1) || math.IsNaN(p.ref):
		improved = !math.IsInf(score, 1) && !math.IsNaN(score)
	default:
		denom := math.Abs(p.ref)
		if denom < 1e-300 {
			denom = 1e-300
		}
		improved = (p.ref-score)/denom > p.tol
	}
	p.seen = true
	if improved {
		p.ref, p.count = score, 0
	} else {
		p.count++
	}
	return p.count, p.patience > 0 && p.count >= p.patience
}
