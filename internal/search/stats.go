package search

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes repeated optimization runs across seeds — the
// robustness view of a stochastic search (the paper runs one large
// search per scenario; this library also supports quantifying
// seed-to-seed variance).
type Stats struct {
	Runs   int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	// Feasible counts runs that found any finite objective value.
	Feasible int
}

// Summarize computes statistics over a set of best-objective values.
// Infinite values (infeasible runs) are excluded from the moments but
// counted via Runs − Feasible.
func Summarize(values []float64) Stats {
	s := Stats{Runs: len(values), Min: math.Inf(1), Max: math.Inf(-1)}
	var finite []float64
	for _, v := range values {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		finite = append(finite, v)
	}
	s.Feasible = len(finite)
	if len(finite) == 0 {
		s.Min, s.Max = math.Inf(1), math.Inf(1)
		s.Mean, s.Median = math.Inf(1), math.Inf(1)
		return s
	}
	sort.Float64s(finite)
	s.Min = finite[0]
	s.Max = finite[len(finite)-1]
	var sum float64
	for _, v := range finite {
		sum += v
	}
	s.Mean = sum / float64(len(finite))
	var ss float64
	for _, v := range finite {
		d := v - s.Mean
		ss += d * d
	}
	if len(finite) > 1 {
		s.Std = math.Sqrt(ss / float64(len(finite)-1))
	}
	mid := len(finite) / 2
	if len(finite)%2 == 1 {
		s.Median = finite[mid]
	} else {
		s.Median = (finite[mid-1] + finite[mid]) / 2
	}
	return s
}

// String renders the summary compactly.
func (s Stats) String() string {
	if s.Feasible == 0 {
		return fmt.Sprintf("infeasible in all %d runs", s.Runs)
	}
	return fmt.Sprintf("mean %.4g ± %.2g (min %.4g, median %.4g, max %.4g, %d/%d feasible)",
		s.Mean, s.Std, s.Min, s.Median, s.Max, s.Feasible, s.Runs)
}

// RunRepeatedGA runs the GA across n seeds and summarizes the best
// values; it also returns the overall best result.
func RunRepeatedGA(p Problem, cfg GAConfig, n int) (Stats, Result, error) {
	if n < 1 {
		return Stats{}, Result{}, fmt.Errorf("search: need at least 1 repetition, got %d", n)
	}
	values := make([]float64, 0, n)
	var best Result
	bestV := math.Inf(1)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		res, err := RunGA(p, c)
		if err != nil {
			return Stats{}, Result{}, err
		}
		values = append(values, res.BestValue)
		if res.BestValue < bestV {
			bestV = res.BestValue
			best = res
		}
	}
	return Summarize(values), best, nil
}
