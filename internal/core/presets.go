package core

import (
	"fmt"
	"sort"

	"chrysalis/internal/explore"
	"chrysalis/internal/solar"
	"chrysalis/internal/thermal"
)

// Preset is a named deployment scenario with the SWaP constraints the
// paper's introduction motivates: "many AuT systems are part of
// mission-critical infrastructures in land, sea, air, and space. Each
// of the AuT faces rigorous and specific SWaP constraints".
type Preset struct {
	Name string
	// Domain is the paper's land/sea/air/space taxonomy.
	Domain string
	// Description explains the scenario.
	Description string
	// Build returns the spec template for a workload name.
	Build func(workload string) Spec
}

// Presets returns the built-in deployment scenarios.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "wearable",
			Domain:      "land",
			Description: "body-worn health monitor: tight size budget, indoor light, relaxed deadline",
			Build: func(w string) Spec {
				return Spec{
					WorkloadName: w,
					Platform:     explore.MSP,
					Objective:    explore.Lat,
					MaxPanel:     6, // wrist-scale panel
					Envs:         []solar.Environment{solar.Dark()},
				}
			},
		},
		{
			Name:        "uav",
			Domain:      "air",
			Description: "micro-UAV perception: weight-limited panel, hard real-time deadline, accelerator platform",
			Build: func(w string) Spec {
				return Spec{
					WorkloadName: w,
					Platform:     explore.Accel,
					Objective:    explore.SP, // lightest panel meeting the deadline
					MaxLatency:   5,
				}
			},
		},
		{
			Name:        "buoy",
			Domain:      "sea",
			Description: "ocean buoy acoustic classifier: generous deck area, overall space-time efficiency",
			Build: func(w string) Spec {
				return Spec{
					WorkloadName: w,
					Platform:     explore.MSP,
					Objective:    explore.LatSP,
				}
			},
		},
		{
			Name:        "orbital",
			Domain:      "space",
			Description: "cubesat payload: strong sun with thermal derating on the hot face, latency objective",
			Build: func(w string) Spec {
				hot, err := thermal.NewDeratedEnvironment(solar.Bright(), thermal.Constant{C: 70})
				envs := []solar.Environment{solar.Bright()}
				if err == nil {
					envs = []solar.Environment{hot}
				}
				return Spec{
					WorkloadName: w,
					Platform:     explore.Accel,
					Objective:    explore.Lat,
					MaxPanel:     15, // deployable face area
					Envs:         envs,
				}
			},
		},
		{
			Name:        "volcano",
			Domain:      "land",
			Description: "remote volcano monitoring: dim ash-filtered light, availability above all",
			Build: func(w string) Spec {
				dim := solar.Constant{K: 0.15e-3, Label: "ash-dimmed"}
				return Spec{
					WorkloadName: w,
					Platform:     explore.MSP,
					Objective:    explore.Lat,
					Envs:         []solar.Environment{dim},
				}
			},
		},
	}
}

// PresetByName resolves a preset.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("core: unknown preset %q (have %v)", name, names)
}

// RunPreset designs an AuT for a preset scenario and workload.
func RunPreset(preset, workload string, search SearchConfig) (Result, error) {
	p, err := PresetByName(preset)
	if err != nil {
		return Result{}, err
	}
	spec := p.Build(workload)
	spec.Search = search
	return Run(spec)
}
