package core

import (
	"fmt"
	"strings"

	"chrysalis/internal/trace"
	"chrysalis/internal/units"
)

// Report renders a designed AuT as a pre-RTL design reference document
// (the paper positions CHRYSALIS as "providing pre-RTL level design
// references for AuT accelerator development"): the chosen hardware,
// the per-layer intermittent mapping, per-environment metrics, and the
// verified step-simulation summary when available.
func Report(spec Spec, res Result) (string, error) {
	w, err := spec.resolveWorkload()
	if err != nil {
		return "", err
	}
	var b strings.Builder

	fmt.Fprintf(&b, "CHRYSALIS pre-RTL design reference\n")
	fmt.Fprintf(&b, "==================================\n\n")
	fmt.Fprintf(&b, "workload:   %s (%d layers, %d params, %.3g MACs)\n",
		w.Name, len(w.Layers), w.TotalParams(), float64(w.TotalMACs()))
	fmt.Fprintf(&b, "objective:  %s (search space: %s, %d evaluations)\n\n",
		res.Objective, res.Baseline, res.Evals)

	hw := trace.NewTable("Hardware configuration", "Subsystem", "Component", "Value")
	hw.AddRow("energy", "solar panel", res.PanelArea.String())
	hw.AddRow("energy", "capacitor", res.Cap.String())
	hw.AddRow("energy", "PMIC", "BQ25570-class, U_on=3.0V, U_off=1.8V")
	if res.InferHW == "msp430" {
		hw.AddRow("inference", "platform", "MSP430FR5994 + LEA")
		hw.AddRow("inference", "VM / NVM", "8KB SRAM / 256KB FRAM")
	} else {
		hw.AddRow("inference", "architecture", res.InferHW)
		hw.AddRow("inference", "PE count", fmt.Sprintf("%d", res.NPE))
		hw.AddRow("inference", "PE cache", res.CacheBytes.String())
	}
	if err := hw.Render(&b); err != nil {
		return "", err
	}
	b.WriteString("\n")

	df := trace.NewTable("Per-layer intermittent mapping",
		"Layer", "Dataflow", "Partition", "N_tile", "Checkpoint")
	var totalTiles int
	var totalCkpt units.Bytes
	for _, d := range res.Dataflow {
		df.AddRow(d.Layer, d.Dataflow, d.Partition,
			fmt.Sprintf("%d", d.NTile), d.CkptBytes.String())
		totalTiles += d.NTile
		totalCkpt += d.CkptBytes
	}
	if err := df.Render(&b); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "total: %d tiles; peak checkpoint %s\n\n", totalTiles, maxCkpt(res).String())

	env := trace.NewTable("Predicted metrics per environment",
		"Environment", "E2E latency", "Energy/inference", "System efficiency")
	for _, e := range res.PerEnv {
		env.AddRow(e.Env, e.Latency.String(), e.Energy.String(),
			fmt.Sprintf("%.1f%%", e.Efficiency*100))
	}
	if err := env.Render(&b); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "average latency %v; space-time cost %.3g cm²·s\n\n", res.AvgLatency, res.LatSP)

	b.WriteString("Mapping loop nests (Fig. 4 style)\n")
	b.WriteString("---------------------------------\n")
	for _, d := range res.Dataflow {
		for _, line := range d.LoopNest {
			b.WriteString(line + "\n")
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// maxCkpt returns the largest per-layer checkpoint, which sizes the
// reserved NVM checkpoint region.
func maxCkpt(res Result) units.Bytes {
	var m units.Bytes
	for _, d := range res.Dataflow {
		if d.CkptBytes > m {
			m = d.CkptBytes
		}
	}
	return m
}

// ReportWithVerification extends Report with a step-simulator replay
// under the first environment.
func ReportWithVerification(spec Spec, res Result) (string, error) {
	base, err := Report(spec, res)
	if err != nil {
		return "", err
	}
	run, err := Verify(spec, res)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteString("Step-simulator verification (first environment)\n")
	b.WriteString("-----------------------------------------------\n")
	fmt.Fprintf(&b, "completed:      %v\n", run.Completed)
	fmt.Fprintf(&b, "e2e latency:    %v\n", run.E2ELatency)
	fmt.Fprintf(&b, "power cycles:   %d\n", run.PowerCycles)
	fmt.Fprintf(&b, "checkpoints:    %d saves, %d resumes, %d retries\n",
		run.Checkpoints, run.Resumes, run.TileRetries)
	fmt.Fprintf(&b, "system eff.:    %.1f%%\n", run.SystemEfficiency*100)
	fmt.Fprintf(&b, "energy:         %v inference, %v NVM I/O, %v static, %v checkpoint, %v wasted\n",
		run.Breakdown.Infer, run.Breakdown.NVMIO, run.Breakdown.Static,
		run.Breakdown.Ckpt, run.Breakdown.Wasted)
	return b.String(), nil
}
