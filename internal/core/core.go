// Package core orchestrates CHRYSALIS's usage model (Sec. III-A,
// Table II): given a domain-specific DNN workload, platform and
// environment constraints, and an objective demand function, it wires
// the AuT HW/SW Describer, the Evaluator and the Explorer together and
// returns the ideal AuT solution — energy-harvester hardware, inference
// hardware and per-layer dataflow.
package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"chrysalis/internal/audit"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/explore"
	"chrysalis/internal/obs"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// Spec is the full input of a CHRYSALIS run, mirroring Table II's
// input categories: workload, environment constraint, technology
// constraint and objective.
type Spec struct {
	// Workload is the DNN task. Either set it directly or name a
	// catalog workload in WorkloadName.
	Workload     *dnn.Workload
	WorkloadName string

	// Platform selects MSP430-class or reconfigurable-accelerator
	// inference hardware.
	Platform explore.PlatformKind

	// Objective and its constraints.
	Objective  explore.Objective
	MaxPanel   units.AreaCM2
	MaxLatency units.Seconds

	// Envs are the environment constraints (k_eh providers); nil
	// selects the paper's bright/dark pair.
	Envs []solar.Environment

	// Rexc is the energy-exception rate (technology constraint; <0
	// selects the default).
	Rexc float64

	// SimMode selects the simulator core for every co-simulation of
	// this spec (verification, facade Simulate*, serving): the
	// event-driven analytic simulator (the zero value), the fixed-step
	// oracle, or the differential mode that runs both and fails on
	// divergence. Search scoring is analytic and unaffected.
	SimMode sim.Mode

	// Search configures the outer optimizer.
	Search SearchConfig
}

// SearchConfig sizes the HW-level optimizer.
type SearchConfig struct {
	// Algorithm is "ga" (default), "random", or "nsga" — the
	// multi-objective NSGA-II search over (panel area, latency) whose
	// Result additionally carries the Pareto front.
	Algorithm string
	// Budget approximates the number of candidate evaluations
	// (0 selects ~1200, matching the paper's hardware-point counts
	// scaled to interactive runtimes).
	Budget int
	Seed   int64
	// Workers is the candidate-evaluation concurrency: 0 (the default)
	// uses every core (GOMAXPROCS), negative forces serial, >= 1 is
	// taken literally. Candidate generation stays sequential and seeded,
	// so results are bit-identical for any worker count — Workers is a
	// throughput knob, not part of a design's identity (serving layers
	// exclude it from cache keys).
	Workers int
	// Patience, when > 0, enables the deterministic plateau early-stop
	// policy: the search ends after Patience consecutive generations
	// whose relative best-objective improvement (dominated-hypervolume
	// improvement for "nsga") stays below PlateauTol. Unlike Workers it
	// changes results, so it IS part of a design's identity — serving
	// layers include it in cache keys. 0 disables early stopping.
	Patience int
	// PlateauTol is the relative-improvement threshold backing Patience;
	// <= 0 selects search.DefaultPlateauTol (0.1%).
	PlateauTol float64
	// OnQuality, when non-nil, receives every generation's quality
	// record (population statistics and, for "nsga", front-quality
	// indicators) as the search runs. Observational only, like Progress:
	// excluded from identity, serialization and caching.
	OnQuality func(q search.GenQuality) `json:"-"`
	// Progress, when non-nil, receives a callback after every outer-GA
	// generation: the 1-based generation index, cumulative candidate
	// evaluations and best objective value so far. It runs on the search
	// goroutine and must be fast. Not part of a design's identity (it is
	// ignored by serialization and caching layers).
	Progress func(gen, evals int, best float64) `json:"-"`
	// Stop, when non-nil, is polled between generations; returning true
	// ends the search early with the best design found so far. Serving
	// layers use it to honor context cancellation and deadlines.
	Stop func() bool `json:"-"`
	// Trace, when non-nil, records spans for the whole pipeline — the
	// outer GA's per-generation spans, the explorer's score/evaluate and
	// ladder-build spans — for Chrome trace-event / Perfetto export. Like
	// Progress it is observational only: not part of a design's identity,
	// ignored by serialization and caching layers. Nil (the default)
	// disables tracing at zero cost.
	Trace *obs.Trace `json:"-"`
	// Labels, when non-nil, carries runtime/pprof labels
	// (pprof.WithLabels) that evaluation worker goroutines adopt, so CPU
	// profiles attribute search work to the owning job. Observational
	// only: like Trace it is excluded from identity, serialization and
	// caching.
	Labels context.Context `json:"-"`
	// Warm, when non-nil, attaches the process-lifetime warm-start tier
	// (explore.WarmCache): the search reuses plan ladders previous
	// searches built and publishes its own. Like Trace it is excluded
	// from identity, serialization and caching, and it never affects
	// results — warm and cold runs produce bit-identical designs.
	Warm *explore.WarmCache `json:"-"`
}

func (s SearchConfig) withDefaults() SearchConfig {
	if s.Algorithm == "" {
		s.Algorithm = "ga"
	}
	if s.Budget == 0 {
		s.Budget = 1200
	}
	return s
}

// resolveWorkload picks the workload from the spec.
func (s Spec) resolveWorkload() (dnn.Workload, error) {
	if s.Workload != nil {
		return *s.Workload, s.Workload.Validate()
	}
	if s.WorkloadName == "" {
		return dnn.Workload{}, fmt.Errorf("core: spec needs a Workload or WorkloadName")
	}
	return dnn.ByName(s.WorkloadName)
}

// scenario converts the spec to an explorer scenario.
func (s Spec) scenario() (explore.Scenario, error) {
	w, err := s.resolveWorkload()
	if err != nil {
		return explore.Scenario{}, err
	}
	return explore.Scenario{
		Workload:   w,
		Platform:   s.Platform,
		Envs:       s.Envs,
		Objective:  s.Objective,
		MaxPanel:   s.MaxPanel,
		MaxLatency: s.MaxLatency,
		Rexc:       s.Rexc,
		SimMode:    s.SimMode,
	}, nil
}

// LayerDataflow reports the chosen mapping of one layer, including the
// paper's Figure 4 directive rendering.
type LayerDataflow struct {
	Layer      string
	Dataflow   string
	Partition  string
	NTile      int
	CkptBytes  units.Bytes
	Directives []string
	// LoopNest is the rendered Figure-4 style loop nest, one line per
	// level plus the annotated compute body.
	LoopNest []string
}

// EnvMetrics reports per-environment outcomes.
type EnvMetrics struct {
	Env        string
	Latency    units.Seconds
	Energy     units.Energy
	Efficiency float64
}

// Result is the ideal AuT solution CHRYSALIS outputs (Table II's output
// category).
type Result struct {
	// Energy-harvester hardware.
	PanelArea units.AreaCM2
	Cap       units.Capacitance
	// Inference hardware ("msp430" or "tpu"/"eyeriss" with PE/cache).
	InferHW    string
	NPE        int
	CacheBytes units.Bytes
	// Dataflow per layer.
	Dataflow []LayerDataflow

	// Metrics.
	PerEnv     []EnvMetrics
	AvgLatency units.Seconds
	LatSP      float64
	Evals      int
	// Workers is the resolved evaluation concurrency the search used
	// (informational; results are identical for any worker count).
	Workers   int
	Objective string
	Baseline  string

	// CacheHits / CacheMisses count the search's plan-cache traffic;
	// WarmHits is the subset of misses served by the process-lifetime
	// warm tier (SearchConfig.Warm) instead of a fresh ladder build.
	// Informational only — like Workers they never affect the design.
	CacheHits   int64 `json:",omitempty"`
	CacheMisses int64 `json:",omitempty"`
	WarmHits    int64 `json:",omitempty"`

	// History is the per-generation convergence series: best objective
	// value for scalar searches, dominated hypervolume for "nsga".
	History []float64 `json:",omitempty"`
	// Quality is the matching per-generation population-statistics
	// series (sanitized for JSON: non-finite fields are zeroed, with
	// Feasible==0 marking all-infeasible generations).
	Quality search.QualityHistory `json:",omitempty"`
	// StoppedEarly reports that the plateau policy (Search.Patience)
	// ended the search before its configured generation count; the stop
	// generation is len(History).
	StoppedEarly bool `json:",omitempty"`
	// Front is the Pareto front of an "nsga" run over (panel area,
	// average latency), sorted by panel area; empty for scalar searches.
	Front []FrontMember `json:",omitempty"`
}

// FrontMember is one member of an "nsga" result's Pareto front.
type FrontMember struct {
	PanelArea  units.AreaCM2
	Cap        units.Capacitance
	InferHW    string      `json:",omitempty"`
	NPE        int         `json:",omitempty"`
	CacheBytes units.Bytes `json:",omitempty"`
	Latency    units.Seconds
	LatSP      float64
}

// Run executes the full CHRYSALIS pipeline for a spec under the full
// (co-design) search space.
func Run(spec Spec) (Result, error) {
	return RunBaseline(spec, explore.Full)
}

// RunBaseline executes the pipeline with one of Table VI's ablated
// search spaces (or the full space). The "nsga" algorithm always
// searches the full co-design space (the front is a Figure-6 artifact,
// not a Table VI ablation) and reports the Pareto front alongside the
// minimum-lat·sp member as the headline design.
func RunBaseline(spec Spec, b explore.Baseline) (Result, error) {
	sc, err := spec.scenario()
	if err != nil {
		return Result{}, err
	}
	sc.Trace = spec.Search.Trace
	sc.Warm = spec.Search.Warm
	cfg, err := gaConfig(spec.Search)
	if err != nil {
		return Result{}, err
	}
	if spec.Search.withDefaults().Algorithm == "nsga" {
		return runPareto(sc, b, cfg)
	}
	out, err := explore.Explore(sc, b, cfg)
	if err != nil {
		return Result{}, err
	}
	return assemble(out), nil
}

// runPareto is the multi-objective pipeline: NSGA-II over (panel,
// latency), headline design = the front member minimizing lat·sp.
func runPareto(sc explore.Scenario, b explore.Baseline, cfg search.GAConfig) (Result, error) {
	po, err := explore.ParetoSearch(sc, cfg)
	if err != nil {
		return Result{}, err
	}
	if len(po.Front) == 0 {
		return Result{}, fmt.Errorf("core: empty Pareto front for %s/%s: %w",
			po.Scenario.Workload.Name, po.Scenario.Platform, explore.ErrNoFeasibleDesign)
	}
	best := po.Front[0]
	for _, p := range po.Front[1:] {
		if p.LatSP < best.LatSP {
			best = p
		}
	}
	ev, err := explore.EvaluateCandidate(po.Scenario, best.Candidate)
	if err != nil {
		return Result{}, err
	}
	r := assemble(explore.Outcome{
		Scenario: po.Scenario, Baseline: b, Best: ev, Value: ev.LatSP,
		Evals: po.Evals, Workers: po.Workers,
		CacheHits: po.CacheHits, CacheMisses: po.CacheMisses, WarmHits: po.WarmHits,
		History: po.History, Quality: po.Quality, StoppedEarly: po.StoppedEarly,
	})
	for _, p := range po.Front {
		m := FrontMember{PanelArea: p.PanelArea, Cap: p.Candidate.Cap,
			InferHW: "msp430", NPE: 1, Latency: p.Latency, LatSP: p.LatSP}
		if ac := p.Candidate.Accel; ac != nil {
			m.InferHW = ac.Arch.String()
			m.NPE = ac.NPE
			m.CacheBytes = ac.CacheBytes
		}
		r.Front = append(r.Front, m)
	}
	return r, nil
}

// gaConfig maps the search config onto GA hyperparameters.
func gaConfig(s SearchConfig) (search.GAConfig, error) {
	s = s.withDefaults()
	cfg := search.DefaultGA(s.Seed)
	switch s.Algorithm {
	case "ga", "nsga":
	case "random":
		// Random sampling is modeled as a GA with no selection pressure:
		// full mutation, no elitism.
		cfg.MutRate = 1
		cfg.MutSigma = 10
		cfg.Elite = 0
		cfg.TournamentK = 1
	default:
		return search.GAConfig{}, fmt.Errorf("core: unknown search algorithm %q (want ga, random or nsga)", s.Algorithm)
	}
	sizeGA(&cfg, s.Budget)
	cfg.Progress = s.Progress
	cfg.Stop = s.Stop
	cfg.Trace = s.Trace
	cfg.Labels = s.Labels
	cfg.Workers = s.Workers
	cfg.Patience = s.Patience
	cfg.PlateauTol = s.PlateauTol
	cfg.OnQuality = s.OnQuality
	return cfg, nil
}

// sizeGA scales population/generations to approximate an evaluation
// budget.
func sizeGA(cfg *search.GAConfig, budget int) {
	if budget <= 0 {
		return
	}
	pop := int(math.Sqrt(float64(budget)))
	if pop < 8 {
		pop = 8
	}
	if pop > 80 {
		pop = 80
	}
	gens := budget / pop
	if gens < 2 {
		gens = 2
	}
	cfg.Population = pop
	cfg.Generations = gens
	if cfg.Elite >= pop {
		cfg.Elite = pop / 4
	}
	if cfg.TournamentK > pop {
		cfg.TournamentK = 2
	}
}

// assemble converts an explorer outcome into the public result. The
// convergence series are sanitized for the wire: Result round-trips
// through JSON (WAL journal, HTTP responses), which rejects IEEE
// infinities, so all-infeasible generations carry 0 with the matching
// Quality record's Feasible==0 marking them.
func assemble(out explore.Outcome) Result {
	ev := out.Best
	r := Result{
		PanelArea:   ev.Candidate.PanelArea,
		Cap:         ev.Candidate.Cap,
		InferHW:     "msp430",
		NPE:         1,
		AvgLatency:  ev.AvgLatency,
		LatSP:       ev.LatSP,
		Evals:       out.Evals,
		Workers:     out.Workers,
		CacheHits:   out.CacheHits,
		CacheMisses: out.CacheMisses,
		WarmHits:    out.WarmHits,
		Objective:   out.Scenario.Objective.String(),
		Baseline:    out.Baseline.String(),
		History:     sanitizeSeries(out.History),
		Quality:     out.Quality.SanitizeJSON(),

		StoppedEarly: out.StoppedEarly,
	}
	if ac := ev.Candidate.Accel; ac != nil {
		r.InferHW = ac.Arch.String()
		r.NPE = ac.NPE
		r.CacheBytes = ac.CacheBytes
	}
	for _, m := range ev.Mappings {
		nest := dataflow.BuildLoopNest(m.Plan.Layer, m.Mapping)
		r.Dataflow = append(r.Dataflow, LayerDataflow{
			Layer:      m.Layer,
			Dataflow:   m.Mapping.Dataflow.String(),
			Partition:  m.Mapping.Partition.String(),
			NTile:      m.Plan.Cost.NTileEffective,
			CkptBytes:  m.Plan.CkptBytes,
			Directives: dataflow.Directives(m.Plan.Layer, m.Mapping),
			LoopNest:   strings.Split(strings.TrimRight(nest.Render(), "\n"), "\n"),
		})
	}
	for _, e := range ev.PerEnv {
		r.PerEnv = append(r.PerEnv, EnvMetrics{
			Env:        e.Env,
			Latency:    e.Latency,
			Energy:     e.Energy,
			Efficiency: e.Efficiency,
		})
	}
	return r
}

// sanitizeSeries maps non-finite history entries to 0 so the series
// survives encoding/json.
func sanitizeSeries(h []float64) []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h))
	for i, v := range h {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Verify re-evaluates a result with the step-based simulator under the
// first environment and returns the simulated run, cross-checking the
// analytic search estimate (the paper's model-vs-platform validation
// flow, Fig. 7).
func Verify(spec Spec, res Result) (sim.Result, error) {
	return VerifyWithTrace(spec, res, nil)
}

// VerifyWithTrace is Verify with an optional simulator tracer that
// receives the replay's events (power cycles, tile starts/completions,
// checkpoints, resumes, retries) in time order — the hook the serving
// layer uses to stream live telemetry.
func VerifyWithTrace(spec Spec, res Result, tr sim.Tracer) (sim.Result, error) {
	run, _, err := VerifyFlight(spec, res, tr, nil)
	return run, err
}

// VerifyFlight is the full-introspection verification path: it replays
// the design through the co-simulator selected by spec.SimMode (the
// event-driven simulator by default) with an optional event tracer AND
// an optional flight recorder, then — when a recorder was attached —
// audits the recorded physics for energy-conservation violations. The
// audit report is nil when rec is nil.
func VerifyFlight(spec Spec, res Result, tr sim.Tracer, rec *sim.Recorder) (sim.Result, *audit.Report, error) {
	sc, err := spec.scenario()
	if err != nil {
		return sim.Result{}, nil, err
	}
	cand, err := candidateFromResult(spec, res)
	if err != nil {
		return sim.Result{}, nil, err
	}
	run, err := explore.SimulateCandidate(sc, cand, tr, rec)
	if err != nil {
		return sim.Result{}, nil, err
	}
	var rep *audit.Report
	if rec != nil {
		rep = audit.Run(rec, audit.Options{})
	}
	return run, rep, nil
}

func candidateFromResult(spec Spec, res Result) (explore.Candidate, error) {
	cand := explore.Candidate{PanelArea: res.PanelArea, Cap: res.Cap}
	if spec.Platform == explore.Accel {
		arch, err := accelArch(res.InferHW)
		if err != nil {
			return explore.Candidate{}, err
		}
		cand.Accel = &arch
		cand.Accel.NPE = res.NPE
		cand.Accel.CacheBytes = res.CacheBytes
	}
	return cand, nil
}
