package core

import (
	"math"
	"strings"
	"testing"

	"chrysalis/internal/explore"
	"chrysalis/internal/units"
)

// fastSearch keeps orchestration tests quick.
func fastSearch(seed int64) SearchConfig {
	return SearchConfig{Budget: 80, Seed: seed}
}

func TestRunMSPQuickstart(t *testing.T) {
	res, err := Run(Spec{
		WorkloadName: "simpleconv",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       fastSearch(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InferHW != "msp430" || res.NPE != 1 {
		t.Fatalf("infer hw = %s/%d", res.InferHW, res.NPE)
	}
	if res.PanelArea < 1 || res.PanelArea > 30 {
		t.Fatalf("panel %v outside design space", res.PanelArea)
	}
	if res.Cap < 1e-6 || res.Cap > 10e-3 {
		t.Fatalf("cap %v outside design space", res.Cap)
	}
	if len(res.Dataflow) != 1 {
		t.Fatalf("simpleconv has 1 layer, got %d dataflow entries", len(res.Dataflow))
	}
	if len(res.Dataflow[0].Directives) == 0 {
		t.Fatal("directives should be rendered")
	}
	if res.AvgLatency <= 0 || math.IsInf(float64(res.AvgLatency), 1) {
		t.Fatalf("latency = %v", res.AvgLatency)
	}
	if res.Baseline != "chrysalis" || res.Objective != "lat*sp" {
		t.Fatalf("labels = %s/%s", res.Baseline, res.Objective)
	}
}

func TestRunAccel(t *testing.T) {
	res, err := Run(Spec{
		WorkloadName: "har",
		Platform:     explore.Accel,
		Objective:    explore.Lat,
		MaxPanel:     20,
		Search:       fastSearch(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InferHW != "tpu" && res.InferHW != "eyeriss" {
		t.Fatalf("infer hw = %s", res.InferHW)
	}
	if res.NPE < 1 || res.NPE > 168 {
		t.Fatalf("NPE = %d", res.NPE)
	}
	if res.CacheBytes < 128 || res.CacheBytes > 2*units.KB {
		t.Fatalf("cache = %v", res.CacheBytes)
	}
	if res.PanelArea > 20 {
		t.Fatalf("panel %v exceeds MaxPanel", res.PanelArea)
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := Run(Spec{Platform: explore.MSP}); err == nil {
		t.Error("missing workload should fail")
	}
	if _, err := Run(Spec{WorkloadName: "nope", Platform: explore.MSP}); err == nil {
		t.Error("unknown workload should fail")
	}
	if _, err := Run(Spec{WorkloadName: "har", Search: SearchConfig{Algorithm: "annealing"}}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestRandomAlgorithm(t *testing.T) {
	res, err := Run(Spec{
		WorkloadName: "simpleconv",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       SearchConfig{Algorithm: "random", Budget: 64, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= 0 {
		t.Fatal("random search should still find designs")
	}
}

func TestRunBaselinePinsDims(t *testing.T) {
	res, err := RunBaseline(Spec{
		WorkloadName: "simpleconv",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       fastSearch(4),
	}, explore.WoEA)
	if err != nil {
		t.Fatal(err)
	}
	if res.PanelArea != explore.FixedPanel || res.Cap != explore.FixedCap {
		t.Fatalf("wo/EA should pin the energy subsystem: %v/%v", res.PanelArea, res.Cap)
	}
	if res.Baseline != "wo/EA" {
		t.Fatalf("baseline label = %s", res.Baseline)
	}
}

func TestVerifyAgainstStepSim(t *testing.T) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       fastSearch(5),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := Verify(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.Completed {
		t.Fatal("step sim should complete the searched design")
	}
	// Bright-environment step-sim latency should be within a factor ~2
	// of the analytic bright latency used in search.
	var bright units.Seconds
	for _, e := range res.PerEnv {
		if e.Env == "bright" {
			bright = e.Latency
		}
	}
	ratio := float64(simRes.E2ELatency) / float64(bright)
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("step sim %v vs analytic %v (ratio %.2f)", simRes.E2ELatency, bright, ratio)
	}
}

func TestComponentsInventory(t *testing.T) {
	comps := Components()
	if len(comps) != 7 {
		t.Fatalf("Table III has 7 rows, got %d", len(comps))
	}
	subsystems := map[string]int{}
	for _, c := range comps {
		subsystems[c.Subsystem]++
		if c.Component == "" || c.Realization == "" || c.BaseModel == "" {
			t.Errorf("incomplete component row: %+v", c)
		}
	}
	if subsystems["EH"] != 3 || subsystems["Infer"] != 4 {
		t.Fatalf("subsystem split = %v", subsystems)
	}
}

func TestSizeGA(t *testing.T) {
	cfg, err := gaConfig(SearchConfig{Budget: 400})
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Population * cfg.Generations; got < 200 || got > 800 {
		t.Fatalf("budget 400 produced %d evals worth of schedule", got)
	}
	// Tiny budgets stay valid.
	cfg, err = gaConfig(SearchConfig{Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("tiny budget config invalid: %v", err)
	}
}

func TestVerifyAccelPath(t *testing.T) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     explore.Accel,
		Objective:    explore.LatSP,
		Search:       fastSearch(7),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Verify(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Completed {
		t.Fatal("accelerator verification run should complete")
	}
}

func TestVerifyErrorPaths(t *testing.T) {
	// Bad workload in the spec.
	if _, err := Verify(Spec{WorkloadName: "nope", Platform: explore.MSP}, Result{}); err == nil {
		t.Error("unknown workload should fail")
	}
	// Accel result with a bogus architecture name.
	spec := Spec{WorkloadName: "har", Platform: explore.Accel, Objective: explore.LatSP}
	bad := Result{PanelArea: 8, Cap: 1e-3, InferHW: "npu", NPE: 8, CacheBytes: 512}
	if _, err := Verify(spec, bad); err == nil {
		t.Error("unknown architecture should fail")
	}
	// Out-of-space design point.
	spec2 := Spec{WorkloadName: "har", Platform: explore.MSP, Objective: explore.LatSP}
	bad2 := Result{PanelArea: 99, Cap: 1e-3, InferHW: "msp430"}
	if _, err := Verify(spec2, bad2); err == nil {
		t.Error("out-of-space panel should fail")
	}
}

func TestResultIncludesLoopNest(t *testing.T) {
	res, err := Run(Spec{
		WorkloadName: "simpleconv",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       fastSearch(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataflow) == 0 || len(res.Dataflow[0].LoopNest) < 3 {
		t.Fatalf("loop nest missing from result: %+v", res.Dataflow)
	}
	joined := strings.Join(res.Dataflow[0].LoopNest, "\n")
	if !strings.Contains(joined, "InterTempMap") {
		t.Fatalf("loop nest lacks InterTempMap:\n%s", joined)
	}
}

func TestReport(t *testing.T) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       fastSearch(9),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Report(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pre-RTL design reference", "Hardware configuration",
		"Per-layer intermittent mapping", "Predicted metrics",
		"InterTempMap", "solar panel", "capacitor",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}
	full, err := ReportWithVerification(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full, "Step-simulator verification") {
		t.Error("verified report missing simulation section")
	}
	if _, err := Report(Spec{WorkloadName: "nope"}, res); err == nil {
		t.Error("bad spec should fail")
	}
}

func TestSensitivity(t *testing.T) {
	spec := Spec{
		WorkloadName: "har",
		Platform:     explore.MSP,
		Objective:    explore.LatSP,
		Search:       fastSearch(10),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Sensitivity(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Ambient light must matter: more light, less latency.
	var light SensitivityRow
	for _, r := range rows {
		if r.Parameter == "ambient light ±50%" {
			light = r
		}
	}
	if light.Parameter == "" {
		t.Fatal("light row missing")
	}
	if light.LatLow <= light.LatHigh {
		t.Fatalf("dimmer light (%v) should be slower than brighter (%v)", light.LatLow, light.LatHigh)
	}
	if light.Swing <= 0 {
		t.Fatalf("light swing = %v", light.Swing)
	}
	// Infeasible base is rejected.
	if _, err := Sensitivity(Spec{WorkloadName: "nope"}, res); err == nil {
		t.Fatal("bad spec should fail")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 5 {
		t.Fatalf("presets = %d, want 5", len(ps))
	}
	domains := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Domain == "" || p.Description == "" || p.Build == nil {
			t.Fatalf("incomplete preset %+v", p)
		}
		domains[p.Domain] = true
		spec := p.Build("har")
		if spec.WorkloadName != "har" {
			t.Fatalf("%s: workload not threaded", p.Name)
		}
	}
	// The paper's taxonomy: land, sea, air, space all covered.
	for _, d := range []string{"land", "sea", "air", "space"} {
		if !domains[d] {
			t.Errorf("domain %q not covered", d)
		}
	}
	if _, err := PresetByName("moonbase"); err == nil {
		t.Fatal("unknown preset should fail")
	}
}

func TestRunPreset(t *testing.T) {
	res, err := RunPreset("wearable", "har", fastSearch(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.PanelArea > 6 {
		t.Fatalf("wearable panel %v exceeds the 6cm² budget", res.PanelArea)
	}
	if _, err := RunPreset("moonbase", "har", fastSearch(11)); err == nil {
		t.Fatal("unknown preset should fail")
	}
}
