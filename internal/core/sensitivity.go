package core

import (
	"fmt"
	"math"

	"chrysalis/internal/explore"
	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/units"
)

// SensitivityRow reports how the design's average latency responds to
// perturbing one parameter while holding the rest fixed (one-at-a-time
// tornado analysis around the chosen design point).
type SensitivityRow struct {
	Parameter string
	// Low/High describe the perturbed values.
	Low, High string
	// LatLow/LatHigh are the average latencies at the perturbed values
	// (+Inf when the perturbed design is infeasible).
	LatLow, LatHigh units.Seconds
	// Swing is the relative latency span (high−low)/base.
	Swing float64
}

// Sensitivity perturbs the designed configuration one parameter at a
// time — panel area ±25%, capacitor ×/÷2, and the environment's light
// coefficient ±50% — and reports the latency response. Designers use
// it to see which tolerance actually matters before committing to
// hardware.
func Sensitivity(spec Spec, res Result) ([]SensitivityRow, error) {
	sc, err := spec.scenario()
	if err != nil {
		return nil, err
	}
	baseCand, err := candidateFromResult(spec, res)
	if err != nil {
		return nil, err
	}
	base, err := explore.EvaluateCandidate(sc, baseCand)
	if err != nil {
		return nil, err
	}
	if !base.Feasible {
		return nil, fmt.Errorf("core: base design is infeasible; nothing to perturb")
	}
	baseLat := float64(base.AvgLatency)

	evalWith := func(mutate func(*explore.Candidate) bool, scenario explore.Scenario) units.Seconds {
		cand := baseCand
		if cand.Accel != nil {
			cp := *cand.Accel
			cand.Accel = &cp
		}
		if mutate != nil && !mutate(&cand) {
			return units.Seconds(math.Inf(1))
		}
		ev, err := explore.EvaluateCandidate(scenario, cand)
		if err != nil || !ev.Feasible {
			return units.Seconds(math.Inf(1))
		}
		return ev.AvgLatency
	}

	clampPanel := func(a units.AreaCM2) (units.AreaCM2, bool) {
		if a < solar.MinPanelArea || a > solar.MaxPanelArea {
			return 0, false
		}
		return a, true
	}
	clampCap := func(c units.Capacitance) (units.Capacitance, bool) {
		if c < storage.MinCapacitance || c > storage.MaxCapacitance {
			return 0, false
		}
		return c, true
	}

	var rows []SensitivityRow

	// Panel ±25%.
	lowP, okL := clampPanel(baseCand.PanelArea * 0.75)
	highP, okH := clampPanel(baseCand.PanelArea * 1.25)
	row := SensitivityRow{
		Parameter: "panel area ±25%",
		Low:       lowP.String(), High: highP.String(),
		LatLow:  units.Seconds(math.Inf(1)),
		LatHigh: units.Seconds(math.Inf(1)),
	}
	if okL {
		row.LatLow = evalWith(func(c *explore.Candidate) bool { c.PanelArea = lowP; return true }, sc)
	}
	if okH {
		row.LatHigh = evalWith(func(c *explore.Candidate) bool { c.PanelArea = highP; return true }, sc)
	}
	rows = append(rows, row)

	// Capacitor ×/÷2.
	lowC, okL := clampCap(baseCand.Cap / 2)
	highC, okH := clampCap(baseCand.Cap * 2)
	row = SensitivityRow{
		Parameter: "capacitor ×/÷2",
		Low:       lowC.String(), High: highC.String(),
		LatLow:  units.Seconds(math.Inf(1)),
		LatHigh: units.Seconds(math.Inf(1)),
	}
	if okL {
		row.LatLow = evalWith(func(c *explore.Candidate) bool { c.Cap = lowC; return true }, sc)
	}
	if okH {
		row.LatHigh = evalWith(func(c *explore.Candidate) bool { c.Cap = highC; return true }, sc)
	}
	rows = append(rows, row)

	// Environment k_eh ±50% (scaling both search environments).
	dimmer := sc
	dimmer.Envs = scaleEnvs(sc.Envs, 0.5)
	brighter := sc
	brighter.Envs = scaleEnvs(sc.Envs, 1.5)
	rows = append(rows, SensitivityRow{
		Parameter: "ambient light ±50%",
		Low:       "0.5×k_eh", High: "1.5×k_eh",
		LatLow:  evalWith(nil, dimmer),
		LatHigh: evalWith(nil, brighter),
	})

	// Swings relative to the base latency.
	for i := range rows {
		lo, hi := float64(rows[i].LatLow), float64(rows[i].LatHigh)
		if math.IsInf(lo, 1) || math.IsInf(hi, 1) || baseLat <= 0 {
			rows[i].Swing = math.Inf(1)
			continue
		}
		rows[i].Swing = math.Abs(lo-hi) / baseLat
	}
	return rows, nil
}

// scaledEnv wraps an environment with a multiplier on k_eh.
type scaledEnv struct {
	base  solar.Environment
	scale float64
}

func (s scaledEnv) Keh(t units.Seconds) units.Power {
	return units.Power(float64(s.base.Keh(t)) * s.scale)
}
func (s scaledEnv) Name() string { return fmt.Sprintf("%s×%.2g", s.base.Name(), s.scale) }

func scaleEnvs(envs []solar.Environment, k float64) []solar.Environment {
	if envs == nil {
		envs = []solar.Environment{solar.Bright(), solar.Dark()}
	}
	out := make([]solar.Environment, len(envs))
	for i, e := range envs {
		out[i] = scaledEnv{base: e, scale: k}
	}
	return out
}
