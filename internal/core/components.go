package core

import (
	"chrysalis/internal/accel"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/msp430"
)

// Component is one row of the supported-setup inventory (Table III).
type Component struct {
	Subsystem   string
	Component   string
	Realization string
	BaseModel   string
}

// Components returns the Table III inventory of what this CHRYSALIS
// implementation supports.
func Components() []Component {
	return []Component{
		{"EH", "Energy Harvester", "Solar Panel", "pvlib-style irradiance model (internal/solar)"},
		{"EH", "EH Controller", "Power Management IC", "BQ25570-style thresholds (internal/pmic)"},
		{"EH", "Capacitor", "Electrolytic Capacitor", "Physics model I=k·C·U (internal/storage)"},
		{"Infer", "Infer Controller", "Microcontroller Unit", "MSP430FR5994 (internal/msp430)"},
		{"Infer", "Strategy", "Tile Partition, ckpt.", "iNAS-like InterTempMap (internal/intermittent)"},
		{"Infer", "Accelerator & Mapper", "Existing AuT Setup", "MSP430FR5994 + LEA (internal/msp430)"},
		{"Infer", "Accelerator & Mapper", "Future AuT Setup", "CHRYSALIS-MAESTRO dataflow model (internal/dataflow) + GA explorer (internal/search)"},
	}
}

// mspHW returns the MSP430 platform constants.
func mspHW() dataflow.HW { return msp430.Config{}.HW() }

// accelArch resolves an architecture name into a config skeleton.
func accelArch(name string) (accel.Config, error) {
	a, err := accel.ParseArch(name)
	if err != nil {
		return accel.Config{}, err
	}
	return accel.Config{Arch: a}, nil
}
