package core

import (
	"testing"

	"chrysalis/internal/sim"
)

// TestVerifyFlightAuditsAllPresets replays every bundled preset's
// designed solution through the step simulator with a flight recorder
// attached and requires the energy-conservation audit to pass — the
// evaluator must obey its own physics on every scenario we ship.
func TestVerifyFlightAuditsAllPresets(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			spec := p.Build("har")
			spec.Search = fastSearch(17)
			res, err := Run(spec)
			if err != nil {
				t.Fatalf("%s: design failed: %v", p.Name, err)
			}
			rec := sim.NewRecorder(1024)
			run, rep, err := VerifyFlight(spec, res, nil, rec)
			if err != nil {
				t.Fatalf("%s: verify failed: %v", p.Name, err)
			}
			if rep == nil {
				t.Fatalf("%s: expected an audit report", p.Name)
			}
			if !rep.OK() {
				t.Errorf("%s: audit failed: %s\nfindings: %+v", p.Name, rep, rep.Findings)
			}
			if rec.RawSamples() == 0 {
				t.Errorf("%s: recorder saw no samples", p.Name)
			}
			if run.Completed && rep.Cycles == 0 {
				t.Errorf("%s: completed run produced no cycle ledgers", p.Name)
			}
		})
	}

	// Without a recorder there is no audit, and the legacy wrapper
	// still works.
	spec := Presets()[0].Build("har")
	spec.Search = fastSearch(17)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, rep, err := VerifyFlight(spec, res, nil, nil); err != nil || rep != nil {
		t.Fatalf("recorder-less flight: rep=%v err=%v", rep, err)
	}
	if _, err := Verify(spec, res); err != nil {
		t.Fatalf("legacy Verify broke: %v", err)
	}
}
