package experiments

import (
	"bytes"
	"testing"
)

// TestExperimentsDeterministic ensures the recorded transcripts are
// reproducible: running a generator twice with the same options yields
// byte-identical output. The search-heavy generators are covered at
// bench budgets.
func TestExperimentsDeterministic(t *testing.T) {
	o := Options{Budget: 60, ParetoSamples: 60, Fast: true, Seed: 3, Workers: 4}
	for _, id := range []string{"fig2a", "fig2b", "table4", "fig6", "fig9", "fig10"} {
		g, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := g.Run(&a, o); err != nil {
			t.Fatalf("%s (first): %v", id, err)
		}
		if err := g.Run(&b, o); err != nil {
			t.Fatalf("%s (second): %v", id, err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: output differs between identical runs", id)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestGeneratorsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range Generators() {
		if g.ID == "" || g.Desc == "" || g.Run == nil {
			t.Fatalf("incomplete generator %+v", g)
		}
		if seen[g.ID] {
			t.Fatalf("duplicate id %q", g.ID)
		}
		seen[g.ID] = true
	}
	if len(seen) != 20 {
		t.Fatalf("generator count = %d, want 20", len(seen))
	}
}
