package experiments

// Extension experiments beyond the paper's figures, exercising the
// Sec. III-D component extensions implemented in this repository:
// checkpoint-policy comparison, diurnal day-scale deployment, and
// temperature coupling.

import (
	"fmt"
	"io"
	"math"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/thermal"
	"chrysalis/internal/trace"
	"chrysalis/internal/units"
)

// simConfigFor builds a step-sim config for an MSP design point under
// one environment.
func simConfigFor(wl dnn.Workload, panel units.AreaCM2, capC units.Capacitance, env solar.Environment) (sim.Config, error) {
	sc := explore.Scenario{
		Workload: wl, Platform: explore.MSP,
		Objective: explore.Lat, Envs: []solar.Environment{env},
	}
	ev, err := explore.EvaluateCandidate(sc, explore.Candidate{PanelArea: panel, Cap: capC})
	if err != nil {
		return sim.Config{}, err
	}
	es, err := energy.NewSolar(energy.Spec{PanelArea: panel, Cap: capC}, env)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{Energy: es, HW: mspHW(), Plans: plansOf(ev)}, nil
}

// ExtPolicy compares checkpoint policies (every-tile, adaptive, none)
// under stable and intermittent power — the design axis separating the
// Table I platform families.
func ExtPolicy(w io.Writer, o Options) error {
	t := trace.NewTable("Extension — checkpoint policies (HAR on MSP430, 8cm², 100uF)",
		"Environment", "Policy", "E2E lat", "Saves", "Retries", "Ckpt E", "Wasted E")
	envs := []solar.Environment{solar.Bright(), solar.Dark()}
	for _, env := range envs {
		for _, pol := range []sim.Policy{sim.PolicyEveryTile, sim.PolicyAdaptive, sim.PolicyNone} {
			cfg, err := simConfigFor(dnn.HAR(), 8, 100e-6, env)
			if err != nil {
				return err
			}
			cfg.Policy = pol
			cfg.Step = 0.5e-3
			cfg.MaxTime = 300
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			lat := fmtLat(res.E2ELatency)
			if !res.Completed {
				lat = "never completes"
			}
			t.AddRow(env.Name(), pol.String(), lat,
				fmt.Sprintf("%d", res.Checkpoints), fmt.Sprintf("%d", res.TileRetries),
				res.Breakdown.Ckpt.String(), res.Breakdown.Wasted.String())
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nadaptive saves less checkpoint energy under stable power; without checkpoints")
	fmt.Fprintln(w, "the inference cannot survive power cycling — the case for intermittent-aware design.")
	return nil
}

// ExtDayRun simulates a whole artificial day of back-to-back inferences
// under a diurnal light profile with a day/night temperature swing —
// the deployment view of a designed AuT.
func ExtDayRun(w io.Writer, o Options) error {
	const dayLen = 600 // compressed "day" for tractable simulation
	day, err := solar.NewDiurnal(solar.KehBright, 0, dayLen)
	if err != nil {
		return err
	}
	hot, err := thermal.NewDeratedEnvironment(day, thermal.DayNight{
		MeanC: 30, SwingC: 12, PeakAt: dayLen / 2, Period: 2 * dayLen,
	})
	if err != nil {
		return err
	}

	t := trace.NewTable("Extension — day-scale deployment (HAR, 12cm², 470uF, compressed diurnal day)",
		"Scenario", "Inferences done", "Throughput (inf/h)", "Harvested", "Leaked", "Wasted retries")
	for _, sc := range []struct {
		name string
		env  solar.Environment
	}{
		{"clear day", day},
		{"hot day (PV derated)", hot},
	} {
		cfg, err := simConfigFor(dnn.HAR(), 12, 470e-6, solar.Bright())
		if err != nil {
			return err
		}
		es, err := energy.NewSolar(energy.Spec{PanelArea: 12, Cap: 470e-6}, sc.env)
		if err != nil {
			return err
		}
		cfg.Energy = es
		cfg.MaxTime = dayLen
		sr, err := sim.RunSeries(cfg, 10_000, 2)
		if err != nil {
			return err
		}
		t.AddRow(sc.name, fmt.Sprintf("%d", sr.Completed),
			fmt.Sprintf("%.0f", sr.ThroughputPerHour),
			sr.Energy.Harvested.String(), sr.Energy.CapLeakage.String(),
			sr.Energy.Wasted.String())
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe device works while light lasts and stalls at night; heat derates the panel")
	fmt.Fprintln(w, "and trims daily throughput.")
	return nil
}

// ExtThermal sweeps ambient temperature and reports its effect on
// latency through the two couplings (PV derating and capacitor
// leakage inflation).
func ExtThermal(w io.Writer, o Options) error {
	t := trace.NewTable("Extension — temperature coupling (HAR, 8cm², 1mF, bright)",
		"Ambient", "PV factor", "k_cap factor", "E2E lat")
	base := math.Inf(1)
	for _, temp := range []float64{0, 15, 25, 40, 55, 70} {
		env, err := thermal.NewDeratedEnvironment(solar.Bright(), thermal.Constant{C: temp})
		if err != nil {
			return err
		}
		sc := explore.Scenario{
			Workload: dnn.HAR(), Platform: explore.MSP,
			Objective: explore.Lat, Envs: []solar.Environment{env},
		}
		ev, err := explore.EvaluateCandidate(sc, explore.Candidate{PanelArea: 8, Cap: 1e-3})
		if err != nil {
			return err
		}
		es, err := energy.NewSolar(energy.Spec{
			PanelArea: 8, Cap: 1e-3,
			Kcap: thermal.AdjustedKcap(0, temp),
		}, env)
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{Energy: es, HW: mspHW(), Plans: plansOf(ev), Step: 2e-3})
		if err != nil {
			return err
		}
		lat := fmtLat(res.E2ELatency)
		if temp == 25 {
			base = float64(res.E2ELatency)
		}
		t.AddRow(fmt.Sprintf("%.0f°C", temp),
			fmt.Sprintf("%.2f", thermal.PVFactor(temp)),
			fmt.Sprintf("%.2f", thermal.LeakageFactor(temp)),
			lat)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if !math.IsInf(base, 1) {
		fmt.Fprintln(w, "\nlatency grows on both sides of the 25°C rating point once leakage inflation")
		fmt.Fprintln(w, "(hot) or the scenario's light profile dominates — temperature belongs in the spec.")
	}
	return nil
}

// ExtRobustness quantifies seed-to-seed search variance: the GA and
// random sampling repeated across seeds on one scenario at equal
// budgets.
func ExtRobustness(w io.Writer, o Options) error {
	o = o.withDefaults()
	sc := explore.Scenario{Workload: dnn.HAR(), Platform: explore.MSP, Objective: explore.LatSP}

	t := trace.NewTable("Extension — search robustness across 8 seeds (HAR, lat*sp)",
		"Sampler", "Mean", "Std", "Min", "Max", "Feasible")
	const reps = 8
	for _, alg := range []string{"ga", "random"} {
		values := make([]float64, 0, reps)
		for i := 0; i < reps; i++ {
			cfg := o.ga(int64(i) * 13)
			if alg == "random" {
				cfg.MutRate = 1
				cfg.MutSigma = 10
				cfg.Elite = 0
				cfg.TournamentK = 1
			}
			out, err := explore.Explore(sc, explore.Full, cfg)
			if err != nil {
				values = append(values, math.Inf(1))
				continue
			}
			values = append(values, out.Value)
		}
		s := search.Summarize(values)
		t.AddRow(alg, fmt.Sprintf("%.4g", s.Mean), fmt.Sprintf("%.2g", s.Std),
			fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Max),
			fmt.Sprintf("%d/%d", s.Feasible, s.Runs))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe GA's spread across seeds stays tight relative to its mean, supporting the")
	fmt.Fprintln(w, "paper's single-search-per-scenario methodology.")
	return nil
}

// ExtStorage compares capacitor technologies at matched sizes: ceramic
// rescues the mid-size regime with an order of magnitude less leakage,
// while supercaps extend storage at the cost of self-discharge.
func ExtStorage(w io.Writer, o Options) error {
	t := trace.NewTable("Extension — storage technologies (HAR, 8cm², bright)",
		"Technology", "Size", "k_cap", "E2E lat", "Leak E", "Sys eff")
	cases := []struct {
		tech storage.Tech
		size units.Capacitance
	}{
		{storage.Electrolytic, 47e-6},
		{storage.Ceramic, 47e-6},
		{storage.Electrolytic, 4.7e-3},
		{storage.Supercap, 4.7e-3},
	}
	for _, c := range cases {
		ts, err := storage.SpecFor(c.tech)
		if err != nil {
			return err
		}
		sc := explore.Scenario{
			Workload: dnn.HAR(), Platform: explore.MSP,
			Objective: explore.Lat, Envs: brightOnly(),
		}
		ev, err := explore.EvaluateCandidate(sc, explore.Candidate{PanelArea: 8, Cap: c.size})
		if err != nil {
			return err
		}
		es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: c.size, Storage: c.tech}, solar.Bright())
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{Energy: es, HW: mspHW(), Plans: plansOf(ev), Step: 2e-3})
		if err != nil {
			return err
		}
		t.AddRow(c.tech.String(), c.size.String(), fmt.Sprintf("%.3f", ts.Kcap),
			fmtLat(res.E2ELatency), res.Breakdown.CapLeakage.String(),
			fmt.Sprintf("%.1f%%", res.SystemEfficiency*100))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nchemistry matters as much as size: at 4.7mF the supercap's self-discharge")
	fmt.Fprintln(w, "widens the latency gap, while ceramic parts make mid-size buffers nearly lossless.")
	return nil
}

// ExtSpace quantifies the paper's combinatorial-explosion claim: the
// number of candidate configurations per workload. The paper samples
// 10^4 hardware points and 100 mapping points per layer, for a
// 10^(4+2n) space; this table also counts the exact discrete mapping
// space our describers expose.
func ExtSpace(w io.Writer, o Options) error {
	t := trace.NewTable("Extension — design-space cardinality",
		"Workload", "Layers n", "Paper-style 10^(4+2n)", "Exact mapping combos (log10)", "Per-layer choices (min..max)")
	all := append(dnn.ExistingAuT(), dnn.FutureAuT()...)
	for _, wl := range all {
		dfCount := 3
		if wl.ElemBytes == 2 {
			dfCount = 1 // MSP platform: single-PE, dataflow degenerates
		}
		logCombos := 0.0
		minC, maxC := math.MaxInt, 0
		for _, l := range wl.Layers {
			choices := 0
			for _, part := range []dataflow.Partition{dataflow.ByChannel, dataflow.BySpatial} {
				choices += dfCount * len(dataflow.CandidateNTiles(l, part))
			}
			if choices < minC {
				minC = choices
			}
			if choices > maxC {
				maxC = choices
			}
			logCombos += math.Log10(float64(choices))
		}
		n := len(wl.Layers)
		t.AddRow(wl.Name, fmt.Sprintf("%d", n),
			fmt.Sprintf("10^%d", 4+2*n),
			fmt.Sprintf("%.1f", logCombos),
			fmt.Sprintf("%d..%d", minC, maxC))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\neven the exact discrete mapping space spans tens of orders of magnitude once")
	fmt.Fprintln(w, "combined with the continuous hardware dimensions — hence the bi-level GA.")
	return nil
}

// ExtLEA quantifies the low-energy accelerator's contribution on the
// existing-AuT platform: the same workloads with the LEA disabled run
// on the bare CPU (the Table III "Infer Controller" without its
// vector unit).
func ExtLEA(w io.Writer, o Options) error {
	t := trace.NewTable("Extension — LEA ablation (8cm², 100uF, bright)",
		"Workload", "With LEA", "CPU only", "Slowdown")
	for _, wl := range o.withDefaults().existingApps() {
		row := []string{wl.Name}
		var lats [2]float64
		for i, cfgMSP := range []msp430.Config{{}, {DisableLEA: true}} {
			hw := cfgMSP.HW()
			es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Bright())
			if err != nil {
				return err
			}
			budget := func(load units.Power) units.Energy {
				b, _ := es.CycleBudget(load)
				if math.IsInf(float64(b), 1) {
					return 1e6
				}
				return b * 0.9
			}
			plans, err := intermittent.PlanWorkload(wl, dataflow.OS, hw, 0.05, budget)
			if err != nil {
				row = append(row, "unmappable")
				lats[i] = math.Inf(1)
				continue
			}
			res := sim.Analytic(es, plans)
			row = append(row, fmtLat(res.E2ELatency))
			lats[i] = float64(res.E2ELatency)
		}
		if !math.IsInf(lats[0], 1) && !math.IsInf(lats[1], 1) {
			row = append(row, fmt.Sprintf("%.1fx", lats[1]/lats[0]))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe LEA's vector unit carries the platform: without it the energy per inference")
	fmt.Fprintln(w, "grows several-fold and the charging time with it.")
	return nil
}
