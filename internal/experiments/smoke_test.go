package experiments

import (
	"os"
	"testing"
)

func TestSmokeAll(t *testing.T) {
	o := Options{Budget: 60, ParetoSamples: 80, Fast: true, Seed: 1}
	for _, g := range Generators() {
		t.Run(g.ID, func(t *testing.T) {
			if err := g.Run(os.Stdout, o); err != nil {
				t.Fatal(err)
			}
		})
	}
}
