package experiments

import (
	"fmt"
	"io"
	"math"

	"chrysalis/internal/explore"
	"chrysalis/internal/solar"
	"chrysalis/internal/trace"
	"chrysalis/internal/units"
)

// Fig8 regenerates the solar-panel sizing rationality study: with the
// capacitor fixed at 100 µF, sweep the panel area for each Table IV
// application and report the energy breakdown (checkpoint overhead
// shrinks as panels grow) and system efficiency (which collapses once
// the harvest outruns the inference).
func Fig8(w io.Writer, o Options) error {
	o = o.withDefaults()
	const cap100 = 100e-6
	panels := []units.AreaCM2{2, 4, 8, 16, 24, 30}

	for _, app := range o.existingApps() {
		t := trace.NewTable(
			fmt.Sprintf("Figure 8 — %s, capacitor fixed at 100uF (bright)", app.Name),
			"Panel", "E2E lat", "Infer E", "Ckpt E", "Static E", "Leak E", "Sys eff", "lat*sp")
		sc := explore.Scenario{
			Workload: app, Platform: explore.MSP,
			Objective: explore.Lat, Envs: brightOnly(),
		}
		bestLatSP := math.Inf(1)
		var bestPanel units.AreaCM2
		var prevCkptFrac float64 = -1
		ckptShrinks := true
		for _, sp := range panels {
			cand := explore.Candidate{PanelArea: sp, Cap: cap100}
			run, err := simBreakdown(sc, cand, solar.Bright())
			if err != nil {
				t.AddRow(sp.String(), "unmappable", "-", "-", "-", "-", "-", "-")
				continue
			}
			if !run.Completed {
				t.AddRow(sp.String(), "unavailable", "-", "-", "-", "-", "-", "-")
				continue
			}
			b := run.Breakdown
			latsp := float64(run.E2ELatency) * float64(sp)
			if latsp < bestLatSP {
				bestLatSP = latsp
				bestPanel = sp
			}
			total := float64(b.Delivered())
			ckptFrac := float64(b.Ckpt) / total
			if prevCkptFrac >= 0 && ckptFrac > prevCkptFrac*1.25 {
				ckptShrinks = false
			}
			prevCkptFrac = ckptFrac
			t.AddRow(sp.String(), fmtLat(run.E2ELatency),
				b.Infer.String(), b.Ckpt.String(), b.Static.String(), b.CapLeakage.String(),
				fmt.Sprintf("%.1f%%", run.SystemEfficiency*100), fmtVal(latsp))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "preferable panel for %s (min lat*sp): %v\n", app.Name, bestPanel)
		if ckptShrinks {
			fmt.Fprintln(w, "checkpoint share decreases with panel size, as the paper observes.")
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9 regenerates the capacitor sizing rationality study: with the
// panel fixed at 8 cm², sweep the capacitor for each application.
// Small capacitors inflate checkpoint overhead (frequent cycles);
// large ones leak (Cap. Leakage); the preferable size minimizes
// latency.
func Fig9(w io.Writer, o Options) error {
	o = o.withDefaults()
	const panel8 units.AreaCM2 = 8
	caps := []units.Capacitance{10e-6, 47e-6, 100e-6, 470e-6, 1e-3, 4.7e-3, 10e-3}

	for _, app := range o.existingApps() {
		t := trace.NewTable(
			fmt.Sprintf("Figure 9 — %s, solar panel fixed at 8cm² (bright)", app.Name),
			"Capacitor", "E2E lat", "Ckpt E", "Cap leakage", "Cycles", "Sys eff")
		sc := explore.Scenario{
			Workload: app, Platform: explore.MSP,
			Objective: explore.Lat, Envs: brightOnly(),
		}
		bestLat := math.Inf(1)
		var bestCap units.Capacitance
		var firstCkpt, lastLeak units.Energy
		for i, c := range caps {
			cand := explore.Candidate{PanelArea: panel8, Cap: c}
			run, err := simBreakdown(sc, cand, solar.Bright())
			if err != nil {
				t.AddRow(c.String(), "unmappable", "-", "-", "-", "-")
				continue
			}
			if !run.Completed {
				t.AddRow(c.String(), "unavailable", run.Breakdown.Ckpt.String(),
					run.Breakdown.CapLeakage.String(), fmt.Sprintf("%d", run.PowerCycles), "-")
				continue
			}
			b := run.Breakdown
			if l := float64(run.E2ELatency); l < bestLat {
				bestLat = l
				bestCap = c
			}
			if i == 0 {
				firstCkpt = b.Ckpt
			}
			lastLeak = b.CapLeakage
			t.AddRow(c.String(), fmtLat(run.E2ELatency), b.Ckpt.String(), b.CapLeakage.String(),
				fmt.Sprintf("%d", run.PowerCycles), fmt.Sprintf("%.1f%%", run.SystemEfficiency*100))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "preferable capacitor for %s (min latency): %v\n", app.Name, bestCap)
		if firstCkpt > 0 && lastLeak > 0 {
			fmt.Fprintln(w, "small caps pay checkpoint overhead; large caps pay leakage — the paper's U-shape.")
		}
		fmt.Fprintln(w)
	}
	return nil
}
