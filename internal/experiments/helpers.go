package experiments

import (
	"fmt"
	"math"

	"chrysalis/internal/core"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// coreComponents adapts the Table III inventory for rendering.
func coreComponents() [][4]string {
	var rows [][4]string
	for _, c := range core.Components() {
		rows = append(rows, [4]string{c.Subsystem, c.Component, c.Realization, c.BaseModel})
	}
	return rows
}

// mspHW returns the existing-AuT platform constants.
func mspHW() dataflow.HW { return msp430.Config{}.HW() }

// plansOf extracts the per-layer plans from an evaluation.
func plansOf(ev explore.Evaluation) []intermittent.Plan {
	plans := make([]intermittent.Plan, len(ev.Mappings))
	for i, m := range ev.Mappings {
		plans[i] = m.Plan
	}
	return plans
}

// evaluateConservative evaluates a candidate the way pre-CHRYSALIS
// systems ran: the finest feasible tiling per layer (HAWAII-style
// "checkpoint every footprint"), with no hardware-aware tile sizing.
// It is the iNAS-style reference the paper compares against in
// Figures 6 and 7.
func evaluateConservative(sc explore.Scenario, cand explore.Candidate) (explore.Evaluation, units.Seconds, error) {
	scd := sc
	if scd.Envs == nil {
		scd.Envs = []solar.Environment{solar.Bright(), solar.Dark()}
	}
	hw := mspHW()
	w := sc.Workload
	var plans []intermittent.Plan
	for _, l := range w.Layers {
		var chosen *intermittent.Plan
		// Walk candidate tilings from finest to coarsest and keep the
		// first that fits VM.
		for _, part := range []dataflow.Partition{dataflow.ByChannel, dataflow.BySpatial} {
			cands := dataflow.CandidateNTiles(l, part)
			for i := len(cands) - 1; i >= 0; i-- {
				m := dataflow.Mapping{Dataflow: dataflow.OS, Partition: part, NTile: cands[i]}
				p, err := intermittent.PlanLayer(l, w.ElemBytes, m, hw, sc.Rexc)
				if err != nil {
					continue
				}
				if chosen == nil || p.Cost.NTileEffective > chosen.Cost.NTileEffective {
					cp := p
					chosen = &cp
				}
				break // finest feasible for this partition found
			}
		}
		if chosen == nil {
			return explore.Evaluation{}, 0, fmt.Errorf("experiments: layer %s unmappable", l.Name)
		}
		plans = append(plans, *chosen)
	}

	ev := explore.Evaluation{Candidate: cand, Feasible: true}
	var latSum float64
	for _, env := range scd.Envs {
		es, err := energy.NewSolar(energy.Spec{PanelArea: cand.PanelArea, Cap: cand.Cap}, env)
		if err != nil {
			return explore.Evaluation{}, 0, err
		}
		r := sim.Analytic(es, plans)
		ev.PerEnv = append(ev.PerEnv, explore.EnvResult{
			Env: env.Name(), Latency: r.E2ELatency, Energy: r.Breakdown.Delivered(),
			CkptEnergy: r.Breakdown.Ckpt, Efficiency: r.SystemEfficiency, Feasible: r.Completed,
		})
		if !r.Completed {
			ev.Feasible = false
			continue
		}
		latSum += float64(r.E2ELatency)
	}
	if !ev.Feasible {
		return ev, units.Seconds(math.Inf(1)), nil
	}
	ev.AvgLatency = units.Seconds(latSum / float64(len(scd.Envs)))
	ev.LatSP = float64(ev.AvgLatency) * float64(cand.PanelArea)
	return ev, ev.AvgLatency, nil
}
