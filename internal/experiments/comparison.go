package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
	"chrysalis/internal/explore"
	"chrysalis/internal/trace"
)

// fig10Cell is one (network, arch, objective, method) search outcome.
type fig10Cell struct {
	workload  string
	arch      accel.Arch
	objective explore.Objective
	baseline  explore.Baseline
	value     float64
	outcome   *explore.Outcome
}

// runFig10 executes the full Figure 10 grid — one independent search
// per (network, arch, objective, method) cell, fanned out across
// workers.
func runFig10(o Options) ([]fig10Cell, error) {
	o = o.withDefaults()

	type job struct {
		idx  int
		sc   explore.Scenario
		b    explore.Baseline
		seed int64
		cell fig10Cell
	}
	var jobs []job
	seed := int64(0)
	for _, wl := range o.futureApps() {
		for _, arch := range accel.Arches() {
			for _, obj := range explore.Objectives() {
				a := arch
				sc := explore.Scenario{
					Workload:  wl,
					Platform:  explore.Accel,
					Objective: obj,
					Arch:      &a,
					MaxPanel:  20, // the paper's SP constraint regime
				}
				for _, b := range explore.Baselines() {
					seed++
					jobs = append(jobs, job{
						idx: len(jobs), sc: sc, b: b, seed: seed,
						cell: fig10Cell{
							workload: wl.Name, arch: arch, objective: obj, baseline: b,
							value: math.Inf(1),
						},
					})
				}
			}
		}
	}

	cells := make([]fig10Cell, len(jobs))
	workers := o.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				cell := j.cell
				out, err := explore.Explore(j.sc, j.b, o.ga(j.seed))
				if err == nil {
					cell.value = out.Value
					cell.outcome = &out
				}
				cells[j.idx] = cell
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return cells, nil
}

// Fig10 regenerates the baseline comparison: for every network ×
// architecture × objective, the best objective value found by
// CHRYSALIS and the six ablated methods of Table VI.
func Fig10(w io.Writer, o Options) error {
	cells, err := runFig10(o)
	if err != nil {
		return err
	}
	return renderFig10(w, cells)
}

func renderFig10(w io.Writer, cells []fig10Cell) error {
	// Group rows by (workload, arch); columns are methods per objective.
	type key struct {
		wl  string
		ar  accel.Arch
		obj explore.Objective
	}
	grid := map[key]map[explore.Baseline]float64{}
	for _, c := range cells {
		k := key{c.workload, c.arch, c.objective}
		if grid[k] == nil {
			grid[k] = map[explore.Baseline]float64{}
		}
		grid[k][c.baseline] = c.value
	}

	methods := explore.Baselines()
	for _, obj := range explore.Objectives() {
		headers := []string{"Network", "Arch"}
		for _, m := range methods {
			headers = append(headers, m.String())
		}
		t := trace.NewTable(
			fmt.Sprintf("Figure 10 — objective %q (lower is better; %s)", obj, objectiveUnits(obj)),
			headers...)
		wins, rows := 0, 0
		for _, c := range cells {
			if c.objective != obj || c.baseline != explore.Full {
				continue
			}
			k := key{c.workload, c.arch, obj}
			row := []string{c.workload, c.arch.String()}
			full := grid[k][explore.Full]
			best := math.Inf(1)
			for _, m := range methods {
				v := grid[k][m]
				cell := fmtVal(v)
				if math.IsInf(v, 1) {
					cell = "inf"
				}
				row = append(row, cell)
				if m != explore.Full && v < best {
					best = v
				}
			}
			rows++
			if full <= best*1.001 {
				wins++
			}
			t.AddRow(row...)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "CHRYSALIS best-or-tied in %d/%d scenarios for %q.\n\n", wins, rows, obj)
	}

	// The paper's two aggregate observations.
	latImp := aggregateImprovement(cells, explore.Lat, explore.WoIA)
	spImp := aggregateImprovement(cells, explore.SP, explore.WoIA)
	if !math.IsNaN(latImp) {
		fmt.Fprintf(w, "Under the SP constraint, full co-design cuts latency by %.1f%% on average vs wo/IA\n", latImp)
	}
	if !math.IsNaN(spImp) {
		fmt.Fprintf(w, "Under the latency constraint, panel area shrinks by %.1f%% on average vs wo/IA\n", spImp)
	}
	return nil
}

func objectiveUnits(o explore.Objective) string {
	switch o {
	case explore.Lat:
		return "seconds"
	case explore.SP:
		return "cm²"
	default:
		return "cm²·s"
	}
}

// aggregateImprovement averages (base-full)/base over scenarios of one
// objective against one baseline.
func aggregateImprovement(cells []fig10Cell, obj explore.Objective, base explore.Baseline) float64 {
	type key struct {
		wl string
		ar accel.Arch
	}
	full := map[key]float64{}
	ref := map[key]float64{}
	for _, c := range cells {
		if c.objective != obj {
			continue
		}
		k := key{c.workload, c.arch}
		switch c.baseline {
		case explore.Full:
			full[k] = c.value
		case base:
			ref[k] = c.value
		}
	}
	var sum float64
	var n int
	for k, f := range full {
		r, ok := ref[k]
		if !ok || math.IsInf(r, 1) || math.IsInf(f, 1) || r <= 0 {
			continue
		}
		sum += (r - f) / r * 100
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Fig11 regenerates the energy-efficiency comparison: E_infer/E_eh of
// the lat*sp winners found by each method.
func Fig11(w io.Writer, o Options) error {
	o = o.withDefaults()
	headers := []string{"Network", "Arch"}
	for _, m := range explore.Baselines() {
		headers = append(headers, m.String())
	}
	t := trace.NewTable("Figure 11 — energy efficiency E_infer/E_eh of lat*sp winners (bright)", headers...)

	seed := int64(100)
	chrysalisSum, chrysalisN := 0.0, 0
	otherSum, otherN := 0.0, 0
	for _, wl := range o.futureApps() {
		for _, arch := range accel.Arches() {
			a := arch
			sc := explore.Scenario{
				Workload: wl, Platform: explore.Accel,
				Objective: explore.LatSP, Arch: &a, MaxPanel: 20,
			}
			row := []string{wl.Name, arch.String()}
			for _, b := range explore.Baselines() {
				seed++
				out, err := explore.Explore(sc, b, o.ga(seed))
				if err != nil {
					row = append(row, "inf")
					continue
				}
				eff := brightEfficiency(out.Best)
				row = append(row, fmt.Sprintf("%.1f%%", eff*100))
				if b == explore.Full {
					chrysalisSum += eff
					chrysalisN++
				} else {
					otherSum += eff
					otherN++
				}
			}
			t.AddRow(row...)
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if chrysalisN > 0 && otherN > 0 {
		fmt.Fprintf(w, "\nmean efficiency: CHRYSALIS %.1f%% vs other methods %.1f%%\n",
			chrysalisSum/float64(chrysalisN)*100, otherSum/float64(otherN)*100)
	}
	return nil
}

func brightEfficiency(ev explore.Evaluation) float64 {
	for _, e := range ev.PerEnv {
		if e.Env == "bright" {
			return e.Efficiency
		}
	}
	return 0
}

// Headline computes the paper's summary claim: the average performance
// improvement of full EA/IA co-design over the ablated design
// methodologies, across the Figure 10 scenarios (the paper reports
// 56.4% on its grid).
func Headline(w io.Writer, o Options) error {
	cells, err := runFig10(o)
	if err != nil {
		return err
	}
	t := trace.NewTable("Headline — average improvement of CHRYSALIS vs each ablation",
		"Baseline", "Avg improvement (lat objective)", "Avg improvement (lat*sp objective)")
	var total float64
	var n int
	for _, b := range explore.Baselines() {
		if b == explore.Full {
			continue
		}
		lat := aggregateImprovement(cells, explore.Lat, b)
		lsp := aggregateImprovement(cells, explore.LatSP, b)
		t.AddRow(b.String(), fmt.Sprintf("%.1f%%", lat), fmt.Sprintf("%.1f%%", lsp))
		for _, v := range []float64{lat, lsp} {
			if !math.IsNaN(v) {
				total += v
				n++
			}
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if n > 0 {
		fmt.Fprintf(w, "\noverall average improvement: %.1f%% (paper reports 56.4%% on its configuration grid)\n",
			total/float64(n))
	}
	return nil
}

// workloadNames is a convenience for the CLI.
func workloadNames() []string { return dnn.Names() }
