// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V): the Figure 2 motivation, the Figure 6 Pareto
// search, the Figure 7 platform validation, the Figure 8/9 rationality
// sweeps, the Figure 10 baseline comparison, the Figure 11 energy
// efficiency analysis, and the headline improvement number. Each
// generator writes human-readable tables/series to an io.Writer;
// cmd/experiments is a thin CLI over this package, and the repository's
// benchmarks call the same functions so that "the code that regenerates
// the paper" is exactly the code that is continuously exercised.
package experiments

import (
	"fmt"
	"io"
	"runtime"

	"chrysalis/internal/dnn"
	"chrysalis/internal/explore"
	"chrysalis/internal/search"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// Options tunes experiment fidelity against runtime.
type Options struct {
	// Budget is the approximate evaluation budget per search
	// (0 ⇒ 400; the paper used 10^4+ points per search on a
	// workstation-hours scale).
	Budget int
	// ParetoSamples is the random-scan size for Figure 6 (0 ⇒ 600).
	ParetoSamples int
	// Seed makes every experiment deterministic.
	Seed int64
	// Fast trims workload sets to keep benchmark iterations short.
	Fast bool
	// Workers runs independent searches (and GA evaluations)
	// concurrently when > 1 (0 ⇒ runtime.NumCPU()).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 400
	}
	if o.ParetoSamples == 0 {
		o.ParetoSamples = 600
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

func (o Options) ga(seed int64) search.GAConfig {
	cfg := search.DefaultGA(o.Seed*1000 + seed)
	pop := 20
	gens := o.Budget / pop
	if gens < 2 {
		gens = 2
	}
	cfg.Population = pop
	cfg.Generations = gens
	return cfg
}

// existingApps returns the Table IV workload list, trimmed under Fast.
func (o Options) existingApps() []dnn.Workload {
	if o.Fast {
		return []dnn.Workload{dnn.SimpleConv(), dnn.HAR()}
	}
	return dnn.ExistingAuT()
}

// futureApps returns the Table V workload list, trimmed under Fast.
func (o Options) futureApps() []dnn.Workload {
	if o.Fast {
		return []dnn.Workload{dnn.HAR(), dnn.ResNet18()}
	}
	return dnn.FutureAuT()
}

// fmtLat renders a latency with infinity handling.
func fmtLat(l units.Seconds) string {
	if l != l || l > 1e18 {
		return "unavailable"
	}
	return l.String()
}

// fmtVal renders an objective value.
func fmtVal(v float64) string {
	return fmt.Sprintf("%.3g", v)
}

// Generator is one experiment regeneration entry point.
type Generator struct {
	ID   string
	Desc string
	Run  func(w io.Writer, o Options) error
}

// Generators lists every table/figure generator in paper order.
func Generators() []Generator {
	return []Generator{
		{"table1", "Qualitative platform survey (Table I)", Table1},
		{"fig2a", "MSP430 vs Eyeriss V1 non-intermittent comparison (Fig. 2a)", Fig2a},
		{"fig2b", "HAWAII-style capacitor sensitivity (Fig. 2b)", Fig2b},
		{"table3", "Supported component setups (Table III)", Table3},
		{"table4", "Existing-AuT design space and applications (Table IV)", Table4},
		{"table5", "Future-AuT design space and applications (Table V)", Table5},
		{"fig6", "Pareto search for existing MSP-based AuT (Fig. 6)", Fig6},
		{"fig7", "Platform validation vs iNAS-style design (Fig. 7)", Fig7},
		{"fig8", "Solar-panel sizing rationality sweep (Fig. 8)", Fig8},
		{"fig9", "Capacitor sizing rationality sweep (Fig. 9)", Fig9},
		{"fig10", "Baseline comparison across networks/archs/objectives (Fig. 10)", Fig10},
		{"fig11", "Energy-efficiency comparison (Fig. 11)", Fig11},
		{"headline", "Average improvement of full co-design (headline 56.4%)", Headline},
		{"ext-policy", "Extension: checkpoint-policy comparison", ExtPolicy},
		{"ext-day", "Extension: day-scale deployment under diurnal light", ExtDayRun},
		{"ext-thermal", "Extension: ambient-temperature coupling", ExtThermal},
		{"ext-robust", "Extension: search robustness across seeds", ExtRobustness},
		{"ext-storage", "Extension: capacitor technology comparison", ExtStorage},
		{"ext-space", "Extension: design-space cardinality", ExtSpace},
		{"ext-lea", "Extension: LEA accelerator ablation", ExtLEA},
	}
}

// ByID finds a generator.
func ByID(id string) (Generator, error) {
	for _, g := range Generators() {
		if g.ID == id {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// All runs every generator in order.
func All(w io.Writer, o Options) error {
	for _, g := range Generators() {
		fmt.Fprintf(w, "\n########## %s — %s ##########\n\n", g.ID, g.Desc)
		if err := g.Run(w, o); err != nil {
			return fmt.Errorf("experiments: %s: %w", g.ID, err)
		}
	}
	return nil
}

// brightOnly is the single-environment list used by sweeps that the
// paper runs under one light condition.
func brightOnly() []solar.Environment { return []solar.Environment{solar.Bright()} }

// iNASCandidate is the reference design the paper compares against in
// Figures 6 and 7: the iNAS operating point (P_in = 6 mW ⇒ 6 cm²
// bright, C = 1 mF) without hardware search.
func iNASCandidate() explore.Candidate {
	return explore.Candidate{PanelArea: explore.FixedPanel, Cap: explore.FixedCap}
}
