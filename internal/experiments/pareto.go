package experiments

import (
	"fmt"
	"io"
	"math"

	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/trace"
	"chrysalis/internal/units"
)

// Fig6 regenerates the Pareto search for the existing MSP-based AuT
// systems: for each Table IV application it scans the (panel,
// capacitor, tiling) space, prints the Pareto front over (panel area,
// average latency), the best lat*sp point, and the improvement over the
// iNAS-style reference configuration.
func Fig6(w io.Writer, o Options) error {
	o = o.withDefaults()
	for _, app := range o.existingApps() {
		sc := explore.Scenario{Workload: app, Platform: explore.MSP, Objective: explore.LatSP}
		points, front, err := explore.ParetoScan(sc, o.ParetoSamples, o.Seed+int64(len(app.Name)))
		if err != nil {
			return err
		}
		t := trace.NewTable(fmt.Sprintf("Figure 6 — Pareto front for %s (%d feasible of %d sampled)",
			app.Name, len(points), o.ParetoSamples),
			"Panel", "Capacitor", "Avg latency", "lat*sp (cm²·s)")
		bestLatSP := math.Inf(1)
		var bestPoint explore.ParetoPoint
		for _, p := range front {
			t.AddRow(p.PanelArea.String(), p.Candidate.Cap.String(), fmtLat(p.Latency), fmtVal(p.LatSP))
		}
		for _, p := range points {
			if p.LatSP < bestLatSP {
				bestLatSP = p.LatSP
				bestPoint = p
			}
		}
		if err := t.Render(w); err != nil {
			return err
		}

		// A true multi-objective pass (NSGA-II) refines the front at a
		// comparable budget.
		cfg := o.ga(int64(len(app.Name)) * 7)
		cfg.Population = 24
		cfg.Generations = o.ParetoSamples / 48
		if cfg.Generations < 4 {
			cfg.Generations = 4
		}
		po, err := explore.ParetoSearch(sc, cfg)
		nsga := po.Front
		if err == nil && len(nsga) > 0 {
			fmt.Fprintf(w, "NSGA-II front: %d points spanning %v..%v panel, %s..%s latency\n",
				len(nsga), nsga[0].PanelArea, nsga[len(nsga)-1].PanelArea,
				fmtLat(nsga[len(nsga)-1].Latency), fmtLat(nsga[0].Latency))
			for _, p := range nsga {
				if p.LatSP < bestLatSP {
					bestLatSP = p.LatSP
					bestPoint = p
				}
			}
		}

		// Reference: the iNAS-style fixed energy design with the
		// conservative checkpoint-everything tiling (the "original
		// system" of the paper's comparison).
		ref, _, err := evaluateConservative(sc, iNASCandidate())
		if err == nil && ref.Feasible {
			imp := (ref.LatSP - bestLatSP) / ref.LatSP * 100
			fmt.Fprintf(w, "best lat*sp: %s at %s → %.1f%% better than the iNAS-style reference (%s)\n\n",
				fmtVal(bestLatSP), bestPoint.Candidate, imp, fmtVal(ref.LatSP))
		} else {
			fmt.Fprintf(w, "best lat*sp: %s at %s (reference infeasible)\n\n", fmtVal(bestLatSP), bestPoint.Candidate)
		}
	}
	return nil
}

// Fig7 regenerates the platform-validation study on a single
// convolution layer: the analytic model ("simulated") against the
// step-based simulator with measurement jitter (the physical-platform
// stand-in), across panel sizes, plus the speedup over the iNAS-style
// fixed design (P_in = 6 mW, C = 1 mF).
func Fig7(w io.Writer, o Options) error {
	o = o.withDefaults()
	app := explore.Scenario{
		Workload:  dnn.SimpleConv(),
		Platform:  explore.MSP,
		Objective: explore.Lat,
		Envs:      brightOnly(),
	}

	t := trace.NewTable("Figure 7 — model vs platform latency for a single conv layer (bright)",
		"Panel", "Capacitor", "Model latency", "Platform latency", "Deviation")
	panels := []units.AreaCM2{2, 4, 6, 8, 10, 15, 20, 30}
	caps := []units.Capacitance{47e-6, 100e-6, 470e-6, 1e-3}

	bestAt := map[units.AreaCM2]float64{}
	var prevModel float64
	trendOK := true
	for _, sp := range panels {
		// Pick the best capacitor for this panel (CHRYSALIS's EH search
		// restricted to the sweep grid for reproducibility).
		bestLat := math.Inf(1)
		var bestCand explore.Candidate
		var bestEval explore.Evaluation
		for _, c := range caps {
			cand := explore.Candidate{PanelArea: sp, Cap: c}
			ev, err := explore.EvaluateCandidate(app, cand)
			if err != nil || !ev.Feasible {
				continue
			}
			if l := float64(ev.PerEnv[0].Latency); l < bestLat {
				bestLat = l
				bestCand = cand
				bestEval = ev
			}
		}
		if math.IsInf(bestLat, 1) {
			t.AddRow(sp.String(), "-", "unavailable", "unavailable", "-")
			continue
		}
		// "Platform": step simulation with 5% measurement jitter.
		es, err := energy.NewSolar(energy.Spec{PanelArea: bestCand.PanelArea, Cap: bestCand.Cap}, solar.Bright())
		if err != nil {
			return err
		}
		run, err := sim.Run(sim.Config{
			Energy: es, HW: mspHW(), Plans: plansOf(bestEval),
			Jitter: 0.05, Seed: uint64(o.Seed) + uint64(sp*10),
		})
		if err != nil {
			return err
		}
		dev := "-"
		if run.Completed {
			dev = fmt.Sprintf("%+.1f%%", (float64(run.E2ELatency)/bestLat-1)*100)
		}
		t.AddRow(sp.String(), bestCand.Cap.String(),
			fmtLat(units.Seconds(bestLat)), fmtLat(run.E2ELatency), dev)
		bestAt[sp] = bestLat
		if prevModel > 0 && bestLat > prevModel*1.02 {
			trendOK = false
		}
		prevModel = bestLat
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// iNAS-style reference: fixed 6 cm², 1 mF, conservative tiling.
	ref, _, err := evaluateConservative(app, iNASCandidate())
	if err != nil {
		return err
	}
	refLat := float64(ref.PerEnv[0].Latency)
	if same, ok := bestAt[6]; ok && ref.Feasible {
		fmt.Fprintf(w, "\nCHRYSALIS @ 6cm² is %.1f%% faster than the iNAS-style design at the same panel size.\n",
			(refLat-same)/refLat*100)
	}
	if big, ok := bestAt[15]; ok && ref.Feasible {
		fmt.Fprintf(w, "CHRYSALIS @ 15cm² is %.1f%% faster in latency than the iNAS-style design.\n",
			(refLat-big)/refLat*100)
	}
	if trendOK {
		fmt.Fprintln(w, "Latency decreases monotonically with panel size in both model and platform runs,")
		fmt.Fprintln(w, "matching the paper's trend agreement between simulation and measurement.")
	}
	return nil
}
