package experiments

import (
	"fmt"
	"io"

	"chrysalis/internal/accel"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/explore"
	"chrysalis/internal/msp430"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/trace"
	"chrysalis/internal/units"
)

// Table1 reproduces the qualitative platform survey. The rows are the
// published investigation; the CHRYSALIS row is what this repository
// implements.
func Table1(w io.Writer, o Options) error {
	t := trace.NewTable("Table I — Investigation into existing AuT platforms",
		"AuT design methodology", "Energy design", "Inference design", "Scalability", "Sustainability")
	t.AddRow("WISPCam, Botoks", "yes", "no", "no", "no")
	t.AddRow("SONIC, RAD", "no", "yes", "no", "no")
	t.AddRow("HAWAII, Stateful", "no", "yes", "no", "no")
	t.AddRow("Protean", "yes", "no", "no", "yes")
	t.AddRow("CHRYSALIS (this repo)", "yes", "yes", "yes", "yes")
	return t.Render(w)
}

// modelWorkloadOn runs a workload through the cost model on given HW
// with minimal tiling (non-intermittent execution).
func modelWorkloadOn(wl dnn.Workload, hw dataflow.HW, convOnly bool) (units.Seconds, units.Energy, int64, error) {
	var (
		tt   units.Seconds
		te   units.Energy
		macs int64
	)
	for _, l := range wl.Layers {
		if convOnly && l.Kind != dnn.Conv2D {
			continue
		}
		_, c, err := dataflow.MinTileMapping(l, wl.ElemBytes, dataflow.OS, hw)
		if err != nil {
			return 0, 0, 0, err
		}
		tt += c.TDf
		te += c.EDf
		macs += c.MACs
	}
	te += dataflow.StaticEnergy(hw, tt)
	return tt, te, macs, nil
}

// Fig2a regenerates the motivational comparison: the MSP430/HAWAII
// platform running MNIST-CNN against the Eyeriss V1 chip running
// AlexNet (conv layers, matching the published MOPs), model vs
// published.
func Fig2a(w io.Writer, o Options) error {
	t := trace.NewTable("Figure 2(a) — intermittent platform vs edge accelerator (non-intermittent)",
		"Inference HW", "Test model", "Metric", "Model", "Published")

	// MSP430 row.
	mspHW := msp430.Config{}.HW()
	mt, me, mmacs, err := modelWorkloadOn(dnn.MNISTCNN(), mspHW, false)
	if err != nil {
		return err
	}
	mpub := msp430.PublishedMNIST()
	t.AddRow("MSP430 (HAWAII)", "MNIST-CNN", "Time/input", mt.String(), mpub.TimePerInput.String())
	t.AddRow("", "", "MOPs", fmt.Sprintf("%.3f", float64(2*mmacs)/1e6), fmt.Sprintf("%.3f", mpub.MOPs))
	t.AddRow("", "", "Power", units.DivET(me, mt).String(), mpub.Power.String())
	t.AddRow("", "", "Energy", me.String(), mpub.Energy.String())

	// Eyeriss row.
	eCfg := accel.EyerissV1()
	eHW, err := eCfg.HW(dataflow.OS)
	if err != nil {
		return err
	}
	et, ee, emacs, err := modelWorkloadOn(dnn.AlexNet(), eHW, true)
	if err != nil {
		return err
	}
	epub := accel.PublishedEyerissAlexNet()
	t.AddRow("Eyeriss V1", "AlexNet (convs)", "Time/input", et.String(), epub.TimePerInput.String())
	t.AddRow("", "", "MOPs", fmt.Sprintf("%.0f", float64(2*emacs)/1e6), fmt.Sprintf("%.0f", epub.MOPs))
	t.AddRow("", "", "Power", units.DivET(ee, et).String(), epub.Power.String())
	t.AddRow("", "", "Energy", ee.String(), epub.Energy.String())

	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nTakeaway: the accelerator is ~%.0fx faster per inference but draws ~%.0fx more power\n"+
		"than the MCU — too much for naive energy harvesting (the AuT gap).\n",
		float64(mt)/float64(et)*float64(2663)/float64(1.608)/1000, // ops-normalized speed gap
		float64(epub.Power)/float64(mpub.Power))
	return nil
}

// Fig2b regenerates the capacitor-sensitivity study: HAWAII-style
// MSP430 inference under three applications across capacitor sizes,
// with unavailability when leakage exceeds harvest.
func Fig2b(w io.Writer, o Options) error {
	o = o.withDefaults()
	t := trace.NewTable("Figure 2(b) — throughput vs capacitor size (MSP430, 2cm² panel, dark ambient)",
		"App", "Capacitor", "E2E latency", "Throughput (inf/h)")
	apps := []dnn.Workload{dnn.CNNb(), dnn.CNNs(), dnn.FCNet()}
	caps := []units.Capacitance{10e-6, 100e-6, 1e-3, 10e-3}
	env := solar.Dark()

	for _, app := range apps {
		sc := explore.Scenario{
			Workload:  app,
			Platform:  explore.MSP,
			Objective: explore.Lat,
			Envs:      []solar.Environment{env},
		}
		for _, c := range caps {
			cand := explore.Candidate{PanelArea: 2, Cap: c}
			ev, err := explore.EvaluateCandidate(sc, cand)
			if err != nil || !ev.Feasible {
				t.AddRow(app.Name, c.String(), "unavailable (leakage)", "0")
				continue
			}
			lat := ev.PerEnv[0].Latency
			t.AddRow(app.Name, c.String(), fmtLat(lat), fmt.Sprintf("%.1f", 3600/float64(lat)))
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nTakeaway: oversizing the capacitor trades throughput for leakage until the")
	fmt.Fprintln(w, "system becomes unavailable — capacitor size must be searched, not assumed.")
	return nil
}

// Table3 prints the supported component inventory.
func Table3(w io.Writer, o Options) error {
	t := trace.NewTable("Table III — supported AuT component setups",
		"Subsystem", "Component", "Realization", "Base model")
	for _, c := range coreComponents() {
		t.AddRow(c[0], c[1], c[2], c[3])
	}
	return t.Render(w)
}

// Table4 prints the existing-AuT design space and application stats.
func Table4(w io.Writer, o Options) error {
	ds := trace.NewTable("Table IV — design space (existing AuT)",
		"Parameter", "Type", "Potential values")
	ds.AddRow("Solar panel size", "float", "1cm² to 30cm²")
	ds.AddRow("Capacitor size", "float", "1uF to 10mF")
	ds.AddRow("Tiling size", "list(int)", "divisors of each layer's partition dimension")
	if err := ds.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return workloadTable(w, "Table IV — applications", dnn.ExistingAuT(), 1e3, "kFLOPs")
}

// Table5 prints the future-AuT design space and application stats.
func Table5(w io.Writer, o Options) error {
	ds := trace.NewTable("Table V — design space (future AuT with accelerators)",
		"Parameter", "Type", "Potential values")
	ds.AddRow("Solar panel size", "float", "1cm² to 30cm²")
	ds.AddRow("Capacitor size", "float", "1uF to 10mF")
	ds.AddRow("Architecture", "union", "TPU, Eyeriss")
	ds.AddRow("PE number", "int", "1 to 168")
	ds.AddRow("PE cache size", "int", "128 bytes to 2KB")
	if err := ds.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return workloadTable(w, "Table V — applications", dnn.FutureAuT(), 1e9, "GFLOPs")
}

func workloadTable(w io.Writer, title string, wls []dnn.Workload, flopScale float64, flopUnit string) error {
	t := trace.NewTable(title, "Application", "Input", "Layers", "Params", flopUnit)
	for _, wl := range wls {
		t.AddRow(wl.Name,
			fmt.Sprintf("(%d,%d,%d)", wl.Input[0], wl.Input[1], wl.Input[2]),
			fmt.Sprintf("%d", wl.WeightLayers()),
			fmt.Sprintf("%.1fk", float64(wl.TotalParams())/1e3),
			fmt.Sprintf("%.1f", float64(wl.TotalMACs())/flopScale))
	}
	return t.Render(w)
}

// simBreakdown runs the step simulator on a candidate under one
// environment and returns the result (shared by Fig. 8/9).
func simBreakdown(sc explore.Scenario, cand explore.Candidate, env solar.Environment) (sim.Result, error) {
	scOne := sc
	scOne.Envs = []solar.Environment{env}
	ev, err := explore.EvaluateCandidate(scOne, cand)
	if err != nil {
		return sim.Result{}, err
	}
	plans := plansOf(ev)
	es, err := energy.NewSolar(energy.Spec{PanelArea: cand.PanelArea, Cap: cand.Cap}, env)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(sim.Config{Energy: es, HW: mspHW(), Plans: plans, Step: 2e-3})
}
