package audit

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// harConfig mirrors the sim package's harSetup: HAR on the MSP430 with
// an 8 cm² panel — the same scenario the golden trace test uses.
func harConfig(t *testing.T, capC units.Capacitance, env solar.Environment) sim.Config {
	t.Helper()
	es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: capC}, env)
	if err != nil {
		t.Fatal(err)
	}
	hw := msp430.Config{}.HW()
	budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
	if math.IsInf(float64(budget), 1) {
		budget = 1
	}
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05, intermittent.FixedBudget(budget*0.9))
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Energy: es, HW: hw, Plans: plans}
}

func TestAuditPassesOnCleanRun(t *testing.T) {
	for _, env := range []solar.Environment{solar.Bright(), solar.Dark()} {
		cfg := harConfig(t, 100e-6, env)
		rec := sim.NewRecorder(0)
		cfg.Record = rec
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("%s: run should complete", env.Name())
		}
		rep := Run(rec, Options{})
		if !rep.OK() {
			t.Fatalf("%s: clean run should audit clean, got %s\nfirst findings: %+v",
				env.Name(), rep, rep.Findings[:min(3, len(rep.Findings))])
		}
		if rep.Cycles == 0 || rep.Checks == 0 {
			t.Fatalf("%s: audit examined nothing: %s", env.Name(), rep)
		}
	}
}

// TestAuditGoldenLedger pins the HAR/bright per-cycle ledger (the same
// scenario as the sim package's golden trace). Regenerate with
// `go test ./internal/audit/ -run Golden -update` after intentional
// simulator changes.
func TestAuditGoldenLedger(t *testing.T) {
	cfg := harConfig(t, 100e-6, solar.Bright())
	rec := sim.NewRecorder(0)
	cfg.Record = rec
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	rep := Run(rec, Options{})
	if !rep.OK() {
		t.Fatalf("golden scenario must audit clean: %s", rep)
	}

	type golden struct {
		Report *Report           `json:"report"`
		Cycles []sim.CycleLedger `json:"cycles"`
	}
	got, err := json.MarshalIndent(golden{Report: rep, Cycles: rec.Cycles()}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "har_bright_ledger.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("ledger diverged from golden %s — rerun with -update if intended.\ngot:\n%s", path, clip(string(got), 2000))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n…"
}

// TestAuditCatchesCorruptedLeakage is the differential test proving the
// audit has teeth: triple the capacitor's actual leakage coefficient
// behind the spec's back and the leak-model reconstruction must flag
// every cycle where leakage matters.
func TestAuditCatchesCorruptedLeakage(t *testing.T) {
	cfg := harConfig(t, 100e-6, solar.Bright())
	// The spec still says DefaultKcap; the component now leaks 3×.
	cfg.Energy.Cap.Kcap *= 3
	rec := sim.NewRecorder(0)
	cfg.Record = rec
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	rep := Run(rec, Options{})
	if rep.OK() {
		t.Fatal("audit passed a run whose leakage contradicts its spec")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Check == "leak-model" {
			found = true
			if f.Detail == "" || f.Delta == 0 {
				t.Errorf("leak-model finding lacks detail: %+v", f)
			}
		}
	}
	if !found {
		t.Fatalf("expected leak-model findings, got %+v", rep.Findings)
	}
	if rep.MaxLeakRelErr < 0.5 {
		t.Errorf("3× leakage should show a large relative error, got %g", rep.MaxLeakRelErr)
	}
}

// TestAuditCatchesDoctoredLedger corrupts a recorded flow directly and
// checks the balance equations notice.
func TestAuditNilAndEmpty(t *testing.T) {
	if rep := Run(nil, Options{}); !rep.OK() {
		t.Errorf("nil recorder should audit clean: %s", rep)
	}
	if rep := Run(sim.NewRecorder(16), Options{}); !rep.OK() || rep.Cycles != 0 {
		t.Errorf("empty recorder should audit clean with zero cycles: %s", rep)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Cycles: 3, Checks: 12}
	if !strings.Contains(rep.String(), "PASS") {
		t.Errorf("clean report should say PASS: %s", rep)
	}
	rep.Findings = append(rep.Findings, Finding{Check: "cap-balance"})
	if !strings.Contains(rep.String(), "FAIL") {
		t.Errorf("dirty report should say FAIL: %s", rep)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
