// Package audit checks that a simulated run obeyed the physics it
// claims to model. It folds the flight recorder's per-cycle energy
// ledgers (internal/sim.Recorder) into structured conservation and
// invariant checks:
//
//   - capacitor balance: E_charged = E_load + E_leak + E_drain + ΔE_cap
//     per power cycle, exact up to float rounding;
//   - harvest identity: E_harvested = E_charged + E_conversion + E_spill;
//   - leakage reconstruction: the recorded leakage must match the
//     independent k_cap·C·∫V²dt integral of Eq. 2 — the check with
//     teeth, because it recomputes the flow from the spec constants and
//     the voltage trajectory instead of trusting the simulator's sum;
//   - voltage bounds: 0 ≤ V ≤ V_rated always, and V > U_off at every
//     powered step boundary (in-step checkpoint/resume dips excluded);
//   - continuity: cycle ledgers chain stored energy exactly and never
//     run backwards in time; cumulative channels never decrease;
//   - event ordering: violations the recorder flagged inline
//     (checkpoint-before-brownout, power transitions) become findings.
//
// A passing audit means the evaluator's numbers can be trusted; a
// failing one localizes the broken cycle and the size of the error.
package audit

import (
	"fmt"
	"math"

	"chrysalis/internal/sim"
)

// Options tunes the audit tolerances. The zero value selects defaults.
type Options struct {
	// RelTol is the relative tolerance of the exact-by-construction
	// balance checks (default 1e-9 — float rounding headroom only).
	RelTol float64
	// AbsTolJ is the absolute floor of the balance checks in joules
	// (default 1e-12, picojoule scale).
	AbsTolJ float64
	// LeakRelTol is the relative tolerance of the leakage
	// reconstruction (default 1e-6). The recorder integrates V² at the
	// capacitor's exact pre-discharge voltage, so the reconstruction
	// differs from the recorded debit only by summation order — any
	// real mismatch means the leakage constant or integrator is broken.
	LeakRelTol float64
	// VoltSlack is the allowed fractional undershoot of U_off while
	// powered (default 1e-9). The gate switches off at v <= U_off and
	// the recorder excludes in-step drain dips, so powered end-of-step
	// samples sit strictly above the threshold; the slack only absorbs
	// float rounding.
	VoltSlack float64
}

func (o Options) withDefaults() Options {
	if o.RelTol == 0 {
		o.RelTol = 1e-9
	}
	if o.AbsTolJ == 0 {
		o.AbsTolJ = 1e-12
	}
	if o.LeakRelTol == 0 {
		o.LeakRelTol = 1e-6
	}
	if o.VoltSlack == 0 {
		o.VoltSlack = 1e-9
	}
	return o
}

// Finding is one failed check.
type Finding struct {
	// Check identifies the failed invariant (e.g. "cap-balance",
	// "leak-model", "voltage-floor").
	Check string `json:"check"`
	// Cycle is the ledger index the finding localizes to (-1 when the
	// finding is not cycle-specific).
	Cycle int `json:"cycle"`
	// TimeS anchors the finding on the simulated timeline.
	TimeS float64 `json:"t_s"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
	// Delta quantifies the error (joules or volts depending on Check).
	Delta float64 `json:"delta"`
}

// Report is the outcome of one audit pass.
type Report struct {
	// Cycles is the number of power-cycle ledgers examined.
	Cycles int `json:"cycles"`
	// Checks counts the individual assertions evaluated.
	Checks int `json:"checks"`
	// Findings lists every failed check (empty on a clean run).
	Findings []Finding `json:"findings"`
	// MaxBalanceErrJ is the worst capacitor-balance residual seen, even
	// if within tolerance — a drift canary for future sim changes.
	MaxBalanceErrJ float64 `json:"max_balance_err_j"`
	// MaxLeakRelErr is the worst relative leakage-reconstruction error.
	MaxLeakRelErr float64 `json:"max_leak_rel_err"`
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return r != nil && len(r.Findings) == 0 }

// String summarizes the report for logs and CLI output.
func (r *Report) String() string {
	if r == nil {
		return "audit: no report"
	}
	status := "PASS"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d findings)", len(r.Findings))
	}
	return fmt.Sprintf("audit %s: %d cycles, %d checks, max balance err %.3g J, max leak rel err %.3g",
		status, r.Cycles, r.Checks, r.MaxBalanceErrJ, r.MaxLeakRelErr)
}

// Run audits a recorder snapshot. A nil or empty recorder yields an
// empty passing report (nothing recorded, nothing to contradict).
func Run(rec *sim.Recorder, opts Options) *Report {
	o := opts.withDefaults()
	// Findings starts non-nil so a clean report marshals as "findings":
	// [] rather than null — kinder to JSON clients.
	rep := &Report{Findings: []Finding{}}
	if rec == nil {
		return rep
	}
	spec := rec.EnergySpec()
	cycles := rec.Cycles()
	rep.Cycles = len(cycles)

	fail := func(check string, cycle int, t float64, delta float64, format string, args ...any) {
		rep.Findings = append(rep.Findings, Finding{
			Check: check, Cycle: cycle, TimeS: t, Delta: delta,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	uOff := float64(spec.PMIC.UOff)
	rated := float64(spec.Rated)
	kC := spec.Kcap * float64(spec.Cap)

	for i, c := range cycles {
		// 1. Capacitor-side balance (exact by construction).
		flow := math.Abs(c.ChargedJ) + math.Abs(c.DeliveredJ) + math.Abs(c.LeakedJ) + math.Abs(c.DrainedJ)
		tol := o.RelTol*flow + o.AbsTolJ
		bal := c.ChargedJ - c.DeliveredJ - c.LeakedJ - c.DrainedJ - (c.EndStoredJ - c.StartStoredJ)
		rep.Checks++
		if math.Abs(bal) > tol {
			fail("cap-balance", c.Index, c.EndS, bal,
				"cycle %d: charged %.6g J ≠ delivered %.6g + leaked %.6g + drained %.6g + ΔE %.6g (residual %.3g J, tol %.3g)",
				c.Index, c.ChargedJ, c.DeliveredJ, c.LeakedJ, c.DrainedJ, c.EndStoredJ-c.StartStoredJ, bal, tol)
		}
		if math.Abs(bal) > rep.MaxBalanceErrJ {
			rep.MaxBalanceErrJ = math.Abs(bal)
		}

		// 2. Harvest-side identity.
		htol := o.RelTol*math.Abs(c.HarvestedJ) + o.AbsTolJ
		hbal := c.HarvestedJ - c.ChargedJ - c.ConversionLossJ - c.SpilledJ
		rep.Checks++
		if math.Abs(hbal) > htol {
			fail("harvest-identity", c.Index, c.EndS, hbal,
				"cycle %d: harvested %.6g J ≠ charged %.6g + conversion loss %.6g + spilled %.6g (residual %.3g J)",
				c.Index, c.HarvestedJ, c.ChargedJ, c.ConversionLossJ, c.SpilledJ, hbal)
		}

		// 3. Leakage reconstruction from Eq. 2: E_leak ≈ k_cap·C·∫V²dt.
		expected := kC * c.VSqIntegral
		scale := math.Max(math.Abs(c.LeakedJ), math.Abs(expected))
		rep.Checks++
		if scale > o.AbsTolJ {
			rel := math.Abs(c.LeakedJ-expected) / scale
			if rel > rep.MaxLeakRelErr {
				rep.MaxLeakRelErr = rel
			}
			if rel > o.LeakRelTol {
				fail("leak-model", c.Index, c.EndS, c.LeakedJ-expected,
					"cycle %d: recorded leakage %.6g J vs k_cap·C·∫V²dt = %.6g J (rel err %.3g > %.3g) — leakage constant or integrator broken",
					c.Index, c.LeakedJ, expected, rel, o.LeakRelTol)
			}
		}

		// 4. Voltage bounds.
		rep.Checks++
		if c.MaxV > rated*(1+1e-9) {
			fail("voltage-ceiling", c.Index, c.EndS, c.MaxV-rated,
				"cycle %d: voltage peaked at %.4g V above rated %.4g V", c.Index, c.MaxV, rated)
		}
		rep.Checks++
		if c.MinV < -1e-12 {
			fail("voltage-floor", c.Index, c.EndS, c.MinV,
				"cycle %d: voltage went negative (%.4g V)", c.Index, c.MinV)
		}
		if c.OnSamples > 0 {
			rep.Checks++
			floor := uOff * (1 - o.VoltSlack)
			if c.MinVOn < floor {
				fail("voltage-on-floor", c.Index, c.EndS, c.MinVOn-uOff,
					"cycle %d: powered voltage dipped to %.4g V, below U_off %.4g V − slack", c.Index, c.MinVOn, uOff)
			}
		}

		// 5. Timeline and stored-energy continuity.
		rep.Checks++
		if c.EndS < c.StartS {
			fail("time-order", c.Index, c.StartS, c.EndS-c.StartS,
				"cycle %d: ends at %.6g s before it starts at %.6g s", c.Index, c.EndS, c.StartS)
		}
		if i > 0 {
			prev := cycles[i-1]
			rep.Checks += 2
			if c.StartS < prev.EndS {
				fail("time-order", c.Index, c.StartS, c.StartS-prev.EndS,
					"cycle %d starts at %.6g s before cycle %d ended at %.6g s", c.Index, c.StartS, prev.Index, prev.EndS)
			}
			if c.StartStoredJ != prev.EndStoredJ {
				fail("stored-continuity", c.Index, c.StartS, c.StartStoredJ-prev.EndStoredJ,
					"cycle %d starts with %.6g J stored but cycle %d ended with %.6g J", c.Index, c.StartStoredJ, prev.Index, prev.EndStoredJ)
			}
		}
	}

	// 6. Monotone cumulative waveform channels: harvested and
	// checkpoint energy only ever accumulate. (Compute/NVM-IO may dip
	// when a brownout reclassifies in-flight work as wasted.)
	w := rec.Waveform()
	for _, name := range []string{"e_harvest", "e_ckpt"} {
		ch := w.Channel(name)
		if ch == nil {
			continue
		}
		prev := math.Inf(-1)
		prevT := math.Inf(-1)
		rep.Checks++
		for _, p := range ch.Points {
			if p.T <= prevT {
				fail("waveform-time", -1, p.T, p.T-prevT, "channel %s: bin at %.6g s not after %.6g s", name, p.T, prevT)
				break
			}
			prevT = p.T
			if p.Last < prev-o.AbsTolJ {
				fail("monotone-"+name, -1, p.T, p.Last-prev,
					"channel %s fell from %.6g J to %.6g J", name, prev, p.Last)
				break
			}
			prev = p.Last
		}
	}

	// 7. Event-stream invariants flagged inline by the recorder.
	viol, dropped := rec.Violations()
	rep.Checks++
	for _, v := range viol {
		fail("event-order", -1, v.TimeS, 0, "%s", v.Msg)
	}
	if dropped > 0 {
		fail("event-order", -1, 0, float64(dropped), "%d further event-order violations dropped", dropped)
	}
	return rep
}
