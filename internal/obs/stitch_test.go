package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRingOverflowCounted is the regression test for the silent-drop
// bug: overflowing the ring must grow the per-ring and process-wide
// dropped counters and mark the export truncated.
func TestRingOverflowCounted(t *testing.T) {
	const capacity = 8
	before := TraceDroppedTotal()
	tr := NewTrace(capacity)
	for i := 0; i < capacity*3; i++ {
		tr.InstantAt("flood", "tick", float64(i))
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("ring holds %d events, want %d", got, capacity)
	}
	if got, want := tr.Dropped(), int64(capacity*2); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	if delta := TraceDroppedTotal() - before; delta < int64(capacity*2) {
		t.Fatalf("TraceDroppedTotal grew by %d, want >= %d", delta, capacity*2)
	}

	out := decode(t, tr)
	if out.Metadata == nil {
		t.Fatal("truncated export must carry metadata")
	}
	if v, ok := out.Metadata["truncated"].(bool); !ok || !v {
		t.Fatalf("metadata truncated = %v, want true", out.Metadata["truncated"])
	}
	if v, ok := out.Metadata["dropped_events"].(float64); !ok || int64(v) != int64(capacity*2) {
		t.Fatalf("metadata dropped_events = %v, want %d", out.Metadata["dropped_events"], capacity*2)
	}

	// The surviving events must be the newest capacity ticks, oldest
	// first — the ring overwrites, it does not stop recording.
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("Events() returned %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		if want := float64((capacity*2 + i)) * 1e6; ev.TS != want {
			t.Fatalf("event %d ts = %v, want %v", i, ev.TS, want)
		}
	}
}

func TestTraceContextInExport(t *testing.T) {
	tr := NewTrace(16)
	tc := NewTraceContext()
	tr.SetContext(tc)
	if got := tr.Context(); got != tc {
		t.Fatalf("Context() = %+v, want %+v", got, tc)
	}
	tr.Instant("a", "x")
	out := decode(t, tr)
	if out.Metadata["trace_id"] != tc.TraceID || out.Metadata["span_id"] != tc.SpanID {
		t.Fatalf("export metadata missing identity: %v", out.Metadata)
	}
}

func TestSpanLink(t *testing.T) {
	tr := NewTrace(16)
	remote := NewTraceContext()
	sp := tr.Start("net", "delegate")
	sp.Link(remote)
	sp.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Args["link_trace_id"] != remote.TraceID || evs[0].Args["link_span_id"] != remote.SpanID {
		t.Fatalf("span link args missing: %v", evs[0].Args)
	}
}

func TestSliceBetweenBackdates(t *testing.T) {
	tr := NewTrace(16)
	// A phase that started before the tracer existed must land at a
	// negative timestamp with the true duration.
	start := time.Now().Add(-3 * time.Millisecond)
	tr.SliceBetween("queue", "wait", start, start.Add(2*time.Millisecond))
	// An inverted slice clamps to zero duration.
	tr.SliceBetween("queue", "inverted", start.Add(time.Millisecond), start)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].TS >= 0 {
		t.Fatalf("backdated slice ts = %v, want negative", evs[0].TS)
	}
	if d := evs[0].Dur; d < 1900 || d > 2100 {
		t.Fatalf("backdated slice dur = %vus, want ~2000", d)
	}
	if evs[1].Dur != 0 {
		t.Fatalf("inverted slice dur = %v, want 0", evs[1].Dur)
	}
}

func TestWriteStitchedMultiProcess(t *testing.T) {
	tc := NewTraceContext()
	local := NewTrace(32)
	local.SetContext(tc)
	local.SliceAt("serve", "admission", 0, 0.001)
	local.SliceAt("serve", "peer-hop", 0.001, 0.005)

	// The peer's segment arrives pre-snapshotted, anchored 2ms later on
	// the shared wall clock.
	remote := []TraceEvent{
		{Name: "search", Phase: "X", Track: "search", TS: 0, Dur: 1500},
		{Name: "breaker-open", Phase: "i", Track: "cluster", TS: 1600},
	}

	var buf bytes.Buffer
	err := WriteStitched(&buf, tc, []Process{
		{Name: "http://a", Trace: local},
		{Name: "http://b", Events: remote, OffsetMicros: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	var out jsonTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("stitched export invalid JSON: %v\n%s", err, buf.String())
	}

	procs := map[int]string{}
	var dataByPID = map[int]int{}
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procs[ev.PID] = ev.Args["name"].(string)
		case ev.Ph != "M":
			dataByPID[ev.PID]++
		}
	}
	if len(procs) != 2 || procs[1] != "http://a" || procs[2] != "http://b" {
		t.Fatalf("process rows = %v, want pids 1,2 named a,b", procs)
	}
	if dataByPID[1] != 2 || dataByPID[2] != 2 {
		t.Fatalf("data events per pid = %v, want 2 each", dataByPID)
	}
	if out.Metadata["trace_id"] != tc.TraceID {
		t.Fatalf("stitched metadata trace_id = %v, want %s", out.Metadata["trace_id"], tc.TraceID)
	}

	// The peer's events must be shifted onto the shared timeline.
	for _, ev := range out.TraceEvents {
		if ev.PID == 2 && ev.Name == "search" && ev.TS != 2000 {
			t.Fatalf("remote search ts = %v, want 2000 (offset applied)", ev.TS)
		}
	}

	// Data events must be globally time-ordered after the metadata block.
	lastMeta := -1
	prevTS := -1e18
	for i, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			if lastMeta != i-1 {
				t.Fatalf("metadata row at index %d after data began", i)
			}
			lastMeta = i
			continue
		}
		if ev.TS < prevTS {
			t.Fatalf("event %d out of order: ts %v after %v", i, ev.TS, prevTS)
		}
		prevTS = ev.TS
	}
}
