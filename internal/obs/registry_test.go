package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs accepted.")
	c.Add(3)
	g := r.Gauge("jobs_running", "Jobs in flight.")
	g.Set(2)
	g.Add(-1)
	v := r.CounterVec("http_requests_total", "Requests by code.", "code")
	v.With("200").Add(5)
	v.With("503").Inc()
	r.GaugeFunc("cache_entries", "Cache size.", func() int64 { return 7 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP jobs_total Jobs accepted.\n# TYPE jobs_total counter\njobs_total 3\n",
		"jobs_running 1\n",
		`http_requests_total{code="200"} 5`,
		`http_requests_total{code="503"} 1`,
		"# TYPE cache_entries gauge\ncache_entries 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after negative add = %d, want 5", got)
	}
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type should panic")
		}
	}()
	r.Gauge("x_total", "h")
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics should read as zero")
	}
}

func TestHistogramBucketsAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 106.25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 106.25",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram rendering missing %q in:\n%s", want, out)
		}
	}
}

// TestQuantileNearestRank is the regression test for the low-biased
// quantile the old serve metrics computed: int(q*(len-1)) truncates
// toward the low sample, so p95 over 1024 samples read index 971. The
// nearest-rank definition selects ceil(0.95*1024) = 973rd smallest,
// i.e. index 972.
func TestQuantileNearestRank(t *testing.T) {
	samples := make([]float64, 1024)
	for i := range samples {
		samples[i] = float64(i) // sorted: value == index
	}
	if got := Quantile(samples, 0.95); got != 972 {
		t.Fatalf("p95 over 1024 samples = %g, want 972 (nearest rank)", got)
	}
	if biased := samples[int(0.95*float64(len(samples)-1))]; biased != 971 {
		t.Fatalf("old truncating formula should read 971, got %g", biased)
	}
	if got := Quantile(samples, 0.5); got != 511 {
		t.Fatalf("p50 = %g, want 511", got)
	}
	if got := Quantile(samples, 1); got != 1023 {
		t.Fatalf("p100 = %g, want 1023", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

// TestHistogramQuantileAgreesWithNearestRank cross-checks the histogram
// estimator against the exact nearest-rank quantile: with bucket bounds
// on every integer the interpolation error is below one bucket width.
func TestHistogramQuantileAgreesWithNearestRank(t *testing.T) {
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := newHistogram(bounds)
	samples := make([]float64, 1024)
	for i := range samples {
		v := float64(i%100) + 0.5
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := Quantile(samples, q)
		est := h.Quantile(q)
		if math.Abs(est-exact) > 1.0 {
			t.Errorf("q=%g: histogram estimate %g vs nearest-rank %g (> 1 bucket width apart)", q, est, exact)
		}
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines
// (run under -race).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "h")
	g := r.Gauge("depth", "h")
	h := r.Histogram("lat", "h", []float64{1, 2, 4, 8})
	v := r.CounterVec("by_kind_total", "h", "kind")

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 10))
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
				if i%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	sum := v.With("a").Value() + v.With("b").Value() + v.With("c").Value()
	if sum != workers*perWorker {
		t.Fatalf("labeled counters sum = %d, want %d", sum, workers*perWorker)
	}
}

func TestGaugeSampleFuncRender(t *testing.T) {
	r := NewRegistry()
	r.GaugeSampleFunc("quota_tokens", "Tokens per client.", []string{"client"},
		func() []LabeledValue {
			return []LabeledValue{
				{Labels: []string{"alice"}, Value: 3},
				{Labels: []string{"bob"}, Value: 0},
				{Labels: []string{"broken", "extra"}, Value: 9}, // wrong arity: skipped
			}
		})

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP quota_tokens Tokens per client.\n# TYPE quota_tokens gauge\n",
		"quota_tokens{client=\"alice\"} 3\n",
		"quota_tokens{client=\"bob\"} 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "broken") {
		t.Errorf("sample with mismatched label arity rendered:\n%s", out)
	}

	// Sampling happens at render time: the next write sees new values.
	r2 := NewRegistry()
	n := int64(0)
	r2.GaugeSampleFunc("live", "Live sample.", []string{"k"}, func() []LabeledValue {
		n++
		return []LabeledValue{{Labels: []string{"x"}, Value: n}}
	})
	var b1, b2 strings.Builder
	r2.WritePrometheus(&b1)
	r2.WritePrometheus(&b2)
	if !strings.Contains(b1.String(), `live{k="x"} 1`) || !strings.Contains(b2.String(), `live{k="x"} 2`) {
		t.Errorf("sample func not re-invoked per render:\nfirst: %s\nsecond: %s", b1.String(), b2.String())
	}
}
