package obs

// Distributed trace identity. A TraceContext names one request across
// process boundaries: a 128-bit trace ID shared by every span the
// request touches anywhere in the fleet, plus a 64-bit span ID naming
// the caller's own span. It serializes as a W3C Trace Context
// `traceparent` header (https://www.w3.org/TR/trace-context/):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^ trace-id ^^^^^^^^^^ ^^ span-id ^^^^^^ ^^ flags
//
// so chrysalisd nodes (and any W3C-conformant proxy between them) can
// thread one identity through HTTP hops, and the spans recorded on
// different nodes stitch back into a single Perfetto trace.

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// Traceparent field sizes (hex characters).
const (
	traceIDHexLen = 32 // 128-bit trace ID
	spanIDHexLen  = 16 // 64-bit span ID
)

// TraceContext is one request's distributed identity: the trace it
// belongs to and the span that carried it here. The zero value is
// invalid (no identity).
type TraceContext struct {
	// TraceID is 32 lowercase hex characters, shared by every span of
	// the request across all nodes.
	TraceID string
	// SpanID is 16 lowercase hex characters naming the sender's span —
	// the parent of whatever span the receiver opens.
	SpanID string
	// Sampled mirrors the traceparent sampled flag. Chrysalis records
	// unconditionally (the ring is bounded), but the flag round-trips so
	// upstream samplers keep their decision.
	Sampled bool
}

// idSeq de-duplicates IDs generated within the same crypto/rand
// failure window (entropy exhaustion is vanishingly rare, but an ID
// generator must never silently collide).
var idSeq atomic.Uint64

// randomHex returns n/2 random bytes as n lowercase hex characters,
// falling back to a time+sequence stamp if the system entropy source
// fails.
func randomHex(n int) string {
	b := make([]byte, n/2)
	if _, err := rand.Read(b); err != nil {
		seq := idSeq.Add(1)
		now := uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(now>>(8*(i%8))) ^ byte(seq>>(8*(i%4)))
		}
	}
	return hex.EncodeToString(b)
}

// NewTraceContext mints a fresh sampled context: a new trace ID and a
// new root span ID.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randomHex(traceIDHexLen), SpanID: randomHex(spanIDHexLen), Sampled: true}
}

// Child returns a context in the same trace with a fresh span ID — the
// identity a new unit of work (a job, a delegated evaluation) should
// record its spans under.
func (tc TraceContext) Child() TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: randomHex(spanIDHexLen), Sampled: tc.Sampled}
}

// Valid reports whether the context carries a usable identity: exact
// field widths, hex-only, and not all-zero (the W3C spec reserves
// all-zero IDs as invalid).
func (tc TraceContext) Valid() bool {
	return validHexID(tc.TraceID, traceIDHexLen) && validHexID(tc.SpanID, spanIDHexLen)
}

func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Traceparent renders the context as a version-00 W3C traceparent
// header value. Invalid contexts render as "".
func (tc TraceContext) Traceparent() string {
	if !tc.Valid() {
		return ""
	}
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header value. It accepts any
// version (per spec, unknown versions parse as version 00 plus ignored
// extra fields) and reports ok=false for malformed or all-zero IDs.
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || version == "ff" {
		return TraceContext{}, false
	}
	if version == "00" && len(parts) != 4 {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: strings.ToLower(traceID), SpanID: strings.ToLower(spanID)}
	if !tc.Valid() || len(flags) != 2 {
		return TraceContext{}, false
	}
	tc.Sampled = flags[len(flags)-1]&1 == 1
	return tc, true
}
