package obs

// Latency SLO tracking with multi-window burn rates, in the style of
// the SRE workbook: the service commits to an objective ("99% of jobs
// finish under T seconds"), every completed request is classified good
// or breaching, and the burn rate over each window is
//
//	burn = error_rate / error_budget = (breaches/total) / (1-objective)
//
// A burn rate of 1 consumes the budget exactly as fast as the SLO
// allows; sustained burn > 1 on the long window plus a spiking short
// window is the canonical page condition. Windows are maintained as a
// ring of fixed-width buckets, so memory is O(longest window / bucket)
// and Observe is O(1).

import (
	"fmt"
	"sync"
	"time"
)

// sloBucketSeconds is the burn-rate bucket granularity. Windows round
// up to whole buckets.
const sloBucketSeconds = 10

// WindowBurn is one window's current burn rate.
type WindowBurn struct {
	// Window is the duration label, e.g. "5m".
	Window string `json:"window"`
	// Rate is the burn rate: error rate over the window divided by the
	// error budget (1 - objective). 0 with no traffic.
	Rate float64 `json:"rate"`
	// Good and Total are the window's raw event counts.
	Good  int64 `json:"good"`
	Total int64 `json:"total"`
}

type sloBucket struct {
	start int64 // unix seconds, aligned to sloBucketSeconds
	good  int64
	total int64
}

// SLO classifies observed latencies against a target and maintains
// burn rates over several sliding windows. Safe for concurrent use.
type SLO struct {
	target    float64 // seconds
	objective float64 // fraction of events that must be good, e.g. 0.99
	windows   []time.Duration
	now       func() time.Time

	mu        sync.Mutex
	buckets   []sloBucket // ring, len = longest window in buckets + 1
	head      int         // ring index of the current bucket
	good, tot int64       // lifetime counts
}

// NewSLO builds a latency SLO: latencies <= targetSeconds are good,
// and the service aims to keep the good fraction >= objective
// (clamped into (0,1)). Windows default to 5m and 1h when empty.
func NewSLO(targetSeconds, objective float64, windows ...time.Duration) *SLO {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if len(windows) == 0 {
		windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	longest := windows[0]
	for _, w := range windows {
		if w > longest {
			longest = w
		}
	}
	n := int(longest/(sloBucketSeconds*time.Second)) + 2
	return &SLO{
		target:    targetSeconds,
		objective: objective,
		windows:   windows,
		now:       time.Now,
		buckets:   make([]sloBucket, n),
	}
}

// Target returns the latency objective in seconds.
func (s *SLO) Target() float64 { return s.target }

// Objective returns the good-event fraction the SLO commits to.
func (s *SLO) Objective() float64 { return s.objective }

// advanceLocked rotates the ring so the head bucket covers now.
func (s *SLO) advanceLocked(now time.Time) {
	start := now.Unix() - now.Unix()%sloBucketSeconds
	if s.buckets[s.head].start == start {
		return
	}
	// Step forward bucket by bucket so intermediate idle buckets zero
	// out; a long idle gap just wraps the whole ring once.
	steps := (start - s.buckets[s.head].start) / sloBucketSeconds
	if s.buckets[s.head].start == 0 || steps <= 0 || steps > int64(len(s.buckets)) {
		for i := range s.buckets {
			s.buckets[i] = sloBucket{}
		}
		s.head = 0
		s.buckets[0].start = start
		return
	}
	for i := int64(0); i < steps; i++ {
		s.head = (s.head + 1) % len(s.buckets)
		s.buckets[s.head] = sloBucket{start: s.buckets[(s.head+len(s.buckets)-1)%len(s.buckets)].start + sloBucketSeconds}
	}
}

// Observe classifies one completed event's latency.
func (s *SLO) Observe(latencySeconds float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(s.now())
	b := &s.buckets[s.head]
	b.total++
	s.tot++
	if latencySeconds <= s.target {
		b.good++
		s.good++
	}
}

// Totals returns the lifetime good/total counts.
func (s *SLO) Totals() (good, total int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.good, s.tot
}

// BurnRates samples every window's current burn rate.
func (s *SLO) BurnRates() []WindowBurn {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	s.advanceLocked(now)
	out := make([]WindowBurn, 0, len(s.windows))
	for _, w := range s.windows {
		cutoff := now.Unix() - int64(w/time.Second)
		var good, total int64
		for _, b := range s.buckets {
			if b.start != 0 && b.start+sloBucketSeconds > cutoff {
				good += b.good
				total += b.total
			}
		}
		wb := WindowBurn{Window: shortDuration(w), Good: good, Total: total}
		if total > 0 {
			errRate := float64(total-good) / float64(total)
			wb.Rate = errRate / (1 - s.objective)
		}
		out = append(out, wb)
	}
	return out
}

// Register exposes the SLO on a registry: the target and objective as
// float gauges, lifetime good/breach counters, and one burn-rate gauge
// per window.
func (s *SLO) Register(reg *Registry, prefix string) {
	reg.GaugeFloatFunc(prefix+"_slo_latency_target_seconds",
		"Latency threshold under which a job counts toward the SLO.",
		s.Target)
	reg.GaugeFloatFunc(prefix+"_slo_objective",
		"Fraction of jobs that must finish under the latency target.",
		s.Objective)
	reg.CounterFunc(prefix+"_slo_good_total",
		"Jobs that finished within the SLO latency target.",
		func() int64 { g, _ := s.Totals(); return g })
	reg.CounterFunc(prefix+"_slo_events_total",
		"Jobs classified against the SLO latency target.",
		func() int64 { _, t := s.Totals(); return t })
	reg.GaugeFloatSampleFunc(prefix+"_slo_burn_rate",
		"Error-budget burn rate per window (1.0 = burning exactly at the objective).",
		[]string{"window"}, func() []LabeledFloat {
			burns := s.BurnRates()
			out := make([]LabeledFloat, 0, len(burns))
			for _, b := range burns {
				out = append(out, LabeledFloat{Labels: []string{b.Window}, Value: b.Rate})
			}
			return out
		})
}

// shortDuration renders 5m/1h-style labels (time.Duration.String says
// "5m0s", which makes ugly label values).
func shortDuration(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return d.String()
	}
}
