package obs

import (
	"runtime"
	"runtime/debug"
)

// Version is the CHRYSALIS release string, surfaced by the
// chrysalis_build_info metric and the -version flags of the CLIs. Bump
// it with the PR that changes user-visible behavior.
const Version = "0.4.0"

// Revision returns the VCS revision the binary was built from, when the
// Go toolchain stamped one, else "unknown".
func Revision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "unknown"
}

// RegisterBuildInfo publishes the chrysalis_build_info gauge: constant
// value 1 with the build identity as labels, the standard Prometheus
// idiom for joining version metadata onto other series.
func RegisterBuildInfo(r *Registry) {
	r.GaugeVec("chrysalis_build_info",
		"Build identity of the running binary (constant 1).",
		"version", "revision", "go_version", "goos", "goarch").
		With(Version, Revision(), runtime.Version(), runtime.GOOS, runtime.GOARCH).
		Set(1)
}
