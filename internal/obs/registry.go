// Package obs is the zero-dependency observability core of CHRYSALIS:
// a Prometheus-style metrics registry (labeled counters, gauges and
// bucketed histograms with lock-free hot paths) plus a span tracer
// whose recordings export as Chrome trace-event / Perfetto JSON.
//
// Everything is nil-safe: methods on nil metrics, nil tracers and nil
// spans are no-ops, so instrumented code needs no guards and pays only
// a predictable branch when observability is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families and renders them in Prometheus
// exposition format. Families render in registration order; labeled
// children render in creation order. The zero value is not usable —
// construct with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// family is one named metric: its metadata plus either a single
// unlabeled child or a set of labeled children.
type family struct {
	name, help, typ string
	labelKeys       []string

	mu       sync.RWMutex
	children map[string]renderable // keyed on joined label values
	order    []string

	// fn, when non-nil, is sampled at render time (CounterFunc /
	// GaugeFunc families).
	fn func() int64
	// floatFn, when non-nil, is sampled at render time and rendered %g
	// (GaugeFloatFunc / CounterFloatFunc families).
	floatFn func() float64
	// sampleFn, when non-nil, is sampled at render time and yields one
	// line per labeled child (GaugeSampleFunc families).
	sampleFn func() []LabeledValue
	// floatSampleFn is sampleFn's float-valued form
	// (GaugeFloatSampleFunc families — e.g. SLO burn rates per window).
	floatSampleFn func() []LabeledFloat
}

// renderable is anything a family can render as one or more exposition
// lines.
type renderable interface {
	renderProm(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns the family, creating it on first use. Re-registering a
// name with a different type or label set panics: that is a programming
// error, not a runtime condition.
func (r *Registry) lookup(name, help, typ string, labelKeys []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labelKeys), f.typ, len(f.labelKeys)))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labelKeys: labelKeys,
		children: make(map[string]renderable)}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// child returns the family's child for the given label values, creating
// it with mk on first use. The hot path is a read-locked map hit; the
// returned metric itself is atomic, so callers that cache it touch no
// locks at all.
func (f *family) child(values []string, mk func() renderable) renderable {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelKeys), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// labelString renders {k="v",...} for a child key.
func (f *family) labelString(key string) string {
	if len(f.labelKeys) == 0 {
		return ""
	}
	values := strings.Split(key, "\x00")
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range f.labelKeys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// --- Counter ---

// Counter is a monotonically increasing value. All methods are atomic
// and nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) renderProm(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter returns the unlabeled counter with the given name, creating
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil)
	return f.child(nil, func() renderable { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, "counter", labelKeys)}
}

// With returns the child counter for the given label values. Callers on
// hot paths should cache the result; the child itself is lock-free.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() renderable { return &Counter{} }).(*Counter)
}

// --- Gauge ---

// Gauge is a value that can go up and down. All methods are atomic and
// nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) renderProm(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil)
	return f.child(nil, func() renderable { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, "gauge", labelKeys)}
}

// With returns the child gauge for the given label values. Callers on
// hot paths should cache the result; the child itself is lock-free.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() renderable { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter whose value is sampled from fn at
// render time — for values owned by another subsystem (e.g. the
// evaluator plan-cache counters).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.lookup(name, help, "counter", nil).fn = fn
}

// GaugeFunc registers a gauge sampled from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.lookup(name, help, "gauge", nil).fn = fn
}

// LabeledValue is one sample of a GaugeSampleFunc family: the label
// values (matching the family's label keys) and the gauge reading.
type LabeledValue struct {
	Labels []string
	Value  int64
}

// GaugeSampleFunc registers a labeled gauge family whose entire child
// set is sampled from fn at render time — for label sets owned by
// another subsystem and unknown until scrape (e.g. per-client quota
// remaining, where clients come and go).
func (r *Registry) GaugeSampleFunc(name, help string, labelKeys []string, fn func() []LabeledValue) {
	r.lookup(name, help, "gauge", labelKeys).sampleFn = fn
}

// GaugeFloatFunc registers a float-valued gauge sampled from fn at
// render time (ratios, seconds, burn rates — anything the integer
// Gauge would truncate).
func (r *Registry) GaugeFloatFunc(name, help string, fn func() float64) {
	r.lookup(name, help, "gauge", nil).floatFn = fn
}

// CounterFloatFunc registers a float-valued counter sampled from fn at
// render time (e.g. cumulative seconds spent compacting).
func (r *Registry) CounterFloatFunc(name, help string, fn func() float64) {
	r.lookup(name, help, "counter", nil).floatFn = fn
}

// LabeledFloat is one sample of a GaugeFloatSampleFunc family.
type LabeledFloat struct {
	Labels []string
	Value  float64
}

// GaugeFloatSampleFunc is GaugeSampleFunc with float values — e.g. SLO
// burn rates keyed by window.
func (r *Registry) GaugeFloatSampleFunc(name, help string, labelKeys []string, fn func() []LabeledFloat) {
	r.lookup(name, help, "gauge", labelKeys).floatSampleFn = fn
}

// --- Histogram ---

// DefaultLatencyBuckets spans microseconds to minutes — wide enough for
// both a cache-hit design lookup and a full accelerator search.
var DefaultLatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1,
	.25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram is a bucketed distribution with a lock-free Observe path:
// per-bucket atomic counters plus a CAS-maintained float sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample. Nil-safe, lock-free.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the selected bucket. The +Inf
// bucket clamps to the highest finite bound. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	// Nearest-rank target over the cumulative bucket counts.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if cum+c >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := float64(rank-cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) renderProm(w io.Writer, name, labels string) {
	// Cumulative bucket counts with the le label appended to any
	// existing labels.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, open, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

func formatBound(b float64) string { return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".") }

// Histogram returns the unlabeled histogram with the given name. bounds
// are ascending upper bucket bounds (nil selects
// DefaultLatencyBuckets); the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	f := r.lookup(name, help, "histogram", nil)
	return f.child(nil, func() renderable { return newHistogram(bounds) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by label values —
// e.g. peer-hop latency keyed by peer URL.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec returns the labeled histogram family with the given
// name. bounds follow the Histogram convention (nil selects
// DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", labelKeys), bounds: bounds}
}

// With returns the child histogram for the given label values. Callers
// on hot paths should cache the result; the child's Observe is
// lock-free.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values, func() renderable { return newHistogram(v.bounds) }).(*Histogram)
}

// --- Rendering ---

// WritePrometheus renders every family in exposition format, in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(w, "%s %d\n", f.name, f.fn())
			continue
		}
		if f.floatFn != nil {
			fmt.Fprintf(w, "%s %g\n", f.name, f.floatFn())
			continue
		}
		if f.floatSampleFn != nil {
			for _, lv := range f.floatSampleFn() {
				if len(lv.Labels) != len(f.labelKeys) {
					continue // malformed sample: skip rather than emit bad exposition
				}
				fmt.Fprintf(w, "%s%s %g\n", f.name, f.labelString(strings.Join(lv.Labels, "\x00")), lv.Value)
			}
			continue
		}
		if f.sampleFn != nil {
			for _, lv := range f.sampleFn() {
				if len(lv.Labels) != len(f.labelKeys) {
					continue // malformed sample: skip rather than emit bad exposition
				}
				fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelString(strings.Join(lv.Labels, "\x00")), lv.Value)
			}
			continue
		}
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		f.mu.RUnlock()
		for _, key := range keys {
			f.mu.RLock()
			c := f.children[key]
			f.mu.RUnlock()
			c.renderProm(w, f.name, f.labelString(key))
		}
	}
}

// Quantile returns the q-quantile (0 < q <= 1) of a sorted sample using
// the nearest-rank definition: the ceil(q·n)-th smallest sample. Unlike
// the truncating index formula int(q·(n-1)) it is not biased low —
// p95 over 1024 sorted samples selects index 972, not 971.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
