package obs

import (
	"strings"
	"testing"
	"time"
)

// sloAt builds an SLO with a controllable clock starting at a fixed
// instant (aligned so bucket math is predictable).
func sloAt(target, objective float64, windows ...time.Duration) (*SLO, *time.Time) {
	s := NewSLO(target, objective, windows...)
	now := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return now }
	return s, &now
}

func TestSLOBurnRates(t *testing.T) {
	s, now := sloAt(0.5, 0.99, 5*time.Minute, time.Hour)

	// 99 good + 1 breach = exactly the objective: burn rate 1.
	for i := 0; i < 99; i++ {
		s.Observe(0.1)
	}
	s.Observe(2.0)

	burns := s.BurnRates()
	if len(burns) != 2 || burns[0].Window != "5m" || burns[1].Window != "1h" {
		t.Fatalf("windows = %+v", burns)
	}
	for _, b := range burns {
		if b.Total != 100 || b.Good != 99 {
			t.Fatalf("window %s counts = %d/%d, want 99/100", b.Window, b.Good, b.Total)
		}
		if b.Rate < 0.999 || b.Rate > 1.001 {
			t.Fatalf("window %s burn = %v, want 1.0", b.Window, b.Rate)
		}
	}

	// Advance 10 minutes: the 5m window forgets, the 1h window keeps.
	*now = now.Add(10 * time.Minute)
	burns = s.BurnRates()
	if burns[0].Total != 0 || burns[0].Rate != 0 {
		t.Fatalf("5m window should be empty after 10min: %+v", burns[0])
	}
	if burns[1].Total != 100 || burns[1].Rate < 0.999 {
		t.Fatalf("1h window should still see the breach: %+v", burns[1])
	}

	// A fresh all-breach burst spikes the short window (100x burn) while
	// the long window dilutes it.
	for i := 0; i < 10; i++ {
		s.Observe(5.0)
	}
	burns = s.BurnRates()
	if burns[0].Rate < 99 || burns[0].Rate > 101 {
		t.Fatalf("5m burn after all-breach burst = %v, want 100", burns[0].Rate)
	}
	if burns[1].Rate >= burns[0].Rate {
		t.Fatalf("1h burn %v should be diluted below 5m burn %v", burns[1].Rate, burns[0].Rate)
	}

	if good, total := s.Totals(); good != 99 || total != 110 {
		t.Fatalf("lifetime totals = %d/%d, want 99/110", good, total)
	}
}

func TestSLOLongIdleGapResets(t *testing.T) {
	s, now := sloAt(1, 0.9, time.Minute)
	s.Observe(10) // breach
	*now = now.Add(24 * time.Hour)
	burns := s.BurnRates()
	if burns[0].Total != 0 {
		t.Fatalf("after a day idle the 1m window should be empty: %+v", burns[0])
	}
	if _, total := s.Totals(); total != 1 {
		t.Fatalf("lifetime total = %d, want 1", total)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(1)
	if br := s.BurnRates(); br != nil {
		t.Fatalf("nil SLO burn rates = %v", br)
	}
	if g, tot := s.Totals(); g != 0 || tot != 0 {
		t.Fatal("nil SLO totals should be zero")
	}
}

func TestSLORegister(t *testing.T) {
	s, _ := sloAt(0.75, 0.95)
	s.Observe(0.1)
	s.Observe(3.0)
	reg := NewRegistry()
	s.Register(reg, "chrysalisd")
	var buf strings.Builder
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`chrysalisd_slo_latency_target_seconds 0.75`,
		`chrysalisd_slo_objective 0.95`,
		`chrysalisd_slo_good_total 1`,
		`chrysalisd_slo_events_total 2`,
		`chrysalisd_slo_burn_rate{window="5m"}`,
		`chrysalisd_slo_burn_rate{window="1h"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}
