package obs

import (
	"strings"
	"testing"
)

func TestNewTraceContext(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	for _, tc := range []TraceContext{a, b} {
		if !tc.Valid() {
			t.Fatalf("fresh context invalid: %+v", tc)
		}
		if !tc.Sampled {
			t.Fatal("fresh context should be sampled")
		}
	}
	if a.TraceID == b.TraceID || a.SpanID == b.SpanID {
		t.Fatalf("two fresh contexts collided: %+v vs %+v", a, b)
	}
}

func TestTraceContextChild(t *testing.T) {
	root := NewTraceContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatalf("child changed trace ID: %q -> %q", root.TraceID, child.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child must get a fresh span ID")
	}
	if !child.Valid() || !child.Sampled {
		t.Fatalf("child not valid+sampled: %+v", child)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	orig := NewTraceContext()
	hdr := orig.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("unexpected traceparent shape: %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("failed to parse own traceparent %q", hdr)
	}
	if got != orig {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, orig)
	}

	unsampled := orig
	unsampled.Sampled = false
	got, ok = ParseTraceparent(unsampled.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: ok=%v got=%+v", ok, got)
	}
}

func TestParseTraceparentEdgeCases(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		in string
		ok bool
	}{
		{valid, true},
		{" " + valid + " ", true}, // surrounding whitespace tolerated
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01", true}, // uppercase normalized
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true}, // future version, extra field
		{"", false},
		{"garbage", false},
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},       // version ff reserved
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", false},     // v00 forbids extras
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},       // all-zero trace ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},       // all-zero span ID
		{"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01", false},         // short trace ID
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7zz-01", false},     // bad span hex
	}
	for _, c := range cases {
		got, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
		}
		if ok && !got.Valid() {
			t.Errorf("ParseTraceparent(%q) returned invalid context %+v", c.in, got)
		}
	}

	// Unsampled flag.
	if got, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok || got.Sampled {
		t.Errorf("flags 00 should parse unsampled, got ok=%v %+v", ok, got)
	}
}

func TestInvalidContextRenders(t *testing.T) {
	var zero TraceContext
	if zero.Valid() {
		t.Fatal("zero context must be invalid")
	}
	if got := zero.Traceparent(); got != "" {
		t.Fatalf("invalid context rendered %q", got)
	}
}
