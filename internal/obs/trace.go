package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceEvents bounds a tracer's ring buffer when the caller
// passes no capacity.
const DefaultTraceEvents = 16384

// droppedTotal counts ring-overwritten events across every tracer in
// the process — the exportable form of the per-ring Dropped counters,
// so /metrics can expose one obs_trace_dropped_total without walking
// job tables.
var droppedTotal atomic.Int64

// TraceDroppedTotal reports how many trace events have been overwritten
// after their ring filled, process-wide across all tracers.
func TraceDroppedTotal() int64 { return droppedTotal.Load() }

// Attr is one key/value annotation on a span or instant event. Values
// must be JSON-serializable.
type Attr struct {
	Key   string
	Value any
}

// A constructs an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// event is one recorded trace event in Chrome trace-event terms: a
// complete slice (ph X), an instant (ph i) or a counter sample (ph C).
type event struct {
	name  string
	ph    byte
	track string
	ts    float64 // microseconds
	dur   float64 // microseconds, X only
	attrs []Attr
}

// Trace records spans and instants into a bounded ring buffer and
// exports them as Chrome trace-event JSON that loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Two timelines coexist: Start/End/Instant stamp events with wall-clock
// time since the tracer was created (for live pipelines — searches,
// jobs), while SliceAt/InstantAt take explicit timestamps in seconds
// (for simulated timelines — the step simulator's power-cycle trace).
// Each distinct track renders as its own named Perfetto thread.
//
// All methods are safe for concurrent use and nil-safe: a nil *Trace
// records nothing and returns nil spans, so instrumented code can
// thread an optional tracer without guards.
type Trace struct {
	anchor time.Time

	mu      sync.Mutex
	tc      TraceContext
	ring    []event
	n       int // total events recorded; write position is n % cap(ring)
	dropped int64
}

// NewTrace returns a tracer whose ring buffer holds up to capacity
// events (<= 0 selects DefaultTraceEvents). Once full, new events
// overwrite the oldest and the dropped count grows.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Trace{anchor: time.Now(), ring: make([]event, 0, capacity)}
}

// now returns microseconds since the tracer's creation.
func (t *Trace) now() float64 { return float64(time.Since(t.anchor)) / float64(time.Microsecond) }

// AnchorUnixMicros returns the tracer's creation instant as Unix
// microseconds — the wall-clock zero of every recorded timestamp, used
// to align this tracer's events with another process's when stitching.
func (t *Trace) AnchorUnixMicros() float64 {
	if t == nil {
		return 0
	}
	return float64(t.anchor.UnixMicro())
}

// SetContext attaches a distributed trace identity to the tracer; the
// export carries it in metadata so cross-process segments stitch by
// trace ID.
func (t *Trace) SetContext(tc TraceContext) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tc = tc
	t.mu.Unlock()
}

// Context returns the tracer's distributed identity (zero when unset).
func (t *Trace) Context() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tc
}

// record appends one event to the ring.
func (t *Trace) record(ev event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.n%cap(t.ring)] = ev
		t.dropped++
		droppedTotal.Add(1)
	}
	t.n++
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one in-flight wall-clock slice. End it exactly once; a nil
// span (from a nil tracer) ends harmlessly.
type Span struct {
	t     *Trace
	track string
	name  string
	start float64
	attrs []Attr
}

// Start opens a wall-clock span on the given track. The span is
// recorded when End is called.
func (t *Trace) Start(track, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, track: track, name: name, start: t.now(), attrs: attrs}
}

// SetAttr annotates the span before it ends.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Link records a causal reference to a span in another trace segment
// (typically on another node): the linked trace/span IDs land in the
// span's args, so stitched exports and timeline consumers can follow
// the request across the process boundary.
func (s *Span) Link(tc TraceContext) {
	if s == nil || !tc.Valid() {
		return
	}
	s.attrs = append(s.attrs,
		Attr{Key: "link_trace_id", Value: tc.TraceID},
		Attr{Key: "link_span_id", Value: tc.SpanID})
}

// End closes the span, recording it with any extra attributes appended.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	end := s.t.now()
	s.t.record(event{name: s.name, ph: 'X', track: s.track,
		ts: s.start, dur: end - s.start, attrs: append(s.attrs, attrs...)})
}

// Instant records a wall-clock point event on the given track.
func (t *Trace) Instant(track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(event{name: name, ph: 'i', track: track, ts: t.now(), attrs: attrs})
}

// SliceBetween records a completed wall-clock slice with explicit start
// and end instants — for phases whose boundaries are only known after
// the fact (queue wait measured at dequeue, admission measured across a
// handler). Instants before the tracer's creation produce negative
// timestamps, which Perfetto renders fine.
func (t *Trace) SliceBetween(track, name string, start, end time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	ts := float64(start.Sub(t.anchor)) / float64(time.Microsecond)
	dur := float64(end.Sub(start)) / float64(time.Microsecond)
	if dur < 0 {
		dur = 0
	}
	t.record(event{name: name, ph: 'X', track: track, ts: ts, dur: dur, attrs: attrs})
}

// SliceAt records a complete slice on an explicit timeline: start and
// end are in seconds (e.g. simulated time). Inverted slices are
// clamped to zero duration.
func (t *Trace) SliceAt(track, name string, start, end float64, attrs ...Attr) {
	if t == nil {
		return
	}
	dur := (end - start) * 1e6
	if dur < 0 {
		dur = 0
	}
	t.record(event{name: name, ph: 'X', track: track, ts: start * 1e6, dur: dur, attrs: attrs})
}

// InstantAt records a point event at an explicit time in seconds.
func (t *Trace) InstantAt(track, name string, at float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(event{name: name, ph: 'i', track: track, ts: at * 1e6, attrs: attrs})
}

// CounterAt records a counter sample (rendered as a filled track in
// Perfetto) at an explicit time in seconds.
func (t *Trace) CounterAt(track, series string, at, value float64) {
	if t == nil {
		return
	}
	t.record(event{name: track, ph: 'C', track: track, ts: at * 1e6,
		attrs: []Attr{{Key: series, Value: value}}})
}

// jsonEvent is the wire form of one Chrome trace event.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonTrace is the container format Perfetto accepts.
type jsonTrace struct {
	TraceEvents     []jsonEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// snapshot returns the buffered events in recording order.
func (t *Trace) snapshot() ([]event, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := make([]event, 0, len(t.ring))
	if t.n > cap(t.ring) { // ring wrapped: oldest is at n % cap
		head := t.n % cap(t.ring)
		evs = append(evs, t.ring[head:]...)
		evs = append(evs, t.ring[:head]...)
	} else {
		evs = append(evs, t.ring...)
	}
	return evs, t.dropped
}

// TraceEvent is the portable wire form of one recorded event — what a
// node ships to a peer so the peer can stitch the two segments into one
// Perfetto export.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"` // "X" slice, "i" instant, "C" counter
	Track string         `json:"track"`
	TS    float64        `json:"ts_us"`
	Dur   float64        `json:"dur_us,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Events snapshots the buffered events in portable form, oldest first.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	evs, _ := t.snapshot()
	out := make([]TraceEvent, 0, len(evs))
	for _, ev := range evs {
		te := TraceEvent{Name: ev.name, Phase: string(ev.ph), Track: ev.track, TS: ev.ts, Dur: ev.dur}
		if len(ev.attrs) > 0 {
			te.Args = make(map[string]any, len(ev.attrs))
			for _, a := range ev.attrs {
				te.Args[a.Key] = a.Value
			}
		}
		out = append(out, te)
	}
	return out
}

// WriteJSON renders the buffered events as Chrome trace-event JSON.
// Events are sorted by timestamp, every track gets a thread_name
// metadata record, and the trace identity plus the dropped count (when
// the ring overflowed, the export is marked truncated) land in
// metadata.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	tc := t.Context()
	return WriteStitched(w, tc, []Process{{Name: "chrysalis", Trace: t}})
}

// Process is one node's (or subsystem's) contribution to a stitched
// multi-process export. Exactly one of Trace or Events is set: Trace
// for the local ring, Events for a segment shipped from a peer.
type Process struct {
	// Name labels the Perfetto process row (e.g. the node's base URL).
	Name string
	// Trace is the local tracer whose ring this process renders.
	Trace *Trace
	// Events is a pre-snapshotted segment (a peer's Trace.Events()).
	Events []TraceEvent
	// OffsetMicros shifts this process's timestamps onto the stitched
	// timeline — typically the difference between this segment's anchor
	// and the stitch root's anchor, in wall-clock microseconds.
	OffsetMicros float64
}

// WriteStitched renders several processes' trace segments as one
// Chrome trace-event JSON document: each Process gets its own pid (and
// process_name row in Perfetto), tracks stay per-process threads, and
// every event is shifted by its process's offset so all segments share
// one timeline. tc, when valid, lands in metadata as the stitched
// trace's identity; any ring overflow marks the export truncated.
func WriteStitched(w io.Writer, tc TraceContext, procs []Process) error {
	out := jsonTrace{DisplayTimeUnit: "ms"}
	var dropped int64
	for pi, p := range procs {
		pid := pi + 1
		var evs []TraceEvent
		if p.Trace != nil {
			evs = p.Trace.Events()
			dropped += p.Trace.Dropped()
		} else {
			evs = append(evs, p.Events...) // copy: the sort below must not reorder caller data
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": p.Name},
		})
		// Assign tids in first-appearance order so related tracks group.
		tids := make(map[string]int)
		for _, ev := range evs {
			if _, ok := tids[ev.Track]; !ok {
				tids[ev.Track] = len(tids) + 1
				out.TraceEvents = append(out.TraceEvents, jsonEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: tids[ev.Track],
					Args: map[string]any{"name": ev.Track},
				})
			}
		}
		for _, ev := range evs {
			je := jsonEvent{Name: ev.Name, Ph: ev.Phase, TS: ev.TS + p.OffsetMicros,
				PID: pid, TID: tids[ev.Track], Args: ev.Args}
			if ev.Phase == "X" {
				d := ev.Dur
				je.Dur = &d
			}
			if ev.Phase == "i" {
				je.S = "t" // thread-scoped instant
			}
			out.TraceEvents = append(out.TraceEvents, je)
		}
	}
	// Sort data events by shifted timestamp, keeping the metadata rows
	// (ph M) ahead of everything so Perfetto names processes up front.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		a, b := out.TraceEvents[i], out.TraceEvents[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if am {
			return false // metadata keeps emission order
		}
		return a.TS < b.TS
	})
	// Backdated events (a phase that began before the ring's anchor, a
	// peer segment with a negative offset) can land before t=0; shift
	// the whole timeline so the earliest event is the origin — Perfetto
	// renders negative timestamps poorly and consumers expect ts >= 0.
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if shift := -ev.TS; shift > 0 { // first data event is the minimum
			for i := range out.TraceEvents {
				if out.TraceEvents[i].Ph != "M" {
					out.TraceEvents[i].TS += shift
				}
			}
		}
		break
	}
	meta := make(map[string]any)
	if tc.Valid() {
		meta["trace_id"] = tc.TraceID
		meta["span_id"] = tc.SpanID
	}
	if dropped > 0 {
		meta["dropped_events"] = dropped
		meta["truncated"] = true
	}
	if len(meta) > 0 {
		out.Metadata = meta
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
