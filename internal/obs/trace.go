package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceEvents bounds a tracer's ring buffer when the caller
// passes no capacity.
const DefaultTraceEvents = 16384

// Attr is one key/value annotation on a span or instant event. Values
// must be JSON-serializable.
type Attr struct {
	Key   string
	Value any
}

// A constructs an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// event is one recorded trace event in Chrome trace-event terms: a
// complete slice (ph X), an instant (ph i) or a counter sample (ph C).
type event struct {
	name  string
	ph    byte
	track string
	ts    float64 // microseconds
	dur   float64 // microseconds, X only
	attrs []Attr
}

// Trace records spans and instants into a bounded ring buffer and
// exports them as Chrome trace-event JSON that loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Two timelines coexist: Start/End/Instant stamp events with wall-clock
// time since the tracer was created (for live pipelines — searches,
// jobs), while SliceAt/InstantAt take explicit timestamps in seconds
// (for simulated timelines — the step simulator's power-cycle trace).
// Each distinct track renders as its own named Perfetto thread.
//
// All methods are safe for concurrent use and nil-safe: a nil *Trace
// records nothing and returns nil spans, so instrumented code can
// thread an optional tracer without guards.
type Trace struct {
	anchor time.Time

	mu      sync.Mutex
	ring    []event
	n       int // total events recorded; write position is n % cap(ring)
	dropped int64
}

// NewTrace returns a tracer whose ring buffer holds up to capacity
// events (<= 0 selects DefaultTraceEvents). Once full, new events
// overwrite the oldest and the dropped count grows.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Trace{anchor: time.Now(), ring: make([]event, 0, capacity)}
}

// now returns microseconds since the tracer's creation.
func (t *Trace) now() float64 { return float64(time.Since(t.anchor)) / float64(time.Microsecond) }

// record appends one event to the ring.
func (t *Trace) record(ev event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.n%cap(t.ring)] = ev
		t.dropped++
	}
	t.n++
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Span is one in-flight wall-clock slice. End it exactly once; a nil
// span (from a nil tracer) ends harmlessly.
type Span struct {
	t     *Trace
	track string
	name  string
	start float64
	attrs []Attr
}

// Start opens a wall-clock span on the given track. The span is
// recorded when End is called.
func (t *Trace) Start(track, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, track: track, name: name, start: t.now(), attrs: attrs}
}

// SetAttr annotates the span before it ends.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span, recording it with any extra attributes appended.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	end := s.t.now()
	s.t.record(event{name: s.name, ph: 'X', track: s.track,
		ts: s.start, dur: end - s.start, attrs: append(s.attrs, attrs...)})
}

// Instant records a wall-clock point event on the given track.
func (t *Trace) Instant(track, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(event{name: name, ph: 'i', track: track, ts: t.now(), attrs: attrs})
}

// SliceAt records a complete slice on an explicit timeline: start and
// end are in seconds (e.g. simulated time). Inverted slices are
// clamped to zero duration.
func (t *Trace) SliceAt(track, name string, start, end float64, attrs ...Attr) {
	if t == nil {
		return
	}
	dur := (end - start) * 1e6
	if dur < 0 {
		dur = 0
	}
	t.record(event{name: name, ph: 'X', track: track, ts: start * 1e6, dur: dur, attrs: attrs})
}

// InstantAt records a point event at an explicit time in seconds.
func (t *Trace) InstantAt(track, name string, at float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.record(event{name: name, ph: 'i', track: track, ts: at * 1e6, attrs: attrs})
}

// CounterAt records a counter sample (rendered as a filled track in
// Perfetto) at an explicit time in seconds.
func (t *Trace) CounterAt(track, series string, at, value float64) {
	if t == nil {
		return
	}
	t.record(event{name: track, ph: 'C', track: track, ts: at * 1e6,
		attrs: []Attr{{Key: series, Value: value}}})
}

// jsonEvent is the wire form of one Chrome trace event.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonTrace is the container format Perfetto accepts.
type jsonTrace struct {
	TraceEvents     []jsonEvent    `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// snapshot returns the buffered events in recording order.
func (t *Trace) snapshot() ([]event, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := make([]event, 0, len(t.ring))
	if t.n > cap(t.ring) { // ring wrapped: oldest is at n % cap
		head := t.n % cap(t.ring)
		evs = append(evs, t.ring[head:]...)
		evs = append(evs, t.ring[:head]...)
	} else {
		evs = append(evs, t.ring...)
	}
	return evs, t.dropped
}

// WriteJSON renders the buffered events as Chrome trace-event JSON.
// Events are sorted by timestamp, every track gets a thread_name
// metadata record, and the dropped count (if any) lands in metadata.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	evs, dropped := t.snapshot()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })

	// Assign tids in first-appearance order so related tracks group.
	tids := make(map[string]int)
	var trackOrder []string
	for _, ev := range evs {
		if _, ok := tids[ev.track]; !ok {
			tids[ev.track] = len(tids) + 1
			trackOrder = append(trackOrder, ev.track)
		}
	}

	out := jsonTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, jsonEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "chrysalis"},
	})
	for _, track := range trackOrder {
		out.TraceEvents = append(out.TraceEvents, jsonEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[track],
			Args: map[string]any{"name": track},
		})
	}
	for _, ev := range evs {
		je := jsonEvent{Name: ev.name, Ph: string(ev.ph), TS: ev.ts, PID: 1, TID: tids[ev.track]}
		if ev.ph == 'X' {
			d := ev.dur
			je.Dur = &d
		}
		if ev.ph == 'i' {
			je.S = "t" // thread-scoped instant
		}
		if len(ev.attrs) > 0 {
			je.Args = make(map[string]any, len(ev.attrs))
			for _, a := range ev.attrs {
				je.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	if dropped > 0 {
		out.Metadata = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
