package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// decode parses an exported trace back into its wire form.
func decode(t *testing.T, tr *Trace) jsonTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out jsonTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return out
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x", "y", A("k", 1))
	sp.SetAttr("a", 2)
	sp.End()
	tr.Instant("x", "i")
	tr.SliceAt("x", "s", 0, 1)
	tr.InstantAt("x", "i", 0.5)
	tr.CounterAt("x", "v", 0, 1)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace should report zero events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	var out jsonTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil trace export invalid: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("nil trace exported %d events", len(out.TraceEvents))
	}
}

func TestSpansAndExport(t *testing.T) {
	tr := NewTrace(64)
	outer := tr.Start("search", "run", A("budget", 400))
	inner := tr.Start("search", "generation 1")
	inner.End(A("evals", 40), A("best", 1.5))
	tr.Instant("search", "converged")
	outer.SetAttr("evals", 40)
	outer.End()
	tr.SliceAt("power", "powered", 0.001, 0.004, A("cycle", 1))
	tr.InstantAt("ckpt", "checkpoint", 0.003)

	out := decode(t, tr)
	var slices, instants, metas int
	seenTracks := map[string]bool{}
	var lastTS float64 = -1
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name == "thread_name" {
				seenTracks[ev.Args["name"].(string)] = true
			}
			continue
		case "X":
			slices++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("X event %q has invalid dur", ev.Name)
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Errorf("instant %q missing scope", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.TS < lastTS {
			t.Errorf("event %q at ts=%g out of order (prev %g)", ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		if ev.PID != 1 || ev.TID < 1 {
			t.Errorf("event %q has pid/tid %d/%d", ev.Name, ev.PID, ev.TID)
		}
	}
	if slices != 3 || instants != 2 {
		t.Fatalf("got %d slices and %d instants, want 3 and 2", slices, instants)
	}
	for _, track := range []string{"search", "power", "ckpt"} {
		if !seenTracks[track] {
			t.Errorf("missing thread_name metadata for track %q", track)
		}
	}
	// Span attributes survive the round trip.
	found := false
	for _, ev := range out.TraceEvents {
		if ev.Name == "generation 1" {
			found = true
			if ev.Args["evals"].(float64) != 40 || ev.Args["best"].(float64) != 1.5 {
				t.Errorf("generation span args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("generation span missing from export")
	}
}

func TestRingBounds(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 20; i++ {
		tr.InstantAt("t", "e", float64(i))
	}
	if tr.Len() != 8 {
		t.Fatalf("ring length = %d, want 8", tr.Len())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
	out := decode(t, tr)
	// The ring keeps the newest events: 12..19.
	var minTS = 1e18
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.TS < minTS {
			minTS = ev.TS
		}
	}
	if minTS != 12e6 {
		t.Fatalf("oldest surviving event at ts=%g µs, want 12e6", minTS)
	}
	if out.Metadata["dropped_events"].(float64) != 12 {
		t.Fatalf("metadata dropped_events = %v, want 12", out.Metadata["dropped_events"])
	}
}

// TestTraceConcurrency spawns concurrent span writers (run under -race).
func TestTraceConcurrency(t *testing.T) {
	tr := NewTrace(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("t", "op")
				tr.InstantAt("u", "tick", float64(i))
				sp.End(A("i", i))
			}
		}(w)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatal("export missing traceEvents")
	}
	if tr.Len() != 1024 {
		t.Fatalf("ring length = %d, want full 1024", tr.Len())
	}
}
