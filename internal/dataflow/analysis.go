package dataflow

import (
	"fmt"

	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

// LayerAnalysis profiles one layer on one hardware configuration at its
// best feasible mapping — the per-layer view MAESTRO-style tools give
// designers before any energy-subsystem consideration.
type LayerAnalysis struct {
	Layer  string
	Kind   string
	MACs   int64
	Params int64

	// Best mapping found (minimum-energy feasible).
	Mapping Mapping
	// NVM traffic at that mapping.
	ReadBytes, WriteBytes units.Bytes
	// ArithmeticIntensity is MACs per NVM byte moved: low values mark
	// memory-bound layers that tiling cannot rescue.
	ArithmeticIntensity float64
	// Energy and time of the layer (E_df, T_df).
	Energy units.Energy
	Time   units.Seconds
	// EnergyShare/TimeShare are filled by Analyze relative to the
	// workload totals.
	EnergyShare, TimeShare float64
}

// Analyze profiles every layer of a workload on the given hardware with
// the given dataflow, reporting per-layer bests plus workload shares.
func Analyze(w dnn.Workload, df Dataflow, hw HW) ([]LayerAnalysis, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	out := make([]LayerAnalysis, 0, len(w.Layers))
	var totalE, totalT float64
	for _, l := range w.Layers {
		m, c, err := MinTileMapping(l, w.ElemBytes, df, hw)
		if err != nil {
			return nil, fmt.Errorf("dataflow: analyze %s: %w", w.Name, err)
		}
		nvm := float64(c.ReadBytes) + float64(c.WriteBytes)
		la := LayerAnalysis{
			Layer:      l.Name,
			Kind:       l.Kind.String(),
			MACs:       l.MACs(),
			Params:     l.Params(),
			Mapping:    m,
			ReadBytes:  c.ReadBytes,
			WriteBytes: c.WriteBytes,
			Energy:     c.EDf,
			Time:       c.TDf,
		}
		if nvm > 0 {
			la.ArithmeticIntensity = float64(l.MACs()) / nvm
		}
		totalE += float64(c.EDf)
		totalT += float64(c.TDf)
		out = append(out, la)
	}
	for i := range out {
		if totalE > 0 {
			out[i].EnergyShare = float64(out[i].Energy) / totalE
		}
		if totalT > 0 {
			out[i].TimeShare = float64(out[i].Time) / totalT
		}
	}
	return out, nil
}
