package dataflow

import (
	"strings"
	"testing"
	"testing/quick"

	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

// testHW is a small accelerator-like configuration for cost-model tests.
func testHW() HW {
	return HW{
		NPE:              16,
		CacheBytes:       512,
		VMBytes:          64 * units.KB,
		EMAC:             1e-12,
		EVMPerByte:       0.5e-12,
		ENVMReadPerByte:  10e-12,
		ENVMWritePerByte: 20e-12,
		TMAC:             5e-9,
		PMemPerByte:      1e-9,
		PIdle:            50e-6,
	}
}

func convLayer(t *testing.T) dnn.Layer {
	t.Helper()
	l, err := dnn.NewConv2D("c", 16, 16, 16, 32, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestHWValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*HW)
	}{
		{"NPE=0", func(h *HW) { h.NPE = 0 }},
		{"cache=0", func(h *HW) { h.CacheBytes = 0 }},
		{"vm=0", func(h *HW) { h.VMBytes = 0 }},
		{"emac=0", func(h *HW) { h.EMAC = 0 }},
		{"tmac=0", func(h *HW) { h.TMAC = 0 }},
		{"negVM", func(h *HW) { h.EVMPerByte = -1 }},
		{"negRead", func(h *HW) { h.ENVMReadPerByte = -1 }},
		{"negStatic", func(h *HW) { h.PMemPerByte = -1 }},
		{"negIdle", func(h *HW) { h.PIdle = -1 }},
	}
	for _, tc := range cases {
		hw := testHW()
		tc.mut(&hw)
		if err := hw.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if err := testHW().Validate(); err != nil {
		t.Fatalf("valid HW rejected: %v", err)
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	l := convLayer(t)
	if _, err := Evaluate(l, 0, Mapping{NTile: 1}, testHW()); err == nil {
		t.Error("zero elem bytes should fail")
	}
	if _, err := Evaluate(l, 1, Mapping{NTile: 0}, testHW()); err == nil {
		t.Error("zero NTile should fail")
	}
	if _, err := Evaluate(l, 1, Mapping{NTile: 1, Dataflow: Dataflow(9)}, testHW()); err == nil {
		t.Error("unknown dataflow should fail")
	}
	if _, err := Evaluate(l, 1, Mapping{NTile: 1, Partition: Partition(9)}, testHW()); err == nil {
		t.Error("unknown partition should fail")
	}
	bad := testHW()
	bad.NPE = -1
	if _, err := Evaluate(l, 1, Mapping{NTile: 1}, bad); err == nil {
		t.Error("invalid HW should fail")
	}
}

func TestNVMTrafficConservation(t *testing.T) {
	// ByChannel: total weight reads across tiles == weight bytes, input
	// read N times, outputs written exactly once.
	l := convLayer(t)
	hw := testHW()
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		c, err := Evaluate(l, 1, Mapping{Dataflow: OS, Partition: ByChannel, NTile: n}, hw)
		if err != nil {
			t.Fatalf("NTile=%d: %v", n, err)
		}
		wantReads := float64(l.InputElems())*float64(n) + float64(l.WeightElems())
		if !units.ApproxEqual(float64(c.ReadBytes), wantReads, 1e-9) {
			t.Errorf("NTile=%d: reads %v, want %v", n, c.ReadBytes, wantReads)
		}
		if !units.ApproxEqual(float64(c.WriteBytes), float64(l.OutputElems()), 1e-9) {
			t.Errorf("NTile=%d: writes %v, want %v", n, c.WriteBytes, float64(l.OutputElems()))
		}
	}
}

func TestMoreTilesMoreEnergy(t *testing.T) {
	// The paper's Eq. 5 insight: increasing N_tile increases total
	// energy (more redundant NVM traffic), for by-channel conv tiling.
	l := convLayer(t)
	hw := testHW()
	var prev units.Energy
	for i, n := range []int{1, 2, 4, 8, 16, 32} {
		c, err := Evaluate(l, 1, Mapping{Dataflow: OS, Partition: ByChannel, NTile: n}, hw)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && c.EDf < prev {
			t.Errorf("NTile=%d: energy %v decreased below %v", n, c.EDf, prev)
		}
		prev = c.EDf
	}
}

func TestNTileClampedToExtent(t *testing.T) {
	l := convLayer(t) // OutC = 32
	c, err := Evaluate(l, 1, Mapping{Dataflow: OS, Partition: ByChannel, NTile: 1000}, testHW())
	if err != nil {
		t.Fatal(err)
	}
	if c.NTileEffective != 32 {
		t.Fatalf("NTileEffective = %d, want 32", c.NTileEffective)
	}
}

func TestOSMinimizesVMForConv(t *testing.T) {
	// With high output-reuse (conv), OS should move less VM traffic
	// than WS/IS which stream partial sums.
	l := convLayer(t)
	hw := testHW()
	get := func(d Dataflow) units.Bytes {
		c, err := Evaluate(l, 1, Mapping{Dataflow: d, Partition: ByChannel, NTile: 4}, hw)
		if err != nil {
			t.Fatal(err)
		}
		return c.VMBytes
	}
	os, ws, is := get(OS), get(WS), get(IS)
	if os >= ws || os >= is {
		t.Fatalf("OS VM traffic %v should be below WS %v and IS %v", os, ws, is)
	}
}

func TestCachePenaltyDegradesWS(t *testing.T) {
	// Shrinking the PE cache must not decrease WS energy, and must
	// strictly increase it once the stationary set no longer fits.
	l, err := dnn.NewConv2D("big", 64, 14, 14, 128, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	big := testHW()
	big.CacheBytes = 8 * units.KB
	big.VMBytes = 256 * units.KB
	small := testHW()
	small.CacheBytes = 128
	small.VMBytes = 256 * units.KB
	cBig, err := Evaluate(l, 1, Mapping{Dataflow: WS, Partition: ByChannel, NTile: 1}, big)
	if err != nil {
		t.Fatal(err)
	}
	cSmall, err := Evaluate(l, 1, Mapping{Dataflow: WS, Partition: ByChannel, NTile: 1}, small)
	if err != nil {
		t.Fatal(err)
	}
	if cSmall.EDf <= cBig.EDf {
		t.Fatalf("small cache %v should cost more than big cache %v", cSmall.EDf, cBig.EDf)
	}
}

func TestMorePEsFasterNeverSlower(t *testing.T) {
	// Eq. 6: T = T_df / N_PE.
	l := convLayer(t)
	base := testHW()
	base.NPE = 4
	fast := testHW()
	fast.NPE = 64
	cb, err := Evaluate(l, 1, Mapping{Dataflow: OS, NTile: 1}, base)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Evaluate(l, 1, Mapping{Dataflow: OS, NTile: 1}, fast)
	if err != nil {
		t.Fatal(err)
	}
	if cf.TDf >= cb.TDf {
		t.Fatalf("64 PEs (%v) should beat 4 PEs (%v)", cf.TDf, cb.TDf)
	}
	if !units.ApproxEqual(float64(cb.TDf)/float64(cf.TDf), 16, 1e-6) {
		t.Fatalf("speedup should be 16x, got %v", float64(cb.TDf)/float64(cf.TDf))
	}
}

func TestNVMBandwidthBound(t *testing.T) {
	l := convLayer(t)
	hw := testHW()
	hw.NVMBytesPerSec = 1 // absurdly slow NVM
	c, err := Evaluate(l, 1, Mapping{Dataflow: OS, NTile: 1}, hw)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming (in+w+out bytes)/1 Bps dominates compute time.
	if float64(c.TileTime) < float64(c.TileReadBytes)+float64(c.TileWriteBytes) {
		t.Fatalf("tile time %v should be bandwidth bound", c.TileTime)
	}
}

func TestVMOverflowRejected(t *testing.T) {
	l := convLayer(t)
	hw := testHW()
	hw.VMBytes = 128 // tiny VM: conv working set cannot fit
	_, err := Evaluate(l, 1, Mapping{Dataflow: OS, NTile: 1}, hw)
	if err == nil || !strings.Contains(err.Error(), "exceeds VM") {
		t.Fatalf("expected VM overflow error, got %v", err)
	}
}

func TestSpatialHaloOverhead(t *testing.T) {
	// Spatial tiling of a k=3, s=1 conv re-reads halo rows: input reads
	// must exceed the no-halo share but stay below the full input per tile.
	l := convLayer(t)
	c, err := Evaluate(l, 1, Mapping{Dataflow: OS, Partition: BySpatial, NTile: 4}, testHW())
	if err != nil {
		t.Fatal(err)
	}
	inB := float64(l.InputElems())
	perTileNoHalo := inB / 4
	tileIn := float64(c.TileReadBytes) - float64(l.WeightElems())
	if tileIn <= perTileNoHalo {
		t.Fatalf("tile input %v should exceed halo-free share %v", tileIn, perTileNoHalo)
	}
	if tileIn > inB {
		t.Fatalf("tile input %v should not exceed full input %v", tileIn, inB)
	}
}

func TestDenseAndMatMulExtents(t *testing.T) {
	d, _ := dnn.NewDense("d", 100, 40)
	if got := partitionExtent(&d, ByChannel); got != 40 {
		t.Fatalf("dense extent = %d, want 40", got)
	}
	m, _ := dnn.NewMatMul("m", 32, 768, 768, false)
	if got := partitionExtent(&m, ByChannel); got != 768 {
		t.Fatalf("matmul ByChannel extent = %d, want 768", got)
	}
	if got := partitionExtent(&m, BySpatial); got != 32 {
		t.Fatalf("matmul BySpatial extent = %d, want 32", got)
	}
	c1, _ := dnn.NewConv1D("c1", 4, 64, 8, 3, 1, 0)
	if got := partitionExtent(&c1, BySpatial); got != 62 {
		t.Fatalf("conv1d spatial extent = %d, want 62 (OutW)", got)
	}
}

func TestCandidateNTiles(t *testing.T) {
	l, _ := dnn.NewConv2D("c", 3, 8, 8, 12, 3, 1, 1)
	got := CandidateNTiles(l, ByChannel) // divisors of 12
	want := []int{1, 2, 3, 4, 6, 12}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestStaticEnergy(t *testing.T) {
	hw := testHW()
	// 64KB VM at 1nW/byte for 10s = 64*1024*1e-9*10 J plus idle 50uW*10s.
	got := StaticEnergy(hw, 10)
	want := 64*1024*1e-9*10 + 50e-6*10
	if !units.ApproxEqual(float64(got), want, 1e-9) {
		t.Fatalf("static = %v, want %v", got, want)
	}
}

func TestDirectivesRendering(t *testing.T) {
	l := convLayer(t)
	ds := Directives(l, Mapping{Dataflow: WS, Partition: ByChannel, NTile: 8})
	if len(ds) != 3 {
		t.Fatalf("directives = %v", ds)
	}
	if !strings.Contains(ds[0], "InterTempMap(8,8)") {
		t.Fatalf("missing InterTempMap: %v", ds[0])
	}
	if !strings.Contains(ds[2], "WS") {
		t.Fatalf("missing dataflow tag: %v", ds[2])
	}
}

func TestStringers(t *testing.T) {
	if WS.String() != "WS" || OS.String() != "OS" || IS.String() != "IS" {
		t.Error("dataflow strings")
	}
	if !strings.Contains(Dataflow(7).String(), "7") {
		t.Error("unknown dataflow string")
	}
	if ByChannel.String() != "by-channel" || BySpatial.String() != "by-spatial" {
		t.Error("partition strings")
	}
	if len(Dataflows()) != 3 {
		t.Error("Dataflows() should list 3")
	}
}

func TestCostPropertyEnergyTimePositive(t *testing.T) {
	// Property: any legal mapping on any catalog layer yields positive
	// energy and time, and layer totals equal per-tile × NTileEffective.
	layers := dnn.CIFAR10().Layers
	f := func(li, dfSel, pSel, nSel uint8) bool {
		l := layers[int(li)%len(layers)]
		m := Mapping{
			Dataflow:  Dataflows()[int(dfSel)%3],
			Partition: Partition(int(pSel) % 2),
			NTile:     int(nSel)%16 + 1,
		}
		c, err := Evaluate(l, 2, m, testHW())
		if err != nil {
			// VM overflow is a legal rejection, not a property failure.
			return strings.Contains(err.Error(), "exceeds VM")
		}
		if c.TileEnergy <= 0 || c.TileTime <= 0 {
			return false
		}
		n := float64(c.NTileEffective)
		return units.ApproxEqual(float64(c.EDf), float64(c.TileEnergy)*n, 1e-9) &&
			units.ApproxEqual(float64(c.TDf), float64(c.TileTime)*n, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPEUtilizationBound(t *testing.T) {
	// A dense layer with 12 outputs cannot keep 168 PEs busy: arrays
	// beyond the exposed parallelism stop helping.
	l, err := dnn.NewDense("fc", 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	small := testHW()
	small.NPE = 12
	big := testHW()
	big.NPE = 168
	m := Mapping{Dataflow: OS, Partition: ByChannel, NTile: 1}
	cs, err := Evaluate(l, 1, m, small)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Evaluate(l, 1, m, big)
	if err != nil {
		t.Fatal(err)
	}
	if cb.TDf != cs.TDf {
		t.Fatalf("168 PEs (%v) should be no faster than 12 PEs (%v) on a 12-output layer", cb.TDf, cs.TDf)
	}
	// But a wide conv layer keeps scaling.
	conv := convLayer(t) // 32 channels × 16×16 outputs
	ccs, _ := Evaluate(conv, 1, m, small)
	ccb, _ := Evaluate(conv, 1, m, big)
	if ccb.TDf >= ccs.TDf {
		t.Fatalf("wide conv should still benefit from more PEs: %v vs %v", ccb.TDf, ccs.TDf)
	}
}
