package dataflow

import (
	"strings"
	"testing"

	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

func TestBuildLoopNestConv(t *testing.T) {
	l := convLayer(t) // 16->32 channels, 16x16
	nest := BuildLoopNest(l, Mapping{Dataflow: OS, Partition: ByChannel, NTile: 4})
	if nest.Layer != l.Name {
		t.Fatalf("layer = %q", nest.Layer)
	}
	if nest.Levels[0].Directive != "InterTempMap" || nest.Levels[0].Dim != "C_out" {
		t.Fatalf("outer level = %+v", nest.Levels[0])
	}
	if nest.Levels[0].Count != 4 || nest.Levels[0].Size != 8 {
		t.Fatalf("ckpt tiling = %+v, want 4 tiles of 8 channels", nest.Levels[0])
	}
	if nest.Levels[1].Directive != "SpatialMap" || nest.Levels[1].Dim != "Y'" {
		t.Fatalf("OS should spread output rows: %+v", nest.Levels[1])
	}
	// WS spreads output channels instead.
	ws := BuildLoopNest(l, Mapping{Dataflow: WS, Partition: ByChannel, NTile: 4})
	if ws.Levels[1].Dim != "C_out" {
		t.Fatalf("WS spatial dim = %q", ws.Levels[1].Dim)
	}
}

func TestBuildLoopNestDenseAndMatMul(t *testing.T) {
	d, _ := dnn.NewDense("fc", 100, 40)
	nest := BuildLoopNest(d, Mapping{Dataflow: OS, Partition: ByChannel, NTile: 5})
	if nest.Levels[0].Size != 8 {
		t.Fatalf("dense ckpt size = %d, want 8 neurons/tile", nest.Levels[0].Size)
	}
	if nest.Levels[1].Dim != "C_out" || nest.Levels[2].Dim != "C_in" {
		t.Fatalf("dense dims = %+v", nest.Levels)
	}
	m, _ := dnn.NewMatMul("mm", 32, 768, 64, false)
	mn := BuildLoopNest(m, Mapping{Dataflow: WS, Partition: ByChannel, NTile: 8})
	if mn.Levels[0].Dim != "N" || mn.Levels[0].Count != 8 {
		t.Fatalf("matmul ckpt = %+v", mn.Levels[0])
	}
}

func TestLoopNestClampsTiles(t *testing.T) {
	l := convLayer(t) // OutC = 32
	nest := BuildLoopNest(l, Mapping{Dataflow: OS, Partition: ByChannel, NTile: 999})
	if nest.Levels[0].Count != 32 {
		t.Fatalf("tile count should clamp to extent: %d", nest.Levels[0].Count)
	}
	zero := BuildLoopNest(l, Mapping{Dataflow: OS, Partition: ByChannel, NTile: 0})
	if zero.Levels[0].Count != 1 {
		t.Fatalf("zero tiles should clamp to 1: %d", zero.Levels[0].Count)
	}
}

func TestLoopNestRender(t *testing.T) {
	l := convLayer(t)
	out := BuildLoopNest(l, Mapping{Dataflow: OS, Partition: BySpatial, NTile: 2}).Render()
	for _, want := range []string{"InterTempMap", "SpatialMap", "TemporalMap", "for Y·X", "①", "⑤", "compute partial sums (OS)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Indentation must deepen with nesting.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "  for") {
		t.Fatalf("second loop not indented: %q", lines[2])
	}
}

func TestLoopNest1DLayer(t *testing.T) {
	c1, _ := dnn.NewConv1D("c1", 4, 64, 8, 3, 1, 0)
	nest := BuildLoopNest(c1, Mapping{Dataflow: OS, Partition: BySpatial, NTile: 2})
	if nest.Levels[0].Dim != "X" {
		t.Fatalf("1-D ckpt dim = %q, want X", nest.Levels[0].Dim)
	}
}

func TestAnalyze(t *testing.T) {
	hw := testHW()
	hw.VMBytes = 256 * units.KB
	rows, err := Analyze(dnn.CIFAR10(), OS, hw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(dnn.CIFAR10().Layers) {
		t.Fatalf("rows = %d", len(rows))
	}
	var eShare, tShare float64
	for _, r := range rows {
		if r.MACs <= 0 || r.Energy <= 0 || r.Time <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.ArithmeticIntensity <= 0 {
			t.Fatalf("no arithmetic intensity for %s", r.Layer)
		}
		eShare += r.EnergyShare
		tShare += r.TimeShare
	}
	if eShare < 0.999 || eShare > 1.001 || tShare < 0.999 || tShare > 1.001 {
		t.Fatalf("shares should sum to 1: %v / %v", eShare, tShare)
	}
	// Convolutions reuse data far more than dense layers.
	var convAI, denseAI float64
	for _, r := range rows {
		switch r.Kind {
		case "conv2d":
			if r.ArithmeticIntensity > convAI {
				convAI = r.ArithmeticIntensity
			}
		case "dense":
			if r.ArithmeticIntensity > denseAI {
				denseAI = r.ArithmeticIntensity
			}
		}
	}
	if convAI <= denseAI {
		t.Fatalf("conv AI %v should exceed dense AI %v", convAI, denseAI)
	}
	// Invalid workload is rejected.
	if _, err := Analyze(dnn.Workload{}, OS, hw); err == nil {
		t.Fatal("invalid workload should fail")
	}
}
