package dataflow

import (
	"fmt"
	"strings"

	"chrysalis/internal/dnn"
)

// LoopLevel is one directive of the data-centric mapping description
// (paper Fig. 4): which dimension it iterates, how large each step is,
// and which mapping class it belongs to.
type LoopLevel struct {
	// Directive is "InterTempMap", "SpatialMap" or "TemporalMap".
	Directive string
	// Dim names the iterated dimension (C_out, Y, C_in, R, S, ...).
	Dim string
	// Size is the tile size of each step along Dim.
	Size int
	// Count is the number of steps (the loop trip count).
	Count int
}

// LoopNest is the full mapping description of one layer: the ordered
// directive levels plus the innermost compute body, annotated with the
// paper's R/C/W/save/resume process steps.
type LoopNest struct {
	Layer  string
	Levels []LoopLevel
	Body   []string
}

// BuildLoopNest derives the Fig. 4 loop nest for a layer under a
// mapping: the outermost InterTempMap level carries the checkpoint
// tiling, a SpatialMap level spreads work across PEs, and TemporalMap
// levels cover the remaining dimensions.
func BuildLoopNest(l dnn.Layer, m Mapping) LoopNest {
	n := m.NTile
	if ext := partitionExtent(&l, m.Partition); n > ext {
		n = ext
	}
	if n < 1 {
		n = 1
	}

	ckptDim, ckptExt := interTempDim(l, m.Partition)
	size := ckptExt / n
	if size < 1 {
		size = 1
	}

	nest := LoopNest{Layer: l.Name}
	nest.Levels = append(nest.Levels, LoopLevel{
		Directive: "InterTempMap", Dim: ckptDim, Size: size, Count: n,
	})

	// The spatial dimension depends on the dataflow: OS spreads output
	// pixels across PEs; WS/IS spread output channels so the stationary
	// operand stays put.
	switch {
	case l.Kind == dnn.Dense:
		nest.Levels = append(nest.Levels,
			LoopLevel{Directive: "SpatialMap", Dim: "C_out", Size: 1, Count: l.OutC},
			LoopLevel{Directive: "TemporalMap", Dim: "C_in", Size: 1, Count: l.InC},
		)
	case l.Kind == dnn.MatMul:
		nest.Levels = append(nest.Levels,
			LoopLevel{Directive: "SpatialMap", Dim: "N", Size: 1, Count: l.N},
			LoopLevel{Directive: "TemporalMap", Dim: "M", Size: 1, Count: l.M},
			LoopLevel{Directive: "TemporalMap", Dim: "K", Size: 1, Count: l.K},
		)
	default: // convolutions and pooling
		spatialDim, spatialCount := "Y'", l.OutH
		if m.Dataflow != OS {
			spatialDim, spatialCount = "C_out", l.OutC
		}
		nest.Levels = append(nest.Levels,
			LoopLevel{Directive: "SpatialMap", Dim: spatialDim, Size: 1, Count: spatialCount},
			LoopLevel{Directive: "TemporalMap", Dim: "X'", Size: 1, Count: l.OutW},
			LoopLevel{Directive: "TemporalMap", Dim: "C_in", Size: 1, Count: l.InC},
			LoopLevel{Directive: "TemporalMap", Dim: "R", Size: 1, Count: l.KH},
			LoopLevel{Directive: "TemporalMap", Dim: "S", Size: 1, Count: l.KW},
		)
	}

	nest.Body = []string{
		"① read tile data NVM→VM",
		"② fetch operands VM→PE",
		fmt.Sprintf("③ compute partial sums (%s)", m.Dataflow),
		"④ write partials PE→VM",
		"⑤ write tile outputs VM→NVM",
		"⑥ save ckpt (on low energy) / ⑦ resume after power-up",
	}
	return nest
}

// Render prints the nest as indented pseudo-code, matching the paper's
// Figure 4 loop-nest panel.
func (n LoopNest) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// layer %s\n", n.Layer)
	indent := ""
	for _, lv := range n.Levels {
		fmt.Fprintf(&b, "%sfor %s in 0..%d step %d:  // %s(%d,%d)\n",
			indent, lv.Dim, lv.Count*lv.Size, lv.Size, lv.Directive, lv.Size, lv.Size)
		indent += "  "
	}
	for _, line := range n.Body {
		b.WriteString(indent + line + "\n")
	}
	return b.String()
}

// interTempDim names the checkpoint-tiling dimension and its extent.
func interTempDim(l dnn.Layer, p Partition) (string, int) {
	switch {
	case l.Kind == dnn.Dense:
		return "C_out", l.OutC
	case l.Kind == dnn.MatMul:
		if p == ByChannel {
			return "N", l.N
		}
		return "M", l.M
	case p == ByChannel:
		return "C_out", l.OutC
	default:
		if l.OutH > 1 {
			return "Y·X", l.OutH * l.OutW
		}
		return "X", l.OutW
	}
}
