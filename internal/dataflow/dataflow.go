// Package dataflow implements CHRYSALIS's intermittent mapping
// description and dataflow cost model — the substitute for MAESTRO's
// data-centric directives extended with the paper's InterTempMap
// directive (Sec. III-B.2, Fig. 4).
//
// A Mapping describes how one DNN layer is executed on the inference
// hardware: the dataflow taxonomy (weight/output/input stationary), how
// the layer is partitioned into checkpoint tiles (the InterTempMap
// dimension), and how many tiles there are. The cost model turns a
// (layer, mapping, hardware) triple into the quantities the paper's
// equations consume: E_df and T_df (Eq. 5–6), NVM/VM traffic, and the
// per-tile working set that sizes checkpoints.
//
// Traffic decomposes across two boundaries, mirroring MAESTRO's cluster
// levels:
//
//   - NVM ↔ VM: governed by the tile partitioning. Each tile reads its
//     inputs and weights from NVM once and writes its outputs back once
//     (paper Fig. 4 steps ①,⑤).
//   - VM ↔ PE: governed by the dataflow. The stationary operand is
//     fetched once per residency into the PE cache; the moving operands
//     stream once per MAC. Partial sums stay in PE registers for OS and
//     stream otherwise. Cache pressure degrades reuse proportionally.
package dataflow

import (
	"fmt"

	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

// CostModelVersion identifies the current generation of the dataflow
// cost model (Eq. 4–6, the traffic decomposition and the cache-pressure
// reuse degradation). Bump it whenever a change alters any quantity
// Evaluate reports for an existing (layer, mapping, hardware) triple —
// process-lifetime caches key derived artifacts on it so entries built
// under an older model are invalidated instead of silently served.
const CostModelVersion = 1

// Dataflow is the paper's dataflow taxonomy (Sec. III-A inputs):
// weight stationary, output stationary, or input stationary.
type Dataflow int

const (
	// WS keeps weights resident in the PE cache.
	WS Dataflow = iota
	// OS keeps partial sums resident in PE registers.
	OS
	// IS keeps input activations resident in the PE cache.
	IS
)

// String implements fmt.Stringer.
func (d Dataflow) String() string {
	switch d {
	case WS:
		return "WS"
	case OS:
		return "OS"
	case IS:
		return "IS"
	default:
		return fmt.Sprintf("dataflow(%d)", int(d))
	}
}

// Dataflows lists all taxonomy members for search enumeration.
func Dataflows() []Dataflow { return []Dataflow{WS, OS, IS} }

// Partition selects the InterTempMap tiling dimension.
type Partition int

const (
	// ByChannel tiles the layer along output channels: every tile needs
	// the full input but only its slice of the weights.
	ByChannel Partition = iota
	// BySpatial tiles the layer along output rows: every tile needs all
	// weights but only its (halo-expanded) slice of the input.
	BySpatial
)

// String implements fmt.Stringer.
func (p Partition) String() string {
	if p == ByChannel {
		return "by-channel"
	}
	return "by-spatial"
}

// Mapping is the software half of the paper's design space for one
// layer: the checkpoint tiling and the dataflow.
type Mapping struct {
	Dataflow  Dataflow
	Partition Partition
	// NTile is the paper's N_tile: the number of InterTempMap tiles the
	// layer is split into. Power interruptions can only occur between
	// tiles; each tile must fit one energy cycle (Eq. 8).
	NTile int
}

// HW carries the inference-hardware constants the cost model needs.
// Accelerator and MCU describers (internal/accel, internal/msp430)
// construct values of this type; keeping it here avoids a dependency
// cycle between the describers and the cost model.
type HW struct {
	// NPE is the number of processing elements (paper N_PE).
	NPE int
	// CacheBytes is the per-PE cache capacity (Table V: 128 B – 2 KB).
	CacheBytes units.Bytes
	// VMBytes is the volatile working memory available for a tile
	// (paper N_mem is per-PE; VMBytes is the total VM).
	VMBytes units.Bytes

	// EMAC is the energy per multiply-accumulate.
	EMAC units.Energy
	// EVMPerByte is the energy per byte moved between VM and a PE.
	EVMPerByte units.Energy
	// ENVMReadPerByte / ENVMWritePerByte are the paper's e_r and e_w.
	ENVMReadPerByte  units.Energy
	ENVMWritePerByte units.Energy

	// TMAC is the time one PE takes for one MAC.
	TMAC units.Seconds
	// NVMBytesPerSec bounds NVM streaming bandwidth (0 = unbounded).
	NVMBytesPerSec float64

	// PMemPerByte is the paper's p_mem: static power per byte of VM.
	PMemPerByte units.Power
	// PIdle is the controller/accelerator idle power while powered.
	PIdle units.Power

	// StreamReuse is the array-level spatial-reuse factor: how many
	// MACs each byte streamed from VM feeds on average, thanks to
	// multicast across PEs and per-PE cache reuse. Values below 1 are
	// treated as 1 (a lone MAC consumes each operand byte once).
	StreamReuse float64
}

// streamReuseOf returns the effective reuse factor.
func streamReuseOf(hw *HW) float64 {
	if hw.StreamReuse < 1 {
		return 1
	}
	return hw.StreamReuse
}

// Validate checks HW invariants.
func (hw HW) Validate() error {
	if hw.NPE <= 0 {
		return fmt.Errorf("dataflow: NPE must be positive, got %d", hw.NPE)
	}
	if hw.CacheBytes <= 0 || hw.VMBytes <= 0 {
		return fmt.Errorf("dataflow: cache (%v) and VM (%v) must be positive", hw.CacheBytes, hw.VMBytes)
	}
	if hw.EMAC <= 0 || hw.TMAC <= 0 {
		return fmt.Errorf("dataflow: EMAC (%v) and TMAC (%v) must be positive", hw.EMAC, hw.TMAC)
	}
	if hw.EVMPerByte < 0 || hw.ENVMReadPerByte < 0 || hw.ENVMWritePerByte < 0 {
		return fmt.Errorf("dataflow: negative access energy")
	}
	if hw.PMemPerByte < 0 || hw.PIdle < 0 {
		return fmt.Errorf("dataflow: negative static power")
	}
	return nil
}

// Cost is the evaluated cost of one layer under one mapping.
type Cost struct {
	Layer   string
	Mapping Mapping

	// NTileEffective is the tile count after clamping to the partition
	// dimension's extent.
	NTileEffective int

	// Per-tile quantities (the paper's E_tile building blocks, Eq. 4).
	TileMACs       int64
	TileReadBytes  units.Bytes // NVM reads: inputs + weights (①②)
	TileWriteBytes units.Bytes // NVM writes: outputs (⑤)
	TileVMBytes    units.Bytes // VM↔PE streaming traffic (②③④)
	TileWorkingSet units.Bytes // VM occupancy; sizes the checkpoint
	TileEnergy     units.Energy
	// TileNVMEnergy is the NVM read/write component of TileEnergy
	// (e_r·(inputs+weights) + e_w·outputs), reported separately so the
	// simulator and the analytic evaluator split Infer vs NVM-IO from
	// the same decomposition.
	TileNVMEnergy units.Energy
	TileTime      units.Seconds

	// Layer totals.
	MACs       int64
	ReadBytes  units.Bytes
	WriteBytes units.Bytes
	VMBytes    units.Bytes
	// EDf is the paper's E_df: compute + data-movement energy for the
	// whole layer (excluding static and checkpoint energy, which the
	// simulator adds per Eq. 5).
	EDf units.Energy
	// TDf is the paper's T_df normalized per Eq. 6: the layer's powered
	// execution time on this hardware (already divided by N_PE).
	TDf units.Seconds
}

// Evaluate runs the cost model for a layer.
func Evaluate(l dnn.Layer, elemBytes int, m Mapping, hw HW) (c Cost, err error) {
	if err := hw.Validate(); err != nil {
		return Cost{}, err
	}
	if elemBytes <= 0 {
		return Cost{}, fmt.Errorf("dataflow: element bytes must be positive, got %d", elemBytes)
	}
	if m.NTile <= 0 {
		return Cost{}, fmt.Errorf("dataflow: NTile must be positive, got %d", m.NTile)
	}
	switch m.Dataflow {
	case WS, OS, IS:
	default:
		return Cost{}, fmt.Errorf("dataflow: unknown dataflow %d", int(m.Dataflow))
	}
	switch m.Partition {
	case ByChannel, BySpatial:
	default:
		return Cost{}, fmt.Errorf("dataflow: unknown partition %d", int(m.Partition))
	}
	if !evaluate(&l, elemBytes, m, &hw, &c) {
		err = fmt.Errorf("dataflow: tile working set %s exceeds VM %v (layer %s, NTile %d)",
			c.TileWorkingSet.String(), hw.VMBytes, l.Name, c.NTileEffective)
		c = Cost{}
	}
	return c, err
}

// TryEvaluate is the allocation-free variant of Evaluate for hot search
// loops: any failure — invalid inputs or a tile working set exceeding VM
// — is reported as ok=false instead of a constructed error. The success
// path is bit-identical to Evaluate.
func TryEvaluate(l dnn.Layer, elemBytes int, m Mapping, hw HW) (c Cost, ok bool) {
	if elemBytes <= 0 || m.NTile <= 0 || hw.Validate() != nil {
		return Cost{}, false
	}
	switch m.Dataflow {
	case WS, OS, IS:
	default:
		return Cost{}, false
	}
	switch m.Partition {
	case ByChannel, BySpatial:
	default:
		return Cost{}, false
	}
	ok = evaluate(&l, elemBytes, m, &hw, &c)
	return c, ok
}

// evaluate is the validated cost-model core, writing into *c to spare
// the callers a copy of the sizeable Cost struct per hop. It reports
// ok=false only for the one data-dependent failure — the tile working
// set exceeding VM — filling TileWorkingSet and NTileEffective so
// Evaluate can build its diagnostic without redoing the math.
func evaluate(l *dnn.Layer, elemBytes int, m Mapping, hw *HW, c *Cost) bool {
	ext := partitionExtent(l, m.Partition)
	n := m.NTile
	if n > ext {
		n = ext
	}

	eb := float64(elemBytes)
	inB := float64(l.InputElems()) * eb
	wB := float64(l.WeightElems()) * eb
	outB := float64(l.OutputElems()) * eb
	macs := l.MACs()

	// --- NVM ↔ VM traffic, set by the tile partitioning. ---
	var tileIn, tileW float64
	tileOut := outB / float64(n)
	if m.Partition == ByChannel {
		tileIn = inB
		tileW = wB / float64(n)
	} else {
		tileIn = inB / float64(n) * haloFactor(l, n)
		if tileIn > inB {
			tileIn = inB
		}
		tileW = wB
	}
	tileMACs := macs / int64(n)
	if tileMACs < 1 {
		tileMACs = 1
	}

	// --- VM ↔ PE traffic, set by the dataflow. ---
	// Each MAC consumes one input element and one weight element and
	// updates one partial sum. The stationary operand is fetched only
	// once per cache residency; the others stream per MAC. Partial sums
	// held in registers (OS) are written once per output.
	// Spatial reuse: each streamed byte feeds streamReuse MACs.
	macB := float64(tileMACs) * eb / streamReuseOf(hw)
	var vmTile float64
	switch m.Dataflow {
	case WS:
		stationaryFetch := tileW * cachePenalty(tileW, hw)
		vmTile = stationaryFetch + macB /*inputs*/ + 2*macB /*psum rd+wr*/ + tileOut
	case OS:
		vmTile = macB /*inputs*/ + macB /*weights*/ + tileOut /*final psum*/
	case IS:
		stationaryFetch := tileIn * cachePenalty(tileIn, hw)
		vmTile = stationaryFetch + macB /*weights*/ + 2*macB /*psum rd+wr*/ + tileOut
	}

	// --- Working set: what VM must hold while a tile executes. ---
	// Activations (the tile's inputs and partial outputs) must be
	// VM-resident; weights stream from NVM through the PE caches
	// (FRAM and accelerator weight FIFOs are read-in-place), so they
	// never occupy VM and never need checkpointing.
	workingSet := tileIn + tileOut
	if vmCap := float64(hw.VMBytes); workingSet > vmCap {
		// The tile does not fit VM; the hardware would have to spill.
		// We surface this as an infeasible mapping so the search avoids it.
		*c = Cost{TileWorkingSet: units.Bytes(workingSet), NTileEffective: n}
		return false
	}

	// --- Energy (E_df components) ---
	// tileNVM repeats the two NVM terms of tileEnergy instead of being
	// folded into its sum so the total keeps its exact summation order.
	tileNVM := float64(hw.ENVMReadPerByte)*(tileIn+tileW) +
		float64(hw.ENVMWritePerByte)*tileOut
	tileEnergy := float64(hw.EMAC)*float64(tileMACs) +
		float64(hw.EVMPerByte)*vmTile +
		float64(hw.ENVMReadPerByte)*(tileIn+tileW) +
		float64(hw.ENVMWritePerByte)*tileOut

	// --- Time (T_df/N_PE per Eq. 6, bounded by NVM bandwidth) ---
	// The array cannot use more PEs than the tile exposes parallelism:
	// a 12-neuron dense tile keeps at most 12 PEs busy regardless of
	// array size (MAESTRO's utilization effect).
	effNPE := float64(hw.NPE)
	if parallel := tileOut / eb; parallel < effNPE && parallel >= 1 {
		effNPE = parallel
	}
	compute := float64(hw.TMAC) * float64(tileMACs) / effNPE
	tileTime := compute
	if hw.NVMBytesPerSec > 0 {
		stream := (tileIn + tileW + tileOut) / hw.NVMBytesPerSec
		if stream > tileTime {
			tileTime = stream
		}
	}

	*c = Cost{
		Layer:          l.Name,
		Mapping:        m,
		NTileEffective: n,
		TileMACs:       tileMACs,
		TileReadBytes:  units.Bytes(tileIn + tileW),
		TileWriteBytes: units.Bytes(tileOut),
		TileVMBytes:    units.Bytes(vmTile),
		TileWorkingSet: units.Bytes(workingSet),
		TileEnergy:     units.Energy(tileEnergy),
		TileNVMEnergy:  units.Energy(tileNVM),
		TileTime:       units.Seconds(tileTime),
		MACs:           macs,
		ReadBytes:      units.Bytes((tileIn + tileW) * float64(n)),
		WriteBytes:     units.Bytes(tileOut * float64(n)),
		VMBytes:        units.Bytes(vmTile * float64(n)),
		EDf:            units.Energy(tileEnergy * float64(n)),
		TDf:            units.Seconds(tileTime * float64(n)),
	}
	return true
}

// partitionExtent returns the extent of the dimension a partition tiles
// along, i.e. the maximum useful NTile.
func partitionExtent(l *dnn.Layer, p Partition) int {
	switch {
	case l.Kind == dnn.Dense:
		return l.OutC // both partitions tile output neurons
	case l.Kind == dnn.MatMul:
		if p == ByChannel {
			return l.N
		}
		return l.M
	case p == ByChannel:
		return l.OutC
	default:
		// Spatial tiling covers the whole output plane: tiles can be
		// whole rows or sub-row strips, down to single output pixels.
		return l.OutH * l.OutW
	}
}

// haloFactor estimates the input over-fetch of spatial tiling: adjacent
// tiles re-read (k − stride) boundary rows/columns. Coarse tilings pay
// a row-halo that grows as tiles shrink; once tiles drop below a full
// row the column halo compounds it, saturating at the k²/stride²
// overfetch of per-pixel tiling (the caller additionally caps the
// per-tile input at the full input).
func haloFactor(l *dnn.Layer, n int) float64 {
	if l.Kind == dnn.Dense || l.Kind == dnn.MatMul || n <= 1 {
		return 1
	}
	rowOverlap := float64(l.KH - l.Stride)
	colOverlap := float64(l.KW - l.Stride)
	rows := float64(l.OutH)
	if rows <= 1 { // 1-D layers tile along width only
		rows = float64(l.OutW)
		rowOverlap = colOverlap
		colOverlap = 0
	}
	f := 1.0
	nRows := float64(n)
	if nRows > rows {
		nRows = rows
	}
	if rowOverlap > 0 {
		rowsPerTile := rows / nRows
		f *= 1 + rowOverlap/(rowsPerTile*float64(l.Stride))
	}
	// Sub-row tiling splits columns too.
	if colsSplit := float64(n) / rows; colsSplit > 1 && colOverlap > 0 {
		cols := float64(l.OutW)
		if colsSplit > cols {
			colsSplit = cols
		}
		colsPerTile := cols / colsSplit
		f *= 1 + colOverlap/(colsPerTile*float64(l.Stride))
	}
	return f
}

// cachePenalty returns how many times the stationary operand must be
// (re)fetched given the per-PE cache capacity: 1 when the per-PE share
// fits, growing proportionally as it exceeds the cache.
func cachePenalty(stationaryBytes float64, hw *HW) float64 {
	perPE := stationaryBytes / float64(hw.NPE)
	cacheCap := float64(hw.CacheBytes)
	if perPE <= cacheCap {
		return 1
	}
	return perPE / cacheCap
}

// CandidateNTiles returns the useful tile counts for a layer/partition:
// the divisors of the partition extent (the paper's "factors of each
// dimension", Table IV), always including 1 and the extent itself.
func CandidateNTiles(l dnn.Layer, p Partition) []int {
	return AppendCandidateNTiles(nil, l, p)
}

// AppendCandidateNTiles appends the layer/partition's candidate tile
// counts to dst (ascending) and returns the extended slice, letting hot
// search loops reuse one buffer across layers. Divisors are enumerated
// in O(√extent): small divisors up to √extent directly, then their
// complements in descending small-divisor order.
func AppendCandidateNTiles(dst []int, l dnn.Layer, p Partition) []int {
	ext := partitionExtent(&l, p)
	start := len(dst)
	for d := 1; d*d <= ext; d++ {
		if ext%d == 0 {
			dst = append(dst, d)
		}
	}
	for i := len(dst) - 1; i >= start; i-- {
		if q := ext / dst[i]; q != dst[i] {
			dst = append(dst, q)
		}
	}
	return dst
}

// StaticEnergy returns the static-memory term of Eq. 5 for an execution
// of duration t: T · N_mem · p_mem (plus idle power when provided).
func StaticEnergy(hw HW, t units.Seconds) units.Energy {
	return units.MulPT(hw.PMemPerByte, t)*units.Energy(float64(hw.VMBytes)) +
		units.MulPT(hw.PIdle, t)
}

// Directives renders the paper's Figure 4 mapping description for a
// layer: the data-centric directive list including the InterTempMap
// checkpoint-tile directive.
func Directives(l dnn.Layer, m Mapping) []string {
	dim := "C_out"
	if m.Partition == BySpatial {
		dim = "Y"
	}
	spatial := "C_out"
	if m.Dataflow == OS {
		spatial = "Y'"
	}
	return []string{
		fmt.Sprintf("InterTempMap(%d,%d) %s  // ckpt tile", m.NTile, m.NTile, dim),
		fmt.Sprintf("SpatialMap(1,1) %s", spatial),
		fmt.Sprintf("TemporalMap(%d,%d) K  // %s", l.KH, l.KH, m.Dataflow),
	}
}

// MinTileMapping returns the feasible mapping with the lowest layer
// energy for the given dataflow, scanning both partitions and taking the
// coarsest feasible tiling of each (coarser tilings always cost less in
// this model). It returns an error only when no tiling fits the
// hardware's VM at all.
func MinTileMapping(l dnn.Layer, elemBytes int, df Dataflow, hw HW) (Mapping, Cost, error) {
	var (
		best     Mapping
		bestCost Cost
		found    bool
	)
	for _, p := range []Partition{ByChannel, BySpatial} {
		for _, n := range CandidateNTiles(l, p) {
			m := Mapping{Dataflow: df, Partition: p, NTile: n}
			c, err := Evaluate(l, elemBytes, m, hw)
			if err != nil {
				continue
			}
			if !found || c.EDf < bestCost.EDf {
				best, bestCost, found = m, c, true
			}
			break // first feasible tiling per partition is its cheapest
		}
	}
	if !found {
		return Mapping{}, Cost{}, fmt.Errorf("dataflow: layer %s has no feasible mapping on this hardware", l.Name)
	}
	return best, bestCost, nil
}
