package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a peer Client.
type Options struct {
	// Self is this node's own base URL as it appears in Peers (e.g.
	// "http://10.0.0.1:8080"). Keys owned by Self run locally.
	Self string
	// Peers lists every cluster node's base URL, including Self. All
	// nodes must use the same list (order-insensitive) so they agree on
	// ring ownership.
	Peers []string
	// Replicas is the virtual-node count per node (<= 0 selects
	// DefaultReplicas).
	Replicas int
	// Timeout bounds each peer HTTP call (<= 0 selects 2s). Delegated
	// evaluations poll with repeated short calls, so one slow search
	// never trips it.
	Timeout time.Duration
	// PollInterval spaces delegation polls (<= 0 selects 100ms).
	PollInterval time.Duration
	// FailureBackoff is the base breaker hold-off after a peer error
	// (<= 0 selects 1s); it doubles per consecutive failure up to
	// BackoffMax (<= 0 selects 30s). While a peer's breaker is open its
	// keys run locally — degradation, never a user-visible failure.
	FailureBackoff time.Duration
	BackoffMax     time.Duration
	// Client is the HTTP client to use (nil builds one from Timeout).
	Client *http.Client
	// OnHop, when non-nil, observes the wall-clock duration of every
	// completed HTTP exchange with a peer (any status; transport
	// failures are not hops). Serving layers hang per-peer latency
	// histograms off it. Must be fast and safe for concurrent use.
	OnHop func(peer string, seconds float64)
	// OnBreaker, when non-nil, fires on circuit-breaker state
	// transitions: open=true when a peer's breaker trips closed→open,
	// open=false when a call succeeds against a previously-open breaker.
	// Repeated failures while already open do not re-fire.
	OnBreaker func(peer string, open bool)
	// now is injectable for breaker tests.
	now func() time.Time
}

// Stats is a point-in-time snapshot of the client's counters.
type Stats struct {
	// RemoteHits counts designs served from a peer's result cache.
	RemoteHits int64
	// RemoteMisses counts owner probes that missed and turned into
	// delegated evaluations.
	RemoteMisses int64
	// PeerErrors counts failed peer calls (timeouts, refused
	// connections, non-2xx responses).
	PeerErrors int64
	// Fallbacks counts evaluations that ran locally although a peer
	// owned the key (breaker open or delegation failed mid-flight).
	Fallbacks int64
}

// Client is the peer-facing half of a cluster node: ring lookups plus
// breaker-guarded HTTP calls to other nodes. Safe for concurrent use.
type Client struct {
	opts Options
	ring *Ring
	http *http.Client
	now  func() time.Time

	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
	peerErrors   atomic.Int64
	fallbacks    atomic.Int64

	mu       sync.Mutex
	breakers map[string]*breaker
}

// breaker tracks one peer's consecutive failures and the earliest next
// attempt.
type breaker struct {
	failures int
	openTill time.Time
}

// New validates the options and builds a client. It is an error for
// Self to be absent from Peers, or for the cluster to have fewer than
// two nodes — a single node needs no peer client.
func New(o Options) (*Client, error) {
	if o.Self == "" {
		return nil, errors.New("cluster: Self must be set")
	}
	found := false
	for _, p := range o.Peers {
		if p == o.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", o.Self, o.Peers)
	}
	ring := NewRing(o.Peers, o.Replicas)
	if len(ring.Nodes()) < 2 {
		return nil, fmt.Errorf("cluster: need >= 2 distinct peers, got %v", ring.Nodes())
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.FailureBackoff <= 0 {
		o.FailureBackoff = time.Second
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	hc := o.Client
	if hc == nil {
		hc = &http.Client{Timeout: o.Timeout}
	}
	now := o.now
	if now == nil {
		now = time.Now
	}
	return &Client{opts: o, ring: ring, http: hc, now: now, breakers: make(map[string]*breaker)}, nil
}

// Ring returns the client's ring (for tests and tooling).
func (c *Client) Ring() *Ring { return c.ring }

// Self returns this node's base URL.
func (c *Client) Self() string { return c.opts.Self }

// Stats snapshots the counters.
func (c *Client) Stats() Stats {
	return Stats{
		RemoteHits:   c.remoteHits.Load(),
		RemoteMisses: c.remoteMisses.Load(),
		PeerErrors:   c.peerErrors.Load(),
		Fallbacks:    c.fallbacks.Load(),
	}
}

// PeersUp reports how many remote peers currently have a closed
// breaker (reachable as far as we know).
func (c *Client) PeersUp() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	up := 0
	now := c.now()
	for _, n := range c.ring.Nodes() {
		if n == c.opts.Self {
			continue
		}
		if b, ok := c.breakers[n]; !ok || !now.Before(b.openTill) {
			up++
		}
	}
	return up
}

// RemoteOwner resolves the key's owner. It returns ("", false) when the
// key is owned by this node, and (owner, false) with a fallback counted
// when the owner's breaker is open — the caller should evaluate
// locally in both cases.
func (c *Client) RemoteOwner(key string) (owner string, remote bool) {
	owner = c.ring.Owner(key)
	if owner == "" || owner == c.opts.Self {
		return "", false
	}
	c.mu.Lock()
	b := c.breakers[owner]
	open := b != nil && c.now().Before(b.openTill)
	c.mu.Unlock()
	if open {
		c.fallbacks.Add(1)
		return owner, false
	}
	return owner, true
}

// CountFallback records a local evaluation of a remote-owned key after
// a failed delegation (the breaker bookkeeping happens in the failed
// call itself).
func (c *Client) CountFallback() { c.fallbacks.Add(1) }

// fail opens (or extends) a peer's breaker with exponential backoff.
func (c *Client) fail(peer string) {
	c.peerErrors.Add(1)
	c.mu.Lock()
	b := c.breakers[peer]
	if b == nil {
		b = &breaker{}
		c.breakers[peer] = b
	}
	wasOpen := c.now().Before(b.openTill)
	b.failures++
	backoff := c.opts.FailureBackoff << (b.failures - 1)
	if backoff > c.opts.BackoffMax || backoff <= 0 {
		backoff = c.opts.BackoffMax
	}
	b.openTill = c.now().Add(backoff)
	c.mu.Unlock()
	if !wasOpen && c.opts.OnBreaker != nil {
		c.opts.OnBreaker(peer, true)
	}
}

// ok closes a peer's breaker after a successful call.
func (c *Client) ok(peer string) {
	c.mu.Lock()
	b := c.breakers[peer]
	wasOpen := b != nil && c.now().Before(b.openTill)
	delete(c.breakers, peer)
	c.mu.Unlock()
	if wasOpen && c.opts.OnBreaker != nil {
		c.opts.OnBreaker(peer, false)
	}
}

// PeerState is one remote peer's availability as this node sees it.
type PeerState struct {
	// Peer is the peer's base URL.
	Peer string `json:"peer"`
	// Open reports an open circuit breaker (the peer's keys currently
	// run locally).
	Open bool `json:"open"`
	// Failures counts the consecutive failures behind the current
	// backoff (0 when the breaker is closed).
	Failures int `json:"failures"`
}

// PeerStates snapshots every remote peer's breaker, in ring-node order.
func (c *Client) PeerStates() []PeerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var out []PeerState
	for _, n := range c.ring.Nodes() {
		if n == c.opts.Self {
			continue
		}
		ps := PeerState{Peer: n}
		if b, ok := c.breakers[n]; ok {
			ps.Open = now.Before(b.openTill)
			ps.Failures = b.failures
		}
		out = append(out, ps)
	}
	return out
}

// errPeer wraps any transport or HTTP-status failure talking to a peer.
type errPeer struct {
	peer string
	err  error
}

func (e *errPeer) Error() string { return fmt.Sprintf("cluster: peer %s: %v", e.peer, e.err) }
func (e *errPeer) Unwrap() error { return e.err }

// IsPeerError reports whether err came from a failed peer call (as
// opposed to a deliberate negative answer like a cache miss).
func IsPeerError(err error) bool {
	var pe *errPeer
	return errors.As(err, &pe)
}

// FetchCached asks owner for its cached result of key (GET
// /internal/cache/{key}). It returns (body, true, nil) on a hit,
// (nil, false, nil) on a clean miss, and a peer error otherwise.
// Hit/miss counters are the caller's job — a miss usually becomes a
// delegation, and only the caller knows.
func (c *Client) FetchCached(ctx context.Context, owner, key string) ([]byte, bool, error) {
	body, status, err := c.do(ctx, owner, http.MethodGet, "/internal/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case http.StatusOK:
		c.ok(owner)
		return body, true, nil
	case http.StatusNotFound:
		c.ok(owner)
		return nil, false, nil
	default:
		err := &errPeer{peer: owner, err: fmt.Errorf("cache probe: status %d", status)}
		c.fail(owner)
		return nil, false, err
	}
}

// jobEnvelope is the minimal slice of the serving layer's JobStatus the
// delegation loop needs; the full body is handed back to the caller
// verbatim.
type jobEnvelope struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// terminalState mirrors the serving layer's terminal job states.
func terminalState(s string) bool { return s == "done" || s == "failed" || s == "cancelled" }

// Delegate submits the raw design request to owner (POST
// /internal/designs) and polls the job to a terminal state, returning
// the final status body. The owner's own single-flight index
// deduplicates concurrent delegations of the same key cluster-wide.
// ctx bounds the whole delegation (a cancelled local job stops
// polling; the owner keeps its job).
func (c *Client) Delegate(ctx context.Context, owner string, req []byte) ([]byte, error) {
	body, status, err := c.do(ctx, owner, http.MethodPost, "/internal/designs", req)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK && status != http.StatusAccepted {
		// Includes 429: an overloaded owner sheds delegated work back to
		// the submitting node's local compute.
		err := &errPeer{peer: owner, err: fmt.Errorf("delegate submit: status %d", status)}
		c.fail(owner)
		return nil, err
	}
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		c.fail(owner)
		return nil, &errPeer{peer: owner, err: fmt.Errorf("delegate submit: bad body: %w", err)}
	}
	c.ok(owner)
	for !terminalState(env.State) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.opts.PollInterval):
		}
		body, status, err = c.do(ctx, owner, http.MethodGet, "/v1/designs/"+env.ID, nil)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			// The owner restarted mid-poll and lost the job record (or
			// recovered it under a new ID): treat as a peer failure and
			// let the caller fall back to local evaluation.
			err := &errPeer{peer: owner, err: fmt.Errorf("delegate poll: status %d", status)}
			c.fail(owner)
			return nil, err
		}
		if err := json.Unmarshal(body, &env); err != nil {
			c.fail(owner)
			return nil, &errPeer{peer: owner, err: fmt.Errorf("delegate poll: bad body: %w", err)}
		}
	}
	c.ok(owner)
	return body, nil
}

// Get runs one GET against a peer and returns (body, status). Transport
// errors count against the peer's breaker exactly as delegation calls
// do; HTTP statuses are the caller's to interpret. Used for best-effort
// sidecar fetches (remote job timelines, metric snapshots) that ride
// the same breaker and hop accounting as the main delegation path.
func (c *Client) Get(ctx context.Context, peer, path string) ([]byte, int, error) {
	return c.do(ctx, peer, http.MethodGet, path, nil)
}

// CountRemoteHit / CountRemoteMiss record delegation outcomes.
func (c *Client) CountRemoteHit()  { c.remoteHits.Add(1) }
func (c *Client) CountRemoteMiss() { c.remoteMisses.Add(1) }

// traceparentKey carries a W3C traceparent header value through a
// context into every peer call made under it.
type traceparentKey struct{}

// WithTraceparent returns a context whose peer calls carry the given
// traceparent header, so a delegated request keeps one distributed
// trace identity across the hop. Empty values are ignored.
func WithTraceparent(ctx context.Context, traceparent string) context.Context {
	if traceparent == "" {
		return ctx
	}
	return context.WithValue(ctx, traceparentKey{}, traceparent)
}

// do runs one bounded HTTP call against a peer. Transport errors open
// the peer's breaker; HTTP statuses are returned for the caller to
// interpret (only the caller knows which are failures). Completed
// exchanges (any status) report their latency through OnHop.
func (c *Client) do(ctx context.Context, peer, method, path string, body []byte) ([]byte, int, error) {
	callCtx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(callCtx, method, peer+path, rd)
	if err != nil {
		return nil, 0, &errPeer{peer: peer, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp, ok := ctx.Value(traceparentKey{}).(string); ok {
		req.Header.Set("traceparent", tp)
	}
	start := c.now()
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller cancelled — not the peer's fault, leave its
			// breaker alone.
			return nil, 0, ctx.Err()
		}
		c.fail(peer)
		return nil, 0, &errPeer{peer: peer, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		c.fail(peer)
		return nil, 0, &errPeer{peer: peer, err: err}
	}
	if c.opts.OnHop != nil {
		c.opts.OnHop(peer, c.now().Sub(start).Seconds())
	}
	return data, resp.StatusCode, nil
}
