// Package cluster turns N chrysalisd processes into one serving tier:
// a consistent-hash ring assigns every content-addressed design
// fingerprint an owner node, and a small HTTP client with per-peer
// circuit breakers lets non-owners probe the owner's result cache and
// delegate evaluations to it — so an identical design submitted to any
// number of nodes evaluates exactly once, and a dead peer degrades the
// cluster to local-only operation instead of failing requests.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per physical node. 64
// points per node keeps the worst/best ownership ratio within ~2x for
// small clusters without measurable lookup cost (the ring is a sorted
// slice binary-searched per key).
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over node names. Keys are
// design fingerprints (hex SHA-256 from the serving layer's canonical
// request hash); nodes are peer base URLs. Because every node builds
// the ring from the same peer list, all nodes agree on each key's
// owner without any coordination protocol.
type Ring struct {
	nodes  []string
	hashes []uint64 // sorted virtual-node hashes
	owner  []string // owner[i] owns hashes[i]
}

// NewRing builds a ring with the given virtual-node count per node
// (<= 0 selects DefaultReplicas). Node order does not matter; duplicate
// names collapse.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	type point struct {
		h    uint64
		node string
	}
	var pts []point
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < replicas; i++ {
			pts = append(pts, point{h: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node // total order even on hash collisions
	})
	sort.Strings(r.nodes)
	r.hashes = make([]uint64, len(pts))
	r.owner = make([]string, len(pts))
	for i, p := range pts {
		r.hashes[i] = p.h
		r.owner[i] = p.node
	}
	return r
}

// Nodes returns the distinct node names on the ring, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the first virtual node at or
// after the key's hash, wrapping at the top of the ring. An empty ring
// owns nothing ("").
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[i]
}

// hash64 is FNV-1a, the same family the evaluator's cache shards use —
// no cryptographic strength needed, the keys are already SHA-256 hex.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
