package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// twoNode builds a client whose Self is a synthetic URL and whose one
// remote peer is the given test server.
func twoNode(t *testing.T, peer string, opts Options) *Client {
	t.Helper()
	opts.Self = "http://self.invalid:1"
	opts.Peers = []string{opts.Self, peer}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Peers: []string{"http://a:1"}}); err == nil {
		t.Error("missing Self accepted")
	}
	if _, err := New(Options{Self: "http://a:1", Peers: []string{"http://b:1"}}); err == nil {
		t.Error("Self outside Peers accepted")
	}
	if _, err := New(Options{Self: "http://a:1", Peers: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Error("single-node cluster accepted")
	}
}

func TestFetchCachedHitMissAndError(t *testing.T) {
	var mode atomic.Int32 // 0 hit, 1 miss, 2 error
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load() {
		case 0:
			w.Write([]byte(`{"result":{}}`))
		case 1:
			http.NotFound(w, r)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Options{})

	body, hit, err := c.FetchCached(context.Background(), ts.URL, "k")
	if err != nil || !hit || len(body) == 0 {
		t.Fatalf("hit: body=%q hit=%v err=%v", body, hit, err)
	}
	mode.Store(1)
	if _, hit, err := c.FetchCached(context.Background(), ts.URL, "k"); err != nil || hit {
		t.Fatalf("miss: hit=%v err=%v", hit, err)
	}
	mode.Store(2)
	if _, _, err := c.FetchCached(context.Background(), ts.URL, "k"); !IsPeerError(err) {
		t.Fatalf("500 not reported as peer error: %v", err)
	}
	if s := c.Stats(); s.PeerErrors != 1 {
		t.Errorf("peer errors = %d, want 1", s.PeerErrors)
	}
}

// TestBreakerOpensAndRecovers: after a failure the owner's keys fall
// back to local until the backoff expires, then remote resolution
// resumes.
func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Options{FailureBackoff: time.Second, now: clock})

	// Find a key the remote peer owns.
	var key string
	for i := 0; ; i++ {
		k := keys(i + 1)[i]
		if c.Ring().Owner(k) == ts.URL {
			key = k
			break
		}
	}
	if owner, remote := c.RemoteOwner(key); !remote || owner != ts.URL {
		t.Fatalf("RemoteOwner = %q,%v before any failure", owner, remote)
	}
	if _, _, err := c.FetchCached(context.Background(), ts.URL, key); !IsPeerError(err) {
		t.Fatalf("bad-gateway probe: %v", err)
	}
	if _, remote := c.RemoteOwner(key); remote {
		t.Error("breaker did not open after failure")
	}
	if got := c.Stats().Fallbacks; got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	if up := c.PeersUp(); up != 0 {
		t.Errorf("PeersUp = %d with breaker open, want 0", up)
	}
	now = now.Add(1100 * time.Millisecond) // past the 1s base backoff
	if _, remote := c.RemoteOwner(key); !remote {
		t.Error("breaker did not half-open after backoff")
	}
	// A second consecutive failure doubles the hold-off.
	if _, _, err := c.FetchCached(context.Background(), ts.URL, key); !IsPeerError(err) {
		t.Fatalf("second probe: %v", err)
	}
	now = now.Add(1100 * time.Millisecond)
	if _, remote := c.RemoteOwner(key); remote {
		t.Error("exponential backoff not applied on consecutive failure")
	}
	now = now.Add(time.Second)
	if _, remote := c.RemoteOwner(key); !remote {
		t.Error("breaker stuck open after doubled backoff")
	}
}

// TestDelegatePollsToTerminal: the delegation loop submits, polls a
// non-terminal job until it finishes, and returns the final body.
func TestDelegatePollsToTerminal(t *testing.T) {
	var polls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]string{"id": "j-000001", "state": "queued"})
		default:
			st := "running"
			if polls.Add(1) >= 3 {
				st = "done"
			}
			json.NewEncoder(w).Encode(map[string]any{"id": "j-000001", "state": st, "result": map[string]any{"Evals": 42}})
		}
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Options{PollInterval: 5 * time.Millisecond})

	body, err := c.Delegate(context.Background(), ts.URL, []byte(`{"workload":"har"}`))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		State  string          `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.State != "done" || len(env.Result) == 0 {
		t.Fatalf("final body %s", body)
	}
	if polls.Load() < 3 {
		t.Errorf("polled %d times, want >= 3", polls.Load())
	}
}

// TestDelegateOwnerVanishesMidPoll: a 404 while polling (owner
// restarted, job record gone) is a peer error so the caller falls back
// to local evaluation instead of hanging or failing the client request.
func TestDelegateOwnerVanishesMidPoll(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			json.NewEncoder(w).Encode(map[string]string{"id": "j-000009", "state": "running"})
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Options{PollInterval: time.Millisecond})
	if _, err := c.Delegate(context.Background(), ts.URL, []byte(`{}`)); !IsPeerError(err) {
		t.Fatalf("vanished owner: %v", err)
	}
}

// TestDelegateCancelledContext: cancelling the local job stops the
// poll loop promptly with the context's error.
func TestDelegateCancelledContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"id": "j-1", "state": "running"})
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Options{PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if _, err := c.Delegate(ctx, ts.URL, []byte(`{}`)); err != context.Canceled {
		t.Fatalf("cancelled delegation: %v", err)
	}
}

// TestDelegateShedByOwner: a 429 from an overloaded owner is a peer
// error (the submitting node runs the search itself) — backpressure
// spreads work instead of queueing it all on one node.
func TestDelegateShedByOwner(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c := twoNode(t, ts.URL, Options{})
	if _, err := c.Delegate(context.Background(), ts.URL, []byte(`{}`)); !IsPeerError(err) {
		t.Fatalf("shed delegation: %v", err)
	}
}
