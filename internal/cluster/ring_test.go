package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sha256-like-key-%06d", i)
	}
	return out
}

func TestRingDeterministicAndComplete(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing([]string{nodes[2], nodes[0], nodes[1]}, 0) // order-insensitive
	for _, k := range keys(500) {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 == "" {
			t.Fatalf("key %q unowned", k)
		}
		if o1 != o2 {
			t.Fatalf("ownership differs across construction order: %q vs %q", o1, o2)
		}
	}
}

func TestRingSpreadsOwnership(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	total := 3000
	for _, k := range keys(total) {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		got := counts[n]
		// Every node owns a meaningful share: at least a sixth of a fair
		// third (consistent hashing with 64 vnodes is uneven but never
		// starves a node).
		if got < total/18 {
			t.Errorf("node %s owns %d/%d keys — starved", n, got, total)
		}
	}
}

// TestRingStableUnderNodeRemoval: removing one node must only move keys
// that node owned; every other key keeps its owner. This is the
// property that makes the peer cache tolerate membership edits without
// a global reshuffle.
func TestRingStableUnderNodeRemoval(t *testing.T) {
	all := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	full := NewRing(all, 0)
	without := NewRing(all[:3], 0) // drop d
	moved := 0
	for _, k := range keys(2000) {
		was, now := full.Owner(k), without.Owner(k)
		if was == "http://d:1" {
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %s -> %s although its owner stayed up", k, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: removed node owned no keys")
	}
}

func TestRingDuplicatesAndEmpty(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://a:1", ""}, 8)
	if len(r.Nodes()) != 1 {
		t.Errorf("nodes = %v, want just a", r.Nodes())
	}
	if NewRing(nil, 0).Owner("k") != "" {
		t.Error("empty ring returned an owner")
	}
}
