package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceparentPropagatesAndHopObserved(t *testing.T) {
	var mu sync.Mutex
	var gotTP []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotTP = append(gotTP, r.Header.Get("traceparent"))
		mu.Unlock()
		http.NotFound(w, r) // clean cache miss
	}))
	defer ts.Close()

	var hops []float64
	c := twoNode(t, ts.URL, Options{
		OnHop: func(peer string, seconds float64) {
			if peer != ts.URL {
				t.Errorf("hop peer = %q, want %q", peer, ts.URL)
			}
			if seconds < 0 {
				t.Errorf("negative hop latency %v", seconds)
			}
			mu.Lock()
			hops = append(hops, seconds)
			mu.Unlock()
		},
	})

	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	ctx := WithTraceparent(context.Background(), tp)
	if _, hit, err := c.FetchCached(ctx, ts.URL, "k"); err != nil || hit {
		t.Fatalf("probe: hit=%v err=%v", hit, err)
	}
	// Without a traceparent in context the header must be absent.
	if _, _, err := c.FetchCached(context.Background(), ts.URL, "k"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(gotTP) != 2 || gotTP[0] != tp || gotTP[1] != "" {
		t.Fatalf("peer saw traceparent headers %q, want [%q \"\"]", gotTP, tp)
	}
	if len(hops) != 2 {
		t.Fatalf("OnHop fired %d times, want 2", len(hops))
	}
}

func TestBreakerTransitionsAndPeerStates(t *testing.T) {
	now := time.Unix(1000, 0)
	var transitions []bool
	var c *Client
	c = twoNode(t, "http://peer.invalid:1", Options{
		FailureBackoff: time.Second,
		BackoffMax:     30 * time.Second,
		now:            func() time.Time { return now },
		OnBreaker: func(peer string, open bool) {
			if peer != "http://peer.invalid:1" {
				t.Errorf("transition peer = %q", peer)
			}
			transitions = append(transitions, open)
		},
	})

	if states := c.PeerStates(); len(states) != 1 || states[0].Open || states[0].Failures != 0 {
		t.Fatalf("initial states = %+v", states)
	}

	c.fail("http://peer.invalid:1") // closed → open: fires
	c.fail("http://peer.invalid:1") // already open: extends, no fire
	if len(transitions) != 1 || !transitions[0] {
		t.Fatalf("after two failures transitions = %v, want [true]", transitions)
	}
	states := c.PeerStates()
	if len(states) != 1 || !states[0].Open || states[0].Failures != 2 {
		t.Fatalf("open states = %+v", states)
	}

	c.ok("http://peer.invalid:1") // open → closed: fires
	if len(transitions) != 2 || transitions[1] {
		t.Fatalf("after recovery transitions = %v, want [true false]", transitions)
	}
	if states := c.PeerStates(); states[0].Open || states[0].Failures != 0 {
		t.Fatalf("recovered states = %+v", states)
	}

	// A success on an already-closed breaker must not re-fire.
	c.ok("http://peer.invalid:1")
	if len(transitions) != 2 {
		t.Fatalf("redundant ok fired a transition: %v", transitions)
	}

	// An expired (half-open) breaker closing via success: no fire either,
	// the open state already lapsed.
	c.fail("http://peer.invalid:1")
	now = now.Add(time.Minute)
	c.ok("http://peer.invalid:1")
	if len(transitions) != 3 { // the fail above fired open=true
		t.Fatalf("transitions = %v, want 3 entries ending in true", transitions)
	}
}
