// Package intermittent models checkpointed intermittent execution — the
// paper's InterTempMap semantics (Sec. III-B.2): a layer is divided into
// N_tile tiles; after each tile the volatile state is persisted to NVM
// ("save"), and after a power interruption it is restored ("resume").
// Equation 5 charges each tile (1 + r_exc)·N_ckpt·(e_r + e_w) of
// checkpoint energy, where r_exc is the scenario's energy-exception
// rate; Equations 8–9 bound the minimum tile count so that one tile
// (plus its checkpoint) fits the energy available in one cycle.
package intermittent

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/obs"
	"chrysalis/internal/units"
)

// DefaultExceptionRate is the paper's static r_exc simplification: the
// probability that a tile is interrupted and must be re-executed.
const DefaultExceptionRate = 0.05

// PlanModelVersion identifies the current generation of the
// intermittent planning model (Eq. 5/8–9: checkpoint charging, the
// feasibility scan and the rung reduction). Bump it whenever a change
// alters the rungs BuildLadder computes for an existing input —
// process-lifetime caches key ladders on it so entries built under an
// older model are invalidated instead of silently served.
const PlanModelVersion = 1

// SaveEnergy returns the energy to persist b bytes of volatile state.
func SaveEnergy(hw dataflow.HW, b units.Bytes) units.Energy {
	return units.Energy(float64(hw.ENVMWritePerByte) * float64(b))
}

// ResumeEnergy returns the energy to restore b bytes from NVM.
func ResumeEnergy(hw dataflow.HW, b units.Bytes) units.Energy {
	return units.Energy(float64(hw.ENVMReadPerByte) * float64(b))
}

// CheckpointEnergy is the paper's per-checkpoint cost N_ckpt·(e_r+e_w):
// one save plus the matching resume.
func CheckpointEnergy(hw dataflow.HW, b units.Bytes) units.Energy {
	return SaveEnergy(hw, b) + ResumeEnergy(hw, b)
}

// CheckpointTime returns the time to stream b bytes to or from NVM.
// Unbounded-bandwidth hardware checkpoints "instantly" (the energy cost
// still applies).
func CheckpointTime(hw dataflow.HW, b units.Bytes) units.Seconds {
	if hw.NVMBytesPerSec <= 0 {
		return 0
	}
	return units.Seconds(float64(b) / hw.NVMBytesPerSec)
}

// Plan is the intermittent execution plan for one layer: the dataflow
// cost plus checkpoint accounting per Eq. 4–5.
type Plan struct {
	Layer     dnn.Layer
	Cost      dataflow.Cost
	Rexc      float64
	CkptBytes units.Bytes

	// TileEnergy is the full per-cycle budget a tile needs: compute and
	// data movement, static energy during the tile, and the expected
	// checkpoint cost (1+r_exc)·N_ckpt·(e_r+e_w).
	TileEnergy units.Energy
	// TileTime is the powered time per tile including the checkpoint
	// save and the amortized resume.
	TileTime units.Seconds

	// Energy is the layer's total E_all (Eq. 5).
	Energy units.Energy
	// Time is the layer's total powered execution time.
	Time units.Seconds
	// CkptEnergy is the checkpoint component of Energy, reported
	// separately for the Figure 8/9 breakdowns.
	CkptEnergy units.Energy
	// StaticEnergy is the T·N_mem·p_mem (+idle) component of Energy.
	StaticEnergy units.Energy
}

// normalizeRexc applies the rexc conventions shared by every planner
// entry point: negative selects the default, >= 1 is invalid.
func normalizeRexc(rexc float64) (float64, error) {
	if rexc < 0 {
		return DefaultExceptionRate, nil
	}
	if rexc >= 1 {
		return 0, fmt.Errorf("intermittent: exception rate %g must be below 1", rexc)
	}
	return rexc, nil
}

// PlanLayer evaluates a layer under a mapping and adds intermittent
// checkpoint accounting. rexc < 0 selects DefaultExceptionRate.
func PlanLayer(l dnn.Layer, elemBytes int, m dataflow.Mapping, hw dataflow.HW, rexc float64) (Plan, error) {
	rexc, err := normalizeRexc(rexc)
	if err != nil {
		return Plan{}, err
	}
	c, err := dataflow.Evaluate(l, elemBytes, m, hw)
	if err != nil {
		return Plan{}, err
	}
	return planFromCost(l, c, hw, rexc), nil
}

// planFromCost adds the checkpoint accounting of Eq. 4–5 to an
// already-evaluated dataflow cost. rexc must be normalized.
func planFromCost(l dnn.Layer, c dataflow.Cost, hw dataflow.HW, rexc float64) Plan {
	// The checkpoint captures the tile's volatile working set (paper
	// Fig. 4 step ⑥: "all data in VM and the processing hardware").
	ckptB := c.TileWorkingSet
	perCkpt := CheckpointEnergy(hw, ckptB)
	n := float64(c.NTileEffective)

	tileStaticT := c.TileTime + units.Seconds(float64(CheckpointTime(hw, ckptB))*(1+rexc))
	tileStatic := dataflow.StaticEnergy(hw, tileStaticT)
	tileE := c.TileEnergy + tileStatic + units.Energy((1+rexc)*float64(perCkpt))
	tileT := tileStaticT

	return Plan{
		Layer:        l,
		Cost:         c,
		Rexc:         rexc,
		CkptBytes:    ckptB,
		TileEnergy:   tileE,
		TileTime:     tileT,
		Energy:       units.Energy(float64(tileE) * n),
		Time:         units.Seconds(float64(tileT) * n),
		CkptEnergy:   units.Energy(n * (1 + rexc) * float64(perCkpt)),
		StaticEnergy: units.Energy(n * float64(tileStatic)),
	}
}

// BudgetFunc returns the energy one power cycle can deliver to a tile
// whose average power draw while executing is load. The budget depends
// on the draw because a hungrier tile drains the capacitor faster and
// gets a shorter powered phase (the T term of Eq. 3).
type BudgetFunc func(load units.Power) units.Energy

// FixedBudget adapts a constant per-cycle energy to a BudgetFunc, for
// callers that precomputed the budget at a representative load.
func FixedBudget(e units.Energy) BudgetFunc {
	return func(units.Power) units.Energy { return e }
}

// TilePower returns a plan's average power draw during one tile,
// including amortized static and checkpoint costs.
func (p Plan) TilePower() units.Power {
	return units.DivET(p.TileEnergy, p.TileTime)
}

// ErrNoFeasibleTile reports that no candidate tile count fits one
// energy cycle — the Eq. 8 infeasibility condition. It is a shared
// sentinel so hot search loops can classify the failure without
// allocating a fresh error per probe.
var ErrNoFeasibleTile = errors.New("cannot fit any tile within one energy cycle (Eq. 8 infeasible)")

// errNilBudget is the shared nil-budget error.
var errNilBudget = errors.New("intermittent: nil budget function")

// noFeasibleTileError wraps ErrNoFeasibleTile with the layer name,
// preserving the historical message text.
func noFeasibleTileError(layer string) error {
	return fmt.Errorf("intermittent: layer %s %w", layer, ErrNoFeasibleTile)
}

// MinFeasibleTiles implements Eq. 8–9: the smallest tile count (over the
// candidate divisors of the partition dimension) whose per-tile energy
// fits the cycle budget at the tile's own power draw. More tiles mean
// smaller per-tile energy but more checkpoint overhead, so the smallest
// feasible count is also the cheapest.
//
// Callers that probe the same (layer, dataflow, partition, hardware,
// rexc) tuple under many different budgets should BuildLadder once and
// scan it instead — the plans do not depend on the budget.
func MinFeasibleTiles(l dnn.Layer, elemBytes int, df dataflow.Dataflow, part dataflow.Partition,
	hw dataflow.HW, rexc float64, budget BudgetFunc) (Plan, error) {
	if budget == nil {
		return Plan{}, errNilBudget
	}
	rexc, err := normalizeRexc(rexc)
	if err != nil {
		return Plan{}, err
	}
	for _, n := range dataflow.CandidateNTiles(l, part) {
		m := dataflow.Mapping{Dataflow: df, Partition: part, NTile: n}
		c, ok := dataflow.TryEvaluate(l, elemBytes, m, hw)
		if !ok {
			continue // tile does not fit VM at this count
		}
		p := planFromCost(l, c, hw, rexc)
		if avail := budget(p.TilePower()); avail > 0 && p.TileEnergy <= avail {
			return p, nil
		}
	}
	return Plan{}, noFeasibleTileError(l.Name)
}

// Rung is one step of a Ladder: a VM-feasible tile count reduced to
// the four scalars the budget scan and the energy comparison consume.
// The full Plan is deliberately NOT stored — a ladder covering the
// whole mapping space of a deep workload used to pin hundreds of
// ~400-byte plans per (layer, dataflow, partition) tuple, which
// dominated the search's allocation profile; a Rung is 32 bytes, and
// PlanAt rematerializes the one winning plan on demand, bit-identical
// to the plan the build pass computed.
type Rung struct {
	// NTile is the requested tile count (a candidate divisor of the
	// partition dimension).
	NTile int
	// Power memoizes Plan.TilePower() for budget queries.
	Power units.Power
	// TileEnergy is the per-tile cycle budget requirement (Eq. 8 LHS).
	TileEnergy units.Energy
	// Energy is the layer's total E_all at this tile count (Eq. 5) —
	// the quantity inner searches minimize across rungs.
	Energy units.Energy
}

// Ladder is the precomputed feasibility ladder for one (layer,
// dataflow, partition, hardware, rexc) tuple: every VM-feasible
// candidate tile count, in ascending NTile order, reduced to slim
// Rungs, plus the inputs needed to rematerialize any rung's full Plan.
//
// The key invariant making ladders cacheable is that plans are
// budget-independent: Eq. 4–6 depend only on the layer, the mapping and
// the inference-side hardware constants, never on the energy subsystem.
// The cycle budget (panel area, capacitance, environment) only selects
// WHICH rung is chosen, via MinFeasible — so one ladder serves every
// energy-gene candidate the outer search proposes.
type Ladder struct {
	Layer     dnn.Layer
	ElemBytes int
	Dataflow  dataflow.Dataflow
	Partition dataflow.Partition
	Rexc      float64
	// HW holds the cost constants the rungs were evaluated under, kept
	// so PlanAt can re-run the cost model for a chosen rung.
	HW    dataflow.HW
	Rungs []Rung
}

// ntileScratch pools the candidate-tile-count buffer BuildLadder scans,
// so steady-state ladder builds (every plan-cache miss builds one
// ladder per layer × dataflow × partition) allocate no per-call slice.
var ntileScratch = sync.Pool{New: func() any { return new([]int) }}

// BuildLadder evaluates the full sorted sequence of VM-feasible tile
// counts for a layer once, storing one slim Rung per count. rexc < 0
// selects DefaultExceptionRate; rexc >= 1 is rejected.
func BuildLadder(l dnn.Layer, elemBytes int, df dataflow.Dataflow, part dataflow.Partition,
	hw dataflow.HW, rexc float64) (Ladder, error) {
	rexc, err := normalizeRexc(rexc)
	if err != nil {
		return Ladder{}, err
	}
	buf := ntileScratch.Get().(*[]int)
	ntiles := dataflow.AppendCandidateNTiles((*buf)[:0], l, part)
	ld := Ladder{Layer: l, ElemBytes: elemBytes, Dataflow: df, Partition: part, Rexc: rexc, HW: hw,
		Rungs: make([]Rung, 0, len(ntiles))}
	for _, n := range ntiles {
		m := dataflow.Mapping{Dataflow: df, Partition: part, NTile: n}
		c, ok := dataflow.TryEvaluate(l, elemBytes, m, hw)
		if !ok {
			continue // tile does not fit VM at this count
		}
		p := planFromCost(l, c, hw, rexc)
		ld.Rungs = append(ld.Rungs, Rung{NTile: n, Power: p.TilePower(), TileEnergy: p.TileEnergy, Energy: p.Energy})
	}
	*buf = ntiles
	ntileScratch.Put(buf)
	return ld, nil
}

// PlanAt rematerializes the full Plan of rung i by re-running the cost
// model under the ladder's stored inputs. Because planFromCost is a
// pure function of (layer, cost, hw, rexc), the result is bit-identical
// to the plan the build pass evaluated for that rung.
func (ld *Ladder) PlanAt(i int) Plan {
	var p Plan
	ld.PlanInto(i, &p)
	return p
}

// PlanInto is PlanAt writing into caller-owned storage (a reusable
// evaluation arena), so hot search loops materialize winning plans with
// zero allocations.
func (ld *Ladder) PlanInto(i int, dst *Plan) {
	m := dataflow.Mapping{Dataflow: ld.Dataflow, Partition: ld.Partition, NTile: ld.Rungs[i].NTile}
	// The rung exists, so the same inputs evaluated feasibly at build
	// time; TryEvaluate cannot fail here.
	c, _ := dataflow.TryEvaluate(ld.Layer, ld.ElemBytes, m, ld.HW)
	*dst = planFromCost(ld.Layer, c, ld.HW, ld.Rexc)
}

// BuildLadderTraced is BuildLadder wrapped in an obs span carrying the
// tuple identity (layer, dataflow, partition) and the resulting rung
// count — the Explorer records one such span per ladder a plan-cache
// miss constructs, so a Perfetto view of a search shows exactly where
// ladder-building time went. A nil tracer falls through to BuildLadder
// with no overhead.
func BuildLadderTraced(tr *obs.Trace, l dnn.Layer, elemBytes int, df dataflow.Dataflow,
	part dataflow.Partition, hw dataflow.HW, rexc float64) (Ladder, error) {
	if tr == nil {
		return BuildLadder(l, elemBytes, df, part, hw, rexc)
	}
	sp := tr.Start("explore", "build-ladder",
		obs.A("layer", l.Name), obs.A("dataflow", df.String()), obs.A("partition", part.String()))
	ld, err := BuildLadder(l, elemBytes, df, part, hw, rexc)
	sp.End(obs.A("rungs", len(ld.Rungs)), obs.A("err", err != nil))
	return ld, err
}

// MinFeasibleIndex returns the index of the first (smallest-NTile) rung
// whose tile energy fits the budget at its own power draw, scanning the
// precomputed ladder without allocating. ok is false when no rung fits
// (or the ladder is empty).
func (ld *Ladder) MinFeasibleIndex(budget BudgetFunc) (int, bool) {
	if budget == nil {
		return 0, false
	}
	for i := range ld.Rungs {
		r := &ld.Rungs[i]
		if avail := budget(r.Power); avail > 0 && r.TileEnergy <= avail {
			return i, true
		}
	}
	return 0, false
}

// MinFeasible is the ladder-scan equivalent of MinFeasibleTiles: it
// returns the plan of the smallest feasible tile count under the given
// budget, bit-identical to what the per-call scan would compute.
func (ld *Ladder) MinFeasible(budget BudgetFunc) (Plan, error) {
	if budget == nil {
		return Plan{}, errNilBudget
	}
	if i, ok := ld.MinFeasibleIndex(budget); ok {
		return ld.PlanAt(i), nil
	}
	return Plan{}, noFeasibleTileError(ld.Layer.Name)
}

// ByNTile returns the index of the rung whose requested tile count is
// n, using binary search over the ascending rungs. ok is false when
// that count was VM-infeasible (and therefore excluded from the ladder).
func (ld *Ladder) ByNTile(n int) (int, bool) {
	i := sort.Search(len(ld.Rungs), func(i int) bool { return ld.Rungs[i].NTile >= n })
	if i < len(ld.Rungs) && ld.Rungs[i].NTile == n {
		return i, true
	}
	return 0, false
}

// PlanWorkload plans every layer of a workload with a fixed dataflow,
// choosing per-layer partitions and tile counts via MinFeasibleTiles.
// It returns the per-layer plans in network order.
func PlanWorkload(w dnn.Workload, df dataflow.Dataflow, hw dataflow.HW, rexc float64, budget BudgetFunc) ([]Plan, error) {
	plans := make([]Plan, 0, len(w.Layers))
	for _, l := range w.Layers {
		p, err := MinFeasibleTiles(l, w.ElemBytes, df, dataflow.ByChannel, hw, rexc, budget)
		if err != nil {
			// Fall back to the spatial partition before giving up.
			p, err = MinFeasibleTiles(l, w.ElemBytes, df, dataflow.BySpatial, hw, rexc, budget)
			if err != nil {
				return nil, fmt.Errorf("intermittent: workload %s: %w", w.Name, err)
			}
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// Totals aggregates a set of layer plans.
type Totals struct {
	Energy       units.Energy
	Time         units.Seconds
	CkptEnergy   units.Energy
	StaticEnergy units.Energy
	// NVMIO is the tile read/write component of Energy — the same
	// clamped share the step simulator books as Breakdown.NVMIO, so the
	// analytic and simulated breakdowns decompose identically.
	NVMIO units.Energy
	Tiles int
}

// Sum aggregates plans into workload totals.
func Sum(plans []Plan) Totals {
	var t Totals
	for i := range plans {
		t.add(&plans[i])
	}
	return t
}

// SumRefs aggregates plans referenced by pointer — the hot-path variant
// for searches that keep pointers into shared plan ladders instead of
// copying each Plan.
func SumRefs(plans []*Plan) Totals {
	var t Totals
	for _, p := range plans {
		t.add(p)
	}
	return t
}

func (t *Totals) add(p *Plan) {
	t.Energy += p.Energy
	t.Time += p.Time
	t.CkptEnergy += p.CkptEnergy
	t.StaticEnergy += p.StaticEnergy
	io := float64(p.Cost.TileNVMEnergy)
	if dyn := float64(p.Cost.TileEnergy); io > dyn {
		io = dyn
	}
	t.NVMIO += units.Energy(io * float64(p.Cost.NTileEffective))
	t.Tiles += p.Cost.NTileEffective
}
