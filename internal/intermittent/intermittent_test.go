package intermittent

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/msp430"
	"chrysalis/internal/units"
)

func hwMSP() dataflow.HW { return msp430.Config{}.HW() }

func convLayer(t *testing.T) dnn.Layer {
	t.Helper()
	l, err := dnn.NewConv2D("c", 8, 12, 12, 16, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCheckpointEnergySymmetry(t *testing.T) {
	hw := hwMSP()
	b := units.Bytes(1024)
	save := SaveEnergy(hw, b)
	resume := ResumeEnergy(hw, b)
	if save <= 0 || resume <= 0 {
		t.Fatal("checkpoint costs must be positive")
	}
	if CheckpointEnergy(hw, b) != save+resume {
		t.Fatal("checkpoint = save + resume")
	}
	// FRAM writes cost more than reads.
	if save <= resume {
		t.Fatal("save (writes) should cost more than resume (reads)")
	}
}

func TestCheckpointTime(t *testing.T) {
	hw := hwMSP()
	got := CheckpointTime(hw, 4096)
	want := 4096.0 / hw.NVMBytesPerSec
	if !units.ApproxEqual(float64(got), want, 1e-12) {
		t.Fatalf("time = %v, want %v", got, want)
	}
	hw.NVMBytesPerSec = 0
	if CheckpointTime(hw, 4096) != 0 {
		t.Fatal("unbounded bandwidth checkpoints take no modeled time")
	}
}

func TestPlanLayerEquationFive(t *testing.T) {
	l := convLayer(t)
	hw := hwMSP()
	m := dataflow.Mapping{Dataflow: dataflow.OS, Partition: dataflow.ByChannel, NTile: 4}
	p, err := PlanLayer(l, 2, m, hw, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 5 checkpoint term: N_tile·(1+r_exc)·N_ckpt·(e_r+e_w).
	n := float64(p.Cost.NTileEffective)
	wantCkpt := n * 1.05 * float64(CheckpointEnergy(hw, p.CkptBytes))
	if !units.ApproxEqual(float64(p.CkptEnergy), wantCkpt, 1e-9) {
		t.Fatalf("ckpt energy %v, want %v", p.CkptEnergy, wantCkpt)
	}
	// Total = E_df + static + ckpt.
	want := float64(p.Cost.EDf) + float64(p.StaticEnergy) + float64(p.CkptEnergy)
	if !units.ApproxEqual(float64(p.Energy), want, 1e-9) {
		t.Fatalf("energy %v, want %v", p.Energy, want)
	}
	if p.Time <= p.Cost.TDf {
		t.Fatal("checkpointing must lengthen execution")
	}
}

func TestPlanLayerDefaultsAndValidation(t *testing.T) {
	l := convLayer(t)
	m := dataflow.Mapping{Dataflow: dataflow.OS, NTile: 2}
	p, err := PlanLayer(l, 2, m, hwMSP(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rexc != DefaultExceptionRate {
		t.Fatalf("rexc = %v, want default", p.Rexc)
	}
	if _, err := PlanLayer(l, 2, m, hwMSP(), 1.0); err == nil {
		t.Fatal("rexc >= 1 should be rejected")
	}
	if _, err := PlanLayer(l, 0, m, hwMSP(), 0.05); err == nil {
		t.Fatal("bad elem bytes should propagate")
	}
}

func TestHigherExceptionRateCostsMore(t *testing.T) {
	l := convLayer(t)
	m := dataflow.Mapping{Dataflow: dataflow.OS, NTile: 4}
	lo, err := PlanLayer(l, 2, m, hwMSP(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := PlanLayer(l, 2, m, hwMSP(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Energy <= lo.Energy {
		t.Fatal("higher exception rate must cost more energy")
	}
}

func TestMoreTilesMoreCheckpointEnergy(t *testing.T) {
	// The Figure 9 "small capacitor" premise: finer tiling inflates
	// checkpoint overhead.
	l := convLayer(t)
	var prev units.Energy
	for i, n := range []int{1, 2, 4, 8, 16} {
		m := dataflow.Mapping{Dataflow: dataflow.OS, NTile: n}
		p, err := PlanLayer(l, 2, m, hwMSP(), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && p.CkptEnergy <= prev {
			t.Fatalf("NTile=%d: ckpt energy %v did not grow past %v", n, p.CkptEnergy, prev)
		}
		prev = p.CkptEnergy
	}
}

func TestMinFeasibleTilesPicksSmallest(t *testing.T) {
	l := convLayer(t)
	hw := hwMSP()
	// Generous budget: one tile should do.
	pBig, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.ByChannel, hw, 0.05, FixedBudget(1 /*J*/))
	if err != nil {
		t.Fatal(err)
	}
	if pBig.Cost.NTileEffective != 1 {
		t.Fatalf("generous budget chose %d tiles, want 1", pBig.Cost.NTileEffective)
	}
	// Tight budget: needs more tiles.
	pTight, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.ByChannel, hw, 0.05, FixedBudget(pBig.TileEnergy/3))
	if err != nil {
		t.Fatal(err)
	}
	if pTight.Cost.NTileEffective <= 1 {
		t.Fatal("tight budget should require more tiles")
	}
	if pTight.TileEnergy > pBig.TileEnergy/3 {
		t.Fatalf("chosen tile energy %v exceeds budget %v", pTight.TileEnergy, pBig.TileEnergy/3)
	}
}

func TestMinFeasibleTilesInfeasible(t *testing.T) {
	l := convLayer(t)
	_, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.ByChannel, hwMSP(), 0.05, FixedBudget(1e-9))
	if err == nil || !strings.Contains(err.Error(), "Eq. 8") {
		t.Fatalf("expected Eq. 8 infeasibility, got %v", err)
	}
	if _, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.ByChannel, hwMSP(), 0.05, nil); err == nil {
		t.Fatal("nil budget should fail fast")
	}
}

func TestPlanWorkloadAllTableIV(t *testing.T) {
	hw := hwMSP()
	// A 100uF cycle plus 6mW harvesting over ~1s delivers on the order
	// of millijoules; all Table IV workloads must be plannable.
	for _, w := range dnn.ExistingAuT() {
		plans, err := PlanWorkload(w, dataflow.OS, hw, 0.05, FixedBudget(3e-3))
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if len(plans) != len(w.Layers) {
			t.Errorf("%s: %d plans for %d layers", w.Name, len(plans), len(w.Layers))
		}
		tot := Sum(plans)
		if tot.Energy <= 0 || tot.Time <= 0 || tot.Tiles < len(w.Layers) {
			t.Errorf("%s: degenerate totals %+v", w.Name, tot)
		}
		if tot.CkptEnergy <= 0 {
			t.Errorf("%s: checkpointing should cost energy", w.Name)
		}
	}
}

func TestPlanWorkloadImpossibleBudget(t *testing.T) {
	if _, err := PlanWorkload(dnn.CIFAR10(), dataflow.OS, hwMSP(), 0.05, FixedBudget(1e-12)); err == nil {
		t.Fatal("impossible budget should fail")
	}
}

func TestTileEnergyFitsBudgetProperty(t *testing.T) {
	// Property: whenever MinFeasibleTiles succeeds, the chosen per-tile
	// energy is within budget and the tile count is a candidate divisor.
	layers := dnn.CIFAR10().Layers
	f := func(li uint8, budgetSel uint8) bool {
		l := layers[int(li)%len(layers)]
		budget := units.Energy(float64(budgetSel)+1) * 0.2e-3
		p, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.BySpatial, hwMSP(), 0.05, FixedBudget(budget))
		if err != nil {
			return true // infeasibility is legal
		}
		if p.TileEnergy > budget {
			return false
		}
		for _, n := range dataflow.CandidateNTiles(l, dataflow.BySpatial) {
			if n == p.Cost.NTileEffective {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLadderMatchesPerCallScan is the differential check backing the
// memoized evaluation engine: for every seed workload, dataflow,
// partition and a spread of budgets, scanning a precomputed Ladder must
// return exactly the plan (or exactly the error) the per-call
// MinFeasibleTiles scan computes. Both paths share planFromCost and
// iterate candidate tile counts in the same order, so the results are
// bit-identical, not just approximately equal.
func TestLadderMatchesPerCallScan(t *testing.T) {
	hw := hwMSP()
	budgets := []units.Energy{1e-9, 2e-5, 3e-4, 3e-3, 1}
	workloads := append(dnn.ExistingAuT(), dnn.FutureAuT()...)
	for _, w := range workloads {
		for _, df := range dataflow.Dataflows() {
			for _, part := range []dataflow.Partition{dataflow.ByChannel, dataflow.BySpatial} {
				for _, l := range w.Layers {
					ld, err := BuildLadder(l, w.ElemBytes, df, part, hw, 0.05)
					if err != nil {
						t.Fatalf("%s/%s/%s/%v: BuildLadder: %v", w.Name, l.Name, df, part, err)
					}
					for _, b := range budgets {
						want, wantErr := MinFeasibleTiles(l, w.ElemBytes, df, part, hw, 0.05, FixedBudget(b))
						got, gotErr := ld.MinFeasible(FixedBudget(b))
						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s/%s/%s/%v budget %v: scan err %v, ladder err %v",
								w.Name, l.Name, df, part, b, wantErr, gotErr)
						}
						if wantErr != nil {
							if wantErr.Error() != gotErr.Error() {
								t.Fatalf("%s/%s: error text diverged: %q vs %q", w.Name, l.Name, wantErr, gotErr)
							}
							continue
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("%s/%s/%s/%v budget %v: ladder plan diverged from per-call scan:\n%+v\nvs\n%+v",
								w.Name, l.Name, df, part, b, got, want)
						}
					}
				}
			}
		}
	}
}

// TestLadderEntriesAscendingAndBudgetFree checks the Ladder invariants
// the fingerprint cache relies on: rungs are sorted by ascending NTile,
// the slim rung scalars are budget-independent (identical to a direct
// PlanLayer evaluation of the same mapping), and PlanAt rematerializes
// the full plan bit-identically.
func TestLadderEntriesAscendingAndBudgetFree(t *testing.T) {
	l := convLayer(t)
	ld, err := BuildLadder(l, 2, dataflow.OS, dataflow.ByChannel, hwMSP(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.Rungs) == 0 {
		t.Fatal("expected at least one VM-feasible rung")
	}
	for i, r := range ld.Rungs {
		if i > 0 && r.NTile <= ld.Rungs[i-1].NTile {
			t.Fatalf("rungs not ascending at %d: %d after %d", i, r.NTile, ld.Rungs[i-1].NTile)
		}
		m := dataflow.Mapping{Dataflow: dataflow.OS, Partition: dataflow.ByChannel, NTile: r.NTile}
		p, err := PlanLayer(l, 2, m, hwMSP(), 0.05)
		if err != nil {
			t.Fatalf("NTile=%d: %v", r.NTile, err)
		}
		if !reflect.DeepEqual(ld.PlanAt(i), p) {
			t.Fatalf("NTile=%d: PlanAt differs from direct PlanLayer", r.NTile)
		}
		if r.Power != p.TilePower() || r.TileEnergy != p.TileEnergy || r.Energy != p.Energy {
			t.Fatalf("NTile=%d: rung scalars %+v differ from plan (power %v tile %v energy %v)",
				r.NTile, r, p.TilePower(), p.TileEnergy, p.Energy)
		}
		idx, ok := ld.ByNTile(r.NTile)
		if !ok || idx != i {
			t.Fatalf("ByNTile(%d) = (%d, %v), want (%d, true)", r.NTile, idx, ok, i)
		}
	}
	if _, ok := ld.ByNTile(-1); ok {
		t.Fatal("ByNTile must miss on counts excluded from the ladder")
	}
}

// TestLadderNilBudget checks the nil-budget error paths of the ladder
// scan match the per-call scan's.
func TestLadderNilBudget(t *testing.T) {
	l := convLayer(t)
	ld, err := BuildLadder(l, 2, dataflow.OS, dataflow.ByChannel, hwMSP(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ld.MinFeasible(nil); !errors.Is(err, errNilBudget) {
		t.Fatalf("ladder nil budget: %v", err)
	}
	if _, ok := ld.MinFeasibleIndex(nil); ok {
		t.Fatal("MinFeasibleIndex(nil) must report no rung")
	}
	if _, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.ByChannel, hwMSP(), 0.05, nil); !errors.Is(err, errNilBudget) {
		t.Fatalf("per-call nil budget: %v", err)
	}
}

// TestPlanWorkloadPartitionFallback builds a layer whose channel
// partition cannot fit VM at any candidate tile count (one output
// channel, large spatial plane) and checks PlanWorkload falls back to
// the spatial partition instead of failing.
func TestPlanWorkloadPartitionFallback(t *testing.T) {
	l, err := dnn.NewConv2D("wide", 8, 64, 64, 1, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := dnn.Workload{Name: "fallback", Input: [3]int{8, 64, 64}, Layers: []dnn.Layer{l}, ElemBytes: 2}
	hw := hwMSP()

	// Precondition: ByChannel really is infeasible for this layer.
	if _, err := MinFeasibleTiles(l, 2, dataflow.OS, dataflow.ByChannel, hw, 0.05, FixedBudget(3e-3)); !errors.Is(err, ErrNoFeasibleTile) {
		t.Fatalf("precondition: ByChannel should be Eq. 8 infeasible, got %v", err)
	}

	plans, err := PlanWorkload(w, dataflow.OS, hw, 0.05, FixedBudget(3e-3))
	if err != nil {
		t.Fatalf("PlanWorkload should fall back to BySpatial: %v", err)
	}
	if got := plans[0].Cost.Mapping.Partition; got != dataflow.BySpatial {
		t.Fatalf("partition = %v, want BySpatial fallback", got)
	}
	if plans[0].Cost.NTileEffective <= 1 {
		t.Fatal("spatial fallback should need multiple tiles")
	}
}
