// Package pmic models the power-management IC of an AuT energy
// subsystem — the BQ25570-class part referenced by the paper (Table III)
// that sits between the harvester, the storage capacitor and the load.
// It implements the threshold logic that produces intermittent
// execution: the load is gated on when the capacitor reaches U_on and
// gated off when it falls to U_off, with hysteresis in between.
package pmic

import (
	"fmt"

	"chrysalis/internal/units"
)

// State is the power gate state seen by the computing subsystem.
type State int

const (
	// Off means the load is unpowered and the capacitor is charging.
	Off State = iota
	// On means the load is powered.
	On
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == On {
		return "on"
	}
	return "off"
}

// Config describes a power management IC.
type Config struct {
	// UOn is the turn-on threshold voltage (paper: U_on).
	UOn units.Voltage
	// UOff is the brown-out threshold voltage (paper: U_off).
	UOff units.Voltage
	// HarvestEff is the boost-converter efficiency applied to harvested
	// power before it reaches the capacitor (BQ25570 boost stage).
	HarvestEff float64
	// LoadEff is the buck-converter efficiency applied when delivering
	// power to the load (capacitor must supply load/LoadEff).
	LoadEff float64
	// Quiescent is the PMIC's own standby power draw.
	Quiescent units.Power
	// DisableMPPT turns off maximum-power-point tracking: without it
	// the panel operates away from its optimum and loses roughly 20%
	// of the available power (the BQ25570 tracks a fractional-VOC
	// set point; related work surveys MPPT algorithms at length).
	DisableMPPT bool
}

// mpptLoss is the harvest fraction lost when MPPT is disabled.
const mpptLoss = 0.20

// Default returns a BQ25570-like configuration for an MSP430-class
// system rail: turn on at 3.0 V, brown out at 1.8 V, ~90% boost and
// ~85% buck efficiency, 15 uW quiescent (datasheet-order values).
func Default() Config {
	return Config{
		UOn:        3.0,
		UOff:       1.8,
		HarvestEff: 0.90,
		LoadEff:    0.85,
		Quiescent:  15e-6,
	}
}

// Validate checks the configuration invariants.
func (c Config) Validate() error {
	if c.UOn <= c.UOff {
		return fmt.Errorf("pmic: U_on (%v) must exceed U_off (%v)", c.UOn, c.UOff)
	}
	if c.UOff <= 0 {
		return fmt.Errorf("pmic: U_off must be positive, got %v", c.UOff)
	}
	if c.HarvestEff <= 0 || c.HarvestEff > 1 {
		return fmt.Errorf("pmic: harvest efficiency must be in (0,1], got %g", c.HarvestEff)
	}
	if c.LoadEff <= 0 || c.LoadEff > 1 {
		return fmt.Errorf("pmic: load efficiency must be in (0,1], got %g", c.LoadEff)
	}
	if c.Quiescent < 0 {
		return fmt.Errorf("pmic: quiescent power must be non-negative, got %v", c.Quiescent)
	}
	return nil
}

// Controller is the stateful threshold comparator. The zero value is not
// usable; construct with NewController.
type Controller struct {
	cfg   Config
	state State
}

// NewController validates cfg and returns a controller starting in the
// Off (charging) state.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// State returns the current gate state.
func (c *Controller) State() State { return c.state }

// Update advances the hysteresis comparator for the given capacitor
// voltage and returns the new state plus whether a transition occurred.
func (c *Controller) Update(v units.Voltage) (State, bool) {
	switch c.state {
	case Off:
		if v >= c.cfg.UOn {
			c.state = On
			return c.state, true
		}
	case On:
		if v <= c.cfg.UOff {
			c.state = Off
			return c.state, true
		}
	}
	return c.state, false
}

// HarvestToCap converts raw harvester power to the power that actually
// reaches the capacitor (boost efficiency minus quiescent draw, floored
// at zero: a PMIC cannot un-harvest).
func (c *Controller) HarvestToCap(raw units.Power) units.Power {
	eff := c.cfg.HarvestEff
	if c.cfg.DisableMPPT {
		eff *= 1 - mpptLoss
	}
	p := units.Power(float64(raw)*eff) - c.cfg.Quiescent
	if p < 0 {
		return 0
	}
	return p
}

// LoadOnCap converts the load's power demand to the power drawn from the
// capacitor through the buck converter.
func (c *Controller) LoadOnCap(load units.Power) units.Power {
	return units.Power(float64(load) / c.cfg.LoadEff)
}

// Reset forces the controller back to the Off state.
func (c *Controller) Reset() { c.state = Off }
