package pmic

import (
	"testing"
	"testing/quick"

	"chrysalis/internal/units"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"UOn<=UOff", func(c *Config) { c.UOn = 1.8 }},
		{"UOff<=0", func(c *Config) { c.UOff = 0; c.UOn = 1 }},
		{"HarvestEff=0", func(c *Config) { c.HarvestEff = 0 }},
		{"HarvestEff>1", func(c *Config) { c.HarvestEff = 1.1 }},
		{"LoadEff=0", func(c *Config) { c.LoadEff = 0 }},
		{"LoadEff>1", func(c *Config) { c.LoadEff = 1.2 }},
		{"Quiescent<0", func(c *Config) { c.Quiescent = -1 }},
	}
	for _, tc := range cases {
		cfg := Default()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestNewControllerRejectsInvalid(t *testing.T) {
	bad := Default()
	bad.UOn = bad.UOff
	if _, err := NewController(bad); err == nil {
		t.Fatal("expected error")
	}
}

func TestHysteresis(t *testing.T) {
	c, err := NewController(Default())
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Off {
		t.Fatal("must start Off")
	}
	// Rising through mid-band keeps Off.
	if s, tr := c.Update(2.5); s != Off || tr {
		t.Fatal("mid-band rising should stay Off")
	}
	// Reaching U_on turns On.
	if s, tr := c.Update(3.0); s != On || !tr {
		t.Fatal("reaching U_on should transition to On")
	}
	// Falling through mid-band keeps On (hysteresis).
	if s, tr := c.Update(2.0); s != On || tr {
		t.Fatal("mid-band falling should stay On")
	}
	// Reaching U_off turns Off.
	if s, tr := c.Update(1.8); s != Off || !tr {
		t.Fatal("reaching U_off should transition to Off")
	}
	// Repeated updates at the same voltage do not re-transition.
	if _, tr := c.Update(1.8); tr {
		t.Fatal("no repeated transition at same voltage")
	}
}

func TestStateString(t *testing.T) {
	if On.String() != "on" || Off.String() != "off" {
		t.Fatal("unexpected state strings")
	}
}

func TestHarvestToCap(t *testing.T) {
	c, _ := NewController(Default())
	// 1mW raw: 0.9mW boosted minus 15uW quiescent = 885uW.
	got := c.HarvestToCap(1e-3)
	if !units.ApproxEqual(float64(got), 885e-6, 1e-9) {
		t.Fatalf("HarvestToCap = %v, want 885uW", got)
	}
	// Tiny harvest is swallowed by quiescent draw, floored at 0.
	if got := c.HarvestToCap(10e-6); got != 0 {
		t.Fatalf("HarvestToCap(10uW) = %v, want 0", got)
	}
}

func TestLoadOnCap(t *testing.T) {
	c, _ := NewController(Default())
	got := c.LoadOnCap(8.5e-3)
	if !units.ApproxEqual(float64(got), 10e-3, 1e-9) {
		t.Fatalf("LoadOnCap = %v, want 10mW", got)
	}
}

func TestReset(t *testing.T) {
	c, _ := NewController(Default())
	c.Update(3.5)
	if c.State() != On {
		t.Fatal("setup failed")
	}
	c.Reset()
	if c.State() != Off {
		t.Fatal("Reset should force Off")
	}
}

func TestHysteresisNeverChatters(t *testing.T) {
	// Property: for any voltage sequence, transitions only happen at the
	// threshold crossings dictated by the state machine — an On->On or
	// Off->Off update never reports a transition, and state only flips
	// when the respective threshold is met.
	f := func(raw []uint8) bool {
		c, err := NewController(Default())
		if err != nil {
			return false
		}
		prev := c.State()
		for _, r := range raw {
			v := units.Voltage(float64(r) / 255 * 4)
			s, tr := c.Update(v)
			if tr == (s == prev) {
				return false // transition flag must match state change
			}
			if tr && s == On && v < c.Config().UOn {
				return false
			}
			if tr && s == Off && v > c.Config().UOff {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMPPTDisabledLosesHarvest(t *testing.T) {
	withCfg := Default()
	without := Default()
	without.DisableMPPT = true
	a, _ := NewController(withCfg)
	b, _ := NewController(without)
	pa := a.HarvestToCap(5e-3)
	pb := b.HarvestToCap(5e-3)
	if pb >= pa {
		t.Fatalf("MPPT off (%v) should harvest less than on (%v)", pb, pa)
	}
	ratio := float64(pb+b.Config().Quiescent) / float64(pa+a.Config().Quiescent)
	if !units.ApproxEqual(ratio, 0.8, 1e-9) {
		t.Fatalf("MPPT-off ratio = %v, want 0.8", ratio)
	}
}
