package dnn

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewConv2D("c", 0, 32, 32, 16, 3, 1, 1); err == nil {
		t.Error("zero channels should fail")
	}
	if _, err := NewConv2D("c", 3, 4, 4, 16, 9, 1, 0); err == nil {
		t.Error("kernel larger than input should fail")
	}
	if _, err := NewConv1D("c", 3, 4, 8, 9, 1, 0); err == nil {
		t.Error("1d kernel larger than input should fail")
	}
	if _, err := NewConv1D("c", -1, 4, 8, 3, 1, 0); err == nil {
		t.Error("negative channels should fail")
	}
	if _, err := NewDense("d", 0, 10); err == nil {
		t.Error("zero input dense should fail")
	}
	if _, err := NewPool("p", 4, 8, 8, 16, 0); err == nil {
		t.Error("pool kernel larger than input should fail")
	}
	if _, err := NewMatMul("m", 0, 4, 4, false); err == nil {
		t.Error("zero-dim matmul should fail")
	}
}

func TestConv2DShapes(t *testing.T) {
	l, err := NewConv2D("c", 3, 224, 224, 96, 11, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.OutH != 55 || l.OutW != 55 {
		t.Fatalf("AlexNet conv1 output = %dx%d, want 55x55", l.OutH, l.OutW)
	}
	// MACs = 96·55·55·3·11·11
	want := int64(96) * 55 * 55 * 3 * 121
	if l.MACs() != want {
		t.Fatalf("MACs = %d, want %d", l.MACs(), want)
	}
	// Params = 96·3·121 + 96
	if l.Params() != 96*363+96 {
		t.Fatalf("Params = %d", l.Params())
	}
}

func TestPoolDefaultStride(t *testing.T) {
	l, err := NewPool("p", 8, 28, 28, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Stride != 2 || l.OutH != 14 {
		t.Fatalf("pool stride/out = %d/%d", l.Stride, l.OutH)
	}
	if l.Params() != 0 {
		t.Fatal("pool has no params")
	}
}

func TestMatMulActivation2(t *testing.T) {
	w, err := NewMatMul("w", 32, 768, 768, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Params() != 768*768+768 {
		t.Fatalf("weight matmul params = %d", w.Params())
	}
	a, _ := NewMatMul("a", 32, 768, 32, true)
	if a.Params() != 0 {
		t.Fatal("activation matmul must have no params")
	}
	if a.MACs() != 32*768*32 {
		t.Fatalf("MACs = %d", a.MACs())
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{Conv2D: "conv2d", Conv1D: "conv1d", Dense: "dense", Pool: "pool", MatMul: "matmul", Kind(99): "kind(99)"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// paperParams are the published parameter counts (Tables IV and V).
var paperParams = map[string]int64{
	"simpleconv": 1_200,
	"cifar10":    77_500,
	"har":        9_400,
	"kws":        49_500,
	"bert":       56_600_000,
	"alexnet":    58_700_000,
	"vgg16":      138_300_000,
	"resnet18":   11_700_000,
}

// paperMACs are the published compute figures: kFLOPs for Table IV,
// GFLOPs for Table V (the paper's Table V FLOPs column tracks MAC
// counts, as is conventional for these models).
var paperMACs = map[string]int64{
	"cifar10":  9_052_000,
	"har":      205_200,
	"kws":      49_500,
	"bert":     1_280_000_000,
	"alexnet":  1_130_000_000,
	"vgg16":    15_470_000_000,
	"resnet18": 1_810_000_000,
}

func TestCatalogMatchesPaperParams(t *testing.T) {
	for name, want := range paperParams {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := w.TotalParams()
		ratio := float64(got) / float64(want)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s: params %d vs paper %d (ratio %.2f, want within ±15%%)", name, got, want, ratio)
		}
	}
}

func TestCatalogMatchesPaperMACs(t *testing.T) {
	for name, want := range paperMACs {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := w.TotalMACs()
		ratio := float64(got) / float64(want)
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%s: MACs %d vs paper %d (ratio %.2f, want within ~±30%%)", name, got, want, ratio)
		}
	}
}

func TestMNISTCNNMatchesFig2a(t *testing.T) {
	// Figure 2(a): MNIST-CNN on MSP430 is 1.608 MOPs.
	w := MNISTCNN()
	mops := float64(w.TotalOps()) / 1e6
	if mops < 1.3 || mops > 1.9 {
		t.Fatalf("MNIST-CNN = %.3f MOPs, want ≈1.608", mops)
	}
}

func TestCatalogLayerCounts(t *testing.T) {
	// Paper layer counts (weight layers for MLP/CNNs; VGG16's "13" are
	// its convolutions; ResNet18's "20" counts convs + fc).
	if got := len(KWS().Layers); got != 5 {
		t.Errorf("KWS layers = %d, want 5", got)
	}
	if got := CIFAR10().WeightLayers(); got != 7 {
		t.Errorf("CIFAR-10 weight layers = %d, want 7", got)
	}
	convs := 0
	for _, l := range VGG16().Layers {
		if l.Kind == Conv2D {
			convs++
		}
	}
	if convs != 13 {
		t.Errorf("VGG16 convs = %d, want 13", convs)
	}
	weightLayers := 0
	for _, l := range ResNet18().Layers {
		if l.Kind == Conv2D || l.Kind == Dense {
			weightLayers++
		}
	}
	if weightLayers < 18 || weightLayers > 21 {
		t.Errorf("ResNet18 weight layers = %d, want ~20", weightLayers)
	}
	if got := len(BERT().Layers); got != 40 {
		t.Errorf("BERT layers = %d, want 40 (5 blocks × 8 matmuls)", got)
	}
}

func TestAllCatalogWorkloadsValidate(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s: %v", name, err)
		}
		if w.TotalMACs() <= 0 {
			t.Errorf("workload %s: no compute", name)
		}
		if w.WeightBytes() <= 0 {
			t.Errorf("workload %s: no weights", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v", err)
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate workload name %q", n)
		}
		seen[n] = true
	}
	if len(seen) != 13 {
		t.Fatalf("catalog has %d workloads, want 13", len(seen))
	}
}

func TestWorkloadValidateErrors(t *testing.T) {
	w := Workload{Name: "", ElemBytes: 2, Layers: []Layer{mustDense("d", 4, 4)}}
	if err := w.Validate(); err == nil {
		t.Error("empty name should fail")
	}
	w = Workload{Name: "x", ElemBytes: 0, Layers: []Layer{mustDense("d", 4, 4)}}
	if err := w.Validate(); err == nil {
		t.Error("zero elem width should fail")
	}
	w = Workload{Name: "x", ElemBytes: 2}
	if err := w.Validate(); err == nil {
		t.Error("no layers should fail")
	}
	// Shape mismatch: dense expects 10 inputs but input supplies 12.
	w = Workload{Name: "x", ElemBytes: 2, Input: [3]int{12, 1, 1},
		Layers: []Layer{mustDense("d", 10, 4)}}
	if err := w.Validate(); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestTotalOpsIsTwiceMACs(t *testing.T) {
	w := KWS()
	if w.TotalOps() != 2*w.TotalMACs() {
		t.Fatal("ops must be 2×MACs")
	}
}

func TestActivationBytes(t *testing.T) {
	w := FCNet()
	// input 64 + fc1 out 32 + fc2 out 10 = 106 elems × 2 bytes.
	if got := float64(w.ActivationBytes()); got != 212 {
		t.Fatalf("activation bytes = %v, want 212", got)
	}
}

func TestDenseMACsEqualWeights(t *testing.T) {
	// Property: for any dense layer, MACs == in·out and params == MACs + out.
	f := func(a, b uint8) bool {
		in, out := int(a)+1, int(b)+1
		l, err := NewDense("d", in, out)
		if err != nil {
			return false
		}
		return l.MACs() == int64(in)*int64(out) && l.Params() == int64(in)*int64(out)+int64(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvOutputNeverExceedsInput(t *testing.T) {
	// Property: without padding, conv output dims never exceed input dims.
	f := func(c, h, kRaw, sRaw uint8) bool {
		inC := int(c%8) + 1
		inH := int(h%60) + 4
		k := int(kRaw%3)*2 + 1 // 1,3,5
		if k > inH {
			k = 1
		}
		s := int(sRaw%3) + 1
		l, err := NewConv2D("c", inC, inH, inH, 8, k, s, 0)
		if err != nil {
			return false
		}
		return l.OutH <= inH && l.OutW <= inH && l.OutH > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDWConv2D(t *testing.T) {
	l, err := NewDWConv2D("dw", 32, 14, 14, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.OutC != 32 || l.OutH != 14 {
		t.Fatalf("shape = %dx%dx%d", l.OutC, l.OutH, l.OutW)
	}
	// Depthwise MACs: C·H·W·k² (no cross-channel term).
	if want := int64(32 * 14 * 14 * 9); l.MACs() != want {
		t.Fatalf("MACs = %d, want %d", l.MACs(), want)
	}
	if want := int64(32*9 + 32); l.Params() != want {
		t.Fatalf("params = %d, want %d", l.Params(), want)
	}
	if l.Kind.String() != "dwconv2d" {
		t.Fatalf("kind = %s", l.Kind)
	}
	if _, err := NewDWConv2D("dw", 0, 14, 14, 3, 1, 1); err == nil {
		t.Fatal("zero channels should fail")
	}
	if _, err := NewDWConv2D("dw", 4, 4, 4, 9, 1, 0); err == nil {
		t.Fatal("oversized kernel should fail")
	}
}

func TestMobileNetVWW(t *testing.T) {
	w := MobileNetVWW()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// MobileNetV1-0.25 on 96x96: ~0.2-0.5M params, ~7-15 MMACs.
	params := w.TotalParams()
	if params < 150_000 || params > 600_000 {
		t.Fatalf("params = %d, want MobileNet-0.25 scale", params)
	}
	macs := w.TotalMACs()
	if macs < 4_000_000 || macs > 30_000_000 {
		t.Fatalf("MACs = %d", macs)
	}
	// Depthwise layers must be dramatically cheaper than their pointwise
	// companions — the separable-conv premise.
	var dwMACs, pwMACs int64
	for _, l := range w.Layers {
		switch {
		case l.Kind == DWConv2D:
			dwMACs += l.MACs()
		case l.Kind == Conv2D && l.KH == 1:
			pwMACs += l.MACs()
		}
	}
	if dwMACs == 0 || pwMACs == 0 {
		t.Fatal("expected both dw and pw layers")
	}
	if dwMACs >= pwMACs {
		t.Fatalf("depthwise (%d) should be far cheaper than pointwise (%d)", dwMACs, pwMACs)
	}
}
