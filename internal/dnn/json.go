package dnn

import (
	"encoding/json"
	"fmt"
)

// JSON workload schema. Users describe a network as an input shape plus
// an ordered layer list; input shapes of each layer are inferred by
// chaining from the previous layer's output, so entries carry only the
// layer's own hyperparameters:
//
//	{
//	  "name": "mynet",
//	  "input": [3, 32, 32],
//	  "elem_bytes": 2,
//	  "layers": [
//	    {"type": "conv2d", "out_channels": 16, "kernel": 3, "stride": 1, "pad": 1},
//	    {"type": "pool",   "kernel": 2},
//	    {"type": "dwconv2d", "kernel": 3, "stride": 2, "pad": 1},
//	    {"type": "dense",  "out": 10}
//	  ]
//	}
//
// Supported types: conv2d, conv1d, dwconv2d, dense, pool, matmul.
// Branch (residual shortcut) layers are not expressible in JSON; define
// such networks in Go.

// jsonWorkload is the top-level schema.
type jsonWorkload struct {
	Name        string      `json:"name"`
	Input       [3]int      `json:"input"`
	ElemBytes   int         `json:"elem_bytes"`
	ExtraParams int64       `json:"extra_params,omitempty"`
	Layers      []jsonLayer `json:"layers"`
}

// jsonLayer is one layer entry; fields are type-dependent.
type jsonLayer struct {
	Type string `json:"type"`
	Name string `json:"name,omitempty"`

	OutChannels int `json:"out_channels,omitempty"`
	Kernel      int `json:"kernel,omitempty"`
	Stride      int `json:"stride,omitempty"`
	Pad         int `json:"pad,omitempty"`

	Out int `json:"out,omitempty"` // dense

	M           int  `json:"m,omitempty"` // matmul
	K           int  `json:"k,omitempty"`
	N           int  `json:"n,omitempty"`
	Activation2 bool `json:"activation2,omitempty"`
}

// ParseJSON builds a Workload from its JSON description, inferring each
// layer's input shape from the chain and validating the result.
func ParseJSON(data []byte) (Workload, error) {
	var jw jsonWorkload
	if err := json.Unmarshal(data, &jw); err != nil {
		return Workload{}, fmt.Errorf("dnn: invalid workload JSON: %w", err)
	}
	if jw.Name == "" {
		return Workload{}, fmt.Errorf("dnn: workload JSON needs a name")
	}
	if jw.ElemBytes == 0 {
		jw.ElemBytes = 1
	}
	c, h, wd := jw.Input[0], jw.Input[1], jw.Input[2]
	if c <= 0 || h <= 0 || wd <= 0 {
		return Workload{}, fmt.Errorf("dnn: workload %q: input shape must be positive, got %v", jw.Name, jw.Input)
	}

	layers := make([]Layer, 0, len(jw.Layers))
	for i, jl := range jw.Layers {
		name := jl.Name
		if name == "" {
			name = fmt.Sprintf("%s%d", jl.Type, i+1)
		}
		stride := jl.Stride
		if stride == 0 {
			stride = 1
		}
		var (
			l   Layer
			err error
		)
		switch jl.Type {
		case "conv2d":
			if jl.OutChannels <= 0 {
				return Workload{}, fmt.Errorf("dnn: layer %d (%s): conv2d needs out_channels", i, name)
			}
			l, err = NewConv2D(name, c, h, wd, jl.OutChannels, jl.Kernel, stride, jl.Pad)
		case "conv1d":
			if h != 1 {
				return Workload{}, fmt.Errorf("dnn: layer %d (%s): conv1d needs a 1-D input, have height %d", i, name, h)
			}
			if jl.OutChannels <= 0 {
				return Workload{}, fmt.Errorf("dnn: layer %d (%s): conv1d needs out_channels", i, name)
			}
			l, err = NewConv1D(name, c, wd, jl.OutChannels, jl.Kernel, stride, jl.Pad)
		case "dwconv2d":
			l, err = NewDWConv2D(name, c, h, wd, jl.Kernel, stride, jl.Pad)
		case "dense":
			if jl.Out <= 0 {
				return Workload{}, fmt.Errorf("dnn: layer %d (%s): dense needs out", i, name)
			}
			l, err = NewDense(name, c*h*wd, jl.Out)
		case "pool":
			if h == 1 {
				l, err = NewPool1D(name, c, wd, jl.Kernel, jl.Stride)
			} else {
				l, err = NewPool(name, c, h, wd, jl.Kernel, jl.Stride)
			}
		case "matmul":
			l, err = NewMatMul(name, jl.M, jl.K, jl.N, jl.Activation2)
		default:
			return Workload{}, fmt.Errorf("dnn: layer %d: unknown type %q", i, jl.Type)
		}
		if err != nil {
			return Workload{}, err
		}
		layers = append(layers, l)
		c, h, wd = l.OutC, l.OutH, l.OutW
	}

	w := Workload{
		Name:        jw.Name,
		Input:       jw.Input,
		Layers:      layers,
		ElemBytes:   jw.ElemBytes,
		ExtraParams: jw.ExtraParams,
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// ToJSON renders a workload back into the JSON schema (Branch layers
// are rejected: the schema cannot express them).
func (w Workload) ToJSON() ([]byte, error) {
	jw := jsonWorkload{
		Name:        w.Name,
		Input:       w.Input,
		ElemBytes:   w.ElemBytes,
		ExtraParams: w.ExtraParams,
	}
	for _, l := range w.Layers {
		if l.Branch {
			return nil, fmt.Errorf("dnn: workload %q: branch layer %q is not expressible in JSON", w.Name, l.Name)
		}
		jl := jsonLayer{Name: l.Name}
		switch l.Kind {
		case Conv2D:
			jl.Type = "conv2d"
			jl.OutChannels, jl.Kernel, jl.Stride, jl.Pad = l.OutC, l.KH, l.Stride, l.Pad
		case Conv1D:
			jl.Type = "conv1d"
			jl.OutChannels, jl.Kernel, jl.Stride, jl.Pad = l.OutC, l.KW, l.Stride, l.Pad
		case DWConv2D:
			jl.Type = "dwconv2d"
			jl.Kernel, jl.Stride, jl.Pad = l.KH, l.Stride, l.Pad
		case Dense:
			jl.Type = "dense"
			jl.Out = l.OutC
		case Pool:
			jl.Type = "pool"
			if l.InH == 1 {
				jl.Kernel = l.KW
			} else {
				jl.Kernel = l.KH
			}
			jl.Stride = l.Stride
		case MatMul:
			jl.Type = "matmul"
			jl.M, jl.K, jl.N, jl.Activation2 = l.M, l.K, l.N, l.Activation2
		default:
			return nil, fmt.Errorf("dnn: workload %q: layer %q has unknown kind", w.Name, l.Name)
		}
		jw.Layers = append(jw.Layers, jl)
	}
	return json.MarshalIndent(jw, "", "  ")
}
