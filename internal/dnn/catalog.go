package dnn

import "fmt"

// The catalog reproduces the benchmark networks of the paper's
// evaluation:
//
//   - Table IV (existing MSP430-class AuT): SimpleConv, CIFAR-10, HAR,
//     KWS — Q15 (2-byte) arithmetic.
//   - Table V (future accelerator-based AuT): BERT, AlexNet, VGG16,
//     ResNet18 — int8 (1-byte) arithmetic.
//   - Figure 2 motivational workloads: MNIST-CNN (2a) and CNN_b / CNN_s /
//     FC (2b).
//
// Layer configurations are chosen so parameter counts land on the
// paper's published values (Tables IV/V); MAC counts then follow from
// the shapes. EXPERIMENTS.md records any residual deviation.

// catalog builders panic on constructor errors: the shapes are static
// and covered by tests, so a failure is a programmer error.
func mustConv2D(name string, inC, inH, inW, outC, k, stride, pad int) Layer {
	l, err := NewConv2D(name, inC, inH, inW, outC, k, stride, pad)
	if err != nil {
		panic(err)
	}
	return l
}

func mustConv1D(name string, inC, inW, outC, k, stride, pad int) Layer {
	l, err := NewConv1D(name, inC, inW, outC, k, stride, pad)
	if err != nil {
		panic(err)
	}
	return l
}

func mustDense(name string, in, out int) Layer {
	l, err := NewDense(name, in, out)
	if err != nil {
		panic(err)
	}
	return l
}

func mustPool(name string, inC, inH, inW, k, stride int) Layer {
	l, err := NewPool(name, inC, inH, inW, k, stride)
	if err != nil {
		panic(err)
	}
	return l
}

func mustDWConv2D(name string, inC, inH, inW, k, stride, pad int) Layer {
	l, err := NewDWConv2D(name, inC, inH, inW, k, stride, pad)
	if err != nil {
		panic(err)
	}
	return l
}

func mustPool1D(name string, inC, inW, k, stride int) Layer {
	l, err := NewPool1D(name, inC, inW, k, stride)
	if err != nil {
		panic(err)
	}
	return l
}

func mustMatMul(name string, m, k, n int, act2 bool) Layer {
	l, err := NewMatMul(name, m, k, n, act2)
	if err != nil {
		panic(err)
	}
	return l
}

// SimpleConv is Table IV's "Simple Conv": a single convolution on a
// 3×32×32 input with ~1.2k parameters.
func SimpleConv() Workload {
	return Workload{
		Name:  "simpleconv",
		Input: [3]int{3, 32, 32},
		Layers: []Layer{
			mustConv2D("conv", 3, 32, 32, 16, 5, 4, 0),
		},
		ElemBytes: 2,
	}
}

// CIFAR10 is Table IV's 7-layer CIFAR-10 CNN (~77.5k params, ~9 MFLOPs).
func CIFAR10() Workload {
	return Workload{
		Name:  "cifar10",
		Input: [3]int{3, 32, 32},
		Layers: []Layer{
			mustConv2D("conv1", 3, 32, 32, 16, 3, 1, 1),
			mustConv2D("conv2", 16, 32, 32, 16, 3, 1, 1),
			mustPool("pool1", 16, 32, 32, 2, 2),
			mustConv2D("conv3", 16, 16, 16, 32, 3, 1, 1),
			mustConv2D("conv4", 32, 16, 16, 32, 3, 1, 1),
			mustPool("pool2", 32, 16, 16, 2, 2),
			mustConv2D("conv5", 32, 8, 8, 64, 3, 1, 1),
			mustPool("pool3", 64, 8, 8, 2, 2),
			mustDense("fc1", 1024, 40),
			mustDense("fc2", 40, 10),
		},
		ElemBytes: 2,
	}
}

// HAR is Table IV's 5-layer human-activity-recognition network
// (~9.4k params, ~205 kFLOPs) over 9-channel inertial sequences.
func HAR() Workload {
	return Workload{
		Name:  "har",
		Input: [3]int{9, 1, 128},
		Layers: []Layer{
			mustConv1D("conv1", 9, 128, 12, 5, 1, 0),
			mustConv1D("conv2", 12, 124, 12, 5, 1, 0),
			mustPool1D("pool", 12, 120, 2, 2),
			mustConv1D("conv3", 12, 60, 16, 5, 1, 0),
			mustDense("fc", 16*56, 8),
		},
		ElemBytes: 2,
	}
}

// KWS is Table IV's 5-layer keyword-spotting MLP over 250 MFCC features
// (~49.5k params; FLOPs ≈ params for fully-connected nets).
func KWS() Workload {
	return Workload{
		Name:  "kws",
		Input: [3]int{250, 1, 1},
		Layers: []Layer{
			mustDense("fc1", 250, 120),
			mustDense("fc2", 120, 100),
			mustDense("fc3", 100, 60),
			mustDense("fc4", 60, 20),
			mustDense("fc5", 20, 12),
		},
		ElemBytes: 2,
	}
}

// bertSeqLen is the sequence length used to model BERT's compute; the
// paper quotes (1,768) input with 1.28 GFLOPs, which corresponds to a
// short sequence through 5 encoder blocks at hidden size 768.
const bertSeqLen = 32

// BERT is Table V's 5-block transformer encoder (hidden 768,
// ~56.6M params including the embedding table, ~1.28 GMACs).
func BERT() Workload {
	const (
		h   = 768
		ffn = 4 * h
		s   = bertSeqLen
	)
	var layers []Layer
	for b := 0; b < 5; b++ {
		p := func(n string) string { return fmt.Sprintf("blk%d.%s", b, n) }
		layers = append(layers,
			mustMatMul(p("q"), s, h, h, false),
			mustMatMul(p("k"), s, h, h, false),
			mustMatMul(p("v"), s, h, h, false),
			mustMatMul(p("scores"), s, h, s, true),
			mustMatMul(p("attnv"), s, s, h, true),
			mustMatMul(p("proj"), s, h, h, false),
			mustMatMul(p("ffn1"), s, h, ffn, false),
			mustMatMul(p("ffn2"), s, ffn, h, false),
		)
	}
	return Workload{
		Name:        "bert",
		Input:       [3]int{1, 1, 768},
		Layers:      layers,
		ElemBytes:   1,
		ExtraParams: 30522 * 768, // WordPiece embedding table
	}
}

// AlexNet is Table V's 7-weight-layer AlexNet (~58.7M params,
// ~1.13 GMACs; modeled without the historical channel groups).
func AlexNet() Workload {
	return Workload{
		Name:  "alexnet",
		Input: [3]int{3, 224, 224},
		Layers: []Layer{
			mustConv2D("conv1", 3, 224, 224, 96, 11, 4, 2),
			mustPool("pool1", 96, 55, 55, 3, 2),
			mustConv2D("conv2", 96, 27, 27, 256, 5, 1, 2),
			mustPool("pool2", 256, 27, 27, 3, 2),
			mustConv2D("conv3", 256, 13, 13, 384, 3, 1, 1),
			mustConv2D("conv4", 384, 13, 13, 384, 3, 1, 1),
			mustConv2D("conv5", 384, 13, 13, 256, 3, 1, 1),
			mustPool("pool3", 256, 13, 13, 3, 2),
			mustDense("fc1", 9216, 4096),
			mustDense("fc2", 4096, 4096),
			mustDense("fc3", 4096, 1000),
		},
		ElemBytes: 1,
	}
}

// VGG16 is Table V's 13-conv VGG16 (~138.3M params, ~15.5 GMACs).
func VGG16() Workload {
	type group struct{ n, c, hw int }
	groups := []group{{2, 64, 224}, {2, 128, 112}, {3, 256, 56}, {3, 512, 28}, {3, 512, 14}}
	inC := 3
	var layers []Layer
	for gi, g := range groups {
		for i := 0; i < g.n; i++ {
			name := fmt.Sprintf("conv%d_%d", gi+1, i+1)
			layers = append(layers, mustConv2D(name, inC, g.hw, g.hw, g.c, 3, 1, 1))
			inC = g.c
		}
		layers = append(layers, mustPool(fmt.Sprintf("pool%d", gi+1), g.c, g.hw, g.hw, 2, 2))
	}
	layers = append(layers,
		mustDense("fc1", 512*7*7, 4096),
		mustDense("fc2", 4096, 4096),
		mustDense("fc3", 4096, 1000),
	)
	return Workload{
		Name:      "vgg16",
		Input:     [3]int{3, 224, 224},
		Layers:    layers,
		ElemBytes: 1,
	}
}

// ResNet18 is Table V's 20-layer ResNet-18 (~11.7M params, ~1.81 GMACs).
// Downsample shortcut convolutions are marked Branch: they read the
// block input rather than the preceding layer's output.
func ResNet18() Workload {
	var layers []Layer
	layers = append(layers,
		mustConv2D("conv1", 3, 224, 224, 64, 7, 2, 3),
		mustPool("pool1", 64, 112, 112, 3, 2), // 112 -> 55 with floor((112-3)/2)+1
	)
	// Stage helper: two basic blocks; the first may downsample.
	stage := func(name string, inC, outC, inHW int, downsample bool) int {
		hw := inHW
		stride := 1
		if downsample {
			stride = 2
			hw = (inHW+2-3)/stride + 1
			ds := mustConv2D(name+".ds", inC, inHW, inHW, outC, 1, 2, 0)
			ds.Branch = true
			layers = append(layers,
				mustConv2D(name+".b1c1", inC, inHW, inHW, outC, 3, 2, 1),
				mustConv2D(name+".b1c2", outC, hw, hw, outC, 3, 1, 1),
				ds,
			)
		} else {
			layers = append(layers,
				mustConv2D(name+".b1c1", inC, inHW, inHW, outC, 3, 1, 1),
				mustConv2D(name+".b1c2", outC, hw, hw, outC, 3, 1, 1),
			)
		}
		layers = append(layers,
			mustConv2D(name+".b2c1", outC, hw, hw, outC, 3, 1, 1),
			mustConv2D(name+".b2c2", outC, hw, hw, outC, 3, 1, 1),
		)
		return hw
	}
	hw := 55
	hw = stage("stage1", 64, 64, hw, false)
	hw = stage("stage2", 64, 128, hw, true)
	hw = stage("stage3", 128, 256, hw, true)
	hw = stage("stage4", 256, 512, hw, true)
	layers = append(layers,
		mustPool("gap", 512, hw, hw, hw, hw), // global average pool
		mustDense("fc", 512, 1000),
	)
	return Workload{
		Name:      "resnet18",
		Input:     [3]int{3, 224, 224},
		Layers:    layers,
		ElemBytes: 1,
	}
}

// MNISTCNN is the Figure 2(a) workload run on the MSP430: a LeNet-style
// MNIST CNN with ~1.6 MOPs (0.8 GMACs × 10⁻³).
func MNISTCNN() Workload {
	return Workload{
		Name:  "mnist-cnn",
		Input: [3]int{1, 28, 28},
		Layers: []Layer{
			mustConv2D("conv1", 1, 28, 28, 8, 5, 1, 2),
			mustPool("pool1", 8, 28, 28, 2, 2),
			mustConv2D("conv2", 8, 14, 14, 16, 5, 1, 2),
			mustPool("pool2", 16, 14, 14, 2, 2),
			mustDense("fc", 784, 10),
		},
		ElemBytes: 2,
	}
}

// CNNb is Figure 2(b)'s larger CNN application.
func CNNb() Workload {
	w := MNISTCNN()
	w.Name = "cnn_b"
	return w
}

// CNNs is Figure 2(b)'s smaller CNN application.
func CNNs() Workload {
	return Workload{
		Name:  "cnn_s",
		Input: [3]int{1, 16, 16},
		Layers: []Layer{
			mustConv2D("conv", 1, 16, 16, 4, 5, 1, 0),
			mustPool("pool", 4, 12, 12, 2, 2),
			mustDense("fc", 144, 10),
		},
		ElemBytes: 2,
	}
}

// FCNet is Figure 2(b)'s fully-connected application.
func FCNet() Workload {
	return Workload{
		Name:  "fc",
		Input: [3]int{64, 1, 1},
		Layers: []Layer{
			mustDense("fc1", 64, 32),
			mustDense("fc2", 32, 10),
		},
		ElemBytes: 2,
	}
}

// MobileNetVWW is an extension workload beyond the paper's catalog: a
// MobileNetV1-0.25 visual-wake-words classifier on 96x96 input, the
// canonical depthwise-separable edge vision network. It exercises the
// DWConv2D layer kind end to end.
func MobileNetVWW() Workload {
	type block struct {
		c, outC, hw, stride int
	}
	blocks := []block{
		{8, 16, 48, 1},
		{16, 32, 48, 2},
		{32, 32, 24, 1},
		{32, 64, 24, 2},
		{64, 64, 12, 1},
		{64, 128, 12, 2},
		{128, 128, 6, 1},
		{128, 128, 6, 1},
		{128, 128, 6, 1},
		{128, 128, 6, 1},
		{128, 128, 6, 1},
		{128, 256, 6, 2},
		{256, 256, 3, 1},
	}
	layers := []Layer{mustConv2D("conv1", 3, 96, 96, 8, 3, 2, 1)}
	for i, b := range blocks {
		outHW := b.hw
		if b.stride == 2 {
			outHW = (b.hw+2-3)/2 + 1
		}
		layers = append(layers,
			mustDWConv2D(fmt.Sprintf("dw%d", i+1), b.c, b.hw, b.hw, 3, b.stride, 1),
			mustConv2D(fmt.Sprintf("pw%d", i+1), b.c, outHW, outHW, b.outC, 1, 1, 0),
		)
	}
	layers = append(layers,
		mustPool("gap", 256, 3, 3, 3, 3),
		mustDense("fc", 256, 2),
	)
	return Workload{
		Name:      "mobilenet-vww",
		Input:     [3]int{3, 96, 96},
		Layers:    layers,
		ElemBytes: 1,
	}
}

// ExistingAuT returns the Table IV workload set in paper order.
func ExistingAuT() []Workload {
	return []Workload{SimpleConv(), CIFAR10(), HAR(), KWS()}
}

// FutureAuT returns the Table V workload set in paper order.
func FutureAuT() []Workload {
	return []Workload{BERT(), AlexNet(), VGG16(), ResNet18()}
}

// ByName looks up any catalog workload by its Name field.
func ByName(name string) (Workload, error) {
	all := append(ExistingAuT(), FutureAuT()...)
	all = append(all, MNISTCNN(), CNNb(), CNNs(), FCNet(), MobileNetVWW())
	for _, w := range all {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("dnn: unknown workload %q", name)
}

// Names lists every catalog workload name.
func Names() []string {
	all := append(ExistingAuT(), FutureAuT()...)
	all = append(all, MNISTCNN(), CNNb(), CNNs(), FCNet(), MobileNetVWW())
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}
