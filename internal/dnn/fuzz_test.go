package dnn

import "testing"

// FuzzParseJSON hardens the workload parser: arbitrary input must never
// panic, and any accepted workload must be internally consistent.
func FuzzParseJSON(f *testing.F) {
	f.Add([]byte(sampleJSON))
	f.Add([]byte(`{"name":"x","input":[1,1,1],"layers":[{"type":"dense","out":1}]}`))
	f.Add([]byte(`{"name":"m","input":[1,1,4],"layers":[{"type":"matmul","m":2,"k":2,"n":2}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"name":"p","input":[2,8,8],"layers":[{"type":"pool","kernel":2}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ParseJSON(data)
		if err != nil {
			return
		}
		// Accepted workloads must validate and have sane counts.
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted workload fails validation: %v", err)
		}
		if w.TotalMACs() < 0 || w.TotalParams() < 0 {
			t.Fatalf("negative counts: %d MACs, %d params", w.TotalMACs(), w.TotalParams())
		}
		// And must round-trip through the serializer.
		out, err := w.ToJSON()
		if err != nil {
			t.Fatalf("accepted workload fails to serialize: %v", err)
		}
		back, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("serialized workload fails to parse: %v\n%s", err, out)
		}
		if back.TotalMACs() != w.TotalMACs() {
			t.Fatalf("round trip changed MACs: %d -> %d", w.TotalMACs(), back.TotalMACs())
		}
	})
}
