package dnn

import (
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "custom-cnn",
  "input": [3, 32, 32],
  "elem_bytes": 2,
  "layers": [
    {"type": "conv2d", "out_channels": 8, "kernel": 3, "stride": 1, "pad": 1},
    {"type": "pool", "kernel": 2},
    {"type": "dwconv2d", "kernel": 3, "stride": 1, "pad": 1},
    {"type": "conv2d", "out_channels": 16, "kernel": 1},
    {"type": "dense", "out": 10}
  ]
}`

func TestParseJSON(t *testing.T) {
	w, err := ParseJSON([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom-cnn" || len(w.Layers) != 5 {
		t.Fatalf("parsed %q with %d layers", w.Name, len(w.Layers))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shape chain: conv keeps 32x32 (pad 1), pool halves to 16, dwconv
	// keeps channels, 1x1 conv expands to 16 channels, dense flattens.
	if w.Layers[1].OutH != 16 {
		t.Fatalf("pool out = %d", w.Layers[1].OutH)
	}
	if w.Layers[2].OutC != 8 {
		t.Fatalf("dwconv out channels = %d", w.Layers[2].OutC)
	}
	if w.Layers[4].InC != 16*16*16 {
		t.Fatalf("dense input = %d", w.Layers[4].InC)
	}
	if w.TotalMACs() <= 0 || w.TotalParams() <= 0 {
		t.Fatal("degenerate counts")
	}
}

func TestParseJSONDefaults(t *testing.T) {
	w, err := ParseJSON([]byte(`{"name":"mlp","input":[16,1,1],
		"layers":[{"type":"dense","out":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if w.ElemBytes != 1 {
		t.Fatalf("default elem bytes = %d, want 1", w.ElemBytes)
	}
	if w.Layers[0].Name != "dense1" {
		t.Fatalf("synthesized name = %q", w.Layers[0].Name)
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"bad json", `{`, "invalid workload JSON"},
		{"no name", `{"input":[1,1,1],"layers":[{"type":"dense","out":2}]}`, "needs a name"},
		{"bad input", `{"name":"x","input":[0,1,1],"layers":[{"type":"dense","out":2}]}`, "input shape"},
		{"unknown type", `{"name":"x","input":[1,1,1],"layers":[{"type":"lstm"}]}`, "unknown type"},
		{"conv2d no channels", `{"name":"x","input":[3,8,8],"layers":[{"type":"conv2d","kernel":3}]}`, "out_channels"},
		{"conv1d on 2d", `{"name":"x","input":[3,8,8],"layers":[{"type":"conv1d","out_channels":4,"kernel":3}]}`, "1-D input"},
		{"dense no out", `{"name":"x","input":[3,8,8],"layers":[{"type":"dense"}]}`, "needs out"},
		{"kernel too big", `{"name":"x","input":[3,4,4],"layers":[{"type":"conv2d","out_channels":4,"kernel":9}]}`, "exceeds"},
	}
	for _, tc := range cases {
		_, err := ParseJSON([]byte(tc.data))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig, err := ParseJSON([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, data)
	}
	if back.TotalMACs() != orig.TotalMACs() || back.TotalParams() != orig.TotalParams() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			back.TotalMACs(), back.TotalParams(), orig.TotalMACs(), orig.TotalParams())
	}
}

func TestCatalogJSONRoundTrip(t *testing.T) {
	// Every catalog workload without Branch layers must round-trip.
	for _, name := range Names() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		hasBranch := false
		for _, l := range w.Layers {
			if l.Branch {
				hasBranch = true
				break
			}
		}
		data, err := w.ToJSON()
		if hasBranch {
			if err == nil {
				t.Errorf("%s: branch layers should not serialize", name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Errorf("%s: parse back: %v", name, err)
			continue
		}
		if back.TotalMACs() != w.TotalMACs() {
			t.Errorf("%s: MACs changed %d -> %d", name, w.TotalMACs(), back.TotalMACs())
		}
		if back.TotalParams() != w.TotalParams() {
			t.Errorf("%s: params changed %d -> %d", name, w.TotalParams(), back.TotalParams())
		}
	}
}
