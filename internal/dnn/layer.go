// Package dnn defines the neural-network workload representation used by
// CHRYSALIS: a layer-level intermediate representation with exact shape,
// parameter, MAC and byte accounting, plus the catalog of benchmark
// networks from the paper's Tables IV and V (SimpleConv, CIFAR-10, HAR,
// KWS for the existing-AuT experiments; BERT, AlexNet, VGG16, ResNet18
// for the accelerator experiments) and the Figure 2 motivational
// workloads.
//
// CHRYSALIS never executes networks numerically — the evaluator needs
// "the number of data and compute operations" (Sec. III-C) — so the IR
// carries dimensions and counts, not tensors.
package dnn

import (
	"fmt"

	"chrysalis/internal/units"
)

// Kind classifies a layer for the dataflow mapper.
type Kind int

const (
	// Conv2D is a standard 2-D convolution.
	Conv2D Kind = iota
	// Conv1D is a 1-D (temporal) convolution.
	Conv1D
	// Dense is a fully-connected layer.
	Dense
	// Pool is a max/average pooling layer (no weights).
	Pool
	// MatMul is a general matrix multiply, used to model transformer
	// projections and attention score/value products.
	MatMul
	// DWConv2D is a depthwise 2-D convolution: one filter per input
	// channel (MobileNet-class efficiency layers).
	DWConv2D
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Conv2D:
		return "conv2d"
	case Conv1D:
		return "conv1d"
	case Dense:
		return "dense"
	case Pool:
		return "pool"
	case MatMul:
		return "matmul"
	case DWConv2D:
		return "dwconv2d"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Layer is one weight (or pooling) layer. Shapes follow CHW order.
// Construct layers with the typed constructors below, which compute
// output shapes and validate dimensions.
type Layer struct {
	Name string
	Kind Kind

	// Input shape.
	InC, InH, InW int
	// Output shape.
	OutC, OutH, OutW int
	// Kernel for conv/pool layers.
	KH, KW, Stride, Pad int
	// M, K, N for MatMul: (M×K)·(K×N), with weights treated as the K×N
	// operand unless Activation2 is set.
	M, K, N int
	// Activation2 marks a MatMul whose second operand is an activation
	// (attention scores × values), so it contributes no parameters.
	Activation2 bool
	// Branch marks a layer fed from an earlier point in the network
	// (e.g. a ResNet downsample shortcut): shape chaining is not checked
	// against the immediately preceding layer and the layer does not
	// advance the chain.
	Branch bool
}

// NewConv2D builds a 2-D convolution layer. Output spatial dims follow
// the standard floor formula.
func NewConv2D(name string, inC, inH, inW, outC, k, stride, pad int) (Layer, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return Layer{}, fmt.Errorf("dnn: conv2d %q: non-positive dimension", name)
	}
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if k > inH+2*pad || k > inW+2*pad || outH <= 0 || outW <= 0 {
		return Layer{}, fmt.Errorf("dnn: conv2d %q: kernel %d exceeds padded input %dx%d", name, k, inH, inW)
	}
	return Layer{
		Name: name, Kind: Conv2D,
		InC: inC, InH: inH, InW: inW,
		OutC: outC, OutH: outH, OutW: outW,
		KH: k, KW: k, Stride: stride, Pad: pad,
	}, nil
}

// NewConv1D builds a 1-D convolution over a length-inW sequence with inC
// channels.
func NewConv1D(name string, inC, inW, outC, k, stride, pad int) (Layer, error) {
	if inC <= 0 || inW <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return Layer{}, fmt.Errorf("dnn: conv1d %q: non-positive dimension", name)
	}
	outW := (inW+2*pad-k)/stride + 1
	if k > inW+2*pad || outW <= 0 {
		return Layer{}, fmt.Errorf("dnn: conv1d %q: kernel %d exceeds padded input %d", name, k, inW)
	}
	return Layer{
		Name: name, Kind: Conv1D,
		InC: inC, InH: 1, InW: inW,
		OutC: outC, OutH: 1, OutW: outW,
		KH: 1, KW: k, Stride: stride, Pad: pad,
	}, nil
}

// NewDense builds a fully-connected layer from in to out features.
func NewDense(name string, in, out int) (Layer, error) {
	if in <= 0 || out <= 0 {
		return Layer{}, fmt.Errorf("dnn: dense %q: non-positive dimension", name)
	}
	return Layer{
		Name: name, Kind: Dense,
		InC: in, InH: 1, InW: 1,
		OutC: out, OutH: 1, OutW: 1,
	}, nil
}

// NewDWConv2D builds a depthwise 2-D convolution: each input channel is
// filtered independently (OutC == InC).
func NewDWConv2D(name string, inC, inH, inW, k, stride, pad int) (Layer, error) {
	if inC <= 0 || inH <= 0 || inW <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return Layer{}, fmt.Errorf("dnn: dwconv2d %q: non-positive dimension", name)
	}
	outH := (inH+2*pad-k)/stride + 1
	outW := (inW+2*pad-k)/stride + 1
	if k > inH+2*pad || k > inW+2*pad || outH <= 0 || outW <= 0 {
		return Layer{}, fmt.Errorf("dnn: dwconv2d %q: kernel %d exceeds padded input %dx%d", name, k, inH, inW)
	}
	return Layer{
		Name: name, Kind: DWConv2D,
		InC: inC, InH: inH, InW: inW,
		OutC: inC, OutH: outH, OutW: outW,
		KH: k, KW: k, Stride: stride, Pad: pad,
	}, nil
}

// NewPool builds a pooling layer (stride defaults to the kernel when 0).
func NewPool(name string, inC, inH, inW, k, stride int) (Layer, error) {
	if stride == 0 {
		stride = k
	}
	if inC <= 0 || inH <= 0 || inW <= 0 || k <= 0 || stride <= 0 {
		return Layer{}, fmt.Errorf("dnn: pool %q: non-positive dimension", name)
	}
	outH := (inH-k)/stride + 1
	outW := (inW-k)/stride + 1
	if k > inH || k > inW || outH <= 0 || outW <= 0 {
		return Layer{}, fmt.Errorf("dnn: pool %q: kernel %d exceeds input %dx%d", name, k, inH, inW)
	}
	return Layer{
		Name: name, Kind: Pool,
		InC: inC, InH: inH, InW: inW,
		OutC: inC, OutH: outH, OutW: outW,
		KH: k, KW: k, Stride: stride,
	}, nil
}

// NewPool1D builds a pooling layer over the width dimension only, for
// 1-D (temporal) networks. Stride defaults to the kernel when 0.
func NewPool1D(name string, inC, inW, k, stride int) (Layer, error) {
	if stride == 0 {
		stride = k
	}
	if inC <= 0 || inW <= 0 || k <= 0 || stride <= 0 {
		return Layer{}, fmt.Errorf("dnn: pool1d %q: non-positive dimension", name)
	}
	outW := (inW-k)/stride + 1
	if k > inW || outW <= 0 {
		return Layer{}, fmt.Errorf("dnn: pool1d %q: kernel %d exceeds input %d", name, k, inW)
	}
	return Layer{
		Name: name, Kind: Pool,
		InC: inC, InH: 1, InW: inW,
		OutC: inC, OutH: 1, OutW: outW,
		KH: 1, KW: k, Stride: stride,
	}, nil
}

// NewMatMul builds an (M×K)·(K×N) product. When activation2 is true the
// second operand is itself an activation and carries no parameters.
func NewMatMul(name string, m, k, n int, activation2 bool) (Layer, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return Layer{}, fmt.Errorf("dnn: matmul %q: non-positive dimension", name)
	}
	return Layer{
		Name: name, Kind: MatMul,
		M: m, K: k, N: n, Activation2: activation2,
		InC: 1, InH: m, InW: k,
		OutC: 1, OutH: m, OutW: n,
	}, nil
}

// MACs returns the multiply-accumulate count of the layer.
func (l *Layer) MACs() int64 {
	switch l.Kind {
	case Conv2D:
		return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(l.InC) * int64(l.KH) * int64(l.KW)
	case Conv1D:
		return int64(l.OutC) * int64(l.OutW) * int64(l.InC) * int64(l.KW)
	case Dense:
		return int64(l.InC) * int64(l.OutC)
	case Pool:
		// Pooling performs comparisons/additions, not MACs; we charge one
		// op per element visited, folded into MACs for simplicity.
		return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(l.KH) * int64(l.KW)
	case MatMul:
		return int64(l.M) * int64(l.K) * int64(l.N)
	case DWConv2D:
		return int64(l.OutC) * int64(l.OutH) * int64(l.OutW) * int64(l.KH) * int64(l.KW)
	default:
		return 0
	}
}

// Params returns the weight-parameter count (including biases).
func (l *Layer) Params() int64 {
	switch l.Kind {
	case Conv2D:
		return int64(l.OutC)*int64(l.InC)*int64(l.KH)*int64(l.KW) + int64(l.OutC)
	case Conv1D:
		return int64(l.OutC)*int64(l.InC)*int64(l.KW) + int64(l.OutC)
	case Dense:
		return int64(l.InC)*int64(l.OutC) + int64(l.OutC)
	case Pool:
		return 0
	case MatMul:
		if l.Activation2 {
			return 0
		}
		return int64(l.K)*int64(l.N) + int64(l.N)
	case DWConv2D:
		return int64(l.InC)*int64(l.KH)*int64(l.KW) + int64(l.InC)
	default:
		return 0
	}
}

// InputElems returns the number of input activation elements.
func (l *Layer) InputElems() int64 {
	if l.Kind == MatMul {
		return int64(l.M) * int64(l.K)
	}
	return int64(l.InC) * int64(l.InH) * int64(l.InW)
}

// OutputElems returns the number of output activation elements.
func (l *Layer) OutputElems() int64 {
	if l.Kind == MatMul {
		return int64(l.M) * int64(l.N)
	}
	return int64(l.OutC) * int64(l.OutH) * int64(l.OutW)
}

// WeightElems returns the number of weight elements (0 for pool and
// activation-activation matmuls).
func (l *Layer) WeightElems() int64 { return l.Params() }

// Validate performs internal-consistency checks used by property tests.
func (l Layer) Validate() error {
	if l.MACs() < 0 || l.Params() < 0 {
		return fmt.Errorf("dnn: layer %q: negative counts", l.Name)
	}
	if l.OutputElems() <= 0 || l.InputElems() <= 0 {
		return fmt.Errorf("dnn: layer %q: empty tensor", l.Name)
	}
	return nil
}

// Workload is a named network: an ordered list of layers plus the
// element width used on the target platform (2 bytes for Q15 MSP-class
// math, 1 byte for int8 accelerators).
type Workload struct {
	Name      string
	Input     [3]int // C, H, W
	Layers    []Layer
	ElemBytes int
	// ExtraParams counts parameters that are storage-only (embedding
	// tables): they contribute to model size but not to compute.
	ExtraParams int64
}

// TotalMACs sums MACs over all layers.
func (w Workload) TotalMACs() int64 {
	var s int64
	for _, l := range w.Layers {
		s += l.MACs()
	}
	return s
}

// TotalOps returns operation count as 2·MACs (multiply + accumulate),
// the convention the paper's MOPs figures follow.
func (w Workload) TotalOps() int64 { return 2 * w.TotalMACs() }

// TotalParams sums parameters over all layers plus any storage-only
// extras (embedding tables).
func (w Workload) TotalParams() int64 {
	s := w.ExtraParams
	for _, l := range w.Layers {
		s += l.Params()
	}
	return s
}

// WeightBytes returns the total model size in bytes.
func (w Workload) WeightBytes() units.Bytes {
	return units.Bytes(w.TotalParams() * int64(w.ElemBytes))
}

// ActivationBytes returns the input + all layer outputs in bytes: the
// activation traffic lower bound for one inference.
func (w Workload) ActivationBytes() units.Bytes {
	var s int64 = int64(w.Input[0]) * int64(w.Input[1]) * int64(w.Input[2])
	for _, l := range w.Layers {
		s += l.OutputElems()
	}
	return units.Bytes(s * int64(w.ElemBytes))
}

// WeightLayers counts layers that carry parameters.
func (w Workload) WeightLayers() int {
	n := 0
	for _, l := range w.Layers {
		if l.Params() > 0 {
			n++
		}
	}
	return n
}

// Validate checks the layer chain is shape-consistent: each layer's
// input must match the previous layer's output (Dense layers flatten).
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("dnn: workload has no name")
	}
	if w.ElemBytes <= 0 {
		return fmt.Errorf("dnn: workload %q: non-positive element width", w.Name)
	}
	if len(w.Layers) == 0 {
		return fmt.Errorf("dnn: workload %q has no layers", w.Name)
	}
	prevElems := int64(w.Input[0]) * int64(w.Input[1]) * int64(w.Input[2])
	for i, l := range w.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("dnn: workload %q layer %d: %w", w.Name, i, err)
		}
		if l.Branch {
			continue // fed from an earlier point; does not advance the chain
		}
		if l.Kind == Dense {
			if l.InputElems() != prevElems {
				return fmt.Errorf("dnn: workload %q layer %d (%s): dense input %d != upstream elements %d",
					w.Name, i, l.Name, l.InputElems(), prevElems)
			}
		} else if l.Kind != MatMul {
			if in := l.InputElems(); in != prevElems {
				return fmt.Errorf("dnn: workload %q layer %d (%s): input elements %d != upstream %d",
					w.Name, i, l.Name, in, prevElems)
			}
		}
		prevElems = l.OutputElems()
	}
	return nil
}
