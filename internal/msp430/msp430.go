// Package msp430 models the MSP430FR5994 LaunchPad platform that the
// paper's "existing AuT" experiments target (Table III, Table IV): a
// 16 MHz MCU with 8 KB of SRAM (VM), 256 KB of FRAM (NVM) and the
// low-energy accelerator (LEA) for vector operations. Energy and
// latency constants are calibrated against Figure 2(a)'s published row
// (MNIST-CNN: 1447 ms/input, 7.5 mW, 1.608 MOPs) and iNAS-style FRAM
// access costs.
package msp430

import (
	"fmt"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/units"
)

// Memory geometry of the MSP430FR5994.
const (
	// SRAMBytes is the on-chip SRAM used as volatile working memory.
	SRAMBytes units.Bytes = 8 * units.KB
	// FRAMBytes is the non-volatile FRAM capacity.
	FRAMBytes units.Bytes = 256 * units.KB
)

// Config selects platform options. The zero value is the stock
// LaunchPad with the LEA enabled.
type Config struct {
	// DisableLEA runs DNN kernels on the CPU alone; the LEA gives
	// roughly a 5x speedup on the vector kernels it accelerates.
	DisableLEA bool
}

// leaSpeedup is the effective acceleration the LEA provides on DNN
// kernels (vector MACs) relative to plain CPU execution.
const leaSpeedup = 5.0

// Platform constants calibrated to Figure 2(a): 1447 ms for ~0.80 GMACs
// × 10⁻³ gives ~1.8 µs per MAC with the LEA; 10.85 mJ per inference at
// 7.5 mW splits across compute, SRAM traffic, FRAM traffic and idle.
const (
	tmacLEA  units.Seconds = 1.8e-6
	emacLEA  units.Energy  = 9e-9
	evmByte  units.Energy  = 0.5e-9
	framRead units.Energy  = 1.5e-9
	framWrit units.Energy  = 3e-9
	framBW   float64       = 4e6 // bytes/second
	pmemByte units.Power   = 5e-9
	pIdle    units.Power   = 1.2e-3
)

// HW materializes the dataflow cost-model constants for the platform.
// The MSP430 is a single-PE device: the dataflow taxonomy degenerates
// (any dataflow is legal; OS matches how the LEA accumulates), and the
// per-PE "cache" is the LEA's 4 KB shared RAM window.
func (c Config) HW() dataflow.HW {
	tmac := tmacLEA
	emac := emacLEA
	if c.DisableLEA {
		tmac = units.Seconds(float64(tmacLEA) * leaSpeedup)
		// CPU MACs burn roughly the same energy per op scaled by the
		// longer active time at similar power.
		emac = units.Energy(float64(emacLEA) * leaSpeedup * 0.8)
	}
	return dataflow.HW{
		NPE:              1,
		CacheBytes:       4 * units.KB,
		VMBytes:          SRAMBytes,
		EMAC:             emac,
		EVMPerByte:       evmByte,
		ENVMReadPerByte:  framRead,
		ENVMWritePerByte: framWrit,
		TMAC:             tmac,
		NVMBytesPerSec:   framBW,
		PMemPerByte:      pmemByte,
		PIdle:            pIdle,
	}
}

// ActivePower is the board's draw while executing at full tilt: the
// published 7.5 mW operating point.
func (c Config) ActivePower() units.Power {
	hw := c.HW()
	macRate := 1 / float64(hw.TMAC)
	dynamic := macRate * (float64(hw.EMAC) + 4*float64(hw.EVMPerByte))
	static := float64(hw.PMemPerByte)*float64(hw.VMBytes) + float64(hw.PIdle)
	return units.Power(dynamic + static)
}

// CheckFits verifies a model's weights fit the FRAM alongside the
// checkpoint region; the paper cites the 256 KB FRAM as a limiting
// factor of MSP-class AuT.
func CheckFits(weightBytes, ckptBytes units.Bytes) error {
	if total := weightBytes + ckptBytes; total > FRAMBytes {
		return fmt.Errorf("msp430: weights (%v) + checkpoint region (%v) exceed %v FRAM",
			weightBytes, ckptBytes, FRAMBytes)
	}
	return nil
}

// Fig2aRow is the published MSP430/HAWAII column of Figure 2(a).
type Fig2aRow struct {
	TimePerInput units.Seconds
	Power        units.Power
	Energy       units.Energy
	MOPs         float64
}

// PublishedMNIST is Figure 2(a)'s MSP430 column. (The figure's energy
// row is labeled µJ but is the product of the published power and time,
// i.e. millijoules.)
func PublishedMNIST() Fig2aRow {
	return Fig2aRow{
		TimePerInput: 1.447,
		Power:        7.5e-3,
		Energy:       10.85e-3,
		MOPs:         1.608,
	}
}
