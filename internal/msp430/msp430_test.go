package msp430

import (
	"testing"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

func TestHWValid(t *testing.T) {
	hw := Config{}.HW()
	if err := hw.Validate(); err != nil {
		t.Fatalf("platform HW invalid: %v", err)
	}
	if hw.NPE != 1 {
		t.Fatalf("MSP430 is single-PE, got %d", hw.NPE)
	}
	if hw.VMBytes != 8*units.KB {
		t.Fatalf("VM = %v, want 8KB", hw.VMBytes)
	}
}

func TestLEASpeedup(t *testing.T) {
	lea := Config{}.HW()
	cpu := Config{DisableLEA: true}.HW()
	if cpu.TMAC <= lea.TMAC {
		t.Fatal("disabling the LEA must slow MACs down")
	}
	if cpu.EMAC <= lea.EMAC {
		t.Fatal("CPU-only MACs should cost more energy")
	}
}

func TestMNISTNearPublished(t *testing.T) {
	// Run MNIST-CNN through the cost model and compare against the
	// published Figure 2(a) row within 2x.
	hw := Config{}.HW()
	w := dnn.MNISTCNN()
	var totalT units.Seconds
	var totalE units.Energy
	for _, l := range w.Layers {
		_, c, err := dataflow.MinTileMapping(l, w.ElemBytes, dataflow.OS, hw)
		if err != nil {
			t.Fatalf("layer %s: %v", l.Name, err)
		}
		totalT += c.TDf
		totalE += c.EDf
	}
	// Add static energy for the run (part of the 7.5 mW operating point).
	totalE += dataflow.StaticEnergy(hw, totalT)
	pub := PublishedMNIST()
	ratioT := float64(totalT) / float64(pub.TimePerInput)
	ratioE := float64(totalE) / float64(pub.Energy)
	if ratioT < 0.5 || ratioT > 2 {
		t.Errorf("model time %v vs published %v (ratio %.2f)", totalT, pub.TimePerInput, ratioT)
	}
	if ratioE < 0.5 || ratioE > 2 {
		t.Errorf("model energy %v vs published %v (ratio %.2f)", totalE, pub.Energy, ratioE)
	}
}

func TestActivePowerNearPublished(t *testing.T) {
	p := Config{}.ActivePower()
	if p < 4e-3 || p > 15e-3 {
		t.Fatalf("active power %v implausible vs published 7.5mW", p)
	}
}

func TestCheckFits(t *testing.T) {
	if err := CheckFits(100*units.KB, 16*units.KB); err != nil {
		t.Fatalf("100KB + 16KB should fit 256KB FRAM: %v", err)
	}
	if err := CheckFits(250*units.KB, 16*units.KB); err == nil {
		t.Fatal("overflow should be rejected")
	}
}

func TestTableIVWorkloadsMappable(t *testing.T) {
	// All four existing-AuT workloads must have a feasible mapping for
	// every layer on the stock platform (the premise of Table IV).
	hw := Config{}.HW()
	for _, w := range dnn.ExistingAuT() {
		for _, l := range w.Layers {
			if _, _, err := dataflow.MinTileMapping(l, w.ElemBytes, dataflow.OS, hw); err != nil {
				t.Errorf("%s/%s: %v", w.Name, l.Name, err)
			}
		}
	}
}

func TestEyerissGapMatchesFig2a(t *testing.T) {
	// Figure 2(a)'s point: the MSP430 is orders of magnitude slower per
	// op than a dedicated array. Effective MOPS here ≈ 1.1; Eyeriss
	// ≈ 23000 per the published rows.
	mspOpsPerSec := PublishedMNIST().MOPs * 2 / float64(PublishedMNIST().TimePerInput)
	if mspOpsPerSec > 10 {
		t.Fatalf("MSP430 effective MOPS = %.1f, expected ~2", mspOpsPerSec)
	}
}
