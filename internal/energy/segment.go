// Segment solver: the closed form of the capacitor's discrete-step
// recurrence under constant net power, used by the event-driven
// simulator (internal/sim) to jump whole quiet windows instead of
// grinding fixed steps.
//
// Within one step of the step simulator (storage.Capacitor.Step with
// constant harvest credit H and load debit D per step) the stored
// energy evolves as
//
//	u_i     = e_i + H                    (harvest credit)
//	leak_i  = λ·u_i,  λ = 2·k_cap·dt     (I_R·U = k_cap·C·U² = 2·k_cap·E)
//	e_{i+1} = (1−λ)·u_i − D
//
// i.e. an affine map e_{i+1} = A·e_i + (A·H − D) with A = 1−λ, whose
// n-step composition has the closed form
//
//	e_n = e* + Aⁿ·(e_0 − e*),   e* = (A·H − D)/λ.
//
// The map is a contraction toward e*, so trajectories are monotone and
// threshold crossings can be found by inverting Aⁿ. Where the inversion
// loses precision — the guard band near a threshold that sits close to
// the asymptote e* — the solver falls back to a rigorous linear bound,
// so its answer always undershoots the true crossing: callers step the
// bit-honest oracle over the remaining handful of steps.
package energy

import "math"

// segNever is the "never crosses" step count; far beyond any horizon.
const segNever = 1 << 60

// Segment is the per-step affine recurrence of one quiet window:
// constant harvest credit and load debit, leak proportional to stored
// energy. Build one per window with NewSegment.
type Segment struct {
	// Lambda is the leak fraction of post-harvest energy per step,
	// 2·k_cap·dt.
	Lambda float64
	// A is the per-step retention factor 1 − Lambda.
	A float64
	// H is the capacitor-side harvest credit per step (joules).
	H float64
	// D is the capacitor-side load debit per step (joules).
	D float64
	// F is the fixed point e* = (A·H − D)/λ, precomputed because the
	// crossing solver runs before every literal step of the event
	// simulator.
	F float64
}

// NewSegment builds the recurrence for one quiet window. kcap is the
// capacitor's leakage coefficient (1/s), dt the step, h and d the
// per-step harvest credit and load debit in joules. ok is false when
// the contraction is too coarse for the closed form to be trustworthy
// (λ out of (0, ¼)); callers must then step literally.
func NewSegment(kcap, dt, h, d float64) (s Segment, ok bool) {
	lambda := 2 * kcap * dt
	if !(lambda > 0) || lambda >= 0.25 {
		return Segment{}, false
	}
	a := 1 - lambda
	return Segment{
		Lambda: lambda,
		A:      a,
		H:      h,
		D:      d,
		F:      (a*h - d) / lambda,
	}, true
}

// Fixed returns the recurrence's fixed point e* = (A·H − D)/λ: the
// stored energy the trajectory converges to (may be negative when the
// load outruns harvest; the trajectory then heads for a brownout).
func (s *Segment) Fixed() float64 {
	return s.F
}

// EnergyAfter returns the stored energy after n steps from e0:
// e* + Aⁿ·(e0 − e*). Aⁿ is computed by binary exponentiation — a few
// multiplies instead of an exp, and with O(log n) ulp error it is as
// accurate as the exp form at a fraction of the cost.
func (s *Segment) EnergyAfter(e0 float64, n int) float64 {
	return s.F + (e0-s.F)*powInt(s.A, n)
}

// powInt returns aⁿ for n ≥ 0 by binary exponentiation.
func powInt(a float64, n int) float64 {
	p := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			p *= a
		}
		a *= a
	}
	return p
}

// StepsShortOfCrossing returns a step count n ≥ 0 such that the
// trajectory from e0 is still strictly on the starting side of target
// after n steps — a conservative undershoot of the true first-crossing
// index, safe to jump in one go. It returns a count far beyond any
// simulation horizon when the trajectory provably never reaches target
// (the asymptote lies short of it, or motion points away).
func (s *Segment) StepsShortOfCrossing(e0, target float64) int {
	den := s.F - e0     // total distance to the asymptote
	dist := target - e0 // distance to the threshold
	if dist == 0 {
		return 0
	}
	if den == 0 || (den > 0) != (dist > 0) {
		// Stationary, or moving away from the target.
		return segNever
	}
	aden := math.Abs(den)
	adist := math.Abs(dist)
	if adist >= aden {
		// The asymptote sits short of the target: approached, never
		// reached.
		return segNever
	}

	// Rigorous bound: per-step movement is λ·|e* − e_k|, which only
	// shrinks, so covering adist takes at least adist/(λ·aden) steps.
	lin := adist / (s.Lambda * aden)
	if lin > 1e15 {
		return segNever
	}
	n := int(lin) - 1

	// The linear bound is tight while the contraction barely bends the
	// trajectory (λ·lin ≪ 1); invert the exponential only when it can
	// meaningfully extend the jump, sparing a log on the hot path.
	if s.Lambda*lin <= 0.05 {
		if n < 0 {
			return 0
		}
		return n
	}

	// Exponential inversion: first crossing at ln(gap/aden)/ln A with
	// gap = |e* − target|. Its guard widens with the cancellation error
	// of gap, so the estimate stays an undershoot even deep inside the
	// near-asymptote guard band.
	gap := aden - adist
	if gap > 0 {
		// ln A, computed as log1p(−λ) for accuracy. Only this branch
		// needs it, so it is not worth a field set eagerly by every
		// NewSegment on the event simulator's per-tile path.
		lnA := math.Log1p(-s.Lambda)
		guard := 2 + 4e-16*(aden/gap)/s.Lambda
		if est := math.Log(gap/aden)/lnA - guard; est > float64(n) {
			if est > 1e15 {
				return segNever
			}
			n = int(est)
		}
	}
	if n < 0 {
		return 0
	}
	return n
}
