package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"chrysalis/internal/pmic"
	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/units"
)

func solarSub(t *testing.T, area units.AreaCM2, cap units.Capacitance, env solar.Environment) *Subsystem {
	t.Helper()
	s, err := NewSolar(Spec{PanelArea: area, Cap: cap}, env)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{Cap: 100e-6}, nil); err == nil {
		t.Error("nil harvester should be rejected")
	}
	if _, err := NewSolar(Spec{PanelArea: 0, Cap: 100e-6}, solar.Bright()); err == nil {
		t.Error("invalid panel should be rejected")
	}
	if _, err := NewSolar(Spec{PanelArea: 8, Cap: 0}, solar.Bright()); err == nil {
		t.Error("invalid capacitance should be rejected")
	}
	bad := Spec{PanelArea: 8, Cap: 100e-6, Rated: 2.0} // UOn default 3.0 > rated 2.0
	if _, err := NewSolar(bad, solar.Bright()); err == nil {
		t.Error("UOn above rated voltage should be rejected")
	}
	badPMIC := Spec{PanelArea: 8, Cap: 100e-6, PMIC: pmic.Config{UOn: 1, UOff: 2, HarvestEff: 0.9, LoadEff: 0.9}}
	if _, err := NewSolar(badPMIC, solar.Bright()); err == nil {
		t.Error("invalid PMIC config should be rejected")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := solarSub(t, 8, 100e-6, solar.Bright())
	got := s.Spec()
	if got.Kcap == 0 || got.Rated == 0 || got.PMIC == (pmic.Config{}) {
		t.Fatalf("defaults not filled: %+v", got)
	}
}

func TestSolarHarvesterDescribe(t *testing.T) {
	s := solarSub(t, 8, 100e-6, solar.Bright())
	d := s.Harvester.Describe()
	if !strings.Contains(d, "solar") || !strings.Contains(d, "bright") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestChargeThenPowerCycle(t *testing.T) {
	// 8cm² bright = 8mW raw. Charge a 100uF cap, verify the gate turns
	// on near U_on, then draw a heavy load and verify it turns off near
	// U_off.
	s := solarSub(t, 8, 100e-6, solar.Bright())
	var onAt units.Seconds = -1
	var tm units.Seconds
	const dt = 1e-3
	for i := 0; i < 200000; i++ {
		rep := s.Step(tm, 0, dt)
		tm += dt
		if rep.State == pmic.On {
			onAt = tm
			if rep.Voltage < s.Spec().PMIC.UOn-0.05 {
				t.Fatalf("turned on at voltage %v, want >= ~U_on", rep.Voltage)
			}
			break
		}
	}
	if onAt < 0 {
		t.Fatal("never turned on")
	}
	// Now draw 50mW, far above harvest: must brown out.
	for i := 0; i < 200000; i++ {
		rep := s.Step(tm, 50e-3, dt)
		tm += dt
		if rep.State == pmic.Off {
			if rep.Voltage > s.Spec().PMIC.UOff+0.05 {
				t.Fatalf("turned off at voltage %v, want <= ~U_off", rep.Voltage)
			}
			return
		}
	}
	t.Fatal("never browned out under 50mW load")
}

func TestChargeLatencyMatchesStepSim(t *testing.T) {
	// The Eq.-3-style closed form and the step simulator must agree on
	// charge time within a few percent.
	s := solarSub(t, 8, 1e-3, solar.Bright())
	closed := s.ChargeLatency()

	s2 := solarSub(t, 8, 1e-3, solar.Bright())
	s2.Cap.SetVoltage(s2.Spec().PMIC.UOff) // per-cycle charge starts at U_off
	var tm units.Seconds
	const dt = 1e-3
	for i := 0; i < 10_000_000; i++ {
		rep := s2.Step(tm, 0, dt)
		tm += dt
		if rep.State == pmic.On {
			break
		}
	}
	if math.IsInf(float64(closed), 1) {
		t.Fatalf("closed form says never-on but sim turned on at %v", tm)
	}
	if !units.ApproxEqual(float64(tm), float64(closed), 0.05) {
		t.Fatalf("step sim charge %v vs closed form %v", tm, closed)
	}
}

func TestChargeLatencyDarkSlower(t *testing.T) {
	b := solarSub(t, 8, 100e-6, solar.Bright())
	d := solarSub(t, 8, 100e-6, solar.Dark())
	if b.ChargeLatency() >= d.ChargeLatency() {
		t.Fatal("dark environment must charge slower")
	}
}

func TestAvailablePerCycleMatchesEq3(t *testing.T) {
	s := solarSub(t, 6, 100e-6, solar.Bright())
	spec := s.Spec()
	// Recompute Eq. 3 by hand: pEh = HarvestToCap(6mW),
	// store=½·1e-4·(9−3.24), leak=k·C·U_on².
	pEh := 6e-3*spec.PMIC.HarvestEff - float64(spec.PMIC.Quiescent)
	store := 0.5 * 1e-4 * (9 - 3.24)
	leak := spec.Kcap * 1e-4 * 9
	T := 2.0
	want := (store + T*(pEh-leak)) * spec.PMIC.LoadEff
	got := s.AvailablePerCycle(units.Seconds(T))
	if !units.ApproxEqual(float64(got), want, 1e-9) {
		t.Fatalf("AvailablePerCycle = %v, want %v", got, want)
	}
}

func TestAvailablePerCycleClampsNegative(t *testing.T) {
	// Giant capacitor, dark environment, long execution: leakage beats
	// harvest and the closed form goes negative; must clamp to 0.
	s := solarSub(t, 1, 10e-3, solar.Dark())
	if got := s.AvailablePerCycle(1000); got != 0 {
		t.Fatalf("expected 0 for infeasible cycle, got %v", got)
	}
}

func TestResetReturnsToInitialState(t *testing.T) {
	s := solarSub(t, 8, 100e-6, solar.Bright())
	for i := 0; i < 1000; i++ {
		s.Step(units.Seconds(i)*1e-3, 0, 1e-3)
	}
	s.Reset()
	if s.Cap.Voltage() != 0 {
		t.Fatal("capacitor should be discharged")
	}
	if s.Ctrl.State() != pmic.Off {
		t.Fatal("controller should be Off")
	}
}

func TestStepEnergyAccounting(t *testing.T) {
	// Property: Harvested == Charged + Spilled + ConversionLoss over any
	// single step (while the load path is separately accounted).
	f := func(areaSel, capSel, vSel uint8) bool {
		areas := []units.AreaCM2{1, 4, 8, 16, 30}
		caps := []units.Capacitance{1e-6, 100e-6, 1e-3, 10e-3}
		s, err := NewSolar(Spec{
			PanelArea: areas[int(areaSel)%len(areas)],
			Cap:       caps[int(capSel)%len(caps)],
		}, solar.Bright())
		if err != nil {
			return false
		}
		s.Cap.SetVoltage(units.Voltage(float64(vSel) / 255 * 5))
		rep := s.Step(0, 5e-3, 0.01)
		lhs := float64(rep.Harvested)
		rhs := float64(rep.Charged) + float64(rep.Spilled) + float64(rep.ConversionLoss)
		return units.ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadNotDrawnWhileOff(t *testing.T) {
	s := solarSub(t, 8, 100e-6, solar.Bright())
	rep := s.Step(0, 10e-3, 1e-3)
	if rep.Delivered != 0 {
		t.Fatalf("load delivered %v while gate Off", rep.Delivered)
	}
}

// fixedHarvester is a test double for the Harvester interface.
type fixedHarvester units.Power

func (f fixedHarvester) Power(units.Seconds) units.Power { return units.Power(f) }
func (f fixedHarvester) Describe() string                { return "fixed" }

func TestCustomHarvesterInterface(t *testing.T) {
	s, err := New(Spec{Cap: 100e-6}, fixedHarvester(5e-3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Harvester.Describe() != "fixed" {
		t.Fatal("custom harvester not wired through")
	}
	if got := s.HarvestPower(0); got <= 0 || got >= 5e-3 {
		t.Fatalf("net harvest %v should be positive and below raw 5mW", got)
	}
}

func TestCycleBudget(t *testing.T) {
	// Heavy load on a small cap: finite budget roughly load × duration.
	s := solarSub(t, 8, 100e-6, solar.Bright())
	load := units.Power(9e-3)
	budget, dur := s.CycleBudget(load)
	if math.IsInf(float64(budget), 1) {
		t.Fatal("9mW load on 8cm² should drain the capacitor")
	}
	if budget <= 0 || dur <= 0 {
		t.Fatalf("budget %v, duration %v", budget, dur)
	}
	if !units.ApproxEqual(float64(budget), float64(load)*float64(dur), 1e-9) {
		t.Fatalf("budget %v != load×duration %v", budget, units.MulPT(load, dur))
	}
	// A tiny load that harvest covers: infinite budget.
	infBudget, infDur := s.CycleBudget(1e-6)
	if !math.IsInf(float64(infBudget), 1) || !math.IsInf(float64(infDur), 1) {
		t.Fatalf("1uW load should be sustained forever, got %v/%v", infBudget, infDur)
	}
	// Budget grows with capacitor size at the same load.
	big := solarSub(t, 8, 1e-3, solar.Bright())
	bigBudget, _ := big.CycleBudget(load)
	if bigBudget <= budget {
		t.Fatalf("1mF budget %v should exceed 100uF budget %v", bigBudget, budget)
	}
	// Budget shrinks as load grows.
	b2, _ := s.CycleBudget(20e-3)
	if b2 >= budget {
		t.Fatalf("heavier load should get a smaller budget: %v vs %v", b2, budget)
	}
}

func TestStorageTechSelection(t *testing.T) {
	// Ceramic at 47uF: lower leakage coefficient flows through.
	ce, err := NewSolar(Spec{PanelArea: 8, Cap: 47e-6, Storage: storage.Ceramic}, solar.Bright())
	if err != nil {
		t.Fatal(err)
	}
	el, err := NewSolar(Spec{PanelArea: 8, Cap: 47e-6}, solar.Bright())
	if err != nil {
		t.Fatal(err)
	}
	if ce.Spec().Kcap >= el.Spec().Kcap {
		t.Fatalf("ceramic kcap %v should be below electrolytic %v", ce.Spec().Kcap, el.Spec().Kcap)
	}
	// Out-of-range per technology is rejected.
	if _, err := NewSolar(Spec{PanelArea: 8, Cap: 1e-3, Storage: storage.Ceramic}, solar.Bright()); err == nil {
		t.Fatal("1mF ceramic should be rejected")
	}
	// Explicit Kcap overrides the technology coefficient.
	custom, err := NewSolar(Spec{PanelArea: 8, Cap: 47e-6, Storage: storage.Ceramic, Kcap: 0.5}, solar.Bright())
	if err != nil {
		t.Fatal(err)
	}
	if custom.Spec().Kcap != 0.5 {
		t.Fatalf("explicit kcap not honored: %v", custom.Spec().Kcap)
	}
}
