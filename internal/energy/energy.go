// Package energy composes the harvester, storage capacitor and power
// management IC into the AuT energy subsystem and implements the energy
// controller of the paper's describer (Sec. III-C): the component that
// "emulates the intermittent computing power logic and communicates with
// the inference subsystem describer".
//
// The subsystem exposes two views used by CHRYSALIS:
//
//   - a closed-form view (Eq. 3) used by the analytic evaluator during
//     search, and
//   - a step view used by the step-based simulator, where each step
//     credits harvested energy, debits leakage and load, and runs the
//     PMIC threshold comparator.
package energy

import (
	"fmt"
	"math"

	"chrysalis/internal/pmic"
	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/units"
)

// Harvester abstracts the energy-harvesting transducer so users can
// substitute non-solar sources (thermal, RF) as the paper's
// interface-oriented design intends.
type Harvester interface {
	// Power returns the raw harvested power at time t.
	Power(t units.Seconds) units.Power
	// Describe identifies the harvester in traces.
	Describe() string
}

// SolarHarvester adapts a solar panel plus environment to Harvester.
type SolarHarvester struct {
	Panel solar.Panel
	Env   solar.Environment
}

// Power implements Harvester.
func (s SolarHarvester) Power(t units.Seconds) units.Power { return s.Panel.Power(s.Env, t) }

// Describe implements Harvester.
func (s SolarHarvester) Describe() string {
	return fmt.Sprintf("solar %v @ %s", s.Panel.Area, s.Env.Name())
}

// SteadyHarvester is implemented by harvesters whose output power is
// constant over all of scenario time. The event-driven simulator uses
// it to qualify a run for the closed-form segment solver; harvesters
// that don't implement it (or report false) are step-integrated.
type SteadyHarvester interface {
	// SteadyPower returns the time-invariant output power and true, or
	// (0, false) when the output varies with time.
	SteadyPower() (units.Power, bool)
}

// SteadyPower implements SteadyHarvester: a solar harvester is steady
// exactly when its environment advertises a constant coefficient.
func (s SolarHarvester) SteadyPower() (units.Power, bool) {
	if se, ok := s.Env.(solar.SteadyEnvironment); ok && se.SteadyKeh() {
		return s.Power(0), true
	}
	return 0, false
}

// Spec captures the configurable energy-subsystem parameters of the
// paper's design space: panel area and capacitor size, plus technology
// constants (k_cap, thresholds).
type Spec struct {
	PanelArea units.AreaCM2
	Cap       units.Capacitance
	// Storage selects the capacitor technology (zero value:
	// electrolytic, the paper's default). Ignored when Kcap is set.
	Storage storage.Tech
	Kcap    float64       // 0 selects the technology's coefficient
	Rated   units.Voltage // 0 selects 5.0 V
	PMIC    pmic.Config   // zero value selects pmic.Default()
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Kcap == 0 {
		s.Kcap = storage.DefaultKcap
		if ts, err := storage.SpecFor(s.Storage); err == nil {
			s.Kcap = ts.Kcap
		}
	}
	if s.Rated == 0 {
		s.Rated = 5.0
	}
	if s.PMIC == (pmic.Config{}) {
		s.PMIC = pmic.Default()
	}
	return s
}

// Subsystem is an instantiated energy subsystem.
type Subsystem struct {
	Harvester Harvester
	Cap       *storage.Capacitor
	Ctrl      *pmic.Controller

	spec Spec
}

// New builds the subsystem from a spec and harvester. A nil harvester is
// rejected; spec bounds are validated by the component constructors.
func New(spec Spec, h Harvester) (*Subsystem, error) {
	if h == nil {
		return nil, fmt.Errorf("energy: harvester must not be nil")
	}
	spec = spec.withDefaults()
	if ts, err := storage.SpecFor(spec.Storage); err == nil && spec.Storage != storage.Electrolytic {
		if spec.Cap < ts.Min || spec.Cap > ts.Max {
			return nil, fmt.Errorf("energy: %v capacitor %v outside its range [%v, %v]",
				spec.Storage, spec.Cap, ts.Min, ts.Max)
		}
	}
	cap, err := storage.New(spec.Cap, spec.Kcap, spec.Rated)
	if err != nil {
		return nil, err
	}
	ctrl, err := pmic.NewController(spec.PMIC)
	if err != nil {
		return nil, err
	}
	if spec.PMIC.UOn > spec.Rated {
		return nil, fmt.Errorf("energy: U_on (%v) exceeds capacitor rated voltage (%v)",
			spec.PMIC.UOn, spec.Rated)
	}
	return &Subsystem{Harvester: h, Cap: cap, Ctrl: ctrl, spec: spec}, nil
}

// NewSolar is the common case: a solar panel in a given environment.
func NewSolar(spec Spec, env solar.Environment) (*Subsystem, error) {
	panel, err := solar.NewPanel(spec.PanelArea)
	if err != nil {
		return nil, err
	}
	return New(spec, SolarHarvester{Panel: panel, Env: env})
}

// Spec returns the (default-filled) spec the subsystem was built from.
func (s *Subsystem) Spec() Spec { return s.spec }

// StepReport describes what happened during one simulation step.
type StepReport struct {
	storage.StepResult
	// Harvested is the raw transducer output energy this step (before
	// PMIC conversion losses).
	Harvested units.Energy
	// ConversionLoss is harvested energy lost in the PMIC boost stage
	// plus quiescent draw.
	ConversionLoss units.Energy
	// State is the power-gate state at the end of the step.
	State pmic.State
	// Transition reports whether the gate flipped during this step.
	Transition bool
	// Voltage is the capacitor voltage at the end of the step.
	Voltage units.Voltage
}

// Step advances the subsystem by dt at time t with the given load demand
// (the load is only actually drawn when the gate is On; callers pass the
// demand unconditionally and read Delivered).
func (s *Subsystem) Step(t units.Seconds, load units.Power, dt units.Seconds) StepReport {
	raw := s.Harvester.Power(t)
	toCap := s.Ctrl.HarvestToCap(raw)

	effLoad := units.Power(0)
	if s.Ctrl.State() == pmic.On {
		effLoad = s.Ctrl.LoadOnCap(load)
	}
	res := s.Cap.Step(toCap, effLoad, dt)

	state, tr := s.Ctrl.Update(s.Cap.Voltage())
	harv := units.MulPT(raw, dt)
	return StepReport{
		StepResult:     res,
		Harvested:      harv,
		ConversionLoss: harv - units.MulPT(toCap, dt),
		State:          state,
		Transition:     tr,
		Voltage:        s.Cap.Voltage(),
	}
}

// Reset discharges the capacitor and returns the PMIC to Off.
func (s *Subsystem) Reset() {
	s.Cap.SetVoltage(0)
	s.Ctrl.Reset()
}

// AvailablePerCycle returns the paper's Eq. 3: the energy available to
// the load in one energy cycle whose powered phase lasts execTime, given
// harvesting at the subsystem's time-0 rate. Conversion efficiency is
// applied to both the harvest and the stored-energy discharge so the
// closed form matches what the step simulator delivers to the load.
func (s *Subsystem) AvailablePerCycle(execTime units.Seconds) units.Energy {
	raw := s.Harvester.Power(0)
	pEh := s.Ctrl.HarvestToCap(raw)
	gross := storage.CycleEnergy(s.spec.Cap, s.spec.Kcap, s.spec.PMIC.UOn, s.spec.PMIC.UOff, pEh, execTime)
	if gross <= 0 {
		return 0
	}
	return units.Energy(float64(gross) * s.spec.PMIC.LoadEff)
}

// ChargeLatency returns the time to charge from U_off to U_on at the
// subsystem's time-0 harvest rate (the dominant component of E2E
// latency per the paper's Eq. 7 discussion).
func (s *Subsystem) ChargeLatency() units.Seconds {
	raw := s.Harvester.Power(0)
	pEh := s.Ctrl.HarvestToCap(raw)
	return storage.ChargeTime(s.spec.Cap, s.spec.Kcap, s.spec.PMIC.UOn, s.spec.PMIC.UOff, pEh)
}

// HarvestPower returns the net power reaching the capacitor at time t.
func (s *Subsystem) HarvestPower(t units.Seconds) units.Power {
	return s.Ctrl.HarvestToCap(s.Harvester.Power(t))
}

// SteadyHarvest returns the harvester's constant raw output power when
// it is provably time-invariant (see SteadyHarvester), or (0, false).
func (s *Subsystem) SteadyHarvest() (units.Power, bool) {
	if sh, ok := s.Harvester.(SteadyHarvester); ok {
		return sh.SteadyPower()
	}
	return 0, false
}

// CycleBudget returns the energy deliverable to the load during one
// powered phase (U_on → U_off) when the load draws loadPower
// continuously, plus the duration of that phase. While powered, the
// capacitor supplies the converted load and its own leakage and
// receives harvest; when the harvest covers everything the system
// stays on indefinitely and both results are +Inf.
//
// This is the operational form of the paper's Eq. 8 right-hand side:
// the budget a single InterTempMap tile (plus its checkpoint) must fit.
func (s *Subsystem) CycleBudget(load units.Power) (units.Energy, units.Seconds) {
	spec := s.spec
	harvest := s.HarvestPower(0)
	drawCap := s.Ctrl.LoadOnCap(load)
	vAvg := (float64(spec.PMIC.UOn) + float64(spec.PMIC.UOff)) / 2
	leak := units.Power(spec.Kcap * float64(spec.Cap) * vAvg * vAvg)
	net := float64(drawCap) + float64(leak) - float64(harvest)
	if net <= 0 {
		inf := math.Inf(1)
		return units.Energy(inf), units.Seconds(inf)
	}
	usable := units.CapacitorEnergy(spec.Cap, spec.PMIC.UOn, spec.PMIC.UOff)
	d := float64(usable) / net
	return units.MulPT(load, units.Seconds(d)), units.Seconds(d)
}
