package sim

import (
	"fmt"

	"chrysalis/internal/units"
)

// SeriesResult summarizes a sequence of inferences executed
// back-to-back on one AuT under a (possibly time-varying) environment —
// the paper's deployment view, where light is stable within one
// inference but "may change greatly in one day" (Sec. III-D).
type SeriesResult struct {
	// PerInference holds each inference's result in order. Inferences
	// after the first that never completes are not attempted.
	PerInference []Result
	// Completed counts the inferences that finished.
	Completed int
	// TotalTime is the wall-clock span of the series, idle gaps
	// included.
	TotalTime units.Seconds
	// ThroughputPerHour is completed inferences extrapolated per hour
	// of wall-clock time.
	ThroughputPerHour float64
	// Energy aggregates the per-inference breakdowns.
	Energy Breakdown
}

// RunSeries executes n inferences in sequence with an idle gap between
// them (sensing/sleep time), carrying the capacitor state and the
// clock across inferences so diurnal or cloudy environments influence
// each one differently. The subsystem keeps harvesting during idle.
func RunSeries(cfg Config, n int, idle units.Seconds) (SeriesResult, error) {
	if err := cfg.Validate(); err != nil {
		return SeriesResult{}, err
	}
	if n < 1 {
		return SeriesResult{}, fmt.Errorf("sim: series needs at least 1 inference, got %d", n)
	}
	if idle < 0 {
		return SeriesResult{}, fmt.Errorf("sim: negative idle gap %v", idle)
	}

	es := cfg.Energy
	es.Reset()
	if cfg.StartCharged {
		es.Cap.SetVoltage(es.Spec().PMIC.UOn)
	} else {
		es.Cap.SetVoltage(es.Spec().PMIC.UOff)
	}

	dt := cfg.Step
	if dt == 0 {
		dt = DefaultStep
	}

	var (
		sr SeriesResult
		tm units.Seconds
	)
	for i := 0; i < n; i++ {
		// Unique jitter stream per inference.
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e37
		res, end := runOnce(c, tm)
		sr.PerInference = append(sr.PerInference, res)
		accumulate(&sr.Energy, res.Breakdown)
		if !res.Completed {
			// The environment cannot sustain this inference (night,
			// leakage); the series ends here.
			tm = end
			break
		}
		sr.Completed++
		tm = end

		// Idle gap: the device sleeps but keeps harvesting; idle is
		// advanced in coarse steps since nothing switches quickly. The
		// flight recorder keeps observing so waveforms and energy
		// ledgers stay continuous across the gap.
		if idle > 0 && i < n-1 {
			idleDt := idle / 100
			if idleDt < dt {
				idleDt = dt
			}
			if cfg.Record != nil {
				cfg.Record.begin(es, tm, cfg.Policy)
			}
			for done := units.Seconds(0); done < idle; done += idleDt {
				rep := es.Step(tm, 0, idleDt)
				tm += idleDt
				if cfg.Record != nil {
					cfg.Record.step(tm, idleDt, rep, Breakdown{})
				}
			}
		}
	}
	sr.TotalTime = tm
	if tm > 0 && sr.Completed > 0 {
		sr.ThroughputPerHour = float64(sr.Completed) / float64(tm) * 3600
	}
	if sr.Completed == 0 {
		sr.ThroughputPerHour = 0
	}
	return sr, nil
}

func accumulate(dst *Breakdown, b Breakdown) {
	dst.Infer += b.Infer
	dst.NVMIO += b.NVMIO
	dst.Static += b.Static
	dst.Ckpt += b.Ckpt
	dst.Wasted += b.Wasted
	dst.Harvested += b.Harvested
	dst.ConversionLoss += b.ConversionLoss
	dst.CapLeakage += b.CapLeakage
	dst.SpilledHarvest += b.SpilledHarvest
}
