package sim

import (
	"fmt"

	"chrysalis/internal/obs"
)

// Trace track names used by the adapter. Each renders as its own named
// thread in Perfetto, so a run reads top-to-bottom as: when was the
// platform powered, which tile was executing, and where the checkpoint
// machinery fired.
const (
	TrackPower = "sim:power"
	TrackTiles = "sim:tiles"
	TrackCkpt  = "sim:checkpoint"
)

// TraceAdapter maps the step simulator's Event stream onto Chrome
// trace-event slices recorded in an obs.Trace, using the simulated
// clock as the trace timeline:
//
//   - each power-on → power-off pair becomes a "powered" slice on the
//     power track, so energy cycles render as a visual on/off timeline;
//   - each tile-start → tile-done pair becomes a slice on the tiles
//     track, labeled with its layer and tile index (tiles cut short by
//     a brownout close at the power-off with an interrupted flag);
//   - checkpoints, resumes and retries are instant events on the
//     checkpoint track, annotated with the capacitor voltage.
//
// Feed Trace to Config.Trace (it satisfies the Tracer contract as a
// method value) and call Close after the run to terminate slices left
// open by incomplete runs. A nil adapter or nil underlying trace is a
// no-op, so tracing stays default-off.
type TraceAdapter struct {
	tr *obs.Trace

	cycle     int
	powerOn   float64 // seconds; valid when powered
	powered   bool
	tileOpen  bool
	tileStart float64
	tileIdx   int
	tileLayer int
	last      float64 // latest event time seen, for Close
}

// TraceTo returns an adapter recording onto tr (which may be nil).
func TraceTo(tr *obs.Trace) *TraceAdapter { return &TraceAdapter{tr: tr} }

// Trace consumes one simulator event. It satisfies the Tracer func
// contract via method value: cfg.Trace = adapter.Trace.
func (a *TraceAdapter) Trace(e Event) {
	if a == nil || a.tr == nil {
		return
	}
	ts := float64(e.Time)
	a.last = ts
	volt := float64(e.Voltage)
	switch e.Kind {
	case EvPowerOn:
		a.cycle++
		a.powerOn, a.powered = ts, true
	case EvPowerOff:
		if a.tileOpen {
			a.closeTile(ts, true)
		}
		if a.powered {
			a.tr.SliceAt(TrackPower, "powered", a.powerOn, ts,
				obs.A("cycle", a.cycle), obs.A("off_voltage_v", volt))
			a.powered = false
		}
	case EvTileStart:
		if a.tileOpen { // defensive: simulator never nests tiles
			a.closeTile(ts, false)
		}
		a.tileOpen = true
		a.tileStart, a.tileIdx, a.tileLayer = ts, e.Tile, e.Layer
	case EvTileDone:
		if a.tileOpen {
			a.closeTile(ts, false)
		}
	case EvCheckpoint:
		a.tr.InstantAt(TrackCkpt, "checkpoint", ts,
			obs.A("tile", e.Tile), obs.A("voltage_v", volt))
	case EvResume:
		a.tr.InstantAt(TrackCkpt, "resume", ts,
			obs.A("tile", e.Tile), obs.A("voltage_v", volt))
	case EvRetry:
		a.tr.InstantAt(TrackCkpt, "retry", ts,
			obs.A("tile", e.Tile), obs.A("voltage_v", volt))
	case EvDone:
		a.tr.InstantAt(TrackTiles, "inference-done", ts, obs.A("voltage_v", volt))
		a.closeAll(ts)
	}
}

// closeTile records the open tile slice ending at ts.
func (a *TraceAdapter) closeTile(ts float64, interrupted bool) {
	attrs := []obs.Attr{obs.A("tile", a.tileIdx), obs.A("layer", a.tileLayer)}
	if interrupted {
		attrs = append(attrs, obs.A("interrupted", true))
	}
	a.tr.SliceAt(TrackTiles, fmt.Sprintf("L%d tile %d", a.tileLayer, a.tileIdx),
		a.tileStart, ts, attrs...)
	a.tileOpen = false
}

// closeAll terminates every open slice at ts.
func (a *TraceAdapter) closeAll(ts float64) {
	if a.tileOpen {
		a.closeTile(ts, false)
	}
	if a.powered {
		a.tr.SliceAt(TrackPower, "powered", a.powerOn, ts, obs.A("cycle", a.cycle))
		a.powered = false
	}
}

// Close terminates slices left open by runs that ended without an
// EvDone (aborted or infeasible simulations). Safe to call after
// complete runs too; it is then a no-op.
func (a *TraceAdapter) Close() {
	if a == nil || a.tr == nil {
		return
	}
	a.closeAll(a.last)
}
