package sim

import (
	"testing"

	"chrysalis/internal/solar"
)

func TestTracerEventOrdering(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	var rec EventRecorder
	cfg.Trace = rec.Trace
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("setup should complete")
	}
	if len(rec.Events) == 0 {
		t.Fatal("no events recorded")
	}
	// Counts must match the result counters.
	if got := rec.Count(EvPowerOn); got != res.PowerCycles {
		t.Errorf("power-on events %d != cycles %d", got, res.PowerCycles)
	}
	if got := rec.Count(EvCheckpoint); got != res.Checkpoints {
		t.Errorf("checkpoint events %d != checkpoints %d", got, res.Checkpoints)
	}
	if got := rec.Count(EvResume); got != res.Resumes {
		t.Errorf("resume events %d != resumes %d", got, res.Resumes)
	}
	if got := rec.Count(EvRetry); got != res.TileRetries {
		t.Errorf("retry events %d != retries %d", got, res.TileRetries)
	}
	if got := rec.Count(EvTileDone); got != res.TilesDone {
		t.Errorf("tile-done events %d != tiles done %d", got, res.TilesDone)
	}
	if got := rec.Count(EvDone); got != 1 {
		t.Errorf("done events = %d, want 1", got)
	}

	// Time must be non-decreasing; the last event must be EvDone.
	for i := 1; i < len(rec.Events); i++ {
		if rec.Events[i].Time < rec.Events[i-1].Time {
			t.Fatalf("event %d out of order: %v after %v", i, rec.Events[i].Time, rec.Events[i-1].Time)
		}
	}
	if rec.Events[len(rec.Events)-1].Kind != EvDone {
		t.Fatalf("last event = %v, want done", rec.Events[len(rec.Events)-1].Kind)
	}

	// Every tile-done must be preceded by a tile-start of the same tile.
	started := map[int]bool{}
	for _, e := range rec.Events {
		switch e.Kind {
		case EvTileStart:
			started[e.Tile] = true
		case EvTileDone:
			if !started[e.Tile] {
				t.Fatalf("tile %d done without start", e.Tile)
			}
		}
	}
}

func TestTracerProtocolInvariants(t *testing.T) {
	// Under a dark scenario with many brownouts: power-off must alternate
	// with power-on, and every resume happens right after a power-on.
	cfg := harSetup(t, 8, 100e-6, solar.Dark())
	var rec EventRecorder
	cfg.Trace = rec.Trace
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerCycles < 2 {
		t.Skip("scenario did not produce multiple cycles")
	}
	on := false
	for i, e := range rec.Events {
		switch e.Kind {
		case EvPowerOn:
			if on {
				t.Fatalf("event %d: double power-on", i)
			}
			on = true
		case EvPowerOff:
			if !on {
				t.Fatalf("event %d: power-off while off", i)
			}
			on = false
		case EvResume:
			if i == 0 || rec.Events[i-1].Kind != EvPowerOn {
				t.Fatalf("event %d: resume not immediately after power-on", i)
			}
		}
	}
}

func TestRecorderCap(t *testing.T) {
	rec := EventRecorder{Max: 3}
	for i := 0; i < 10; i++ {
		rec.Trace(Event{Kind: EvPowerOn})
	}
	if len(rec.Events) != 3 || rec.Dropped != 7 {
		t.Fatalf("events=%d dropped=%d", len(rec.Events), rec.Dropped)
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvPowerOn, EvPowerOff, EvTileStart, EvTileDone, EvCheckpoint, EvResume, EvRetry, EvDone}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate string %q", s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "event(99)" {
		t.Fatal("unknown kind string")
	}
}

func TestTracerNilIsFree(t *testing.T) {
	// Running without a tracer must behave identically (no panic, same
	// result) — guards the emit fast path.
	a := harSetup(t, 8, 100e-6, solar.Bright())
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := harSetup(t, 8, 100e-6, solar.Bright())
	var rec EventRecorder
	b.Trace = rec.Trace
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.E2ELatency != rb.E2ELatency || ra.TilesDone != rb.TilesDone {
		t.Fatal("tracing must not perturb the simulation")
	}
}

func TestVoltageTraceSampling(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	cfg.SampleEvery = 10e-3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VoltageTrace) < 5 {
		t.Fatalf("only %d samples", len(res.VoltageTrace))
	}
	spec := cfg.Energy.Spec()
	for i, sm := range res.VoltageTrace {
		if sm.Voltage < 0 || sm.Voltage > spec.Rated {
			t.Fatalf("sample %d voltage %v out of range", i, sm.Voltage)
		}
		if i > 0 && sm.Time <= res.VoltageTrace[i-1].Time {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	// Disabled by default.
	cfg2 := harSetup(t, 8, 100e-6, solar.Bright())
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.VoltageTrace) != 0 {
		t.Fatal("sampling should be off by default")
	}
}
