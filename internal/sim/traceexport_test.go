package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chrysalis/internal/obs"
	"chrysalis/internal/solar"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// chromeEvent mirrors the Chrome trace-event wire fields the validator
// inspects.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func runTraced(t *testing.T, env solar.Environment) (Result, *obs.Trace, []byte) {
	t.Helper()
	cfg := harSetup(t, 8, 100e-6, env)
	tr := obs.NewTrace(8192)
	ad := TraceTo(tr)
	cfg.Trace = ad.Trace
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad.Close()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, tr, buf.Bytes()
}

// TestSimTraceExportGolden runs a small deterministic simulation,
// validates the exported Chrome trace-event JSON structurally
// (monotonic ts, complete X events with non-negative durations, tracks
// named) and byte-compares it against the committed golden file.
// Regenerate with: go test ./internal/sim/ -run Golden -update
func TestSimTraceExportGolden(t *testing.T) {
	res, _, raw := runTraced(t, solar.Bright())
	if !res.Completed {
		t.Fatal("setup should complete")
	}

	var out struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	tracks := map[int]string{}
	lastTS := -1.0
	var powered, tiles, instants int
	for i, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			if ev.Name == "thread_name" {
				tracks[ev.TID] = ev.Args["name"].(string)
			}
			continue
		}
		if ev.TS < 0 {
			t.Fatalf("event %d (%s) has negative ts %g", i, ev.Name, ev.TS)
		}
		if ev.TS < lastTS {
			t.Fatalf("event %d (%s) out of order: ts %g after %g", i, ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		switch ev.Ph {
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("X event %d (%s) has missing or negative dur", i, ev.Name)
			}
			switch tracks[ev.TID] {
			case TrackPower:
				powered++
			case TrackTiles:
				tiles++
			}
		case "i":
			instants++
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}

	// The trace must mirror the simulation's own accounting: one powered
	// slice per power cycle, one tile slice per completed tile (plus one
	// per interrupted attempt), instants for checkpoints/resumes/retries
	// plus the terminal inference-done marker.
	if powered != res.PowerCycles {
		t.Errorf("powered slices = %d, want %d (one per power cycle)", powered, res.PowerCycles)
	}
	if want := res.TilesDone + res.TileRetries; tiles != want {
		t.Errorf("tile slices = %d, want %d (done + interrupted)", tiles, want)
	}
	if want := res.Checkpoints + res.Resumes + res.TileRetries + 1; instants != want {
		t.Errorf("instants = %d, want %d", instants, want)
	}

	golden := filepath.Join("testdata", "har_bright_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Errorf("trace export differs from golden file %s (rerun with -update if the change is intended)", golden)
	}
}

// TestSimTraceDeterministic guards the golden file's premise: the same
// simulation exports byte-identical JSON every time.
func TestSimTraceDeterministic(t *testing.T) {
	_, _, a := runTraced(t, solar.Bright())
	_, _, b := runTraced(t, solar.Bright())
	if !bytes.Equal(a, b) {
		t.Fatal("trace export is not deterministic")
	}
}

// TestSimTraceInterruptedRun exercises the adapter across brownouts:
// every powered slice still closes, interrupted tiles are flagged, and
// Close terminates any slice left open.
func TestSimTraceInterruptedRun(t *testing.T) {
	res, tr, raw := runTraced(t, solar.Dark())
	if res.PowerCycles < 2 {
		t.Skip("scenario did not produce multiple power cycles")
	}
	var out struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	var powered int
	for _, ev := range out.TraceEvents {
		if ev.Ph == "X" && ev.Name == "powered" {
			powered++
		}
	}
	if tr.Dropped() == 0 && powered != res.PowerCycles {
		t.Errorf("powered slices = %d, want %d", powered, res.PowerCycles)
	}
}
