// Package sim implements the CHRYSALIS Evaluator (Sec. III-C/D): a
// step-based co-simulation of the energy subsystem and the inference
// subsystem. Unlike statistical simulators that "simply sum up the
// energy or time of individual components", the step simulator advances
// both subsystems together in discrete time steps, so energy
// fluctuations affect inference in real time: tiles restart when power
// browns out mid-tile, checkpoints are saved at tile boundaries, and
// resume costs are paid after every interruption.
//
// The package also provides the analytic fast path (Eq. 5 + Eq. 7) that
// the Explorer uses for search, and cross-checks between the two are
// part of the test suite.
package sim

import (
	"fmt"
	"math"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/pmic"
	"chrysalis/internal/units"
)

// DefaultStep is the default simulation step. The paper divides the
// process into steps "each lasting several seconds (adjustable based on
// requirements)"; we default much finer so that single energy cycles
// are resolved.
const DefaultStep units.Seconds = 1e-3

// DefaultMaxTime bounds a simulation that cannot complete (e.g. leakage
// exceeds harvest — Figure 2(b)'s unavailability region).
const DefaultMaxTime units.Seconds = 20_000

// Config describes one simulation run: an energy subsystem, the
// inference hardware constants, and the per-layer intermittent plans
// produced by the mapper.
type Config struct {
	Energy *energy.Subsystem
	HW     dataflow.HW
	Plans  []intermittent.Plan

	// Step is the simulation step (0 selects DefaultStep).
	Step units.Seconds
	// MaxTime aborts runs that make no progress (0 selects
	// DefaultMaxTime).
	MaxTime units.Seconds
	// StartCharged starts the capacitor at U_on instead of U_off,
	// skipping the initial cold-start charge.
	StartCharged bool
	// Jitter adds deterministic pseudo-random variation (±fraction) to
	// per-tile energy draw, emulating measurement noise on a physical
	// platform (used by the Figure 7 hardware-in-the-loop stand-in).
	Jitter float64
	// Seed drives the jitter stream.
	Seed uint64
	// Trace, when non-nil, receives the run's events (power cycles,
	// tile starts/completions, checkpoints, resumes, retries) in time
	// order.
	Trace Tracer
	// Record, when non-nil, captures the full energy-state vector each
	// step (voltage, stored energy, power flows, cumulative energy
	// categories, cycle index) into bounded min/max-preserving bins
	// plus per-power-cycle ledgers. One recorder may span a whole
	// RunSeries; see Recorder.
	Record *Recorder
	// SampleEvery records the capacitor voltage at this interval into
	// Result.VoltageTrace. Long runs are downsampled into
	// min/max-preserving bins instead of being truncated, so the trace
	// stays bounded while covering the whole run.
	//
	// Deprecated: attach a Recorder via Record for the full waveform;
	// VoltageTrace is derived from the same machinery.
	SampleEvery units.Seconds
	// Policy selects the checkpoint strategy (default PolicyEveryTile).
	Policy Policy
	// AdaptiveHeadroom tunes PolicyAdaptive: a checkpoint is skipped
	// while the capacitor's usable energy exceeds this multiple of the
	// next tile's energy (0 selects 2.0).
	AdaptiveHeadroom float64
}

// Policy is the checkpointing strategy of the inference controller —
// the design axis separating HAWAII-style footprints from SONIC-style
// restart-everything and adaptive JAPARI-style schemes (Table I's
// platform rows).
type Policy int

const (
	// PolicyEveryTile persists a checkpoint after every InterTempMap
	// tile — the paper's Eq. 5 accounting and the default.
	PolicyEveryTile Policy = iota
	// PolicyAdaptive skips the save while the capacitor holds ample
	// headroom; a brownout then loses every tile since the last save.
	PolicyAdaptive
	// PolicyNone never checkpoints: any interruption restarts the whole
	// inference (the classic argument for intermittent-aware design).
	PolicyNone
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyEveryTile:
		return "every-tile"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyNone:
		return "none"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Breakdown itemizes where energy went during a run, load-side and
// energy-side. The load-side categories mirror Eq. 4–5; the energy-side
// ones support the Figure 8/9 and Figure 11 analyses.
type Breakdown struct {
	// Load side.
	Infer  units.Energy // compute + VM traffic (E_infer of Eq. 4)
	NVMIO  units.Energy // tile reads/writes from/to NVM (E_read+E_write)
	Static units.Energy // T·N_mem·p_mem + idle (E_static)
	Ckpt   units.Energy // checkpoint saves + resumes
	Wasted units.Energy // energy spent on tiles that were interrupted

	// Energy side.
	Harvested      units.Energy // raw transducer output
	ConversionLoss units.Energy // PMIC boost loss + quiescent
	CapLeakage     units.Energy // k_cap·C·U² integral
	SpilledHarvest units.Energy // rejected when the capacitor was full
}

// Delivered is the total energy the load consumed.
func (b Breakdown) Delivered() units.Energy {
	return b.Infer + b.NVMIO + b.Static + b.Ckpt + b.Wasted
}

// VoltageSample is one point of the capacitor-voltage waveform.
type VoltageSample struct {
	Time    units.Seconds
	Voltage units.Voltage
}

// Result summarizes one simulated inference.
type Result struct {
	Completed bool
	// E2ELatency is the wall-clock time from power-on (cold start) to
	// inference completion, charging included (Eq. 7's quantity).
	E2ELatency units.Seconds
	// ActiveTime is the powered execution time.
	ActiveTime units.Seconds
	Breakdown  Breakdown

	PowerCycles int // number of Off→On transitions
	Checkpoints int // checkpoint saves performed
	Resumes     int // checkpoint restores performed
	TileRetries int // tiles re-executed after mid-tile brownout
	TilesDone   int

	// SystemEfficiency is the paper's E_infer/E_eh metric (Fig. 8, 11):
	// useful inference energy over harvested energy.
	SystemEfficiency float64

	// VoltageTrace holds the sampled capacitor waveform when
	// Config.SampleEvery is set: one point per downsampling bin,
	// carrying the bin's last observed voltage.
	//
	// Deprecated: use Config.Record and Recorder.Waveform for the full
	// multi-channel waveform.
	VoltageTrace []VoltageSample
}

// tile is the flattened unit of execution.
type tile struct {
	energy units.Energy // dynamic energy the tile consumes (EDf share)
	time   units.Seconds
	ckptB  units.Bytes
	ioFrac float64 // NVM share of the dynamic energy (per-layer constant)
	layer  int
}

// flatten expands layer plans into the tile schedule. The slice is
// sized up front and the NVM fraction is resolved once per layer — both
// are per-step costs otherwise.
func flatten(buf []tile, plans []intermittent.Plan) []tile {
	n := 0
	for i := range plans {
		n += plans[i].Cost.NTileEffective
	}
	ts := buf[:0]
	if n > cap(ts) {
		ts = make([]tile, 0, n)
	}
	for li := range plans {
		p := &plans[li]
		f := nvmFraction(p)
		for i := 0; i < p.Cost.NTileEffective; i++ {
			ts = append(ts, tile{
				energy: p.Cost.TileEnergy,
				time:   p.Cost.TileTime,
				ckptB:  p.CkptBytes,
				ioFrac: f,
				layer:  li,
			})
		}
	}
	return ts
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Energy == nil {
		return fmt.Errorf("sim: energy subsystem must not be nil")
	}
	if err := c.HW.Validate(); err != nil {
		return err
	}
	if len(c.Plans) == 0 {
		return fmt.Errorf("sim: no layer plans")
	}
	if c.Step < 0 || c.MaxTime < 0 {
		return fmt.Errorf("sim: negative step or max time")
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("sim: jitter %g must be in [0,1)", c.Jitter)
	}
	switch c.Policy {
	case PolicyEveryTile, PolicyAdaptive, PolicyNone:
	default:
		return fmt.Errorf("sim: unknown checkpoint policy %d", int(c.Policy))
	}
	if c.AdaptiveHeadroom < 0 {
		return fmt.Errorf("sim: negative adaptive headroom %g", c.AdaptiveHeadroom)
	}
	return nil
}

// Run executes the step-based simulation of one inference.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	es := cfg.Energy
	es.Reset()
	if cfg.StartCharged {
		es.Cap.SetVoltage(es.Spec().PMIC.UOn)
	} else {
		es.Cap.SetVoltage(es.Spec().PMIC.UOff)
	}
	res, _ := runOnce(cfg, 0)
	return res, nil
}

// stepper holds the complete mutable state of one co-simulated
// inference, with the loop body factored into step() so it advances
// exactly one dt at a time. runOnce drives it step-by-step; the event
// simulator (eventsim.go) interleaves the same literal steps with
// analytic multi-step jumps that mutate the identical state.
type stepper struct {
	cfg     Config
	es      *energy.Subsystem
	dt      units.Seconds
	start   units.Seconds
	maxT    units.Seconds
	rec     *Recorder
	tiles   []tile
	staticP units.Power

	// tileBuf backs tiles for small workloads so flatten stays inside
	// the stepper's own allocation.
	tileBuf [16]tile

	res Result
	tm  units.Seconds

	idx         int     // current tile
	progress    float64 // energy fraction of current tile completed
	stepsInTile int     // progress increments since the last reset
	inTile      bool    // tile partially executed (volatile state live)
	needsResu   bool    // must pay resume cost before next tile
	wasOn       bool
	rngState    uint64
	curNeed     units.Energy

	// tileSpent tracks the Infer/NVMIO energy already credited to the
	// in-flight tile so a brownout can reclassify it as Wasted.
	tileSpentInfer, tileSpentIO units.Energy

	// Checkpoint policy state: committed is the tile index execution
	// rolls back to on brownout; uncommitted* track the Infer/NVMIO
	// energy of completed-but-unsaved tiles (lost on rollback).
	headroom                        float64
	committed                       int
	uncommittedInfer, uncommittedIO units.Energy
}

// newStepper prepares the state for one inference starting at time
// start without resetting the subsystem. The caller is responsible for
// validation and initial conditions.
func newStepper(cfg Config, start units.Seconds) *stepper {
	s := &stepper{
		cfg:      cfg,
		es:       cfg.Energy,
		dt:       cfg.Step,
		start:    start,
		tm:       start,
		rngState: cfg.Seed ^ 0x9e3779b97f4a7c15,
		headroom: cfg.AdaptiveHeadroom,
	}
	if s.dt == 0 {
		s.dt = DefaultStep
	}
	s.maxT = start + cfg.MaxTime
	if cfg.MaxTime == 0 {
		s.maxT = start + DefaultMaxTime
	}
	if s.headroom == 0 {
		s.headroom = 2.0
	}

	// The flight recorder: either the caller's (possibly spanning a
	// whole series) or, for the deprecated SampleEvery voltage trace, a
	// local one scoped to this inference.
	s.rec = cfg.Record
	if s.rec == nil && cfg.SampleEvery > 0 {
		s.rec = NewRecorder(legacyVoltagePoints)
		s.rec.BinSeconds = cfg.SampleEvery
	}
	if s.rec != nil {
		s.rec.begin(s.es, start, cfg.Policy)
	}

	s.tiles = flatten(s.tileBuf[:], cfg.Plans)
	s.staticP = units.Power(float64(cfg.HW.PMemPerByte)*float64(cfg.HW.VMBytes) + float64(cfg.HW.PIdle))
	s.curNeed = s.tileEnergy(s.idx)
	return s
}

func (s *stepper) jitterMult() float64 {
	if s.cfg.Jitter == 0 {
		return 1
	}
	s.rngState = s.rngState*6364136223846793005 + 1442695040888963407
	u := float64(s.rngState>>11) / float64(1<<53)
	return 1 + s.cfg.Jitter*(2*u-1)
}

func (s *stepper) tileEnergy(i int) units.Energy {
	return units.Energy(float64(s.tiles[i].energy) * s.jitterMult())
}

func (s *stepper) emit(kind EventKind, tileIdx int) {
	if s.cfg.Trace == nil && s.rec == nil {
		return
	}
	layer := -1
	if tileIdx >= 0 && tileIdx < len(s.tiles) {
		layer = s.tiles[tileIdx].layer
	}
	e := Event{Kind: kind, Time: s.tm, Tile: tileIdx, Layer: layer, Voltage: s.es.Cap.Voltage()}
	if s.rec != nil {
		s.rec.event(e)
	}
	if s.cfg.Trace != nil {
		s.cfg.Trace(e)
	}
}

// step advances the co-simulation by exactly one dt: energy subsystem,
// tile progress, checkpoint policy and gate transitions.
func (s *stepper) step() {
	dt := s.dt
	es := s.es
	res := &s.res

	// Load demand while powered: current activity's power draw.
	var load units.Power
	if s.wasOn {
		t := s.tiles[s.idx]
		dyn := units.DivET(s.curNeed, t.time)
		load = dyn + s.staticP
	}
	rep := es.Step(s.tm, load, dt)
	s.tm += dt

	res.Breakdown.Harvested += rep.Harvested
	res.Breakdown.ConversionLoss += rep.ConversionLoss
	res.Breakdown.CapLeakage += rep.Leaked
	res.Breakdown.SpilledHarvest += rep.Spilled

	// 1. Account energy delivered during this step (load was active).
	if s.wasOn {
		res.ActiveTime += dt
		if rep.Delivered > 0 {
			staticShare := units.MulPT(s.staticP, dt)
			if staticShare > rep.Delivered {
				staticShare = rep.Delivered
			}
			res.Breakdown.Static += staticShare
			if work := rep.Delivered - staticShare; work > 0 {
				if !s.inTile {
					s.emit(EvTileStart, s.idx)
				}
				s.inTile = true
				s.progress += float64(work) / float64(s.curNeed)
				s.stepsInTile++
				io := units.Energy(float64(work) * s.tiles[s.idx].ioFrac)
				inf := units.Energy(float64(work)) - io
				res.Breakdown.NVMIO += io
				res.Breakdown.Infer += inf
				s.tileSpentIO += io
				s.tileSpentInfer += inf
			}
		}
		if s.progress >= 1 {
			// Tile complete. Whether its volatile state is persisted
			// depends on the checkpoint policy.
			s.emit(EvTileDone, s.idx)
			t := s.tiles[s.idx]
			res.TilesDone++
			s.inTile = false
			s.progress = 0
			s.stepsInTile = 0

			save := false
			switch s.cfg.Policy {
			case PolicyEveryTile:
				save = true
			case PolicyAdaptive:
				// Save only when the remaining usable energy is low
				// relative to the next tile's demand.
				next := s.curNeed
				if s.idx+1 < len(s.tiles) {
					next = s.tiles[s.idx+1].energy
				}
				usable := es.Cap.UsableAbove(es.Spec().PMIC.UOff)
				save = float64(usable) < s.headroom*float64(next)
			case PolicyNone:
				save = false
			}
			if save {
				saveE := intermittent.SaveEnergy(s.cfg.HW, t.ckptB)
				res.Breakdown.Ckpt += saveE
				drained := drainExtra(es, saveE)
				if s.rec != nil {
					s.rec.drain(drained, saveE)
				}
				res.Checkpoints++
				s.emit(EvCheckpoint, s.idx)
				s.committed = s.idx + 1
				s.uncommittedInfer, s.uncommittedIO = 0, 0
			} else {
				s.uncommittedInfer += s.tileSpentInfer
				s.uncommittedIO += s.tileSpentIO
			}
			s.tileSpentInfer, s.tileSpentIO = 0, 0
			s.idx++
			if s.idx >= len(s.tiles) {
				res.Completed = true
				s.emit(EvDone, -1)
			} else {
				s.curNeed = s.tileEnergy(s.idx)
			}
		}
	}

	// 2. Handle gate transitions (skipped on the completion step —
	// the run ends before the gate can act again).
	if !res.Completed {
		on := rep.State == pmic.On
		if on && !s.wasOn {
			res.PowerCycles++
			s.emit(EvPowerOn, s.idx)
			if s.needsResu {
				// Pay the resume cost out of the fresh cycle.
				t := s.tiles[s.idx]
				resE := intermittent.ResumeEnergy(s.cfg.HW, t.ckptB)
				res.Breakdown.Ckpt += resE
				drained := drainExtra(es, resE)
				if s.rec != nil {
					s.rec.drain(drained, resE)
				}
				res.Resumes++
				s.emit(EvResume, s.idx)
				s.needsResu = false
			}
		}
		if !on && s.wasOn {
			// Brownout. Everything since the last durable point is
			// lost: the in-flight tile's partial energy plus any
			// completed-but-unsaved tiles under lazy policies.
			s.emit(EvPowerOff, s.idx)
			lost := s.tileSpentInfer + s.tileSpentIO
			if s.inTile && s.progress > 0 {
				res.TileRetries++
				s.emit(EvRetry, s.idx)
			}
			if s.idx > s.committed {
				// Roll back to the last checkpoint.
				res.TileRetries += s.idx - s.committed
				res.TilesDone -= s.idx - s.committed
				lost += s.uncommittedInfer + s.uncommittedIO
				s.idx = s.committed
			}
			if lost > 0 {
				res.Breakdown.Infer -= s.tileSpentInfer + s.uncommittedInfer
				res.Breakdown.NVMIO -= s.tileSpentIO + s.uncommittedIO
				res.Breakdown.Wasted += lost
			}
			s.progress = 0
			s.stepsInTile = 0
			s.curNeed = s.tileEnergy(s.idx)
			s.inTile = false
			s.tileSpentInfer, s.tileSpentIO = 0, 0
			s.uncommittedInfer, s.uncommittedIO = 0, 0
			// A restore is needed whenever execution was interrupted:
			// even with no checkpoint yet, the runtime re-initializes
			// its state from NVM on the next power-up.
			s.needsResu = true
		}
		s.wasOn = on
	}

	// Record the step's flows and end-of-step state (after drains,
	// so ledgers balance exactly).
	if s.rec != nil {
		s.rec.step(s.tm, dt, rep, res.Breakdown)
	}
}

// finish derives the run summary from the final state.
func (s *stepper) finish() (Result, units.Seconds) {
	res := s.res
	if s.cfg.SampleEvery > 0 && s.rec != nil {
		res.VoltageTrace = s.rec.voltageTraceSince(float64(s.start))
	}
	res.E2ELatency = s.tm - s.start
	if !res.Completed {
		res.E2ELatency = units.Seconds(math.Inf(1))
	}
	if res.Breakdown.Harvested > 0 {
		res.SystemEfficiency = float64(res.Breakdown.Infer+res.Breakdown.NVMIO) / float64(res.Breakdown.Harvested)
	}
	return res, s.tm
}

// runOnce simulates one inference starting at time start without
// resetting the subsystem state, returning the result and the end time.
// The caller is responsible for validation and initial conditions.
func runOnce(cfg Config, start units.Seconds) (Result, units.Seconds) {
	s := newStepper(cfg, start)
	for s.tm < s.maxT {
		s.step()
		if s.res.Completed {
			break
		}
	}
	return s.finish()
}

// drainExtra removes energy directly from the capacitor for discrete
// events (checkpoint save/resume) that happen inside one step. It
// returns the capacitor-side energy actually removed (the load-side
// cost divided by the PMIC load efficiency, clamped to what is stored).
func drainExtra(es *energy.Subsystem, e units.Energy) units.Energy {
	spec := es.Spec()
	capSide := units.Energy(float64(e) / spec.PMIC.LoadEff)
	stored := es.Cap.Stored()
	if capSide > stored {
		capSide = stored
	}
	es.Cap.SetVoltage(units.VoltageForEnergy(spec.Cap, stored-capSide))
	return capSide
}

// nvmFraction is the share of a plan's dynamic tile energy that is NVM
// traffic rather than compute, from the cost model's own decomposition.
func nvmFraction(p *intermittent.Plan) float64 {
	io := float64(p.Cost.TileNVMEnergy)
	total := float64(p.Cost.TileEnergy)
	if total <= 0 {
		return 0
	}
	f := io / total
	if f > 1 {
		return 1
	}
	return f
}

// Analytic computes the closed-form estimate the Explorer uses during
// search: total energy per Eq. 5 (summed over layer plans) and
// end-to-end latency per Eq. 7, E2ELat = E_all / P_eh, where P_eh is
// the net charging power (harvest minus leakage, after conversion).
// It reports Completed=false when the net charging power is
// non-positive — Figure 2(b)'s unavailability condition.
func Analytic(es *energy.Subsystem, plans []intermittent.Plan) Result {
	return AnalyticTotals(es, intermittent.Sum(plans))
}

// AnalyticTotals is the core of Analytic over pre-aggregated plan
// totals. Search loops that evaluate one plan set under several
// environments aggregate once and call this per environment.
func AnalyticTotals(es *energy.Subsystem, tot intermittent.Totals) Result {
	spec := es.Spec()

	pNet := float64(es.HarvestPower(0)) -
		spec.Kcap*float64(spec.Cap)*float64(spec.PMIC.UOn)*float64(spec.PMIC.UOn)
	var res Result
	res.ActiveTime = tot.Time
	res.Breakdown.Ckpt = tot.CkptEnergy
	res.Breakdown.Static = tot.StaticEnergy
	res.Breakdown.NVMIO = tot.NVMIO
	res.Breakdown.Infer = tot.Energy - tot.CkptEnergy - tot.StaticEnergy - tot.NVMIO
	res.TilesDone = tot.Tiles
	res.Checkpoints = tot.Tiles

	if pNet <= 0 {
		res.E2ELatency = units.Seconds(math.Inf(1))
		return res
	}
	// E2E latency decomposes as: the initial charge from U_off to U_on
	// (execution cannot start earlier), then the charging time for the
	// energy beyond what that first fill delivers — bounded below by the
	// powered execution time when harvest outruns consumption.
	capSide := float64(tot.Energy) / spec.PMIC.LoadEff
	initCharge := float64(es.ChargeLatency())
	if math.IsInf(initCharge, 1) {
		res.E2ELatency = units.Seconds(math.Inf(1))
		return res
	}
	usable := float64(units.CapacitorEnergy(spec.Cap, spec.PMIC.UOn, spec.PMIC.UOff))
	remaining := capSide - usable
	if remaining < 0 {
		remaining = 0
	}
	tail := remaining / pNet
	if tail < float64(tot.Time) {
		// Harvest outruns consumption: execution time dominates.
		tail = float64(tot.Time)
	}
	lat := initCharge + tail
	res.E2ELatency = units.Seconds(lat)
	res.Completed = true
	res.Breakdown.Harvested = units.MulPT(es.Harvester.Power(0), res.E2ELatency)
	if res.Breakdown.Harvested > 0 {
		// The paper's E_infer/E_eh metric counts all useful inference
		// energy — compute plus the NVM tile traffic — exactly as the
		// step simulator reports it.
		res.SystemEfficiency = float64(res.Breakdown.Infer+res.Breakdown.NVMIO) / float64(res.Breakdown.Harvested)
	}
	return res
}
