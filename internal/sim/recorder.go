package sim

// The flight recorder: a bounded-memory capture of the full energy-state
// vector of a simulation — the physics the paper is actually about.
// Where the span tracer (traceexport.go) answers "when did what happen",
// the recorder answers "where did every joule go": capacitor voltage,
// stored energy, harvest/load/leakage power and the cumulative load-side
// energy categories, sampled every step into min/max-preserving bins,
// plus an exact per-power-cycle energy ledger the audit pass
// (internal/audit) folds into conservation checks.
//
// Memory is bounded no matter how long the simulated horizon: when the
// bin count exceeds the configured point budget, adjacent bins merge
// pairwise and the bin width doubles, so a 24-hour series costs the same
// memory as a 2-second run while every bin still carries the true
// min/max of the raw samples it absorbed (peaks are never clipped away,
// unlike plain decimation — or the old hard 100k-sample cap, which
// silently dropped the tail of long runs).

import (
	"fmt"
	"io"
	"math"
	"sync"

	"chrysalis/internal/energy"
	"chrysalis/internal/pmic"
	"chrysalis/internal/units"
)

// DefaultWavePoints is the per-channel point budget when the caller
// passes no capacity to NewRecorder.
const DefaultWavePoints = 4096

// legacyVoltagePoints bounds the recorder backing the deprecated
// Config.SampleEvery / Result.VoltageTrace path.
const legacyVoltagePoints = 8192

// maxCycleLedgers bounds the per-cycle ledger table; beyond it adjacent
// ledgers merge pairwise (conservation-preserving), so pathological
// scenarios with millions of power cycles stay bounded too.
const maxCycleLedgers = 4096

// maxViolations bounds the recorder's event-ordering violation list.
const maxViolations = 64

// Waveform channel indices. Order is the export order.
const (
	ChVCap     = iota // capacitor voltage (V)
	ChEStored         // stored capacitor energy (J)
	ChPHarvest        // raw transducer output power (W)
	ChPLoad           // cap-side power delivered to the load (W)
	ChPLeak           // capacitor leakage power (W)
	ChEHarvest        // cumulative raw harvested energy (J)
	ChECompute        // cumulative inference compute energy (J)
	ChENVMIO          // cumulative NVM tile read/write energy (J)
	ChECkpt           // cumulative checkpoint save+resume energy (J)
	ChCycle           // power-cycle index (count)

	numChannels
)

// channelMeta names each channel for exports.
var channelMeta = [numChannels]struct{ Name, Unit string }{
	{"v_cap", "V"},
	{"e_stored", "J"},
	{"p_harvest", "W"},
	{"p_load", "W"},
	{"p_leak", "W"},
	{"e_harvest", "J"},
	{"e_compute", "J"},
	{"e_nvm_io", "J"},
	{"e_ckpt", "J"},
	{"cycle", "count"},
}

// chanAgg aggregates one channel over one bin.
type chanAgg struct {
	min, max, sum, last float64
}

func (a *chanAgg) add(v float64) {
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	a.sum += v
	a.last = v
}

func (a *chanAgg) merge(b chanAgg) {
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.sum += b.sum
	a.last = b.last
}

// wavebin is one downsampling bin: a time interval plus per-channel
// aggregates of every raw sample that fell into it.
type wavebin struct {
	t0, t1 float64
	count  int64
	ch     [numChannels]chanAgg
}

// WavePoint is one exported bin of one channel.
type WavePoint struct {
	T    float64 `json:"t_s"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	Last float64 `json:"last"`
}

// WaveChannel is one exported waveform channel.
type WaveChannel struct {
	Name   string      `json:"name"`
	Unit   string      `json:"unit"`
	Points []WavePoint `json:"points"`
}

// CycleLedger is the exact energy bookkeeping of one power-cycle
// segment: the interval from one power-on to the next (segment 0 covers
// the initial cold-start charge). All energies are capacitor-side
// joules except HarvestedJ/ConversionLossJ (transducer-side) and
// CkptLoadJ (load-side checkpoint+resume cost). Conservation holds per
// segment by construction:
//
//	ChargedJ = DeliveredJ + LeakedJ + DrainedJ + (EndStoredJ − StartStoredJ)
//	HarvestedJ = ChargedJ + ConversionLossJ + SpilledJ
type CycleLedger struct {
	Index int `json:"index"`
	// Merged counts how many raw segments this ledger aggregates (>1
	// after ledger-table compaction on pathological cycle counts).
	Merged int     `json:"merged,omitempty"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// OnSeconds is the powered time inside the segment.
	OnSeconds float64 `json:"on_s"`

	StartStoredJ float64 `json:"start_stored_j"`
	EndStoredJ   float64 `json:"end_stored_j"`

	HarvestedJ      float64 `json:"harvested_j"`
	ChargedJ        float64 `json:"charged_j"`
	ConversionLossJ float64 `json:"conversion_loss_j"`
	SpilledJ        float64 `json:"spilled_j"`
	DeliveredJ      float64 `json:"delivered_j"`
	LeakedJ         float64 `json:"leaked_j"`
	// DrainedJ is capacitor energy removed directly by discrete
	// checkpoint-save and resume events (drainExtra).
	DrainedJ float64 `json:"drained_j"`
	// CkptLoadJ is the load-side energy of those same events.
	CkptLoadJ float64 `json:"ckpt_load_j"`

	// VSqIntegral is ∫V²dt over the segment (V²·s), integrated at the
	// capacitor's pre-discharge voltage each step — the exact basis of
	// the leakage debit, so the audit's reconstruction k_cap·C·∫V²dt
	// matches the recorded LeakedJ up to float rounding.
	VSqIntegral float64 `json:"vsq_integral"`

	MinV float64 `json:"min_v"`
	MaxV float64 `json:"max_v"`
	// MinVOn is the minimum end-of-step voltage observed while the
	// power gate was on, excluding steps that contained a discrete
	// checkpoint/resume drain (those may legitimately dip below U_off
	// within the step). +Inf internally when the segment never powered;
	// snapshots report 0 then (OnSamples disambiguates).
	MinVOn float64 `json:"min_v_on"`
	// OnSamples counts the end-of-step samples MinVOn aggregates; 0
	// means MinVOn is meaningless (e.g. the segment's only powered step
	// contained a drain).
	OnSamples int `json:"on_samples"`

	Checkpoints int `json:"checkpoints"`
	Resumes     int `json:"resumes"`
	Retries     int `json:"retries"`
	TilesDone   int `json:"tiles_done"`
}

func (l *CycleLedger) mergeFrom(b CycleLedger) {
	l.Merged += b.Merged
	l.EndS = b.EndS
	l.OnSeconds += b.OnSeconds
	l.EndStoredJ = b.EndStoredJ
	l.HarvestedJ += b.HarvestedJ
	l.ChargedJ += b.ChargedJ
	l.ConversionLossJ += b.ConversionLossJ
	l.SpilledJ += b.SpilledJ
	l.DeliveredJ += b.DeliveredJ
	l.LeakedJ += b.LeakedJ
	l.DrainedJ += b.DrainedJ
	l.CkptLoadJ += b.CkptLoadJ
	l.VSqIntegral += b.VSqIntegral
	l.MinV = math.Min(l.MinV, b.MinV)
	l.MaxV = math.Max(l.MaxV, b.MaxV)
	l.MinVOn = math.Min(l.MinVOn, b.MinVOn)
	l.OnSamples += b.OnSamples
	l.Checkpoints += b.Checkpoints
	l.Resumes += b.Resumes
	l.Retries += b.Retries
	l.TilesDone += b.TilesDone
}

// Violation is one event-stream invariant the recorder saw broken.
type Violation struct {
	TimeS float64 `json:"t_s"`
	Msg   string  `json:"msg"`
}

// Waveform is a point-in-time snapshot of a recorder: the downsampled
// channels plus the per-cycle ledgers. It marshals to JSON directly and
// writes CSV via WriteCSV.
type Waveform struct {
	StartS     float64       `json:"start_s"`
	EndS       float64       `json:"end_s"`
	BinSeconds float64       `json:"bin_s"`
	RawSamples int64         `json:"raw_samples"`
	Channels   []WaveChannel `json:"channels"`
	Cycles     []CycleLedger `json:"cycles,omitempty"`

	// binCounts carries per-bin raw-sample counts for the CSV export
	// (kept out of the per-channel JSON to stay compact).
	binCounts []int64
}

// Channel returns the named channel, or nil.
func (w *Waveform) Channel(name string) *WaveChannel {
	for i := range w.Channels {
		if w.Channels[i].Name == name {
			return &w.Channels[i]
		}
	}
	return nil
}

// WriteCSV renders the waveform in wide CSV form: one row per bin with
// t_s, the raw-sample count, and min/max/mean/last columns per channel.
func (w *Waveform) WriteCSV(out io.Writer) error {
	if _, err := fmt.Fprint(out, "t_s,samples"); err != nil {
		return err
	}
	for _, ch := range w.Channels {
		fmt.Fprintf(out, ",%s_min,%s_max,%s_mean,%s_last", ch.Name, ch.Name, ch.Name, ch.Name)
	}
	fmt.Fprintln(out)
	if len(w.Channels) == 0 {
		return nil
	}
	n := len(w.Channels[0].Points)
	for i := 0; i < n; i++ {
		fmt.Fprintf(out, "%g,%d", w.Channels[0].Points[i].T, w.binCount(i))
		for _, ch := range w.Channels {
			p := ch.Points[i]
			if _, err := fmt.Fprintf(out, ",%g,%g,%g,%g", p.Min, p.Max, p.Mean, p.Last); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(out); err != nil {
			return err
		}
	}
	return nil
}

// binCount returns the raw-sample count of bin i.
func (w *Waveform) binCount(i int) int64 {
	if i < len(w.binCounts) {
		return w.binCounts[i]
	}
	return 0
}

// Recorder samples the simulator's full energy-state vector each step
// into bounded min/max-preserving bins and maintains exact per-cycle
// energy ledgers. Attach one via Config.Record; the same recorder may
// span a whole RunSeries (clock and capacitor state carry over). All
// methods are safe for concurrent use with a running simulation, and a
// nil *Recorder is inert.
type Recorder struct {
	// BinSeconds is the initial bin width (0 = one bin per raw sample
	// until the point budget forces merging). Set before the first run.
	BinSeconds units.Seconds

	mu        sync.Mutex
	maxPoints int
	binDur    float64
	bins      []wavebin
	binCounts []int64 // scratch for snapshots; rebuilt per Waveform call
	raw       int64

	es     *energy.Subsystem
	espec  energy.Spec
	policy Policy

	// Cumulative-channel bookkeeping across runOnce calls.
	base       Breakdown
	prevBD     Breakdown
	cumHarvest float64

	// Per-cycle ledgers.
	cycles       []CycleLedger
	open         CycleLedger
	opened       bool
	cycleIndex   int
	powered      bool
	freshRun     bool // a begin() happened since the last power-on event
	pendingCycle bool
	tilesSince   int // tile-done events since the last checkpoint
	pendDrain    float64
	pendCkpt     float64
	lastT        float64
	lastStored   float64
	haveLast     bool

	lastEventT float64
	violations []Violation
	dropped    int64 // violations beyond maxViolations
}

// NewRecorder returns a recorder with the given per-channel point
// budget (<= 0 selects DefaultWavePoints).
func NewRecorder(maxPoints int) *Recorder {
	if maxPoints <= 0 {
		maxPoints = DefaultWavePoints
	}
	return &Recorder{maxPoints: maxPoints}
}

// begin attaches the recorder to a subsystem at simulation time t. It
// is called at the start of every runOnce (and before idle phases) and
// is idempotent: repeated calls fold the previous inference's breakdown
// into the cumulative base and re-anchor the ledger to the current
// stored energy.
func (r *Recorder) begin(es *energy.Subsystem, t units.Seconds, policy Policy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.es == nil {
		r.es = es
		r.espec = es.Spec()
		if r.binDur == 0 {
			r.binDur = float64(r.BinSeconds)
		}
	}
	r.policy = policy
	r.freshRun = true
	// Fold the finished inference's breakdown into the running base so
	// cumulative channels stay continuous across a series.
	r.base.Infer += r.prevBD.Infer
	r.base.NVMIO += r.prevBD.NVMIO
	r.base.Ckpt += r.prevBD.Ckpt
	r.prevBD = Breakdown{}

	stored := float64(es.Cap.Stored())
	if !r.opened {
		r.openLedgerLocked(float64(t), stored)
	} else if r.haveLast && stored != r.lastStored {
		// State changed outside recorded steps (unreachable via the
		// public API, but keep the ledger sound): close and re-open at
		// the observed boundary.
		r.closeLedgerLocked()
		r.openLedgerLocked(float64(t), stored)
	}
	r.lastT = float64(t)
	r.lastStored = stored
	r.haveLast = true
}

func (r *Recorder) openLedgerLocked(t, stored float64) {
	r.open = CycleLedger{
		Index:        r.cycleIndex,
		Merged:       1,
		StartS:       t,
		EndS:         t,
		StartStoredJ: stored,
		EndStoredJ:   stored,
		MinV:         math.Inf(1),
		MaxV:         math.Inf(-1),
		MinVOn:       math.Inf(1),
	}
	r.opened = true
}

func (r *Recorder) closeLedgerLocked() {
	if !r.opened {
		return
	}
	// Skip empty pre-sample segments (no time advanced, no flows).
	// Infinities (MinVOn of a never-powered segment) are kept internal
	// so ledger merges stay correct; snapshots sanitize them.
	if r.open.EndS > r.open.StartS || r.open.HarvestedJ != 0 || r.open.TilesDone != 0 {
		r.cycles = append(r.cycles, r.open)
		if len(r.cycles) > maxCycleLedgers {
			r.compactCyclesLocked()
		}
	}
	r.opened = false
}

// compactCyclesLocked merges adjacent ledger pairs, halving the table.
// Each merge sums the flows and chains the stored-energy boundaries, so
// conservation checks survive compaction unchanged.
func (r *Recorder) compactCyclesLocked() {
	half := len(r.cycles) / 2
	for i := 0; i < half; i++ {
		l := r.cycles[2*i]
		l.mergeFrom(r.cycles[2*i+1])
		r.cycles[i] = l
	}
	if len(r.cycles)%2 == 1 {
		r.cycles[half] = r.cycles[len(r.cycles)-1]
		half++
	}
	r.cycles = r.cycles[:half]
}

// event consumes one simulator event, updating per-cycle counters and
// checking event-stream invariants. Called from the simulation loop.
func (r *Recorder) event(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := float64(e.Time)
	if ts < r.lastEventT {
		r.violateLocked(ts, fmt.Sprintf("event %v at %gs precedes prior event at %gs", e.Kind, ts, r.lastEventT))
	}
	r.lastEventT = ts
	switch e.Kind {
	case EvPowerOn:
		// Each runOnce re-detects an already-on gate as a fresh power-on
		// (Result.PowerCycles counts it too), so a powered power-on is
		// only a violation when no run boundary intervened.
		if r.powered && !r.freshRun {
			r.violateLocked(ts, "power-on while already powered")
		}
		r.freshRun = false
		r.powered = true
		r.cycleIndex++
		r.pendingCycle = true
		r.tilesSince = 0
	case EvPowerOff:
		if !r.powered {
			r.violateLocked(ts, "power-off while already off")
		}
		// Under the eager policy every completed tile is durable before
		// any brownout; completed-but-unsaved tiles at power-off mean
		// the checkpoint-before-brownout ordering broke.
		if r.policy == PolicyEveryTile && r.tilesSince > 0 {
			r.violateLocked(ts, fmt.Sprintf("%d tiles completed without checkpoint before brownout", r.tilesSince))
		}
		r.powered = false
	case EvTileStart, EvTileDone, EvCheckpoint:
		if !r.powered {
			r.violateLocked(ts, fmt.Sprintf("%v while power is off", e.Kind))
		}
		switch e.Kind {
		case EvTileDone:
			if r.opened {
				r.open.TilesDone++
			}
			r.tilesSince++
		case EvCheckpoint:
			if r.opened {
				r.open.Checkpoints++
			}
			r.tilesSince = 0
		}
	case EvResume:
		if !r.powered {
			r.violateLocked(ts, "resume while power is off")
		}
		if r.opened {
			r.open.Resumes++
		}
	case EvRetry:
		if r.opened {
			r.open.Retries++
		}
	}
}

func (r *Recorder) violateLocked(ts float64, msg string) {
	if len(r.violations) >= maxViolations {
		r.dropped++
		return
	}
	r.violations = append(r.violations, Violation{TimeS: ts, Msg: msg})
}

// drain records a discrete capacitor drain (checkpoint save / resume):
// capJ removed capacitor-side, loadJ the load-side cost. Flushed into
// the ledger by the next step call so transition-step drains land in
// the segment they belong to.
func (r *Recorder) drain(capJ, loadJ units.Energy) {
	r.mu.Lock()
	r.pendDrain += float64(capJ)
	r.pendCkpt += float64(loadJ)
	r.mu.Unlock()
}

// step records one simulation step: the energy flows of the step report,
// the cumulative breakdown of the in-flight inference, and the
// subsystem's end-of-step state. tm is the time at the END of the step.
func (r *Recorder) step(tm, dt units.Seconds, rep energy.StepReport, bd Breakdown) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := float64(tm)
	v := float64(r.es.Cap.Voltage())
	stored := float64(r.es.Cap.Stored())

	// A power-on observed since the last step closes the ledger at the
	// previous step boundary; the transition step's flows (and any
	// resume drain) belong to the new cycle.
	if r.pendingCycle {
		r.closeLedgerLocked()
		r.openLedgerLocked(r.lastT, r.lastStored)
		r.pendingCycle = false
	}

	drainedNow := r.pendDrain != 0 || r.pendCkpt != 0
	l := &r.open
	l.EndS = t
	l.EndStoredJ = stored
	l.HarvestedJ += float64(rep.Harvested)
	l.ChargedJ += float64(rep.Charged)
	l.ConversionLossJ += float64(rep.ConversionLoss)
	l.SpilledJ += float64(rep.Spilled)
	l.DeliveredJ += float64(rep.Delivered)
	l.LeakedJ += float64(rep.Leaked)
	l.DrainedJ += r.pendDrain
	l.CkptLoadJ += r.pendCkpt
	r.pendDrain, r.pendCkpt = 0, 0
	// The capacitor debits leakage at its pre-discharge voltage: the
	// stored energy at the start of the step plus the harvest credit.
	// Both are known here exactly, so the V² integral reproduces the
	// leak-basis trajectory rather than approximating it from
	// end-of-step samples.
	vLeak := float64(units.VoltageForEnergy(r.espec.Cap, units.Energy(r.lastStored)+rep.Charged))
	l.VSqIntegral += vLeak * vLeak * float64(dt)
	if v < l.MinV {
		l.MinV = v
	}
	if v > l.MaxV {
		l.MaxV = v
	}
	// Gate state comes from the step report, not the event stream:
	// idle-phase stepping has no events, but the PMIC still switches.
	if rep.State == pmic.On {
		l.OnSeconds += float64(dt)
		if !drainedNow {
			l.OnSamples++
			if v < l.MinVOn {
				l.MinVOn = v
			}
		}
	}

	r.cumHarvest += float64(rep.Harvested)
	r.prevBD = bd

	var vals [numChannels]float64
	vals[ChVCap] = v
	vals[ChEStored] = stored
	if dt > 0 {
		vals[ChPHarvest] = float64(rep.Harvested) / float64(dt)
		vals[ChPLoad] = float64(rep.Delivered) / float64(dt)
		vals[ChPLeak] = float64(rep.Leaked) / float64(dt)
	}
	vals[ChEHarvest] = r.cumHarvest
	vals[ChECompute] = float64(r.base.Infer + bd.Infer)
	vals[ChENVMIO] = float64(r.base.NVMIO + bd.NVMIO)
	vals[ChECkpt] = float64(r.base.Ckpt + bd.Ckpt)
	vals[ChCycle] = float64(r.cycleIndex)
	r.sampleLocked(t, &vals)

	r.lastT = t
	r.lastStored = stored
}

// segmentReport aggregates the flows of one analytic multi-step jump —
// the event simulator's macro-step equivalent of a StepReport. Flows
// are segment totals (capacitor-side, except harvested/conversionLoss);
// vsqIntegral is passed explicitly because the recorder cannot
// re-derive the per-step leak basis from aggregate flows. Quiet windows
// never spill or starve, so those flows are implicitly zero.
type segmentReport struct {
	n              int // steps the segment stands in for
	harvested      float64
	charged        float64
	conversionLoss float64
	delivered      float64
	leaked         float64
	vsqIntegral    float64
	on             bool // power gate state throughout the segment
}

// segment records one analytic jump of seg.n steps ending at tm. The
// subsystem state has already been advanced to the end of the window.
// Within a quiet window the voltage trajectory is monotone and the
// previous literal step sampled the window's start, so folding only the
// endpoint keeps MinV/MaxV (and MinVOn) exact.
func (r *Recorder) segment(tm, dt units.Seconds, seg segmentReport, bd Breakdown) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := float64(tm)
	v := float64(r.es.Cap.Voltage())
	stored := float64(r.es.Cap.Stored())

	// Jumps never immediately follow a power-on (transitions happen on
	// literal steps, which flush these), but stay defensive so a future
	// caller cannot corrupt the ledger chain.
	if r.pendingCycle {
		r.closeLedgerLocked()
		r.openLedgerLocked(r.lastT, r.lastStored)
		r.pendingCycle = false
	}

	l := &r.open
	l.EndS = t
	l.EndStoredJ = stored
	l.HarvestedJ += seg.harvested
	l.ChargedJ += seg.charged
	l.ConversionLossJ += seg.conversionLoss
	l.DeliveredJ += seg.delivered
	l.LeakedJ += seg.leaked
	l.DrainedJ += r.pendDrain
	l.CkptLoadJ += r.pendCkpt
	r.pendDrain, r.pendCkpt = 0, 0
	l.VSqIntegral += seg.vsqIntegral
	if v < l.MinV {
		l.MinV = v
	}
	if v > l.MaxV {
		l.MaxV = v
	}
	if seg.on {
		l.OnSeconds += float64(seg.n) * float64(dt)
		l.OnSamples += seg.n
		if v < l.MinVOn {
			l.MinVOn = v
		}
	}

	r.cumHarvest += seg.harvested
	r.prevBD = bd

	var vals [numChannels]float64
	vals[ChVCap] = v
	vals[ChEStored] = stored
	if span := float64(seg.n) * float64(dt); span > 0 {
		vals[ChPHarvest] = seg.harvested / span
		vals[ChPLoad] = seg.delivered / span
		vals[ChPLeak] = seg.leaked / span
	}
	vals[ChEHarvest] = r.cumHarvest
	vals[ChECompute] = float64(r.base.Infer + bd.Infer)
	vals[ChENVMIO] = float64(r.base.NVMIO + bd.NVMIO)
	vals[ChECkpt] = float64(r.base.Ckpt + bd.Ckpt)
	vals[ChCycle] = float64(r.cycleIndex)
	r.sampleLocked(t, &vals)
	if seg.n > 1 {
		r.raw += int64(seg.n) - 1 // the one sample stands in for n raw steps
	}

	r.lastT = t
	r.lastStored = stored
}

// sampleLocked folds one raw sample into the current bin, opening a new
// bin (and compacting on budget overflow) as needed.
func (r *Recorder) sampleLocked(t float64, vals *[numChannels]float64) {
	r.raw++
	n := len(r.bins)
	if n == 0 || (r.binDur > 0 && t-r.bins[n-1].t0 >= r.binDur) || (r.binDur == 0 && t > r.bins[n-1].t1) {
		b := wavebin{t0: t, t1: t, count: 0}
		for i := range b.ch {
			b.ch[i] = chanAgg{min: math.Inf(1), max: math.Inf(-1)}
		}
		r.bins = append(r.bins, b)
		if len(r.bins) > r.maxPoints {
			r.compactBinsLocked()
		}
		n = len(r.bins)
	}
	b := &r.bins[n-1]
	b.t1 = t
	b.count++
	for i := range vals {
		b.ch[i].add(vals[i])
	}
}

// compactBinsLocked merges adjacent bin pairs and doubles the bin
// width, keeping the true min/max of every absorbed sample.
func (r *Recorder) compactBinsLocked() {
	if r.binDur == 0 {
		span := r.bins[len(r.bins)-1].t1 - r.bins[0].t0
		r.binDur = 2 * span / float64(len(r.bins))
		if r.binDur <= 0 {
			r.binDur = math.SmallestNonzeroFloat64
		}
	} else {
		r.binDur *= 2
	}
	half := len(r.bins) / 2
	for i := 0; i < half; i++ {
		b := r.bins[2*i]
		nb := r.bins[2*i+1]
		b.t1 = nb.t1
		b.count += nb.count
		for c := range b.ch {
			b.ch[c].merge(nb.ch[c])
		}
		r.bins[i] = b
	}
	if len(r.bins)%2 == 1 {
		r.bins[half] = r.bins[len(r.bins)-1]
		half++
	}
	r.bins = r.bins[:half]
}

// RawSamples returns the number of raw samples folded into the bins.
func (r *Recorder) RawSamples() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.raw
}

// Points returns the current bin count (≤ the configured budget + 1).
func (r *Recorder) Points() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.bins)
}

// EnergySpec returns the (defaults-filled) spec of the subsystem the
// recorder observed — the constants the audit pass reconstructs
// leakage and voltage bounds from. Zero before the first run.
func (r *Recorder) EnergySpec() energy.Spec {
	if r == nil {
		return energy.Spec{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.espec
}

// Policy returns the checkpoint policy of the recorded run.
func (r *Recorder) Policy() Policy {
	if r == nil {
		return PolicyEveryTile
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy
}

// Violations returns the event-stream invariant violations observed so
// far (bounded at 64) and how many more were dropped.
func (r *Recorder) Violations() ([]Violation, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Violation(nil), r.violations...), r.dropped
}

// Cycles snapshots the per-cycle ledgers, including the open segment.
func (r *Recorder) Cycles() []CycleLedger {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cyclesLocked()
}

func (r *Recorder) cyclesLocked() []CycleLedger {
	out := append([]CycleLedger(nil), r.cycles...)
	if r.opened && (r.open.EndS > r.open.StartS || r.open.HarvestedJ != 0) {
		out = append(out, r.open)
	}
	// Sanitize infinities so snapshots JSON-marshal cleanly: a segment
	// with no powered time reports MinVOn = 0 (OnSeconds disambiguates),
	// and a segment with no samples reports zero voltage bounds.
	for i := range out {
		if math.IsInf(out[i].MinVOn, 1) {
			out[i].MinVOn = 0
		}
		if math.IsInf(out[i].MinV, 1) {
			out[i].MinV, out[i].MaxV = 0, 0
		}
	}
	return out
}

// Waveform snapshots the recorder into an exportable waveform.
func (r *Recorder) Waveform() Waveform {
	if r == nil {
		return Waveform{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := Waveform{
		BinSeconds: r.binDur,
		RawSamples: r.raw,
		Cycles:     r.cyclesLocked(),
	}
	if len(r.bins) > 0 {
		w.StartS = r.bins[0].t0
		w.EndS = r.bins[len(r.bins)-1].t1
	}
	w.binCounts = make([]int64, len(r.bins))
	for i := range r.bins {
		w.binCounts[i] = r.bins[i].count
	}
	w.Channels = make([]WaveChannel, numChannels)
	for c := 0; c < numChannels; c++ {
		ch := WaveChannel{
			Name:   channelMeta[c].Name,
			Unit:   channelMeta[c].Unit,
			Points: make([]WavePoint, len(r.bins)),
		}
		for i := range r.bins {
			a := r.bins[i].ch[c]
			ch.Points[i] = WavePoint{
				T:    r.bins[i].t0,
				Min:  a.min,
				Max:  a.max,
				Mean: a.sum / float64(r.bins[i].count),
				Last: a.last,
			}
		}
		w.Channels[c] = ch
	}
	return w
}

// voltageTraceSince materializes the deprecated Result.VoltageTrace
// view for one inference: one sample per bin ending after start,
// carrying the bin's last observed voltage at the bin's end time.
func (r *Recorder) voltageTraceSince(start float64) []VoltageSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []VoltageSample
	for i := range r.bins {
		if r.bins[i].t1 <= start {
			continue
		}
		out = append(out, VoltageSample{
			Time:    units.Seconds(r.bins[i].t1),
			Voltage: units.Voltage(r.bins[i].ch[ChVCap].last),
		})
	}
	return out
}
