package sim

import (
	"math"
	"testing"

	"chrysalis/internal/energy"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

func TestRunSeriesValidation(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	if _, err := RunSeries(cfg, 0, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := RunSeries(cfg, 2, -1); err == nil {
		t.Error("negative idle should fail")
	}
	bad := cfg
	bad.Energy = nil
	if _, err := RunSeries(bad, 2, 0); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRunSeriesBackToBack(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	sr, err := RunSeries(cfg, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 5 {
		t.Fatalf("completed %d/5", sr.Completed)
	}
	if len(sr.PerInference) != 5 {
		t.Fatalf("results = %d", len(sr.PerInference))
	}
	if sr.ThroughputPerHour <= 0 {
		t.Fatalf("throughput = %v", sr.ThroughputPerHour)
	}
	// Later inferences skip the cold-start charge and should not be
	// dramatically slower than the first.
	first := sr.PerInference[0].E2ELatency
	for i, r := range sr.PerInference {
		if !r.Completed {
			t.Fatalf("inference %d did not complete", i)
		}
		if r.E2ELatency > first*3 {
			t.Fatalf("inference %d latency %v way beyond first %v", i, r.E2ELatency, first)
		}
	}
	// Aggregate harvest must cover the aggregate load consumption.
	if sr.Energy.Harvested <= 0 || sr.Energy.Delivered() <= 0 {
		t.Fatal("aggregate energy accounting missing")
	}
}

func TestRunSeriesIdleGapsExtendTime(t *testing.T) {
	tight, err := RunSeries(harSetup(t, 8, 100e-6, solar.Bright()), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	spaced, err := RunSeries(harSetup(t, 8, 100e-6, solar.Bright()), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if spaced.TotalTime <= tight.TotalTime+15 {
		t.Fatalf("idle gaps should add ~20s: tight %v vs spaced %v", tight.TotalTime, spaced.TotalTime)
	}
	if spaced.ThroughputPerHour >= tight.ThroughputPerHour {
		t.Fatal("idle gaps must reduce throughput")
	}
}

func TestRunSeriesDiurnalNightStopsWork(t *testing.T) {
	// A day that ends after 60 seconds of "sunlight": inferences run
	// while light lasts, then the series stalls on the first inference
	// that cannot complete in the dark.
	day, err := solar.NewDiurnal(solar.KehBright, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	// Rebuild the subsystem under the short-day environment.
	es, err := rebuildEnv(cfg, day)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Energy = es
	cfg.MaxTime = 120
	sr, err := RunSeries(cfg, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed == 0 {
		t.Fatal("daylight phase should complete some inferences")
	}
	if sr.Completed >= 1000 {
		t.Fatal("night must eventually stop the series")
	}
	last := sr.PerInference[len(sr.PerInference)-1]
	if last.Completed {
		t.Fatal("the series should end on an incomplete inference")
	}
	if !math.IsInf(float64(last.E2ELatency), 1) {
		t.Fatal("the stalled inference should report infinite latency")
	}
}

// rebuildEnv swaps the environment of a test config's energy subsystem.
func rebuildEnv(cfg Config, env solar.Environment) (*energy.Subsystem, error) {
	spec := cfg.Energy.Spec()
	return energy.NewSolar(energy.Spec{PanelArea: spec.PanelArea, Cap: spec.Cap}, env)
}

func TestRunSeriesThroughputMatchesLatency(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	sr, err := RunSeries(cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Seconds
	for _, r := range sr.PerInference {
		sum += r.E2ELatency
	}
	if !units.ApproxEqual(float64(sum), float64(sr.TotalTime), 0.05) {
		t.Fatalf("sum of latencies %v vs total %v", sum, sr.TotalTime)
	}
}
