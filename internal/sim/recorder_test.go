package sim

import (
	"math"
	"strings"
	"sync"
	"testing"

	"chrysalis/internal/energy"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// TestRecorderLedgerConservation runs a choppy-power scenario (many
// power cycles) and checks that every per-cycle ledger balances: the
// capacitor-side flows must account for the stored-energy change
// exactly, and the transducer-side identity must hold.
func TestRecorderLedgerConservation(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Dark())
	rec := NewRecorder(0)
	cfg.Record = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("scenario should complete")
	}
	cycles := rec.Cycles()
	if len(cycles) < 2 {
		t.Fatalf("choppy scenario should produce several cycles, got %d", len(cycles))
	}
	for _, c := range cycles {
		flow := math.Abs(c.ChargedJ) + math.Abs(c.DeliveredJ) + math.Abs(c.LeakedJ) + math.Abs(c.DrainedJ)
		tol := 1e-9*flow + 1e-12
		bal := c.ChargedJ - c.DeliveredJ - c.LeakedJ - c.DrainedJ - (c.EndStoredJ - c.StartStoredJ)
		if math.Abs(bal) > tol {
			t.Errorf("cycle %d: capacitor balance off by %g J (tol %g)", c.Index, bal, tol)
		}
		harvTol := 1e-9*math.Abs(c.HarvestedJ) + 1e-12
		hbal := c.HarvestedJ - c.ChargedJ - c.ConversionLossJ - c.SpilledJ
		if math.Abs(hbal) > harvTol {
			t.Errorf("cycle %d: harvest identity off by %g J (tol %g)", c.Index, hbal, harvTol)
		}
		if c.EndS < c.StartS {
			t.Errorf("cycle %d: end %g before start %g", c.Index, c.EndS, c.StartS)
		}
	}
	// Segment boundaries must chain: one cycle's end state is the next
	// cycle's start state.
	for i := 1; i < len(cycles); i++ {
		if cycles[i].StartStoredJ != cycles[i-1].EndStoredJ {
			t.Errorf("cycle %d starts at %g J but cycle %d ended at %g J",
				cycles[i].Index, cycles[i].StartStoredJ, cycles[i-1].Index, cycles[i-1].EndStoredJ)
		}
	}
	if v, dropped := rec.Violations(); len(v) > 0 || dropped > 0 {
		t.Errorf("unexpected event-stream violations: %v (+%d dropped)", v, dropped)
	}
	// The ledger totals must agree with the simulator's own breakdown.
	var harv float64
	for _, c := range cycles {
		harv += c.HarvestedJ
	}
	if diff := harv - float64(res.Breakdown.Harvested); math.Abs(diff) > 1e-9*harv+1e-12 {
		t.Errorf("ledger harvest sum %g J vs breakdown %g J", harv, float64(res.Breakdown.Harvested))
	}
}

// TestRecorderSeriesContinuity attaches one recorder to a whole series
// and checks that the waveform is continuous across inference and idle
// boundaries: timestamps strictly increase, the cumulative harvest
// channel never decreases, and idle gaps are observed (conservation
// would not survive unrecorded stretches).
func TestRecorderSeriesContinuity(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	rec := NewRecorder(2048)
	cfg.Record = rec
	sr, err := RunSeries(cfg, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 3 {
		t.Fatalf("expected 3 completions, got %d", sr.Completed)
	}
	w := rec.Waveform()
	if w.EndS < float64(sr.TotalTime)*0.999 {
		t.Errorf("waveform ends at %g s but series ran to %g s — idle gaps unrecorded?", w.EndS, float64(sr.TotalTime))
	}
	ch := w.Channel("e_harvest")
	if ch == nil || len(ch.Points) == 0 {
		t.Fatal("missing e_harvest channel")
	}
	prevT := math.Inf(-1)
	prevLast := 0.0
	for i, p := range ch.Points {
		if p.T <= prevT {
			t.Fatalf("point %d: time %g not after %g", i, p.T, prevT)
		}
		prevT = p.T
		if p.Last+1e-15 < prevLast {
			t.Fatalf("point %d: cumulative harvest fell from %g to %g", i, prevLast, p.Last)
		}
		prevLast = p.Last
	}
	// The recorder's cumulative harvest must match the series total
	// even though each inference resets its own breakdown.
	last := ch.Points[len(ch.Points)-1].Last
	want := float64(sr.Energy.Harvested)
	// Idle-gap harvest is recorded but not part of the per-inference
	// breakdowns, so the recorder's total is >= the series sum.
	if last < want*(1-1e-9) {
		t.Errorf("recorder cumulative harvest %g J < series breakdown %g J", last, want)
	}
	if v, dropped := rec.Violations(); len(v) > 0 || dropped > 0 {
		t.Errorf("unexpected violations: %v (+%d dropped)", v, dropped)
	}
}

// TestDownsamplerMinMaxPreserved drives the recorder directly with a
// synthetic waveform containing isolated spikes and verifies that
// (a) the point budget is respected, and (b) every raw sample is
// covered by a bin whose [min, max] contains it — the property plain
// decimation lacks.
func TestDownsamplerMinMaxPreserved(t *testing.T) {
	es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Bright())
	if err != nil {
		t.Fatal(err)
	}
	const budget = 64
	rec := NewRecorder(budget)
	rec.begin(es, 0, PolicyEveryTile)

	type sample struct{ t, v float64 }
	var raw []sample
	const n = 50_000
	dt := units.Seconds(1e-3)
	tm := units.Seconds(0)
	for i := 0; i < n; i++ {
		tm += dt
		v := 2.0 + math.Sin(float64(i)/500)
		if i%977 == 0 {
			v = 4.9 // isolated spike that decimation would drop
		}
		if i%1913 == 0 {
			v = 0.05 // isolated dip
		}
		es.Cap.SetVoltage(units.Voltage(v))
		rec.step(tm, dt, energy.StepReport{}, Breakdown{})
		raw = append(raw, sample{t: float64(tm), v: float64(es.Cap.Voltage())})
	}
	if got := rec.Points(); got > budget {
		t.Fatalf("bin count %d exceeds budget %d", got, budget)
	}
	if rec.RawSamples() != n {
		t.Fatalf("raw samples %d, want %d", rec.RawSamples(), n)
	}
	w := rec.Waveform()
	ch := w.Channel("v_cap")
	if ch == nil {
		t.Fatal("missing v_cap channel")
	}
	// Bin lookup by time: points carry bin start times in order.
	find := func(t0 float64) WavePoint {
		lo := 0
		for i := range ch.Points {
			if ch.Points[i].T <= t0 {
				lo = i
			} else {
				break
			}
		}
		return ch.Points[lo]
	}
	var gmin, gmax = math.Inf(1), math.Inf(-1)
	for _, s := range raw {
		p := find(s.t)
		if s.v < p.Min-1e-12 || s.v > p.Max+1e-12 {
			t.Fatalf("sample (%g s, %g V) outside its bin range [%g, %g]", s.t, s.v, p.Min, p.Max)
		}
		gmin = math.Min(gmin, s.v)
		gmax = math.Max(gmax, s.v)
	}
	var bmin, bmax = math.Inf(1), math.Inf(-1)
	for _, p := range ch.Points {
		bmin = math.Min(bmin, p.Min)
		bmax = math.Max(bmax, p.Max)
	}
	if bmin != gmin || bmax != gmax {
		t.Errorf("global min/max [%g, %g] not preserved, got [%g, %g]", gmin, gmax, bmin, bmax)
	}
}

// TestRecorderBoundedMemory24h simulates more than 24 hours and checks
// the recorder stays within its point budget — the property that
// replaced the old silent 100k-sample truncation.
func TestRecorderBoundedMemory24h(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	rec := NewRecorder(512)
	cfg.Record = rec
	// 20 inferences spaced by 90-minute idle gaps: > 27 h simulated.
	sr, err := RunSeries(cfg, 20, 5400)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Completed != 20 {
		t.Fatalf("expected 20 completions, got %d", sr.Completed)
	}
	if float64(sr.TotalTime) < 24*3600 {
		t.Fatalf("series only covered %g s, want >= 24h", float64(sr.TotalTime))
	}
	if got := rec.Points(); got > 512 {
		t.Errorf("bin count %d exceeds budget 512 after %g s", got, float64(sr.TotalTime))
	}
	w := rec.Waveform()
	if w.EndS-w.StartS < 24*3600 {
		t.Errorf("waveform span %g s, want >= 24h", w.EndS-w.StartS)
	}
	for _, ch := range w.Channels {
		if len(ch.Points) != rec.Points() {
			t.Errorf("channel %s has %d points, recorder reports %d", ch.Name, len(ch.Points), rec.Points())
		}
	}
}

// TestRecorderConcurrentSnapshots reads waveforms and ledgers from
// other goroutines while the simulation is running — the live-dashboard
// access pattern — and relies on -race to catch unsynchronized access.
func TestRecorderConcurrentSnapshots(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	rec := NewRecorder(256)
	cfg.Record = rec

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				w := rec.Waveform()
				_ = w.Channel("v_cap")
				_ = rec.Cycles()
				_, _ = rec.Violations()
				_ = rec.RawSamples()
			}
		}()
	}
	if _, err := RunSeries(cfg, 3, 1); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
}

// TestWaveformCSV checks the CSV export shape: header plus one row per
// bin, with min/max/mean/last columns for every channel.
func TestWaveformCSV(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	rec := NewRecorder(128)
	cfg.Record = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	w := rec.Waveform()
	if err := w.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(w.Channels[0].Points) {
		t.Fatalf("CSV has %d lines, want header + %d bins", len(lines), len(w.Channels[0].Points))
	}
	wantCols := 2 + 4*len(w.Channels)
	for i, ln := range lines {
		if got := strings.Count(ln, ",") + 1; got != wantCols {
			t.Fatalf("line %d has %d columns, want %d", i, got, wantCols)
		}
	}
	if !strings.HasPrefix(lines[0], "t_s,samples,v_cap_min,") {
		t.Errorf("unexpected header: %s", lines[0])
	}
}

// TestVoltageTraceDerivedFromRecorder checks the deprecated SampleEvery
// path still produces a bounded, strictly increasing trace even for
// horizons that would have overflowed the old hard cap.
func TestVoltageTraceDerivedFromRecorder(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	cfg.SampleEvery = DefaultStep // one sample per step: old code capped at 100k
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VoltageTrace) == 0 {
		t.Fatal("expected a voltage trace")
	}
	if len(res.VoltageTrace) > legacyVoltagePoints {
		t.Errorf("trace has %d samples, want <= %d", len(res.VoltageTrace), legacyVoltagePoints)
	}
	prev := units.Seconds(-1)
	for i, s := range res.VoltageTrace {
		if s.Time <= prev {
			t.Fatalf("sample %d: time %v not after %v", i, s.Time, prev)
		}
		prev = s.Time
	}
}
