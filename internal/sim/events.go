package sim

import (
	"fmt"

	"chrysalis/internal/units"
)

// EventKind labels the observable transitions of the intermittent
// inference process — the numbered steps of the paper's Figure 4 plus
// the power-gate transitions that drive them.
type EventKind int

const (
	// EvPowerOn fires when the PMIC gates the load on (start of an
	// energy cycle).
	EvPowerOn EventKind = iota
	// EvPowerOff fires at brownout.
	EvPowerOff
	// EvTileStart fires when a tile begins consuming energy (Fig. 4 ①:
	// its data starts streaming from NVM).
	EvTileStart
	// EvTileDone fires when a tile's compute completes (Fig. 4 ⑤: its
	// outputs are written back to NVM).
	EvTileDone
	// EvCheckpoint fires after a tile's volatile state is persisted
	// (Fig. 4 ⑥).
	EvCheckpoint
	// EvResume fires when a checkpoint is restored after an
	// interruption (Fig. 4 ⑦).
	EvResume
	// EvRetry fires when a brownout discards a partially executed tile.
	EvRetry
	// EvDone fires when the whole inference completes.
	EvDone
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPowerOn:
		return "power-on"
	case EvPowerOff:
		return "power-off"
	case EvTileStart:
		return "tile-start"
	case EvTileDone:
		return "tile-done"
	case EvCheckpoint:
		return "checkpoint"
	case EvResume:
		return "resume"
	case EvRetry:
		return "retry"
	case EvDone:
		return "done"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one observable simulator transition.
type Event struct {
	Kind EventKind
	// Time is the simulation time of the transition.
	Time units.Seconds
	// Tile is the global tile index the event concerns (-1 when not
	// tile-specific).
	Tile int
	// Layer is the index of the layer the tile belongs to (-1 when not
	// tile-specific).
	Layer int
	// Voltage is the capacitor voltage at the event.
	Voltage units.Voltage
}

// Tracer receives simulator events in time order. Implementations must
// be fast; they run inside the stepping loop.
type Tracer func(Event)

// EventRecorder is a Tracer that appends events to memory, with an
// optional cap to bound long runs. (The energy-state flight recorder
// is the separate Recorder type in recorder.go.)
type EventRecorder struct {
	Events []Event
	// Max bounds the recording (0 = unbounded). Once full, further
	// events are counted but not stored.
	Max     int
	Dropped int
}

// Trace implements the Tracer contract for the recorder.
func (r *EventRecorder) Trace(e Event) {
	if r.Max > 0 && len(r.Events) >= r.Max {
		r.Dropped++
		return
	}
	r.Events = append(r.Events, e)
}

// Count returns how many events of kind k were recorded.
func (r *EventRecorder) Count(k EventKind) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
