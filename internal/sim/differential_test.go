package sim_test

// Differential validation of the event-driven simulator against the
// step oracle: the full preset × policy matrix must agree on every
// discrete counter exactly and on every continuous quantity within
// sim.DiffRelTol, and the flight-recorder audit must come back clean on
// both paths. External test package so the audit harness (which imports
// sim) can serve as the proof checker.

import (
	"math"
	"testing"

	"chrysalis/internal/audit"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/thermal"
	"chrysalis/internal/units"
)

// accelHW mirrors the future-AuT accelerator constants used by the sim
// package's own tests.
func accelHW() dataflow.HW {
	return dataflow.HW{
		NPE: 64, CacheBytes: 512, VMBytes: 140 * units.KB,
		EMAC: 16e-12, EVMPerByte: 2e-12, ENVMReadPerByte: 100e-12, ENVMWritePerByte: 200e-12,
		TMAC: 17e-9, NVMBytesPerSec: 300e6, PMemPerByte: 100e-12, PIdle: 150e-6,
	}
}

// diffScenario is one row of the matrix, mirroring a core preset's
// environment and platform without importing core (cycle).
type diffScenario struct {
	name  string
	area  units.AreaCM2
	capC  units.Capacitance
	env   solar.Environment
	accel bool
}

func diffScenarios(t *testing.T) []diffScenario {
	t.Helper()
	orbital, err := thermal.NewDeratedEnvironment(solar.Bright(), thermal.Constant{C: 70})
	if err != nil {
		t.Fatal(err)
	}
	return []diffScenario{
		{name: "wearable", area: 6, capC: 100e-6, env: solar.Dark()},
		{name: "uav", area: 12, capC: 470e-6, env: solar.Bright(), accel: true},
		{name: "buoy", area: 8, capC: 100e-6, env: solar.Bright()},
		{name: "orbital", area: 15, capC: 220e-6, env: orbital, accel: true},
		{name: "volcano", area: 10, capC: 150e-6, env: solar.Constant{K: 0.15e-3, Label: "ash-dimmed"}},
	}
}

// buildConfig plans the HAR workload for one scenario exactly as the
// sim package's own harness does.
func buildConfig(t *testing.T, sc diffScenario) sim.Config {
	t.Helper()
	es, err := energy.NewSolar(energy.Spec{PanelArea: sc.area, Cap: sc.capC}, sc.env)
	if err != nil {
		t.Fatal(err)
	}
	hw := msp430.Config{}.HW()
	active := msp430.Config{}.ActivePower()
	if sc.accel {
		hw = accelHW()
		active = units.Power(float64(hw.PIdle) + float64(hw.EMAC)/float64(hw.TMAC))
	}
	budget, _ := es.CycleBudget(active)
	if math.IsInf(float64(budget), 1) {
		budget = 1
	}
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05, intermittent.FixedBudget(budget*0.9))
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Energy: es, HW: hw, Plans: plans}
}

// TestDifferentialMatrix is the tentpole's proof obligation: every
// preset × policy cell agrees between the two simulators and audits
// clean on both paths.
func TestDifferentialMatrix(t *testing.T) {
	policies := []sim.Policy{sim.PolicyEveryTile, sim.PolicyAdaptive, sim.PolicyNone}
	for _, sc := range diffScenarios(t) {
		sc := sc
		for _, pol := range policies {
			pol := pol
			t.Run(sc.name+"/"+pol.String(), func(t *testing.T) {
				t.Parallel()

				stepCfg := buildConfig(t, sc)
				stepCfg.Policy = pol
				stepRec := sim.NewRecorder(4096)
				stepCfg.Record = stepRec
				var stepEvents []sim.Event
				stepCfg.Trace = func(e sim.Event) { stepEvents = append(stepEvents, e) }
				stepRes, err := sim.Run(stepCfg)
				if err != nil {
					t.Fatal(err)
				}

				evCfg := buildConfig(t, sc)
				evCfg.Policy = pol
				evRec := sim.NewRecorder(4096)
				evCfg.Record = evRec
				var evEvents []sim.Event
				evCfg.Trace = func(e sim.Event) { evEvents = append(evEvents, e) }
				evRes, err := sim.RunEvent(evCfg)
				if err != nil {
					t.Fatal(err)
				}

				if err := sim.DiffResults(evRes, stepRes, sim.DiffRelTol); err != nil {
					t.Fatalf("event/step divergence: %v", err)
				}

				// The event stream must be identical event-for-event in
				// kind, tile and layer; times agree to fp drift.
				if len(evEvents) != len(stepEvents) {
					t.Fatalf("event count: event=%d step=%d", len(evEvents), len(stepEvents))
				}
				for i := range evEvents {
					e, s := evEvents[i], stepEvents[i]
					if e.Kind != s.Kind || e.Tile != s.Tile || e.Layer != s.Layer {
						t.Fatalf("event %d: event=%+v step=%+v", i, e, s)
					}
					dt := math.Abs(float64(e.Time - s.Time))
					if dt > sim.DiffRelTol*math.Max(1, float64(s.Time)) {
						t.Fatalf("event %d time: event=%v step=%v", i, e.Time, s.Time)
					}
				}

				// Both recorders must satisfy every audit invariant.
				if rep := audit.Run(stepRec, audit.Options{}); !rep.OK() {
					t.Fatalf("step-path audit findings:\n%s", rep)
				}
				if rep := audit.Run(evRec, audit.Options{}); !rep.OK() {
					t.Fatalf("event-path audit findings:\n%s", rep)
				}
			})
		}
	}
}

// TestDifferentialMode exercises the ModeDifferential runner itself on
// one representative scenario.
func TestDifferentialMode(t *testing.T) {
	cfg := buildConfig(t, diffScenarios(t)[2]) // buoy: bright MSP430
	res, err := sim.RunMode(cfg, sim.ModeDifferential)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("differential run should complete: %+v", res)
	}
}

// TestEventFastPathEngages guards against the event simulator silently
// falling back to pure stepping: on the steady bright scenario the
// analytic jumps must replace the vast majority of steps.
func TestEventFastPathEngages(t *testing.T) {
	cfg := buildConfig(t, diffScenarios(t)[2])
	segs0, fast0, lit0, fb0 := sim.EventStats()
	if _, err := sim.RunEvent(cfg); err != nil {
		t.Fatal(err)
	}
	segs1, fast1, lit1, fb1 := sim.EventStats()
	if fb1 != fb0 {
		t.Fatalf("steady-harvest run fell back to stepping (%d runs)", fb1-fb0)
	}
	if segs1 == segs0 {
		t.Fatal("no analytic jumps taken")
	}
	fast, lit := fast1-fast0, lit1-lit0
	if fast < 4*lit {
		t.Fatalf("fast path barely engaged: %d jumped vs %d literal steps", fast, lit)
	}
}

// TestEventFallbackOnJitter checks the qualification gate: jitter makes
// per-tile energy stochastic, so the run must take the literal path yet
// still produce the oracle's exact result.
func TestEventFallbackOnJitter(t *testing.T) {
	cfg := buildConfig(t, diffScenarios(t)[2])
	cfg.Jitter = 0.05
	cfg.Seed = 7

	_, _, _, fb0 := sim.EventStats()
	evRes, err := sim.RunEvent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, fb1 := sim.EventStats()
	if fb1 == fb0 {
		t.Fatal("jittered run should have fallen back")
	}

	stepRes, err := sim.Run(buildJittered(t, diffScenarios(t)[2]))
	if err != nil {
		t.Fatal(err)
	}
	// Identical seed and literal stepping: bit-identical results.
	if err := sim.DiffResults(evRes, stepRes, 0); err != nil {
		t.Fatalf("fallback path must be bit-identical to oracle: %v", err)
	}
}

func buildJittered(t *testing.T, sc diffScenario) sim.Config {
	cfg := buildConfig(t, sc)
	cfg.Jitter = 0.05
	cfg.Seed = 7
	return cfg
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]sim.Mode{
		"":             sim.ModeEvent,
		"event":        sim.ModeEvent,
		"step":         sim.ModeStep,
		"differential": sim.ModeDifferential,
		"diff":         sim.ModeDifferential,
	} {
		got, err := sim.ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := sim.ParseMode("warp"); err == nil {
		t.Error("ParseMode should reject unknown modes")
	}
}
