package sim

import (
	"math"
	"testing"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// harSetup builds a representative existing-AuT scenario: HAR on the
// MSP430 with an 8 cm² panel and a given capacitor.
func harSetup(t *testing.T, area units.AreaCM2, capC units.Capacitance, env solar.Environment) Config {
	t.Helper()
	es, err := energy.NewSolar(energy.Spec{PanelArea: area, Cap: capC}, env)
	if err != nil {
		t.Fatal(err)
	}
	hw := msp430.Config{}.HW()
	// Plan tiles against what one real energy cycle can deliver at the
	// platform's active power, with a 10% safety margin.
	budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
	if math.IsInf(float64(budget), 1) {
		budget = 1 // harvest sustains the load; any tile size works
	}
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05, intermittent.FixedBudget(budget*0.9))
	if err != nil {
		t.Fatal(err)
	}
	return Config{Energy: es, HW: hw, Plans: plans}
}

func TestValidate(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.Energy = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil energy should fail")
	}
	bad = cfg
	bad.Plans = nil
	if err := bad.Validate(); err == nil {
		t.Error("no plans should fail")
	}
	bad = cfg
	bad.Jitter = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("jitter >= 1 should fail")
	}
	bad = cfg
	bad.Step = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative step should fail")
	}
}

func TestRunCompletesHAR(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("HAR on 8cm² bright should complete")
	}
	if res.E2ELatency <= 0 || math.IsInf(float64(res.E2ELatency), 1) {
		t.Fatalf("latency = %v", res.E2ELatency)
	}
	if res.TilesDone == 0 || res.Checkpoints == 0 {
		t.Fatalf("no progress recorded: %+v", res)
	}
	if res.PowerCycles < 1 {
		t.Fatal("at least one power-on expected")
	}
	if res.Breakdown.Ckpt <= 0 {
		t.Fatal("checkpointing must cost energy")
	}
	if res.SystemEfficiency <= 0 || res.SystemEfficiency > 1 {
		t.Fatalf("system efficiency %v out of (0,1]", res.SystemEfficiency)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Delivered() must equal what the capacitor handed to the load;
	// harvested == charged-side flows + conversion loss (+ spill).
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	// All load-side categories must be non-negative.
	for name, v := range map[string]units.Energy{
		"infer": b.Infer, "nvmio": b.NVMIO, "static": b.Static,
		"ckpt": b.Ckpt, "wasted": b.Wasted,
	} {
		if v < 0 {
			t.Errorf("%s = %v, want >= 0", name, v)
		}
	}
	// The load cannot consume more than was harvested minus losses plus
	// the initial capacitor charge.
	init := units.EnergyAtVoltage(cfg.Energy.Spec().Cap, cfg.Energy.Spec().PMIC.UOff)
	avail := float64(b.Harvested) - float64(b.ConversionLoss) + float64(init)
	if float64(b.Delivered()) > avail+1e-9 {
		t.Fatalf("delivered %v exceeds available %v", b.Delivered(), avail)
	}
}

func TestDarkSlowerThanBright(t *testing.T) {
	bright, err := Run(harSetup(t, 8, 100e-6, solar.Bright()))
	if err != nil {
		t.Fatal(err)
	}
	dark, err := Run(harSetup(t, 8, 100e-6, solar.Dark()))
	if err != nil {
		t.Fatal(err)
	}
	if !bright.Completed || !dark.Completed {
		t.Fatal("both should complete")
	}
	if dark.E2ELatency <= bright.E2ELatency {
		t.Fatalf("dark (%v) should be slower than bright (%v)", dark.E2ELatency, bright.E2ELatency)
	}
}

func TestBiggerPanelFaster(t *testing.T) {
	small, err := Run(harSetup(t, 2, 100e-6, solar.Bright()))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(harSetup(t, 20, 100e-6, solar.Bright()))
	if err != nil {
		t.Fatal(err)
	}
	if !small.Completed || !big.Completed {
		t.Fatal("both should complete")
	}
	if big.E2ELatency >= small.E2ELatency {
		t.Fatalf("20cm² (%v) should beat 2cm² (%v)", big.E2ELatency, small.E2ELatency)
	}
}

func TestHugeCapacitorLeakageUnavailability(t *testing.T) {
	// Figure 2(b): a 10mF capacitor under dim light leaks more than it
	// harvests — the inference never completes.
	es, err := energy.NewSolar(energy.Spec{PanelArea: 1, Cap: 10e-3}, solar.Dark())
	if err != nil {
		t.Fatal(err)
	}
	hw := msp430.Config{}.HW()
	plans, err := intermittent.PlanWorkload(dnn.FCNet(), dataflow.OS, hw, 0.05, intermittent.FixedBudget(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Energy: es, HW: hw, Plans: plans, MaxTime: 500, Step: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("leakage-dominated system should never complete")
	}
	if !math.IsInf(float64(res.E2ELatency), 1) {
		t.Fatal("latency should be +Inf for unavailable systems")
	}
	if res.Breakdown.CapLeakage <= 0 {
		t.Fatal("leakage should be recorded")
	}
}

func TestAnalyticAgreesWithStepSim(t *testing.T) {
	// The closed-form Eq. 5/7 estimate must track the step simulator
	// within ~25% on a charging-dominated scenario.
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	step, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ana := Analytic(cfg.Energy, cfg.Plans)
	if !ana.Completed {
		t.Fatal("analytic should deem this feasible")
	}
	ratio := float64(step.E2ELatency) / float64(ana.E2ELatency)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("step %v vs analytic %v (ratio %.2f)", step.E2ELatency, ana.E2ELatency, ratio)
	}
}

func TestAnalyticEfficiencyConsistent(t *testing.T) {
	// Regression: the analytic evaluator's SystemEfficiency must use the
	// same formula as the step simulator — (Infer + NVMIO) / Harvested —
	// with the NVM tile traffic split out of Infer, not folded into it.
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	tot := intermittent.Sum(cfg.Plans)
	ana := AnalyticTotals(cfg.Energy, tot)
	if !ana.Completed {
		t.Fatal("analytic should deem this feasible")
	}
	b := ana.Breakdown
	if b.NVMIO <= 0 {
		t.Fatalf("analytic NVMIO = %v, want > 0 (split out of Infer)", b.NVMIO)
	}
	if b.Infer <= 0 {
		t.Fatalf("analytic Infer = %v, want > 0", b.Infer)
	}
	// The load-side categories must still sum to the plans' total energy.
	sum := float64(b.Infer + b.NVMIO + b.Static + b.Ckpt)
	if got, want := sum, float64(tot.Energy); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("breakdown sum %g != plan total %g", got, want)
	}
	want := float64(b.Infer+b.NVMIO) / float64(b.Harvested)
	if ana.SystemEfficiency != want {
		t.Fatalf("analytic efficiency %g != (Infer+NVMIO)/Harvested %g", ana.SystemEfficiency, want)
	}
	// And the step simulator reports the same formula over its own flows.
	step, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb := step.Breakdown
	if got, want := step.SystemEfficiency, float64(sb.Infer+sb.NVMIO)/float64(sb.Harvested); got != want {
		t.Fatalf("step efficiency %g != (Infer+NVMIO)/Harvested %g", got, want)
	}
	// The two estimates of the same quantity must be in the same regime.
	ratio := step.SystemEfficiency / ana.SystemEfficiency
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("step efficiency %g vs analytic %g (ratio %.2f)", step.SystemEfficiency, ana.SystemEfficiency, ratio)
	}
}

func TestAnalyticUnavailability(t *testing.T) {
	es, err := energy.NewSolar(energy.Spec{PanelArea: 1, Cap: 10e-3}, solar.Dark())
	if err != nil {
		t.Fatal(err)
	}
	hw := msp430.Config{}.HW()
	plans, err := intermittent.PlanWorkload(dnn.FCNet(), dataflow.OS, hw, 0.05, intermittent.FixedBudget(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	res := Analytic(es, plans)
	if res.Completed || !math.IsInf(float64(res.E2ELatency), 1) {
		t.Fatalf("leakage > harvest should be infeasible, got %+v", res)
	}
}

func TestStartChargedSkipsFirstCharge(t *testing.T) {
	cold := harSetup(t, 4, 1e-3, solar.Bright())
	warm := harSetup(t, 4, 1e-3, solar.Bright())
	warm.StartCharged = true
	rc, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if rw.E2ELatency >= rc.E2ELatency {
		t.Fatalf("warm start (%v) should beat cold start (%v)", rw.E2ELatency, rc.E2ELatency)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	a := harSetup(t, 8, 100e-6, solar.Bright())
	a.Jitter = 0.1
	a.Seed = 7
	b := harSetup(t, 8, 100e-6, solar.Bright())
	b.Jitter = 0.1
	b.Seed = 7
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.E2ELatency != rb.E2ELatency {
		t.Fatal("same seed must reproduce identical runs")
	}
	c := harSetup(t, 8, 100e-6, solar.Bright())
	c.Jitter = 0.1
	c.Seed = 8
	rcRes, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if rcRes.E2ELatency == ra.E2ELatency && rcRes.Breakdown == ra.Breakdown {
		t.Fatal("different seeds should perturb the run")
	}
}

func TestBrownoutRetriesWithTinyCapacitor(t *testing.T) {
	// Under the dark environment the harvest cannot sustain the MSP430's
	// active draw, so a multi-millijoule workload needs several energy
	// cycles: expect multiple power cycles, but still completion.
	es, err := energy.NewSolar(energy.Spec{PanelArea: 8, Cap: 100e-6}, solar.Dark())
	if err != nil {
		t.Fatal(err)
	}
	hw := msp430.Config{}.HW()
	budget, _ := es.CycleBudget(msp430.Config{}.ActivePower())
	if math.IsInf(float64(budget), 1) {
		t.Fatal("setup: expected a finite cycle budget in the dark")
	}
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, hw, 0.05, intermittent.FixedBudget(budget*0.9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Energy: es, HW: hw, Plans: plans, Step: 0.2e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("should complete despite brownouts: %+v", res)
	}
	if res.PowerCycles < 2 {
		t.Fatalf("expected multiple energy cycles, got %d", res.PowerCycles)
	}
}

func TestAccelWorkloadOnSim(t *testing.T) {
	// A future-AuT scenario: ResNet18 tiles on a 30cm² panel should
	// complete within the default horizon using the analytic path and a
	// coarse step sim.
	es, err := energy.NewSolar(energy.Spec{PanelArea: 30, Cap: 1e-3}, solar.Bright())
	if err != nil {
		t.Fatal(err)
	}
	cfgHW := dataflow.HW{
		NPE: 64, CacheBytes: 512, VMBytes: 140 * units.KB,
		EMAC: 16e-12, EVMPerByte: 2e-12, ENVMReadPerByte: 100e-12, ENVMWritePerByte: 200e-12,
		TMAC: 17e-9, NVMBytesPerSec: 300e6, PMemPerByte: 100e-12, PIdle: 150e-6,
	}
	eAvail := es.AvailablePerCycle(1)
	plans, err := intermittent.PlanWorkload(dnn.HAR(), dataflow.OS, cfgHW, 0.05, intermittent.FixedBudget(eAvail))
	if err != nil {
		t.Fatal(err)
	}
	res := Analytic(es, plans)
	if !res.Completed {
		t.Fatal("analytic says infeasible")
	}
}
