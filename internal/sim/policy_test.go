package sim

import (
	"math"
	"strings"
	"testing"

	"chrysalis/internal/solar"
)

func TestPolicyString(t *testing.T) {
	if PolicyEveryTile.String() != "every-tile" ||
		PolicyAdaptive.String() != "adaptive" ||
		PolicyNone.String() != "none" {
		t.Fatal("policy names")
	}
	if !strings.Contains(Policy(9).String(), "9") {
		t.Fatal("unknown policy name")
	}
}

func TestPolicyValidation(t *testing.T) {
	cfg := harSetup(t, 8, 100e-6, solar.Bright())
	cfg.Policy = Policy(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown policy should fail validation")
	}
	cfg = harSetup(t, 8, 100e-6, solar.Bright())
	cfg.AdaptiveHeadroom = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative headroom should fail validation")
	}
}

func TestAdaptiveSavesFewerCheckpoints(t *testing.T) {
	// Under stable bright power the adaptive policy should skip most
	// saves (ample headroom), spend less checkpoint energy, and still
	// complete.
	eager := harSetup(t, 8, 470e-6, solar.Bright())
	re, err := Run(eager)
	if err != nil {
		t.Fatal(err)
	}
	lazy := harSetup(t, 8, 470e-6, solar.Bright())
	lazy.Policy = PolicyAdaptive
	rl, err := Run(lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Completed || !rl.Completed {
		t.Fatal("both policies should complete")
	}
	if rl.Checkpoints >= re.Checkpoints {
		t.Fatalf("adaptive (%d saves) should save less than every-tile (%d)",
			rl.Checkpoints, re.Checkpoints)
	}
	if rl.Breakdown.Ckpt >= re.Breakdown.Ckpt {
		t.Fatalf("adaptive ckpt energy %v should be below every-tile %v",
			rl.Breakdown.Ckpt, re.Breakdown.Ckpt)
	}
}

func TestAdaptiveCompletesUnderChoppyPower(t *testing.T) {
	// Dark environment forces several brownouts; adaptive must still
	// make forward progress (it saves when headroom shrinks).
	cfg := harSetup(t, 8, 100e-6, solar.Dark())
	cfg.Policy = PolicyAdaptive
	cfg.Step = 0.2e-3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("adaptive should complete under intermittent power: %+v", res)
	}
	if res.PowerCycles < 2 {
		t.Skip("scenario did not produce multiple cycles")
	}
}

func TestPolicyNoneFailsUnderIntermittentPower(t *testing.T) {
	// Without checkpoints, a workload whose energy exceeds one cycle's
	// budget restarts forever — the motivating failure of non-
	// intermittent designs.
	cfg := harSetup(t, 8, 100e-6, solar.Dark())
	cfg.Policy = PolicyNone
	cfg.MaxTime = 120
	cfg.Step = 0.5e-3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("checkpoint-free execution should not survive power cycling")
	}
	if !math.IsInf(float64(res.E2ELatency), 1) {
		t.Fatal("latency should be infinite")
	}
	if res.TileRetries == 0 {
		t.Fatal("retries should be recorded")
	}
}

func TestPolicyNoneSucceedsWithinOneCycle(t *testing.T) {
	// With a big capacitor and bright light the whole inference fits a
	// single energy cycle — then skipping checkpoints is strictly
	// cheaper.
	eager := harSetup(t, 20, 10e-3, solar.Bright())
	re, err := Run(eager)
	if err != nil {
		t.Fatal(err)
	}
	lazy := harSetup(t, 20, 10e-3, solar.Bright())
	lazy.Policy = PolicyNone
	rl, err := Run(lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Completed || !rl.Completed {
		t.Fatal("both should complete within one cycle")
	}
	if rl.Checkpoints != 0 {
		t.Fatalf("policy none saved %d checkpoints", rl.Checkpoints)
	}
	if rl.Breakdown.Ckpt > re.Breakdown.Ckpt {
		t.Fatal("checkpoint-free should not spend more ckpt energy")
	}
}

func TestRollbackAccountingStaysConsistent(t *testing.T) {
	// Under adaptive with rollbacks, TilesDone must end at the full
	// count and no breakdown category may be negative.
	cfg := harSetup(t, 8, 100e-6, solar.Dark())
	cfg.Policy = PolicyAdaptive
	cfg.Step = 0.2e-3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Skip("scenario unexpectedly infeasible")
	}
	want := 0
	for _, p := range cfg.Plans {
		want += p.Cost.NTileEffective
	}
	if res.TilesDone != want {
		t.Fatalf("tiles done %d, want %d", res.TilesDone, want)
	}
	b := res.Breakdown
	for name, v := range map[string]float64{
		"infer": float64(b.Infer), "nvmio": float64(b.NVMIO),
		"static": float64(b.Static), "ckpt": float64(b.Ckpt), "wasted": float64(b.Wasted),
	} {
		if v < 0 {
			t.Errorf("%s went negative: %v", name, v)
		}
	}
}
