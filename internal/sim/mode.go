package sim

import (
	"fmt"
	"math"
)

// Mode selects which simulator core executes a run. The zero value is
// ModeEvent: the event-driven analytic simulator, the default for
// search and serving. ModeStep is the bit-honest fixed-step oracle;
// ModeDifferential runs both and fails loudly on divergence.
type Mode int

const (
	// ModeEvent solves quiet windows in closed form (eventsim.go).
	ModeEvent Mode = iota
	// ModeStep grinds every dt through the step oracle (Run).
	ModeStep
	// ModeDifferential runs the oracle and the event simulator on the
	// same configuration and errors when they diverge beyond
	// DiffRelTol. Slowest; for validation and debugging.
	ModeDifferential
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeEvent:
		return "event"
	case ModeStep:
		return "step"
	case ModeDifferential:
		return "differential"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses the -sim-mode flag values.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "event":
		return ModeEvent, nil
	case "step":
		return ModeStep, nil
	case "differential", "diff":
		return ModeDifferential, nil
	default:
		return 0, fmt.Errorf("sim: unknown mode %q (want event, step or differential)", s)
	}
}

// RunMode executes one inference under the selected simulator mode.
func RunMode(cfg Config, mode Mode) (Result, error) {
	switch mode {
	case ModeStep:
		return Run(cfg)
	case ModeDifferential:
		return RunDifferential(cfg)
	default:
		return RunEvent(cfg)
	}
}

// DiffRelTol is the relative tolerance on continuous quantities when
// comparing the event simulator against the step oracle. Discrete
// counters must match exactly.
const DiffRelTol = 1e-6

// RunDifferential runs the step oracle and the event simulator on the
// same configuration and returns the event result, or an error naming
// the first diverging quantity. The oracle runs first on a copy with
// observers stripped, so the caller's Trace, Recorder and final
// subsystem state all reflect the event-simulator pass.
func RunDifferential(cfg Config) (Result, error) {
	oracle := cfg
	oracle.Trace = nil
	oracle.Record = nil
	oracle.SampleEvery = 0
	stepRes, err := Run(oracle)
	if err != nil {
		return Result{}, err
	}
	evRes, err := RunEvent(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := DiffResults(evRes, stepRes, DiffRelTol); err != nil {
		return evRes, fmt.Errorf("sim: event/step divergence: %w", err)
	}
	return evRes, nil
}

// DiffResults compares an event-simulator result against the step
// oracle's: discrete counters exactly, continuous quantities within
// relTol relative (with a small absolute floor for quantities near
// zero). A nil error means the results agree.
func DiffResults(event, step Result, relTol float64) error {
	if event.Completed != step.Completed {
		return fmt.Errorf("Completed: event=%v step=%v", event.Completed, step.Completed)
	}
	ints := [...]struct {
		name string
		e, s int
	}{
		{"PowerCycles", event.PowerCycles, step.PowerCycles},
		{"Checkpoints", event.Checkpoints, step.Checkpoints},
		{"Resumes", event.Resumes, step.Resumes},
		{"TileRetries", event.TileRetries, step.TileRetries},
		{"TilesDone", event.TilesDone, step.TilesDone},
	}
	for _, c := range ints {
		if c.e != c.s {
			return fmt.Errorf("%s: event=%d step=%d", c.name, c.e, c.s)
		}
	}
	floats := [...]struct {
		name     string
		e, s     float64
		absFloor float64
	}{
		{"E2ELatency", float64(event.E2ELatency), float64(step.E2ELatency), 1e-9},
		{"ActiveTime", float64(event.ActiveTime), float64(step.ActiveTime), 1e-9},
		{"Breakdown.Infer", float64(event.Breakdown.Infer), float64(step.Breakdown.Infer), 1e-12},
		{"Breakdown.NVMIO", float64(event.Breakdown.NVMIO), float64(step.Breakdown.NVMIO), 1e-12},
		{"Breakdown.Static", float64(event.Breakdown.Static), float64(step.Breakdown.Static), 1e-12},
		{"Breakdown.Ckpt", float64(event.Breakdown.Ckpt), float64(step.Breakdown.Ckpt), 1e-12},
		{"Breakdown.Wasted", float64(event.Breakdown.Wasted), float64(step.Breakdown.Wasted), 1e-12},
		{"Breakdown.Harvested", float64(event.Breakdown.Harvested), float64(step.Breakdown.Harvested), 1e-12},
		{"Breakdown.ConversionLoss", float64(event.Breakdown.ConversionLoss), float64(step.Breakdown.ConversionLoss), 1e-12},
		{"Breakdown.CapLeakage", float64(event.Breakdown.CapLeakage), float64(step.Breakdown.CapLeakage), 1e-12},
		{"Breakdown.SpilledHarvest", float64(event.Breakdown.SpilledHarvest), float64(step.Breakdown.SpilledHarvest), 1e-12},
		{"SystemEfficiency", event.SystemEfficiency, step.SystemEfficiency, 1e-12},
	}
	for _, c := range floats {
		if !relClose(c.e, c.s, relTol, c.absFloor) {
			return fmt.Errorf("%s: event=%g step=%g (rel %g)", c.name, c.e, c.s, relDiff(c.e, c.s))
		}
	}
	return nil
}

// relClose reports |a−b| ≤ relTol·max(|a|,|b|) + absFloor, treating
// identical values (including equal infinities) as close.
func relClose(a, b, relTol, absFloor float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Abs(a)
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) <= relTol*scale+absFloor
}

// relDiff is the symmetric relative difference, for error messages.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}
