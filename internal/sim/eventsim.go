// Event-driven analytic co-simulator: the same co-simulation as
// runOnce, but quiet windows — stretches of steps where nothing
// discrete can happen (no gate transition, no tile boundary, no
// checkpoint, no spill, no starvation) — are solved in closed form by
// the segment recurrence (internal/energy.Segment) and applied as one
// multi-step jump instead of being ground out step by step.
//
// The step simulator remains the bit-honest oracle. The event path
// reuses the identical stepper state and literal step() for every step
// on which an event can fire, and its jumps are built so that:
//
//   - tile-progress arithmetic is replayed bitwise (prefix-sum memo of
//     the repeated float addition), so every discrete counter —
//     completions, power cycles, checkpoints, resumes, retries — lands
//     on exactly the same step as the oracle;
//   - jump energy flows are closed under the recorder's ledger
//     identities by construction (leak is the residual of the
//     capacitor balance), so the audit invariants hold exactly;
//   - continuous accumulators (breakdown, latency) agree with the
//     oracle to fp accumulation order, far inside 1e-6 relative.
//
// Runs the closed form cannot cover — jitter enabled, time-varying
// harvest, or a leak constant outside the segment solver's validity
// range — fall back to pure literal stepping, which is the oracle.
package sim

import (
	"math"
	"sync"
	"sync/atomic"

	"chrysalis/internal/energy"
	"chrysalis/internal/units"
)

// minJump is the smallest window worth jumping: below this the segment
// bookkeeping costs about as much as the literal steps it would skip.
const minJump = 2

// Process-wide fastpath-vs-fallback counters, exported on /metrics.
var (
	statFastSegments atomic.Int64 // analytic jumps taken
	statFastSteps    atomic.Int64 // literal steps those jumps replaced
	statLiteralSteps atomic.Int64 // steps executed by the oracle loop
	statFallbackRuns atomic.Int64 // runs that never qualified for jumps
)

// EventStats returns the cumulative event-simulator counters:
// fastSegments analytic jumps covering fastSteps steps, literalSteps
// bit-honest steps, and fallbackRuns whole runs that fell back to pure
// stepping (jitter, time-varying harvest, or out-of-range leak).
func EventStats() (fastSegments, fastSteps, literalSteps, fallbackRuns int64) {
	return statFastSegments.Load(), statFastSteps.Load(),
		statLiteralSteps.Load(), statFallbackRuns.Load()
}

// RunEvent executes one inference on the event-driven simulator. It
// accepts exactly the configurations Run does and produces the same
// Result, Event stream and Recorder channels; see the package comment
// for the agreement contract.
func RunEvent(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	es := cfg.Energy
	es.Reset()
	if cfg.StartCharged {
		es.Cap.SetVoltage(es.Spec().PMIC.UOn)
	} else {
		es.Cap.SetVoltage(es.Spec().PMIC.UOff)
	}
	res, _ := runOnceEvent(cfg, 0)
	return res, nil
}

// runOnceEvent is the event-mode counterpart of runOnce: same contract,
// analytic jumps interleaved with literal steps.
func runOnceEvent(cfg Config, start units.Seconds) (Result, units.Seconds) {
	s := newStepper(cfg, start)
	var f fastPath
	if !f.init(s) {
		statFallbackRuns.Add(1)
		var lit int64
		for s.tm < s.maxT {
			s.step()
			lit++
			if s.res.Completed {
				break
			}
		}
		statLiteralSteps.Add(lit)
		return s.finish()
	}
	var lit int64
	for s.tm < s.maxT {
		n := f.quietSteps()
		if n >= minJump {
			f.jump(n)
			if s.tm >= s.maxT {
				break
			}
			n = 0
		}
		// A short quiet window is cheaper stepped than jumped, but it
		// is still proven quiet: run its n steps plus the first step an
		// event may fire on literally, without re-solving in between.
		for i := 0; i <= n; i++ {
			s.step()
			lit++
			if s.res.Completed || s.tm >= s.maxT {
				break
			}
		}
		if s.res.Completed {
			break
		}
	}
	statLiteralSteps.Add(lit)
	statFastSegments.Add(f.segments)
	statFastSteps.Add(f.fastSteps)
	return s.finish()
}

// fastPath holds the per-run constants of the analytic jump machinery
// plus the window parameters handed from quietSteps to jump.
type fastPath struct {
	s    *stepper
	kcap float64
	capC float64

	hRaw units.Energy // raw transducer energy per step
	hCap units.Energy // capacitor-side harvest credit per step

	eOn, eOff float64 // gate thresholds, joules
	spill     float64 // rated ceiling minus harvest credit, joules
	invDt     float64 // 1/dt, hoisted out of the per-call limit math

	offSeg energy.Segment // the gate-Off recurrence (load debit 0)
	// offSpill is whether the Off trajectory can reach the spill target
	// at all (its asymptote exceeds it); when false the crossing solver
	// would return "never" for every start, so the call is skipped.
	offSpill bool

	// Window parameters, set by quietSteps and consumed by jump (on
	// selects between offSeg and tileSeg; a pointer field would chain
	// the fastPath to its own address and force it onto the heap).
	on        bool
	statShare units.Energy // static share of delivered energy per step
	io, inf   units.Energy // NVM / compute share of tile work per step
	table     *prefixTable // progress prefix sums of the current tile

	// Cache of the On-window constants, valid while the stepper stays
	// on (tileIdx, tileNeed): quietSteps runs between literal steps and
	// the segment build costs a log, so recomputing per tile rather
	// than per call matters.
	tileIdx    int
	tileNeed   units.Energy
	tileOK     bool
	tileSeg    energy.Segment
	tileStarve float64 // starvation crossing target, joules
	// tileChkStarve / tileChkSpill gate the starvation and spill
	// crossing solves: starvation is subsumed by the brownout crossing
	// when its target sits at or below U_off, and spill is unreachable
	// when the On asymptote sits at or below the spill target.
	tileChkStarve bool
	tileChkSpill  bool
	tileShare     units.Energy
	tileIO        units.Energy
	tileInf       units.Energy
	tileTab       *prefixTable

	segments  int64
	fastSteps int64
}

// init qualifies a run for analytic jumps. It returns false — pure
// literal stepping — when the per-step flows cannot be proven constant
// (jitter, time-varying harvest) or the leak recurrence is outside the
// segment solver's validity range.
func (f *fastPath) init(s *stepper) bool {
	if s.cfg.Jitter != 0 {
		return false
	}
	raw, ok := s.es.SteadyHarvest()
	if !ok {
		return false
	}
	spec := s.es.Spec()
	toCap := s.es.Ctrl.HarvestToCap(raw)
	hCap := units.MulPT(toCap, s.dt)
	offSeg, ok := energy.NewSegment(spec.Kcap, float64(s.dt), float64(hCap), 0)
	if !ok {
		return false
	}
	*f = fastPath{
		s:       s,
		kcap:    spec.Kcap,
		capC:    float64(spec.Cap),
		hRaw:    units.MulPT(raw, s.dt),
		hCap:    hCap,
		eOn:     float64(units.EnergyAtVoltage(spec.Cap, spec.PMIC.UOn)),
		eOff:    float64(units.EnergyAtVoltage(spec.Cap, spec.PMIC.UOff)),
		spill:   float64(units.EnergyAtVoltage(spec.Cap, spec.Rated)) - float64(hCap),
		invDt:   1 / float64(s.dt),
		offSeg:  offSeg,
		tileIdx: -1,
	}
	f.offSpill = offSeg.F > f.spill
	return true
}

// cacheTile derives the On-window constants for the stepper's current
// tile: the per-step load debit, its static/work/NVM split, the segment
// recurrence and the progress prefix table. tileOK=false marks a tile
// the fast path cannot jump (solver out of range, no net work, or an
// un-memoizable progress increment).
func (f *fastPath) cacheTile() {
	s := f.s
	f.tileIdx, f.tileNeed, f.tileOK = s.idx, s.curNeed, false
	t := s.tiles[s.idx]
	dyn := units.DivET(s.curNeed, t.time)
	effLoad := s.es.Ctrl.LoadOnCap(dyn + s.staticP)
	d := units.MulPT(effLoad, s.dt)
	seg, ok := energy.NewSegment(f.kcap, float64(s.dt), float64(f.hCap), float64(d))
	if !ok {
		return
	}
	statShare := units.MulPT(s.staticP, s.dt)
	if statShare > d {
		statShare = d
	}
	work := d - statShare
	if work <= 0 {
		// Static draw swallows the whole delivery: no tile progress,
		// nothing to solve for.
		return
	}
	tab := prefixFor(float64(work) / float64(s.curNeed))
	if tab == nil {
		return
	}
	f.tileSeg, f.tileShare = seg, statShare
	f.tileStarve = float64(d)/seg.A - float64(f.hCap)
	f.tileChkStarve = f.tileStarve > f.eOff
	f.tileChkSpill = seg.F > f.spill
	f.tileIO = units.Energy(float64(work) * t.ioFrac)
	f.tileInf = units.Energy(float64(work)) - f.tileIO
	f.tileTab = tab
	f.tileOK = true
}

// quietSteps returns the number of steps guaranteed not to fire an
// event from the current state: every constraint below is a
// conservative undershoot of its event's first-firing step. Counts of
// at least minJump also arm the window parameters for jump; shorter
// counts are a literal-step budget the caller may grind through without
// re-solving. 0 means the very next step may fire.
func (f *fastPath) quietSteps() int {
	s := f.s

	// Whole steps that keep the jump short of the horizon, with slack
	// for the literal steps that bracket it.
	limit := int(float64(s.maxT-s.tm)*f.invDt) - 2
	if limit < minJump {
		return 0
	}

	if !s.wasOn {
		// Charging toward U_on. Events possible: power-on (rising past
		// eOn) and harvest spill (the rated ceiling). The spill target
		// constrains each step's pre-harvest energy, so check e+h
		// against the ceiling.
		e0 := float64(s.es.Cap.Stored())
		seg := &f.offSeg
		n := limit
		if c := seg.StepsShortOfCrossing(e0, f.eOn); c < n {
			n = c
		}
		if f.offSpill {
			if c := seg.StepsShortOfCrossing(e0, f.spill); c < n {
				n = c
			}
		}
		if n < minJump {
			return n
		}
		f.on = false
		return n
	}

	if !s.inTile {
		// The next literal step opens the tile (EvTileStart).
		return 0
	}

	// Powered, mid-tile. Per-step flows are fixed by the current tile.
	if s.idx != f.tileIdx || s.curNeed != f.tileNeed {
		f.cacheTile()
	}
	if !f.tileOK {
		return 0
	}
	seg, tab := &f.tileSeg, f.tileTab

	// Tile completion. The oracle accumulates progress by repeated
	// float addition of r; the prefix memo replays that sum literally,
	// and the window is only trusted when the current progress is
	// bitwise on that trajectory — so completion lands on the oracle's
	// step.
	if s.stepsInTile >= tab.need || tab.sums[s.stepsInTile] != s.progress {
		return 0
	}
	n := tab.need - s.stepsInTile - 1
	if n > limit {
		n = limit
	}
	e0 := float64(s.es.Cap.Stored())
	// Brownout: end-of-step energy falling to the U_off threshold.
	if c := seg.StepsShortOfCrossing(e0, f.eOff); c < n {
		n = c
	}
	// Starvation: the step's demand exceeding post-leak energy, i.e.
	// start-of-step energy below d/A − h (normally U_off fires first
	// and the solve is skipped; this is insurance for tiny capacitors).
	if f.tileChkStarve {
		if c := seg.StepsShortOfCrossing(e0, f.tileStarve); c < n {
			n = c
		}
	}
	// Spill: the harvest credit hitting the rated ceiling (unreachable
	// under load for all but degenerate configurations).
	if f.tileChkSpill {
		if c := seg.StepsShortOfCrossing(e0, f.spill); c < n {
			n = c
		}
	}
	if n < minJump {
		return n
	}

	f.on = true
	f.statShare = f.tileShare
	f.io, f.inf = f.tileIO, f.tileInf
	f.table = tab
	return n
}

// jump advances the stepper by n steps analytically. The jump's energy
// flows are constructed to close the recorder's ledger identities
// exactly: leak is the residual of the capacitor balance, conversion
// loss the residual of the harvest identity, and the v² integral is the
// leak re-expressed through the leak model.
func (f *fastPath) jump(n int) {
	s := f.s
	seg := &f.offSeg
	if f.on {
		seg = &f.tileSeg
	}
	spec := s.es.Spec()
	e0 := float64(s.es.Cap.Stored())
	eN := seg.EnergyAfter(e0, n)
	nf := float64(n)

	charged := nf * seg.H
	delivered := nf * seg.D
	leaked := charged - delivered - (eN - e0)
	harv := nf * float64(f.hRaw)
	conv := harv - charged
	vsq := 0.0
	if kc := f.kcap * f.capC; kc > 0 {
		vsq = leaked / kc
	}

	s.es.Cap.SetVoltage(units.VoltageForEnergy(spec.Cap, units.Energy(eN)))
	s.tm += units.Seconds(nf * float64(s.dt))

	bd := &s.res.Breakdown
	bd.Harvested += units.Energy(harv)
	bd.ConversionLoss += units.Energy(conv)
	bd.CapLeakage += units.Energy(leaked)
	if f.on {
		s.res.ActiveTime += units.Seconds(nf * float64(s.dt))
		bd.Static += units.Energy(nf * float64(f.statShare))
		ioSeg := units.Energy(nf * float64(f.io))
		infSeg := units.Energy(nf * float64(f.inf))
		bd.NVMIO += ioSeg
		bd.Infer += infSeg
		s.tileSpentIO += ioSeg
		s.tileSpentInfer += infSeg
		s.stepsInTile += n
		s.progress = f.table.sums[s.stepsInTile]
	}

	if s.rec != nil {
		s.rec.segment(s.tm, s.dt, segmentReport{
			n:              n,
			harvested:      harv,
			charged:        charged,
			conversionLoss: conv,
			delivered:      delivered,
			leaked:         leaked,
			vsqIntegral:    vsq,
			on:             f.on,
		}, s.res.Breakdown)
	}

	f.segments++
	f.fastSteps += int64(n)
}

// prefixTable memoizes the oracle's tile-progress accumulation for one
// per-step increment r: sums[k] is the literal float64 result of adding
// r to zero k times, and need is the first k where that sum reaches 1
// (the step on which the oracle completes the tile). Repeated float
// addition is not invertible in closed form, so the memo is the only
// way to predict the completion step exactly.
type prefixTable struct {
	need int
	sums []float64 // len need+1, sums[0] = 0
}

const (
	// maxPrefixSteps bounds one table; tiles needing more steps than
	// this stay on the literal path.
	maxPrefixSteps = 1 << 21
	// maxPrefixTables bounds the process-wide memo. Increments are one
	// per (plan layer × jitter-free config), so real workloads use a
	// handful; the cap only guards against degenerate sweeps.
	maxPrefixTables = 4096
)

var (
	prefixTables sync.Map // math.Float64bits(r) -> *prefixTable
	prefixCount  atomic.Int64
)

// prefixFor returns the memoized prefix sums for increment r, building
// them on first use. nil means the increment is unusable (non-positive,
// non-finite, or the tile would take more than maxPrefixSteps steps)
// and the caller must step literally.
func prefixFor(r float64) *prefixTable {
	key := math.Float64bits(r)
	if v, ok := prefixTables.Load(key); ok {
		return v.(*prefixTable)
	}
	if !(r > 0) || math.IsInf(r, 1) || 1/r+2 > maxPrefixSteps {
		return nil
	}
	sums := make([]float64, 1, int(1/r)+2)
	p := 0.0
	for p < 1 {
		if len(sums) > maxPrefixSteps {
			return nil
		}
		p += r
		sums = append(sums, p)
	}
	tab := &prefixTable{need: len(sums) - 1, sums: sums}
	if prefixCount.Load() < maxPrefixTables {
		if _, loaded := prefixTables.LoadOrStore(key, tab); !loaded {
			prefixCount.Add(1)
		}
	}
	return tab
}
