package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMulPT(t *testing.T) {
	if got := MulPT(2, 3); got != 6 {
		t.Fatalf("MulPT(2W, 3s) = %v, want 6J", got)
	}
	if got := MulPT(0, 100); got != 0 {
		t.Fatalf("MulPT(0, 100) = %v, want 0", got)
	}
}

func TestDivEP(t *testing.T) {
	if got := DivEP(6, 2); got != 3 {
		t.Fatalf("DivEP(6J, 2W) = %v, want 3s", got)
	}
	if got := DivEP(1, 0); !math.IsInf(float64(got), 1) {
		t.Fatalf("DivEP with zero power = %v, want +Inf", got)
	}
	if got := DivEP(1, -2); !math.IsInf(float64(got), 1) {
		t.Fatalf("DivEP with negative power = %v, want +Inf", got)
	}
}

func TestDivET(t *testing.T) {
	if got := DivET(6, 3); got != 2 {
		t.Fatalf("DivET(6J, 3s) = %v, want 2W", got)
	}
	if got := DivET(6, 0); got != 0 {
		t.Fatalf("DivET with zero time = %v, want 0", got)
	}
}

func TestCapacitorEnergy(t *testing.T) {
	// ½·1mF·(3²−1.8²) = 0.5·1e-3·(9−3.24) = 2.88 mJ
	got := CapacitorEnergy(1e-3, 3.0, 1.8)
	want := 2.88e-3
	if !ApproxEqual(float64(got), want, 1e-9) {
		t.Fatalf("CapacitorEnergy = %v, want %v", got, want)
	}
	// Discharge direction is negative.
	if got := CapacitorEnergy(1e-3, 1.8, 3.0); got >= 0 {
		t.Fatalf("CapacitorEnergy(hi<lo) = %v, want negative", got)
	}
}

func TestVoltageEnergyRoundTrip(t *testing.T) {
	f := func(cMicro, vRaw uint16) bool {
		c := Capacitance(float64(cMicro)+1) * Microfarad
		v := Voltage(float64(vRaw%500)/100 + 0.01) // 0.01..5.0 V
		e := EnergyAtVoltage(c, v)
		back := VoltageForEnergy(c, e)
		return ApproxEqual(float64(back), float64(v), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoltageForEnergyEdges(t *testing.T) {
	if got := VoltageForEnergy(1e-3, -1); got != 0 {
		t.Fatalf("negative energy => %v, want 0V", got)
	}
	if got := VoltageForEnergy(0, 1); got != 0 {
		t.Fatalf("zero capacitance => %v, want 0V", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-13, 1e-9) {
		t.Error("values within absolute epsilon should be equal")
	}
	if !ApproxEqual(100, 100.5, 0.01) {
		t.Error("0.5% apart should pass 1% tolerance")
	}
	if ApproxEqual(100, 102, 0.01) {
		t.Error("2% apart should fail 1% tolerance")
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Energy(2.88e-3).String(), "2.88mJ"},
		{Energy(0).String(), "0J"},
		{Power(6e-3).String(), "6mW"},
		{Power(278e-3).String(), "278mW"},
		{Seconds(1.447).String(), "1.447s"},
		{Seconds(math.Inf(1)).String(), "inf"},
		{Capacitance(100e-6).String(), "100uF"},
		{Capacitance(10e-3).String(), "10mF"},
		{Voltage(3.3).String(), "3.3V"},
		{Current(30e-6).String(), "30uA"},
		{AreaCM2(8).String(), "8.00cm²"},
		{Bytes(8 * 1024).String(), "8.00KB"},
		{Bytes(512).String(), "512B"},
		{Bytes(2 * 1024 * 1024).String(), "2.00MB"},
		{Energy(1.5e-9).String(), "1.5nJ"},
		{Energy(3e-12).String(), "3pJ"},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %q, want %q", i, c.got, c.want)
		}
	}
}

func TestCapacitorEnergyProperty(t *testing.T) {
	// Splitting a discharge interval must conserve energy:
	// E(hi,lo) == E(hi,mid) + E(mid,lo).
	f := func(a, b, c uint8) bool {
		vs := []float64{float64(a)/51 + 0.1, float64(b)/51 + 0.1, float64(c)/51 + 0.1}
		hi, mid, lo := vs[0], vs[1], vs[2]
		if hi < mid {
			hi, mid = mid, hi
		}
		if mid < lo {
			mid, lo = lo, mid
		}
		if hi < mid {
			hi, mid = mid, hi
		}
		cap := Capacitance(470) * Microfarad
		whole := CapacitorEnergy(cap, Voltage(hi), Voltage(lo))
		split := CapacitorEnergy(cap, Voltage(hi), Voltage(mid)) + CapacitorEnergy(cap, Voltage(mid), Voltage(lo))
		return ApproxEqual(float64(whole), float64(split), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
