// Package units defines the physical quantities used throughout the
// CHRYSALIS models: energy, power, time, capacitance, voltage, area and
// data sizes. Each quantity is a distinct float64 type so that mixing,
// say, joules and watts is a compile-time error, while arithmetic within
// a quantity stays ordinary float math.
//
// Conventions: SI base units everywhere (joules, watts, seconds, farads,
// volts), except panel area which the paper quotes in cm² and data sizes
// which are bytes.
package units

import (
	"fmt"
	"math"
)

// Energy is an amount of energy in joules.
type Energy float64

// Power is a rate of energy in watts.
type Power float64

// Seconds is a duration in seconds. The simulator uses plain seconds
// rather than time.Duration because steps can be fractions of a
// nanosecond-free analytic quantity and we never interact with wall time.
type Seconds float64

// Capacitance is a capacitance in farads.
type Capacitance float64

// Voltage is an electric potential in volts.
type Voltage float64

// Current is an electric current in amperes.
type Current float64

// AreaCM2 is an area in square centimeters (the unit used by the paper
// for solar panels: 1 cm² to 30 cm²).
type AreaCM2 float64

// Bytes is a data size in bytes.
type Bytes float64

// Common scale helpers.
const (
	Microjoule Energy = 1e-6
	Millijoule Energy = 1e-3

	Microwatt Power = 1e-6
	Milliwatt Power = 1e-3

	Microfarad Capacitance = 1e-6
	Millifarad Capacitance = 1e-3

	Millisecond Seconds = 1e-3

	KB Bytes = 1024
	MB Bytes = 1024 * 1024
)

// MulPT returns the energy delivered by power p over duration t.
func MulPT(p Power, t Seconds) Energy { return Energy(float64(p) * float64(t)) }

// DivEP returns the time needed to accumulate energy e at power p.
// It returns +Inf for non-positive power.
func DivEP(e Energy, p Power) Seconds {
	if p <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(e) / float64(p))
}

// DivET returns the average power of energy e spent over duration t.
// It returns 0 for non-positive durations.
func DivET(e Energy, t Seconds) Power {
	if t <= 0 {
		return 0
	}
	return Power(float64(e) / float64(t))
}

// CapacitorEnergy returns the energy stored in capacitance c between
// voltages hi and lo: ½·C·(hi²−lo²). The result is negative when hi < lo,
// which callers use to represent discharge below a reference level.
func CapacitorEnergy(c Capacitance, hi, lo Voltage) Energy {
	return Energy(0.5 * float64(c) * (float64(hi)*float64(hi) - float64(lo)*float64(lo)))
}

// VoltageForEnergy returns the voltage a capacitor of capacitance c holds
// when charged with energy e above 0 V: sqrt(2E/C). Negative energies
// clamp to 0 V.
func VoltageForEnergy(c Capacitance, e Energy) Voltage {
	if e <= 0 || c <= 0 {
		return 0
	}
	return Voltage(math.Sqrt(2 * float64(e) / float64(c)))
}

// EnergyAtVoltage returns ½·C·V², the total energy stored at voltage v.
func EnergyAtVoltage(c Capacitance, v Voltage) Energy {
	return Energy(0.5 * float64(c) * float64(v) * float64(v))
}

// Clamp limits v to the inclusive range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute tolerance for values near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	if diff < 1e-12 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

// String implementations keep experiment output readable.

func (e Energy) String() string { return siString(float64(e), "J") }
func (p Power) String() string  { return siString(float64(p), "W") }
func (t Seconds) String() string {
	if math.IsInf(float64(t), 1) {
		return "inf"
	}
	return siString(float64(t), "s")
}
func (c Capacitance) String() string { return siString(float64(c), "F") }
func (v Voltage) String() string     { return siString(float64(v), "V") }
func (i Current) String() string     { return siString(float64(i), "A") }
func (a AreaCM2) String() string     { return fmt.Sprintf("%.2fcm²", float64(a)) }

func (b Bytes) String() string {
	switch {
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b/MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b/KB))
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// siString renders v with an SI prefix chosen so the mantissa lands in
// [1, 1000) where possible.
func siString(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return "0" + unit
	case abs >= 1:
		return trimFmt(v) + unit
	case abs >= 1e-3:
		return trimFmt(v*1e3) + "m" + unit
	case abs >= 1e-6:
		return trimFmt(v*1e6) + "u" + unit
	case abs >= 1e-9:
		return trimFmt(v*1e9) + "n" + unit
	default:
		return trimFmt(v*1e12) + "p" + unit
	}
}

func trimFmt(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	// Trim trailing zeros but keep at least one digit after the point,
	// then drop a bare trailing point.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
