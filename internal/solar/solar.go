// Package solar models the energy-harvesting environment and the solar
// panel of an AuT energy subsystem. It substitutes for the pvlib-based
// describer in the paper: CHRYSALIS consumes an environmental light
// coefficient k_eh (W/cm²) per inference and computes the harvested
// power as P_eh = A_eh · k_eh (paper Eq. 1).
//
// The paper assumes light is stable within a single inference (<5 min)
// but varies across inferences and across the day, so this package
// provides both constant environments (the "brighter"/"darker" pair
// used for search) and a diurnal clear-sky profile with optional cloud
// attenuation for trace-driven simulation.
package solar

import (
	"errors"
	"fmt"
	"math"

	"chrysalis/internal/units"
)

// Environment supplies the light coefficient k_eh at a given simulation
// time. Implementations must be safe for concurrent use; all provided
// implementations are immutable after construction.
type Environment interface {
	// Keh returns the instantaneous light coefficient in W/cm² at time t
	// (seconds since the start of the scenario).
	Keh(t units.Seconds) units.Power
	// Name identifies the environment in traces and experiment output.
	Name() string
}

// Canonical coefficients for the two search environments used throughout
// the paper's evaluation. The values are calibrated so that the iNAS
// reference operating point in Fig. 7 (P_in = 6 mW) corresponds to a
// 6 cm² panel under the bright environment, squarely inside the paper's
// 1–30 cm² panel design space.
const (
	// KehBright is the brighter environment coefficient: 1 mW/cm².
	KehBright units.Power = 1e-3
	// KehDark is the darker environment coefficient: 0.25 mW/cm².
	KehDark units.Power = 0.25e-3
)

// SteadyEnvironment is implemented by environments whose Keh is
// constant over all of scenario time. The event-driven simulator
// (internal/sim) uses it to prove the harvest term of its closed-form
// segment solver is time-invariant; time-varying environments simply
// don't implement it and fall back to step integration.
type SteadyEnvironment interface {
	Environment
	// SteadyKeh reports whether Keh(t) is the same for every t.
	SteadyKeh() bool
}

// Constant is an Environment with a fixed k_eh, matching the paper's
// assumption of stable light within one inference.
type Constant struct {
	K     units.Power
	Label string
}

// SteadyKeh implements SteadyEnvironment.
func (c Constant) SteadyKeh() bool { return true }

// Bright returns the canonical brighter search environment.
func Bright() Constant { return Constant{K: KehBright, Label: "bright"} }

// Dark returns the canonical darker search environment.
func Dark() Constant { return Constant{K: KehDark, Label: "dark"} }

// Keh implements Environment.
func (c Constant) Keh(units.Seconds) units.Power { return c.K }

// Name implements Environment.
func (c Constant) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("constant(%v/cm²)", c.K)
}

// Diurnal models a clear-sky day: k_eh follows a half-sine between
// sunrise and sunset and is zero at night. Peak is the coefficient at
// solar noon. This extends the paper's constant-per-inference model for
// long-horizon simulations (Sec. III-D "component extensions").
type Diurnal struct {
	Peak    units.Power   // k_eh at solar noon
	Sunrise units.Seconds // seconds since scenario start
	Sunset  units.Seconds
	Label   string
}

// NewDiurnal builds a clear-sky day profile. Sunset must be after
// sunrise and peak must be positive.
func NewDiurnal(peak units.Power, sunrise, sunset units.Seconds) (Diurnal, error) {
	if peak <= 0 {
		return Diurnal{}, fmt.Errorf("solar: peak coefficient must be positive, got %v", peak)
	}
	if sunset <= sunrise {
		return Diurnal{}, fmt.Errorf("solar: sunset (%v) must be after sunrise (%v)", sunset, sunrise)
	}
	return Diurnal{Peak: peak, Sunrise: sunrise, Sunset: sunset}, nil
}

// Keh implements Environment.
func (d Diurnal) Keh(t units.Seconds) units.Power {
	if t <= d.Sunrise || t >= d.Sunset {
		return 0
	}
	frac := float64(t-d.Sunrise) / float64(d.Sunset-d.Sunrise)
	return units.Power(float64(d.Peak) * math.Sin(math.Pi*frac))
}

// Name implements Environment.
func (d Diurnal) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "diurnal"
}

// Cloudy wraps an Environment and attenuates it with a deterministic
// pseudo-random cloud pattern. Attenuation is reproducible for a given
// seed, which keeps searches and tests deterministic.
type Cloudy struct {
	Base Environment
	// Depth is the maximum fractional attenuation in [0,1): 0.4 means
	// clouds can remove up to 40% of the light.
	Depth float64
	// Period is the characteristic cloud passage time.
	Period units.Seconds
	Seed   uint64
}

// NewCloudy validates and builds a cloudy wrapper.
func NewCloudy(base Environment, depth float64, period units.Seconds, seed uint64) (Cloudy, error) {
	if base == nil {
		return Cloudy{}, errors.New("solar: cloudy environment needs a base environment")
	}
	if depth < 0 || depth >= 1 {
		return Cloudy{}, fmt.Errorf("solar: cloud depth must be in [0,1), got %g", depth)
	}
	if period <= 0 {
		return Cloudy{}, fmt.Errorf("solar: cloud period must be positive, got %v", period)
	}
	return Cloudy{Base: base, Depth: depth, Period: period, Seed: seed}, nil
}

// Keh implements Environment. The attenuation is a smooth value-noise
// function of time so adjacent steps see coherent cloud cover.
func (c Cloudy) Keh(t units.Seconds) units.Power {
	base := c.Base.Keh(t)
	if base <= 0 || c.Depth == 0 {
		return base
	}
	phase := float64(t) / float64(c.Period)
	i := math.Floor(phase)
	frac := phase - i
	// Smoothstep between two hash-derived levels.
	a := hash01(uint64(int64(i)) ^ c.Seed)
	b := hash01(uint64(int64(i)+1) ^ c.Seed)
	s := frac * frac * (3 - 2*frac)
	atten := c.Depth * (a + (b-a)*s)
	return units.Power(float64(base) * (1 - atten))
}

// Name implements Environment.
func (c Cloudy) Name() string { return "cloudy(" + c.Base.Name() + ")" }

// hash01 maps a 64-bit value to [0,1) via splitmix64 finalization.
func hash01(x uint64) float64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Panel is a photovoltaic module of a given area. Per paper Eq. 1 the
// electrical output is area times the environment coefficient; module
// inefficiencies are folded into k_eh exactly as in the paper.
type Panel struct {
	Area units.AreaCM2
}

// Paper design-space bounds for the panel (Table IV/V).
const (
	MinPanelArea units.AreaCM2 = 1
	MaxPanelArea units.AreaCM2 = 30
)

// NewPanel validates the paper's design-space bounds (1–30 cm²).
func NewPanel(area units.AreaCM2) (Panel, error) {
	if area < MinPanelArea || area > MaxPanelArea {
		return Panel{}, fmt.Errorf("solar: panel area %v outside design space [%v, %v]",
			area, MinPanelArea, MaxPanelArea)
	}
	return Panel{Area: area}, nil
}

// Power returns P_eh = A_eh · k_eh(t) for the given environment and time.
func (p Panel) Power(env Environment, t units.Seconds) units.Power {
	return units.Power(float64(p.Area) * float64(env.Keh(t)))
}

// HarvestEnergy integrates the panel output over [t0, t0+dt] using the
// midpoint rule, which is exact for constant environments and
// second-order accurate for smooth profiles.
func (p Panel) HarvestEnergy(env Environment, t0, dt units.Seconds) units.Energy {
	mid := t0 + dt/2
	return units.MulPT(p.Power(env, mid), dt)
}

// TraceEnv replays a recorded irradiance trace: a sequence of k_eh
// samples at a fixed interval, linearly interpolated between samples
// and clamped at the ends. It supports driving the simulator with
// measured field data (the paper's pvlib-based describer consumes the
// same kind of series).
type TraceEnv struct {
	Samples  []units.Power
	Interval units.Seconds
	Label    string
}

// NewTraceEnv validates and builds a trace-driven environment.
func NewTraceEnv(samples []units.Power, interval units.Seconds, label string) (TraceEnv, error) {
	if len(samples) < 2 {
		return TraceEnv{}, fmt.Errorf("solar: trace needs at least 2 samples, got %d", len(samples))
	}
	if interval <= 0 {
		return TraceEnv{}, fmt.Errorf("solar: trace interval must be positive, got %v", interval)
	}
	for i, s := range samples {
		if s < 0 {
			return TraceEnv{}, fmt.Errorf("solar: trace sample %d is negative (%v)", i, s)
		}
	}
	return TraceEnv{Samples: samples, Interval: interval, Label: label}, nil
}

// Keh implements Environment by linear interpolation.
func (tr TraceEnv) Keh(t units.Seconds) units.Power {
	if t <= 0 {
		return tr.Samples[0]
	}
	pos := float64(t) / float64(tr.Interval)
	i := int(pos)
	if i >= len(tr.Samples)-1 {
		return tr.Samples[len(tr.Samples)-1]
	}
	frac := pos - float64(i)
	a, b := float64(tr.Samples[i]), float64(tr.Samples[i+1])
	return units.Power(a + (b-a)*frac)
}

// Name implements Environment.
func (tr TraceEnv) Name() string {
	if tr.Label != "" {
		return tr.Label
	}
	return fmt.Sprintf("trace(%d samples)", len(tr.Samples))
}
