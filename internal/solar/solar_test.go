package solar

import (
	"math"
	"testing"
	"testing/quick"

	"chrysalis/internal/units"
)

func TestConstantEnvironment(t *testing.T) {
	b := Bright()
	if b.Keh(0) != KehBright || b.Keh(1e6) != KehBright {
		t.Fatal("bright environment should be time-invariant")
	}
	if b.Name() != "bright" {
		t.Fatalf("Name = %q", b.Name())
	}
	d := Dark()
	if d.Keh(0) >= b.Keh(0) {
		t.Fatal("dark must harvest less than bright")
	}
	anon := Constant{K: 5e-4}
	if anon.Name() == "" {
		t.Fatal("anonymous constant should synthesize a name")
	}
}

func TestNewPanelBounds(t *testing.T) {
	if _, err := NewPanel(0.5); err == nil {
		t.Error("area below 1cm² should be rejected")
	}
	if _, err := NewPanel(31); err == nil {
		t.Error("area above 30cm² should be rejected")
	}
	p, err := NewPanel(8)
	if err != nil {
		t.Fatalf("NewPanel(8): %v", err)
	}
	if p.Area != 8 {
		t.Fatalf("area = %v", p.Area)
	}
}

func TestPanelPowerEq1(t *testing.T) {
	// Paper Eq. 1: P_eh = A_eh * k_eh. 6 cm² bright => 6 mW, the iNAS
	// reference operating point from Fig. 7.
	p, _ := NewPanel(6)
	got := p.Power(Bright(), 0)
	if !units.ApproxEqual(float64(got), 6e-3, 1e-12) {
		t.Fatalf("P_eh = %v, want 6mW", got)
	}
}

func TestHarvestEnergyConstant(t *testing.T) {
	p, _ := NewPanel(10)
	e := p.HarvestEnergy(Bright(), 0, 2)
	want := 2 * 10 * float64(KehBright)
	if !units.ApproxEqual(float64(e), want, 1e-12) {
		t.Fatalf("harvest = %v, want %v", e, want)
	}
}

func TestDiurnalShape(t *testing.T) {
	d, err := NewDiurnal(KehBright, 6*3600, 18*3600)
	if err != nil {
		t.Fatal(err)
	}
	if d.Keh(0) != 0 {
		t.Error("night before sunrise should be 0")
	}
	if d.Keh(20*3600) != 0 {
		t.Error("night after sunset should be 0")
	}
	noon := d.Keh(12 * 3600)
	if !units.ApproxEqual(float64(noon), float64(KehBright), 1e-9) {
		t.Errorf("noon = %v, want peak %v", noon, KehBright)
	}
	morning := d.Keh(8 * 3600)
	if morning <= 0 || morning >= noon {
		t.Errorf("morning %v should be between 0 and noon %v", morning, noon)
	}
	// Symmetry about noon.
	if !units.ApproxEqual(float64(d.Keh(9*3600)), float64(d.Keh(15*3600)), 1e-9) {
		t.Error("diurnal profile should be symmetric about noon")
	}
}

func TestNewDiurnalValidation(t *testing.T) {
	if _, err := NewDiurnal(0, 0, 10); err == nil {
		t.Error("zero peak should be rejected")
	}
	if _, err := NewDiurnal(1e-3, 10, 10); err == nil {
		t.Error("sunset == sunrise should be rejected")
	}
	if _, err := NewDiurnal(1e-3, 20, 10); err == nil {
		t.Error("sunset before sunrise should be rejected")
	}
}

func TestCloudyValidation(t *testing.T) {
	if _, err := NewCloudy(nil, 0.3, 60, 1); err == nil {
		t.Error("nil base should be rejected")
	}
	if _, err := NewCloudy(Bright(), 1.0, 60, 1); err == nil {
		t.Error("depth 1.0 should be rejected")
	}
	if _, err := NewCloudy(Bright(), -0.1, 60, 1); err == nil {
		t.Error("negative depth should be rejected")
	}
	if _, err := NewCloudy(Bright(), 0.3, 0, 1); err == nil {
		t.Error("zero period should be rejected")
	}
}

func TestCloudyBoundsAndDeterminism(t *testing.T) {
	c, err := NewCloudy(Bright(), 0.4, 120, 42)
	if err != nil {
		t.Fatal(err)
	}
	base := float64(KehBright)
	for i := 0; i < 1000; i++ {
		tm := units.Seconds(float64(i) * 3.7)
		v := float64(c.Keh(tm))
		if v > base || v < base*(1-0.4)-1e-15 {
			t.Fatalf("cloudy value %v at t=%v outside [%v, %v]", v, tm, base*0.6, base)
		}
	}
	c2, _ := NewCloudy(Bright(), 0.4, 120, 42)
	for i := 0; i < 100; i++ {
		tm := units.Seconds(float64(i) * 11.3)
		if c.Keh(tm) != c2.Keh(tm) {
			t.Fatal("same seed must give identical attenuation")
		}
	}
	c3, _ := NewCloudy(Bright(), 0.4, 120, 43)
	same := true
	for i := 0; i < 100; i++ {
		tm := units.Seconds(float64(i) * 11.3)
		if c.Keh(tm) != c3.Keh(tm) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different attenuation")
	}
	if c.Name() != "cloudy(bright)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCloudyZeroDepthPassthrough(t *testing.T) {
	c, _ := NewCloudy(Dark(), 0, 60, 7)
	for i := 0; i < 10; i++ {
		tm := units.Seconds(i)
		if c.Keh(tm) != Dark().Keh(tm) {
			t.Fatal("zero depth must pass the base through unchanged")
		}
	}
}

func TestHarvestMonotonicInArea(t *testing.T) {
	// Property: a bigger panel never harvests less (paper's size/perf
	// tradeoff direction).
	f := func(a, b uint8) bool {
		areaA := units.AreaCM2(float64(a%29) + 1)
		areaB := units.AreaCM2(float64(b%29) + 1)
		pa, _ := NewPanel(areaA)
		pb, _ := NewPanel(areaB)
		ea := pa.HarvestEnergy(Bright(), 0, 10)
		eb := pb.HarvestEnergy(Bright(), 0, 10)
		if areaA <= areaB {
			return ea <= eb+1e-18
		}
		return eb <= ea+1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHarvestMidpointAccuracy(t *testing.T) {
	// Integrating a diurnal half-sine across the whole day with small
	// steps should approach the analytic integral peak*(2/pi)*daylen.
	d, _ := NewDiurnal(KehBright, 0, 12*3600)
	p, _ := NewPanel(1)
	var sum units.Energy
	const dt = 60
	for t0 := units.Seconds(0); t0 < 12*3600; t0 += dt {
		sum += p.HarvestEnergy(d, t0, dt)
	}
	analytic := float64(KehBright) * (2 / math.Pi) * 12 * 3600
	if !units.ApproxEqual(float64(sum), analytic, 1e-4) {
		t.Fatalf("integrated %v, analytic %v", sum, analytic)
	}
}

func TestTraceEnv(t *testing.T) {
	if _, err := NewTraceEnv([]units.Power{1e-3}, 1, ""); err == nil {
		t.Error("single sample should fail")
	}
	if _, err := NewTraceEnv([]units.Power{1e-3, 2e-3}, 0, ""); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := NewTraceEnv([]units.Power{1e-3, -1}, 1, ""); err == nil {
		t.Error("negative sample should fail")
	}
	tr, err := NewTraceEnv([]units.Power{0, 1e-3, 0.5e-3}, 10, "field")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "field" {
		t.Fatalf("name = %q", tr.Name())
	}
	// Endpoints clamp.
	if tr.Keh(-5) != 0 {
		t.Error("before start should clamp to first sample")
	}
	if tr.Keh(1e6) != 0.5e-3 {
		t.Error("after end should clamp to last sample")
	}
	// Midpoint of first segment interpolates to 0.5 mW/cm².
	if got := tr.Keh(5); !units.ApproxEqual(float64(got), 0.5e-3, 1e-9) {
		t.Fatalf("interpolated = %v, want 0.5mW", got)
	}
	// Exactly on a sample.
	if got := tr.Keh(10); !units.ApproxEqual(float64(got), 1e-3, 1e-9) {
		t.Fatalf("at sample = %v", got)
	}
	anon, _ := NewTraceEnv([]units.Power{0, 1e-3}, 1, "")
	if anon.Name() == "" {
		t.Error("anonymous trace should synthesize a name")
	}
}
