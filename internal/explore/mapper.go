package explore

import (
	"fmt"
	"math"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/search"
	"chrysalis/internal/units"
)

// Mapper selects the SW-level optimizer realization (Table III lists
// two: the iNAS-like tile searcher and CHRYSALIS-GAMMA, a genetic
// mapping search).
type Mapper int

const (
	// MapperGreedy is the default analytical planner: per layer, the
	// cheapest feasible (dataflow, partition, N_tile) via Eq. 8/9. The
	// per-layer costs are independent, so greedy per-layer choice is
	// exact for the energy objective.
	MapperGreedy Mapper = iota
	// MapperGA is the CHRYSALIS-GAMMA realization: a genetic search
	// over the joint per-layer mapping genome. It exists to validate
	// the greedy planner and to support cost models with cross-layer
	// coupling.
	MapperGA
)

// String implements fmt.Stringer.
func (m Mapper) String() string {
	if m == MapperGA {
		return "gamma-ga"
	}
	return "greedy"
}

// gaMapperBudget sizes the inner GA. The genome has 3 genes per layer;
// budgets scale with depth.
func gaMapperConfig(layers int, seed int64) search.GAConfig {
	cfg := search.DefaultGA(seed)
	cfg.Population = 16
	cfg.Generations = 6 + layers/2
	if cfg.Generations > 40 {
		cfg.Generations = 40
	}
	return cfg
}

// innerSearchGA is the CHRYSALIS-GAMMA mapping search: one genome
// holds (dataflow, partition, tile-count index) for every layer and a
// GA minimizes the summed Eq. 5 energy subject to per-layer Eq. 8
// feasibility.
func innerSearchGA(sc Scenario, cand Candidate) ([]LayerChoice, error) {
	w := sc.Workload

	// Budget closure shared with the greedy mapper.
	subsystems := make([]*energy.Subsystem, 0, len(sc.Envs))
	for _, env := range sc.Envs {
		es, err := energy.NewSolar(energy.Spec{PanelArea: cand.PanelArea, Cap: cand.Cap}, env)
		if err != nil {
			return nil, err
		}
		subsystems = append(subsystems, es)
	}
	budget := func(load units.Power) units.Energy {
		minB := units.Energy(math.Inf(1))
		for _, es := range subsystems {
			b, _ := es.CycleBudget(load)
			if b < minB {
				minB = b
			}
		}
		if math.IsInf(float64(minB), 1) {
			return 1e6
		}
		return units.Energy(float64(minB) * budgetMargin)
	}

	dfs := dataflowChoices(sc)
	hws := make([]dataflow.HW, len(dfs))
	for i, df := range dfs {
		hw, err := platformHW(sc, cand, df)
		if err != nil {
			return nil, err
		}
		hws[i] = hw
	}

	// Candidate tile counts per layer per partition (precomputed).
	type layerSpace struct {
		ntiles [2][]int // indexed by partition
	}
	spaces := make([]layerSpace, len(w.Layers))
	for i, l := range w.Layers {
		spaces[i].ntiles[dataflow.ByChannel] = dataflow.CandidateNTiles(l, dataflow.ByChannel)
		spaces[i].ntiles[dataflow.BySpatial] = dataflow.CandidateNTiles(l, dataflow.BySpatial)
	}

	decode := func(genome []float64) ([]LayerChoice, float64) {
		choices := make([]LayerChoice, len(w.Layers))
		var total float64
		for i, l := range w.Layers {
			dfi := search.MapChoice(genome[3*i], len(dfs))
			part := dataflow.Partition(search.MapChoice(genome[3*i+1], 2))
			nt := spaces[i].ntiles[part]
			n := nt[search.MapChoice(genome[3*i+2], len(nt))]
			m := dataflow.Mapping{Dataflow: dfs[dfi], Partition: part, NTile: n}
			p, err := intermittent.PlanLayer(l, w.ElemBytes, m, hws[dfi], sc.Rexc)
			if err != nil {
				return nil, math.Inf(1) // tile does not fit VM
			}
			if avail := budget(p.TilePower()); avail <= 0 || p.TileEnergy > avail {
				return nil, math.Inf(1) // Eq. 8 violated
			}
			choices[i] = LayerChoice{Layer: l.Name, Mapping: p.Cost.Mapping, Plan: p}
			total += float64(p.Energy)
		}
		return choices, total
	}

	problem := search.Problem{
		Dim: 3 * len(w.Layers),
		Eval: func(genome []float64) float64 {
			_, v := decode(genome)
			return v
		},
	}
	seed := int64(float64(cand.PanelArea)*1e3) ^ int64(float64(cand.Cap)*1e9)
	res, err := search.RunGA(problem, gaMapperConfig(len(w.Layers), seed))
	if err != nil {
		return nil, err
	}
	if math.IsInf(res.BestValue, 1) {
		return nil, fmt.Errorf("explore: gamma mapper found no feasible mapping for %s on %s", w.Name, cand)
	}
	choices, _ := decode(res.Best)
	return choices, nil
}
