package explore

import (
	"fmt"
	"math"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/search"
)

// Mapper selects the SW-level optimizer realization (Table III lists
// two: the iNAS-like tile searcher and CHRYSALIS-GAMMA, a genetic
// mapping search).
type Mapper int

const (
	// MapperGreedy is the default analytical planner: per layer, the
	// cheapest feasible (dataflow, partition, N_tile) via Eq. 8/9. The
	// per-layer costs are independent, so greedy per-layer choice is
	// exact for the energy objective.
	MapperGreedy Mapper = iota
	// MapperGA is the CHRYSALIS-GAMMA realization: a genetic search
	// over the joint per-layer mapping genome. It exists to validate
	// the greedy planner and to support cost models with cross-layer
	// coupling.
	MapperGA
)

// String implements fmt.Stringer.
func (m Mapper) String() string {
	if m == MapperGA {
		return "gamma-ga"
	}
	return "greedy"
}

// gaMapperBudget sizes the inner GA. The genome has 3 genes per layer;
// budgets scale with depth.
func gaMapperConfig(layers int, seed int64) search.GAConfig {
	cfg := search.DefaultGA(seed)
	cfg.Population = 16
	cfg.Generations = 6 + layers/2
	if cfg.Generations > 40 {
		cfg.Generations = 40
	}
	return cfg
}

// innerSearchGA is the CHRYSALIS-GAMMA mapping search: one genome
// holds (dataflow, partition, tile-count index) for every layer and a
// GA minimizes the summed Eq. 5 energy subject to per-layer Eq. 8
// feasibility. Genome decoding resolves rungs from the fingerprint
// cache's ladders (binary search by tile count) instead of re-running
// the cost model per evaluation; only the winning genome's plans are
// materialized, into the caller's arena. The nested GA itself always
// runs serially (it never sets Workers) — the outer candidate loop is
// the parallel axis, and each call here is already confined to one
// worker.
func (e *Evaluator) innerSearchGA(worker int, cand Candidate, budget intermittent.BudgetFunc, a *evalArena) ([]*intermittent.Plan, error) {
	w := e.sc.Workload
	ls, err := e.ladderSetFor(worker, cand)
	if err != nil {
		return nil, err
	}

	// Candidate tile counts per layer per partition (precomputed); the
	// genome indexes the full candidate list, including counts the
	// ladder excluded as VM-infeasible.
	type layerSpace struct {
		ntiles [2][]int // indexed by partition
	}
	spaces := make([]layerSpace, len(w.Layers))
	for i, l := range w.Layers {
		spaces[i].ntiles[dataflow.ByChannel] = dataflow.CandidateNTiles(l, dataflow.ByChannel)
		spaces[i].ntiles[dataflow.BySpatial] = dataflow.CandidateNTiles(l, dataflow.BySpatial)
	}

	// resolve maps one layer's genes to its ladder and rung index; ok is
	// false when the tile count is VM-infeasible or the budget check
	// (Eq. 8) fails.
	resolve := func(genome []float64, i int) (*intermittent.Ladder, int, bool) {
		dfi := search.MapChoice(genome[3*i], len(ls.ctxs))
		part := dataflow.Partition(search.MapChoice(genome[3*i+1], 2))
		nt := spaces[i].ntiles[part]
		n := nt[search.MapChoice(genome[3*i+2], len(nt))]
		ld := ls.ladderAt(i, dfi, part)
		ri, ok := ld.ByNTile(n)
		if !ok {
			return nil, 0, false // tile does not fit VM
		}
		r := &ld.Rungs[ri]
		if avail := budget(r.Power); avail <= 0 || r.TileEnergy > avail {
			return nil, 0, false // Eq. 8 violated
		}
		return ld, ri, true
	}

	problem := search.Problem{
		Dim: 3 * len(w.Layers),
		Eval: func(genome []float64) float64 {
			var total float64
			for i := range w.Layers {
				ld, ri, ok := resolve(genome, i)
				if !ok {
					return math.Inf(1)
				}
				total += float64(ld.Rungs[ri].Energy)
			}
			return total
		},
	}
	seed := int64(float64(cand.PanelArea)*1e3) ^ int64(float64(cand.Cap)*1e9)
	res, err := search.RunGA(problem, gaMapperConfig(len(w.Layers), seed))
	if err != nil {
		return nil, err
	}
	if math.IsInf(res.BestValue, 1) {
		return nil, fmt.Errorf("explore: gamma mapper found no feasible mapping for %s on %s", w.Name, cand)
	}
	for i := range w.Layers {
		ld, ri, ok := resolve(res.Best, i)
		if !ok {
			return nil, fmt.Errorf("explore: gamma mapper winner unresolvable for layer %d of %s", i, w.Name)
		}
		ld.PlanInto(ri, &a.backing[i])
	}
	return a.plans, nil
}
