package explore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

// normalizeWarm strips the fields that legitimately differ between
// warm and cold runs — the tier pointer and the cache-traffic counters
// — so the rest of the Outcome can be compared bit for bit.
func normalizeWarm(out Outcome) Outcome {
	out.Scenario.Warm = nil
	out.Workers = 0
	out.CacheHits, out.CacheMisses, out.WarmHits = 0, 0, 0
	return out
}

// TestWarmColdWorkersBitIdentical is the warm tier's determinism
// contract: a search that reuses ladder sets a previous search built
// must return an Outcome bit-identical to a cold run, at any worker
// count, on every platform preset (MSP430, TPU-pinned and
// Eyeriss-pinned accelerators).
func TestWarmColdWorkersBitIdentical(t *testing.T) {
	tpu, eyeriss := accel.TPU, accel.Eyeriss
	presets := []struct {
		name string
		sc   Scenario
	}{
		{"msp430", Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}},
		{"accel-tpu", Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &tpu}},
		{"accel-eyeriss", Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &eyeriss}},
	}
	run := func(t *testing.T, sc Scenario, warm *WarmCache, workers int) Outcome {
		t.Helper()
		sc.Warm = warm
		cfg := smallGA(11)
		cfg.Workers = workers
		cfg.SerialCostFloor = -1
		out, err := Explore(sc, Full, cfg)
		if err != nil {
			t.Fatalf("Explore(workers=%d, warm=%v): %v", workers, warm != nil, err)
		}
		return out
	}
	for _, tc := range presets {
		t.Run(tc.name, func(t *testing.T) {
			cold := run(t, tc.sc, nil, 1)
			warm := NewWarmCache(64 << 20)
			// Prime the tier with one full search, then re-run: every
			// fingerprint the second search touches is warm-servable.
			run(t, tc.sc, warm, 1)
			primed := run(t, tc.sc, warm, 1)
			if primed.WarmHits == 0 {
				t.Fatalf("primed run reports WarmHits=0; warm tier never engaged (stats %+v)", warm.Stats())
			}
			if !reflect.DeepEqual(normalizeWarm(cold), normalizeWarm(primed)) {
				t.Errorf("warm run differs from cold\ncold: value=%v cand=%v\nwarm: value=%v cand=%v",
					cold.Value, cold.Best.Candidate, primed.Value, primed.Best.Candidate)
			}
			parallelWarm := run(t, tc.sc, warm, 8)
			if !reflect.DeepEqual(normalizeWarm(cold), normalizeWarm(parallelWarm)) {
				t.Errorf("warm 8-worker run differs from cold serial\ncold: value=%v\nwarm: value=%v",
					cold.Value, parallelWarm.Value)
			}
		})
	}
}

// TestWarmTierConcurrentSearches hammers one shared tier with many
// concurrent full searches (the chrysalisd shape: N worker goroutines,
// each running its own Explore against the process tier) and checks
// every one of them returns the cold reference Outcome bit for bit.
// Run under -race this also exercises the tier's locking end to end.
func TestWarmTierConcurrentSearches(t *testing.T) {
	tpu := accel.TPU
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &tpu}
	cfg := smallGA(11)
	cfg.SerialCostFloor = -1
	cold, err := Explore(sc, Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizeWarm(cold)

	warm := NewWarmCache(64 << 20)
	const searches = 8
	outs := make([]Outcome, searches)
	errs := make([]error, searches)
	var wg sync.WaitGroup
	for i := 0; i < searches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wsc := sc
			wsc.Warm = warm
			outs[i], errs[i] = Explore(wsc, Full, cfg)
		}(i)
	}
	wg.Wait()
	var warmHits int64
	for i := 0; i < searches; i++ {
		if errs[i] != nil {
			t.Fatalf("search %d: %v", i, errs[i])
		}
		warmHits += outs[i].WarmHits
		if !reflect.DeepEqual(want, normalizeWarm(outs[i])) {
			t.Errorf("concurrent warm search %d differs from cold reference (value %v vs %v)",
				i, outs[i].Value, cold.Value)
		}
	}
	if warmHits == 0 {
		t.Errorf("no search reported warm hits across %d concurrent runs (stats %+v)", searches, warm.Stats())
	}
	if st := warm.Stats(); st.Hits == 0 {
		t.Errorf("tier reports zero hits after %d identical searches: %+v", searches, st)
	}
}

// TestWarmCacheByteBoundAdversarial streams more distinct fingerprints
// through a deliberately tiny tier than it can hold and checks the
// byte bound holds after every single admission — an adversarial
// scanning workload must cause evictions, never growth past the cap.
func TestWarmCacheByteBoundAdversarial(t *testing.T) {
	tpu := accel.TPU
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: Accel, Objective: LatSP, Arch: &tpu}
	cand := func(i int) Candidate {
		return Candidate{
			PanelArea: 10,
			Cap:       470e-6,
			Accel:     &accel.Config{Arch: accel.TPU, NPE: 4 + i, CacheBytes: units.Bytes(256)},
		}
	}
	// Measure one representative set so the cap is sized to hold only a
	// handful of entries per shard regardless of workload geometry.
	probe, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := probe.cache.get(probe.sc, cand(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	one := ladderSetBytes(ls)
	if one <= 0 {
		t.Fatalf("ladderSetBytes = %d, want > 0", one)
	}
	warm := NewWarmCache(one * 2 * warmShards) // ~2 sets per shard
	const distinct = 64
	for i := 0; i < distinct; i++ {
		// Fresh evaluator per fingerprint: the per-search tier never
		// absorbs the traffic, every lookup reaches the warm tier.
		e, err := NewEvaluator(sc)
		if err != nil {
			t.Fatal(err)
		}
		e.cache.warm = warm
		if _, err := e.cache.get(e.sc, cand(i%48), 0); err != nil {
			t.Fatal(err)
		}
		st := warm.Stats()
		if st.Bytes > st.MaxBytes {
			t.Fatalf("after admission %d: resident %d bytes exceeds bound %d", i, st.Bytes, st.MaxBytes)
		}
		if st.Bytes < 0 || st.Entries < 0 {
			t.Fatalf("after admission %d: negative accounting %+v", i, st)
		}
	}
	st := warm.Stats()
	if st.Evictions == 0 {
		t.Errorf("48 distinct fingerprints through a ~%d-entry tier caused no evictions: %+v",
			2*warmShards, st)
	}
	if st.Entries == 0 {
		t.Errorf("tier drained to zero entries under steady admissions: %+v", st)
	}
}

// TestWarmCacheModelInvalidation checks cost-model versioning: entries
// stamped under an older model fingerprint are expired on contact and
// rebuilt, never served.
func TestWarmCacheModelInvalidation(t *testing.T) {
	tpu := accel.TPU
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: Accel, Objective: LatSP, Arch: &tpu}
	cand := Candidate{
		PanelArea: 10,
		Cap:       470e-6,
		Accel:     &accel.Config{Arch: accel.TPU, NPE: 8, CacheBytes: units.Bytes(256)},
	}
	warm := NewWarmCache(64 << 20)
	prime, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	prime.cache.warm = warm
	if _, err := prime.cache.get(prime.sc, cand, 0); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Entries != 1 {
		t.Fatalf("prime left %d entries, want 1", st.Entries)
	}

	// Simulate a cost-model bump: the process fingerprint moves, the
	// resident entry's stamp does not.
	warm.model++

	e, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	e.cache.warm = warm
	if _, err := e.cache.get(e.sc, cand, 0); err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Expirations != 1 {
		t.Errorf("stale entry not expired: %+v", st)
	}
	if e.WarmHits() != 0 {
		t.Errorf("stale entry served as a warm hit (WarmHits=%d)", e.WarmHits())
	}
	// The rebuild is stamped with the new model and serves the next
	// search normally.
	e2, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	e2.cache.warm = warm
	if _, err := e2.cache.get(e2.sc, cand, 0); err != nil {
		t.Fatal(err)
	}
	if e2.WarmHits() != 1 {
		t.Errorf("rebuilt entry not served warm (WarmHits=%d, stats %+v)", e2.WarmHits(), warm.Stats())
	}
}

// TestFlightGroupConcurrentSingleBuild checks the single-flight group
// that fixes the old double-build wart: any number of concurrent
// callers missing the same fingerprint run exactly one build, and
// every waiter shares the leader's pointer.
func TestFlightGroupConcurrentSingleBuild(t *testing.T) {
	var g flightGroup
	fp := fingerprint{platform: Accel, npe: 8}
	built := &ladderSet{}
	var builds int64
	var mu sync.Mutex

	const callers = 16
	start := make(chan struct{})
	results := make([]*ladderSet, callers)
	shares := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			ls, shared, err := g.do(fp, func() (*ladderSet, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				time.Sleep(10 * time.Millisecond) // hold the flight open for the waiters
				return built, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], shares[i] = ls, shared
		}(i)
	}
	close(start)
	wg.Wait()
	if builds != 1 {
		t.Errorf("%d concurrent callers ran %d builds, want exactly 1", callers, builds)
	}
	leaders := 0
	for i := 0; i < callers; i++ {
		if results[i] != built {
			t.Errorf("caller %d got a different pointer", i)
		}
		if !shares[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers report leading the build, want 1", leaders)
	}
}

// TestWarmCacheOversizeNeverRetained checks the admission size gate: a
// set bigger than a whole shard budget is served to its builder but
// never admitted (retaining it would evict everything else for an
// entry that can never fit).
func TestWarmCacheOversizeNeverRetained(t *testing.T) {
	warm := NewWarmCache(warmShards) // 1-byte shards: everything is oversize
	tpu := accel.TPU
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: Accel, Objective: LatSP, Arch: &tpu}
	e, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	e.cache.warm = warm
	cand := Candidate{
		PanelArea: 10,
		Cap:       470e-6,
		Accel:     &accel.Config{Arch: accel.TPU, NPE: 8, CacheBytes: units.Bytes(256)},
	}
	if _, err := e.cache.get(e.sc, cand, 0); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversize set retained: %+v", st)
	}
}

// TestNewWarmCacheDisabled checks the zero-bound convention: a
// non-positive budget returns the nil (disabled) tier, whose stats are
// all zero and which every caller can pass through unconditionally.
func TestNewWarmCacheDisabled(t *testing.T) {
	for _, n := range []int64{0, -1, -1 << 20} {
		if c := NewWarmCache(n); c != nil {
			t.Errorf("NewWarmCache(%d) = %p, want nil", n, c)
		}
	}
	var c *WarmCache
	if st := c.Stats(); st != (WarmStats{}) {
		t.Errorf("nil tier stats = %+v, want zero", st)
	}
	if r := c.HitRatio(); r != 0 {
		t.Errorf("nil tier hit ratio = %v, want 0", r)
	}
}

// TestModelFingerprintStable pins the fingerprint's dependence on the
// version constants: the same constants give the same value within a
// process, and the value folds in both model versions (documented by
// construction — this guards against the mixing loop degenerating).
func TestModelFingerprintStable(t *testing.T) {
	a, b := ModelFingerprint(), ModelFingerprint()
	if a != b {
		t.Fatalf("ModelFingerprint not stable: %#x vs %#x", a, b)
	}
	if a == 0 {
		t.Fatal("ModelFingerprint = 0; FNV mixing degenerated")
	}
}

// TestWarmCacheStatsString sanity-checks the stats snapshot arithmetic
// exposed to /metrics and /v1/fleet: MaxBytes reflects the configured
// bound rounded to whole shards.
func TestWarmCacheStatsString(t *testing.T) {
	c := NewWarmCache(32 << 20)
	st := c.Stats()
	want := int64(32<<20) / warmShards * warmShards
	if st.MaxBytes != want {
		t.Errorf("MaxBytes = %d, want %d", st.MaxBytes, want)
	}
	if got := fmt.Sprintf("%d", st.Entries); got != "0" {
		t.Errorf("fresh tier entries = %s, want 0", got)
	}
}
