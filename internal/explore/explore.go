// Package explore implements the CHRYSALIS Explorer: the bi-level
// search of Sec. III-C. The outer HW-level optimizer (a genetic
// algorithm over panel area, capacitor size and — for accelerator
// platforms — architecture, PE count and PE cache) proposes hardware
// configurations; for each, the inner SW-level optimizer searches the
// mapping space (dataflow × partition × tile count per layer) and
// returns the best achievable objective, which the outer loop then
// optimizes. Table VI's ablation baselines (wo/Cap … wo/IA) are the
// same search with the corresponding dimensions pinned to fixed
// defaults.
package explore

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"chrysalis/internal/accel"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/dnn"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/msp430"
	"chrysalis/internal/obs"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
	"chrysalis/internal/solar"
	"chrysalis/internal/storage"
	"chrysalis/internal/units"
)

// ErrNoFeasibleDesign reports that a search finished without finding
// any candidate satisfying every constraint. Callers that treat an
// empty search as a legitimate outcome (small GA budgets, sweeps over
// hostile scenarios) match it with errors.Is.
var ErrNoFeasibleDesign = errors.New("no feasible design")

// Objective selects the design target (Sec. IV): minimize latency under
// a solar-panel bound, minimize panel size under a latency bound, or
// minimize their product (space-time cost).
type Objective int

const (
	// Lat minimizes average latency subject to MaxPanel.
	Lat Objective = iota
	// SP minimizes panel area subject to MaxLatency.
	SP
	// LatSP minimizes latency × panel area.
	LatSP
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case Lat:
		return "lat"
	case SP:
		return "sp"
	case LatSP:
		return "lat*sp"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Objectives lists all objectives in paper order.
func Objectives() []Objective { return []Objective{Lat, SP, LatSP} }

// ParseObjective converts a name to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "lat":
		return Lat, nil
	case "sp":
		return SP, nil
	case "lat*sp", "latsp":
		return LatSP, nil
	default:
		return 0, fmt.Errorf("explore: unknown objective %q (want lat, sp or lat*sp)", s)
	}
}

// PlatformKind selects the inference-hardware family.
type PlatformKind int

const (
	// MSP is the existing-AuT platform (MSP430FR5994 + LEA, Table IV).
	MSP PlatformKind = iota
	// Accel is the future-AuT reconfigurable accelerator (Table V).
	Accel
)

// String implements fmt.Stringer.
func (p PlatformKind) String() string {
	if p == MSP {
		return "msp430"
	}
	return "accel"
}

// Baseline identifies a Table VI search-space ablation.
type Baseline int

const (
	// Full is CHRYSALIS: every dimension searched.
	Full Baseline = iota
	// WoCap pins the capacitor size.
	WoCap
	// WoSP pins the solar-panel area (the iNAS design approach).
	WoSP
	// WoEA pins the whole energy subsystem (SONIC/HAWAII-style).
	WoEA
	// WoPE pins the PE count.
	WoPE
	// WoCache pins the PE cache size.
	WoCache
	// WoIA pins the whole inference subsystem.
	WoIA
)

// String implements fmt.Stringer.
func (b Baseline) String() string {
	switch b {
	case Full:
		return "chrysalis"
	case WoCap:
		return "wo/Cap"
	case WoSP:
		return "wo/SP"
	case WoEA:
		return "wo/EA"
	case WoPE:
		return "wo/PE"
	case WoCache:
		return "wo/Cache"
	case WoIA:
		return "wo/IA"
	default:
		return fmt.Sprintf("baseline(%d)", int(b))
	}
}

// Baselines lists the Table VI rows in paper order (CHRYSALIS last).
func Baselines() []Baseline {
	return []Baseline{WoCap, WoSP, WoEA, WoPE, WoCache, WoIA, Full}
}

// Fixed defaults used when a baseline pins a dimension. The panel and
// capacitor values reproduce the iNAS reference operating point the
// paper replicates in Figure 7 (P_in = 6 mW ⇒ 6 cm² bright, C = 1 mF);
// the inference defaults are mid-range values a designer might pick
// without search.
const (
	FixedPanel units.AreaCM2     = 6
	FixedCap   units.Capacitance = 1e-3
	FixedNPE                     = 16
	FixedCache units.Bytes       = 256
)

// Scenario describes one design problem.
type Scenario struct {
	Workload dnn.Workload
	Platform PlatformKind
	// Envs are the solar environments to average over; nil selects the
	// paper's bright+dark pair.
	Envs      []solar.Environment
	Objective Objective
	// MaxPanel bounds the panel for the Lat objective (0 ⇒ 30 cm²).
	MaxPanel units.AreaCM2
	// MaxLatency bounds latency for the SP objective (0 ⇒ 30 s).
	MaxLatency units.Seconds
	// Rexc is the energy-exception rate (<0 ⇒ default).
	Rexc float64
	// Arch, when non-nil, pins the accelerator architecture instead of
	// searching it (the per-architecture columns of Figure 10).
	Arch *accel.Arch
	// Mapper selects the SW-level optimizer realization (greedy
	// analytical planner by default, or the CHRYSALIS-GAMMA genetic
	// mapper).
	Mapper Mapper
	// Trace, when non-nil, records evaluation spans (score vs. full
	// evaluate, ladder builds, per-span cache hit/miss attributes) for
	// Perfetto export. Nil disables tracing at zero cost; it never
	// affects results or cache identity.
	Trace *obs.Trace
	// SimMode selects the simulator core used whenever a candidate of
	// this scenario is co-simulated (SimulateCandidate and the
	// verification paths built on it). Search scoring always stays on
	// the analytic evaluator. The zero value is the event-driven
	// simulator (sim.ModeEvent).
	SimMode sim.Mode
	// Warm, when non-nil, attaches a process-lifetime warm-start tier:
	// the evaluator's plan cache reuses ladder sets previous searches
	// built for the same hardware fingerprint and publishes the sets it
	// builds. Nil keeps every search cold. Because ladder builds are
	// deterministic and cached sets immutable, attaching a tier never
	// affects results — warm and cold runs produce bit-identical
	// Outcomes.
	Warm *WarmCache
}

func (s Scenario) withDefaults() Scenario {
	if s.Envs == nil {
		s.Envs = []solar.Environment{solar.Bright(), solar.Dark()}
	}
	if s.MaxPanel == 0 {
		s.MaxPanel = solar.MaxPanelArea
	}
	if s.MaxLatency == 0 {
		s.MaxLatency = 30
	}
	if s.Rexc < 0 {
		s.Rexc = intermittent.DefaultExceptionRate
	}
	return s
}

// Validate checks the scenario.
func (s Scenario) Validate() error {
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if s.Platform != MSP && s.Platform != Accel {
		return fmt.Errorf("explore: unknown platform %d", int(s.Platform))
	}
	switch s.Objective {
	case Lat, SP, LatSP:
	default:
		return fmt.Errorf("explore: unknown objective %d", int(s.Objective))
	}
	if s.MaxPanel < 0 || s.MaxPanel > solar.MaxPanelArea {
		return fmt.Errorf("explore: MaxPanel %v outside (0, %v]", s.MaxPanel, solar.MaxPanelArea)
	}
	return nil
}

// Candidate is one hardware design point.
type Candidate struct {
	PanelArea units.AreaCM2
	Cap       units.Capacitance
	// Accel is set for the Accel platform; MSP candidates leave it nil.
	Accel *accel.Config
}

// String renders the candidate for reports.
func (c Candidate) String() string {
	if c.Accel != nil {
		return fmt.Sprintf("sp=%v cap=%v arch=%v pe=%d cache=%v",
			c.PanelArea, c.Cap, c.Accel.Arch, c.Accel.NPE, c.Accel.CacheBytes)
	}
	return fmt.Sprintf("sp=%v cap=%v msp430", c.PanelArea, c.Cap)
}

// LayerChoice records the mapping the inner optimizer chose for one layer.
type LayerChoice struct {
	Layer   string
	Mapping dataflow.Mapping
	Plan    intermittent.Plan
}

// EnvResult is the evaluation under one environment.
type EnvResult struct {
	Env        string
	Latency    units.Seconds
	Energy     units.Energy
	CkptEnergy units.Energy
	Efficiency float64
	Feasible   bool
}

// Evaluation is the full assessment of one candidate.
type Evaluation struct {
	Candidate Candidate
	Mappings  []LayerChoice
	PerEnv    []EnvResult
	// AvgLatency averages the per-environment latencies (the paper's
	// search metric for dual-environment robustness).
	AvgLatency units.Seconds
	// LatSP is AvgLatency × PanelArea (cm²·s).
	LatSP    float64
	Feasible bool
}

// platformLoad returns the inference subsystem's active power draw.
func platformLoad(sc Scenario, cand Candidate, df dataflow.Dataflow) (units.Power, error) {
	if sc.Platform == MSP {
		return msp430.Config{}.ActivePower(), nil
	}
	return cand.Accel.ActivePower(df)
}

// platformHW returns the dataflow cost constants.
func platformHW(sc Scenario, cand Candidate, df dataflow.Dataflow) (dataflow.HW, error) {
	if sc.Platform == MSP {
		return msp430.Config{}.HW(), nil
	}
	return cand.Accel.HW(df)
}

// dataflowChoices returns the dataflows the inner optimizer explores.
func dataflowChoices(sc Scenario) []dataflow.Dataflow {
	if sc.Platform == MSP {
		// Single-PE device: the taxonomy degenerates; OS matches how
		// the LEA accumulates.
		return []dataflow.Dataflow{dataflow.OS}
	}
	return dataflow.Dataflows()
}

// budgetMargin leaves headroom between the planned tile energy and the
// cycle budget so jitter does not starve tiles at the boundary.
const budgetMargin = 0.9

// buildSubsystems instantiates the candidate's energy subsystem under
// every environment once; the slice is shared between the inner
// search's budget function and the analytic evaluation pass (the
// subsystem's closed-form queries are read-only).
func buildSubsystems(envs []solar.Environment, cand Candidate) ([]*energy.Subsystem, error) {
	subsystems := make([]*energy.Subsystem, 0, len(envs))
	for _, env := range envs {
		es, err := energy.NewSolar(energy.Spec{PanelArea: cand.PanelArea, Cap: cand.Cap}, env)
		if err != nil {
			return nil, err
		}
		subsystems = append(subsystems, es)
	}
	return subsystems, nil
}

// cycleBudget returns the Eq. 8 budget closure: the minimum cycle
// budget across environments at the querying tile's own power draw
// (with the Eq. 3 T term), scaled by the jitter margin.
func cycleBudget(subsystems []*energy.Subsystem) intermittent.BudgetFunc {
	return func(load units.Power) units.Energy {
		minB := units.Energy(math.Inf(1))
		for _, es := range subsystems {
			b, _ := es.CycleBudget(load)
			if b < minB {
				minB = b
			}
		}
		if math.IsInf(float64(minB), 1) {
			return 1e6 // always-on: effectively unbounded
		}
		return units.Energy(float64(minB) * budgetMargin)
	}
}

// Evaluator runs candidate evaluations for one scenario, memoizing the
// expensive half of the inner mapping search: per-layer plan ladders
// keyed on the candidate's hardware fingerprint. Candidates that differ
// only in energy genes (panel area, capacitance) — the dimensions the
// outer GA mutates most — reuse the cached ladders and pay only a
// cheap budget scan. On the MSP platform the fingerprint is constant,
// so the whole search builds the ladders exactly once.
//
// An Evaluator is safe for concurrent use by multiple goroutines
// (search.GAConfig.Workers > 1). Cached and uncached evaluations are
// bit-identical.
type Evaluator struct {
	sc Scenario
	// cache memoizes ladder sets across evaluations; nil selects the
	// uncached per-call scan (one-shot evaluations, where eager ladder
	// construction could never be amortized).
	cache *planCache
	// subs memoizes energy subsystems per (panel, cap) gene pair; nil
	// builds them fresh per evaluation.
	subs *subsystemCache
}

// NewEvaluator validates the scenario (filling defaults) and returns an
// evaluator with an empty plan cache.
func NewEvaluator(sc Scenario) (*Evaluator, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	pc := newPlanCache()
	pc.warm = sc.Warm
	return &Evaluator{sc: sc, cache: pc, subs: newSubsystemCache(sc.Envs)}, nil
}

// newDirectEvaluator builds an evaluator without a plan cache: each
// evaluation scans the mapping space directly with early exit, which is
// cheaper when the scenario is evaluated exactly once.
func newDirectEvaluator(sc Scenario) (*Evaluator, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{sc: sc}, nil
}

// Scenario returns the default-filled scenario the evaluator serves.
func (e *Evaluator) Scenario() Scenario { return e.sc }

// CacheStats returns this evaluator's plan-cache hit and miss counts.
// Uncached (direct) evaluators report zeros.
func (e *Evaluator) CacheStats() (hits, misses int64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.hits.Load(), e.cache.misses.Load()
}

// WarmHits returns how many of this evaluator's plan-cache misses were
// served by the attached warm tier instead of a fresh build. Zero when
// no tier is attached (or for direct evaluators).
func (e *Evaluator) WarmHits() int64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.warmHits.Load()
}

// ladderSetFor returns the candidate's ladder set, memoized when the
// evaluator carries a cache and built fresh otherwise. worker selects
// the cache's per-worker fast-path slot; serial callers pass 0.
func (e *Evaluator) ladderSetFor(worker int, cand Candidate) (*ladderSet, error) {
	if e.cache != nil {
		return e.cache.get(e.sc, cand, worker)
	}
	return buildLadderSet(e.sc, cand)
}

// evalArena is the per-evaluation scratch every scoring pass needs: the
// per-layer winning plans, materialized into reusable backing storage.
// Arenas are pooled (arenaPool), so the steady-state score path — the
// one the outer GA runs thousands of times — does not allocate the
// plan storage per candidate.
type evalArena struct {
	backing []intermittent.Plan
	plans   []*intermittent.Plan
}

var arenaPool = sync.Pool{New: func() any { return &evalArena{} }}

// takeArena returns a pooled arena resized for n layers, with plans[i]
// aliasing backing[i]. Return it with arenaPool.Put once every datum
// derived from the plans has been copied out.
func takeArena(n int) *evalArena {
	a := arenaPool.Get().(*evalArena)
	if cap(a.backing) < n {
		a.backing = make([]intermittent.Plan, n)
		a.plans = make([]*intermittent.Plan, n)
	}
	a.backing = a.backing[:n]
	a.plans = a.plans[:n]
	for i := range a.plans {
		a.plans[i] = &a.backing[i]
	}
	return a
}

// subsystemsFor returns the candidate's per-environment energy
// subsystems, memoized on the energy genes when the evaluator caches.
func (e *Evaluator) subsystemsFor(cand Candidate) ([]*energy.Subsystem, error) {
	if e.subs != nil {
		return e.subs.get(cand)
	}
	return buildSubsystems(e.sc.Envs, cand)
}

// innerSearch is the SW-level optimizer: for a fixed candidate it
// chooses, per layer, the (dataflow, partition, N_tile) minimizing the
// layer's total energy, subject to every tile fitting the tightest
// per-cycle budget across environments (Eq. 8). The per-layer plan
// ladders come from the fingerprint cache; only the budget scan runs
// per candidate, over slim rungs, and only each layer's winner is
// materialized as a full Plan — into the caller's arena, which the
// returned pointers alias.
func (e *Evaluator) innerSearch(worker int, cand Candidate, budget intermittent.BudgetFunc, a *evalArena) ([]*intermittent.Plan, error) {
	ls, err := e.cache.get(e.sc, cand, worker)
	if err != nil {
		return nil, err
	}
	w := e.sc.Workload
	for li := range w.Layers {
		var bestLd *intermittent.Ladder
		bestIdx := -1
		bestE := units.Energy(math.Inf(1))
		for ci := range ls.ctxs {
			for _, part := range []dataflow.Partition{dataflow.ByChannel, dataflow.BySpatial} {
				ld := ls.ladderAt(li, ci, part)
				i, ok := ld.MinFeasibleIndex(budget)
				if !ok {
					continue
				}
				if r := &ld.Rungs[i]; bestIdx < 0 || r.Energy < bestE {
					bestLd, bestIdx, bestE = ld, i, r.Energy
				}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("explore: layer %s infeasible on %s: %w",
				w.Layers[li].Name, cand, intermittent.ErrNoFeasibleTile)
		}
		bestLd.PlanInto(bestIdx, &a.backing[li])
	}
	return a.plans, nil
}

// innerSearchDirect is the uncached form of innerSearch: it scans each
// (dataflow, partition) mapping space per call with early exit at the
// first budget-feasible tile count, instead of materializing full
// ladders that a single evaluation could never amortize. It explores
// the space in the same order with the same tie-breaks as the cached
// path, so the two produce bit-identical choices.
func (e *Evaluator) innerSearchDirect(cand Candidate, budget intermittent.BudgetFunc, a *evalArena) ([]*intermittent.Plan, error) {
	sc := e.sc
	dfs := dataflowChoices(sc)
	hws := make([]dataflow.HW, len(dfs))
	for i, df := range dfs {
		hw, err := platformHW(sc, cand, df)
		if err != nil {
			return nil, err
		}
		hws[i] = hw
	}
	w := sc.Workload
	for li, l := range w.Layers {
		bestE := units.Energy(math.Inf(1))
		foundAny := false
		for ci, df := range dfs {
			for _, part := range []dataflow.Partition{dataflow.ByChannel, dataflow.BySpatial} {
				p, err := intermittent.MinFeasibleTiles(l, w.ElemBytes, df, part, hws[ci], sc.Rexc, budget)
				if err != nil {
					continue
				}
				if p.Energy < bestE {
					bestE = p.Energy
					a.backing[li] = p
					foundAny = true
				}
			}
		}
		if !foundAny {
			return nil, fmt.Errorf("explore: layer %s infeasible on %s: %w",
				l.Name, cand, intermittent.ErrNoFeasibleTile)
		}
	}
	return a.plans, nil
}

// searchPlans dispatches to the configured inner mapping search and
// returns the chosen per-layer plans by pointer into the caller's
// arena. The pointers are only valid until the arena is returned to
// the pool.
func (e *Evaluator) searchPlans(worker int, cand Candidate, budget intermittent.BudgetFunc, a *evalArena) ([]*intermittent.Plan, error) {
	switch {
	case e.sc.Mapper == MapperGA:
		return e.innerSearchGA(worker, cand, budget, a)
	case e.cache != nil:
		return e.innerSearch(worker, cand, budget, a)
	default:
		return e.innerSearchDirect(cand, budget, a)
	}
}

// quickScore is the allocation-lean evaluation the search loops consume:
// just the objective ingredients, no per-layer mappings or per-env
// reports materialized.
type quickScore struct {
	avgLatency units.Seconds
	latSP      float64
	feasible   bool
}

// score computes a candidate's objective ingredients without
// materializing a full Evaluation. It runs the same inner search and
// the same analytic model as Evaluate, so the numbers are bit-identical
// to the ones Evaluate reports; only the discarded per-candidate
// bookkeeping (layer choices, per-env reports) is skipped. When the
// scenario carries a tracer, each score records a span annotated with
// feasibility and the plan-cache hits/misses it incurred; with tracing
// off the fast path is untouched.
func (e *Evaluator) score(cand Candidate) (quickScore, error) {
	return e.scoreWorker(0, cand)
}

// scoreWorker is score with an explicit worker slot, the form the
// parallel search loops call so each worker hits its own cache
// fast-path slot.
func (e *Evaluator) scoreWorker(worker int, cand Candidate) (quickScore, error) {
	if tr := e.sc.Trace; tr != nil {
		h0, m0 := e.CacheStats()
		sp := tr.Start("explore", "score")
		s, err := e.scoreInner(worker, cand)
		h1, m1 := e.CacheStats()
		sp.End(obs.A("feasible", s.feasible), obs.A("cache_hits", h1-h0),
			obs.A("cache_misses", m1-m0), obs.A("err", err != nil))
		return s, err
	}
	return e.scoreInner(worker, cand)
}

// scoreInner is the uninstrumented scoring path.
func (e *Evaluator) scoreInner(worker int, cand Candidate) (quickScore, error) {
	if err := e.checkCandidate(cand); err != nil {
		return quickScore{}, err
	}
	subsystems, err := e.subsystemsFor(cand)
	if err != nil {
		return quickScore{}, err
	}
	budget := cycleBudget(subsystems)
	a := takeArena(len(e.sc.Workload.Layers))
	defer arenaPool.Put(a)
	plans, err := e.searchPlans(worker, cand, budget, a)
	if err != nil {
		return quickScore{}, err
	}
	tot := intermittent.SumRefs(plans)

	var latSum float64
	feasible := true
	for i := range e.sc.Envs {
		r := sim.AnalyticTotals(subsystems[i], tot)
		if !r.Completed {
			feasible = false
			continue
		}
		latSum += float64(r.E2ELatency)
	}
	s := quickScore{feasible: feasible}
	if feasible {
		s.avgLatency = units.Seconds(latSum / float64(len(e.sc.Envs)))
		s.latSP = float64(s.avgLatency) * float64(cand.PanelArea)
	} else {
		s.avgLatency = units.Seconds(math.Inf(1))
		s.latSP = math.Inf(1)
	}
	return s, nil
}

// checkCandidate validates the candidate/platform pairing.
func (e *Evaluator) checkCandidate(cand Candidate) error {
	if e.sc.Platform == Accel {
		if cand.Accel == nil {
			return fmt.Errorf("explore: accel platform needs an accelerator config")
		}
		return cand.Accel.Validate()
	}
	if cand.Accel != nil {
		return fmt.Errorf("explore: MSP platform must not carry an accelerator config")
	}
	return nil
}

// Evaluate runs the inner mapping search and the analytic evaluator
// under every environment for one candidate, reusing cached plan
// ladders and building each environment's energy subsystem exactly
// once. With a scenario tracer attached it records a "full-evaluate"
// span, distinguishing the rare materializing evaluations from the
// lean score path in a trace.
func (e *Evaluator) Evaluate(cand Candidate) (Evaluation, error) {
	if tr := e.sc.Trace; tr != nil {
		sp := tr.Start("explore", "full-evaluate")
		ev, err := e.evaluateInner(cand)
		sp.End(obs.A("feasible", ev.Feasible), obs.A("err", err != nil))
		return ev, err
	}
	return e.evaluateInner(cand)
}

// evaluateInner is the uninstrumented evaluation path.
func (e *Evaluator) evaluateInner(cand Candidate) (Evaluation, error) {
	sc := e.sc
	if err := e.checkCandidate(cand); err != nil {
		return Evaluation{}, err
	}

	ev := Evaluation{Candidate: cand}
	subsystems, err := e.subsystemsFor(cand)
	if err != nil {
		return ev, err
	}
	budget := cycleBudget(subsystems)

	a := takeArena(len(sc.Workload.Layers))
	defer arenaPool.Put(a)
	plans, err := e.searchPlans(0, cand, budget, a)
	if err != nil {
		return ev, err
	}
	ev.Mappings = make([]LayerChoice, len(plans))
	for i, p := range plans {
		ev.Mappings[i] = LayerChoice{Layer: p.Layer.Name, Mapping: p.Cost.Mapping, Plan: *p}
	}
	tot := intermittent.SumRefs(plans)

	var latSum float64
	feasible := true
	for i, env := range sc.Envs {
		r := sim.AnalyticTotals(subsystems[i], tot)
		er := EnvResult{
			Env:        env.Name(),
			Latency:    r.E2ELatency,
			Energy:     r.Breakdown.Delivered(),
			CkptEnergy: r.Breakdown.Ckpt,
			Efficiency: r.SystemEfficiency,
			Feasible:   r.Completed,
		}
		ev.PerEnv = append(ev.PerEnv, er)
		if !r.Completed {
			feasible = false
			continue
		}
		latSum += float64(r.E2ELatency)
	}
	ev.Feasible = feasible
	if feasible {
		ev.AvgLatency = units.Seconds(latSum / float64(len(sc.Envs)))
		ev.LatSP = float64(ev.AvgLatency) * float64(cand.PanelArea)
	} else {
		ev.AvgLatency = units.Seconds(math.Inf(1))
		ev.LatSP = math.Inf(1)
	}
	return ev, nil
}

// EvaluateCandidate runs the inner mapping search and the analytic
// evaluator under every environment. It is the one-shot form of
// Evaluator.Evaluate and uses the early-exit direct scan; callers
// evaluating many candidates of one scenario should create an Evaluator
// to share its plan cache. Both paths produce bit-identical results.
func EvaluateCandidate(sc Scenario, cand Candidate) (Evaluation, error) {
	e, err := newDirectEvaluator(sc)
	if err != nil {
		return Evaluation{}, err
	}
	return e.Evaluate(cand)
}

// SimulateCandidate replays one candidate through the co-simulator
// under the scenario's first environment and SimMode, with optional
// event tracer and flight recorder attached. The inner mapping search
// runs first so the candidate executes its best achievable plans —
// this is the verification counterpart of EvaluateCandidate.
func SimulateCandidate(sc Scenario, cand Candidate, tr sim.Tracer, rec *sim.Recorder) (sim.Result, error) {
	scd := sc.withDefaults()
	ev, err := EvaluateCandidate(sc, cand)
	if err != nil {
		return sim.Result{}, err
	}
	plans := make([]intermittent.Plan, len(ev.Mappings))
	for i, m := range ev.Mappings {
		plans[i] = m.Plan
	}
	es, err := energy.NewSolar(energy.Spec{PanelArea: cand.PanelArea, Cap: cand.Cap}, scd.Envs[0])
	if err != nil {
		return sim.Result{}, err
	}
	var hw dataflow.HW
	if cand.Accel == nil {
		hw = msp430.Config{}.HW()
	} else {
		hw, err = cand.Accel.HW(cand.Accel.NativeDataflow())
		if err != nil {
			return sim.Result{}, err
		}
	}
	return sim.RunMode(sim.Config{Energy: es, HW: hw, Plans: plans, Trace: tr, Record: rec}, scd.SimMode)
}

// objectiveOf scores a candidate's objective ingredients (lower is
// better, +Inf infeasible).
func objectiveOf(sc Scenario, panel units.AreaCM2, s quickScore) float64 {
	if !s.feasible {
		return math.Inf(1)
	}
	switch sc.Objective {
	case Lat:
		if panel > sc.MaxPanel {
			return math.Inf(1)
		}
		return float64(s.avgLatency)
	case SP:
		v := float64(panel)
		if s.avgLatency > sc.MaxLatency {
			// Smooth penalty keeps the GA gradient toward feasibility.
			excess := float64(s.avgLatency-sc.MaxLatency) / float64(sc.MaxLatency)
			v += float64(solar.MaxPanelArea) * (1 + excess)
		}
		return v
	default: // LatSP
		return s.latSP
	}
}

// objectiveValue scores an evaluation (lower is better, +Inf infeasible).
func objectiveValue(sc Scenario, ev Evaluation) float64 {
	return objectiveOf(sc, ev.Candidate.PanelArea,
		quickScore{avgLatency: ev.AvgLatency, latSP: ev.LatSP, feasible: ev.Feasible})
}

// genomeSpec describes which dimensions the baseline searches.
type genomeSpec struct {
	sp, cap, arch, npe, cache bool
}

func spec(sc Scenario, b Baseline) genomeSpec {
	g := genomeSpec{sp: true, cap: true}
	if sc.Platform == Accel {
		g.arch, g.npe, g.cache = true, true, true
		if sc.Arch != nil {
			g.arch = false
		}
	}
	switch b {
	case WoCap:
		g.cap = false
	case WoSP:
		g.sp = false
	case WoEA:
		g.sp, g.cap = false, false
	case WoPE:
		g.npe = false
	case WoCache:
		g.cache = false
	case WoIA:
		g.arch, g.npe, g.cache = false, false, false
	}
	return g
}

func (g genomeSpec) dim() int {
	n := 0
	for _, b := range []bool{g.sp, g.cap, g.arch, g.npe, g.cache} {
		if b {
			n++
		}
	}
	if n == 0 {
		n = 1 // degenerate space still needs a genome for the optimizer
	}
	return n
}

// decode maps a genome to a candidate under the scenario's bounds.
func decode(sc Scenario, g genomeSpec, genome []float64) Candidate {
	i := 0
	next := func() float64 {
		v := genome[i%len(genome)]
		i++
		return v
	}
	cand := Candidate{PanelArea: FixedPanel, Cap: FixedCap}
	maxSP := float64(sc.MaxPanel)
	if g.sp {
		cand.PanelArea = units.AreaCM2(search.MapFloat(next(), float64(solar.MinPanelArea), maxSP, false))
	}
	if g.cap {
		cand.Cap = units.Capacitance(search.MapFloat(next(),
			float64(storage.MinCapacitance), float64(storage.MaxCapacitance), true))
	}
	if sc.Platform == Accel {
		ac := accel.Config{Arch: accel.TPU, NPE: FixedNPE, CacheBytes: FixedCache}
		if sc.Arch != nil {
			ac.Arch = *sc.Arch
		}
		if g.arch {
			ac.Arch = accel.Arches()[search.MapChoice(next(), len(accel.Arches()))]
		}
		if g.npe {
			ac.NPE = search.MapInt(next(), accel.MinPE, accel.MaxPE)
		}
		if g.cache {
			ac.CacheBytes = units.Bytes(search.MapFloat(next(),
				float64(accel.MinCacheBytes), float64(accel.MaxCacheBytes), true))
		}
		cand.Accel = &ac
	}
	return cand
}

// Outcome is the result of one Explore run.
type Outcome struct {
	Scenario Scenario
	Baseline Baseline
	Best     Evaluation
	// Value is the best objective value (lower is better).
	Value float64
	// Evals is the number of candidate evaluations spent.
	Evals int
	// Workers is the resolved candidate-evaluation concurrency the run
	// used (1 = serial). It never affects the other fields: Outcomes are
	// bit-identical for any worker count at the same seed.
	Workers int
	// CacheHits / CacheMisses count the evaluator plan-cache outcomes
	// across the run; WarmHits is the subset of misses served by the
	// process-lifetime warm tier (Scenario.Warm) instead of a fresh
	// ladder build. With no tier attached, misses = distinct hardware
	// fingerprints built and WarmHits is zero.
	CacheHits   int64
	CacheMisses int64
	WarmHits    int64
	// History is the outer GA's per-generation best-objective series
	// (search.Result.History), and Quality the matching per-generation
	// population statistics — the search observatory's raw material.
	History []float64
	Quality search.QualityHistory
	// StoppedEarly reports that the plateau policy (GAConfig.Patience)
	// ended the search before the configured generation count; the stop
	// generation is len(History).
	StoppedEarly bool
}

// DefaultSerialCostFloor is the per-candidate cost below which the
// outer GA's parallel dispatch costs more than it saves, measured on
// this repo's own score paths: the ladder-cached MSP score runs in a
// few microseconds — channel handoff and scheduler wakeups dominate and
// parallel dispatch is a slowdown — while accelerator searches run
// hundreds of microseconds per candidate and scale near-linearly. 50 µs
// cleanly separates the two. Explore installs it when the caller leaves
// GAConfig.SerialCostFloor at zero; pass a negative floor to force
// parallel dispatch regardless of measured cost.
const DefaultSerialCostFloor = 50 * time.Microsecond

// resolveWorkers maps the Workers convention shared by Explore,
// ParetoScan and ParetoSearch onto an explicit worker count: 0 (the
// zero value) selects GOMAXPROCS — one design request uses the whole
// machine by default — negative opts out to serial, and >= 1 is taken
// literally.
func resolveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// bestTracker folds (evaluation index, value, genome) observations into
// the winning genome under concurrent evaluation. Ties on the objective
// value are broken toward the LOWEST evaluation index: a serial fold
// only replaces the best on strict improvement, so the first (lowest-
// index) genome reaching a value wins — the tracker reproduces exactly
// that choice regardless of the order parallel workers report in.
type bestTracker struct {
	mu     sync.Mutex
	value  float64
	index  int
	genome []float64
}

func newBestTracker() *bestTracker {
	return &bestTracker{value: math.Inf(1), index: math.MaxInt}
}

func (b *bestTracker) observe(idx int, v float64, genome []float64) {
	if math.IsInf(v, 1) {
		return
	}
	b.mu.Lock()
	if v < b.value || (v == b.value && idx < b.index) {
		b.value = v
		b.index = idx
		b.genome = append(b.genome[:0], genome...)
	}
	b.mu.Unlock()
}

// Explore runs the bi-level search for a scenario under a baseline's
// search space. cfg seeds and sizes the outer GA; cfg.Workers follows
// the resolveWorkers convention (0 = GOMAXPROCS, negative = serial),
// and a zero cfg.SerialCostFloor installs DefaultSerialCostFloor so
// cheap score paths stay on the serial fast path (negative disables
// the fallback). All candidate evaluations share one Evaluator, so the
// inner mapping search is memoized across the whole run. Candidate
// generation stays sequential and seeded, so the Outcome is
// bit-identical for any worker count (Outcome.Workers aside).
func Explore(sc Scenario, b Baseline, cfg search.GAConfig) (Outcome, error) {
	e, err := NewEvaluator(sc)
	if err != nil {
		return Outcome{}, err
	}
	sc = e.Scenario()
	g := spec(sc, b)
	cfg.Workers = resolveWorkers(cfg.Workers)
	if cfg.SerialCostFloor == 0 {
		cfg.SerialCostFloor = DefaultSerialCostFloor
	}

	var runSpan *obs.Span
	if sc.Trace != nil {
		runSpan = sc.Trace.Start("explore", "explore "+b.String(),
			obs.A("workload", sc.Workload.Name), obs.A("platform", sc.Platform.String()),
			obs.A("objective", sc.Objective.String()))
		defer func() {
			hits, misses := e.CacheStats()
			runSpan.End(obs.A("cache_hits", hits), obs.A("cache_misses", misses))
		}()
	}

	bt := newBestTracker()
	problem := search.Problem{
		Dim: g.dim(),
		EvalCtx: func(ec search.EvalContext, genome []float64) float64 {
			cand := decode(sc, g, genome)
			s, err := e.scoreWorker(ec.Worker, cand)
			if err != nil {
				return math.Inf(1)
			}
			v := objectiveOf(sc, cand.PanelArea, s)
			bt.observe(ec.Index, v, genome)
			return v
		},
	}
	res, err := search.RunGA(problem, cfg)
	if err != nil {
		return Outcome{}, err
	}
	if math.IsInf(bt.value, 1) {
		return Outcome{}, fmt.Errorf("explore: no feasible design for %s/%s under %s: %w",
			sc.Workload.Name, sc.Platform, b, ErrNoFeasibleDesign)
	}
	// Materialize the full evaluation once, for the winning candidate
	// only; the per-candidate search loop above runs the lean score path.
	best, err := e.Evaluate(decode(sc, g, bt.genome))
	if err != nil {
		return Outcome{}, err
	}
	hits, misses := e.CacheStats()
	return Outcome{Scenario: sc, Baseline: b, Best: best, Value: bt.value, Evals: res.Evals,
		Workers: cfg.Workers, CacheHits: hits, CacheMisses: misses, WarmHits: e.WarmHits(),
		History: res.History, Quality: res.Quality, StoppedEarly: res.StoppedEarly}, nil
}

// ParetoPoint pairs a candidate with its (panel, latency) coordinates.
type ParetoPoint struct {
	Candidate Candidate
	PanelArea units.AreaCM2
	Latency   units.Seconds
	LatSP     float64
}

// ParetoScan samples the design space at random and returns all
// feasible points plus the Pareto front over (panel area, latency) —
// the Figure 6 analysis. It evaluates across all cores; use
// ParetoScanWorkers to pick the worker count explicitly.
func ParetoScan(sc Scenario, n int, seed int64) (points, front []ParetoPoint, err error) {
	return ParetoScanWorkers(sc, n, seed, 0)
}

// ParetoScanWorkers is ParetoScan with an explicit evaluation
// concurrency (resolveWorkers convention: 0 = GOMAXPROCS, negative =
// serial). Sampling stays sequential and seeded and the collected
// points are ordered by sample index, so the result is bit-identical
// for any worker count.
func ParetoScanWorkers(sc Scenario, n int, seed int64, workers int) (points, front []ParetoPoint, err error) {
	e, err := NewEvaluator(sc)
	if err != nil {
		return nil, nil, err
	}
	sc = e.Scenario()
	g := spec(sc, Full)
	workers = resolveWorkers(workers)

	type taggedPoint struct {
		idx int
		p   ParetoPoint
	}
	var (
		mu     sync.Mutex
		tagged []taggedPoint
	)
	problem := search.Problem{
		Dim: g.dim(),
		EvalCtx: func(ec search.EvalContext, genome []float64) float64 {
			cand := decode(sc, g, genome)
			s, evalErr := e.scoreWorker(ec.Worker, cand)
			if evalErr != nil || !s.feasible {
				return math.Inf(1)
			}
			tp := taggedPoint{idx: ec.Index, p: ParetoPoint{
				Candidate: cand,
				PanelArea: cand.PanelArea,
				Latency:   s.avgLatency,
				LatSP:     s.latSP,
			}}
			mu.Lock()
			tagged = append(tagged, tp)
			mu.Unlock()
			return s.latSP
		},
	}
	if _, err := search.RunRandomWorkers(problem, n, seed, false, workers); err != nil {
		return nil, nil, err
	}
	// Restore sample order: parallel workers append in completion order,
	// but the evaluation index is assigned at (sequential) generation
	// time, so sorting on it reproduces the serial trajectory exactly.
	sort.Slice(tagged, func(i, j int) bool { return tagged[i].idx < tagged[j].idx })
	all := make([]ParetoPoint, len(tagged))
	for i, tp := range tagged {
		all[i] = tp.p
	}
	pts := make([]search.Point2, len(all))
	for i, p := range all {
		pts[i] = search.Point2{X: float64(p.PanelArea), Y: float64(p.Latency), Tag: i}
	}
	for _, fp := range search.ParetoFront(pts) {
		front = append(front, all[fp.Tag])
	}
	return all, front, nil
}

// ParetoOutcome is the result of one ParetoSearch run: the front plus
// the same convergence telemetry Outcome carries for scalar searches
// (History here is the per-generation dominated-hypervolume series).
type ParetoOutcome struct {
	Scenario Scenario
	Front    []ParetoPoint
	Evals    int
	Workers  int
	// CacheHits / CacheMisses / WarmHits mirror the Outcome fields of
	// the same names: plan-cache traffic for the run, with WarmHits the
	// misses served by the process-lifetime warm tier.
	CacheHits    int64
	CacheMisses  int64
	WarmHits     int64
	History      []float64
	Quality      search.QualityHistory
	StoppedEarly bool
}

// ParetoSearch runs a true multi-objective search (NSGA-II) over the
// hardware space for the (panel area, average latency) front — a
// stronger generator for the paper's Figure 6 curve than the random
// scan, at the same evaluation budget. cfg.Workers follows the
// resolveWorkers convention; the outcome is bit-identical for any
// count (Workers aside).
func ParetoSearch(sc Scenario, cfg search.GAConfig) (ParetoOutcome, error) {
	e, err := NewEvaluator(sc)
	if err != nil {
		return ParetoOutcome{}, err
	}
	sc = e.Scenario()
	g := spec(sc, Full)
	cfg.Workers = resolveWorkers(cfg.Workers)
	problem := search.BiProblem{
		Dim: g.dim(),
		EvalCtx: func(ec search.EvalContext, genome []float64) (float64, float64) {
			cand := decode(sc, g, genome)
			s, evalErr := e.scoreWorker(ec.Worker, cand)
			if evalErr != nil || !s.feasible {
				return math.Inf(1), math.Inf(1)
			}
			return float64(cand.PanelArea), float64(s.avgLatency)
		},
	}
	raw, stats, err := search.RunNSGA2(problem, cfg)
	if err != nil {
		return ParetoOutcome{}, err
	}
	hits, misses := e.CacheStats()
	out := ParetoOutcome{Scenario: sc, Evals: stats.Evals, Workers: cfg.Workers,
		CacheHits: hits, CacheMisses: misses, WarmHits: e.WarmHits(),
		History: stats.History, Quality: stats.Quality, StoppedEarly: stats.StoppedEarly}
	for _, p := range raw {
		cand := decode(sc, g, p.Genome)
		out.Front = append(out.Front, ParetoPoint{
			Candidate: cand,
			PanelArea: units.AreaCM2(p.F1),
			Latency:   units.Seconds(p.F2),
			LatSP:     p.F1 * p.F2,
		})
	}
	return out, nil
}
