package explore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
)

// mspCandidates spans the energy genes the outer search varies on the
// MSP platform. The inference-side fingerprint is identical for all of
// them, so a single cached ladder set must serve every one.
func mspCandidates() []Candidate {
	return []Candidate{
		{PanelArea: 4, Cap: 47e-6},
		{PanelArea: 8, Cap: 100e-6},
		{PanelArea: 16, Cap: 220e-6},
		{PanelArea: 25, Cap: 1e-3},
	}
}

// accelCandidates varies both the energy genes and the accelerator
// genes, so the fingerprint cache must hold several distinct entries.
func accelCandidates() []Candidate {
	return []Candidate{
		{PanelArea: 16, Cap: 1e-3, Accel: &accel.Config{Arch: accel.Eyeriss, NPE: 32, CacheBytes: 512}},
		{PanelArea: 16, Cap: 1e-3, Accel: &accel.Config{Arch: accel.Eyeriss, NPE: 64, CacheBytes: 1024}},
		{PanelArea: 25, Cap: 2e-3, Accel: &accel.Config{Arch: accel.TPU, NPE: 64, CacheBytes: 1024}},
		{PanelArea: 9, Cap: 470e-6, Accel: &accel.Config{Arch: accel.TPU, NPE: 16, CacheBytes: 512}},
	}
}

// TestCachedMatchesUncached is the end-to-end differential for the
// memoized evaluation engine: a caching Evaluator must produce
// Evaluations deep-equal to the uncached one-shot EvaluateCandidate
// path for both platforms, across repeated evaluations (cache hits
// included).
func TestCachedMatchesUncached(t *testing.T) {
	cases := []struct {
		name  string
		sc    Scenario
		cands []Candidate
	}{
		{"msp-har", Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}, mspCandidates()},
		{"msp-cifar", Scenario{Workload: dnn.CIFAR10(), Platform: MSP, Objective: Lat}, mspCandidates()},
		{"accel-har", Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP}, accelCandidates()},
		{"accel-resnet", Scenario{Workload: dnn.ResNet18(), Platform: Accel, Objective: LatSP}, accelCandidates()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := NewEvaluator(tc.sc)
			if err != nil {
				t.Fatal(err)
			}
			// Two rounds: the second is served entirely from the cache.
			for round := 0; round < 2; round++ {
				for _, cand := range tc.cands {
					want, wantErr := EvaluateCandidate(tc.sc, cand)
					got, gotErr := e.Evaluate(cand)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("round %d %s: uncached err %v, cached err %v", round, cand, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("round %d %s: cached evaluation diverged:\n%+v\nvs uncached\n%+v", round, cand, got, want)
					}
				}
			}
			hits, misses := e.CacheStats()
			if hits == 0 {
				t.Error("repeated evaluations should produce cache hits")
			}
			if tc.sc.Platform == MSP && misses != 1 {
				t.Errorf("MSP fingerprint is constant: misses = %d, want 1", misses)
			}
			if tc.sc.Platform == Accel && misses < 2 {
				t.Errorf("distinct accel configs should miss separately: misses = %d", misses)
			}
		})
	}
}

// TestEvaluatorCacheConcurrent hammers one shared Evaluator from many
// goroutines (the GA Workers > 1 contract) and checks every result
// still matches the uncached reference. Run under -race via `make
// race-cache`.
func TestEvaluatorCacheConcurrent(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP}
	cands := accelCandidates()

	refs := make([]Evaluation, len(cands))
	for i, cand := range cands {
		ev, err := EvaluateCandidate(sc, cand)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ev
	}

	e, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(cands)
				got, err := e.Evaluate(cands[i])
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if !reflect.DeepEqual(got, refs[i]) {
					errs <- fmt.Errorf("goroutine %d round %d: result diverged for %s", g, r, cands[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := e.CacheStats()
	if hits+misses != goroutines*rounds {
		t.Errorf("hits %d + misses %d != %d lookups", hits, misses, goroutines*rounds)
	}
	if misses < int64(len(cands)) {
		t.Errorf("misses = %d, want >= %d distinct fingerprints", misses, len(cands))
	}
}
