package explore

import (
	"math"
	"strings"
	"testing"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
	"chrysalis/internal/search"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// smallGA keeps searches fast in tests.
func smallGA(seed int64) search.GAConfig {
	cfg := search.DefaultGA(seed)
	cfg.Population = 12
	cfg.Generations = 8
	return cfg
}

func TestStringersAndParsers(t *testing.T) {
	for _, o := range Objectives() {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("ParseObjective(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseObjective("speed"); err == nil {
		t.Error("unknown objective should fail")
	}
	if MSP.String() != "msp430" || Accel.String() != "accel" {
		t.Error("platform strings")
	}
	names := map[string]bool{}
	for _, b := range Baselines() {
		names[b.String()] = true
	}
	if len(names) != 7 || !names["chrysalis"] || !names["wo/EA"] {
		t.Errorf("baseline names = %v", names)
	}
}

func TestScenarioValidate(t *testing.T) {
	good := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: LatSP}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := good
	bad.Platform = PlatformKind(9)
	if err := bad.Validate(); err == nil {
		t.Error("bad platform should fail")
	}
	bad = good
	bad.Objective = Objective(9)
	if err := bad.Validate(); err == nil {
		t.Error("bad objective should fail")
	}
	bad = good
	bad.Workload = dnn.Workload{}
	if err := bad.Validate(); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestEvaluateCandidateMSP(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}
	cand := Candidate{PanelArea: 8, Cap: 100e-6}
	ev, err := EvaluateCandidate(sc, cand)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("HAR on 8cm²/100uF should be feasible")
	}
	if len(ev.PerEnv) != 2 {
		t.Fatalf("expected 2 environments, got %d", len(ev.PerEnv))
	}
	if ev.PerEnv[0].Latency >= ev.PerEnv[1].Latency {
		t.Fatal("bright should be faster than dark")
	}
	if ev.AvgLatency <= 0 {
		t.Fatalf("avg latency = %v", ev.AvgLatency)
	}
	if len(ev.Mappings) != len(dnn.HAR().Layers) {
		t.Fatalf("mappings = %d, want %d", len(ev.Mappings), len(dnn.HAR().Layers))
	}
	if !strings.Contains(ev.Candidate.String(), "msp430") {
		t.Fatalf("candidate string = %q", ev.Candidate.String())
	}
}

func TestEvaluateCandidatePlatformMismatch(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP}
	if _, err := EvaluateCandidate(sc, Candidate{PanelArea: 8, Cap: 1e-3}); err == nil {
		t.Error("accel platform without accelerator config should fail")
	}
	scm := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}
	ac := accel.Config{Arch: accel.TPU, NPE: 8, CacheBytes: 512}
	if _, err := EvaluateCandidate(scm, Candidate{PanelArea: 8, Cap: 1e-3, Accel: &ac}); err == nil {
		t.Error("MSP platform with accelerator config should fail")
	}
	bad := accel.Config{Arch: accel.TPU, NPE: 0, CacheBytes: 512}
	if _, err := EvaluateCandidate(sc, Candidate{PanelArea: 8, Cap: 1e-3, Accel: &bad}); err == nil {
		t.Error("invalid accelerator config should fail")
	}
}

func TestEvaluateCandidateAccel(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP}
	ac := accel.Config{Arch: accel.Eyeriss, NPE: 32, CacheBytes: 512}
	ev, err := EvaluateCandidate(sc, Candidate{PanelArea: 16, Cap: 1e-3, Accel: &ac})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("HAR on a 32-PE Eyeriss should be feasible")
	}
	if !strings.Contains(ev.Candidate.String(), "eyeriss") {
		t.Fatalf("candidate string = %q", ev.Candidate.String())
	}
}

func TestAccelBeatsMSPOnLatency(t *testing.T) {
	// The AuT premise (Fig. 2a): dedicated arrays slash inference time.
	scM := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: Lat}
	evM, err := EvaluateCandidate(scM, Candidate{PanelArea: 20, Cap: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	scA := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: Lat}
	ac := accel.Config{Arch: accel.Eyeriss, NPE: 64, CacheBytes: 1024}
	evA, err := EvaluateCandidate(scA, Candidate{PanelArea: 20, Cap: 1e-3, Accel: &ac})
	if err != nil {
		t.Fatal(err)
	}
	if !evM.Feasible || !evA.Feasible {
		t.Fatal("both should be feasible")
	}
	if evA.AvgLatency >= evM.AvgLatency {
		t.Fatalf("accel latency %v should beat MSP %v", evA.AvgLatency, evM.AvgLatency)
	}
}

func TestExploreMSPLatSP(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: LatSP}
	out, err := Explore(sc, Full, smallGA(1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Best.Feasible {
		t.Fatal("explorer returned infeasible best")
	}
	if out.Value <= 0 || math.IsInf(out.Value, 1) {
		t.Fatalf("objective value = %v", out.Value)
	}
	if out.Evals < 50 {
		t.Fatalf("suspiciously few evaluations: %d", out.Evals)
	}
}

func TestExploreRespectsLatConstraint(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: Lat, MaxPanel: 10}
	out, err := Explore(sc, Full, smallGA(2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Best.Candidate.PanelArea > 10 {
		t.Fatalf("panel %v exceeds the 10cm² bound", out.Best.Candidate.PanelArea)
	}
}

func TestExploreRespectsSPConstraint(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: SP, MaxLatency: 60}
	out, err := Explore(sc, Full, smallGA(3))
	if err != nil {
		t.Fatal(err)
	}
	if out.Best.AvgLatency > 60 {
		t.Fatalf("latency %v exceeds the 60s bound", out.Best.AvgLatency)
	}
	// The SP objective's value is the panel area when feasible.
	if out.Value > float64(solar.MaxPanelArea) {
		t.Fatalf("sp objective value %v implies constraint violation", out.Value)
	}
}

func TestFullBeatsAblations(t *testing.T) {
	// CHRYSALIS's headline claim: the full co-design space finds designs
	// at least as good as every ablated space (allowing small search
	// noise at test budgets).
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: LatSP}
	full, err := Explore(sc, Full, smallGA(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Baseline{WoCap, WoSP, WoEA} {
		out, err := Explore(sc, b, smallGA(4))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if full.Value > out.Value*1.15 {
			t.Errorf("%s: full %.3f much worse than ablation %.3f", b, full.Value, out.Value)
		}
	}
}

func TestWoEAPinsEnergySubsystem(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: LatSP}
	out, err := Explore(sc, WoEA, smallGA(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Best.Candidate.PanelArea != FixedPanel || out.Best.Candidate.Cap != FixedCap {
		t.Fatalf("wo/EA should pin panel and capacitor, got %s", out.Best.Candidate)
	}
}

func TestWoIAPinsInferenceSubsystem(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP}
	out, err := Explore(sc, WoIA, smallGA(6))
	if err != nil {
		t.Fatal(err)
	}
	ac := out.Best.Candidate.Accel
	if ac == nil || ac.NPE != FixedNPE || ac.CacheBytes != FixedCache {
		t.Fatalf("wo/IA should pin the accelerator, got %s", out.Best.Candidate)
	}
}

func TestParetoScan(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: LatSP}
	points, front, err := ParetoScan(sc, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || len(front) == 0 {
		t.Fatal("scan should find feasible points")
	}
	if len(front) > len(points) {
		t.Fatal("front cannot exceed point count")
	}
	// Front must be non-dominated and sorted by panel area.
	for i := 1; i < len(front); i++ {
		if front[i].PanelArea <= front[i-1].PanelArea {
			t.Fatal("front should be sorted by panel area ascending")
		}
		if front[i].Latency >= front[i-1].Latency {
			t.Fatal("front latencies should strictly improve with panel area")
		}
	}
	// Larger panels buy lower latency: endpoints of the tradeoff.
	if len(front) >= 2 {
		first, last := front[0], front[len(front)-1]
		if !(last.PanelArea > first.PanelArea && last.Latency < first.Latency) {
			t.Fatalf("tradeoff direction wrong: %+v .. %+v", first, last)
		}
	}
}

func TestObjectiveValueInfeasible(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: Lat}.withDefaults()
	ev := Evaluation{Feasible: false}
	if !math.IsInf(objectiveValue(sc, ev), 1) {
		t.Fatal("infeasible evaluation must score +Inf")
	}
	ev = Evaluation{Feasible: true, AvgLatency: 5, Candidate: Candidate{PanelArea: 31}}
	if !math.IsInf(objectiveValue(sc, ev), 1) {
		t.Fatal("panel beyond MaxPanel must score +Inf under Lat")
	}
}

func TestDecodeRespectsBaselineSpec(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP}.withDefaults()
	g := spec(sc, Full)
	if g.dim() != 5 {
		t.Fatalf("full accel genome dim = %d, want 5", g.dim())
	}
	cand := decode(sc, g, []float64{0, 0, 0, 0, 0})
	if cand.PanelArea != solar.MinPanelArea {
		t.Fatalf("genome 0 should decode to min panel, got %v", cand.PanelArea)
	}
	if cand.Accel.NPE != accel.MinPE {
		t.Fatalf("genome 0 should decode to 1 PE, got %d", cand.Accel.NPE)
	}
	cand = decode(sc, g, []float64{1, 1, 1, 1, 1})
	if cand.Accel.NPE != accel.MaxPE || cand.Accel.CacheBytes != accel.MaxCacheBytes {
		t.Fatalf("genome 1 should decode to max accel, got %s", cand)
	}
	if units.Bytes(0) != 0 { // keep units import honest
		t.Fatal("unreachable")
	}
}

func TestForcedArchPinned(t *testing.T) {
	a := accel.Eyeriss
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &a}
	out, err := Explore(sc, Full, smallGA(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Best.Candidate.Accel.Arch; got != accel.Eyeriss {
		t.Fatalf("arch = %v, want pinned eyeriss", got)
	}
}

func TestParetoSearchNSGA(t *testing.T) {
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: MSP, Objective: LatSP}
	cfg := smallGA(13)
	out, err := ParetoSearch(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	front, evals := out.Front, out.Evals
	if len(front) < 3 {
		t.Fatalf("front has only %d points", len(front))
	}
	if evals < cfg.Population {
		t.Fatalf("evals = %d", evals)
	}
	if len(out.Quality) != len(out.History) || len(out.Quality) == 0 {
		t.Fatalf("telemetry lengths = %d/%d", len(out.Quality), len(out.History))
	}
	if last := out.Quality[len(out.Quality)-1]; last.Hypervolume <= 0 || last.FrontSize < 1 {
		t.Fatalf("final quality record malformed: %+v", last)
	}
	// Non-dominated and sorted: bigger panels must buy lower latency.
	for i := 1; i < len(front); i++ {
		if front[i].PanelArea < front[i-1].PanelArea {
			t.Fatal("front not sorted by panel area")
		}
		if front[i].Latency >= front[i-1].Latency {
			t.Fatalf("front point %d dominated", i)
		}
	}
	// NSGA-II at ~equal budget should reach a front at least as wide as
	// the random scan's.
	_, scanFront, err := ParetoScan(sc, evals, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanFront) > 0 && len(front) > 0 {
		nsgaBest := front[len(front)-1].Latency
		scanBest := scanFront[len(scanFront)-1].Latency
		if float64(nsgaBest) > float64(scanBest)*1.25 {
			t.Fatalf("NSGA front min latency %v much worse than scan %v", nsgaBest, scanBest)
		}
	}
}
