package explore

import (
	"math"
	"sync"
	"sync/atomic"

	"chrysalis/internal/accel"
	"chrysalis/internal/dataflow"
	"chrysalis/internal/energy"
	"chrysalis/internal/intermittent"
	"chrysalis/internal/obs"
	"chrysalis/internal/solar"
	"chrysalis/internal/units"
)

// fingerprint canonically identifies everything the per-layer plan
// ladders depend on: the inference-side hardware (platform plus, for
// accelerator candidates, the full accel config), the exception rate
// and the workload identity. The energy genes (panel area, capacitance)
// are deliberately absent — plans are budget-independent, the budget
// only selects a ladder rung at scan time — so candidates that differ
// only in energy genes share one cache entry. On the MSP platform the
// fingerprint is constant across the whole search.
type fingerprint struct {
	platform  PlatformKind
	arch      accel.Arch
	npe       int
	cache     units.Bytes
	rexc      float64
	workload  string
	elemBytes int
	layers    int
}

// fingerprintOf derives the candidate's fingerprint under a
// default-filled scenario. It allocates nothing (comparable struct key).
func fingerprintOf(sc Scenario, cand Candidate) fingerprint {
	fp := fingerprint{
		platform:  sc.Platform,
		rexc:      sc.Rexc,
		workload:  sc.Workload.Name,
		elemBytes: sc.Workload.ElemBytes,
		layers:    len(sc.Workload.Layers),
	}
	if cand.Accel != nil {
		fp.arch = cand.Accel.Arch
		fp.npe = cand.Accel.NPE
		fp.cache = cand.Accel.CacheBytes
	}
	return fp
}

// dfCtx pairs a dataflow with the hardware cost constants it implies
// for one candidate.
type dfCtx struct {
	df dataflow.Dataflow
	hw dataflow.HW
}

// ladderSet is the complete precomputed mapping space for one
// fingerprint: the dataflow contexts the inner optimizer explores and,
// per layer, one ladder per (dataflow, partition) pair. It is immutable
// after construction and therefore shared freely across goroutines.
type ladderSet struct {
	ctxs []dfCtx
	// ladders[layer][2*ctxIndex + int(partition)]
	ladders [][]intermittent.Ladder
}

// ladderAt returns the ladder for (layer, dataflow context, partition).
func (ls *ladderSet) ladderAt(layer, ctx int, part dataflow.Partition) *intermittent.Ladder {
	return &ls.ladders[layer][2*ctx+int(part)]
}

// buildLadderSet computes every ladder the inner search needs for one
// hardware fingerprint, in the exact order the per-call search explored
// them (dataflows outer, partitions inner) so scans reproduce the old
// trajectory bit for bit.
func buildLadderSet(sc Scenario, cand Candidate) (*ladderSet, error) {
	dfs := dataflowChoices(sc)
	ls := &ladderSet{ctxs: make([]dfCtx, 0, len(dfs))}
	for _, df := range dfs {
		hw, err := platformHW(sc, cand, df)
		if err != nil {
			return nil, err
		}
		ls.ctxs = append(ls.ctxs, dfCtx{df: df, hw: hw})
	}
	ls.ladders = make([][]intermittent.Ladder, len(sc.Workload.Layers))
	for li, l := range sc.Workload.Layers {
		row := make([]intermittent.Ladder, 2*len(ls.ctxs))
		for ci, ctx := range ls.ctxs {
			for _, part := range []dataflow.Partition{dataflow.ByChannel, dataflow.BySpatial} {
				ld, err := intermittent.BuildLadderTraced(sc.Trace, l, sc.Workload.ElemBytes, ctx.df, part, ctx.hw, sc.Rexc)
				if err != nil {
					return nil, err
				}
				row[2*ci+int(part)] = ld
			}
		}
		ls.ladders[li] = row
	}
	return ls, nil
}

// Process-wide cumulative plan-cache counters, aggregated across every
// Evaluator so serving layers (chrysalisd /metrics) can export them.
var (
	globalCacheHits   atomic.Int64
	globalCacheMisses atomic.Int64
)

// EvalCacheCounters returns the process-wide cumulative evaluator
// plan-cache hit and miss counts. Both are monotonic, suitable for
// Prometheus counter export.
func EvalCacheCounters() (hits, misses int64) {
	return globalCacheHits.Load(), globalCacheMisses.Load()
}

// cacheShards stripes the fingerprint map. 16 shards keeps the worst
// case (every worker missing a different fingerprint at once) lock-free
// for up to 16 hardware workers while costing only 16 small maps; the
// common case never touches the stripe lock at all thanks to the
// per-worker last-lookup slots.
const cacheShards = 16

// lastSlots is how many per-worker last-lookup slots a cache carries.
// Workers index slots by worker&`(lastSlots-1)`, so up to 16 workers
// get private slots and larger pools share gracefully.
const lastSlots = 16

// fingerprintHash mixes every fingerprint field into a shard index with
// an FNV-1a over the fixed-width fields plus the workload name. It is
// allocation-free and deliberately avoids hash/maphash so the module's
// floor stays at go1.22.
func fingerprintHash(fp fingerprint) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(fp.platform))
	mix(uint64(fp.arch))
	mix(uint64(fp.npe))
	mix(uint64(fp.cache))
	mix(math.Float64bits(fp.rexc))
	mix(uint64(fp.elemBytes))
	mix(uint64(fp.layers))
	for i := 0; i < len(fp.workload); i++ {
		h ^= uint64(fp.workload[i])
		h *= prime64
	}
	return h
}

// planShard is one mutex stripe of the fingerprint map.
type planShard struct {
	mu   sync.RWMutex
	sets map[fingerprint]*ladderSet
	// Pad each shard to its own cache line so neighboring stripe locks
	// don't false-share under concurrent misses.
	_ [24]byte
}

// lastSlot is one per-worker last-lookup pointer, padded to a cache
// line: a single shared atomic.Pointer fast path ping-pongs its line
// between every core on the hit path, which is exactly the steady state
// on the MSP platform (one fingerprint, every lookup a hit).
type lastSlot struct {
	p atomic.Pointer[lastLookup]
	_ [56]byte
}

// planCache memoizes ladder sets per hardware fingerprint for one
// Evaluator. It is safe for concurrent use (search.GAConfig.Workers >
// 1): lookups take a striped read lock keyed by the fingerprint hash,
// and concurrent misses on the same fingerprint coalesce through a
// per-fingerprint single-flight group, so every set is built exactly
// once no matter how many workers miss it at once.
type planCache struct {
	shards [cacheShards]planShard
	// last short-circuits the common case of consecutive lookups with
	// the same fingerprint (on MSP the fingerprint never changes), one
	// slot per worker so the steady-state hit touches no shared line.
	last     [lastSlots]lastSlot
	hits     atomic.Int64
	misses   atomic.Int64
	warmHits atomic.Int64
	// builds counts ladder sets this cache actually constructed (not
	// served warm, not shared from another worker's in-flight build).
	builds atomic.Int64
	// warm, when non-nil, is the process-lifetime tier consulted between
	// a shard miss and a build; sets built here are published back to it.
	warm *WarmCache
	// flight coalesces this search's concurrent builds when no warm tier
	// is attached; with one attached, the tier's group is used instead so
	// deduplication spans concurrent searches too.
	flight flightGroup
}

// lastLookup is an immutable (fingerprint, ladder set) pair published
// atomically after each successful lookup.
type lastLookup struct {
	fp fingerprint
	ls *ladderSet
}

func newPlanCache() *planCache {
	pc := &planCache{}
	for i := range pc.shards {
		pc.shards[i].sets = make(map[fingerprint]*ladderSet)
	}
	return pc
}

// get returns the ladder set for the candidate's fingerprint, building
// and caching it on a miss. worker selects the caller's last-lookup
// slot; serial callers pass 0.
func (pc *planCache) get(sc Scenario, cand Candidate, worker int) (*ladderSet, error) {
	fp := fingerprintOf(sc, cand)
	slot := &pc.last[worker&(lastSlots-1)].p
	if le := slot.Load(); le != nil && le.fp == fp {
		pc.hits.Add(1)
		globalCacheHits.Add(1)
		return le.ls, nil
	}
	shard := &pc.shards[fingerprintHash(fp)&(cacheShards-1)]
	shard.mu.RLock()
	ls, ok := shard.sets[fp]
	shard.mu.RUnlock()
	if ok {
		pc.hits.Add(1)
		globalCacheHits.Add(1)
		slot.Store(&lastLookup{fp: fp, ls: ls})
		return ls, nil
	}
	// Per-search miss. Consult the warm tier first: a set another search
	// already built is adopted into this search's shard without a build.
	if w := pc.warm; w != nil {
		if ls, ok := w.lookup(fp); ok {
			pc.misses.Add(1)
			globalCacheMisses.Add(1)
			pc.warmHits.Add(1)
			pc.publish(shard, slot, fp, ls)
			return ls, nil
		}
	}
	// Build exactly once per fingerprint: the single-flight group (the
	// warm tier's when attached, so deduplication spans searches) elects
	// one builder; everyone else waits and shares its set.
	flight := &pc.flight
	if pc.warm != nil {
		flight = &pc.warm.flight
	}
	built, shared, err := flight.do(fp, func() (*ladderSet, error) {
		var sp *obs.Span
		if sc.Trace != nil {
			sp = sc.Trace.Start("explore", "ladder-build",
				obs.A("platform", sc.Platform.String()), obs.A("arch", fp.arch.String()),
				obs.A("npe", fp.npe), obs.A("layers", fp.layers))
		}
		pc.builds.Add(1)
		ls, err := buildLadderSet(sc, cand)
		if sp != nil {
			sp.End(obs.A("err", err != nil))
		}
		if err == nil && pc.warm != nil {
			pc.warm.admit(fp, ls)
		}
		return ls, err
	})
	if err != nil {
		return nil, err
	}
	// Waiters count as misses too — every lookup is a hit or a miss —
	// with the saved duplicate builds tallied on the warm tier.
	pc.misses.Add(1)
	globalCacheMisses.Add(1)
	if shared && pc.warm != nil {
		pc.warm.dedup.Add(1)
	}
	pc.publish(shard, slot, fp, built)
	return built, nil
}

// publish installs a set in the shard map (first writer wins — callers
// racing here always carry the identical single-flight result) and the
// caller's fast-path slot.
func (pc *planCache) publish(shard *planShard, slot *atomic.Pointer[lastLookup], fp fingerprint, ls *ladderSet) {
	shard.mu.Lock()
	if _, ok := shard.sets[fp]; !ok {
		shard.sets[fp] = ls
	}
	shard.mu.Unlock()
	slot.Store(&lastLookup{fp: fp, ls: ls})
}

// subsKey identifies a candidate's energy genes — the only inputs the
// energy subsystem depends on beyond the scenario's fixed environments.
type subsKey struct {
	panel units.AreaCM2
	cap   units.Capacitance
}

// subsKeyHash mixes the two energy genes into a shard index (FNV-1a
// over the float bit patterns, like fingerprintHash).
func subsKeyHash(k subsKey) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range [2]uint64{math.Float64bits(float64(k.panel)), math.Float64bits(float64(k.cap))} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// subsShard is one mutex stripe of the energy-gene map.
type subsShard struct {
	mu sync.RWMutex
	m  map[subsKey][]*energy.Subsystem
	_  [24]byte
}

// subsystemCache memoizes the per-environment energy subsystems keyed
// on the candidate's energy genes, striped across mutex shards like
// planCache (the outer GA revisits gene values constantly — elites,
// crossover copies — from every worker at once). The evaluation path
// only issues the subsystem's read-only closed-form queries
// (CycleBudget, sim.Analytic), so one instance safely serves concurrent
// evaluations.
type subsystemCache struct {
	envs   []solar.Environment
	shards [cacheShards]subsShard
}

func newSubsystemCache(envs []solar.Environment) *subsystemCache {
	c := &subsystemCache{envs: envs}
	for i := range c.shards {
		c.shards[i].m = make(map[subsKey][]*energy.Subsystem)
	}
	return c
}

// get returns the candidate's subsystems, building them on a miss. Like
// planCache, racing misses may build twice; the loser is discarded.
func (c *subsystemCache) get(cand Candidate) ([]*energy.Subsystem, error) {
	k := subsKey{panel: cand.PanelArea, cap: cand.Cap}
	shard := &c.shards[subsKeyHash(k)&(cacheShards-1)]
	shard.mu.RLock()
	v, ok := shard.m[k]
	shard.mu.RUnlock()
	if ok {
		return v, nil
	}
	built, err := buildSubsystems(c.envs, cand)
	if err != nil {
		return nil, err
	}
	shard.mu.Lock()
	if raced, ok := shard.m[k]; ok {
		built = raced
	} else {
		shard.m[k] = built
	}
	shard.mu.Unlock()
	return built, nil
}
