package explore

// The process-lifetime warm tier. The per-search planCache dies with
// its Evaluator, so every chrysalisd job rebuilds the plan ladders its
// neighbors just built — yet ladders are budget-independent by
// construction (see intermittent.Ladder): they depend only on the
// hardware fingerprint, never on the energy genes or the search
// configuration. WarmCache keeps finished ladder sets alive across
// searches in one byte-bounded, sharded, segmented-LRU store, so a
// fleet of near-duplicate design jobs pays for each hardware point's
// mapping space once per process instead of once per job.
//
// Three properties make this safe:
//
//   - ladderSet is immutable after construction, so one entry serves
//     any number of concurrent searches without copying.
//   - Builds are deterministic, so a warm-served set is bit-identical
//     to the set the search would have built itself; warm and cold runs
//     produce bit-identical Outcomes.
//   - Entries are stamped with the process's cost-model fingerprint
//     (ModelFingerprint), so a binary running a newer cost model never
//     serves ladders computed under an older one.

import (
	"container/list"
	"sync"
	"sync/atomic"
	"unsafe"

	"chrysalis/internal/dataflow"
	"chrysalis/internal/intermittent"
)

// ModelFingerprint mixes the version constants of every model a ladder
// set embeds (the dataflow cost model and the intermittent planner)
// into one value. Warm-tier entries are keyed on fingerprint PLUS this
// value: bumping either version constant invalidates every cached
// ladder set instead of silently serving stale physics.
func ModelFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [...]uint64{dataflow.CostModelVersion, intermittent.PlanModelVersion} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// flightCall is one in-flight ladder-set build: the leader publishes
// its result and closes done; waiters block on done and share it.
type flightCall struct {
	done chan struct{}
	ls   *ladderSet
	err  error
}

// flightGroup coalesces concurrent builds of the same fingerprint into
// exactly one: the first caller becomes the leader and runs build, any
// caller arriving while it is in flight waits for the leader's result
// instead of building a duplicate. This is the fix for the old
// documented planCache wart where concurrent misses on one fingerprint
// each built the (identical) set.
type flightGroup struct {
	mu    sync.Mutex
	calls map[fingerprint]*flightCall
}

// do returns build's result for fp, running build at most once across
// every concurrent caller. shared reports that this caller waited on
// another caller's build rather than running its own.
func (g *flightGroup) do(fp fingerprint, build func() (*ladderSet, error)) (ls *ladderSet, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[fingerprint]*flightCall)
	}
	if c, ok := g.calls[fp]; ok {
		g.mu.Unlock()
		<-c.done
		return c.ls, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[fp] = c
	g.mu.Unlock()

	c.ls, c.err = build()

	g.mu.Lock()
	delete(g.calls, fp)
	g.mu.Unlock()
	close(c.done)
	return c.ls, false, c.err
}

// warmShards stripes the warm tier like the per-search cache: 16 locks
// keep concurrent searches missing on different fingerprints out of
// each other's way, and the byte bound is enforced per stripe
// (maxBytes/warmShards each) so eviction never takes a global lock.
const warmShards = 16

// warmEntry is one resident ladder set with its eviction bookkeeping.
type warmEntry struct {
	fp    fingerprint
	model uint64
	ls    *ladderSet
	bytes int64
	// hot marks membership in the protected segment; elem is the
	// entry's node in whichever segment list currently holds it.
	hot  bool
	elem *list.Element
}

// warmShard is one stripe: a fingerprint index over two LRU segments.
// New entries enter probation; a second touch promotes to protected,
// so one-off fingerprints from a scanning workload cannot flush the
// ladder sets the steady near-duplicate traffic actually reuses.
type warmShard struct {
	mu        sync.Mutex
	entries   map[fingerprint]*warmEntry
	probation *list.List // *warmEntry, front = most recently touched
	protected *list.List
	bytes     int64 // resident estimate across both segments
	protBytes int64
}

// protectedFrac bounds the protected segment to this share of a
// shard's byte budget; promotions past it demote the protected tail
// back to probation so probation always keeps admission room.
const protectedFrac = 0.8

// WarmCache is a process-lifetime warm-start tier for plan ladder
// sets: searches that attach one (Scenario.Warm) publish every ladder
// set they build and reuse any set a previous search built for the
// same hardware fingerprint under the same cost-model version.
//
// The tier is byte-bounded on the estimated resident size of its
// ladder sets, evicting segmented-LRU per shard, and owns the
// per-fingerprint single-flight group, so N workers (of one search or
// of N concurrent searches) missing the same fingerprint build it
// once. It is safe for concurrent use and never affects results: warm
// and cold runs produce bit-identical Outcomes.
type WarmCache struct {
	shardCap int64
	model    uint64
	shards   [warmShards]warmShard
	flight   flightGroup

	hits        atomic.Int64
	misses      atomic.Int64
	dedup       atomic.Int64
	evictions   atomic.Int64
	expirations atomic.Int64
	bytes       atomic.Int64
	entries     atomic.Int64
}

// NewWarmCache builds a warm tier bounded to roughly maxBytes of
// estimated ladder-set memory (enforced as maxBytes/16 per shard). A
// non-positive bound returns nil — the disabled tier — so callers can
// wire a size knob through unconditionally.
func NewWarmCache(maxBytes int64) *WarmCache {
	if maxBytes <= 0 {
		return nil
	}
	c := &WarmCache{shardCap: maxBytes / warmShards, model: ModelFingerprint()}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.entries = make(map[fingerprint]*warmEntry)
		sh.probation = list.New()
		sh.protected = list.New()
	}
	return c
}

// WarmStats is a point-in-time snapshot of a warm tier's counters.
type WarmStats struct {
	// Hits and Misses count lookups by searches that fell through their
	// per-search tier; Dedup counts builds avoided by the single-flight
	// group (a waiter sharing a leader's in-flight build).
	Hits, Misses, Dedup int64
	// Evictions counts entries dropped by the byte bound; Expirations
	// counts entries dropped because their cost-model fingerprint no
	// longer matched the process's.
	Evictions, Expirations int64
	// Bytes and Entries describe current residency; MaxBytes is the
	// configured bound.
	Bytes, Entries, MaxBytes int64
}

// Stats snapshots the tier's counters. It is nil-safe: a disabled tier
// reports all zeros.
func (c *WarmCache) Stats() WarmStats {
	if c == nil {
		return WarmStats{}
	}
	return WarmStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Dedup:       c.dedup.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Bytes:       c.bytes.Load(),
		Entries:     c.entries.Load(),
		MaxBytes:    c.shardCap * warmShards,
	}
}

// HitRatio returns hits/(hits+misses), 0 before any lookup. Nil-safe.
func (c *WarmCache) HitRatio() float64 {
	s := c.Stats()
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// shardFor maps a fingerprint onto its stripe.
func (c *WarmCache) shardFor(fp fingerprint) *warmShard {
	return &c.shards[fingerprintHash(fp)&(warmShards-1)]
}

// lookup returns the resident ladder set for fp, promoting it within
// the segmented LRU. Entries stamped with a stale model fingerprint
// are expired on contact, never served.
func (c *WarmCache) lookup(fp fingerprint) (*ladderSet, bool) {
	sh := c.shardFor(fp)
	sh.mu.Lock()
	e, ok := sh.entries[fp]
	if ok && e.model != c.model {
		c.removeLocked(sh, e)
		c.expirations.Add(1)
		ok = false
	}
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if e.hot {
		sh.protected.MoveToFront(e.elem)
	} else {
		// Second touch: promote out of probation. If the protected
		// segment overflows its share, its tail rejoins probation as the
		// most recent probationer — still resident, one touch from
		// promotion again.
		sh.probation.Remove(e.elem)
		e.hot = true
		e.elem = sh.protected.PushFront(e)
		sh.protBytes += e.bytes
		protCap := int64(float64(c.shardCap) * protectedFrac)
		for sh.protBytes > protCap && sh.protected.Len() > 1 {
			tail := sh.protected.Back().Value.(*warmEntry)
			sh.protected.Remove(tail.elem)
			tail.hot = false
			tail.elem = sh.probation.PushFront(tail)
			sh.protBytes -= tail.bytes
		}
	}
	ls := e.ls
	sh.mu.Unlock()
	c.hits.Add(1)
	return ls, true
}

// admit publishes a freshly built ladder set, evicting cold entries
// until the shard fits its byte budget again. Sets bigger than a whole
// shard budget are served to the building search but never retained —
// admitting one would immediately evict it (plus everything else).
func (c *WarmCache) admit(fp fingerprint, ls *ladderSet) {
	sz := ladderSetBytes(ls)
	if sz > c.shardCap {
		return
	}
	sh := c.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[fp]; ok {
		if e.model == c.model {
			return // another search admitted the identical set first
		}
		c.removeLocked(sh, e)
		c.expirations.Add(1)
	}
	e := &warmEntry{fp: fp, model: c.model, ls: ls, bytes: sz}
	e.elem = sh.probation.PushFront(e)
	sh.entries[fp] = e
	sh.bytes += sz
	c.bytes.Add(sz)
	c.entries.Add(1)
	for sh.bytes > c.shardCap {
		var victim *warmEntry
		if back := sh.probation.Back(); back != nil && back.Value.(*warmEntry) != e {
			victim = back.Value.(*warmEntry)
		} else if back := sh.protected.Back(); back != nil {
			victim = back.Value.(*warmEntry)
		} else {
			break // only the new entry remains; it fits by the size gate above
		}
		c.removeLocked(sh, victim)
		c.evictions.Add(1)
	}
}

// removeLocked unlinks an entry from its shard; sh.mu must be held.
func (c *WarmCache) removeLocked(sh *warmShard, e *warmEntry) {
	if e.hot {
		sh.protected.Remove(e.elem)
		sh.protBytes -= e.bytes
	} else {
		sh.probation.Remove(e.elem)
	}
	delete(sh.entries, e.fp)
	sh.bytes -= e.bytes
	c.bytes.Add(-e.bytes)
	c.entries.Add(-1)
}

// ladderSetBytes estimates a set's resident size: the struct spines
// plus every ladder's rung slice and layer-name string. Rungs dominate
// (a deep workload's set holds thousands of 32-byte rungs); the spine
// terms keep shallow sets from rounding to zero.
func ladderSetBytes(ls *ladderSet) int64 {
	const (
		setSize    = int64(unsafe.Sizeof(ladderSet{}))
		ctxSize    = int64(unsafe.Sizeof(dfCtx{}))
		ladderSize = int64(unsafe.Sizeof(intermittent.Ladder{}))
		rungSize   = int64(unsafe.Sizeof(intermittent.Rung{}))
		rowHeader  = int64(unsafe.Sizeof([]intermittent.Ladder{}))
	)
	sz := setSize + int64(len(ls.ctxs))*ctxSize
	for _, row := range ls.ladders {
		sz += rowHeader
		for i := range row {
			sz += ladderSize + int64(len(row[i].Layer.Name)) + int64(cap(row[i].Rungs))*rungSize
		}
	}
	return sz
}
