package explore

import (
	"testing"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
)

func TestMapperString(t *testing.T) {
	if MapperGreedy.String() != "greedy" || MapperGA.String() != "gamma-ga" {
		t.Fatal("mapper names")
	}
}

func TestGAMapperFeasibleAndNearGreedy(t *testing.T) {
	// The greedy planner is exact for the per-layer-decomposable energy
	// objective, so CHRYSALIS-GAMMA must land on feasible mappings
	// within a modest factor of greedy (it validates the planner).
	for _, wl := range []dnn.Workload{dnn.HAR(), dnn.KWS()} {
		scGreedy := Scenario{Workload: wl, Platform: MSP, Objective: LatSP}
		scGA := scGreedy
		scGA.Mapper = MapperGA
		cand := Candidate{PanelArea: 8, Cap: 470e-6}

		evGreedy, err := EvaluateCandidate(scGreedy, cand)
		if err != nil {
			t.Fatalf("%s greedy: %v", wl.Name, err)
		}
		evGA, err := EvaluateCandidate(scGA, cand)
		if err != nil {
			t.Fatalf("%s gamma: %v", wl.Name, err)
		}
		if !evGreedy.Feasible || !evGA.Feasible {
			t.Fatalf("%s: both mappers should be feasible", wl.Name)
		}
		ratio := float64(evGA.AvgLatency) / float64(evGreedy.AvgLatency)
		if ratio < 0.99 {
			t.Errorf("%s: GA mapper (%v) beat the exact greedy planner (%v)?",
				wl.Name, evGA.AvgLatency, evGreedy.AvgLatency)
		}
		if ratio > 1.5 {
			t.Errorf("%s: GA mapper (%v) much worse than greedy (%v)",
				wl.Name, evGA.AvgLatency, evGreedy.AvgLatency)
		}
	}
}

func TestGAMapperOnAccelerator(t *testing.T) {
	ac := accel.Config{Arch: accel.Eyeriss, NPE: 64, CacheBytes: 512}
	sc := Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Mapper: MapperGA}
	ev, err := EvaluateCandidate(sc, Candidate{PanelArea: 16, Cap: 1e-3, Accel: &ac})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("gamma mapper should find a feasible accelerator mapping")
	}
	if len(ev.Mappings) != len(dnn.HAR().Layers) {
		t.Fatalf("mappings = %d", len(ev.Mappings))
	}
}

func TestGAMapperDeterministicPerCandidate(t *testing.T) {
	sc := Scenario{Workload: dnn.KWS(), Platform: MSP, Objective: LatSP, Mapper: MapperGA}
	cand := Candidate{PanelArea: 8, Cap: 470e-6}
	a, err := EvaluateCandidate(sc, cand)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateCandidate(sc, cand)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgLatency != b.AvgLatency {
		t.Fatal("gamma mapper must be deterministic per candidate")
	}
}
