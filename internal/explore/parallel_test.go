package explore

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"chrysalis/internal/accel"
	"chrysalis/internal/dnn"
	"chrysalis/internal/units"
)

// exploreWorkers runs Explore with an explicit worker count and strips
// the (deliberately worker-dependent) Workers field so the rest of the
// Outcome can be compared bit for bit.
func exploreWorkers(t *testing.T, sc Scenario, b Baseline, workers int) Outcome {
	t.Helper()
	cfg := smallGA(11)
	cfg.Workers = workers
	// Opt out of the cost-aware serial fallback: this contract test must
	// exercise true parallel dispatch even for cheap score paths.
	cfg.SerialCostFloor = -1
	out, err := Explore(sc, b, cfg)
	if err != nil {
		t.Fatalf("Explore(%v, workers=%d): %v", b, workers, err)
	}
	out.Workers = 0
	// Cache totals depend on which worker's fast-path slot saw the
	// fingerprint first, not on the search trajectory; the determinism
	// contract covers the design outcome, so normalize them too.
	out.CacheHits, out.CacheMisses = 0, 0
	return out
}

// TestExploreWorkersBitIdentical is the determinism contract test: the
// same seed must produce a bit-identical Outcome whether candidates are
// evaluated serially or across 8 workers, on every platform (MSP430,
// TPU-pinned and Eyeriss-pinned accelerators) and every Table VI
// baseline.
func TestExploreWorkersBitIdentical(t *testing.T) {
	tpu, eyeriss := accel.TPU, accel.Eyeriss
	platforms := []struct {
		name string
		sc   Scenario
	}{
		{"msp430", Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}},
		{"accel-tpu", Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &tpu}},
		{"accel-eyeriss", Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &eyeriss}},
	}
	for _, tc := range platforms {
		for _, b := range Baselines() {
			t.Run(fmt.Sprintf("%s/%s", tc.name, b), func(t *testing.T) {
				serial := exploreWorkers(t, tc.sc, b, 1)
				parallel := exploreWorkers(t, tc.sc, b, 8)
				if !reflect.DeepEqual(serial, parallel) {
					t.Errorf("Outcome differs between Workers=1 and Workers=8\nserial:   value=%v cand=%v\nparallel: value=%v cand=%v",
						serial.Value, serial.Best.Candidate, parallel.Value, parallel.Best.Candidate)
				}
			})
		}
	}
}

// TestSerialCostFloorBitIdentical checks the cost-aware serial
// fallback (installed by default when SerialCostFloor is zero) never
// changes the Outcome: the same seed produces bit-identical results
// whether the fallback is active, disabled, or the search is fully
// serial. The MSP score path is a few µs per candidate, well under
// DefaultSerialCostFloor, so the default-floor run genuinely exercises
// the parallel→serial demotion.
func TestSerialCostFloorBitIdentical(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}
	run := func(workers int, floor time.Duration) Outcome {
		t.Helper()
		cfg := smallGA(11)
		cfg.Workers = workers
		cfg.SerialCostFloor = floor
		out, err := Explore(sc, Full, cfg)
		if err != nil {
			t.Fatalf("Explore(workers=%d, floor=%v): %v", workers, floor, err)
		}
		out.Workers = 0
		out.CacheHits, out.CacheMisses = 0, 0
		return out
	}
	serial := run(1, -1)
	withFloor := run(8, 0) // zero installs DefaultSerialCostFloor
	noFloor := run(8, -1)
	if !reflect.DeepEqual(serial, withFloor) {
		t.Errorf("default floor changed the Outcome vs serial\nserial: value=%v cand=%v\nfloor:  value=%v cand=%v",
			serial.Value, serial.Best.Candidate, withFloor.Value, withFloor.Best.Candidate)
	}
	if !reflect.DeepEqual(serial, noFloor) {
		t.Errorf("floor opt-out changed the Outcome vs serial\nserial: value=%v cand=%v\nno floor: value=%v cand=%v",
			serial.Value, serial.Best.Candidate, noFloor.Value, noFloor.Best.Candidate)
	}
}

// TestExploreWorkersDefaultsToAllCores checks the Workers=0 default
// resolves to GOMAXPROCS and is reported in the Outcome.
func TestExploreWorkersDefaultsToAllCores(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}
	out, err := Explore(sc, Full, smallGA(11))
	if err != nil {
		t.Fatal(err)
	}
	if out.Workers != resolveWorkers(0) {
		t.Errorf("default Outcome.Workers = %d, want %d", out.Workers, resolveWorkers(0))
	}
	cfg := smallGA(11)
	cfg.Workers = -1
	out, err = Explore(sc, Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Workers != 1 {
		t.Errorf("Workers=-1 Outcome.Workers = %d, want 1 (serial opt-out)", out.Workers)
	}
}

// TestParetoScanWorkersBitIdentical checks the random-scan Pareto path
// returns identically ordered points and front for any worker count.
func TestParetoScanWorkersBitIdentical(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}
	sPts, sFront, err := ParetoScanWorkers(sc, 120, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pPts, pFront, err := ParetoScanWorkers(sc, 120, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sPts, pPts) {
		t.Error("ParetoScan points differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(sFront, pFront) {
		t.Error("ParetoScan front differs between 1 and 8 workers")
	}
}

// TestParetoSearchWorkersBitIdentical checks the NSGA-II front path.
func TestParetoSearchWorkersBitIdentical(t *testing.T) {
	sc := Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}
	run := func(workers int) ParetoOutcome {
		cfg := smallGA(5)
		cfg.Workers = workers
		out, err := ParetoSearch(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out.Workers = 0
		return out
	}
	if serial, parallel := run(1), run(8); !reflect.DeepEqual(serial, parallel) {
		t.Error("ParetoSearch outcomes differ between 1 and 8 workers")
	}
}

// TestPatienceEarlyStopWorkersBitIdentical extends the determinism
// contract to the plateau early-stop policy: with Patience set, a
// serial and an 8-worker run must stop at the identical generation
// with bit-identical Outcomes (including the Quality series the stop
// decision is derived from), on both platform presets.
func TestPatienceEarlyStopWorkersBitIdentical(t *testing.T) {
	tpu := accel.TPU
	presets := []struct {
		name string
		sc   Scenario
	}{
		{"msp430", Scenario{Workload: dnn.HAR(), Platform: MSP, Objective: LatSP}},
		{"accel-tpu", Scenario{Workload: dnn.HAR(), Platform: Accel, Objective: LatSP, Arch: &tpu}},
	}
	run := func(t *testing.T, sc Scenario, workers int) Outcome {
		t.Helper()
		cfg := smallGA(11)
		cfg.Generations = 40
		cfg.Patience = 3
		cfg.Workers = workers
		cfg.SerialCostFloor = -1
		out, err := Explore(sc, Full, cfg)
		if err != nil {
			t.Fatalf("Explore(workers=%d): %v", workers, err)
		}
		out.Workers = 0
		out.CacheHits, out.CacheMisses = 0, 0
		return out
	}
	for _, tc := range presets {
		t.Run(tc.name, func(t *testing.T) {
			serial := run(t, tc.sc, 1)
			parallel := run(t, tc.sc, 8)
			if !serial.StoppedEarly || len(serial.History) >= 40 {
				t.Fatalf("patience 3 should stop a 40-generation run early, ran %d (stopped=%v)",
					len(serial.History), serial.StoppedEarly)
			}
			if len(serial.History) != len(parallel.History) {
				t.Fatalf("stop generation differs: %d serial vs %d parallel",
					len(serial.History), len(parallel.History))
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("Outcome differs between Workers=1 and Workers=8\nserial:   value=%v\nparallel: value=%v",
					serial.Value, parallel.Value)
			}
		})
	}
}

// TestBestTrackerTieBreak checks ties on the objective value resolve to
// the lowest evaluation index regardless of observation order — the
// serial fold's first-wins semantics.
func TestBestTrackerTieBreak(t *testing.T) {
	bt := newBestTracker()
	bt.observe(7, 1.5, []float64{0.7})
	bt.observe(3, 1.5, []float64{0.3}) // same value, lower index: must win
	bt.observe(9, 1.5, []float64{0.9}) // same value, higher index: must lose
	if bt.index != 3 || bt.genome[0] != 0.3 {
		t.Errorf("tie-break picked index %d genome %v, want index 3 genome [0.3]", bt.index, bt.genome)
	}
	bt.observe(20, 1.0, []float64{0.2}) // strictly better value wins at any index
	if bt.index != 20 || bt.value != 1.0 {
		t.Errorf("strict improvement lost: index %d value %v", bt.index, bt.value)
	}
	bt.observe(1, math.Inf(1), []float64{0.1}) // infeasible never recorded
	if bt.index != 20 {
		t.Error("infeasible observation overwrote the best")
	}
}

// TestPlanCacheShardHammer hammers the sharded plan cache from many
// goroutines over many distinct fingerprints (more than the shard
// count, so stripes are contended and shared) and checks the counter
// invariant: every lookup is either a hit or a miss, and every distinct
// fingerprint missed at least once.
func TestPlanCacheShardHammer(t *testing.T) {
	tpu := accel.TPU
	sc := Scenario{Workload: dnn.SimpleConv(), Platform: Accel, Objective: LatSP, Arch: &tpu}
	e, err := NewEvaluator(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 24 distinct fingerprints (> cacheShards=16): NPE varies, and NPE is
	// a fingerprint field.
	const distinct = 24
	cands := make([]Candidate, distinct)
	for i := range cands {
		cands[i] = Candidate{
			PanelArea: 10,
			Cap:       470e-6,
			Accel:     &accel.Config{Arch: accel.TPU, NPE: 4 + i, CacheBytes: units.Bytes(256)},
		}
	}
	const goroutines = 16
	const rounds = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				cand := cands[(worker+r)%distinct]
				if _, err := e.cache.get(e.sc, cand, worker); err != nil {
					t.Errorf("worker %d: %v", worker, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := e.CacheStats()
	lookups := int64(goroutines * rounds)
	if hits+misses != lookups {
		t.Errorf("hits(%d)+misses(%d) = %d, want %d lookups", hits, misses, hits+misses, lookups)
	}
	if misses < distinct {
		t.Errorf("misses = %d, want >= %d (every distinct fingerprint builds at least once)", misses, distinct)
	}
	// Entries must all be retrievable and shared after the hammer.
	for i, cand := range cands {
		ls1, err := e.cache.get(e.sc, cand, 0)
		if err != nil {
			t.Fatal(err)
		}
		ls2, err := e.cache.get(e.sc, cand, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ls1 != ls2 {
			t.Errorf("candidate %d: different ladder-set pointers from different workers", i)
		}
	}
}
