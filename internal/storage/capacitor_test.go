package storage

import (
	"math"
	"testing"
	"testing/quick"

	"chrysalis/internal/units"
)

func mustCap(t *testing.T, c units.Capacitance) *Capacitor {
	t.Helper()
	cp, err := New(c, 0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0.5e-6, 0, 5); err == nil {
		t.Error("below 1uF should be rejected")
	}
	if _, err := New(20e-3, 0, 5); err == nil {
		t.Error("above 10mF should be rejected")
	}
	if _, err := New(100e-6, 0, 0); err == nil {
		t.Error("zero rated voltage should be rejected")
	}
	c, err := New(100e-6, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kcap != DefaultKcap {
		t.Errorf("default kcap = %v, want %v", c.Kcap, DefaultKcap)
	}
	c2, _ := New(100e-6, 0.02, 5)
	if c2.Kcap != 0.02 {
		t.Errorf("explicit kcap = %v, want 0.02", c2.Kcap)
	}
}

func TestSetVoltageClamping(t *testing.T) {
	c := mustCap(t, 1e-3)
	c.SetVoltage(3)
	if c.Voltage() != 3 {
		t.Fatalf("voltage = %v", c.Voltage())
	}
	c.SetVoltage(-1)
	if c.Voltage() != 0 {
		t.Fatalf("negative set should clamp to 0, got %v", c.Voltage())
	}
	c.SetVoltage(99)
	if c.Voltage() != 5 {
		t.Fatalf("over-rated set should clamp to rated, got %v", c.Voltage())
	}
}

func TestLeakageEq2(t *testing.T) {
	// Eq. 2: I_R = k_cap·C·U. For 1mF at 3V with k=0.01 => 30uA.
	c := mustCap(t, 1e-3)
	c.SetVoltage(3)
	if got := c.LeakageCurrent(); !units.ApproxEqual(float64(got), 30e-6, 1e-12) {
		t.Fatalf("I_R = %v, want 30uA", got)
	}
	// Power = I·U = 90uW.
	if got := c.LeakagePower(); !units.ApproxEqual(float64(got), 90e-6, 1e-12) {
		t.Fatalf("P_leak = %v, want 90uW", got)
	}
}

func TestLeakageScalesWithSize(t *testing.T) {
	small := mustCap(t, 10e-6)
	big := mustCap(t, 10e-3)
	small.SetVoltage(3)
	big.SetVoltage(3)
	if small.LeakagePower() >= big.LeakagePower() {
		t.Fatal("larger capacitor must leak more (paper Fig. 9 premise)")
	}
}

func TestUsableAbove(t *testing.T) {
	c := mustCap(t, 1e-3)
	c.SetVoltage(3)
	got := c.UsableAbove(1.8)
	want := 0.5 * 1e-3 * (9 - 3.24)
	if !units.ApproxEqual(float64(got), want, 1e-9) {
		t.Fatalf("usable = %v, want %v", got, want)
	}
	c.SetVoltage(1.0)
	if c.UsableAbove(1.8) != 0 {
		t.Fatal("below cutoff there is no usable energy")
	}
}

func TestStepChargesTowardHarvest(t *testing.T) {
	c := mustCap(t, 100e-6)
	r := c.Step(6e-3, 0, 1) // 6mW for 1s into 100uF
	if r.Charged <= 0 {
		t.Fatal("should charge")
	}
	if c.Voltage() <= 0 {
		t.Fatal("voltage should rise")
	}
	if r.Starved != 0 || r.Delivered != 0 {
		t.Fatal("no load => no delivery or starvation")
	}
}

func TestStepSpillsAtRatedVoltage(t *testing.T) {
	c := mustCap(t, 1e-6)
	c.SetVoltage(5) // at rated
	r := c.Step(10e-3, 0, 1)
	if r.Spilled <= 0 {
		t.Fatal("full capacitor must spill harvest")
	}
	if c.Voltage() > 5+1e-12 {
		t.Fatalf("voltage exceeded rated: %v", c.Voltage())
	}
}

func TestStepStarvation(t *testing.T) {
	c := mustCap(t, 1e-6) // tiny: ½·1e-6·25 = 12.5uJ max
	c.SetVoltage(5)
	r := c.Step(0, 1 /*1W*/, 1)
	if r.Starved <= 0 {
		t.Fatal("1W from a 1uF cap must starve")
	}
	if c.Voltage() != 0 {
		t.Fatalf("voltage should be drained to 0, got %v", c.Voltage())
	}
}

func TestStepZeroDt(t *testing.T) {
	c := mustCap(t, 100e-6)
	c.SetVoltage(3)
	r := c.Step(1e-3, 1e-3, 0)
	if r != (StepResult{}) {
		t.Fatal("zero dt must be a no-op")
	}
	if c.Voltage() != 3 {
		t.Fatal("voltage must be unchanged")
	}
}

func TestStepEnergyConservation(t *testing.T) {
	// Property: stored_after = stored_before + charged - leaked - delivered.
	f := func(capSel, vSel, inSel, loadSel uint8) bool {
		caps := []units.Capacitance{1e-6, 47e-6, 100e-6, 1e-3, 10e-3}
		c, err := New(caps[int(capSel)%len(caps)], 0, 5)
		if err != nil {
			return false
		}
		c.SetVoltage(units.Voltage(float64(vSel) / 255 * 5))
		before := c.Stored()
		in := units.Power(float64(inSel) / 255 * 20e-3)
		load := units.Power(float64(loadSel) / 255 * 50e-3)
		r := c.Step(in, load, 0.1)
		after := c.Stored()
		lhs := float64(after)
		rhs := float64(before) + float64(r.Charged) - float64(r.Leaked) - float64(r.Delivered)
		return units.ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStepHarvestAccounting(t *testing.T) {
	// Property: charged + spilled == harvested input energy.
	f := func(vSel, inSel uint8) bool {
		c, err := New(10e-6, 0, 5)
		if err != nil {
			return false
		}
		c.SetVoltage(units.Voltage(float64(vSel) / 255 * 5))
		in := units.Power(float64(inSel) / 255 * 30e-3)
		r := c.Step(in, 0, 1)
		total := float64(r.Charged) + float64(r.Spilled)
		return units.ApproxEqual(total, float64(in)*1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleEnergyEq3(t *testing.T) {
	// Eq. 3 closed form with hand-computed numbers:
	// C=100uF, U_on=3, U_off=1.8, P=6mW, T=1s, k=0.01.
	// store = ½·1e-4·(9−3.24) = 2.88e-4
	// leak term = 0.01·1e-4·9 = 9e-6 W
	// E = 2.88e-4 + 1·(6e-3 − 9e-6) = 6.279e-3
	got := CycleEnergy(100e-6, 0.01, 3, 1.8, 6e-3, 1)
	if !units.ApproxEqual(float64(got), 6.279e-3, 1e-9) {
		t.Fatalf("CycleEnergy = %v, want 6.279mJ", got)
	}
}

func TestCycleEnergyLeakageDominates(t *testing.T) {
	// A 10mF capacitor at 3V leaks 0.01·0.01·9 = 0.9mW. With only 0.25mW
	// harvested, long cycles go negative => unavailability (Fig. 2b).
	got := CycleEnergy(10e-3, 0.01, 3, 1.8, 0.25e-3, 200)
	if got >= 0 {
		t.Fatalf("expected negative available energy, got %v", got)
	}
}

func TestChargeTime(t *testing.T) {
	// Without leakage: E/P. 100uF from 1.8 to 3V needs 2.88e-4 J; at 6mW
	// that's 48ms ignoring leakage; with leakage slightly more.
	got := ChargeTime(100e-6, 0.01, 3, 1.8, 6e-3)
	ideal := 2.88e-4 / 6e-3
	if float64(got) <= ideal {
		t.Fatalf("leakage should lengthen charge time: got %v, ideal %v", got, ideal)
	}
	if float64(got) > ideal*1.01 {
		t.Fatalf("tiny leakage should not add >1%%: got %v, ideal %v", got, ideal)
	}
}

func TestChargeTimeNeverOn(t *testing.T) {
	// Harvest below leakage => infinite charge time.
	got := ChargeTime(10e-3, 0.01, 3, 1.8, 0.1e-3)
	if !math.IsInf(float64(got), 1) {
		t.Fatalf("expected +Inf, got %v", got)
	}
}

func TestChargeTimeAlreadyCharged(t *testing.T) {
	if got := ChargeTime(100e-6, 0.01, 1.8, 3, 6e-3); got != 0 {
		t.Fatalf("uOn <= uOff should give 0 charge time, got %v", got)
	}
}

func TestStepSequenceReachesEquilibrium(t *testing.T) {
	// Charging a capacitor with no load must asymptote at the rated
	// voltage or the leakage equilibrium, never oscillate above rated.
	c := mustCap(t, 100e-6)
	var prev units.Voltage
	for i := 0; i < 5000; i++ {
		c.Step(1e-3, 0, 0.01)
		v := c.Voltage()
		if v > 5+1e-9 {
			t.Fatalf("voltage exceeded rated at step %d: %v", i, v)
		}
		if v+1e-9 < prev && prev < 4.99 {
			t.Fatalf("voltage decreased while charging below rated: %v -> %v", prev, v)
		}
		prev = v
	}
	if prev < 4.9 {
		t.Fatalf("1mW into 100uF should saturate near rated, got %v", prev)
	}
}

func TestTechSpecs(t *testing.T) {
	if Electrolytic.String() != "electrolytic" || Ceramic.String() != "ceramic" || Supercap.String() != "supercap" {
		t.Fatal("tech names")
	}
	if Tech(9).String() != "tech(9)" {
		t.Fatal("unknown tech name")
	}
	if len(Techs()) != 3 {
		t.Fatal("tech table size")
	}
	if _, err := SpecFor(Tech(9)); err == nil {
		t.Fatal("unknown tech should fail")
	}
	el, _ := SpecFor(Electrolytic)
	ce, _ := SpecFor(Ceramic)
	su, _ := SpecFor(Supercap)
	if ce.Kcap >= el.Kcap {
		t.Fatal("ceramic must leak less than electrolytic")
	}
	if su.Kcap <= el.Kcap {
		t.Fatal("supercap must self-discharge faster than electrolytic")
	}
}

func TestNewWithTech(t *testing.T) {
	// Ceramic at 47uF works and leaks less than electrolytic.
	ce, err := NewWithTech(Ceramic, 47e-6, 5)
	if err != nil {
		t.Fatal(err)
	}
	el, err := NewWithTech(Electrolytic, 47e-6, 5)
	if err != nil {
		t.Fatal(err)
	}
	ce.SetVoltage(3)
	el.SetVoltage(3)
	if ce.LeakagePower() >= el.LeakagePower() {
		t.Fatal("ceramic should leak less at the same size")
	}
	// Out-of-range sizes are rejected per technology.
	if _, err := NewWithTech(Ceramic, 1e-3, 5); err == nil {
		t.Fatal("1mF ceramic should be rejected")
	}
	if _, err := NewWithTech(Supercap, 100e-6, 5); err == nil {
		t.Fatal("100uF supercap should be rejected")
	}
	if _, err := NewWithTech(Tech(9), 100e-6, 5); err == nil {
		t.Fatal("unknown tech should be rejected")
	}
}
