// Package storage models the energy-buffering capacitor of an AuT energy
// subsystem. The paper (Sec. III-B.1) models the capacitor with two
// equations: the stored energy between the system threshold voltages,
// E_store = ½C(U_on² − U_off²), and the leakage current I_R = k_cap·C·U
// (Eq. 2), so larger capacitors buffer more energy per cycle but bleed
// proportionally more.
package storage

import (
	"fmt"
	"math"

	"chrysalis/internal/units"
)

// Paper design-space bounds for capacitor size (Tables IV and V).
const (
	MinCapacitance units.Capacitance = 1e-6  // 1 uF
	MaxCapacitance units.Capacitance = 10e-3 // 10 mF
)

// DefaultKcap is the leakage coefficient for electrolytic capacitors:
// I_leak ≈ 0.01·C·U, the standard rule of thumb for aluminum
// electrolytics (and the physics model referenced in Table III). Units:
// 1/s, so that k·F·V yields amperes.
const DefaultKcap = 0.01

// Capacitor is an electrolytic energy buffer. The zero value is not
// usable; construct with New.
type Capacitor struct {
	// C is the capacitance in farads.
	C units.Capacitance
	// Kcap is the leakage coefficient of Eq. 2 (1/s).
	Kcap float64
	// Rated is the rated (maximum) voltage; charging clamps here.
	Rated units.Voltage

	// v is the current voltage across the capacitor.
	v units.Voltage
}

// New builds a capacitor within the paper's design space. kcap <= 0
// selects DefaultKcap. The capacitor starts fully discharged.
func New(c units.Capacitance, kcap float64, rated units.Voltage) (*Capacitor, error) {
	if c < MinCapacitance || c > MaxCapacitance {
		return nil, fmt.Errorf("storage: capacitance %v outside design space [%v, %v]",
			c, MinCapacitance, MaxCapacitance)
	}
	if rated <= 0 {
		return nil, fmt.Errorf("storage: rated voltage must be positive, got %v", rated)
	}
	if kcap <= 0 {
		kcap = DefaultKcap
	}
	return &Capacitor{C: c, Kcap: kcap, Rated: rated}, nil
}

// Voltage returns the current voltage across the capacitor.
func (c *Capacitor) Voltage() units.Voltage { return c.v }

// SetVoltage forces the capacitor to a voltage, clamped to [0, Rated].
// Simulators use it to start a scenario in a known state.
func (c *Capacitor) SetVoltage(v units.Voltage) {
	c.v = units.Voltage(units.Clamp(float64(v), 0, float64(c.Rated)))
}

// Stored returns the total energy currently stored, ½CV².
func (c *Capacitor) Stored() units.Energy { return units.EnergyAtVoltage(c.C, c.v) }

// UsableAbove returns the energy available before the voltage drops to
// the cutoff uOff: ½C(V² − U_off²). It is zero when V ≤ U_off.
func (c *Capacitor) UsableAbove(uOff units.Voltage) units.Energy {
	if c.v <= uOff {
		return 0
	}
	return units.CapacitorEnergy(c.C, c.v, uOff)
}

// LeakageCurrent returns I_R = k_cap·C·U at the present voltage (Eq. 2).
func (c *Capacitor) LeakageCurrent() units.Current {
	return units.Current(c.Kcap * float64(c.C) * float64(c.v))
}

// LeakagePower returns the instantaneous leakage power I_R·U =
// k_cap·C·U². The paper's Eq. 3 approximates this with U fixed at U_on
// during execution; the step simulator uses the instantaneous value.
func (c *Capacitor) LeakagePower() units.Power {
	return units.Power(c.Kcap * float64(c.C) * float64(c.v) * float64(c.v))
}

// StepResult reports the energy flows during one simulation step.
type StepResult struct {
	// Charged is the energy actually absorbed into the capacitor.
	Charged units.Energy
	// Delivered is the energy actually supplied to the load.
	Delivered units.Energy
	// Leaked is the energy lost to leakage.
	Leaked units.Energy
	// Spilled is harvested energy rejected because the capacitor hit its
	// rated voltage (wasted harvest).
	Spilled units.Energy
	// Starved is load demand that could not be met (load exceeded the
	// stored energy); the simulator treats any starvation as a brownout.
	Starved units.Energy
}

// Step advances the capacitor by dt with harvest power in and load power
// out. Ordering within a step: harvest is credited, then load and
// leakage are debited; the voltage never goes below zero or above Rated.
// All flows are reported so that callers can assert energy conservation.
func (c *Capacitor) Step(in, load units.Power, dt units.Seconds) StepResult {
	var r StepResult
	if dt <= 0 {
		return r
	}
	e := c.Stored()

	// Credit harvest, spilling anything beyond the rated voltage.
	harvest := units.MulPT(in, dt)
	capMax := units.EnergyAtVoltage(c.C, c.Rated)
	space := capMax - e
	if space < 0 {
		space = 0
	}
	if harvest > space {
		r.Spilled = harvest - space
		harvest = space
	}
	r.Charged = harvest
	e += harvest

	// Debit leakage at the pre-discharge voltage (first-order explicit).
	leak := units.MulPT(c.LeakagePowerAt(units.VoltageForEnergy(c.C, e)), dt)
	if leak > e {
		leak = e
	}
	r.Leaked = leak
	e -= leak

	// Debit load.
	demand := units.MulPT(load, dt)
	if demand > e {
		r.Starved = demand - e
		demand = e
	}
	r.Delivered = demand
	e -= demand

	c.v = units.VoltageForEnergy(c.C, e)
	if c.v > c.Rated {
		c.v = c.Rated
	}
	return r
}

// LeakagePowerAt returns the leakage power if the capacitor were at
// voltage v.
func (c *Capacitor) LeakagePowerAt(v units.Voltage) units.Power {
	return units.Power(c.Kcap * float64(c.C) * float64(v) * float64(v))
}

// CycleEnergy returns the paper's Eq. 3 closed form: the energy
// available during one energy cycle of duration t, given harvest power
// pEh and thresholds uOn/uOff:
//
//	E_available = ½C(U_on²−U_off²) + T·(P_eh − k_cap·C·U_on²)
//
// The result can be negative when leakage exceeds harvest; callers treat
// that as an infeasible cycle.
func CycleEnergy(c units.Capacitance, kcap float64, uOn, uOff units.Voltage, pEh units.Power, t units.Seconds) units.Energy {
	store := units.CapacitorEnergy(c, uOn, uOff)
	net := float64(pEh) - kcap*float64(c)*float64(uOn)*float64(uOn)
	return store + units.Energy(net*float64(t))
}

// ChargeTime returns how long the capacitor takes to charge from uOff to
// uOn at constant harvest power pEh, accounting for leakage via the
// average-voltage approximation. Returns +Inf when net charging power is
// non-positive (the system can never turn on).
func ChargeTime(c units.Capacitance, kcap float64, uOn, uOff units.Voltage, pEh units.Power) units.Seconds {
	need := units.CapacitorEnergy(c, uOn, uOff)
	if need <= 0 {
		return 0
	}
	vAvg := (float64(uOn) + float64(uOff)) / 2
	leak := kcap * float64(c) * vAvg * vAvg
	net := float64(pEh) - leak
	if net <= 0 {
		return units.Seconds(math.Inf(1))
	}
	return units.Seconds(float64(need) / net)
}

// Tech identifies an energy-storage technology. The paper's design
// space uses aluminum electrolytics; alternative chemistries trade
// leakage against available sizes and are exposed as a component
// extension (Sec. III-D).
type Tech int

const (
	// Electrolytic is the paper's default: cheap, full 1 µF – 10 mF
	// range, leakage I ≈ 0.01·C·U.
	Electrolytic Tech = iota
	// Ceramic (MLCC) leaks an order of magnitude less but tops out at
	// ~100 µF for practical AuT form factors.
	Ceramic
	// Supercap covers only the large end of the range and self-
	// discharges faster.
	Supercap
)

// String implements fmt.Stringer.
func (t Tech) String() string {
	switch t {
	case Electrolytic:
		return "electrolytic"
	case Ceramic:
		return "ceramic"
	case Supercap:
		return "supercap"
	default:
		return fmt.Sprintf("tech(%d)", int(t))
	}
}

// TechSpec describes a storage technology's leakage coefficient and
// size range.
type TechSpec struct {
	Tech Tech
	Kcap float64
	Min  units.Capacitance
	Max  units.Capacitance
}

// Techs lists the supported technologies.
func Techs() []TechSpec {
	return []TechSpec{
		{Tech: Electrolytic, Kcap: DefaultKcap, Min: MinCapacitance, Max: MaxCapacitance},
		{Tech: Ceramic, Kcap: 0.001, Min: MinCapacitance, Max: 100e-6},
		{Tech: Supercap, Kcap: 0.02, Min: 1e-3, Max: MaxCapacitance},
	}
}

// SpecFor returns the TechSpec of a technology.
func SpecFor(t Tech) (TechSpec, error) {
	for _, s := range Techs() {
		if s.Tech == t {
			return s, nil
		}
	}
	return TechSpec{}, fmt.Errorf("storage: unknown technology %v", t)
}

// NewWithTech builds a capacitor of the given technology, enforcing its
// size range and leakage coefficient.
func NewWithTech(t Tech, c units.Capacitance, rated units.Voltage) (*Capacitor, error) {
	spec, err := SpecFor(t)
	if err != nil {
		return nil, err
	}
	if c < spec.Min || c > spec.Max {
		return nil, fmt.Errorf("storage: %v capacitor %v outside its range [%v, %v]",
			t, c, spec.Min, spec.Max)
	}
	return New(c, spec.Kcap, rated)
}
