package serve

import (
	"fmt"
	"net/http"

	"chrysalis/internal/core"
	"chrysalis/internal/search"
)

// Convergence is the wire form of GET /v1/designs/{id}/convergence: one
// search's per-generation quality series. For finished (and cached, and
// WAL-recovered) jobs it is cut from Result.Quality, which rides the
// result cache and the journal; for running jobs it is the live series
// streamed by the search so far, so a dashboard can poll the endpoint
// mid-flight and watch the curve grow.
type Convergence struct {
	ID           string   `json:"id"`
	State        JobState `json:"state"`
	Algorithm    string   `json:"algorithm"`
	StoppedEarly bool     `json:"stopped_early"`
	Generations  int      `json:"generations"`
	// History is the classic scalar convergence series, one point per
	// generation: the best objective so far for GA runs, the dominated
	// hypervolume of the current front for Pareto runs.
	History []float64 `json:"history"`
	// Series carries the full quality records (best/mean/median, spread,
	// diversity, stagnation and — for Pareto runs — hypervolume, front
	// size and spacing), parallel to History.
	Series search.QualityHistory `json:"series"`
}

// convergence assembles the response from whichever source the job's
// state makes authoritative.
func (j *job) convergence() Convergence {
	j.mu.Lock()
	c := Convergence{
		ID:        j.id,
		State:     j.state,
		Algorithm: j.js.req.Algorithm,
	}
	var res *core.Result
	if j.result != nil {
		r := *j.result
		res = &r
	}
	live := append(search.QualityHistory(nil), j.quality...)
	j.mu.Unlock()

	if res != nil {
		c.StoppedEarly = res.StoppedEarly
		c.History = res.History
		c.Series = res.Quality
	} else {
		c.Series = live
		for _, q := range live {
			if c.Algorithm == "nsga" {
				c.History = append(c.History, q.Hypervolume)
			} else {
				c.History = append(c.History, q.Best)
			}
		}
	}
	c.Generations = len(c.Series)
	return c
}

// handleConvergence serves one job's convergence telemetry.
func (s *Server) handleConvergence(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.convergence())
}
