package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestAuditSmoke is the end-to-end flight-recorder check behind `make
// audit-smoke`: submit a verify job, wait for it, and assert the
// energy-conservation audit passed and the waveform is served in both
// encodings, with the dashboard rendering it all with zero external
// assets.
func TestAuditSmoke(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	req := smallJob()
	req.Verify = true
	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	// The audit verdict rides the job status, and it must be clean.
	if final.Audit == nil {
		t.Fatal("verify job finished without an audit report")
	}
	if !final.Audit.OK() {
		t.Fatalf("audit failed: %+v", final.Audit.Findings)
	}
	if final.Audit.Cycles < 1 || final.Audit.Checks < 5 {
		t.Fatalf("implausible audit: %+v", final.Audit)
	}

	// Waveform as JSON: the full channel set with data in it.
	var wr WaveformResponse
	if code := getJSON(t, ts.URL+"/v1/designs/"+st.ID+"/waveform", &wr); code != http.StatusOK {
		t.Fatalf("waveform json: %d", code)
	}
	if wr.Audit == nil || !wr.Audit.OK() {
		t.Fatalf("waveform response audit: %+v", wr.Audit)
	}
	if wr.Waveform.RawSamples < 1 || len(wr.Waveform.Cycles) < 1 {
		t.Fatalf("empty waveform: %+v", wr.Waveform)
	}
	vcap := wr.Waveform.Channel("v_cap")
	if vcap == nil || len(vcap.Points) == 0 {
		t.Fatal("v_cap channel missing or empty")
	}
	for _, name := range []string{"e_stored", "p_harvest", "p_load", "p_leak", "e_harvest", "cycle"} {
		if wr.Waveform.Channel(name) == nil {
			t.Errorf("channel %s missing", name)
		}
	}

	// Waveform as CSV via the query parameter and via content
	// negotiation.
	for _, u := range []string{
		ts.URL + "/v1/designs/" + st.ID + "/waveform?format=csv",
		ts.URL + "/v1/designs/" + st.ID + "/waveform",
	} {
		hreq, err := http.NewRequest(http.MethodGet, u, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(u, "format=csv") {
			hreq.Header.Set("Accept", "text/csv")
		}
		cresp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(cresp.Body)
		if !sc.Scan() {
			t.Fatalf("%s: empty body", u)
		}
		header := sc.Text()
		rows := 0
		for sc.Scan() {
			rows++
		}
		cresp.Body.Close()
		if cresp.StatusCode != http.StatusOK || !strings.Contains(cresp.Header.Get("Content-Type"), "text/csv") {
			t.Fatalf("%s: status %d type %q", u, cresp.StatusCode, cresp.Header.Get("Content-Type"))
		}
		if !strings.HasPrefix(header, "t_s,") || !strings.Contains(header, "v_cap_min") || rows == 0 {
			t.Fatalf("%s: implausible CSV (header %q, %d rows)", u, header, rows)
		}
	}

	// The SSE history carries the audit verdict.
	counts := readSSE(t, ts.URL+"/v1/designs/"+st.ID+"/events")
	if counts["audit"] != 1 {
		t.Errorf("audit SSE events = %d, want 1: %v", counts["audit"], counts)
	}

	// The dashboard renders the job with its sparkline and verdict,
	// referencing no external assets.
	dresp, err := http.Get(ts.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	dsc := bufio.NewScanner(dresp.Body)
	dsc.Buffer(make([]byte, 1<<20), 1<<20)
	for dsc.Scan() {
		sb.WriteString(dsc.Text())
		sb.WriteString("\n")
	}
	dresp.Body.Close()
	page := sb.String()
	if dresp.StatusCode != http.StatusOK || !strings.Contains(dresp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("dashboard: status %d type %q", dresp.StatusCode, dresp.Header.Get("Content-Type"))
	}
	for _, want := range []string{st.ID, "PASS", "<svg", "flight deck"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	for _, forbidden := range []string{"<link", "src=\"http", "href=\"http", "@import"} {
		if strings.Contains(page, forbidden) {
			t.Errorf("dashboard references an external asset: found %q", forbidden)
		}
	}

	// A cache hit serves the same recording without a second search.
	resp2, body2 := postJSON(t, ts.URL+"/v1/designs", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, body2)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Audit == nil || !st2.Audit.OK() {
		t.Fatalf("cached job lost its audit: %s", body2)
	}
	var wr2 WaveformResponse
	if code := getJSON(t, ts.URL+"/v1/designs/"+st2.ID+"/waveform", &wr2); code != http.StatusOK {
		t.Fatalf("cached waveform: %d", code)
	}
	if wr2.Waveform.RawSamples != wr.Waveform.RawSamples {
		t.Errorf("cached waveform diverged: %d vs %d samples", wr2.Waveform.RawSamples, wr.Waveform.RawSamples)
	}

	// Jobs without verify have no recording, and the 404 says why.
	resp3, body3 := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("plain submit: %d %s", resp3.StatusCode, body3)
	}
	var st3 JobStatus
	if err := json.Unmarshal(body3, &st3); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, st3.ID)
	wresp, err := http.Get(ts.URL + "/v1/designs/" + st3.ID + "/waveform")
	if err != nil {
		t.Fatal(err)
	}
	var werr map[string]string
	if err := json.NewDecoder(wresp.Body).Decode(&werr); err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusNotFound || !strings.Contains(werr["error"], "verify") {
		t.Fatalf("waveform for non-verify job: %d %v", wresp.StatusCode, werr)
	}

	// Build identity is on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	msc := bufio.NewScanner(mresp.Body)
	found := false
	for msc.Scan() {
		line := msc.Text()
		if strings.HasPrefix(line, "chrysalis_build_info{") &&
			strings.Contains(line, "go_version=") && strings.HasSuffix(line, " 1") {
			found = true
		}
	}
	mresp.Body.Close()
	if !found {
		t.Error("chrysalis_build_info metric missing from /metrics")
	}
}
