package serve

import (
	"context"
	"testing"
	"time"
)

// walTestOpts builds manager options with a WAL directory and NO
// workers: newManager (unlike New) takes Workers literally, so zero
// workers means submitted jobs stay queued forever — the deterministic
// way to freeze a job mid-lifecycle for crash tests.
func walTestOpts(t *testing.T, dir string) Options {
	t.Helper()
	return Options{
		Workers:    0,
		QueueDepth: 8,
		CacheSize:  8,
		MaxJobs:    128,
		WALDir:     dir,
		Logger:     testLogger(t),
	}
}

// mustSubmit normalizes and submits a request, failing the test on any
// submission error.
func mustSubmit(t *testing.T, m *manager, req DesignRequest) *job {
	t.Helper()
	js, err := normalize(req)
	if err != nil {
		t.Fatal(err)
	}
	j, reused, err := m.submit(js)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatalf("submit %v unexpectedly reused an existing job", req)
	}
	return j
}

// TestWALCrashRecovery is the durability contract test: jobs journaled
// before a simulated crash (WAL closed in place, nothing flushed or
// cleaned up) come back on restart — finished ones as servable history
// that re-seeds the result cache, queued ones re-enqueued under their
// original IDs.
func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := walTestOpts(t, dir)
	m1, err := newManager(opts)
	if err != nil {
		t.Fatal(err)
	}

	// One job runs to completion (driven by hand — there are no
	// workers), two more stay queued, as at a mid-burst crash.
	done := mustSubmit(t, m1, DesignRequest{Workload: "har", Budget: 60, Seed: 1})
	m1.run(done)
	if st := done.status(); st.State != JobDone || st.Result == nil {
		t.Fatalf("pilot job: state %s (%s)", st.State, st.Error)
	}
	q1 := mustSubmit(t, m1, DesignRequest{Workload: "har", Budget: 60, Seed: 2})
	q2 := mustSubmit(t, m1, DesignRequest{Workload: "har", Budget: 60, Seed: 3})

	// Crash: the journal detaches (file closed in place, later appends
	// lost) and the manager is abandoned without any shutdown.
	m1.journal.detach()

	m2, err := newManager(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m2.close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// The finished job is servable history with its full payload, under
	// its original ID.
	rj, ok := m2.get(done.id)
	if !ok {
		t.Fatalf("done job %s not recovered", done.id)
	}
	if st := rj.status(); st.State != JobDone || st.Result == nil {
		t.Fatalf("recovered done job: state %s result=%v", st.State, st.Result)
	}
	// ... and its result re-seeded the content-addressed cache.
	if _, ok := m2.cache.get(done.js.key); !ok {
		t.Error("recovered done result did not re-seed the cache")
	}

	// Both pending jobs are back in the queue as queued, under their
	// original IDs, counted by the recovery metric.
	if got := len(m2.queue); got != 2 {
		t.Fatalf("recovered queue depth = %d, want 2", got)
	}
	if got := m2.met.jobsRecovered.Value(); got != 2 {
		t.Errorf("jobs_recovered = %d, want 2", got)
	}
	for _, orig := range []*job{q1, q2} {
		rq, ok := m2.get(orig.id)
		if !ok {
			t.Fatalf("pending job %s not recovered", orig.id)
		}
		if st := rq.status(); st.State != JobQueued {
			t.Errorf("recovered job %s state = %s, want queued", orig.id, st.State)
		}
		// Single-flight still coalesces: resubmitting the identical
		// request attaches to the recovered job instead of queueing twice.
		js, err := normalize(orig.js.req)
		if err != nil {
			t.Fatal(err)
		}
		dup, reused, err := m2.submit(js)
		if err != nil {
			t.Fatal(err)
		}
		if !reused || dup != rq {
			t.Errorf("resubmit of %s did not coalesce onto the recovered job", orig.id)
		}
	}

	// Job IDs are never reused across restarts: a fresh submission gets
	// an ID beyond everything the journal knew of.
	fresh := mustSubmit(t, m2, DesignRequest{Workload: "har", Budget: 60, Seed: 4})
	if seq, highest := jobSeq(fresh.id), jobSeq(q2.id); seq <= highest {
		t.Errorf("fresh job ID %s does not advance past recovered %s", fresh.id, q2.id)
	}

	// Drain the recovered queue by hand and check a recovered job
	// actually re-runs to completion.
	rq1, _ := m2.get(q1.id)
	m2.run(rq1)
	if st := rq1.status(); st.State != JobDone || st.Result == nil {
		t.Errorf("recovered job %s re-run: state %s (%s)", q1.id, st.State, st.Error)
	}
}

// TestWALSnapshotCompaction drives enough journal records to cross the
// snapshotEvery threshold and checks recovery still sees every job —
// the snapshot plus the residual log reconstruct the same table.
func TestWALSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := walTestOpts(t, dir)
	opts.QueueDepth = 2 * snapshotEvery
	m1, err := newManager(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Each submission is one record; submit past the threshold so at
	// least one compaction runs mid-stream.
	n := snapshotEvery + 8
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		j := mustSubmit(t, m1, DesignRequest{Workload: "har", Budget: 60, Seed: int64(100 + i)})
		ids = append(ids, j.id)
	}
	if rec := m1.journal.records(); rec >= snapshotEvery {
		t.Fatalf("journal never compacted: %d records pending", rec)
	}
	m1.journal.detach()

	m2, err := newManager(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m2.close(ctx)
	}()
	if got := len(m2.queue); got != n {
		t.Fatalf("recovered queue depth = %d, want %d", got, n)
	}
	for _, id := range ids {
		if _, ok := m2.get(id); !ok {
			t.Errorf("job %s lost across snapshot compaction", id)
		}
	}
}
