package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

func TestWorkerGateAcquireRelease(t *testing.T) {
	g := newWorkerGate(3)
	if g.cap() != 3 || g.inUse() != 0 {
		t.Fatalf("fresh gate: cap=%d inUse=%d", g.cap(), g.inUse())
	}
	if got := g.tryAcquire(2); got != 2 {
		t.Errorf("tryAcquire(2) = %d, want 2", got)
	}
	if got := g.tryAcquire(5); got != 1 {
		t.Errorf("tryAcquire(5) with 1 free = %d, want 1", got)
	}
	if got := g.tryAcquire(1); got != 0 {
		t.Errorf("tryAcquire on empty gate = %d, want 0", got)
	}
	if g.inUse() != 3 {
		t.Errorf("inUse = %d, want 3", g.inUse())
	}
	g.release(3)
	if g.inUse() != 0 {
		t.Errorf("after release inUse = %d, want 0", g.inUse())
	}
	// Over-release clamps at capacity instead of minting slots.
	g.release(10)
	if got := g.tryAcquire(10); got != 3 {
		t.Errorf("over-release minted slots: tryAcquire(10) = %d, want 3", got)
	}
	// Degenerate gates (pool width >= GOMAXPROCS) grant nothing.
	empty := newWorkerGate(-2)
	if empty.cap() != 0 || empty.tryAcquire(4) != 0 {
		t.Error("negative-capacity gate should clamp to zero and grant nothing")
	}
	// Non-positive wants are no-ops.
	if g.tryAcquire(0) != 0 || g.tryAcquire(-1) != 0 {
		t.Error("non-positive tryAcquire should grant nothing")
	}
}

func TestWorkerGateConcurrentNeverOversubscribes(t *testing.T) {
	const capacity = 4
	g := newWorkerGate(capacity)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(want int) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				got := g.tryAcquire(want)
				if got > want {
					t.Errorf("granted %d > requested %d", got, want)
				}
				if held := g.inUse(); held > capacity {
					t.Errorf("in-use %d exceeds capacity %d", held, capacity)
				}
				g.release(got)
			}
		}(1 + i%3)
	}
	wg.Wait()
	if g.inUse() != 0 {
		t.Errorf("leaked slots: inUse = %d", g.inUse())
	}
}

// TestSearchWorkersRequestAndStatus submits a job with an explicit
// search_workers and checks (a) the granted width is reported in the
// job status, (b) search_workers does NOT participate in the cache key
// (a second request differing only there must be a cache hit with the
// same result), and (c) the gate's metrics gauges are exported.
func TestSearchWorkersRequestAndStatus(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Logger: testLogger(t)})

	req := smallJob()
	req.SearchWorkers = 2
	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	st = pollJob(t, ts.URL, st.ID)
	if st.State != JobDone {
		t.Fatalf("job state %s (%s)", st.State, st.Error)
	}
	if st.Workers < 1 {
		t.Errorf("job status workers = %d, want >= 1", st.Workers)
	}
	if st.Result == nil || st.Result.Workers != st.Workers {
		t.Errorf("result workers not threaded: job=%d result=%+v", st.Workers, st.Result)
	}
	first := *st.Result

	// Same request with a different worker count: identical cache key,
	// so it must be served from the cache with a bit-identical result.
	req2 := smallJob()
	req2.SearchWorkers = 7
	resp2, body2 := postJSON(t, ts.URL+"/v1/designs", req2)
	if resp2.StatusCode != http.StatusOK && resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", resp2.StatusCode)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	st2 = pollJob(t, ts.URL, st2.ID)
	if !st2.Cached {
		t.Error("request differing only in search_workers missed the cache")
	}
	second := *st2.Result
	second.Workers = first.Workers // the one legitimately run-dependent field
	if first.PanelArea != second.PanelArea || first.AvgLatency != second.AvgLatency ||
		first.LatSP != second.LatSP || first.Evals != second.Evals {
		t.Errorf("cached result differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	if v := metricValue(t, ts.URL, "chrysalisd_search_worker_slots"); v < 0 {
		t.Errorf("slots gauge = %g", v)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_search_worker_slots_in_use"); v != 0 {
		t.Errorf("in-use gauge after drain = %g, want 0", v)
	}

	// Negative worker requests are rejected at submission.
	bad := smallJob()
	bad.SearchWorkers = -1
	respBad, _ := postJSON(t, ts.URL+"/v1/designs", bad)
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("negative search_workers: status %d, want 400", respBad.StatusCode)
	}
}
