package serve

// WAL-backed job durability. Every accepted submission and every
// terminal transition appends one JSON record to an append-only,
// checksummed log (internal/wal); past snapshotEvery records the whole
// job table is snapshotted and the log reset. On startup the snapshot
// plus the log replay rebuild the job table: finished jobs come back as
// servable history (done ones re-seed the result cache), jobs that were
// queued or running at the crash are re-enqueued and evaluated again.
//
// What does NOT survive a restart: flight recordings (the recorder is
// an in-memory ring of raw simulator samples, deliberately not
// serialized) and live SSE subscriptions. Both are re-derivable — a
// recovered verify job replays and re-records.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"

	"chrysalis/internal/audit"
	"chrysalis/internal/core"
	"chrysalis/internal/wal"
)

// snapshotEvery is the log-compaction threshold in records.
const snapshotEvery = 64

// walRecord journal ops.
const (
	opSubmit = "submit"
)

// walRecord is one journal entry. Terminal records (Op = done | failed
// | cancelled) are self-contained — they repeat Req so recovery never
// depends on finding the matching submit (which an intervening
// snapshot or job-table prune may have dropped).
type walRecord struct {
	Op     string         `json:"op"` // submit | done | failed | cancelled
	ID     string         `json:"id"`
	Req    *DesignRequest `json:"req,omitempty"`
	Result *core.Result   `json:"result,omitempty"`
	Verify *SimSummary    `json:"verify,omitempty"`
	Audit  *audit.Report  `json:"audit,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// walSnapshot is the compacted whole-table state.
type walSnapshot struct {
	NextID int64       `json:"next_id"`
	Jobs   []walRecord `json:"jobs"`
}

// recoveredJob is one job rebuilt from the journal, ready for adopt().
type recoveredJob struct {
	id     string
	state  JobState
	req    DesignRequest
	result *core.Result
	verify *SimSummary
	audit  *audit.Report
	err    string
	seq    int64 // position in replay order, for stable re-enqueue
}

// journal serializes writes to the underlying WAL. Append errors
// degrade durability, never availability: they are logged and the
// daemon keeps serving from memory.
type journal struct {
	mu       sync.Mutex
	log      *wal.Log
	logger   *slog.Logger
	detached bool

	// Recovery outcome of the open that produced this journal, frozen
	// for the metrics page: bytes dropped from a torn tail and whether
	// the snapshot failed its checksum.
	recTruncated   int64
	recSnapCorrupt bool
}

// openJournal opens (or creates) the WAL directory and replays it into
// recovered jobs, ordered as originally submitted. nextID is the
// highest job sequence the journal knows of — IDs must never be reused
// across restarts, or stale log records could merge into new jobs on a
// later recovery.
func openJournal(dir string, logger *slog.Logger) (jn *journal, jobs []*recoveredJob, nextID int64, err error) {
	lg, rec, err := wal.Open(dir)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: open wal: %w", err)
	}
	if rec.TruncatedBytes > 0 {
		logger.Warn("wal: dropped torn tail", "bytes", rec.TruncatedBytes)
	}
	if rec.SnapshotCorrupt {
		logger.Warn("wal: snapshot failed checksum; replaying log only")
	}

	byID := make(map[string]*recoveredJob)
	var order []string
	var seq int64
	apply := func(r walRecord) {
		if r.ID == "" {
			return
		}
		j := byID[r.ID]
		if j == nil {
			j = &recoveredJob{id: r.ID, state: JobQueued, seq: seq}
			seq++
			byID[r.ID] = j
			order = append(order, r.ID)
		}
		if r.Req != nil {
			j.req = *r.Req
		}
		switch r.Op {
		case opSubmit:
			// state stays queued
		case string(JobDone), string(JobFailed), string(JobCancelled):
			j.state = JobState(r.Op)
			j.result = r.Result
			j.verify = r.Verify
			j.audit = r.Audit
			j.err = r.Error
		default:
			logger.Warn("wal: unknown op skipped", "op", r.Op, "job", r.ID)
		}
	}

	if rec.Snapshot != nil {
		var snap walSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			logger.Warn("wal: undecodable snapshot ignored", "error", err)
		} else {
			nextID = snap.NextID
			for _, r := range snap.Jobs {
				apply(r)
			}
		}
	}
	for i, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			logger.Warn("wal: undecodable record skipped", "index", i, "error", err)
			continue
		}
		apply(r)
	}

	out := make([]*recoveredJob, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
		if n := jobSeq(id); n > nextID {
			nextID = n
		}
	}
	jn = &journal{
		log: lg, logger: logger,
		recTruncated:   rec.TruncatedBytes,
		recSnapCorrupt: rec.SnapshotCorrupt,
	}
	return jn, out, nextID, nil
}

// registerWALMetrics exports the journal's durability counters: append
// and fsync volume, compaction work, and the recovery outcome of the
// last startup. The fsync histogram is fed straight from the log's sync
// observer, so every journal fsync (terminal records, snapshots,
// shutdown) lands in it.
func (m *manager) registerWALMetrics() {
	reg, jn := m.met.reg, m.journal
	fsync := reg.Histogram("chrysalisd_wal_fsync_seconds",
		"Latency of WAL fsync calls (terminal job records, snapshots, shutdown).", nil)
	jn.log.SetSyncObserver(fsync.Observe)
	reg.CounterFunc("chrysalisd_wal_appends_total",
		"Records appended to the WAL.",
		func() int64 { return jn.log.Stats().Appends })
	reg.CounterFunc("chrysalisd_wal_appended_bytes_total",
		"Bytes appended to the WAL, framing included.",
		func() int64 { return jn.log.Stats().BytesAppended })
	reg.CounterFunc("chrysalisd_wal_compactions_total",
		"Snapshot compactions the WAL has performed.",
		func() int64 { return jn.log.Stats().Compactions })
	reg.CounterFloatFunc("chrysalisd_wal_compaction_seconds_total",
		"Wall-clock time spent in WAL snapshot compactions.",
		func() float64 { return float64(jn.log.Stats().CompactionNanos) / 1e9 })
	reg.GaugeFunc("chrysalisd_wal_snapshot_bytes",
		"Size of the most recent WAL snapshot.",
		func() int64 { return jn.log.Stats().SnapshotBytes })
	reg.GaugeFunc("chrysalisd_wal_recovery_truncated_bytes",
		"Bytes dropped from a torn WAL tail at the last startup.",
		func() int64 { return jn.recTruncated })
	reg.GaugeFunc("chrysalisd_wal_recovery_snapshot_corrupt",
		"Whether the last startup found a checksum-corrupt WAL snapshot (1) or not (0).",
		func() int64 {
			if jn.recSnapCorrupt {
				return 1
			}
			return 0
		})
}

// append writes one record. Terminal records are synced to disk — a
// job's outcome is worth an fsync at job granularity; submit records
// ride the OS page cache until the next sync or snapshot.
func (jn *journal) append(rec walRecord) {
	payload, err := json.Marshal(rec)
	if err != nil {
		jn.logger.Warn("wal: marshal failed", "op", rec.Op, "job", rec.ID, "error", err)
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.detached {
		return
	}
	if err := jn.log.Append(payload); err != nil {
		jn.logger.Warn("wal: append failed; continuing without durability",
			"op", rec.Op, "job", rec.ID, "error", err)
		return
	}
	if rec.Op != opSubmit {
		if err := jn.log.Sync(); err != nil {
			jn.logger.Warn("wal: sync failed", "error", err)
		}
	}
}

// records reports log records since the last snapshot.
func (jn *journal) records() int {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.detached {
		return 0
	}
	return jn.log.Records()
}

// snapshot compacts the log down to one whole-table state.
func (jn *journal) snapshot(s walSnapshot) {
	payload, err := json.Marshal(s)
	if err != nil {
		jn.logger.Warn("wal: snapshot marshal failed", "error", err)
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.detached {
		return
	}
	if err := jn.log.WriteSnapshot(payload); err != nil {
		jn.logger.Warn("wal: snapshot failed", "error", err)
	}
}

// detach simulates a crash for tests: the WAL file is closed in place,
// all later appends are silently lost, and no cleanup runs — exactly
// the state a kill -9 leaves behind.
func (jn *journal) detach() {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.detached {
		return
	}
	jn.detached = true
	_ = jn.log.Close()
}

// close syncs and closes the WAL.
func (jn *journal) close() {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.detached {
		return
	}
	if err := jn.log.Sync(); err != nil {
		jn.logger.Warn("wal: final sync failed", "error", err)
	}
	if err := jn.log.Close(); err != nil {
		jn.logger.Warn("wal: close failed", "error", err)
	}
}

// jobSeq extracts the numeric sequence from a "j-%06d" job ID (0 when
// the ID does not parse).
func jobSeq(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "j-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// walRecord snapshots the job as a self-contained journal record.
func (j *job) walRecord() walRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.walRecordLocked()
}

// walRecordLocked is walRecord with j.mu already held.
func (j *job) walRecordLocked() walRecord {
	req := j.js.req
	rec := walRecord{ID: j.id, Req: &req}
	if j.state.terminal() {
		rec.Op = string(j.state)
		rec.Result = j.result
		rec.Verify = j.verify
		rec.Audit = j.audit
		rec.Error = j.err
	} else {
		rec.Op = opSubmit
	}
	return rec
}
