package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// postJSONKey is postJSON with an X-API-Key header.
func postJSONKey(t *testing.T, url, apiKey string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// labeledMetric reads one labeled sample (e.g.
// chrysalisd_admission_shed_total{reason="quota"}) from /metrics;
// missing samples read as 0.
func labeledMetric(t *testing.T, base, name, labels string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prefix := name + "{" + labels + "} "
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscanf(line[len(prefix):], "%g", &v); err != nil {
				t.Fatalf("parse metric %s: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestQuotaTokenBucket unit-tests the limiter under a fake clock:
// burst, refill, per-client isolation and the Retry-After hint.
func TestQuotaTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	a := newAdmission(1, 2) // 1 rps sustained, burst 2
	a.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := a.allow("alice"); !ok {
			t.Fatalf("burst submission %d rejected", i+1)
		}
	}
	ok, retry := a.allow("alice")
	if ok {
		t.Fatal("third submission within burst window admitted")
	}
	if retry < time.Second {
		t.Errorf("retry hint %v, want >= 1s at 1 rps", retry)
	}
	// Another client is untouched by alice's empty bucket.
	if ok, _ := a.allow("bob"); !ok {
		t.Error("independent client rejected")
	}
	// One second later one token has refilled — exactly one submission.
	now = now.Add(time.Second)
	if ok, _ := a.allow("alice"); !ok {
		t.Error("refilled token rejected")
	}
	if ok, _ := a.allow("alice"); ok {
		t.Error("second submission admitted off one refilled token")
	}
	// The /metrics sample sees both clients, sorted.
	vals := a.remaining()
	if len(vals) != 2 || vals[0].Labels[0] != "alice" || vals[1].Labels[0] != "bob" {
		t.Fatalf("remaining() = %+v, want alice then bob", vals)
	}
}

// TestQuota429 drives the HTTP path: over-quota submissions shed with
// 429 + Retry-After, keyed on X-API-Key, counted on /metrics, with the
// per-client token gauge exposed.
func TestQuota429(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:  1,
		QuotaRPS: 0.01, QuotaBurst: 2, // refill is negligible within the test
		Logger: testLogger(t),
	})

	submit := func(key string, seed int64) (*http.Response, []byte) {
		req := smallJob()
		req.Seed = seed
		return postJSONKey(t, ts.URL+"/v1/designs", key, req)
	}

	for i := int64(1); i <= 2; i++ {
		if resp, body := submit("alice", i); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submission %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := submit("alice", 3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive whole-second count", resp.Header.Get("Retry-After"))
	}
	// The anonymous bucket (no header) is separate from alice's.
	if resp, body := submit("", 4); resp.StatusCode != http.StatusAccepted {
		t.Errorf("anonymous submission sharing alice's empty bucket: %d %s", resp.StatusCode, body)
	}
	if got := labeledMetric(t, ts.URL, "chrysalisd_admission_shed_total", `reason="quota"`); got != 1 {
		t.Errorf(`shed_total{reason="quota"} = %g, want 1`, got)
	}
	if got := labeledMetric(t, ts.URL, "chrysalisd_quota_tokens_remaining", `client="alice"`); got != 0 {
		t.Errorf(`quota_tokens_remaining{client="alice"} = %g, want 0`, got)
	}
}

// TestQueueFull429 fills a depth-1 queue on a manager with no workers
// and checks the shed path: 429, Retry-After, the queue_full shed
// counter and the live queue-depth gauge.
func TestQueueFull429(t *testing.T) {
	opts := Options{
		Workers:    0, // no drain: submissions stay queued (newManager takes this literally)
		QueueDepth: 1,
		CacheSize:  8,
		MaxJobs:    128,
		Logger:     testLogger(t),
	}
	mgr, err := newManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{opts: opts, mgr: mgr, mux: http.NewServeMux()}
	s.routes()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.close(ctx)
	})

	first := smallJob()
	if resp, body := postJSON(t, ts.URL+"/v1/designs", first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: %d %s", resp.StatusCode, body)
	}
	second := smallJob()
	second.Seed = 99
	resp, _ := postJSON(t, ts.URL+"/v1/designs", second)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submission: %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive whole-second count", resp.Header.Get("Retry-After"))
	}
	if got := labeledMetric(t, ts.URL, "chrysalisd_admission_shed_total", `reason="queue_full"`); got != 1 {
		t.Errorf(`shed_total{reason="queue_full"} = %g, want 1`, got)
	}
	if got := metricValue(t, ts.URL, "chrysalisd_queue_depth"); got != 1 {
		t.Errorf("queue_depth = %g, want 1", got)
	}
	// Identical resubmission coalesces onto the queued job instead of
	// being shed: single-flight outranks admission.
	if resp, body := postJSON(t, ts.URL+"/v1/designs", first); resp.StatusCode != http.StatusOK {
		t.Errorf("coalescing resubmission: %d %s", resp.StatusCode, body)
	}
}
