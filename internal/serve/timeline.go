package serve

// End-to-end job timelines. Every job accumulates a list of named
// phases — admission, queue-wait, peer-hop, search, sim, wal-journal —
// each recorded twice: once on the job's span ring (so the Perfetto
// export shows them on a "job" track) and once as wall-clock intervals
// the timeline endpoints serve as JSON. When a job was delegated to a
// peer, the owner's trace segment is fetched after the fact and both
// the stitched trace export and the timeline carry the remote spans,
// aligned onto this node's clock via the two anchors.

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"chrysalis/internal/obs"
)

// timelinePhase is one recorded interval of a job's life on one node.
type timelinePhase struct {
	name  string
	node  string
	start time.Time
	end   time.Time
	attrs []obs.Attr
}

// remoteSegment is the owner node's trace contribution to a delegated
// job, fetched over GET /internal/jobs/{id}/timeline after delegation.
type remoteSegment struct {
	node             string
	anchorUnixMicros float64
	events           []obs.TraceEvent
}

// nodeName labels this node's phases and trace process: the cluster
// base URL when clustered, "local" otherwise.
func (m *manager) nodeName() string {
	if m.opts.Self != "" {
		return m.opts.Self
	}
	return "local"
}

// addPhase records one completed phase on both the span ring and the
// timeline list.
func (m *manager) addPhase(j *job, name string, start, end time.Time, attrs ...obs.Attr) {
	j.trace.SliceBetween("job", name, start, end, attrs...)
	j.mu.Lock()
	j.timeline = append(j.timeline, timelinePhase{
		name: name, node: m.nodeName(), start: start, end: end, attrs: attrs,
	})
	j.mu.Unlock()
}

// TimelinePhase is one phase of GET /jobs/{id}/timeline.
type TimelinePhase struct {
	Name string `json:"name"`
	// Node is the node the phase ran on (delegated phases carry the
	// owner's base URL).
	Node        string         `json:"node"`
	StartUnixUS int64          `json:"start_unix_us"`
	DurUS       int64          `json:"dur_us"`
	Detail      map[string]any `json:"detail,omitempty"`
}

// Timeline is the wire form of GET /jobs/{id}/timeline: the job's whole
// life as ordered phases, across every node it touched.
type Timeline struct {
	ID      string          `json:"id"`
	TraceID string          `json:"trace_id,omitempty"`
	State   JobState        `json:"state"`
	Phases  []TimelinePhase `json:"phases"`
}

// timeline assembles the merged local + remote phase list, ordered by
// start time.
func (m *manager) timeline(j *job) Timeline {
	j.mu.Lock()
	out := Timeline{ID: j.id, State: j.state}
	phases := append([]timelinePhase(nil), j.timeline...)
	seg := j.remote
	j.mu.Unlock()
	if tc := j.trace.Context(); tc.Valid() {
		out.TraceID = tc.TraceID
	}
	for _, p := range phases {
		tp := TimelinePhase{
			Name:        p.name,
			Node:        p.node,
			StartUnixUS: p.start.UnixMicro(),
			DurUS:       p.end.Sub(p.start).Microseconds(),
		}
		if len(p.attrs) > 0 {
			tp.Detail = make(map[string]any, len(p.attrs))
			for _, a := range p.attrs {
				tp.Detail[a.Key] = a.Value
			}
		}
		out.Phases = append(out.Phases, tp)
	}
	if seg != nil {
		// The owner's "job"-track slices become phases on its node label;
		// its anchor converts ring-relative microseconds to wall clock.
		for _, ev := range seg.events {
			if ev.Track != "job" || ev.Phase != "X" {
				continue
			}
			out.Phases = append(out.Phases, TimelinePhase{
				Name:        ev.Name,
				Node:        seg.node,
				StartUnixUS: int64(seg.anchorUnixMicros + ev.TS),
				DurUS:       int64(ev.Dur),
				Detail:      ev.Args,
			})
		}
	}
	sort.SliceStable(out.Phases, func(i, k int) bool {
		return out.Phases[i].StartUnixUS < out.Phases[k].StartUnixUS
	})
	return out
}

// handleTimeline serves the merged end-to-end timeline of one job.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.mgr.timeline(j))
}

// internalTimeline is the peer-facing wire form of a job's trace
// segment: everything a submitting node needs to stitch the owner's
// spans into its own export.
type internalTimeline struct {
	ID               string           `json:"id"`
	Node             string           `json:"node"`
	TraceID          string           `json:"trace_id,omitempty"`
	AnchorUnixMicros float64          `json:"anchor_unix_us"`
	Events           []obs.TraceEvent `json:"events"`
}

// handleInternalTimeline ships one job's raw trace segment to a peer.
func (s *Server) handleInternalTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	it := internalTimeline{
		ID:               j.id,
		Node:             s.mgr.nodeName(),
		AnchorUnixMicros: j.trace.AnchorUnixMicros(),
		Events:           j.trace.Events(),
	}
	if tc := j.trace.Context(); tc.Valid() {
		it.TraceID = tc.TraceID
	}
	writeJSON(w, http.StatusOK, it)
}

// stitchedProcs builds the process list for the job's Perfetto export:
// the local ring always, plus the owner's segment for delegated jobs,
// shifted onto this node's clock.
func (m *manager) stitchedProcs(j *job) []obs.Process {
	j.mu.Lock()
	seg := j.remote
	j.mu.Unlock()
	procs := []obs.Process{{Name: m.nodeName(), Trace: j.trace}}
	if seg != nil {
		procs = append(procs, obs.Process{
			Name:         seg.node,
			Events:       seg.events,
			OffsetMicros: seg.anchorUnixMicros - j.trace.AnchorUnixMicros(),
		})
	}
	return procs
}
