package serve

// Admission control: per-client token-bucket quotas plus queue-depth
// shedding. Both reject with 429 and a Retry-After hint — the client
// is told to slow down, not that the service broke (503 is reserved
// for shutdown). Shed decisions are counted per reason on /metrics.

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"chrysalis/internal/obs"
)

// admissionClients bounds the tracked client set; full buckets are
// pruned first once it is exceeded (an idle client's bucket refills to
// burst and carries no information).
const admissionClients = 1024

// anonClient keys requests that carry no X-API-Key header.
const anonClient = "anonymous"

// admission is a per-client token-bucket rate limiter. Each client
// (X-API-Key value) holds up to burst tokens, refilled at rps per
// second; a submission spends one token.
type admission struct {
	rps   float64
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newAdmission builds a limiter; burst <= 0 selects max(1, 2·rps).
func newAdmission(rps float64, burst int) *admission {
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, 2*rps)
	}
	return &admission{rps: rps, burst: b, clients: make(map[string]*bucket), now: time.Now}
}

// allow spends one token for the client. When the bucket is empty it
// reports false plus the wait until one token refills.
func (a *admission) allow(client string) (ok bool, retryAfter time.Duration) {
	if client == "" {
		client = anonClient
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	bk := a.clients[client]
	if bk == nil {
		a.pruneLocked()
		bk = &bucket{tokens: a.burst, last: now}
		a.clients[client] = bk
	}
	bk.tokens = math.Min(a.burst, bk.tokens+now.Sub(bk.last).Seconds()*a.rps)
	bk.last = now
	if bk.tokens < 1 {
		return false, time.Duration(math.Ceil((1-bk.tokens)/a.rps)) * time.Second
	}
	bk.tokens--
	return true, 0
}

// pruneLocked drops refilled (idle) buckets once the client table is
// full; if every client is active, the oldest-seen go first.
func (a *admission) pruneLocked() {
	if len(a.clients) < admissionClients {
		return
	}
	for c, bk := range a.clients {
		if bk.tokens >= a.burst {
			delete(a.clients, c)
		}
	}
	for c := range a.clients {
		if len(a.clients) < admissionClients {
			break
		}
		delete(a.clients, c)
	}
}

// remaining samples every client's current token count for /metrics
// (sorted for stable exposition output).
func (a *admission) remaining() []obs.LabeledValue {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	names := make([]string, 0, len(a.clients))
	for c := range a.clients {
		names = append(names, c)
	}
	sort.Strings(names)
	out := make([]obs.LabeledValue, 0, len(names))
	for _, c := range names {
		bk := a.clients[c]
		tokens := math.Min(a.burst, bk.tokens+now.Sub(bk.last).Seconds()*a.rps)
		out = append(out, obs.LabeledValue{Labels: []string{c}, Value: int64(tokens)})
	}
	return out
}

// retryAfterValue renders a Retry-After header in whole seconds.
func retryAfterValue(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// retryAfterQueue estimates how long until queue pressure clears:
// the queue depth times the recent p50 job latency, spread over the
// worker pool, clamped to [1s, 60s].
func (m *manager) retryAfterQueue() time.Duration {
	p50, _, _ := m.met.quantiles()
	if p50 <= 0 {
		p50 = 1
	}
	est := float64(len(m.queue)) * p50 / float64(m.opts.Workers)
	return time.Duration(math.Min(60, math.Max(1, math.Ceil(est)))) * time.Second
}
