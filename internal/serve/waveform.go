package serve

import (
	"fmt"
	"net/http"
	"strings"

	"chrysalis/internal/audit"
	"chrysalis/internal/sim"
)

// WaveformResponse is the JSON form of GET /v1/designs/{id}/waveform:
// the flight recorder's downsampled energy-state channels and per-cycle
// ledgers, plus the audit verdict once the replay finished. For a still
// running verify job it is a live snapshot of the waveform so far.
type WaveformResponse struct {
	ID       string        `json:"id"`
	State    JobState      `json:"state"`
	Audit    *audit.Report `json:"audit,omitempty"`
	Waveform sim.Waveform  `json:"waveform"`
}

// handleWaveform serves a job's flight recording as JSON (default) or
// CSV (?format=csv, or Accept: text/csv). Only verify jobs carry a
// recorder; others get a 404 explaining how to request one.
func (s *Server) handleWaveform(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	rec := j.recorder()
	if rec == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %s has no flight recording — submit the design with \"verify\": true to record one", j.id))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/csv") {
		format = "csv"
	}
	switch format {
	case "", "json":
		st := j.status()
		writeJSON(w, http.StatusOK, WaveformResponse{
			ID: j.id, State: st.State, Audit: st.Audit, Waveform: rec.Waveform(),
		})
	case "csv":
		wf := rec.Waveform()
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+"-waveform.csv"))
		_ = wf.WriteCSV(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json or csv)", format))
	}
}
