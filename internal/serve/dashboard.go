package serve

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"runtime"
	"strings"
	"time"

	"chrysalis/internal/obs"
	"chrysalis/internal/sim"
)

// The live dashboard: one server-rendered HTML page with zero external
// assets — styles, sparkline SVGs and the refresh script are all
// inlined, so it works on an air-gapped bench next to the device under
// test. Waveform sparklines are rendered server-side from the flight
// recorder's min/max-preserving bins (the shaded band is the true
// min/max envelope, the line the per-bin last sample); the page
// re-renders itself over the jobs' existing SSE streams.

// dashJobs bounds the job table (most recent first).
const dashJobs = 12

// sparkline geometry (pixels).
const (
	sparkW = 260
	sparkH = 48
)

// recent returns up to n job records, newest first.
func (m *manager) recent(n int) []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*job, 0, n)
	for i := len(m.order) - 1; i >= 0 && len(out) < n; i-- {
		if j, ok := m.jobs[m.order[i]]; ok {
			out = append(out, j)
		}
	}
	return out
}

// dashStats is the headline counter row.
type dashStats struct {
	Queued, Running, Done, Failed, Cancelled int64
	CacheHits, CacheMisses                   int64
	CacheEntries, JobRecords                 int
	P50ms, P95ms                             float64
	LatCount                                 int64
	QueueDepth                               int
	Shed                                     int64
	Recovered                                int64
	Durable                                  bool
	Clustered                                bool
	RemoteHits, RemoteMisses                 int64
	PeerErrors, PeersUp                      int64
}

// dashJob is one row of the job table.
type dashJob struct {
	ID       string
	Workload string
	State    JobState
	Cached   bool
	Latency  string
	Best     string
	Audit    string
	AuditOK  bool
	HasAudit bool
	Cycles   int
	Samples  int64
	Spark    template.HTML
}

// dashData feeds the dashboard template.
type dashData struct {
	Version   string
	Revision  string
	GoVersion string
	Platform  string
	Now       string
	Stats     dashStats
	Jobs      []dashJob
	ActiveID  string
}

// dashRow snapshots one job for the table, including its v_cap
// sparkline when a flight recorder is attached.
func (j *job) dashRow() dashJob {
	j.mu.Lock()
	row := dashJob{
		ID:     j.id,
		State:  j.state,
		Cached: j.cached,
	}
	row.Workload = j.js.spec.WorkloadName
	if row.Workload == "" {
		row.Workload = "(inline)"
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		row.Latency = j.finished.Sub(j.started).Round(time.Millisecond).String()
	case !j.started.IsZero():
		row.Latency = time.Since(j.started).Round(time.Millisecond).String() + "…"
	}
	if j.progress != nil {
		row.Best = fmt.Sprintf("%.4g", j.progress.Best)
	}
	if j.audit != nil {
		row.HasAudit = true
		row.AuditOK = j.audit.OK()
		if row.AuditOK {
			row.Audit = "PASS"
		} else {
			row.Audit = fmt.Sprintf("FAIL (%d)", len(j.audit.Findings))
		}
	}
	rec := j.rec
	j.mu.Unlock()

	// Snapshot the recorder outside the job lock: it has its own mutex
	// and may be mid-replay on a worker goroutine.
	if rec != nil {
		wf := rec.Waveform()
		row.Cycles = len(wf.Cycles)
		row.Samples = wf.RawSamples
		row.Spark = sparklineSVG(wf.Channel("v_cap"), sparkW, sparkH)
	}
	return row
}

// sparklineSVG renders one waveform channel as an inline SVG: a shaded
// min/max envelope band under the last-sample line, so brownout dips
// and charge peaks stay visible no matter how coarse the bins are.
func sparklineSVG(ch *sim.WaveChannel, w, h int) template.HTML {
	if ch == nil || len(ch.Points) == 0 {
		return ""
	}
	pts := ch.Points
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.Min)
		hi = math.Max(hi, p.Max)
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	if hi <= lo {
		hi = lo + 1e-9
	}
	xp := func(t float64) float64 { return 1 + (t-t0)/(t1-t0)*float64(w-2) }
	yp := func(v float64) float64 { return float64(h-1) - (v-lo)/(hi-lo)*float64(h-2) }

	var band, line strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&band, "%.1f,%.1f ", xp(p.T), yp(p.Max))
	}
	for i := len(pts) - 1; i >= 0; i-- {
		fmt.Fprintf(&band, "%.1f,%.1f ", xp(pts[i].T), yp(pts[i].Min))
	}
	for _, p := range pts {
		fmt.Fprintf(&line, "%.1f,%.1f ", xp(p.T), yp(p.Last))
	}
	svg := fmt.Sprintf(
		`<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s waveform">`+
			`<polygon points="%s" fill="#2d6a4f55" stroke="none"/>`+
			`<polyline points="%s" fill="none" stroke="#74c69d" stroke-width="1"/>`+
			`<title>%s: %.4g–%.4g %s over %.4g s</title></svg>`,
		w, h, w, h, template.HTMLEscapeString(ch.Name),
		strings.TrimSpace(band.String()), strings.TrimSpace(line.String()),
		template.HTMLEscapeString(ch.Name), lo, hi, template.HTMLEscapeString(ch.Unit), t1-t0)
	return template.HTML(svg)
}

var dashTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>chrysalisd flight deck</title>
<style>
body{background:#0b1215;color:#d8e2dc;font:14px/1.5 ui-monospace,Menlo,Consolas,monospace;margin:2em auto;max-width:72em;padding:0 1em}
h1{color:#95d5b2;font-size:1.3em}
small,.dim{color:#6c8a80}
table{border-collapse:collapse;width:100%;margin-top:1em}
th,td{border-bottom:1px solid #1f2d2a;padding:.35em .6em;text-align:left;vertical-align:middle}
th{color:#74c69d}
.cards{display:flex;flex-wrap:wrap;gap:.8em;margin-top:1em}
.card{background:#111c1f;border:1px solid #1f2d2a;border-radius:6px;padding:.5em .9em}
.card b{color:#95d5b2;font-size:1.2em}
.pass{color:#74c69d}.fail{color:#e56b6f}.run{color:#f4d58d}
</style></head><body>
<h1>chrysalisd flight deck</h1>
<p class="dim">chrysalis {{.Version}} ({{.Revision}}) · {{.GoVersion}} · {{.Platform}} · rendered {{.Now}}</p>
<div class="cards">
<div class="card">jobs queued <b>{{.Stats.Queued}}</b></div>
<div class="card">running <b>{{.Stats.Running}}</b></div>
<div class="card">done <b>{{.Stats.Done}}</b></div>
<div class="card">failed <b>{{.Stats.Failed}}</b></div>
<div class="card">cancelled <b>{{.Stats.Cancelled}}</b></div>
<div class="card">cache hit/miss <b>{{.Stats.CacheHits}}/{{.Stats.CacheMisses}}</b></div>
<div class="card">cached designs <b>{{.Stats.CacheEntries}}</b></div>
<div class="card">job p50/p95 <b>{{printf "%.0f" .Stats.P50ms}}/{{printf "%.0f" .Stats.P95ms}} ms</b> <small>n={{.Stats.LatCount}}</small></div>
<div class="card">queue depth <b>{{.Stats.QueueDepth}}</b></div>
<div class="card">shed (429) <b>{{.Stats.Shed}}</b></div>
{{if .Stats.Durable}}<div class="card">wal recovered <b>{{.Stats.Recovered}}</b></div>{{end}}
{{if .Stats.Clustered}}<div class="card">peers up <b>{{.Stats.PeersUp}}</b></div>
<div class="card">remote hit/miss <b>{{.Stats.RemoteHits}}/{{.Stats.RemoteMisses}}</b></div>
<div class="card">peer errors <b>{{.Stats.PeerErrors}}</b></div>{{end}}
</div>
<table>
<tr><th>job</th><th>workload</th><th>state</th><th>latency</th><th>best</th><th>cycles</th><th>samples</th><th>audit</th><th>v_cap (min/max band)</th></tr>
{{range .Jobs}}<tr>
<td>{{.ID}}{{if .Cached}} <small class="dim">cached</small>{{end}}</td>
<td>{{.Workload}}</td>
<td{{if eq .State "running"}} class="run"{{end}}>{{.State}}</td>
<td>{{.Latency}}</td>
<td>{{.Best}}</td>
<td>{{if .Cycles}}{{.Cycles}}{{end}}</td>
<td>{{if .Samples}}{{.Samples}}{{end}}</td>
<td>{{if .HasAudit}}<span class="{{if .AuditOK}}pass{{else}}fail{{end}}">{{.Audit}}</span>{{end}}</td>
<td>{{.Spark}}</td>
</tr>{{else}}<tr><td colspan="9" class="dim">no jobs yet — POST /v1/designs with "verify": true to see a flight recording here</td></tr>{{end}}
</table>
<p><small class="dim">waveform detail: GET /v1/designs/{id}/waveform (json | ?format=csv) · audit verdict rides the job status and the "audit" SSE event</small></p>
<script>
(function () {
	var active = "{{.ActiveID}}";
	if (!active) return;
	var es = new EventSource("/v1/designs/" + active + "/events");
	var last = 0;
	function refresh() {
		var now = Date.now();
		if (now - last < 1500) return;
		last = now;
		location.reload();
	}
	["state", "progress", "sim", "audit", "done"].forEach(function (n) {
		es.addEventListener(n, refresh);
	});
	es.onerror = function () { es.close(); setTimeout(function () { location.reload(); }, 3000); };
})();
</script>
</body></html>
`))

// handleDashboard renders the live flight deck.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	met := s.mgr.met
	p50, p95, n := met.quantiles()
	data := dashData{
		Version:   obs.Version,
		Revision:  obs.Revision(),
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Now:       time.Now().UTC().Format(time.RFC3339),
		Stats: dashStats{
			Queued:       met.jobsQueued.Value(),
			Running:      met.jobsRunning.Value(),
			Done:         met.jobsDone.Value(),
			Failed:       met.jobsFailed.Value(),
			Cancelled:    met.jobsCancelled.Value(),
			CacheHits:    met.cacheHits.Value(),
			CacheMisses:  met.cacheMisses.Value(),
			CacheEntries: s.mgr.cache.len(),
			JobRecords:   s.mgr.jobCount(),
			P50ms:        p50 * 1000,
			P95ms:        p95 * 1000,
			LatCount:     n,
			QueueDepth:   len(s.mgr.queue),
			Shed:         met.shed.With("quota").Value() + met.shed.With("queue_full").Value(),
			Recovered:    met.jobsRecovered.Value(),
			Durable:      s.mgr.journal != nil,
		},
	}
	if cl := s.mgr.cluster; cl != nil {
		st := cl.Stats()
		data.Stats.Clustered = true
		data.Stats.RemoteHits = st.RemoteHits
		data.Stats.RemoteMisses = st.RemoteMisses
		data.Stats.PeerErrors = st.PeerErrors
		data.Stats.PeersUp = int64(cl.PeersUp())
	}
	for _, j := range s.mgr.recent(dashJobs) {
		row := j.dashRow()
		if data.ActiveID == "" && !row.State.terminal() {
			data.ActiveID = row.ID
		}
		data.Jobs = append(data.Jobs, row)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashTmpl.Execute(w, data)
}
