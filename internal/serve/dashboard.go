package serve

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"runtime"
	"strings"
	"time"

	"chrysalis/internal/obs"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
)

// The live dashboard: one server-rendered HTML page with zero external
// assets — styles, sparkline SVGs and the refresh script are all
// inlined, so it works on an air-gapped bench next to the device under
// test. Waveform sparklines are rendered server-side from the flight
// recorder's min/max-preserving bins (the shaded band is the true
// min/max envelope, the line the per-bin last sample); the page
// re-renders itself over the jobs' existing SSE streams.

// dashJobs bounds the job table (most recent first).
const dashJobs = 12

// sparkline geometry (pixels).
const (
	sparkW = 260
	sparkH = 48
)

// recent returns up to n job records, newest first.
func (m *manager) recent(n int) []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*job, 0, n)
	for i := len(m.order) - 1; i >= 0 && len(out) < n; i-- {
		if j, ok := m.jobs[m.order[i]]; ok {
			out = append(out, j)
		}
	}
	return out
}

// dashStats is the headline counter row.
type dashStats struct {
	Queued, Running, Done, Failed, Cancelled int64
	CacheHits, CacheMisses                   int64
	CacheEntries, JobRecords                 int
	P50ms, P95ms                             float64
	LatCount                                 int64
	QueueDepth                               int
	Shed                                     int64
	Recovered                                int64
	Durable                                  bool
	Clustered                                bool
	RemoteHits, RemoteMisses                 int64
	PeerErrors, PeersUp                      int64
	// Warm-start tier row (WarmEnabled gates rendering).
	WarmEnabled             bool
	WarmEntries             int64
	WarmBytes, WarmMaxBytes string
	WarmHitRatio            string
}

// dashJob is one row of the job table.
type dashJob struct {
	ID       string
	Workload string
	State    JobState
	Cached   bool
	Latency  string
	Best     string
	Audit    string
	AuditOK  bool
	HasAudit bool
	Cycles   int
	Samples  int64
	Spark    template.HTML
	Converge template.HTML
	Timeline template.HTML
}

// dashPeer is one row of the fleet panel.
type dashPeer struct {
	Node        string
	QueueDepth  int
	JobsRunning int64
	HitRatio    string
	FastRatio   string
	Breakers    string
	BreakersBad bool
}

// dashData feeds the dashboard template.
type dashData struct {
	Version     string
	Revision    string
	GoVersion   string
	Platform    string
	Now         string
	Stats       dashStats
	Jobs        []dashJob
	ActiveID    string
	Fleet       []dashPeer
	Unreachable []string
}

// dashRow snapshots one job for the table, including its v_cap
// sparkline when a flight recorder is attached.
func (j *job) dashRow() dashJob {
	j.mu.Lock()
	row := dashJob{
		ID:     j.id,
		State:  j.state,
		Cached: j.cached,
	}
	row.Workload = j.js.spec.WorkloadName
	if row.Workload == "" {
		row.Workload = "(inline)"
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		row.Latency = j.finished.Sub(j.started).Round(time.Millisecond).String()
	case !j.started.IsZero():
		row.Latency = time.Since(j.started).Round(time.Millisecond).String() + "…"
	}
	if j.progress != nil {
		row.Best = fmt.Sprintf("%.4g", j.progress.Best)
	}
	if j.audit != nil {
		row.HasAudit = true
		row.AuditOK = j.audit.OK()
		if row.AuditOK {
			row.Audit = "PASS"
		} else {
			row.Audit = fmt.Sprintf("FAIL (%d)", len(j.audit.Findings))
		}
	}
	// Convergence source mirrors the endpoint: the finished result when
	// the job has one (cached and recovered jobs included), the live
	// series streamed so far otherwise.
	qual := append(search.QualityHistory(nil), j.quality...)
	if j.result != nil {
		qual = j.result.Quality
	}
	rec := j.rec
	j.mu.Unlock()

	row.Converge = convergenceSVG(qual, sparkW, sparkH)

	// Snapshot the recorder outside the job lock: it has its own mutex
	// and may be mid-replay on a worker goroutine.
	if rec != nil {
		wf := rec.Waveform()
		row.Cycles = len(wf.Cycles)
		row.Samples = wf.RawSamples
		row.Spark = sparklineSVG(wf.Channel("v_cap"), sparkW, sparkH)
	}
	return row
}

// sparklineSVG renders one waveform channel as an inline SVG: a shaded
// min/max envelope band under the last-sample line, so brownout dips
// and charge peaks stay visible no matter how coarse the bins are.
func sparklineSVG(ch *sim.WaveChannel, w, h int) template.HTML {
	if ch == nil || len(ch.Points) == 0 {
		return ""
	}
	pts := ch.Points
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.Min)
		hi = math.Max(hi, p.Max)
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	if hi <= lo {
		hi = lo + 1e-9
	}
	xp := func(t float64) float64 { return 1 + (t-t0)/(t1-t0)*float64(w-2) }
	yp := func(v float64) float64 { return float64(h-1) - (v-lo)/(hi-lo)*float64(h-2) }

	var band, line strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&band, "%.1f,%.1f ", xp(p.T), yp(p.Max))
	}
	for i := len(pts) - 1; i >= 0; i-- {
		fmt.Fprintf(&band, "%.1f,%.1f ", xp(pts[i].T), yp(pts[i].Min))
	}
	for _, p := range pts {
		fmt.Fprintf(&line, "%.1f,%.1f ", xp(p.T), yp(p.Last))
	}
	svg := fmt.Sprintf(
		`<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s waveform">`+
			`<polygon points="%s" fill="#2d6a4f55" stroke="none"/>`+
			`<polyline points="%s" fill="none" stroke="#74c69d" stroke-width="1"/>`+
			`<title>%s: %.4g–%.4g %s over %.4g s</title></svg>`,
		w, h, w, h, template.HTMLEscapeString(ch.Name),
		strings.TrimSpace(band.String()), strings.TrimSpace(line.String()),
		template.HTMLEscapeString(ch.Name), lo, hi, template.HTMLEscapeString(ch.Unit), t1-t0)
	return template.HTML(svg)
}

// convergenceSVG renders a search's per-generation quality series as an
// inline sparkline: the best objective as a line (independently
// normalized, so an early plateau reads as a flat tail), plus the
// dominated hypervolume as a second line when the run produced a Pareto
// front. Infeasible generations (Feasible==0, sanitized best 0) are
// skipped rather than plotted as fake zeros.
func convergenceSVG(h search.QualityHistory, w, ht int) template.HTML {
	if len(h) < 2 {
		return ""
	}
	xp := func(i int) float64 {
		return 1 + float64(i)/float64(len(h)-1)*float64(w-2)
	}
	poly := func(vals []float64, ok []bool) string {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range vals {
			if ok[i] {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
		}
		if hi <= lo {
			hi = lo + 1e-9
		}
		var b strings.Builder
		for i, v := range vals {
			if !ok[i] {
				continue
			}
			y := float64(ht-1) - (v-lo)/(hi-lo)*float64(ht-2)
			fmt.Fprintf(&b, "%.1f,%.1f ", xp(i), y)
		}
		return strings.TrimSpace(b.String())
	}
	best := make([]float64, len(h))
	bestOK := make([]bool, len(h))
	hv := make([]float64, len(h))
	hvOK := make([]bool, len(h))
	pareto := false
	for i, q := range h {
		best[i], bestOK[i] = q.Best, q.Feasible > 0
		hv[i], hvOK[i] = q.Hypervolume, q.FrontSize > 0
		pareto = pareto || q.FrontSize > 0
	}
	svg := fmt.Sprintf(`<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="convergence">`,
		w, ht, w, ht)
	if pareto {
		svg += fmt.Sprintf(`<polyline points="%s" fill="none" stroke="#4cc9f0" stroke-width="1"/>`, poly(hv, hvOK))
	}
	last := h[len(h)-1]
	svg += fmt.Sprintf(`<polyline points="%s" fill="none" stroke="#74c69d" stroke-width="1"/>`+
		`<title>%d generations · best %.4g · stagnation %d</title></svg>`,
		poly(best, bestOK), len(h), last.Best, last.Stagnation)
	return template.HTML(svg)
}

// fmtBytes renders a byte count in binary units for the stat cards.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// phaseColors maps timeline phase names to their bar color; unknown
// phases render grey.
var phaseColors = map[string]string{
	"admission":   "#4cc9f0",
	"queue-wait":  "#6c8a80",
	"peer-hop":    "#f4a261",
	"search":      "#74c69d",
	"sim":         "#95d5b2",
	"wal-journal": "#e9c46a",
}

// timelineSVG renders a job's phase list as one horizontal bar: each
// phase a colored segment proportional to its share of the job's
// wall-clock life, with a hover tooltip naming the phase, its node and
// its duration.
func timelineSVG(tl Timeline, w, h int) template.HTML {
	if len(tl.Phases) == 0 {
		return ""
	}
	t0 := tl.Phases[0].StartUnixUS
	t1 := t0
	for _, p := range tl.Phases {
		if end := p.StartUnixUS + p.DurUS; end > t1 {
			t1 = end
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	span := float64(t1 - t0)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="job timeline">`, w, h, w, h)
	for _, p := range tl.Phases {
		x := float64(p.StartUnixUS-t0) / span * float64(w)
		wd := float64(p.DurUS) / span * float64(w)
		if wd < 1 {
			wd = 1
		}
		color := phaseColors[p.Name]
		if color == "" {
			color = "#888888"
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="2" width="%.1f" height="%d" fill="%s"><title>%s on %s: %v</title></rect>`,
			x, wd, h-4, color,
			template.HTMLEscapeString(p.Name), template.HTMLEscapeString(p.Node),
			(time.Duration(p.DurUS) * time.Microsecond).Round(time.Microsecond))
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

var dashTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>chrysalisd flight deck</title>
<style>
body{background:#0b1215;color:#d8e2dc;font:14px/1.5 ui-monospace,Menlo,Consolas,monospace;margin:2em auto;max-width:72em;padding:0 1em}
h1{color:#95d5b2;font-size:1.3em}
small,.dim{color:#6c8a80}
table{border-collapse:collapse;width:100%;margin-top:1em}
th,td{border-bottom:1px solid #1f2d2a;padding:.35em .6em;text-align:left;vertical-align:middle}
th{color:#74c69d}
.cards{display:flex;flex-wrap:wrap;gap:.8em;margin-top:1em}
.card{background:#111c1f;border:1px solid #1f2d2a;border-radius:6px;padding:.5em .9em}
.card b{color:#95d5b2;font-size:1.2em}
.pass{color:#74c69d}.fail{color:#e56b6f}.run{color:#f4d58d}
</style></head><body>
<h1>chrysalisd flight deck</h1>
<p class="dim">chrysalis {{.Version}} ({{.Revision}}) · {{.GoVersion}} · {{.Platform}} · rendered {{.Now}}</p>
<div class="cards">
<div class="card">jobs queued <b>{{.Stats.Queued}}</b></div>
<div class="card">running <b>{{.Stats.Running}}</b></div>
<div class="card">done <b>{{.Stats.Done}}</b></div>
<div class="card">failed <b>{{.Stats.Failed}}</b></div>
<div class="card">cancelled <b>{{.Stats.Cancelled}}</b></div>
<div class="card">cache hit/miss <b>{{.Stats.CacheHits}}/{{.Stats.CacheMisses}}</b></div>
<div class="card">cached designs <b>{{.Stats.CacheEntries}}</b></div>
<div class="card">job p50/p95 <b>{{printf "%.0f" .Stats.P50ms}}/{{printf "%.0f" .Stats.P95ms}} ms</b> <small>n={{.Stats.LatCount}}</small></div>
<div class="card">queue depth <b>{{.Stats.QueueDepth}}</b></div>
<div class="card">shed (429) <b>{{.Stats.Shed}}</b></div>
{{if .Stats.Durable}}<div class="card">wal recovered <b>{{.Stats.Recovered}}</b></div>{{end}}
{{if .Stats.WarmEnabled}}<div class="card">warm tier <b>{{.Stats.WarmEntries}} sets · {{.Stats.WarmBytes}}</b> <small>of {{.Stats.WarmMaxBytes}} · hit {{.Stats.WarmHitRatio}}</small></div>{{end}}
{{if .Stats.Clustered}}<div class="card">peers up <b>{{.Stats.PeersUp}}</b></div>
<div class="card">remote hit/miss <b>{{.Stats.RemoteHits}}/{{.Stats.RemoteMisses}}</b></div>
<div class="card">peer errors <b>{{.Stats.PeerErrors}}</b></div>{{end}}
</div>
{{if .Fleet}}<h2 style="color:#95d5b2;font-size:1.1em;margin-top:1.2em">fleet</h2>
<table>
<tr><th>node</th><th>queue</th><th>running</th><th>cache hit ratio</th><th>sim fastpath</th><th>breakers</th></tr>
{{range .Fleet}}<tr>
<td>{{.Node}}</td>
<td>{{.QueueDepth}}</td>
<td>{{.JobsRunning}}</td>
<td>{{.HitRatio}}</td>
<td>{{.FastRatio}}</td>
<td{{if .BreakersBad}} class="fail"{{end}}>{{.Breakers}}</td>
</tr>{{end}}
{{range .Unreachable}}<tr><td>{{.}}</td><td colspan="5" class="fail">unreachable</td></tr>{{end}}
</table>{{end}}
<table>
<tr><th>job</th><th>workload</th><th>state</th><th>latency</th><th>best</th><th>cycles</th><th>samples</th><th>audit</th><th>timeline</th><th>convergence</th><th>v_cap (min/max band)</th></tr>
{{range .Jobs}}<tr>
<td>{{.ID}}{{if .Cached}} <small class="dim">cached</small>{{end}}</td>
<td>{{.Workload}}</td>
<td{{if eq .State "running"}} class="run"{{end}}>{{.State}}</td>
<td>{{.Latency}}</td>
<td>{{.Best}}</td>
<td>{{if .Cycles}}{{.Cycles}}{{end}}</td>
<td>{{if .Samples}}{{.Samples}}{{end}}</td>
<td>{{if .HasAudit}}<span class="{{if .AuditOK}}pass{{else}}fail{{end}}">{{.Audit}}</span>{{end}}</td>
<td>{{.Timeline}}</td>
<td>{{.Converge}}</td>
<td>{{.Spark}}</td>
</tr>{{else}}<tr><td colspan="11" class="dim">no jobs yet — POST /v1/designs with "verify": true to see a flight recording here</td></tr>{{end}}
</table>
<p><small class="dim">waveform detail: GET /v1/designs/{id}/waveform (json | ?format=csv) · convergence series: GET /v1/designs/{id}/convergence · job phases: GET /v1/designs/{id}/timeline · stitched trace: GET /v1/designs/{id}/trace · audit verdict rides the job status and the "audit" SSE event</small></p>
<script>
(function () {
	var active = "{{.ActiveID}}";
	if (!active) return;
	var es = new EventSource("/v1/designs/" + active + "/events");
	var last = 0;
	function refresh() {
		var now = Date.now();
		if (now - last < 1500) return;
		last = now;
		location.reload();
	}
	["state", "progress", "quality", "sim", "audit", "done"].forEach(function (n) {
		es.addEventListener(n, refresh);
	});
	es.onerror = function () { es.close(); setTimeout(function () { location.reload(); }, 3000); };
})();
</script>
</body></html>
`))

// handleDashboard renders the live flight deck.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	met := s.mgr.met
	p50, p95, n := met.quantiles()
	data := dashData{
		Version:   obs.Version,
		Revision:  obs.Revision(),
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Now:       time.Now().UTC().Format(time.RFC3339),
		Stats: dashStats{
			Queued:       met.jobsQueued.Value(),
			Running:      met.jobsRunning.Value(),
			Done:         met.jobsDone.Value(),
			Failed:       met.jobsFailed.Value(),
			Cancelled:    met.jobsCancelled.Value(),
			CacheHits:    met.cacheHits.Value(),
			CacheMisses:  met.cacheMisses.Value(),
			CacheEntries: s.mgr.cache.len(),
			JobRecords:   s.mgr.jobCount(),
			P50ms:        p50 * 1000,
			P95ms:        p95 * 1000,
			LatCount:     n,
			QueueDepth:   len(s.mgr.queue),
			Shed:         met.shed.With("quota").Value() + met.shed.With("queue_full").Value(),
			Recovered:    met.jobsRecovered.Value(),
			Durable:      s.mgr.journal != nil,
		},
	}
	if warm := s.mgr.warm; warm != nil {
		ws := warm.Stats()
		data.Stats.WarmEnabled = true
		data.Stats.WarmEntries = ws.Entries
		data.Stats.WarmBytes = fmtBytes(ws.Bytes)
		data.Stats.WarmMaxBytes = fmtBytes(ws.MaxBytes)
		data.Stats.WarmHitRatio = fmt.Sprintf("%.0f%%", warm.HitRatio()*100)
	}
	if cl := s.mgr.cluster; cl != nil {
		st := cl.Stats()
		data.Stats.Clustered = true
		data.Stats.RemoteHits = st.RemoteHits
		data.Stats.RemoteMisses = st.RemoteMisses
		data.Stats.PeerErrors = st.PeerErrors
		data.Stats.PeersUp = int64(cl.PeersUp())
		fl := s.mgr.fleet(r)
		for _, ns := range fl.Nodes {
			peer := dashPeer{
				Node:        ns.Node,
				QueueDepth:  ns.QueueDepth,
				JobsRunning: ns.JobsRunning,
				HitRatio:    fmt.Sprintf("%.0f%%", ns.CacheHitRatio*100),
				FastRatio:   fmt.Sprintf("%.0f%%", ns.SimFastRatio*100),
				Breakers:    "all closed",
			}
			open := 0
			for _, b := range ns.Breakers {
				if b.Open {
					open++
				}
			}
			if open > 0 {
				peer.Breakers = fmt.Sprintf("%d open", open)
				peer.BreakersBad = true
			}
			data.Fleet = append(data.Fleet, peer)
		}
		data.Unreachable = fl.Unreachable
	}
	for _, j := range s.mgr.recent(dashJobs) {
		row := j.dashRow()
		row.Timeline = timelineSVG(s.mgr.timeline(j), sparkW, 16)
		if data.ActiveID == "" && !row.State.terminal() {
			data.ActiveID = row.ID
		}
		data.Jobs = append(data.Jobs, row)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashTmpl.Execute(w, data)
}
