package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// testCluster is an in-process chrysalisd cluster: N Servers on real
// loopback listeners (the ring needs each node's URL before any node
// is built, so the listeners come first).
type testCluster struct {
	urls []string
	srvs []*Server
	http []*http.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	for i, ln := range lns {
		s, err := New(Options{
			Workers: 2,
			Self:    tc.urls[i],
			Peers:   tc.urls,
			Logger:  testLogger(t),
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		tc.srvs = append(tc.srvs, s)
		tc.http = append(tc.http, hs)
	}
	t.Cleanup(func() {
		for i := range tc.srvs {
			tc.stop(t, i)
		}
	})
	return tc
}

// stop shuts one node down; stopping an already-stopped node is a no-op.
func (tc *testCluster) stop(t *testing.T, i int) {
	t.Helper()
	if tc.http[i] == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = tc.http[i].Shutdown(ctx)
	_ = tc.srvs[i].Shutdown(ctx)
	tc.http[i] = nil
}

// evaluationsAcross sums chrysalisd_evaluations_total over the live
// nodes — the cluster-wide count of searches actually executed.
func (tc *testCluster) evaluationsAcross(t *testing.T) float64 {
	t.Helper()
	var sum float64
	for i, hs := range tc.http {
		if hs == nil {
			continue
		}
		sum += metricValue(t, tc.urls[i], "chrysalisd_evaluations_total")
	}
	return sum
}

// TestClusterSingleFlight is the exactly-once contract test: one design
// submitted to all three nodes concurrently evaluates exactly once
// cluster-wide. The ring gives the key one owner, non-owners delegate
// to it, and the owner's single-flight index coalesces the concurrent
// delegations.
func TestClusterSingleFlight(t *testing.T) {
	tc := newTestCluster(t, 3)

	req := smallJob()
	var wg sync.WaitGroup
	ids := make([]string, 3)
	for i := range tc.srvs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, tc.urls[i]+"/v1/designs", req)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("node %d submit: %d %s", i, resp.StatusCode, body)
				return
			}
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Errorf("node %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		if id == "" {
			t.Fatal("a submission failed; cannot continue")
		}
		final := pollJob(t, tc.urls[i], id)
		if final.State != JobDone || final.Result == nil {
			t.Fatalf("node %d job %s: state %s (%s)", i, id, final.State, final.Error)
		}
	}
	if got := tc.evaluationsAcross(t); got != 1 {
		t.Errorf("cluster-wide evaluations = %g, want exactly 1", got)
	}

	// Resubmitting anywhere now resolves from cache (local or the
	// owner's) without another evaluation.
	resp, body := postJSON(t, tc.urls[0]+"/v1/designs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		final := pollJob(t, tc.urls[0], st.ID)
		if final.State != JobDone {
			t.Fatalf("resubmit job: state %s (%s)", final.State, final.Error)
		}
	}
	if got := tc.evaluationsAcross(t); got != 1 {
		t.Errorf("evaluations after resubmit = %g, want still 1", got)
	}
}

// TestClusterPeerDownDegradesLocally kills one node and checks the
// survivors keep serving every request: keys owned by the dead peer
// fall back to local evaluation (counted as cluster fallbacks), and no
// client submission ever fails.
func TestClusterPeerDownDegradesLocally(t *testing.T) {
	tc := newTestCluster(t, 3)
	tc.stop(t, 2)

	// Submit distinct designs until one hashes to the dead node (the
	// ring hashes node URLs with ephemeral ports, so which seeds land
	// there varies per run — each seed hits it with p≈1/3, so the 48-seed
	// cap fails only with probability (2/3)^48 ≈ 3e-9). Every submission
	// must complete on node 0 regardless of ownership.
	var errsA, fallsA float64
	for seed := int64(10); seed < 58; seed++ {
		req := smallJob()
		req.Seed = seed
		resp, body := postJSON(t, tc.urls[0]+"/v1/designs", req)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d %s", seed, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		final := pollJob(t, tc.urls[0], st.ID)
		if final.State != JobDone || final.Result == nil {
			t.Errorf("seed %d: state %s (%s)", seed, final.State, final.Error)
		}
		errsA = metricValue(t, tc.urls[0], "chrysalisd_cluster_peer_errors_total")
		fallsA = metricValue(t, tc.urls[0], "chrysalisd_cluster_fallbacks_total")
		if errsA >= 1 && fallsA >= 1 {
			break
		}
	}
	// The dead peer was noticed: at least one peer call failed and at
	// least one owned key was evaluated locally instead.
	if errsA < 1 || fallsA < 1 {
		t.Errorf("peer_errors=%g fallbacks=%g, want both >= 1 with a dead peer", errsA, fallsA)
	}
	if up := metricValue(t, tc.urls[0], "chrysalisd_cluster_peers_up"); up > 1 {
		t.Errorf("peers_up = %g, want <= 1 after losing a peer", up)
	}
}
